module sunosmt

go 1.22
