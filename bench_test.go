package sunosmt

// Repository-level benchmarks: one per row of the paper's evaluation
// tables (Figure 5: thread creation; Figure 6: thread
// synchronization), plus the ablation benchmarks DESIGN.md calls out
// (mutex variants, M:N ratio, window-system creation scaling,
// fork vs fork1, local vs process-shared locks).
//
// Regenerate the paper's tables with ratio columns via:
//
//	go run ./cmd/mtbench
//
// and per-row times via:
//
//	go test -bench=. -benchmem

import (
	"testing"
	"time"

	"sunosmt/internal/benchkit"
	"sunosmt/mt"
)

// --- Figure 5: thread creation time -------------------------------------

func BenchmarkFig5UnboundThreadCreate(b *testing.B) {
	d := benchkit.UnboundCreate(b.N)
	b.ReportMetric(float64(d.Nanoseconds())/float64(b.N), "ns/create")
}

func BenchmarkFig5BoundThreadCreate(b *testing.B) {
	d := benchkit.BoundCreate(b.N)
	b.ReportMetric(float64(d.Nanoseconds())/float64(b.N), "ns/create")
}

// --- Figure 6: thread synchronization time -------------------------------

func BenchmarkFig6SetjmpLongjmp(b *testing.B) {
	d := benchkit.SetjmpLongjmp(b.N)
	b.ReportMetric(float64(d.Nanoseconds())/float64(b.N), "ns/op-paper")
}

func BenchmarkFig6UnboundSync(b *testing.B) {
	d := benchkit.SyncPingPong(b.N, false)
	b.ReportMetric(float64(d.Nanoseconds())/float64(2*b.N), "ns/sync")
}

func BenchmarkFig6BoundSync(b *testing.B) {
	d := benchkit.SyncPingPong(b.N, true)
	b.ReportMetric(float64(d.Nanoseconds())/float64(2*b.N), "ns/sync")
}

func BenchmarkFig6CrossProcessSync(b *testing.B) {
	d := benchkit.CrossProcessSync(b.N)
	b.ReportMetric(float64(d.Nanoseconds())/float64(2*b.N), "ns/sync")
}

// --- Dispatcher queues ----------------------------------------------------

// BenchmarkDispatchLatency measures the push+pop dispatch hot path
// with 1, 64 and 1024 unrelated runnable threads resident in the run
// queue. The per-priority bitmap queue keeps per-op cost flat in the
// queue depth (within 2×); a linear-scan pop does not.
func BenchmarkDispatchLatency(b *testing.B) {
	for _, queued := range []int{1, 64, 1024} {
		queued := queued
		b.Run(itoa(queued)+"queued", func(b *testing.B) {
			d := benchkit.DispatchLatency(queued, b.N)
			b.ReportMetric(float64(d.Nanoseconds())/float64(b.N), "ns/dispatch")
		})
	}
}

// BenchmarkBroadcastWake measures Cond.Broadcast wake throughput with
// 64 waiters: each op is one waiter made runnable and re-parked.
func BenchmarkBroadcastWake(b *testing.B) {
	const waiters = 64
	rounds := b.N/waiters + 1
	d := benchkit.BroadcastWake(waiters, rounds)
	b.ReportMetric(float64(d.Nanoseconds())/float64(rounds*waiters), "ns/wake")
}

// BenchmarkContendedAdaptiveMutex measures default-variant mutex
// throughput with 2–16 LWPs hammering one lock: the adaptive
// spin-then-park policy against the observed owner-running state.
func BenchmarkContendedAdaptiveMutex(b *testing.B) {
	for _, lwps := range []int{2, 4, 8, 16} {
		lwps := lwps
		b.Run(itoa(lwps)+"lwps", func(b *testing.B) {
			workers := 2 * lwps
			per := b.N/workers + 1
			d := benchkit.ContendedMutex(lwps, workers, per)
			b.ReportMetric(float64(d.Nanoseconds())/float64(workers*per), "ns/acquire")
		})
	}
}

// --- Ablations ------------------------------------------------------------

// runInProc runs body as the main thread of a fresh single-process
// system and waits for it.
func runInProc(b *testing.B, ncpu int, body func(p *mt.Proc, t *mt.Thread)) {
	b.Helper()
	sys := mt.NewSystem(mt.Options{NCPU: ncpu})
	ch := make(chan *mt.Proc, 1)
	p, err := sys.Spawn("bench", func(t *mt.Thread, _ any) {
		body(<-ch, t)
	}, nil, mt.ProcConfig{})
	if err != nil {
		b.Fatal(err)
	}
	ch <- p
	p.WaitExit()
}

// BenchmarkMutexVariant compares the implementation variants the
// paper allows a mutex to be initialized with, under contention from
// 4 threads on 2 LWPs.
func BenchmarkMutexVariant(b *testing.B) {
	variants := []struct {
		name string
		v    mt.Variant
	}{
		{"default", mt.VariantDefault},
		{"spin", mt.VariantSpin},
		{"adaptive", mt.VariantAdaptive},
	}
	for _, tc := range variants {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			runInProc(b, 2, func(p *mt.Proc, t *mt.Thread) {
				r := t.Runtime()
				r.SetConcurrency(2)
				var mu mt.Mutex
				mu.Init(tc.v)
				const workers = 4
				per := b.N/workers + 1
				var ids []mt.ThreadID
				b.ResetTimer()
				for w := 0; w < workers; w++ {
					c, _ := r.Create(func(c *mt.Thread, _ any) {
						for i := 0; i < per; i++ {
							mu.Enter(c)
							mu.Exit(c)
						}
					}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
					ids = append(ids, c.ID())
				}
				for _, id := range ids {
					t.Wait(id)
				}
			})
		})
	}
}

// BenchmarkMNRatio exercises the paper's "Why have both?" argument:
// a fixed amount of parallel work split across more threads than LWPs
// pays for the extra thread switches. 4 LWPs; 4, 64 and 512 threads.
func BenchmarkMNRatio(b *testing.B) {
	for _, threads := range []int{4, 64, 512} {
		threads := threads
		b.Run(itoa(threads)+"threads-4lwps", func(b *testing.B) {
			runInProc(b, 4, func(p *mt.Proc, t *mt.Thread) {
				r := t.Runtime()
				r.SetConcurrency(4)
				total := b.N * 256
				per := total/threads + 1
				var ids []mt.ThreadID
				b.ResetTimer()
				for w := 0; w < threads; w++ {
					c, _ := r.Create(func(c *mt.Thread, _ any) {
						acc := 0
						for i := 0; i < per; i++ {
							acc += i
							if i%64 == 0 {
								c.Yield() // the switch overhead under test
							}
						}
						sink = acc
					}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
					ids = append(ids, c.ID())
				}
				for _, id := range ids {
					t.Wait(id)
				}
			})
		})
	}
}

var sink int

// BenchmarkWindowSystemCreateJoin is the motivating window-system
// workload: create a crowd of threads on one LWP and join them all.
func BenchmarkWindowSystemCreateJoin(b *testing.B) {
	runInProc(b, 1, func(p *mt.Proc, t *mt.Thread) {
		r := t.Runtime()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			const widgets = 100
			ids := make([]mt.ThreadID, 0, widgets)
			for w := 0; w < widgets; w++ {
				c, _ := r.Create(func(c *mt.Thread, _ any) {
					c.Yield() // handle one "event"
				}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
				ids = append(ids, c.ID())
			}
			for _, id := range ids {
				t.Wait(id)
			}
		}
	})
}

// BenchmarkForkVsFork1 measures the paper's rationale for fork1:
// duplicating a process with several LWPs (fork) versus only the
// calling thread (fork1).
func BenchmarkForkVsFork1(b *testing.B) {
	for _, mode := range []string{"fork1", "fork"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			runInProc(b, 2, func(p *mt.Proc, t *mt.Thread) {
				r := t.Runtime()
				// Extra bound threads so full fork has LWPs to duplicate.
				for i := 0; i < 3; i++ {
					r.Create(func(c *mt.Thread, _ any) {
						c.SetForkContinuation(func(*mt.Thread, any) {}, nil)
						c.Park()
					}, nil, mt.CreateOpts{Flags: mt.ThreadDaemon | mt.ThreadBindLWP})
				}
				t.Yield()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					if mode == "fork" {
						_, err = p.Fork(t, func(ct *mt.Thread, _ any) {}, nil)
					} else {
						_, err = p.Fork1(t, func(ct *mt.Thread, _ any) {}, nil)
					}
					if err != nil {
						b.Error(err)
						return
					}
					p.WaitChild(t, -1)
				}
			})
		})
	}
}

// BenchmarkMutexLocalVsShared compares an unshared mutex (atomic
// fast path) to a process-shared one (state in mapped memory) when
// uncontended — the overhead of shared placement alone.
func BenchmarkMutexLocalVsShared(b *testing.B) {
	b.Run("local", func(b *testing.B) {
		runInProc(b, 1, func(p *mt.Proc, t *mt.Thread) {
			var mu mt.Mutex
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mu.Enter(t)
				mu.Exit(t)
			}
		})
	})
	b.Run("shared", func(b *testing.B) {
		runInProc(b, 1, func(p *mt.Proc, t *mt.Thread) {
			fd, _ := p.Open(t, "/tmp/lock", mt.OCreate|mt.ORdWr)
			va, _ := p.Mmap(t, 0, mt.PageSize, mt.ProtRead|mt.ProtWrite, mt.MapShared, fd, 0)
			mu, err := p.SharedMutexAt(t, va)
			if err != nil {
				b.Error(err)
				return
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mu.Enter(t)
				mu.Exit(t)
			}
		})
	})
}

// BenchmarkSigwaitingGrowthLatency measures how long a runnable
// thread waits for SIGWAITING-driven pool growth when every LWP
// blocks indefinitely — the responsiveness of the deadlock-avoidance
// mechanism.
func BenchmarkSigwaitingGrowthLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := mt.NewSystem(mt.Options{NCPU: 2})
		ch := make(chan *mt.Proc, 1)
		p, err := sys.Spawn("bench", func(t *mt.Thread, _ any) {
			p := <-ch
			rfd, wfd, _ := p.Pipe(t)
			t.Runtime().Create(func(c *mt.Thread, _ any) {
				p.Write(c, wfd, []byte("x"))
			}, nil, mt.CreateOpts{})
			fds := []mt.PollFD{{FD: rfd, Events: mt.PollIn}}
			p.Poll(t, fds, 0)
		}, nil, mt.ProcConfig{})
		if err != nil {
			b.Fatal(err)
		}
		ch <- p
		p.WaitExit()
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{byte('0' + n%10)}, buf...)
		n /= 10
	}
	return string(buf)
}

// Silence the unused-variable check for the time import used in doc
// comments only on some build configurations.
var _ = time.Nanosecond
