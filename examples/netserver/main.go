// Network server: the paper's server example — a service that
// "indirectly needs its own service (and therefore another thread of
// control) to handle requests". A listener thread polls a set of
// client pipes; each arriving request gets its own worker thread
// (cheap, unbound); workers consult a directory service in a child
// process over another pipe, demonstrating threads blocking in the
// kernel on I/O while the rest of the server keeps running. Every
// request gets a one-byte reply: 'K' for a completed lookup, 'E' when
// the server sheds the request.
//
// With -overload the same server runs under resource exhaustion: the
// process gets an LWP rlimit of 4 against 8 concurrent clients (2x
// the limit), a thread watermark just above the limit, and a slowed
// directory service so workers pile up blocked in the kernel. At the
// watermark Create fails with EAGAIN and the listener sheds the
// request with an error reply instead of crashing; SIGWAITING pool
// growth hits the rlimit and backs off instead of spinning. The run
// must complete with served+shed == total and zero crashes.
//
// The client and directory-service processes are fork1() children of
// the server, so they inherit the pipe descriptors exactly as UNIX
// processes would.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sync"
	"time"

	"sunosmt/mt"
)

const (
	nClients     = 8
	reqPerClient = 25
	total        = nClients * reqPerClient

	// Overload-mode limits: demand is nClients concurrent requests
	// against an LWP rlimit of half that, and the thread watermark
	// admits the listener plus overloadMaxThreads-1 workers.
	overloadLWPLimit   = nClients / 2
	overloadMaxThreads = overloadLWPLimit + 2
)

// Per-request failures are recorded here rather than silently
// dropped (or fatally logged from a worker thread, which would take
// the whole demo down mid-flight). Every process in the demo reports
// into the same collector; main prints the summary and exits
// non-zero if anything failed, so CI catches regressions in the I/O
// paths.
var (
	errMu sync.Mutex
	errs  []error
)

func fail(context string, err error) {
	errMu.Lock()
	errs = append(errs, fmt.Errorf("%s: %w", context, err))
	errMu.Unlock()
}

func main() {
	overload := flag.Bool("overload", false,
		"run under resource exhaustion: LWP rlimit at half the client count, thread watermark, slowed directory service")
	flag.Parse()

	sys := mt.NewSystem(mt.Options{NCPU: 2})
	cfg := mt.ProcConfig{}
	if *overload {
		cfg.LWPLimit = overloadLWPLimit
		cfg.MaxThreads = overloadMaxThreads
	}
	done := make(chan struct{})
	ch := make(chan *mt.Proc, 1)
	server, err := sys.Spawn("netserver", func(t *mt.Thread, _ any) {
		defer close(done)
		p := <-ch
		r := t.Runtime()

		// One request pipe and one reply pipe per client, plus a
		// request/reply pair for the directory service. Children
		// inherit these descriptors.
		type pipePair struct{ r, w int }
		var cps, rps [nClients]pipePair
		for i := range cps {
			rfd, wfd, err := p.Pipe(t)
			if err != nil {
				log.Fatal(err)
			}
			cps[i] = pipePair{rfd, wfd}
			rfd, wfd, err = p.Pipe(t)
			if err != nil {
				log.Fatal(err)
			}
			rps[i] = pipePair{rfd, wfd}
		}
		dreqR, dreqW, err := p.Pipe(t)
		if err != nil {
			log.Fatal(err)
		}
		drepR, drepW, err := p.Pipe(t)
		if err != nil {
			log.Fatal(err)
		}

		// fork1: the directory service. It serves until the request
		// pipe drains to EOF — under overload some requests are shed
		// at the server and never reach the directory, so a fixed
		// request count would hang here.
		dirCh := make(chan *mt.Proc, 1)
		dir, err := p.Fork1(t, func(dt *mt.Thread, _ any) {
			dp := <-dirCh
			// Close the inherited copies of the ends this process
			// does not use, or the server's close of dreqW could
			// never produce EOF below.
			if err := dp.Close(dt, dreqW); err != nil {
				fail("dir: close dreqW", err)
			}
			if err := dp.Close(dt, drepR); err != nil {
				fail("dir: close drepR", err)
			}
			buf := make([]byte, 1)
			for i := 0; ; i++ {
				if _, err := dp.Read(dt, dreqR, buf); err != nil {
					if errors.Is(err, io.EOF) {
						return
					}
					fail(fmt.Sprintf("dir: read request %d", i), err)
					return
				}
				if *overload {
					// A slow backend is what piles workers up
					// against the rlimit.
					dp.Sleep(dt, time.Millisecond)
				}
				buf[0] ^= 0x80 // the "lookup"
				if _, err := dp.Write(dt, drepW, buf); err != nil {
					fail(fmt.Sprintf("dir: write reply %d", i), err)
					return
				}
			}
		}, nil)
		if err != nil {
			log.Fatal(err)
		}
		dirCh <- dir

		// fork1: the clients, one thread per connection. Each client
		// runs request/reply lockstep and tallies how its requests
		// fared.
		cliCh := make(chan *mt.Proc, 1)
		cli, err := p.Fork1(t, func(ct *mt.Thread, _ any) {
			cp := <-cliCh
			// The LWP rlimit is inherited across fork; the overload
			// experiment constrains the server, not the clients, so
			// the client child lifts its own limit (setrlimit) to
			// keep demand at the full 2x the server's rlimit.
			cp.Process().SetLWPLimit(0)
			if err := cp.Close(ct, dreqW); err != nil {
				fail("client: close dreqW", err)
			}
			var ids []mt.ThreadID
			for i := 0; i < nClients; i++ {
				i := i
				c, err := ct.Runtime().Create(func(c *mt.Thread, _ any) {
					rep := make([]byte, 1)
					for j := 0; j < reqPerClient; j++ {
						if _, err := cp.Write(c, cps[i].w, []byte{byte(i)}); err != nil {
							fail(fmt.Sprintf("client %d: write request %d", i, j), err)
							return
						}
						if _, err := cp.Read(c, rps[i].r, rep); err != nil {
							fail(fmt.Sprintf("client %d: read reply %d", i, j), err)
							return
						}
						if rep[0] != 'K' && rep[0] != 'E' {
							fail(fmt.Sprintf("client %d", i),
								fmt.Errorf("request %d: bad reply byte %#x", j, rep[0]))
							return
						}
					}
				}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
				if err != nil {
					log.Fatal(err)
				}
				ids = append(ids, c.ID())
			}
			for _, id := range ids {
				if _, err := ct.Wait(id); err != nil {
					fail(fmt.Sprintf("client: wait %d", id), err)
				}
			}
		}, nil)
		if err != nil {
			log.Fatal(err)
		}
		cliCh <- cli

		// The listener loop: poll, accept, thread-per-request. When
		// Create hits the thread watermark it returns EAGAIN and the
		// listener sheds the request — error reply, not a crash.
		var mu mt.Mutex
		served := 0
		shed := 0
		accepted := 0
		var workers []mt.ThreadID
		for accepted < total {
			fds := make([]mt.PollFD, nClients)
			for i, cp := range cps {
				fds[i] = mt.PollFD{FD: cp.r, Events: mt.PollIn}
			}
			if _, err := p.Poll(t, fds, 0); err != nil {
				log.Fatal(err)
			}
			for i := range fds {
				if fds[i].Revents&mt.PollIn == 0 {
					continue
				}
				i := i
				buf := make([]byte, 1)
				if _, err := p.Read(t, cps[i].r, buf); err != nil {
					log.Fatal(err)
				}
				w, err := r.Create(func(c *mt.Thread, _ any) {
					// Blocking round trip to the directory
					// service: this thread's LWP parks in the
					// kernel; SIGWAITING grows the pool if
					// everyone is waiting (up to the rlimit). The
					// client always gets a reply byte: 'K' on a
					// completed lookup, 'E' if the round trip
					// failed.
					rep := []byte{'E'}
					if _, err := p.Write(c, dreqW, buf); err != nil {
						fail("worker: write to directory", err)
					} else if _, err := p.Read(c, drepR, rep); err != nil {
						fail("worker: read directory reply", err)
						rep[0] = 'E'
					} else {
						rep[0] = 'K'
					}
					if _, err := p.Write(c, rps[i].w, rep); err != nil {
						fail("worker: write reply", err)
						return
					}
					if rep[0] == 'K' {
						mu.Enter(c)
						served++
						mu.Exit(c)
					}
				}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
				if err != nil {
					if !errors.Is(err, mt.ErrAgain) {
						log.Fatal(err)
					}
					// At the watermark: shed the request with an
					// error reply and keep serving.
					if _, werr := p.Write(t, rps[i].w, []byte{'E'}); werr != nil {
						fail("server: write shed reply", werr)
					}
					shed++
					accepted++
					continue
				}
				workers = append(workers, w.ID())
				accepted++
			}
			// Reap completed workers (Find only returns live
			// threads; the rest are zombies ready to wait for).
			var pending []mt.ThreadID
			for _, id := range workers {
				if _, ok := r.Find(id); ok {
					pending = append(pending, id)
					continue
				}
				if _, err := t.Wait(id); err != nil {
					fail(fmt.Sprintf("server: reap worker %d", id), err)
				}
			}
			workers = pending
		}
		for _, id := range workers {
			if _, err := t.Wait(id); err != nil {
				fail(fmt.Sprintf("server: wait worker %d", id), err)
			}
		}
		// All workers are done with the directory; closing the last
		// request-pipe writer sends the directory EOF.
		if err := p.Close(t, dreqW); err != nil {
			fail("server: close dreqW", err)
		}
		// Wait for the children.
		for i := 0; i < 2; i++ {
			if _, err := p.WaitChild(t, -1); err != nil {
				fail("server: wait child", err)
			}
		}
		if served+shed != total {
			fail("server", fmt.Errorf("served %d + shed %d != %d requests", served, shed, total))
		}
		if *overload && shed == 0 {
			fail("server", errors.New("overload run shed nothing: watermark never hit"))
		}
		if !*overload && served != total {
			fail("server", fmt.Errorf("served %d of %d requests", served, total))
		}
		growFail, growDefer, _ := r.GrowthStats()
		fmt.Printf("server: served %d, shed %d of %d requests; LWP pool grew to %d (growth failures %d, deferred %d)\n",
			served, shed, total, r.PoolSize(), growFail, growDefer)
	}, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ch <- server
	<-done
	server.WaitExit()
	errMu.Lock()
	failed := errs
	errMu.Unlock()
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "netserver: %d request error(s):\n", len(failed))
		for _, e := range failed {
			fmt.Fprintln(os.Stderr, "  "+e.Error())
		}
		os.Exit(1)
	}
	fmt.Println("netserver demo complete")
}
