// Network server: the paper's server example — a service that
// "indirectly needs its own service (and therefore another thread of
// control) to handle requests". A listener thread polls a set of
// client pipes; each arriving request gets its own worker thread
// (cheap, unbound); workers consult a directory service in a child
// process over another pipe, demonstrating threads blocking in the
// kernel on I/O while the rest of the server keeps running.
//
// The client and directory-service processes are fork1() children of
// the server, so they inherit the pipe descriptors exactly as UNIX
// processes would.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"sunosmt/mt"
)

const (
	nClients     = 8
	reqPerClient = 25
	total        = nClients * reqPerClient
)

// Per-request failures are recorded here rather than silently
// dropped (or fatally logged from a worker thread, which would take
// the whole demo down mid-flight). Every process in the demo reports
// into the same collector; main prints the summary and exits
// non-zero if anything failed, so CI catches regressions in the I/O
// paths.
var (
	errMu sync.Mutex
	errs  []error
)

func fail(context string, err error) {
	errMu.Lock()
	errs = append(errs, fmt.Errorf("%s: %w", context, err))
	errMu.Unlock()
}

func main() {
	sys := mt.NewSystem(mt.Options{NCPU: 2})
	done := make(chan struct{})
	ch := make(chan *mt.Proc, 1)
	server, err := sys.Spawn("netserver", func(t *mt.Thread, _ any) {
		defer close(done)
		p := <-ch
		r := t.Runtime()

		// One pipe per client plus a request/reply pair for the
		// directory service. Children inherit these descriptors.
		type pipePair struct{ r, w int }
		var cps [nClients]pipePair
		for i := range cps {
			rfd, wfd, err := p.Pipe(t)
			if err != nil {
				log.Fatal(err)
			}
			cps[i] = pipePair{rfd, wfd}
		}
		dreqR, dreqW, err := p.Pipe(t)
		if err != nil {
			log.Fatal(err)
		}
		drepR, drepW, err := p.Pipe(t)
		if err != nil {
			log.Fatal(err)
		}

		// fork1: the directory service.
		dirCh := make(chan *mt.Proc, 1)
		dir, err := p.Fork1(t, func(dt *mt.Thread, _ any) {
			dp := <-dirCh
			buf := make([]byte, 1)
			for i := 0; i < total; i++ {
				if _, err := dp.Read(dt, dreqR, buf); err != nil {
					fail(fmt.Sprintf("dir: read request %d", i), err)
					return
				}
				buf[0] ^= 0x80 // the "lookup"
				if _, err := dp.Write(dt, drepW, buf); err != nil {
					fail(fmt.Sprintf("dir: write reply %d", i), err)
					return
				}
			}
		}, nil)
		if err != nil {
			log.Fatal(err)
		}
		dirCh <- dir

		// fork1: the clients, one thread per connection.
		cliCh := make(chan *mt.Proc, 1)
		cli, err := p.Fork1(t, func(ct *mt.Thread, _ any) {
			cp := <-cliCh
			var ids []mt.ThreadID
			for i := 0; i < nClients; i++ {
				i := i
				c, err := ct.Runtime().Create(func(c *mt.Thread, _ any) {
					for j := 0; j < reqPerClient; j++ {
						if _, err := cp.Write(c, cps[i].w, []byte{byte(i)}); err != nil {
							fail(fmt.Sprintf("client %d: write request %d", i, j), err)
							return
						}
						c.Yield()
					}
				}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
				if err != nil {
					log.Fatal(err)
				}
				ids = append(ids, c.ID())
			}
			for _, id := range ids {
				if _, err := ct.Wait(id); err != nil {
					fail(fmt.Sprintf("client: wait %d", id), err)
				}
			}
		}, nil)
		if err != nil {
			log.Fatal(err)
		}
		cliCh <- cli

		// The listener loop: poll, accept, thread-per-request.
		var mu mt.Mutex
		served := 0
		accepted := 0
		var workers []mt.ThreadID
		for accepted < total {
			fds := make([]mt.PollFD, nClients)
			for i, cp := range cps {
				fds[i] = mt.PollFD{FD: cp.r, Events: mt.PollIn}
			}
			if _, err := p.Poll(t, fds, 0); err != nil {
				log.Fatal(err)
			}
			for i := range fds {
				if fds[i].Revents&mt.PollIn == 0 {
					continue
				}
				buf := make([]byte, 1)
				if _, err := p.Read(t, cps[i].r, buf); err != nil {
					log.Fatal(err)
				}
				w, err := r.Create(func(c *mt.Thread, _ any) {
					// Blocking round trip to the directory
					// service: this thread's LWP parks in the
					// kernel; SIGWAITING grows the pool if
					// everyone is waiting. A failed round trip is
					// recorded and the request dropped; the server
					// keeps serving the rest.
					if _, err := p.Write(c, dreqW, buf); err != nil {
						fail("worker: write to directory", err)
						return
					}
					rep := make([]byte, 1)
					if _, err := p.Read(c, drepR, rep); err != nil {
						fail("worker: read directory reply", err)
						return
					}
					mu.Enter(c)
					served++
					mu.Exit(c)
				}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
				if err != nil {
					log.Fatal(err)
				}
				workers = append(workers, w.ID())
				accepted++
			}
			// Reap completed workers (Find only returns live
			// threads; the rest are zombies ready to wait for).
			var pending []mt.ThreadID
			for _, id := range workers {
				if _, ok := r.Find(id); ok {
					pending = append(pending, id)
					continue
				}
				if _, err := t.Wait(id); err != nil {
					fail(fmt.Sprintf("server: reap worker %d", id), err)
				}
			}
			workers = pending
		}
		for _, id := range workers {
			if _, err := t.Wait(id); err != nil {
				fail(fmt.Sprintf("server: wait worker %d", id), err)
			}
		}
		// Wait for the children.
		for i := 0; i < 2; i++ {
			if _, err := p.WaitChild(t, -1); err != nil {
				fail("server: wait child", err)
			}
		}
		if served != total {
			fail("server", fmt.Errorf("served %d of %d requests", served, total))
		}
		fmt.Printf("server: handled %d requests; LWP pool grew to %d\n", served, r.PoolSize())
	}, nil, mt.ProcConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ch <- server
	<-done
	server.WaitExit()
	errMu.Lock()
	failed := errs
	errMu.Unlock()
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "netserver: %d request error(s):\n", len(failed))
		for _, e := range failed {
			fmt.Fprintln(os.Stderr, "  "+e.Error())
		}
		os.Exit(1)
	}
	fmt.Println("netserver demo complete")
}
