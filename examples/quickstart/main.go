// Quickstart: boot a simulated machine, start a process, create a few
// unbound threads, synchronize them with a mutex and a condition
// variable, and wait for them — the paper's Figure 4 interface in
// action.
package main

import (
	"fmt"
	"log"

	"sunosmt/mt"
)

func main() {
	sys := mt.NewSystem(mt.Options{NCPU: 2})

	done := make(chan struct{})
	_, err := sys.Spawn("quickstart", func(t *mt.Thread, _ any) {
		defer close(done)
		r := t.Runtime()

		// A shared counter protected by a mutex, and a condition
		// variable announcing completion — the canonical monitor.
		var mu mt.Mutex
		var cv mt.Cond
		counter := 0
		finished := 0

		const workers = 8
		var ids []mt.ThreadID
		for i := 0; i < workers; i++ {
			w, err := r.Create(func(c *mt.Thread, arg any) {
				for j := 0; j < 1000; j++ {
					mu.Enter(c)
					counter++
					mu.Exit(c)
				}
				mu.Enter(c)
				finished++
				mu.Exit(c)
				cv.Signal(c)
			}, i, mt.CreateOpts{Flags: mt.ThreadWait})
			if err != nil {
				log.Fatal(err)
			}
			ids = append(ids, w.ID())
		}

		// The paper's condition-wait idiom: hold the mutex, loop
		// on the condition.
		mu.Enter(t)
		for finished < workers {
			cv.Wait(t, &mu)
		}
		mu.Exit(t)

		for _, id := range ids {
			if _, err := t.Wait(id); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("counter = %d (want %d) across %d threads on %d LWPs\n",
			counter, workers*1000, workers, r.PoolSize())
	}, nil, mt.ProcConfig{})
	if err != nil {
		log.Fatal(err)
	}
	<-done
}
