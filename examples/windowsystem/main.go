// Window system: the paper's motivating example for extremely
// lightweight threads. Every widget gets one input handler and one
// output handler thread — thousands of threads — multiplexed on a
// handful of LWPs, because "although the window system may be best
// expressed as a large number of threads, only a few of the threads
// ever need to be active at the same instant."
//
// The demo builds 1000 widgets (2000 threads), injects a stream of
// input events, and reports how many LWPs the library actually used.
package main

import (
	"fmt"
	"log"

	"sunosmt/mt"
)

// widget is one UI element with an event queue (a tiny monitor).
type widget struct {
	id      int
	mu      mt.Mutex
	cv      mt.Cond
	queue   []int
	handled int
	redraws int
	closed  bool
}

// input waits for events and "handles" them, handing each to the
// output side by recording a redraw request.
func (w *widget) input(t *mt.Thread, _ any) {
	for {
		w.mu.Enter(t)
		for len(w.queue) == 0 && !w.closed {
			w.cv.Wait(t, &w.mu)
		}
		if w.closed && len(w.queue) == 0 {
			w.mu.Exit(t)
			return
		}
		w.queue = w.queue[1:]
		w.handled++
		w.mu.Exit(t)
	}
}

// output repaints while the widget lives.
func (w *widget) output(t *mt.Thread, _ any) {
	for {
		w.mu.Enter(t)
		if w.closed {
			w.mu.Exit(t)
			return
		}
		w.redraws++
		w.mu.Exit(t)
		t.Yield() // wait for the next frame
	}
}

func (w *widget) post(t *mt.Thread, ev int) {
	w.mu.Enter(t)
	w.queue = append(w.queue, ev)
	w.mu.Exit(t)
	w.cv.Signal(t)
}

func (w *widget) close(t *mt.Thread) {
	w.mu.Enter(t)
	w.closed = true
	w.mu.Exit(t)
	w.cv.Broadcast(t)
}

func main() {
	sys := mt.NewSystem(mt.Options{NCPU: 2})
	done := make(chan struct{})
	_, err := sys.Spawn("windowsystem", func(t *mt.Thread, _ any) {
		defer close(done)
		r := t.Runtime()

		const nWidgets = 1000
		widgets := make([]*widget, nWidgets)
		var handlers []mt.ThreadID
		for i := range widgets {
			w := &widget{id: i}
			widgets[i] = w
			in, err := r.Create(w.input, nil, mt.CreateOpts{Flags: mt.ThreadWait})
			if err != nil {
				log.Fatal(err)
			}
			out, err := r.Create(w.output, nil, mt.CreateOpts{Flags: mt.ThreadWait})
			if err != nil {
				log.Fatal(err)
			}
			handlers = append(handlers, in.ID(), out.ID())
		}
		fmt.Printf("created %d widget handler threads on %d LWP(s)\n",
			r.NumThreads()-1, r.PoolSize())

		// Inject a burst of events round-robin.
		const events = 5000
		for e := 0; e < events; e++ {
			widgets[e%nWidgets].post(t, e)
			if e%100 == 0 {
				t.Yield()
			}
		}
		// Drain and close.
		for _, w := range widgets {
			w.close(t)
		}
		for _, id := range handlers {
			if _, err := t.Wait(id); err != nil {
				log.Fatal(err)
			}
		}
		total := 0
		for _, w := range widgets {
			total += w.handled
		}
		fmt.Printf("handled %d/%d events; final LWP pool: %d\n",
			total, events, r.PoolSize())
	}, nil, mt.ProcConfig{})
	if err != nil {
		log.Fatal(err)
	}
	<-done
}
