// Database: the paper's Figure 1 scenario, end to end. A file holds
// database records, each with a mutual exclusion lock variable in the
// record itself. Several processes map the file MAP_SHARED (at
// whatever virtual address they get), and threads lock individual
// records to update them; the locks synchronize across processes, and
// their state outlives any single process.
package main

import (
	"fmt"
	"log"

	"sunosmt/mt"
)

const (
	nRecords   = 16
	recordSize = 256 // lock variable at +0, balance at +128
	dbPath     = "/tmp/bank.db"
	perProcess = 2000
)

// transfer moves one unit from record a to record b under both record
// locks (ordered by record number to avoid deadlock).
func transfer(p *mt.Proc, t *mt.Thread, base int64, a, b int) error {
	if a > b {
		a, b = b, a
	}
	la, err := p.SharedMutexAt(t, base+int64(a*recordSize))
	if err != nil {
		return err
	}
	lb, err := p.SharedMutexAt(t, base+int64(b*recordSize))
	if err != nil {
		return err
	}
	la.Enter(t)
	lb.Enter(t)
	defer la.Exit(t)
	defer lb.Exit(t)
	adj := func(rec, delta int) error {
		off := base + int64(rec*recordSize) + 128
		var buf [8]byte
		if err := p.MemRead(t, off, buf[:]); err != nil {
			return err
		}
		v := int64(0)
		for i := 7; i >= 0; i-- {
			v = v<<8 | int64(buf[i])
		}
		v += int64(delta)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		return p.MemWrite(t, off, buf[:])
	}
	if err := adj(a, -1); err != nil {
		return err
	}
	return adj(b, +1)
}

func worker(p *mt.Proc, base int64) mt.Func {
	return func(t *mt.Thread, arg any) {
		seed := arg.(int)
		for i := 0; i < perProcess; i++ {
			a := (seed + i) % nRecords
			b := (seed + 3*i + 1) % nRecords
			if a == b {
				b = (b + 1) % nRecords
			}
			if err := transfer(p, t, base, a, b); err != nil {
				log.Fatal(err)
			}
		}
	}
}

func main() {
	sys := mt.NewSystem(mt.Options{NCPU: 2})

	spawn := func(name string, seed int) *mt.Proc {
		ch := make(chan *mt.Proc, 1)
		p, err := sys.Spawn(name, func(t *mt.Thread, _ any) {
			p := <-ch
			fd, err := p.Open(t, dbPath, mt.OCreate|mt.ORdWr)
			if err != nil {
				log.Fatal(err)
			}
			base, err := p.Mmap(t, 0, nRecords*recordSize, mt.ProtRead|mt.ProtWrite, mt.MapShared, fd, 0)
			if err != nil {
				log.Fatal(err)
			}
			// Two worker threads per process hammer the records.
			w1, _ := t.Runtime().Create(worker(p, base), seed, mt.CreateOpts{Flags: mt.ThreadWait})
			w2, _ := t.Runtime().Create(worker(p, base), seed+7, mt.CreateOpts{Flags: mt.ThreadWait})
			t.Wait(w1.ID())
			t.Wait(w2.ID())
		}, nil, mt.ProcConfig{})
		if err != nil {
			log.Fatal(err)
		}
		ch <- p
		return p
	}

	p1 := spawn("dbproc1", 1)
	p2 := spawn("dbproc2", 5)
	p1.WaitExit()
	p2.WaitExit()

	// A third process audits: transfers conserve the total.
	done := make(chan struct{})
	ch := make(chan *mt.Proc, 1)
	p3, err := sys.Spawn("auditor", func(t *mt.Thread, _ any) {
		defer close(done)
		p := <-ch
		fd, _ := p.Open(t, dbPath, mt.ORdWr)
		base, _ := p.Mmap(t, 0, nRecords*recordSize, mt.ProtRead|mt.ProtWrite, mt.MapShared, fd, 0)
		total := int64(0)
		for r := 0; r < nRecords; r++ {
			var buf [8]byte
			p.MemRead(t, base+int64(r*recordSize)+128, buf[:])
			v := int64(0)
			for i := 7; i >= 0; i-- {
				v = v<<8 | int64(buf[i])
			}
			total += v
		}
		fmt.Printf("audit: %d records, net balance %d (want 0) after %d cross-process transfers\n",
			nRecords, total, 2*2*perProcess)
	}, nil, mt.ProcConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ch <- p3
	<-done
}
