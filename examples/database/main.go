// Database: the paper's Figure 1 scenario, end to end. A file holds
// database records, each with a mutual exclusion lock variable in the
// record itself. Several processes map the file MAP_SHARED (at
// whatever virtual address they get), and threads lock individual
// records to update them; the locks synchronize across processes, and
// their state outlives any single process.
//
// The run also demonstrates recovery: one process is SIGKILLed in the
// middle of a transfer — after the debit, before the credit — while
// holding both record locks. The robust-lock sweep marks the orphaned
// locks, the surviving processes acquire them with ErrOwnerDead and
// MakeConsistent, and the audit shows exactly the one unit the
// interrupted transaction destroyed.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"sunosmt/mt"
)

const (
	nRecords   = 16
	recordSize = 256 // lock variable at +0, balance at +128
	dbPath     = "/tmp/bank.db"
	perProcess = 2000
)

// recovered counts owner-dead locks the surviving workers repaired.
var recovered atomic.Int64

func adj(p *mt.Proc, t *mt.Thread, base int64, rec, delta int) error {
	off := base + int64(rec*recordSize) + 128
	var buf [8]byte
	if err := p.MemRead(t, off, buf[:]); err != nil {
		return err
	}
	v := int64(0)
	for i := 7; i >= 0; i-- {
		v = v<<8 | int64(buf[i])
	}
	v += int64(delta)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	return p.MemWrite(t, off, buf[:])
}

// enterRobust acquires a record lock with the robust protocol: a dead
// owner's lock is repaired (the record's balance bytes are already
// consistent — each adj writes whole values) and put back in service.
func enterRobust(t *mt.Thread, l *mt.Mutex) {
	switch err := l.EnterErr(t); err {
	case nil:
	case mt.ErrOwnerDead:
		recovered.Add(1)
		l.MakeConsistent(t)
	default:
		log.Fatalf("record lock: %v", err)
	}
}

// transfer moves one unit from record a to record b under both record
// locks (ordered by record number to avoid deadlock).
func transfer(p *mt.Proc, t *mt.Thread, base int64, a, b int) error {
	if a > b {
		a, b = b, a
	}
	la, err := p.SharedMutexAt(t, base+int64(a*recordSize))
	if err != nil {
		return err
	}
	lb, err := p.SharedMutexAt(t, base+int64(b*recordSize))
	if err != nil {
		return err
	}
	enterRobust(t, la)
	enterRobust(t, lb)
	defer la.Exit(t)
	defer lb.Exit(t)
	if err := adj(p, t, base, a, -1); err != nil {
		return err
	}
	return adj(p, t, base, b, +1)
}

func worker(p *mt.Proc, base int64) mt.Func {
	return func(t *mt.Thread, arg any) {
		seed := arg.(int)
		for i := 0; i < perProcess; i++ {
			a := (seed + i) % nRecords
			b := (seed + 3*i + 1) % nRecords
			if a == b {
				b = (b + 1) % nRecords
			}
			if err := transfer(p, t, base, a, b); err != nil {
				log.Fatal(err)
			}
		}
	}
}

func main() {
	sys := mt.NewSystem(mt.Options{NCPU: 2})

	openDB := func(p *mt.Proc, t *mt.Thread) int64 {
		fd, err := p.Open(t, dbPath, mt.OCreate|mt.ORdWr)
		if err != nil {
			log.Fatal(err)
		}
		base, err := p.Mmap(t, 0, nRecords*recordSize, mt.ProtRead|mt.ProtWrite, mt.MapShared, fd, 0)
		if err != nil {
			log.Fatal(err)
		}
		return base
	}

	// Phase 1: a process dies mid-transfer — debit done, credit not,
	// both record locks held.
	var midTransfer atomic.Bool
	vch := make(chan *mt.Proc, 1)
	victim, err := sys.Spawn("dbvictim", func(t *mt.Thread, _ any) {
		p := <-vch
		base := openDB(p, t)
		la, _ := p.SharedMutexAt(t, base+0*recordSize)
		lb, _ := p.SharedMutexAt(t, base+1*recordSize)
		la.Enter(t)
		lb.Enter(t)
		if err := adj(p, t, base, 0, -1); err != nil {
			log.Fatal(err)
		}
		midTransfer.Store(true)
		for {
			t.Checkpoint() // killed here, locks held, credit never made
		}
	}, nil, mt.ProcConfig{})
	if err != nil {
		log.Fatal(err)
	}
	vch <- victim
	for !midTransfer.Load() {
		time.Sleep(time.Millisecond)
	}
	victim.Kill(mt.SIGKILL)
	if _, sig := victim.WaitExit(); sig == mt.SIGKILL {
		fmt.Println("victim killed mid-transfer holding record locks 0 and 1")
	}

	// Phase 2: surviving processes hammer the records; the first
	// acquirers of the orphaned locks repair them.
	spawn := func(name string, seed int) *mt.Proc {
		ch := make(chan *mt.Proc, 1)
		p, err := sys.Spawn(name, func(t *mt.Thread, _ any) {
			p := <-ch
			base := openDB(p, t)
			// Two worker threads per process hammer the records.
			w1, _ := t.Runtime().Create(worker(p, base), seed, mt.CreateOpts{Flags: mt.ThreadWait})
			w2, _ := t.Runtime().Create(worker(p, base), seed+7, mt.CreateOpts{Flags: mt.ThreadWait})
			t.Wait(w1.ID())
			t.Wait(w2.ID())
		}, nil, mt.ProcConfig{})
		if err != nil {
			log.Fatal(err)
		}
		ch <- p
		return p
	}

	p1 := spawn("dbproc1", 1)
	p2 := spawn("dbproc2", 5)
	p1.WaitExit()
	p2.WaitExit()

	// A third process audits: completed transfers conserve the total,
	// so the net balance equals exactly the victim's lost credit.
	done := make(chan struct{})
	ch := make(chan *mt.Proc, 1)
	p3, err := sys.Spawn("auditor", func(t *mt.Thread, _ any) {
		defer close(done)
		p := <-ch
		base := openDB(p, t)
		total := int64(0)
		for r := 0; r < nRecords; r++ {
			var buf [8]byte
			p.MemRead(t, base+int64(r*recordSize)+128, buf[:])
			v := int64(0)
			for i := 7; i >= 0; i-- {
				v = v<<8 | int64(buf[i])
			}
			total += v
		}
		fmt.Printf("audit: %d records, net balance %d after %d cross-process transfers\n",
			nRecords, total, 2*2*perProcess)
		fmt.Printf("       (want -1: the killed process debited without crediting)\n")
		fmt.Printf("recovery: %d orphaned record locks repaired via ErrOwnerDead + MakeConsistent (want 2)\n",
			recovered.Load())
	}, nil, mt.ProcConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ch <- p3
	<-done
}
