// Realtime: the paper's mixed configuration — "some real-time
// applications ... want some threads to have system-wide priority and
// real-time scheduling, while other threads can attend to background
// computations." A control-loop thread is bound to its own LWP and
// placed in the real-time scheduling class (the SunOS answer to
// Chorus's objection to two-level scheduling); a crowd of unbound
// background threads shares one timeshare LWP. On a single CPU, the
// RT thread preempts the background work at every dispatch decision.
package main

import (
	"fmt"
	"log"
	"time"

	"sunosmt/internal/sim"
	"sunosmt/mt"
)

func main() {
	sys := mt.NewSystem(mt.Options{NCPU: 1, TimeSlice: 2 * time.Millisecond})
	done := make(chan struct{})
	ch := make(chan *mt.Proc, 1)
	proc, err := sys.Spawn("realtime", func(t *mt.Thread, _ any) {
		defer close(done)
		p := <-ch
		r := t.Runtime()

		// Background crowd: unbound, timeshare.
		var bg []mt.ThreadID
		stop := false
		var mu mt.Mutex
		for i := 0; i < 8; i++ {
			w, err := r.Create(func(c *mt.Thread, _ any) {
				for {
					mu.Enter(c)
					s := stop
					mu.Exit(c)
					if s {
						return
					}
					// background churn
					for j := 0; j < 1000; j++ {
						_ = j * j
					}
					c.Yield()
				}
			}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
			if err != nil {
				log.Fatal(err)
			}
			bg = append(bg, w.ID())
		}

		// The control loop: bound, real-time class.
		var worst time.Duration
		rt, err := r.Create(func(c *mt.Thread, _ any) {
			if err := p.Priocntl(c, sim.ClassRT, 20); err != nil {
				log.Fatal(err)
			}
			const ticks = 200
			period := 500 * time.Microsecond
			for i := 0; i < ticks; i++ {
				start := time.Now()
				if err := p.Sleep(c, period); err != nil {
					log.Fatal(err)
				}
				// Latency = how late we woke past the period.
				lat := time.Since(start) - period
				if lat > worst {
					worst = lat
				}
			}
		}, nil, mt.CreateOpts{Flags: mt.ThreadWait | mt.ThreadBindLWP})
		if err != nil {
			log.Fatal(err)
		}

		t.Wait(rt.ID())
		mu.Enter(t)
		stop = true
		mu.Exit(t)
		for _, id := range bg {
			t.Wait(id)
		}
		fmt.Printf("real-time control loop: 200 ticks at 500us period over background load\n")
		fmt.Printf("worst wakeup latency past the period: %v\n", worst)
		if worst > 50*time.Millisecond {
			fmt.Println("WARNING: latency looks non-real-time")
		}
	}, nil, mt.ProcConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ch <- proc
	<-done
}
