// Realtime: the paper's mixed configuration — "some real-time
// applications ... want some threads to have system-wide priority and
// real-time scheduling, while other threads can attend to background
// computations." A control-loop thread is bound to its own LWP and
// placed in the real-time scheduling class (the SunOS answer to
// Chorus's objection to two-level scheduling); a crowd of unbound
// background threads shares one timeshare LWP. On a single CPU, the
// RT thread preempts the background work at every dispatch decision.
//
// The second demo is the classic priority-inversion triangle — a
// low-priority thread holds a mutex a high-priority thread needs
// while a medium-priority spinner hogs the only LWP — run once with
// turnstile priority inheritance (the default) and once with the
// NoPriorityInheritance ablation. With inheritance the high thread's
// acquisition must meet its deadline; the demo exits non-zero if it
// starves.
package main

import (
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	"sunosmt/internal/sim"
	"sunosmt/mt"
)

// inversionLatency runs the triangle once and returns how long the
// high-priority (10) thread's mutex acquisition took while the
// low-priority (1) owner was runnable below a medium-priority (5)
// yield-spinner on one CPU.
func inversionLatency(inherit bool) time.Duration {
	const spinBudget = 100_000
	sys := mt.NewSystem(mt.Options{NCPU: 1})
	done := make(chan struct{})
	var latency atomic.Int64
	var mu mt.Mutex
	var ready, sGo mt.Sema
	_, err := sys.Spawn("inversion", func(t *mt.Thread, _ any) {
		defer close(done)
		r := t.Runtime()
		low, err := r.Create(func(c *mt.Thread, _ any) {
			mu.Enter(c)
			ready.V(c)
			c.Yield() // let the high-priority acquirer block behind us
			mu.Exit(c)
		}, nil, mt.CreateOpts{Flags: mt.ThreadWait, Priority: 1})
		if err != nil {
			log.Fatal(err)
		}
		medium, err := r.Create(func(c *mt.Thread, _ any) {
			sGo.P(c)
			for i := 0; i < spinBudget; i++ {
				c.Yield() // compute-bound: outranks the bare owner
			}
		}, nil, mt.CreateOpts{Flags: mt.ThreadWait, Priority: 5})
		if err != nil {
			log.Fatal(err)
		}
		ready.P(t) // low now owns the lock
		high, err := r.Create(func(c *mt.Thread, _ any) {
			sGo.V(c) // spinner becomes runnable...
			start := time.Now()
			mu.Enter(c) // ...while we block behind low
			latency.Store(int64(time.Since(start)))
			mu.Exit(c)
		}, nil, mt.CreateOpts{Flags: mt.ThreadWait, Priority: 10})
		if err != nil {
			log.Fatal(err)
		}
		t.Wait(high.ID())
		t.Wait(low.ID())
		t.Wait(medium.ID())
	}, nil, mt.ProcConfig{NoPriorityInheritance: !inherit})
	if err != nil {
		log.Fatal(err)
	}
	<-done
	return time.Duration(latency.Load())
}

func main() {
	controlLoopDemo()

	const deadline = 5 * time.Millisecond
	withPI := inversionLatency(true)
	withoutPI := inversionLatency(false)
	fmt.Printf("\npriority-inversion triangle (low holds, medium spins, high blocks):\n")
	fmt.Printf("high-priority acquisition with inheritance:    %v\n", withPI)
	fmt.Printf("high-priority acquisition without inheritance: %v\n", withoutPI)
	if withPI > deadline {
		fmt.Printf("FAIL: high-priority thread starved past its %v deadline\n", deadline)
		os.Exit(1)
	}
	fmt.Printf("deadline %v met: turnstile willing boosted the owner past the spinner\n", deadline)
}

func controlLoopDemo() {
	sys := mt.NewSystem(mt.Options{NCPU: 1, TimeSlice: 2 * time.Millisecond})
	done := make(chan struct{})
	ch := make(chan *mt.Proc, 1)
	proc, err := sys.Spawn("realtime", func(t *mt.Thread, _ any) {
		defer close(done)
		p := <-ch
		r := t.Runtime()

		// Background crowd: unbound, timeshare.
		var bg []mt.ThreadID
		stop := false
		var mu mt.Mutex
		for i := 0; i < 8; i++ {
			w, err := r.Create(func(c *mt.Thread, _ any) {
				for {
					mu.Enter(c)
					s := stop
					mu.Exit(c)
					if s {
						return
					}
					// background churn
					for j := 0; j < 1000; j++ {
						_ = j * j
					}
					c.Yield()
				}
			}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
			if err != nil {
				log.Fatal(err)
			}
			bg = append(bg, w.ID())
		}

		// The control loop: bound, real-time class.
		var worst time.Duration
		rt, err := r.Create(func(c *mt.Thread, _ any) {
			if err := p.Priocntl(c, sim.ClassRT, 20); err != nil {
				log.Fatal(err)
			}
			const ticks = 200
			period := 500 * time.Microsecond
			for i := 0; i < ticks; i++ {
				start := time.Now()
				if err := p.Sleep(c, period); err != nil {
					log.Fatal(err)
				}
				// Latency = how late we woke past the period.
				lat := time.Since(start) - period
				if lat > worst {
					worst = lat
				}
			}
		}, nil, mt.CreateOpts{Flags: mt.ThreadWait | mt.ThreadBindLWP})
		if err != nil {
			log.Fatal(err)
		}

		t.Wait(rt.ID())
		mu.Enter(t)
		stop = true
		mu.Exit(t)
		for _, id := range bg {
			t.Wait(id)
		}
		fmt.Printf("real-time control loop: 200 ticks at 500us period over background load\n")
		fmt.Printf("worst wakeup latency past the period: %v\n", worst)
		if worst > 50*time.Millisecond {
			fmt.Println("WARNING: latency looks non-real-time")
		}
	}, nil, mt.ProcConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ch <- proc
	<-done
}
