// Array compute: the paper's parallel-array argument from "Why have
// both threads and LWPs?". A matrix computation is divided among
// exactly one bound thread per processor — "write thread code that is
// really LWP code, much like locking down pages turns virtual memory
// into real memory" — and the bound LWPs join a gang so the kernel
// co-schedules them. The same work is then run with many unbound
// threads on few LWPs to show the extra switching the paper warns
// about.
package main

import (
	"fmt"
	"log"
	"time"

	"sunosmt/mt"
)

const (
	rows  = 256
	cols  = 256
	iters = 8
)

// relax performs a stencil pass over a band of rows, yielding every
// yieldEvery rows (0 = never: the 1:1 configuration has no sibling
// threads to switch to, the point of the paper's argument).
func relax(grid [][]float64, lo, hi, yieldEvery int, yield func()) {
	for it := 0; it < iters; it++ {
		for r := lo; r < hi; r++ {
			row := grid[r]
			for c := 1; c < cols-1; c++ {
				row[c] = 0.5*row[c] + 0.25*(row[c-1]+row[c+1])
			}
			if yieldEvery > 0 && r%yieldEvery == 0 {
				yield()
			}
		}
	}
}

func newGrid() [][]float64 {
	g := make([][]float64, rows)
	for i := range g {
		g[i] = make([]float64, cols)
		for j := range g[i] {
			g[i][j] = float64((i*cols + j) % 97)
		}
	}
	return g
}

// run partitions the grid among n threads created with flags and
// reports the wall time.
func run(sys *mt.System, label string, nthreads int, bound bool, lwps int) time.Duration {
	grid := newGrid()
	var elapsed time.Duration
	done := make(chan struct{})
	ch := make(chan *mt.Proc, 1)
	p, err := sys.Spawn(label, func(t *mt.Thread, _ any) {
		defer close(done)
		p := <-ch
		r := t.Runtime()
		if !bound {
			r.SetConcurrency(lwps)
		}
		start := time.Now()
		var ids []mt.ThreadID
		band := rows / nthreads
		for i := 0; i < nthreads; i++ {
			lo, hi := i*band, (i+1)*band
			if i == nthreads-1 {
				hi = rows
			}
			flags := mt.ThreadWait
			if bound {
				flags |= mt.ThreadBindLWP
			}
			w, err := r.Create(func(c *mt.Thread, _ any) {
				if bound {
					// One bound thread per processor, gang
					// scheduled for fine-grain parallelism.
					if err := p.JoinGang(c, 1, 30); err != nil {
						log.Fatal(err)
					}
				}
				yieldEvery := 1 // M:N: switch between sibling threads
				if bound {
					yieldEvery = 0 // 1:1: no thread switches needed
				}
				relax(grid, lo, hi, yieldEvery, func() { c.Yield() })
			}, nil, mt.CreateOpts{Flags: flags})
			if err != nil {
				log.Fatal(err)
			}
			ids = append(ids, w.ID())
		}
		for _, id := range ids {
			t.Wait(id)
		}
		elapsed = time.Since(start)
	}, nil, mt.ProcConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ch <- p
	<-done
	p.WaitExit()
	return elapsed
}

func main() {
	const ncpu = 4
	sys := mt.NewSystem(mt.Options{NCPU: ncpu})

	bound := run(sys, "bound-gang", ncpu, true, ncpu)
	fmt.Printf("%-34s %v\n", "4 bound gang threads on 4 CPUs:", bound)

	oversub := run(sys, "oversubscribed", 64, false, ncpu)
	fmt.Printf("%-34s %v\n", "64 unbound threads on 4 LWPs:", oversub)

	fmt.Printf("thread-switch overhead factor: %.2fx (the paper's argument for one thread per LWP)\n",
		float64(oversub)/float64(bound))
}
