package ktime

import (
	"sync/atomic"
	"testing"
	"time"
)

// collect waits for n values on ch, failing the test after a real-time
// limit (generous: the whole point of fast-forward is that virtual
// hours pass in milliseconds).
func collect(t *testing.T, ch <-chan int, n int) []int {
	t.Helper()
	out := make([]int, 0, n)
	deadline := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case v := <-ch:
			out = append(out, v)
		case <-deadline:
			t.Fatalf("timed out: got %d of %d timer firings (%v)", len(out), n, out)
		}
	}
	return out
}

func alwaysIdle() bool { return true }

// TestFastForwardJumpsIdleTime: with an always-idle predicate, timers
// hours out fire in deadline order within real milliseconds, and the
// clock lands past the last deadline.
func TestFastForwardJumpsIdleTime(t *testing.T) {
	ff := NewFastForward()
	ff.SetIdle(alwaysIdle)
	ch := make(chan int, 8)
	ff.AfterFunc(3*time.Hour, func() { ch <- 3 })
	ff.AfterFunc(1*time.Hour, func() { ch <- 1 })
	ff.AfterFunc(2*time.Hour, func() { ch <- 2 })
	got := collect(t, ch, 3)
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("firing order %v, want [1 2 3]", got)
		}
	}
	if now := ff.Now(); now < 3*time.Hour {
		t.Fatalf("Now() = %v after firing a 3h timer, want >= 3h", now)
	}
	if jumps, skipped := ff.Stats(); jumps == 0 || skipped < 3*time.Hour-time.Minute {
		t.Fatalf("Stats() = %d jumps, %v skipped; want jumps > 0 and ~3h skipped", jumps, skipped)
	}
}

// TestFastForwardIdenticalDeadlines: timers armed at the same virtual
// deadline fire in arming (FIFO) order, like Manual.Advance.
func TestFastForwardIdenticalDeadlines(t *testing.T) {
	ff := NewFastForward()
	ff.SetIdle(alwaysIdle)
	ch := make(chan int, 8)
	const when = time.Hour
	for i := 0; i < 5; i++ {
		i := i
		ff.AfterFunc(when, func() { ch <- i })
	}
	got := collect(t, ch, 5)
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-deadline firing order %v, want [0 1 2 3 4]", got)
		}
	}
}

// TestFastForwardArmDuringJump: a callback firing during a jump arms a
// further timer; the advancer picks it up and jumps again without any
// real waiting — the sequential-sleep pattern of every sleep loop.
func TestFastForwardArmDuringJump(t *testing.T) {
	ff := NewFastForward()
	ff.SetIdle(alwaysIdle)
	ch := make(chan int, 8)
	var step atomic.Int32
	var chain func()
	chain = func() {
		n := int(step.Add(1))
		ch <- n
		if n < 4 {
			ff.AfterFunc(time.Duration(n)*time.Hour, chain)
		}
	}
	ff.AfterFunc(time.Hour, chain)
	got := collect(t, ch, 4)
	for i := range got {
		if got[i] != i+1 {
			t.Fatalf("chained firing order %v, want [1 2 3 4]", got)
		}
	}
	if now := ff.Now(); now < 7*time.Hour {
		t.Fatalf("Now() = %v after a 1+1+2+3 hour chain, want >= 7h", now)
	}
}

// TestFastForwardDisableMidRun: SetEnabled(false) stops jumping —
// pending far-out timers stay pending — and re-enabling fires them.
func TestFastForwardDisableMidRun(t *testing.T) {
	ff := NewFastForward()
	ff.SetIdle(alwaysIdle)
	ch := make(chan int, 1)
	ff.SetEnabled(false)
	ff.AfterFunc(time.Hour, func() { ch <- 1 })
	select {
	case <-ch:
		t.Fatal("timer fired while fast-forward was disabled")
	case <-time.After(50 * time.Millisecond):
	}
	ff.SetEnabled(true)
	collect(t, ch, 1)
}

// TestFastForwardNotIdleMeansRealTime: while the idle predicate is
// false the clock never jumps; short timers still fire through the
// host timer at roughly wall speed.
func TestFastForwardNotIdleMeansRealTime(t *testing.T) {
	ff := NewFastForward()
	busy := atomic.Bool{}
	busy.Store(true)
	ff.SetIdle(func() bool { return !busy.Load() })
	ch := make(chan int, 2)
	ff.AfterFunc(time.Hour, func() { ch <- 99 })
	ff.AfterFunc(10*time.Millisecond, func() { ch <- 1 })
	start := time.Now()
	got := collect(t, ch, 1)
	if got[0] != 1 {
		t.Fatalf("got firing %v, want the 10ms timer", got)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("10ms timer fired early: the clock jumped while busy")
	}
	if jumps, _ := ff.Stats(); jumps != 0 {
		t.Fatalf("%d jumps while the system was busy, want 0", jumps)
	}
	busy.Store(false)
	ff.Kick()
	collect(t, ch, 1) // the 1h timer fires once idle
}

// TestFastForwardStopDuringIdle: a stopped timer never fires and does
// not block jumping to later deadlines.
func TestFastForwardStopDuringIdle(t *testing.T) {
	ff := NewFastForward()
	ch := make(chan int, 2)
	tm := ff.AfterFunc(time.Hour, func() { ch <- 1 })
	ff.AfterFunc(2*time.Hour, func() { ch <- 2 })
	if !tm.Stop() {
		t.Fatal("Stop() = false for a pending timer")
	}
	ff.SetIdle(alwaysIdle)
	ff.Kick()
	if got := collect(t, ch, 1); got[0] != 2 {
		t.Fatalf("got firing %v, want the 2h timer only", got)
	}
	select {
	case v := <-ch:
		t.Fatalf("stopped timer fired (%d)", v)
	case <-time.After(20 * time.Millisecond):
	}
}

// TestFastForwardJitterInteraction: chaos wraps the clock in Jittered,
// so deadlines are perturbed before arming. FastForwardOf must see
// through the wrapper, and jumps must honor the *jittered* deadline
// order.
func TestFastForwardJitterInteraction(t *testing.T) {
	ff := NewFastForward()
	jit := NewJittered(ff, func(d time.Duration) time.Duration {
		// Deterministic "jitter": halve every duration.
		return d / 2
	})
	if FastForwardOf(jit) != ff {
		t.Fatal("FastForwardOf failed to unwrap Jittered")
	}
	ff.SetIdle(alwaysIdle)
	ch := make(chan int, 4)
	// 4h jittered to 2h fires before an unjittered 3h timer.
	jit.AfterFunc(4*time.Hour, func() { ch <- 4 })
	ff.AfterFunc(3*time.Hour, func() { ch <- 3 })
	got := collect(t, ch, 2)
	if got[0] != 4 || got[1] != 3 {
		t.Fatalf("firing order %v, want [4 3] (jitter halves the 4h arm)", got)
	}
}

// TestFastForwardOfPlainClocks: non-fast-forward clocks unwrap to nil.
func TestFastForwardOfPlainClocks(t *testing.T) {
	if FastForwardOf(NewReal()) != nil {
		t.Fatal("FastForwardOf(Real) != nil")
	}
	if FastForwardOf(NewJittered(NewManual(), nil)) != nil {
		t.Fatal("FastForwardOf(Jittered(Manual)) != nil")
	}
	if FastForwardOf(nil) != nil {
		t.Fatal("FastForwardOf(nil) != nil")
	}
}
