package ktime

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"
)

// FastForward is a Clock that follows wall time while the system is
// busy and leaps over idle waits: when the registered idle predicate
// reports that nothing can make progress until a timer fires, the
// clock jumps straight to the earliest pending deadline and fires it,
// so sleep-heavy scenarios and seeded chaos sweeps run at CPU speed
// instead of wall-clock speed.
//
// Virtual time is wall time plus an accumulated skip:
//
//	Now() = time.Since(boot) + skip
//
// so time never stalls (a busy system observes ordinary wall-clock
// progress, and unexpired timers still fire in real time through a
// single host timer armed for the earliest deadline) and never runs
// backwards (skip only grows). Timers fire in deadline order, FIFO
// among equal deadlines, exactly like Manual.Advance.
//
// The jump machinery is driven by Kick, which the simulated kernel
// calls whenever its last schedulable LWP goes to sleep. A jump is
// only a *hint* that idle time can be skipped: the idle predicate is
// re-checked before every leap, and a jump that races with new host
// activity merely means some idle virtual time passed — which is
// always a legal observation, timers and timeouts being permitted to
// fire any time after their deadline.
type FastForward struct {
	boot time.Time
	skip atomic.Int64 // ns of virtual time leapt over

	mu     sync.Mutex
	seq    uint64
	timers ffHeap
	host   *time.Timer   // armed for the earliest wall deadline
	hostAt time.Duration // virtual deadline the host timer is armed for

	idle    atomic.Pointer[func() bool]
	onJump  atomic.Pointer[func(from, to time.Duration)]
	enabled atomic.Bool

	running atomic.Bool // an advance goroutine is live
	pending atomic.Bool // a Kick arrived while advancing

	jumps   atomic.Uint64
	skipped atomic.Int64 // == skip, kept separately for Stats symmetry
}

// NewFastForward returns an enabled fast-forward clock with Now()==0
// at the moment of the call. It behaves exactly like a Real clock
// until SetIdle registers an idle predicate and Kick is called.
func NewFastForward() *FastForward {
	ff := &FastForward{boot: time.Now()}
	ff.enabled.Store(true)
	return ff
}

// Now implements Clock. Lock-free: hot paths read it on every
// scheduler transition.
func (ff *FastForward) Now() time.Duration {
	return time.Since(ff.boot) + time.Duration(ff.skip.Load())
}

// AfterFunc implements Clock. Arming a timer kicks the advancer, so a
// timer armed while the system is already idle (including from inside
// another timer's callback during a jump) is immediately eligible to
// be leapt to.
func (ff *FastForward) AfterFunc(d time.Duration, fn func()) Timer {
	ff.mu.Lock()
	ff.seq++
	t := &ffTimer{owner: ff, when: ff.Now() + d, seq: ff.seq, fn: fn}
	heap.Push(&ff.timers, t)
	ff.rearmHostLocked()
	ff.mu.Unlock()
	ff.Kick()
	return t
}

// SetIdle registers the predicate consulted before every jump: it must
// report whether every schedulable entity is blocked waiting for time
// to pass. The predicate is called without the clock lock held and may
// take its own locks. The simulated kernel registers its
// all-LWPs-idle check here.
func (ff *FastForward) SetIdle(idle func() bool) {
	if idle == nil {
		ff.idle.Store(nil)
		return
	}
	ff.idle.Store(&idle)
}

// SetOnJump registers a hook called (without the clock lock) after
// every jump with the virtual time leapt from and to. The mt layer
// records an EvFastForward ring event here.
func (ff *FastForward) SetOnJump(fn func(from, to time.Duration)) {
	if fn == nil {
		ff.onJump.Store(nil)
		return
	}
	ff.onJump.Store(&fn)
}

// SetEnabled turns jumping on or off. Disabled, the clock keeps
// perfect wall time (plus whatever skip already accumulated) and
// timers fire in real time; pending timers are never lost.
func (ff *FastForward) SetEnabled(on bool) {
	ff.enabled.Store(on)
	if on {
		ff.Kick()
	}
}

// Kick prompts the clock to check for skippable idle time. Callers
// may hold arbitrary locks: the check runs on its own goroutine.
// Kick on a nil clock is a no-op.
func (ff *FastForward) Kick() {
	if ff == nil {
		return
	}
	if !ff.enabled.Load() || ff.idle.Load() == nil {
		return
	}
	ff.pending.Store(true)
	if ff.running.CompareAndSwap(false, true) {
		go ff.advanceLoop()
	}
}

// Stats reports how many jumps have occurred and how much idle
// virtual time they skipped in total.
func (ff *FastForward) Stats() (jumps uint64, skipped time.Duration) {
	return ff.jumps.Load(), time.Duration(ff.skipped.Load())
}

// PendingTimers reports how many timers are armed and not yet fired.
func (ff *FastForward) PendingTimers() int {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	n := 0
	for _, t := range ff.timers {
		if !t.stopped {
			n++
		}
	}
	return n
}

// advanceLoop drains pending kicks, jumping and firing until the
// system is no longer idle or no timers remain. The running/pending
// handshake guarantees a Kick during a drain is never lost.
func (ff *FastForward) advanceLoop() {
	for {
		for ff.pending.Swap(false) {
			for ff.step() {
			}
		}
		ff.running.Store(false)
		if !ff.pending.Load() || !ff.running.CompareAndSwap(false, true) {
			return
		}
	}
}

// step performs one jump-and-fire round. It reports whether it fired
// anything (so the caller loops: firing may leave the system idle
// again with more timers pending).
func (ff *FastForward) step() bool {
	if !ff.enabled.Load() {
		return false
	}
	idlep := ff.idle.Load()
	if idlep == nil || !(*idlep)() {
		return false
	}
	ff.mu.Lock()
	for len(ff.timers) > 0 && ff.timers[0].stopped {
		heap.Pop(&ff.timers)
	}
	if len(ff.timers) == 0 {
		ff.mu.Unlock()
		return false
	}
	now := ff.Now()
	var from, to time.Duration
	jumped := false
	if t := ff.timers[0]; t.when > now {
		delta := t.when - now
		ff.skip.Add(int64(delta))
		ff.skipped.Add(int64(delta))
		ff.jumps.Add(1)
		from, to = now, t.when
		jumped = true
	}
	fired := ff.fireDueLocked()
	ff.rearmHostLocked()
	ff.mu.Unlock()
	if jumped {
		if hook := ff.onJump.Load(); hook != nil {
			(*hook)(from, to)
		}
	}
	return jumped || fired
}

// hostFire is the host timer's callback: fire whatever is due at the
// current virtual time (wall time caught up with a deadline).
func (ff *FastForward) hostFire() {
	ff.mu.Lock()
	ff.fireDueLocked()
	ff.rearmHostLocked()
	ff.mu.Unlock()
}

// fireDueLocked pops and runs every timer whose deadline has passed,
// in deadline-then-arming order. Callbacks run with the clock
// unlocked (they re-enter the kernel, which may arm new timers).
func (ff *FastForward) fireDueLocked() bool {
	fired := false
	for len(ff.timers) > 0 && ff.timers[0].when <= ff.Now() {
		t := heap.Pop(&ff.timers).(*ffTimer)
		if t.stopped {
			continue
		}
		t.fired = true
		fired = true
		fn := t.fn
		ff.mu.Unlock()
		fn()
		ff.mu.Lock()
	}
	return fired
}

// rearmHostLocked points the single host timer at the earliest
// pending deadline so unskipped waits still fire in real time.
func (ff *FastForward) rearmHostLocked() {
	for len(ff.timers) > 0 && ff.timers[0].stopped {
		heap.Pop(&ff.timers)
	}
	if len(ff.timers) == 0 {
		if ff.host != nil {
			ff.host.Stop()
			ff.hostAt = -1
		}
		return
	}
	when := ff.timers[0].when
	d := when - ff.Now()
	if d < 0 {
		d = 0
	}
	if ff.host == nil {
		ff.host = time.AfterFunc(d, ff.hostFire)
	} else if ff.hostAt != when {
		ff.host.Reset(d)
	}
	ff.hostAt = when
}

type ffTimer struct {
	owner   *FastForward
	when    time.Duration
	seq     uint64
	fn      func()
	index   int
	stopped bool
	fired   bool
}

// Stop implements Timer.
func (t *ffTimer) Stop() bool {
	t.owner.mu.Lock()
	defer t.owner.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// ffHeap orders timers by deadline, FIFO among equals (same contract
// as the Manual clock's heap).
type ffHeap []*ffTimer

func (h ffHeap) Len() int { return len(h) }
func (h ffHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h ffHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *ffHeap) Push(x any) {
	t := x.(*ffTimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *ffHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// FastForwardOf returns the fast-forward clock underneath c, looking
// through Jittered wrappers, or nil. The kernel uses it to find the
// clock to kick regardless of chaos jitter wrapping.
func FastForwardOf(c Clock) *FastForward {
	for {
		switch t := c.(type) {
		case *FastForward:
			return t
		case *Jittered:
			c = t.Base()
		default:
			return nil
		}
	}
}
