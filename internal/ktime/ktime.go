// Package ktime is the time substrate for the simulated SunOS kernel.
//
// The kernel and the threads library never call the time package
// directly; they go through a Clock so that tests can drive time
// deterministically with a Manual clock while benchmarks and examples
// run against the Real wall clock.
//
// All times are expressed as a time.Duration offset from "boot", which
// mirrors the way the paper's SPARCstation measurements use the
// built-in microsecond-resolution real-time timer.
package ktime

import (
	"container/heap"
	"sync"
	"time"
)

// Clock provides monotonic time since boot and one-shot timers.
type Clock interface {
	// Now reports the time elapsed since the clock was created.
	Now() time.Duration
	// AfterFunc arranges for fn to be called once d has elapsed and
	// returns a Timer that can cancel the call. fn runs on an
	// unspecified goroutine and must not block.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Timer is a cancellable pending call created by Clock.AfterFunc.
type Timer interface {
	// Stop cancels the timer. It reports whether the call was
	// prevented from running.
	Stop() bool
}

// Real is a Clock backed by the machine's monotonic clock.
type Real struct {
	boot time.Time
}

// NewReal returns a Clock that follows wall time, with Now()==0 at the
// moment of the call.
func NewReal() *Real {
	return &Real{boot: time.Now()}
}

// Now implements Clock.
func (r *Real) Now() time.Duration { return time.Since(r.boot) }

// AfterFunc implements Clock.
func (r *Real) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{time.AfterFunc(d, fn)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// Manual is a deterministic Clock driven by explicit Advance calls.
// It never moves on its own, which makes time-dependent kernel
// behaviour (time slices, interval timers, SIGWAITING waits)
// reproducible in tests.
type Manual struct {
	mu     sync.Mutex
	now    time.Duration
	seq    uint64
	timers timerHeap
}

// NewManual returns a Manual clock at time zero.
func NewManual() *Manual { return &Manual{} }

// Now implements Clock.
func (m *Manual) Now() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Advance moves the clock forward by d, firing every timer whose
// deadline is reached in order of deadline (FIFO among equal
// deadlines). Timer callbacks run on the caller's goroutine with the
// clock unlocked.
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		panic("ktime: negative Advance")
	}
	m.mu.Lock()
	target := m.now + d
	for {
		if len(m.timers) == 0 || m.timers[0].when > target {
			break
		}
		t := heap.Pop(&m.timers).(*manualTimer)
		if t.stopped {
			continue
		}
		m.now = t.when
		fn := t.fn
		t.fired = true
		m.mu.Unlock()
		fn()
		m.mu.Lock()
	}
	m.now = target
	m.mu.Unlock()
}

// AfterFunc implements Clock. A zero or negative d fires on the next
// Advance call (including Advance(0)).
func (m *Manual) AfterFunc(d time.Duration, fn func()) Timer {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	t := &manualTimer{owner: m, when: m.now + d, seq: m.seq, fn: fn}
	heap.Push(&m.timers, t)
	return t
}

// PendingTimers reports how many timers are armed and not yet fired.
func (m *Manual) PendingTimers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, t := range m.timers {
		if !t.stopped {
			n++
		}
	}
	return n
}

type manualTimer struct {
	owner   *Manual
	when    time.Duration
	seq     uint64
	fn      func()
	index   int
	stopped bool
	fired   bool
}

func (t *manualTimer) Stop() bool {
	t.owner.mu.Lock()
	defer t.owner.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

type timerHeap []*manualTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *timerHeap) Push(x any) {
	t := x.(*manualTimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Sleep blocks the calling goroutine until d has elapsed on c.
func Sleep(c Clock, d time.Duration) {
	ch := make(chan struct{})
	c.AfterFunc(d, func() { close(ch) })
	<-ch
}

// Jittered wraps a Clock so that every AfterFunc duration is passed
// through a perturbation function before arming. Now is unperturbed:
// only the firing time of timers moves, which is how the chaos layer
// randomizes timeout and time-slice arrival without breaking monotonic
// time. A nil jitter function makes the wrapper transparent.
type Jittered struct {
	base   Clock
	jitter func(time.Duration) time.Duration
}

// NewJittered wraps base with the given duration perturbation.
func NewJittered(base Clock, jitter func(time.Duration) time.Duration) *Jittered {
	return &Jittered{base: base, jitter: jitter}
}

// Base returns the wrapped clock.
func (j *Jittered) Base() Clock { return j.base }

// Now implements Clock.
func (j *Jittered) Now() time.Duration { return j.base.Now() }

// AfterFunc implements Clock, perturbing d.
func (j *Jittered) AfterFunc(d time.Duration, fn func()) Timer {
	if j.jitter != nil {
		d = j.jitter(d)
	}
	return j.base.AfterFunc(d, fn)
}
