package ktime

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestManualNowStartsAtZero(t *testing.T) {
	m := NewManual()
	if got := m.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestManualAdvanceMovesNow(t *testing.T) {
	m := NewManual()
	m.Advance(3 * time.Second)
	if got := m.Now(); got != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", got)
	}
	m.Advance(0)
	if got := m.Now(); got != 3*time.Second {
		t.Fatalf("Now() after Advance(0) = %v, want 3s", got)
	}
}

func TestManualNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative Advance")
		}
	}()
	NewManual().Advance(-time.Second)
}

func TestManualTimerFiresAtDeadline(t *testing.T) {
	m := NewManual()
	var fired atomic.Bool
	m.AfterFunc(10*time.Millisecond, func() { fired.Store(true) })
	m.Advance(9 * time.Millisecond)
	if fired.Load() {
		t.Fatal("timer fired before deadline")
	}
	m.Advance(time.Millisecond)
	if !fired.Load() {
		t.Fatal("timer did not fire at deadline")
	}
}

func TestManualTimerSeesDeadlineTime(t *testing.T) {
	m := NewManual()
	var at time.Duration
	m.AfterFunc(10*time.Millisecond, func() { at = m.Now() })
	m.Advance(time.Second)
	if at != 10*time.Millisecond {
		t.Fatalf("callback observed Now()=%v, want 10ms", at)
	}
}

func TestManualTimersFireInDeadlineOrder(t *testing.T) {
	m := NewManual()
	var order []int
	m.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	m.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	m.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })
	m.Advance(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestManualEqualDeadlinesFIFO(t *testing.T) {
	m := NewManual()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		m.AfterFunc(5*time.Millisecond, func() { order = append(order, i) })
	}
	m.Advance(5 * time.Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-deadline order = %v, want ascending", order)
		}
	}
}

func TestManualStopPreventsFire(t *testing.T) {
	m := NewManual()
	var fired atomic.Bool
	tm := m.AfterFunc(time.Millisecond, func() { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop() = false on armed timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	m.Advance(time.Second)
	if fired.Load() {
		t.Fatal("stopped timer fired")
	}
}

func TestManualStopAfterFire(t *testing.T) {
	m := NewManual()
	tm := m.AfterFunc(time.Millisecond, func() {})
	m.Advance(time.Millisecond)
	if tm.Stop() {
		t.Fatal("Stop() = true after fire, want false")
	}
}

func TestManualTimerArmedInsideCallback(t *testing.T) {
	m := NewManual()
	var second atomic.Bool
	m.AfterFunc(time.Millisecond, func() {
		m.AfterFunc(time.Millisecond, func() { second.Store(true) })
	})
	m.Advance(10 * time.Millisecond)
	if !second.Load() {
		t.Fatal("timer armed inside a callback did not fire within the same Advance")
	}
}

func TestManualPendingTimers(t *testing.T) {
	m := NewManual()
	a := m.AfterFunc(time.Millisecond, func() {})
	m.AfterFunc(2*time.Millisecond, func() {})
	if got := m.PendingTimers(); got != 2 {
		t.Fatalf("PendingTimers() = %d, want 2", got)
	}
	a.Stop()
	if got := m.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers() after Stop = %d, want 1", got)
	}
	m.Advance(time.Hour)
	if got := m.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers() after fire = %d, want 0", got)
	}
}

func TestManualConcurrentAfterFunc(t *testing.T) {
	m := NewManual()
	var count atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				m.AfterFunc(time.Duration(j)*time.Millisecond, func() { count.Add(1) })
			}
		}()
	}
	wg.Wait()
	m.Advance(time.Second)
	if count.Load() != 50*20 {
		t.Fatalf("fired %d timers, want %d", count.Load(), 50*20)
	}
}

func TestRealClockAdvances(t *testing.T) {
	r := NewReal()
	t0 := r.Now()
	time.Sleep(2 * time.Millisecond)
	if r.Now() <= t0 {
		t.Fatal("real clock did not advance")
	}
}

func TestRealAfterFunc(t *testing.T) {
	r := NewReal()
	ch := make(chan struct{})
	r.AfterFunc(time.Millisecond, func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("real timer did not fire")
	}
}

func TestSleepOnManualClock(t *testing.T) {
	m := NewManual()
	done := make(chan struct{})
	go func() {
		Sleep(m, 100*time.Millisecond)
		close(done)
	}()
	// Wait until the sleeper has armed its timer.
	for m.PendingTimers() == 0 {
		time.Sleep(time.Microsecond)
	}
	m.Advance(100 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

// Property: for any sequence of timer durations, advancing past the
// maximum fires all of them, and the observed fire order is sorted by
// deadline.
func TestManualFireOrderProperty(t *testing.T) {
	f := func(ds []uint16) bool {
		m := NewManual()
		type rec struct{ when time.Duration }
		var mu sync.Mutex
		var fires []rec
		var max time.Duration
		for _, d := range ds {
			dd := time.Duration(d) * time.Microsecond
			if dd > max {
				max = dd
			}
			m.AfterFunc(dd, func() {
				mu.Lock()
				fires = append(fires, rec{m.Now()})
				mu.Unlock()
			})
		}
		m.Advance(max + time.Second)
		if len(fires) != len(ds) {
			return false
		}
		for i := 1; i < len(fires); i++ {
			if fires[i].when < fires[i-1].when {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
