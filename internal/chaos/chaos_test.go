package chaos

import (
	"testing"
	"time"
)

// drive runs a fixed query script against a fresh source and returns
// the journal lines.
func drive(seed uint64) []string {
	s := New(DefaultConfig(seed))
	for i := 0; i < 400; i++ {
		s.Preempt()
		s.ThreadPreempt()
		s.PickReorder(3)
		s.RunqReorder(4)
		s.WakeReorder(2)
		s.SpuriousWakeup()
		s.EINTR()
		s.Sigwaiting()
		s.Jitter(time.Millisecond)
	}
	var out []string
	for _, e := range s.Journal().Events() {
		out = append(out, e.Kind+" "+e.Msg)
	}
	return out
}

func TestSameSeedSameJournal(t *testing.T) {
	a := drive(42)
	b := drive(42)
	if len(a) == 0 {
		t.Fatal("seed 42 fired no events over 400 rounds; rates too low to explore anything")
	}
	if len(a) != len(b) {
		t.Fatalf("journal lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("journal diverges at event %d:\n  run1: %s\n  run2: %s", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := drive(1)
	b := drive(2)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 produced identical journals")
		}
	}
}

func TestNilSourceIsInert(t *testing.T) {
	var s *Source
	if s.Enabled() || s.Preempt() || s.ThreadPreempt() || s.SpuriousWakeup() ||
		s.EINTR() || s.Sigwaiting() {
		t.Fatal("nil source fired")
	}
	if s.PickReorder(8) != -1 || s.RunqReorder(8) != -1 || s.WakeReorder(8) != -1 {
		t.Fatal("nil source chose an index")
	}
	if d := s.Jitter(time.Second); d != time.Second {
		t.Fatalf("nil source jittered: %v", d)
	}
	if s.Journal() != nil || s.Seed() != 0 {
		t.Fatal("nil source has state")
	}
}

func TestDecisionsAreCounterIndexed(t *testing.T) {
	// The n-th decision at a site must not depend on activity at
	// other sites: interleave queries differently, answers match.
	a := New(DefaultConfig(7))
	b := New(DefaultConfig(7))
	var seqA, seqB []bool
	for i := 0; i < 200; i++ {
		seqA = append(seqA, a.Preempt())
		a.EINTR() // extra traffic on another site
		a.EINTR()
	}
	for i := 0; i < 200; i++ {
		seqB = append(seqB, b.Preempt())
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("decision %d at sim.preempt depends on other sites", i)
		}
	}
}

func TestJitterBounded(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.TimerJitter = 1000 // always
	cfg.MaxTimerJitter = time.Millisecond
	s := New(cfg)
	for i := 0; i < 500; i++ {
		d := s.Jitter(10 * time.Millisecond)
		if d < 9*time.Millisecond || d > 11*time.Millisecond {
			t.Fatalf("jitter out of range: %v", d)
		}
	}
	// Tiny durations never go non-positive.
	for i := 0; i < 500; i++ {
		if d := s.Jitter(time.Microsecond); d < time.Nanosecond {
			t.Fatalf("jitter produced non-positive duration: %v", d)
		}
	}
}
