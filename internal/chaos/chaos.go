// Package chaos is a seeded, deterministic fault-injection and
// schedule-exploration source for the simulated kernel and the threads
// library.
//
// The paper's correctness claims — per-thread signal masks, SIGWAITING
// pool growth, locks in shared mappings surviving fork — are claims
// about *all* interleavings, but a unit test exercises exactly one
// schedule per run. A chaos.Source perturbs every decision point the
// substrate exposes (forced preemption, dispatch pick order, wakeup
// order, spurious wakeups, injected EINTR, early SIGWAITING, timer
// jitter) so a sweep over seeds searches the schedule space, and any
// failure reproduces from its seed alone.
//
// # Determinism
//
// Every decision is a pure function of (seed, site name, per-site
// counter): the n-th query at a given site always answers the same
// way for a given seed, no matter how host goroutines are scheduled.
// Wall-clock time and math/rand are never consulted. Fired decisions
// are recorded in an event journal (a trace.Buffer with zero
// timestamps), so two runs of the same seed over the same workload
// produce byte-identical journals; a failing seed prints as a
// replayable -chaos.seed=N.
//
// # Safety
//
// Perturbations are chosen from the safe direction of each decision:
// dispatch reordering picks a different *eligible* runnable LWP (a CPU
// is never left idle while work exists), SIGWAITING is posted early
// (never suppressed), spurious wakeups are injected only at sites
// whose callers loop (Mesa semantics), and EINTR only on sleeps the
// caller declared interruptible. A nil *Source is valid and injects
// nothing, so hook sites need no nil checks.
package chaos

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"sunosmt/internal/trace"
)

// Config sets the seed and the per-site firing rates of a Source.
// Rates are per-mille (0–1000); zero disables a site.
type Config struct {
	// Seed selects the schedule; the same seed over the same
	// workload replays the same decisions.
	Seed uint64

	// Preempt forces an on-CPU LWP to release its processor at a
	// kernel checkpoint, as if its time slice expired.
	Preempt int
	// ThreadPreempt forces an unbound thread back onto the library
	// run queue at a thread checkpoint, handing its LWP to another
	// runnable thread.
	ThreadPreempt int
	// PickReorder makes the kernel dispatcher pick a different
	// eligible runnable LWP than the best-priority one, delaying
	// the best LWP's dispatch.
	PickReorder int
	// RunqReorder makes the library dispatcher pop a different
	// runnable thread than the best-priority one.
	RunqReorder int
	// WakeReorder wakes a non-head LWP from a kernel sleep queue,
	// breaking the FIFO wakeup order.
	WakeReorder int
	// SpuriousWakeup makes a thread-level park at a synchronization
	// primitive return immediately, as condition variables are
	// allowed to.
	SpuriousWakeup int
	// EINTR fails an interruptible kernel sleep with a spurious
	// signal interruption.
	EINTR int
	// Sigwaiting posts SIGWAITING before the true all-LWPs-blocked
	// condition holds, randomizing the pool-growth timing.
	Sigwaiting int
	// TimerJitter perturbs AfterFunc durations (through a
	// ktime.Jittered clock) by up to MaxTimerJitter in either
	// direction.
	TimerJitter    int
	MaxTimerJitter time.Duration
	// SweepReorder rotates the order in which the owner-death sweep
	// visits the registered shared variables, exploring which
	// waiters observe OWNERDEAD first.
	SweepReorder int
	// AgeOutEarly expires an idle pool LWP's age-out grace period
	// immediately, exploring shrink/growth races. Early expiry is
	// the safe direction: the retirement re-checks eligibility and
	// the pool regrows on SIGWAITING.
	AgeOutEarly int
	// DetectReorder rotates the start-vertex order of a deadlock
	// detection pass. Cycles found are order-independent; the site
	// exercises the walk itself.
	DetectReorder int
	// StealReorder makes a work-stealing dispatcher (kernel per-CPU
	// queues and the library's sharded run queue alike) steal from a
	// different victim queue than the best one. The thief still
	// takes *a* queued item, so perturbation never idles a CPU or
	// LWP while work exists — only placement is explored.
	StealReorder int
	// BalanceEarly runs the periodic run-queue balancer ahead of its
	// period at a scheduling point. Early balancing is the safe
	// direction: moves only ever shift queued work toward idler
	// CPUs, and the work-conservation invariant is unaffected.
	BalanceEarly int
	// AllocFail fails an address-space carve (Mmap, Sbrk, stack
	// segment) with a transient ENOMEM. Failing is the safe
	// direction only for callers that handle ENOMEM, so the rate is
	// zero in DefaultConfig; the exhaustion sweeps enable it.
	AllocFail int
	// LWPSpawnFail fails a kernel LWP creation with a transient
	// EAGAIN, as if the kernel hit its process or memory limits.
	// Zero in DefaultConfig (see AllocFail).
	LWPSpawnFail int
	// StackFail fails a library thread-stack allocation with a
	// transient EAGAIN. Zero in DefaultConfig (see AllocFail).
	StackFail int

	// JournalCapacity bounds the event journal (default 4096).
	JournalCapacity int
}

// DefaultConfig returns the rates used by the chaos test sweeps:
// every site enabled, tuned so a few hundred scheduling operations see
// a handful of perturbations of each kind.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:           seed,
		Preempt:        100,
		ThreadPreempt:  150,
		PickReorder:    150,
		RunqReorder:    150,
		WakeReorder:    250,
		SpuriousWakeup: 100,
		EINTR:          60,
		Sigwaiting:     25,
		TimerJitter:    200,
		MaxTimerJitter: time.Millisecond,
		SweepReorder:   300,
		AgeOutEarly:    150,
		DetectReorder:  200,
		StealReorder:   150,
		BalanceEarly:   100,
	}
}

// FaultConfig is DefaultConfig with the resource-exhaustion sites
// (AllocFail, LWPSpawnFail, StackFail) enabled as well: every
// schedule perturbation of the default sweeps plus transient
// allocation failures on the creation paths. Only workloads that
// treat EAGAIN/ENOMEM as recoverable should run under it.
func FaultConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.AllocFail = 80
	cfg.LWPSpawnFail = 120
	cfg.StackFail = 80
	return cfg
}

// Source issues deterministic perturbation decisions. A nil *Source
// never fires. One Source must not be shared between systems whose
// journals are compared: the journal interleaves all sites.
type Source struct {
	cfg Config

	mu       sync.Mutex
	counters map[string]uint64
	journal  *trace.Buffer

	// Recording mode: every consulted decision is appended in global
	// order, so the run's schedule serializes to a journal.
	recording bool
	decisions []trace.Decision

	// Replay mode (non-nil replay map): decisions are answered from
	// per-site queues instead of rolled, and the first inconsistency
	// between the recorded stream and the live run is kept in div.
	replay map[string][]trace.Decision
	rnext  map[string]int
	div    *Divergence
}

// Divergence describes the first point where a replayed run stopped
// matching its recording: the site was consulted more times than the
// journal holds (Exhausted), or with a different input — a different
// candidate count or timer duration — meaning the schedule had
// already drifted before the decision applied (Want holds the
// recorded decision, GotN the live input).
type Divergence struct {
	Site      string
	Index     int // per-site consultation index
	Exhausted bool
	Want      trace.Decision
	GotN      int64
}

// String implements fmt.Stringer.
func (d *Divergence) String() string {
	if d == nil {
		return "<no divergence>"
	}
	if d.Exhausted {
		return fmt.Sprintf("chaos replay diverged: site %s consulted %d times, journal ends at %d (live input %d)",
			d.Site, d.Index+1, d.Index, d.GotN)
	}
	return fmt.Sprintf("chaos replay diverged: site %s query %d recorded input %d, live input %d",
		d.Site, d.Index, d.Want.N, d.GotN)
}

// New returns a Source with the given configuration.
func New(cfg Config) *Source {
	if cfg.JournalCapacity <= 0 {
		cfg.JournalCapacity = 4096
	}
	return &Source{
		cfg:      cfg,
		counters: make(map[string]uint64),
		// nil now: journal events carry zero timestamps, so two
		// runs of one seed compare equal event-for-event.
		journal: trace.New(cfg.JournalCapacity, nil),
	}
}

// Enabled reports whether the source injects anything (false for nil).
func (s *Source) Enabled() bool { return s != nil }

// Seed returns the configured seed (0 for nil).
func (s *Source) Seed() uint64 {
	if s == nil {
		return 0
	}
	return s.cfg.Seed
}

// Journal returns the event journal of fired decisions (nil for nil).
func (s *Source) Journal() *trace.Buffer {
	if s == nil {
		return nil
	}
	return s.journal
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// well-distributed bijection on 64-bit values.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// siteHash is FNV-1a over the site name.
func siteHash(site string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return h
}

// rollLocked draws the next value for site: a pure function of (seed,
// site, per-site counter), independent of host timing.
func (s *Source) rollLocked(site string) uint64 {
	n := s.counters[site]
	s.counters[site] = n + 1
	return splitmix64(s.cfg.Seed ^ siteHash(site) ^ (n * 0x9e3779b97f4a7c15))
}

// replayNextLocked pops the next recorded decision for site,
// verifying the live input n matches the recorded one. On journal
// exhaustion or input mismatch it keeps the first divergence and
// reports !ok; the caller then applies no perturbation (always a
// safe answer).
func (s *Source) replayNextLocked(site string, n int64) (trace.Decision, bool) {
	i := s.rnext[site]
	q := s.replay[site]
	if i >= len(q) {
		if s.div == nil {
			s.div = &Divergence{Site: site, Index: i, Exhausted: true, GotN: n}
		}
		return trace.Decision{}, false
	}
	s.rnext[site] = i + 1
	d := q[i]
	if d.N != n {
		if s.div == nil {
			s.div = &Divergence{Site: site, Index: i, Want: d, GotN: n}
		}
		return trace.Decision{}, false
	}
	return d, true
}

// recordLocked appends a consulted decision in global order.
func (s *Source) recordLocked(site string, n, value int64) {
	if s.recording {
		s.decisions = append(s.decisions, trace.Decision{Site: site, N: n, Value: value})
	}
}

// fire decides a boolean site and journals a hit.
func (s *Source) fire(site string, permille int) bool {
	if s == nil || permille <= 0 {
		return false
	}
	s.mu.Lock()
	var hit bool
	if s.replay != nil {
		d, ok := s.replayNextLocked(site, 1)
		hit = ok && d.Value != 0
	} else {
		h := s.rollLocked(site)
		hit = h%1000 < uint64(permille)
	}
	v := int64(0)
	if hit {
		v = 1
	}
	s.recordLocked(site, 1, v)
	if hit {
		s.journal.Add("chaos", "%s", site)
	}
	s.mu.Unlock()
	return hit
}

// choose decides an index site: -1 means "no perturbation", otherwise
// an index in [0, n).
func (s *Source) choose(site string, n, permille int) int {
	if s == nil || permille <= 0 || n <= 1 {
		return -1
	}
	s.mu.Lock()
	idx := -1
	if s.replay != nil {
		if d, ok := s.replayNextLocked(site, int64(n)); ok {
			idx = int(d.Value)
		}
	} else {
		h := s.rollLocked(site)
		if h%1000 < uint64(permille) {
			idx = int((h >> 32) % uint64(n))
		}
	}
	s.recordLocked(site, int64(n), int64(idx))
	if idx >= 0 {
		s.journal.Add("chaos", "%s idx=%d/%d", site, idx, n)
	}
	s.mu.Unlock()
	return idx
}

// Preempt reports whether an on-CPU LWP should be forced off its
// processor at this kernel checkpoint.
func (s *Source) Preempt() bool {
	if s == nil {
		return false
	}
	return s.fire("sim.preempt", s.cfg.Preempt)
}

// ThreadPreempt reports whether an unbound thread should be forced
// back onto the library run queue at this thread checkpoint.
func (s *Source) ThreadPreempt() bool {
	if s == nil {
		return false
	}
	return s.fire("core.preempt", s.cfg.ThreadPreempt)
}

// PickReorder returns the index of the eligible runnable LWP the
// kernel dispatcher should pick instead of the best one, or -1 to keep
// the best. n is the number of eligible candidates.
func (s *Source) PickReorder(n int) int {
	if s == nil {
		return -1
	}
	return s.choose("sim.pick", n, s.cfg.PickReorder)
}

// RunqReorder returns the index of the queued thread the library
// dispatcher should pop instead of the best one, or -1.
func (s *Source) RunqReorder(n int) int {
	if s == nil {
		return -1
	}
	return s.choose("core.runq", n, s.cfg.RunqReorder)
}

// WakeReorder returns the index of the sleep-queue waiter to wake
// instead of the FIFO head, or -1.
func (s *Source) WakeReorder(n int) int {
	if s == nil {
		return -1
	}
	return s.choose("sim.wake", n, s.cfg.WakeReorder)
}

// SpuriousWakeup reports whether a thread-level park should return
// immediately without a real wake.
func (s *Source) SpuriousWakeup() bool {
	if s == nil {
		return false
	}
	return s.fire("tsync.spurious", s.cfg.SpuriousWakeup)
}

// EINTR reports whether an interruptible kernel sleep should fail with
// a spurious interruption.
func (s *Source) EINTR() bool {
	if s == nil {
		return false
	}
	return s.fire("sim.eintr", s.cfg.EINTR)
}

// Sigwaiting reports whether SIGWAITING should be posted early, before
// the all-LWPs-blocked condition truly holds.
func (s *Source) Sigwaiting() bool {
	if s == nil {
		return false
	}
	return s.fire("sim.sigwaiting", s.cfg.Sigwaiting)
}

// SweepReorder returns the index at which the owner-death sweep should
// start its rotation over n registered variables, or -1 for the
// sorted order.
func (s *Source) SweepReorder(n int) int {
	if s == nil {
		return -1
	}
	return s.choose("usync.sweep", n, s.cfg.SweepReorder)
}

// AgeOutEarly reports whether an idle pool LWP's age-out grace period
// should expire immediately instead of after the configured idle time.
func (s *Source) AgeOutEarly() bool {
	if s == nil {
		return false
	}
	return s.fire("core.ageout", s.cfg.AgeOutEarly)
}

// DetectReorder returns the index at which a deadlock detection pass
// should start its rotation over n wait-for vertices, or -1.
func (s *Source) DetectReorder(n int) int {
	if s == nil {
		return -1
	}
	return s.choose("core.detect", n, s.cfg.DetectReorder)
}

// StealReorder returns the index of the victim queue a work-stealing
// dispatcher should steal from instead of the best-priority one, or
// -1 to keep the best. n is the number of queues with stealable work.
func (s *Source) StealReorder(n int) int {
	if s == nil {
		return -1
	}
	return s.choose("sched.steal", n, s.cfg.StealReorder)
}

// BalanceEarly reports whether the periodic run-queue balancer should
// run now, ahead of its configured period.
func (s *Source) BalanceEarly() bool {
	if s == nil {
		return false
	}
	return s.fire("sched.balance", s.cfg.BalanceEarly)
}

// AllocFail reports whether an address-space carve should fail with a
// transient ENOMEM.
func (s *Source) AllocFail() bool {
	if s == nil {
		return false
	}
	return s.fire("vm.allocfail", s.cfg.AllocFail)
}

// LWPSpawnFail reports whether a kernel LWP creation should fail with
// a transient EAGAIN.
func (s *Source) LWPSpawnFail() bool {
	if s == nil {
		return false
	}
	return s.fire("sim.lwpspawnfail", s.cfg.LWPSpawnFail)
}

// StackFail reports whether a library thread-stack allocation should
// fail with a transient EAGAIN.
func (s *Source) StackFail() bool {
	if s == nil {
		return false
	}
	return s.fire("core.stackfail", s.cfg.StackFail)
}

// Jitter perturbs a timer duration by up to ±MaxTimerJitter, never
// below one nanosecond. ktime.Jittered calls it for every AfterFunc.
func (s *Source) Jitter(d time.Duration) time.Duration {
	if s == nil || s.cfg.TimerJitter <= 0 || s.cfg.MaxTimerJitter <= 0 || d <= 0 {
		return d
	}
	s.mu.Lock()
	nd := d
	if s.replay != nil {
		if rec, ok := s.replayNextLocked("ktime.jitter", int64(d)); ok {
			nd = time.Duration(rec.Value)
		}
	} else {
		h := s.rollLocked("ktime.jitter")
		if h%1000 < uint64(s.cfg.TimerJitter) {
			span := int64(s.cfg.MaxTimerJitter)
			nd = d + time.Duration(int64((h>>32)%uint64(2*span+1))-span)
			if nd < time.Nanosecond {
				nd = time.Nanosecond
			}
		}
	}
	s.recordLocked("ktime.jitter", int64(d), int64(nd))
	if nd != d {
		s.journal.Add("chaos", "ktime.jitter %v -> %v", d, nd)
	}
	s.mu.Unlock()
	return nd
}

// StartRecording turns on decision recording: from this point every
// consulted decision is kept in global order, ready to serialize with
// Schedule. Call it before the workload starts so the journal covers
// the whole run. No-op on a nil Source.
func (s *Source) StartRecording() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.recording = true
	s.mu.Unlock()
}

// Recording reports whether decision recording is on.
func (s *Source) Recording() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recording
}

// Schedule snapshots the recorded decision stream into a journal
// whose metadata carries the full chaos Config, so NewReplay can
// rebuild an equivalent source from the journal alone. The caller
// typically appends the run's ring events before writing it out.
func (s *Source) Schedule() *trace.Journal {
	j := trace.NewJournal()
	if s == nil {
		return j
	}
	s.mu.Lock()
	if raw, err := json.Marshal(s.cfg); err == nil {
		j.Meta["chaos-config"] = string(raw)
	}
	j.Meta["seed"] = fmt.Sprint(s.cfg.Seed)
	j.Decisions = append([]trace.Decision(nil), s.decisions...)
	s.mu.Unlock()
	return j
}

// NewReplay returns a Source that re-issues the journal's decision
// stream instead of rolling fresh decisions: the n-th consultation of
// each site answers exactly what the recorded run was told, so the
// dispatcher's choice points are driven back down the recorded
// schedule. The journal must have been produced by Schedule (its
// metadata carries the recorded Config, which replay reuses so the
// same sites are active at the same rates). Divergence reports the
// first inconsistency between the recording and the live run.
func NewReplay(j *trace.Journal) (*Source, error) {
	raw, ok := j.Meta["chaos-config"]
	if !ok {
		return nil, fmt.Errorf("chaos: journal has no chaos-config metadata")
	}
	var cfg Config
	if err := json.Unmarshal([]byte(raw), &cfg); err != nil {
		return nil, fmt.Errorf("chaos: bad chaos-config metadata: %w", err)
	}
	s := New(cfg)
	s.replay = make(map[string][]trace.Decision)
	s.rnext = make(map[string]int)
	for _, d := range j.Decisions {
		s.replay[d.Site] = append(s.replay[d.Site], d)
	}
	return s, nil
}

// Replaying reports whether the source is in replay mode.
func (s *Source) Replaying() bool {
	if s == nil {
		return false
	}
	return s.replay != nil
}

// Divergence returns the first recorded replay divergence, or nil
// when the replayed run has followed the journal exactly so far.
func (s *Source) Divergence() *Divergence {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.div
}
