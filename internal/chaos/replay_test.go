package chaos

import (
	"bytes"
	"testing"
	"time"

	"sunosmt/internal/trace"
)

// drive consults a fixed mix of sites and returns every answer, so a
// recorded source and its replay can be compared decision for
// decision.
func driveSites(s *Source) []int64 {
	var out []int64
	for i := 0; i < 200; i++ {
		b := int64(0)
		if s.Preempt() {
			b = 1
		}
		out = append(out, b)
		out = append(out, int64(s.PickReorder(4)))
		out = append(out, int64(s.WakeReorder(3)))
		out = append(out, int64(s.Jitter(time.Duration(i+1)*time.Millisecond)))
	}
	return out
}

// TestRecordReplayRoundTrip: a recorded decision stream serialized
// through the journal format and replayed answers every consultation
// identically, with the divergence detector silent.
func TestRecordReplayRoundTrip(t *testing.T) {
	rec := New(DefaultConfig(7))
	rec.StartRecording()
	want := driveSites(rec)

	var buf bytes.Buffer
	if err := rec.Schedule().Write(&buf); err != nil {
		t.Fatal(err)
	}
	j, err := trace.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplay(j)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Replaying() {
		t.Fatal("NewReplay source not in replay mode")
	}
	got := driveSites(rep)
	if len(got) != len(want) {
		t.Fatalf("replay answered %d decisions, recorded %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decision %d: replay answered %d, recorded %d", i, got[i], want[i])
		}
	}
	if d := rep.Divergence(); d != nil {
		t.Fatalf("divergence on a faithful replay: %v", d)
	}
	// The chaos journals must match line for line too.
	a, b := rec.Journal().Events(), rep.Journal().Events()
	if len(a) != len(b) {
		t.Fatalf("journal lengths differ: recorded %d, replayed %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Msg != b[i].Msg {
			t.Fatalf("journal line %d differs: %q vs %q", i, a[i].Msg, b[i].Msg)
		}
	}
}

// TestReplayDetectsInputMismatch: consulting a site with a different
// candidate count than recorded is flagged as the first divergence,
// and the replay answers "no perturbation" from then on at that site.
func TestReplayDetectsInputMismatch(t *testing.T) {
	rec := New(DefaultConfig(7))
	rec.StartRecording()
	for i := 0; i < 50; i++ {
		rec.PickReorder(4)
	}
	rep, err := NewReplay(rec.Schedule())
	if err != nil {
		t.Fatal(err)
	}
	rep.PickReorder(4)
	if d := rep.Divergence(); d != nil {
		t.Fatalf("unexpected divergence: %v", d)
	}
	rep.PickReorder(5) // live run reached the site in a different state
	d := rep.Divergence()
	if d == nil {
		t.Fatal("input mismatch not detected")
	}
	if d.Site != "sim.pick" || d.Index != 1 || d.Exhausted || d.GotN != 5 || d.Want.N != 4 {
		t.Fatalf("divergence = %+v, want sim.pick index 1, got-n 5, want-n 4", d)
	}
	// Only the first divergence is kept.
	rep.PickReorder(6)
	if d2 := rep.Divergence(); d2 != d {
		t.Fatalf("later divergence replaced the first: %v", d2)
	}
}

// TestReplayDetectsExhaustion: consulting a site more often than the
// journal holds is the other divergence class.
func TestReplayDetectsExhaustion(t *testing.T) {
	rec := New(DefaultConfig(9))
	rec.StartRecording()
	rec.Preempt()
	rep, err := NewReplay(rec.Schedule())
	if err != nil {
		t.Fatal(err)
	}
	rep.Preempt()
	rep.Preempt()
	d := rep.Divergence()
	if d == nil || !d.Exhausted || d.Site != "sim.preempt" || d.Index != 1 {
		t.Fatalf("divergence = %+v, want sim.preempt exhausted at index 1", d)
	}
}

// TestNewReplayRequiresConfig: a journal without the recorded config
// cannot be replayed (the active-site set would be unknown).
func TestNewReplayRequiresConfig(t *testing.T) {
	if _, err := NewReplay(trace.NewJournal()); err == nil {
		t.Fatal("NewReplay accepted a journal without chaos-config metadata")
	}
}
