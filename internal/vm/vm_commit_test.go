package vm

import (
	"errors"
	"testing"
)

// Tests for the reserve/commit split: MapStack carves address space
// without committing any page, pages commit lazily on touch, and the
// accounting (Reserved vs Committed vs PeakCommitted) tracks the
// difference.

func TestMapStackReservesWithoutCommitting(t *testing.T) {
	as := New(nil)
	const size = 64 << 10
	base, err := as.MapStack(size)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := as.Reserved(), int64(size+PageSize); got != want {
		t.Errorf("Reserved = %d, want %d (stack + guard)", got, want)
	}
	if got := as.Committed(); got != 0 {
		t.Errorf("Committed = %d after reserve-only carve, want 0", got)
	}

	// First touch at the top commits exactly one chunk.
	if err := as.TouchStack(base, size); err != nil {
		t.Fatal(err)
	}
	if got := as.Committed(); got != commitChunk {
		t.Errorf("Committed = %d after top touch, want one chunk %d", got, commitChunk)
	}
	// Re-touching the committed top is free.
	if err := as.TouchStack(base, size); err != nil {
		t.Fatal(err)
	}
	if got := as.Committed(); got != commitChunk {
		t.Errorf("Committed = %d after re-touch, want %d", got, commitChunk)
	}

	// Writing near the base (deep recursion) commits the rest of the
	// carve down toward the red zone.
	if err := as.Write(base, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if got := as.Committed(); got != size {
		t.Errorf("Committed = %d after deep write, want full stack %d", got, size)
	}

	// Unmap decommits and unreserves everything, but the peak stays.
	if err := as.UnmapStack(base, size); err != nil {
		t.Fatal(err)
	}
	if got := as.Reserved(); got != 0 {
		t.Errorf("Reserved = %d after unmap, want 0", got)
	}
	if got := as.Committed(); got != 0 {
		t.Errorf("Committed = %d after unmap, want 0", got)
	}
	if got := as.PeakCommitted(); got != size {
		t.Errorf("PeakCommitted = %d, want %d", got, size)
	}
}

func TestCommitLimitGatesTouchNotReserve(t *testing.T) {
	as := New(nil)
	const size = 64 << 10
	as.SetCommitLimit(commitChunk) // one chunk of real memory

	// Reservations sail past the commit limit: overcommit is the point.
	b1, err := as.MapStack(size)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := as.MapStack(size)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.TouchStack(b1, size); err != nil {
		t.Fatalf("first touch under the limit: %v", err)
	}
	// The second thread's first touch busts the commit limit.
	if err := as.TouchStack(b2, size); !errors.Is(err, ErrNoMem) {
		t.Fatalf("touch past commit limit = %v, want ErrNoMem", err)
	}
	if got := as.Committed(); got != commitChunk {
		t.Errorf("failed touch must not commit; Committed = %d, want %d", got, commitChunk)
	}

	// Freeing the first stack makes room for the second.
	if err := as.UnmapStack(b1, size); err != nil {
		t.Fatal(err)
	}
	if err := as.TouchStack(b2, size); err != nil {
		t.Fatalf("touch after decommit: %v", err)
	}
}

// TestUnmapSplice exercises the in-place segment splice: full removal
// from the tail (the thread-exit pattern), middle split growing the
// slice by one, and partial trims at both edges.
func TestUnmapSplice(t *testing.T) {
	as := New(nil)
	const size = 16 << 10
	var bases []int64
	for i := 0; i < 8; i++ {
		b, err := as.MapStack(size)
		if err != nil {
			t.Fatal(err)
		}
		bases = append(bases, b)
	}
	want := as.Reserved()

	// Unmap in LIFO order (tail of the descending list) and then FIFO
	// order; accounting must reach exactly zero.
	for i := 7; i >= 4; i-- {
		if err := as.UnmapStack(bases[i], size); err != nil {
			t.Fatal(err)
		}
		want -= size + PageSize
		if got := as.Reserved(); got != want {
			t.Fatalf("Reserved = %d after LIFO unmap %d, want %d", got, i, want)
		}
	}
	for i := 0; i < 4; i++ {
		if err := as.UnmapStack(bases[i], size); err != nil {
			t.Fatal(err)
		}
		want -= size + PageSize
		if got := as.Reserved(); got != want {
			t.Fatalf("Reserved = %d after FIFO unmap %d, want %d", got, i, want)
		}
	}
	if len(as.Segments()) != 0 {
		t.Fatalf("segments remain after unmapping everything: %v", as.Segments())
	}

	// Middle split: punch a page out of a flat mapping and check both
	// remainders survive with the hole unmapped.
	va, err := as.Mmap(0, 4*PageSize, ProtRead|ProtWrite, MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Munmap(va+PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(va, []byte{1}); err != nil {
		t.Errorf("left remainder lost: %v", err)
	}
	if err := as.Write(va+2*PageSize, []byte{1}); err != nil {
		t.Errorf("right remainder lost: %v", err)
	}
	if err := as.Write(va+PageSize, []byte{1}); !errors.Is(err, ErrFault) {
		t.Errorf("write into punched hole = %v, want ErrFault", err)
	}
	if got, want := as.Reserved(), int64(3*PageSize); got != want {
		t.Errorf("Reserved = %d after middle split, want %d", got, want)
	}
}

func TestPeakCommittedResets(t *testing.T) {
	as := New(nil)
	va, err := as.Mmap(0, 4*PageSize, ProtRead|ProtWrite, MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if err := as.Write(va+i*PageSize, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := as.PeakCommitted(), int64(4*PageSize); got != want {
		t.Errorf("PeakCommitted = %d, want %d", got, want)
	}
	as.Reset()
	if got := as.PeakCommitted(); got != 0 {
		t.Errorf("PeakCommitted = %d after Reset, want 0", got)
	}
}
