// Package vm is the address-space substrate: segments, mmap with
// MAP_SHARED/MAP_PRIVATE semantics, brk/sbrk, and page-granular fault
// accounting.
//
// The paper relies on the VM system in two ways this package must
// reproduce:
//
//   - Synchronization variables may be placed in memory that is
//     shared between processes (or in mapped files), and they work
//     even though the sharing processes map the object at different
//     virtual addresses. That requires resolving a virtual address to
//     the identity (object, offset) of the underlying mapped object,
//     which Resolve provides.
//   - Multiple threads may manipulate the shared address space at the
//     same time via mmap/brk/sbrk, so every operation here is safe
//     for concurrent use.
//
// Addresses are int64 byte offsets in a simulated 63-bit address
// space; there is no connection to Go pointers.
package vm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sunosmt/internal/chaos"
)

// PageSize is the simulated page size.
const PageSize = 4096

// Errors returned by address-space operations.
var (
	// ErrFault is returned for accesses to unmapped addresses
	// (SIGSEGV territory; the threads layer turns it into a trap).
	ErrFault = errors.New("vm: segmentation fault")
	// ErrProt is returned for accesses violating segment
	// protections.
	ErrProt = errors.New("vm: protection violation")
	// ErrInval is returned for malformed requests.
	ErrInval = errors.New("vm: invalid argument")
	// ErrNoMem is returned when a carve would exceed the address
	// space's byte rlimit, or when chaos injects a transient
	// allocation failure. ENOMEM territory: recoverable, retryable.
	ErrNoMem = errors.New("vm: address-space limit exceeded (ENOMEM)")
	// ErrRedZone is returned for a touch of a stack's red-zone guard
	// page — stack overflow caught at the page below the stack
	// instead of silent corruption. The threads layer turns it into
	// a SIGSEGV trap like any other fault.
	ErrRedZone = errors.New("vm: stack red-zone violation")
)

var objectIDs atomic.Uint64

// NextObjectID hands out process-global mapping-object identities.
// internal/vfs uses it so files and anonymous memory share one id
// space.
func NextObjectID() uint64 { return objectIDs.Add(1) }

// Object is a mappable backing object. Files (internal/vfs) and
// anonymous memory both implement it. An Object's identity — not the
// virtual address it happens to be mapped at — names synchronization
// variables shared between processes.
type Object interface {
	// ObjectID returns the object's unique identity.
	ObjectID() uint64
	// ObjectSize returns the current size in bytes.
	ObjectSize() int64
	// ReadObject copies len(b) bytes at off into b.
	ReadObject(b []byte, off int64) error
	// WriteObject copies b into the object at off, growing it if
	// needed.
	WriteObject(b []byte, off int64) error
	// FileBacked reports whether first-touch faults are major
	// (backed by a file) or minor (anonymous).
	FileBacked() bool
}

// Anon is an anonymous memory object.
type Anon struct {
	id   uint64
	mu   sync.Mutex
	data []byte
}

// NewAnon allocates a zeroed anonymous object of the given size.
func NewAnon(size int64) *Anon {
	return &Anon{id: NextObjectID(), data: make([]byte, size)}
}

// ObjectID implements Object.
func (a *Anon) ObjectID() uint64 { return a.id }

// ObjectSize implements Object.
func (a *Anon) ObjectSize() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(len(a.data))
}

// FileBacked implements Object.
func (a *Anon) FileBacked() bool { return false }

// ReadObject implements Object. Reads beyond the end return zeroes
// (demand-zero pages).
func (a *Anon) ReadObject(b []byte, off int64) error {
	if off < 0 {
		return ErrInval
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range b {
		p := off + int64(i)
		if p < int64(len(a.data)) {
			b[i] = a.data[p]
		} else {
			b[i] = 0
		}
	}
	return nil
}

// WriteObject implements Object, growing the object as needed.
func (a *Anon) WriteObject(b []byte, off int64) error {
	if off < 0 {
		return ErrInval
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if need := off + int64(len(b)); need > int64(len(a.data)) {
		grown := make([]byte, need)
		copy(grown, a.data)
		a.data = grown
	}
	copy(a.data[off:], b)
	return nil
}

// snapshot returns a private copy of the object's current contents,
// used for MAP_PRIVATE and fork.
func snapshot(o Object) (*Anon, error) {
	size := o.ObjectSize()
	c := NewAnon(size)
	if size > 0 {
		buf := make([]byte, size)
		if err := o.ReadObject(buf, 0); err != nil {
			return nil, err
		}
		copy(c.data, buf)
	}
	return c, nil
}

// Prot is a segment protection bitmask.
type Prot int

// Protection bits.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
)

// MapFlags selects mapping semantics.
type MapFlags int

// Mapping flags.
const (
	// MapShared stores through to the underlying object: all
	// processes mapping the object see each other's writes, and
	// synchronization variables in the mapping synchronize across
	// processes.
	MapShared MapFlags = 1 << iota
	// MapPrivate takes a snapshot: modifications are not visible
	// to other processes. (Real kernels use copy-on-write; the
	// copy here is eager, which preserves the visible semantics.)
	MapPrivate
	// MapFixed places the mapping exactly at the requested
	// address, unmapping anything in the way.
	MapFixed
	// MapRedZone marks a stack guard page: never accessible, and a
	// touch reports ErrRedZone rather than a plain protection
	// violation. Set only by MapStack, never by callers of Mmap.
	MapRedZone
)

// Segment is one contiguous mapping in an address space.
type Segment struct {
	Base   int64
	Length int64
	Prot   Prot
	Flags  MapFlags
	obj    Object // the store target (private copy for MapPrivate)
	origin Object // the originally mapped object (== obj when shared)
	objOff int64
	// touched tracks first-touch pages for fault accounting.
	touched map[int64]struct{}
}

func (s *Segment) end() int64 { return s.Base + s.Length }

// AddressSpace is a process's simulated address space.
type AddressSpace struct {
	mu      sync.Mutex
	segs    []*Segment // sorted by Base
	brk     int64
	brkBase int64
	heapObj *Anon
	mapHint int64
	mapped  int64 // bytes currently mapped, across all segments
	limit   int64 // max mapped bytes; 0 is unlimited
	chaos   *chaos.Source
	// FaultFn, if set, is called once per first-touched page.
	faultFn func(major bool)
}

// Layout constants: the heap grows from brkBase; mmap allocations
// grow down from mapTop.
const (
	brkBase = int64(0x0000_1000_0000)
	mapTop  = int64(0x7000_0000_0000)
)

// New creates an empty address space. faultFn (may be nil) is invoked
// for each first touch of a page, with major=true for file-backed
// pages.
func New(faultFn func(major bool)) *AddressSpace {
	as := &AddressSpace{
		brk:     brkBase,
		brkBase: brkBase,
		mapHint: mapTop,
		faultFn: faultFn,
	}
	return as
}

// SetFaultFn replaces the fault accounting callback.
func (as *AddressSpace) SetFaultFn(fn func(major bool)) {
	as.mu.Lock()
	as.faultFn = fn
	as.mu.Unlock()
}

// SetLimit installs the address-space byte rlimit: any carve (Mmap,
// MapStack, heap growth) that would push the mapped total past n
// fails with ErrNoMem. Zero removes the limit. Lowering the limit
// below the current total never unmaps anything; it only refuses
// growth, exactly as setrlimit(RLIMIT_AS) does.
func (as *AddressSpace) SetLimit(n int64) {
	as.mu.Lock()
	as.limit = n
	as.mu.Unlock()
}

// Limit returns the address-space byte rlimit (0 when unlimited).
func (as *AddressSpace) Limit() int64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.limit
}

// Mapped returns the number of bytes currently mapped.
func (as *AddressSpace) Mapped() int64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.mapped
}

// SetChaos wires a fault-injection source into the allocation paths:
// when it fires, a carve fails with a transient ErrNoMem even below
// the rlimit. Nil injects nothing.
func (as *AddressSpace) SetChaos(s *chaos.Source) {
	as.mu.Lock()
	as.chaos = s
	as.mu.Unlock()
}

// reserveLocked admits a carve of delta new bytes: the chaos source
// may fail it transiently, and the byte rlimit bounds the total.
// Shrinking or size-preserving operations (delta <= 0) always pass.
func (as *AddressSpace) reserveLocked(delta int64) error {
	if delta <= 0 {
		return nil
	}
	if as.chaos.AllocFail() {
		return fmt.Errorf("transient allocation failure: %w", ErrNoMem)
	}
	if as.limit > 0 && as.mapped+delta > as.limit {
		return fmt.Errorf("%d mapped + %d > limit %d: %w", as.mapped, delta, as.limit, ErrNoMem)
	}
	return nil
}

func pageRound(n int64) int64 {
	return (n + PageSize - 1) &^ (PageSize - 1)
}

// Mmap maps length bytes of obj starting at objOff. If va is zero
// (and MapFixed unset) the kernel chooses an address. obj may be nil
// for fresh anonymous memory. Returns the mapped base address.
func (as *AddressSpace) Mmap(va, length int64, prot Prot, flags MapFlags, obj Object, objOff int64) (int64, error) {
	if length <= 0 || objOff < 0 {
		return 0, ErrInval
	}
	if flags&MapShared != 0 && flags&MapPrivate != 0 {
		return 0, ErrInval
	}
	if flags&(MapShared|MapPrivate) == 0 {
		return 0, ErrInval
	}
	length = pageRound(length)
	var origin Object
	if obj == nil {
		obj = NewAnon(length)
		origin = obj
	} else {
		origin = obj
		if flags&MapPrivate != 0 {
			snap, err := snapshot(obj)
			if err != nil {
				return 0, err
			}
			obj = snap
		}
	}

	as.mu.Lock()
	defer as.mu.Unlock()
	if flags&MapFixed != 0 {
		if va%PageSize != 0 {
			return 0, ErrInval
		}
		// Admission is judged net of the bytes the fixed mapping
		// replaces, and before anything is unmapped, so a refused
		// Mmap leaves the address space untouched.
		if err := as.reserveLocked(length - as.overlapBytesLocked(va, length)); err != nil {
			return 0, err
		}
		as.unmapLocked(va, length)
	} else {
		if err := as.reserveLocked(length); err != nil {
			return 0, err
		}
		va = as.findHoleLocked(length)
	}
	seg := &Segment{
		Base: va, Length: length, Prot: prot, Flags: flags,
		obj: obj, origin: origin, objOff: objOff,
		touched: make(map[int64]struct{}),
	}
	as.insertLocked(seg)
	return va, nil
}

// Munmap removes mappings overlapping [va, va+length).
func (as *AddressSpace) Munmap(va, length int64) error {
	if length <= 0 || va%PageSize != 0 {
		return ErrInval
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	as.unmapLocked(va, pageRound(length))
	return nil
}

// findHoleLocked picks an unused range below the map hint.
func (as *AddressSpace) findHoleLocked(length int64) int64 {
	va := as.mapHint - length
	for {
		if as.overlapLocked(va, length) == nil {
			as.mapHint = va
			return va
		}
		va -= PageSize
	}
}

// overlapBytesLocked counts the mapped bytes inside [va, va+length).
func (as *AddressSpace) overlapBytesLocked(va, length int64) int64 {
	end := va + length
	var n int64
	for _, s := range as.segs {
		lo, hi := max(va, s.Base), min(end, s.end())
		if lo < hi {
			n += hi - lo
		}
	}
	return n
}

func (as *AddressSpace) overlapLocked(va, length int64) *Segment {
	for _, s := range as.segs {
		if va < s.end() && s.Base < va+length {
			return s
		}
	}
	return nil
}

func (as *AddressSpace) insertLocked(seg *Segment) {
	i := 0
	for i < len(as.segs) && as.segs[i].Base < seg.Base {
		i++
	}
	as.segs = append(as.segs, nil)
	copy(as.segs[i+1:], as.segs[i:])
	as.segs[i] = seg
	as.mapped += seg.Length
}

// unmapLocked removes or trims segments overlapping the range.
// Partial unmaps split segments.
func (as *AddressSpace) unmapLocked(va, length int64) {
	end := va + length
	var out []*Segment
	for _, s := range as.segs {
		if s.end() <= va || end <= s.Base {
			out = append(out, s)
			continue
		}
		as.mapped -= min(end, s.end()) - max(va, s.Base)
		// Left remainder.
		if s.Base < va {
			left := *s
			left.Length = va - s.Base
			out = append(out, &left)
		}
		// Right remainder.
		if end < s.end() {
			right := *s
			right.objOff = s.objOff + (end - s.Base)
			right.Base = end
			right.Length = s.end() - end
			out = append(out, &right)
		}
	}
	as.segs = out
}

// findLocked returns the segment containing va.
func (as *AddressSpace) findLocked(va int64) *Segment {
	for _, s := range as.segs {
		if va >= s.Base && va < s.end() {
			return s
		}
	}
	return nil
}

// touchLocked performs first-touch fault accounting for [va,va+n).
func (as *AddressSpace) touchLocked(s *Segment, va, n int64) {
	first := va / PageSize
	last := (va + n - 1) / PageSize
	for pg := first; pg <= last; pg++ {
		if _, ok := s.touched[pg]; ok {
			continue
		}
		s.touched[pg] = struct{}{}
		if as.faultFn != nil {
			as.faultFn(s.obj.FileBacked())
		}
	}
}

// access validates an access and returns the segment. Accesses must
// fall within one segment.
func (as *AddressSpace) access(va, n int64, want Prot) (*Segment, error) {
	if n <= 0 {
		return nil, ErrInval
	}
	s := as.findLocked(va)
	if s != nil && s.Flags&MapRedZone != 0 {
		return nil, fmt.Errorf("%w: va %#x under stack base %#x", ErrRedZone, va, s.end())
	}
	if s == nil || va+n > s.end() {
		return nil, fmt.Errorf("%w: va %#x+%d", ErrFault, va, n)
	}
	if s.Prot&want != want {
		return nil, fmt.Errorf("%w: va %#x", ErrProt, va)
	}
	as.touchLocked(s, va, n)
	return s, nil
}

// Read copies memory at va into b.
func (as *AddressSpace) Read(va int64, b []byte) error {
	as.mu.Lock()
	s, err := as.access(va, int64(len(b)), ProtRead)
	if err != nil {
		as.mu.Unlock()
		return err
	}
	obj, off := s.obj, s.objOff+(va-s.Base)
	as.mu.Unlock()
	return obj.ReadObject(b, off)
}

// Write copies b into memory at va.
func (as *AddressSpace) Write(va int64, b []byte) error {
	as.mu.Lock()
	s, err := as.access(va, int64(len(b)), ProtWrite)
	if err != nil {
		as.mu.Unlock()
		return err
	}
	obj, off := s.obj, s.objOff+(va-s.Base)
	as.mu.Unlock()
	return obj.WriteObject(b, off)
}

// Resolve maps a virtual address to the identity of the backing
// object and the offset within it. Synchronization variables placed
// in shared memory are named by this (object, offset) pair, which is
// how threads in different processes find the same variable even when
// the object is mapped at different virtual addresses.
func (as *AddressSpace) Resolve(va int64) (Object, int64, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	s := as.findLocked(va)
	if s == nil {
		return nil, 0, fmt.Errorf("%w: va %#x", ErrFault, va)
	}
	return s.obj, s.objOff + (va - s.Base), nil
}

// Brk sets the break to addr, like brk(2). It fails with ErrNoMem
// when the growth would exceed the address-space rlimit, leaving the
// break unchanged.
func (as *AddressSpace) Brk(addr int64) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	if addr < as.brkBase {
		return ErrInval
	}
	if err := as.ensureHeapLocked(addr); err != nil {
		return err
	}
	as.brk = addr
	return nil
}

// Sbrk adjusts the break by delta and returns the previous break.
func (as *AddressSpace) Sbrk(delta int64) (int64, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	old := as.brk
	next := old + delta
	if next < as.brkBase {
		return 0, ErrInval
	}
	if err := as.ensureHeapLocked(next); err != nil {
		return 0, err
	}
	as.brk = next
	return old, nil
}

// ensureHeapLocked keeps a heap segment covering [brkBase, addr).
func (as *AddressSpace) ensureHeapLocked(addr int64) error {
	need := pageRound(addr - as.brkBase)
	if need <= 0 {
		return nil
	}
	if as.heapObj == nil {
		if err := as.reserveLocked(need); err != nil {
			return err
		}
		as.heapObj = NewAnon(need)
		seg := &Segment{
			Base: as.brkBase, Length: need,
			Prot: ProtRead | ProtWrite, Flags: MapPrivate,
			obj: as.heapObj, origin: as.heapObj,
			touched: make(map[int64]struct{}),
		}
		as.insertLocked(seg)
		return nil
	}
	// Grow the existing heap segment.
	for _, s := range as.segs {
		if s.obj == as.heapObj && s.Base == as.brkBase {
			if need > s.Length {
				if err := as.reserveLocked(need - s.Length); err != nil {
					return err
				}
				as.mapped += need - s.Length
				s.Length = need
			}
			return nil
		}
	}
	return nil
}

// MapStack carves a thread stack of size bytes guarded below by a
// red-zone page, the paper's defense against silent stack overflow:
// stacks grow down, so the first write past the bottom lands on the
// guard and faults with ErrRedZone (a SIGSEGV at the mt layer)
// instead of corrupting the neighboring mapping. Returns the base of
// the usable stack — the guard page sits at base-PageSize. Fails with
// ErrNoMem past the rlimit; the guard page counts toward the limit
// like any other mapping.
func (as *AddressSpace) MapStack(size int64) (int64, error) {
	if size <= 0 {
		return 0, ErrInval
	}
	size = pageRound(size)
	total := size + PageSize
	as.mu.Lock()
	defer as.mu.Unlock()
	if err := as.reserveLocked(total); err != nil {
		return 0, err
	}
	va := as.findHoleLocked(total)
	guard := &Segment{
		Base: va, Length: PageSize, Prot: 0,
		Flags: MapPrivate | MapRedZone,
		touched: make(map[int64]struct{}),
	}
	guardObj := NewAnon(0)
	guard.obj, guard.origin = guardObj, guardObj
	stackObj := NewAnon(size)
	stack := &Segment{
		Base: va + PageSize, Length: size,
		Prot: ProtRead | ProtWrite, Flags: MapPrivate,
		obj: stackObj, origin: stackObj,
		touched: make(map[int64]struct{}),
	}
	as.insertLocked(guard)
	as.insertLocked(stack)
	return stack.Base, nil
}

// UnmapStack releases a MapStack carve: the stack and its red-zone
// guard page.
func (as *AddressSpace) UnmapStack(base, size int64) error {
	if size <= 0 || base%PageSize != 0 {
		return ErrInval
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	as.unmapLocked(base-PageSize, pageRound(size)+PageSize)
	return nil
}

// Brk0 returns the current break.
func (as *AddressSpace) Brk0() int64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.brk
}

// Segments returns a snapshot of the mappings, sorted by base.
func (as *AddressSpace) Segments() []Segment {
	as.mu.Lock()
	defer as.mu.Unlock()
	out := make([]Segment, len(as.segs))
	for i, s := range as.segs {
		out[i] = *s
		out[i].touched = nil
	}
	return out
}

// Fork duplicates the address space for a child process: shared
// mappings refer to the same objects; private mappings (including the
// heap) are copied.
func (as *AddressSpace) Fork() (*AddressSpace, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	child := &AddressSpace{
		brk:     as.brk,
		brkBase: as.brkBase,
		mapHint: as.mapHint,
		mapped:  as.mapped,
		limit:   as.limit, // rlimits are inherited across fork
		chaos:   as.chaos,
		faultFn: nil, // the caller wires the child's accounting
	}
	for _, s := range as.segs {
		ns := &Segment{
			Base: s.Base, Length: s.Length, Prot: s.Prot,
			Flags: s.Flags, obj: s.obj, origin: s.origin,
			objOff: s.objOff, touched: make(map[int64]struct{}),
		}
		if s.Flags&MapPrivate != 0 {
			snap, err := snapshot(s.obj)
			if err != nil {
				return nil, err
			}
			ns.obj = snap
			if s.obj == as.heapObj {
				child.heapObj = snap
			}
		}
		child.segs = append(child.segs, ns)
	}
	return child, nil
}

// Reset drops all mappings (used by exec).
func (as *AddressSpace) Reset() {
	as.mu.Lock()
	defer as.mu.Unlock()
	as.segs = nil
	as.heapObj = nil
	as.brk = as.brkBase
	as.mapHint = mapTop
	as.mapped = 0
}
