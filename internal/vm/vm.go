// Package vm is the address-space substrate: segments, mmap with
// MAP_SHARED/MAP_PRIVATE semantics, brk/sbrk, and page-granular fault
// accounting.
//
// The paper relies on the VM system in two ways this package must
// reproduce:
//
//   - Synchronization variables may be placed in memory that is
//     shared between processes (or in mapped files), and they work
//     even though the sharing processes map the object at different
//     virtual addresses. That requires resolving a virtual address to
//     the identity (object, offset) of the underlying mapped object,
//     which Resolve provides.
//   - Multiple threads may manipulate the shared address space at the
//     same time via mmap/brk/sbrk, so every operation here is safe
//     for concurrent use.
//
// The space distinguishes reserved from committed bytes. A carve
// (Mmap, MapStack, heap growth) reserves address space; pages are
// committed on first touch. Stack carves commit lazily in
// chunk-granular steps growing down toward the red zone, so a mostly
// idle thread costs kilobytes of committed memory against a much
// larger reservation. SetLimit bounds reservations (RLIMIT_AS);
// SetCommitLimit bounds committed bytes.
//
// Addresses are int64 byte offsets in a simulated 63-bit address
// space; there is no connection to Go pointers.
package vm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sunosmt/internal/chaos"
)

// PageSize is the simulated page size.
const PageSize = 4096

// commitChunk is the granularity of lazy stack commit: a first touch
// below a stack's commit watermark commits down to the enclosing
// chunk boundary, pre-faulting the pages in between, so a growing
// stack takes one fault per chunk rather than one per page.
const commitChunk = 4 * PageSize

// Errors returned by address-space operations.
var (
	// ErrFault is returned for accesses to unmapped addresses
	// (SIGSEGV territory; the threads layer turns it into a trap).
	ErrFault = errors.New("vm: segmentation fault")
	// ErrProt is returned for accesses violating segment
	// protections.
	ErrProt = errors.New("vm: protection violation")
	// ErrInval is returned for malformed requests.
	ErrInval = errors.New("vm: invalid argument")
	// ErrNoMem is returned when a carve would exceed the address
	// space's byte rlimit, when a first touch would exceed the
	// committed-byte rlimit, or when chaos injects a transient
	// allocation failure. ENOMEM territory: recoverable, retryable.
	ErrNoMem = errors.New("vm: address-space limit exceeded (ENOMEM)")
	// ErrRedZone is returned for a touch of a stack's red-zone guard
	// page — stack overflow caught at the page below the stack
	// instead of silent corruption. The threads layer turns it into
	// a SIGSEGV trap like any other fault.
	ErrRedZone = errors.New("vm: stack red-zone violation")
)

var objectIDs atomic.Uint64

// NextObjectID hands out process-global mapping-object identities.
// internal/vfs uses it so files and anonymous memory share one id
// space.
func NextObjectID() uint64 { return objectIDs.Add(1) }

// Object is a mappable backing object. Files (internal/vfs) and
// anonymous memory both implement it. An Object's identity — not the
// virtual address it happens to be mapped at — names synchronization
// variables shared between processes.
type Object interface {
	// ObjectID returns the object's unique identity.
	ObjectID() uint64
	// ObjectSize returns the current size in bytes.
	ObjectSize() int64
	// ReadObject copies len(b) bytes at off into b.
	ReadObject(b []byte, off int64) error
	// WriteObject copies b into the object at off, growing it if
	// needed.
	WriteObject(b []byte, off int64) error
	// FileBacked reports whether first-touch faults are major
	// (backed by a file) or minor (anonymous).
	FileBacked() bool
}

// Anon is an anonymous memory object.
type Anon struct {
	id   uint64
	mu   sync.Mutex
	data []byte
}

// NewAnon allocates a zeroed anonymous object of the given size.
func NewAnon(size int64) *Anon {
	return &Anon{id: NextObjectID(), data: make([]byte, size)}
}

// ObjectID implements Object.
func (a *Anon) ObjectID() uint64 { return a.id }

// ObjectSize implements Object.
func (a *Anon) ObjectSize() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(len(a.data))
}

// FileBacked implements Object.
func (a *Anon) FileBacked() bool { return false }

// ReadObject implements Object. Reads beyond the end return zeroes
// (demand-zero pages).
func (a *Anon) ReadObject(b []byte, off int64) error {
	if off < 0 {
		return ErrInval
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range b {
		p := off + int64(i)
		if p < int64(len(a.data)) {
			b[i] = a.data[p]
		} else {
			b[i] = 0
		}
	}
	return nil
}

// WriteObject implements Object, growing the object as needed.
func (a *Anon) WriteObject(b []byte, off int64) error {
	if off < 0 {
		return ErrInval
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if need := off + int64(len(b)); need > int64(len(a.data)) {
		grown := make([]byte, need)
		copy(grown, a.data)
		a.data = grown
	}
	copy(a.data[off:], b)
	return nil
}

// SparseAnon is demand-zero anonymous memory that materializes host
// bytes only for chunks that are actually written. Stack carves use
// it so a million reserved-but-idle stacks cost nothing until
// touched: reads of unwritten ranges return zeroes without allocating
// backing store.
type SparseAnon struct {
	id     uint64
	mu     sync.Mutex
	size   int64
	chunks map[int64][]byte // chunk index -> commitChunk bytes
}

// NewSparseAnon creates a sparse demand-zero object of the given
// nominal size. No backing bytes are allocated until the first write.
func NewSparseAnon(size int64) *SparseAnon {
	return &SparseAnon{id: NextObjectID(), size: size}
}

// ObjectID implements Object.
func (a *SparseAnon) ObjectID() uint64 { return a.id }

// ObjectSize implements Object.
func (a *SparseAnon) ObjectSize() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.size
}

// FileBacked implements Object.
func (a *SparseAnon) FileBacked() bool { return false }

// ReadObject implements Object: unwritten ranges read as zeroes.
func (a *SparseAnon) ReadObject(b []byte, off int64) error {
	if off < 0 {
		return ErrInval
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for n := int64(0); n < int64(len(b)); {
		p := off + n
		ci := p / commitChunk
		co := p % commitChunk
		span := min(commitChunk-co, int64(len(b))-n)
		if c, ok := a.chunks[ci]; ok {
			copy(b[n:n+span], c[co:])
		} else {
			clear(b[n : n+span])
		}
		n += span
	}
	return nil
}

// WriteObject implements Object, materializing chunks on demand and
// growing the nominal size if needed.
func (a *SparseAnon) WriteObject(b []byte, off int64) error {
	if off < 0 {
		return ErrInval
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if need := off + int64(len(b)); need > a.size {
		a.size = need
	}
	for n := int64(0); n < int64(len(b)); {
		p := off + n
		ci := p / commitChunk
		co := p % commitChunk
		span := min(commitChunk-co, int64(len(b))-n)
		c, ok := a.chunks[ci]
		if !ok {
			c = make([]byte, commitChunk)
			if a.chunks == nil {
				a.chunks = make(map[int64][]byte)
			}
			a.chunks[ci] = c
		}
		copy(c[co:], b[n:n+span])
		n += span
	}
	return nil
}

// clone duplicates the sparse object chunk-by-chunk (fork of a
// private stack mapping): only materialized chunks are copied.
func (a *SparseAnon) clone() *SparseAnon {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := NewSparseAnon(a.size)
	if len(a.chunks) > 0 {
		c.chunks = make(map[int64][]byte, len(a.chunks))
		for ci, data := range a.chunks {
			dup := make([]byte, len(data))
			copy(dup, data)
			c.chunks[ci] = dup
		}
	}
	return c
}

// snapshot returns a private copy of the object's current contents,
// used for MAP_PRIVATE and fork.
func snapshot(o Object) (*Anon, error) {
	size := o.ObjectSize()
	c := NewAnon(size)
	if size > 0 {
		buf := make([]byte, size)
		if err := o.ReadObject(buf, 0); err != nil {
			return nil, err
		}
		copy(c.data, buf)
	}
	return c, nil
}

// Prot is a segment protection bitmask.
type Prot int

// Protection bits.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
)

// MapFlags selects mapping semantics.
type MapFlags int

// Mapping flags.
const (
	// MapShared stores through to the underlying object: all
	// processes mapping the object see each other's writes, and
	// synchronization variables in the mapping synchronize across
	// processes.
	MapShared MapFlags = 1 << iota
	// MapPrivate takes a snapshot: modifications are not visible
	// to other processes. (Real kernels use copy-on-write; the
	// copy here is eager, which preserves the visible semantics.)
	MapPrivate
	// MapFixed places the mapping exactly at the requested
	// address, unmapping anything in the way.
	MapFixed
	// MapRedZone marks a stack guard page: never accessible, and a
	// touch reports ErrRedZone rather than a plain protection
	// violation. Set only by MapStack, never by callers of Mmap.
	MapRedZone
)

// guardObj backs every red-zone guard page. Guards are never
// readable or writable, so one zero-length object shared by all
// address spaces suffices — a million stacks carry no per-guard
// allocation.
var guardObj = NewAnon(0)

// Segment is one contiguous mapping in an address space.
type Segment struct {
	Base   int64
	Length int64
	Prot   Prot
	Flags  MapFlags
	obj    Object // the store target (private copy for MapPrivate)
	origin Object // the originally mapped object (== obj when shared)
	objOff int64
	// touched tracks first-touch pages for fault accounting,
	// allocated lazily on the first touch and keyed by absolute
	// page number (so split remainders can keep sharing it).
	touched map[int64]struct{}
	// stack marks a lazily-committed stack carve: pages in
	// [commitLow, end) are committed; a touch below the watermark
	// commits down in commitChunk steps toward the red zone.
	stack     bool
	commitLow int64
}

func (s *Segment) end() int64 { return s.Base + s.Length }

// AddressSpace is a process's simulated address space.
type AddressSpace struct {
	mu sync.Mutex
	// segs is sorted by descending Base: mmap carves walk down from
	// mapTop, so fresh carves append at the tail in O(1) and lookups
	// binary-search. Segments never overlap.
	segs        []*Segment
	brk         int64
	brkBase     int64
	heapObj     *Anon
	mapHint     int64
	mapped      int64 // bytes reserved, across all segments
	committed   int64 // bytes committed by first touch
	peakCommit  int64 // high-water mark of committed
	limit       int64 // max reserved bytes; 0 is unlimited
	commitLimit int64 // max committed bytes; 0 is unlimited
	chaos       *chaos.Source
	// FaultFn, if set, is called once per first-touched page.
	faultFn func(major bool)
}

// Layout constants: the heap grows from brkBase; mmap allocations
// grow down from mapTop.
const (
	brkBase = int64(0x0000_1000_0000)
	mapTop  = int64(0x7000_0000_0000)
)

// New creates an empty address space. faultFn (may be nil) is invoked
// for each first touch of a page, with major=true for file-backed
// pages.
func New(faultFn func(major bool)) *AddressSpace {
	as := &AddressSpace{
		brk:     brkBase,
		brkBase: brkBase,
		mapHint: mapTop,
		faultFn: faultFn,
	}
	return as
}

// SetFaultFn replaces the fault accounting callback.
func (as *AddressSpace) SetFaultFn(fn func(major bool)) {
	as.mu.Lock()
	as.faultFn = fn
	as.mu.Unlock()
}

// SetLimit installs the address-space byte rlimit: any carve (Mmap,
// MapStack, heap growth) that would push the reserved total past n
// fails with ErrNoMem. Zero removes the limit. Lowering the limit
// below the current total never unmaps anything; it only refuses
// growth, exactly as setrlimit(RLIMIT_AS) does.
func (as *AddressSpace) SetLimit(n int64) {
	as.mu.Lock()
	as.limit = n
	as.mu.Unlock()
}

// Limit returns the address-space byte rlimit (0 when unlimited).
func (as *AddressSpace) Limit() int64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.limit
}

// SetCommitLimit installs the committed-byte rlimit: a first touch
// that would push the committed total past n faults with ErrNoMem
// (the threads layer turns it into a SIGSEGV trap, like running out
// of swap). Zero removes the limit. Reservations are unaffected —
// overcommit is the point of the reserve/commit split.
func (as *AddressSpace) SetCommitLimit(n int64) {
	as.mu.Lock()
	as.commitLimit = n
	as.mu.Unlock()
}

// CommitLimit returns the committed-byte rlimit (0 when unlimited).
func (as *AddressSpace) CommitLimit() int64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.commitLimit
}

// Mapped returns the number of bytes currently reserved.
func (as *AddressSpace) Mapped() int64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.mapped
}

// Reserved is Mapped under its modern name: bytes of address space
// carved, whether or not any page has been touched.
func (as *AddressSpace) Reserved() int64 { return as.Mapped() }

// Committed returns the bytes committed by first touch — the
// simulated resident footprint, always <= Reserved().
func (as *AddressSpace) Committed() int64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.committed
}

// PeakCommitted returns the high-water mark of Committed() over the
// address space's lifetime (since the last Reset). The 1M-thread
// bench tier gates its memory ceiling on this.
func (as *AddressSpace) PeakCommitted() int64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.peakCommit
}

// SetChaos wires a fault-injection source into the allocation paths:
// when it fires, a carve fails with a transient ErrNoMem even below
// the rlimit. Nil injects nothing.
func (as *AddressSpace) SetChaos(s *chaos.Source) {
	as.mu.Lock()
	as.chaos = s
	as.mu.Unlock()
}

// reserveLocked admits a carve of delta new bytes: the chaos source
// may fail it transiently, and the byte rlimit bounds the total.
// Shrinking or size-preserving operations (delta <= 0) always pass.
func (as *AddressSpace) reserveLocked(delta int64) error {
	if delta <= 0 {
		return nil
	}
	if as.chaos.AllocFail() {
		return fmt.Errorf("transient allocation failure: %w", ErrNoMem)
	}
	if as.limit > 0 && as.mapped+delta > as.limit {
		return fmt.Errorf("%d mapped + %d > limit %d: %w", as.mapped, delta, as.limit, ErrNoMem)
	}
	return nil
}

func pageRound(n int64) int64 {
	return (n + PageSize - 1) &^ (PageSize - 1)
}

// Mmap maps length bytes of obj starting at objOff. If va is zero
// (and MapFixed unset) the kernel chooses an address. obj may be nil
// for fresh anonymous memory. Returns the mapped base address.
func (as *AddressSpace) Mmap(va, length int64, prot Prot, flags MapFlags, obj Object, objOff int64) (int64, error) {
	if length <= 0 || objOff < 0 {
		return 0, ErrInval
	}
	if flags&MapShared != 0 && flags&MapPrivate != 0 {
		return 0, ErrInval
	}
	if flags&(MapShared|MapPrivate) == 0 {
		return 0, ErrInval
	}
	length = pageRound(length)
	var origin Object
	if obj == nil {
		obj = NewAnon(length)
		origin = obj
	} else {
		origin = obj
		if flags&MapPrivate != 0 {
			snap, err := snapshot(obj)
			if err != nil {
				return 0, err
			}
			obj = snap
		}
	}

	as.mu.Lock()
	defer as.mu.Unlock()
	if flags&MapFixed != 0 {
		if va%PageSize != 0 {
			return 0, ErrInval
		}
		// Admission is judged net of the bytes the fixed mapping
		// replaces, and before anything is unmapped, so a refused
		// Mmap leaves the address space untouched.
		if err := as.reserveLocked(length - as.overlapBytesLocked(va, length)); err != nil {
			return 0, err
		}
		as.unmapLocked(va, length)
	} else {
		if err := as.reserveLocked(length); err != nil {
			return 0, err
		}
		va = as.findHoleLocked(length)
	}
	seg := &Segment{
		Base: va, Length: length, Prot: prot, Flags: flags,
		obj: obj, origin: origin, objOff: objOff,
	}
	as.insertLocked(seg)
	return va, nil
}

// Munmap removes mappings overlapping [va, va+length).
func (as *AddressSpace) Munmap(va, length int64) error {
	if length <= 0 || va%PageSize != 0 {
		return ErrInval
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	as.unmapLocked(va, pageRound(length))
	return nil
}

// findHoleLocked picks an unused range below the map hint.
func (as *AddressSpace) findHoleLocked(length int64) int64 {
	va := as.mapHint - length
	for {
		if as.overlapLocked(va, length) == nil {
			as.mapHint = va
			return va
		}
		va -= PageSize
	}
}

// searchLocked returns the index of the first segment with
// Base <= va in the descending-Base order (len(segs) if none).
func (as *AddressSpace) searchLocked(va int64) int {
	return sort.Search(len(as.segs), func(i int) bool {
		return as.segs[i].Base <= va
	})
}

// overlapBytesLocked counts the reserved bytes inside [va, va+length).
func (as *AddressSpace) overlapBytesLocked(va, length int64) int64 {
	end := va + length
	var n int64
	for i := as.searchLocked(end - 1); i < len(as.segs); i++ {
		s := as.segs[i]
		if s.end() <= va {
			break
		}
		lo, hi := max(va, s.Base), min(end, s.end())
		if lo < hi {
			n += hi - lo
		}
	}
	return n
}

// overlapLocked returns a segment overlapping [va, va+length), or
// nil. Segments are disjoint and sorted by descending Base, so the
// first segment based at or below the range's last byte is the only
// candidate whose extent can reach va.
func (as *AddressSpace) overlapLocked(va, length int64) *Segment {
	i := as.searchLocked(va + length - 1)
	if i < len(as.segs) && as.segs[i].end() > va {
		return as.segs[i]
	}
	return nil
}

func (as *AddressSpace) insertLocked(seg *Segment) {
	// First index whose Base is below the new segment's: insert
	// there to keep descending order. Stack and mmap carves walk
	// down from mapTop, so the common case appends at the tail.
	i := sort.Search(len(as.segs), func(i int) bool {
		return as.segs[i].Base < seg.Base
	})
	as.segs = append(as.segs, nil)
	copy(as.segs[i+1:], as.segs[i:])
	as.segs[i] = seg
	as.mapped += seg.Length
}

// unmapLocked removes or trims segments overlapping the range.
// Partial unmaps split segments. Committed accounting follows:
// touched pages (or the committed span of a stack watermark) inside
// the removed range are decommitted.
func (as *AddressSpace) unmapLocked(va, length int64) {
	end := va + length
	// Binary-search the overlap window: segments are disjoint in
	// descending Base order, so the overlapping ones are a contiguous
	// run starting at the first Base < end and ending before the first
	// segment entirely below va. Only that window is touched — the
	// common case (a thread exit unmapping the most recent carve at
	// the tail) splices in O(log n) with no slice rebuild.
	lo := as.searchLocked(end - 1)
	hi := lo
	var repl []*Segment
	for hi < len(as.segs) && as.segs[hi].end() > va {
		s := as.segs[hi]
		hi++
		clo, chi := max(va, s.Base), min(end, s.end())
		as.mapped -= chi - clo
		if s.stack {
			if c := max(clo, s.commitLow); c < chi {
				as.committed -= chi - c
			}
		} else if s.touched != nil {
			for pg := clo / PageSize; pg <= (chi-1)/PageSize; pg++ {
				if _, ok := s.touched[pg]; ok {
					delete(s.touched, pg)
					as.committed -= PageSize
				}
			}
		}
		// Remainders, right (higher base) before left to keep the
		// descending order. Both may share the touched map: its keys
		// are absolute page numbers and the removed range's entries
		// were deleted above.
		if end < s.end() {
			right := *s
			right.objOff = s.objOff + (end - s.Base)
			right.Base = end
			right.Length = s.end() - end
			if s.stack {
				right.commitLow = max(s.commitLow, end)
			}
			repl = append(repl, &right)
		}
		if s.Base < va {
			left := *s
			left.Length = va - s.Base
			if s.stack {
				left.commitLow = min(s.commitLow, va)
			}
			repl = append(repl, &left)
		}
	}
	if lo == hi {
		return
	}
	// Splice repl over segs[lo:hi] in place (copy is memmove-like, so
	// the overlapping shifts are safe). At most two remainders exist,
	// so the slice grows by at most one; when the window is at the
	// tail and repl is empty — a thread exit unmapping the most
	// recent carve — this is a pure truncation.
	if w := hi - lo; len(repl) <= w {
		copy(as.segs[lo:], repl)
		copy(as.segs[lo+len(repl):], as.segs[hi:])
		n := len(as.segs) - (w - len(repl))
		for i := n; i < len(as.segs); i++ {
			as.segs[i] = nil // release removed segments to the GC
		}
		as.segs = as.segs[:n]
	} else { // len(repl) == w+1: middle split of a single segment
		as.segs = append(as.segs, nil)
		copy(as.segs[lo+len(repl):], as.segs[hi:])
		copy(as.segs[lo:], repl)
	}
}

// findLocked returns the segment containing va.
func (as *AddressSpace) findLocked(va int64) *Segment {
	i := as.searchLocked(va)
	if i < len(as.segs) && va < as.segs[i].end() {
		return as.segs[i]
	}
	return nil
}

// touchLocked performs first-touch fault accounting for [va,va+n).
// For stack segments the commit watermark moves down to the chunk
// boundary enclosing va; for everything else pages commit
// individually. Fails with ErrNoMem when the committed-byte rlimit
// would be exceeded (a stack chunk commits all-or-nothing; the
// page-wise path stops at the page that hit the limit).
func (as *AddressSpace) touchLocked(s *Segment, va, n int64) error {
	if s.stack {
		low := max(va&^(commitChunk-1), s.Base)
		if low >= s.commitLow {
			return nil
		}
		delta := s.commitLow - low
		if as.commitLimit > 0 && as.committed+delta > as.commitLimit {
			return fmt.Errorf("%d committed + %d > commit limit %d: %w",
				as.committed, delta, as.commitLimit, ErrNoMem)
		}
		if as.faultFn != nil {
			for pg := low / PageSize; pg < s.commitLow/PageSize; pg++ {
				as.faultFn(false)
			}
		}
		as.committed += delta
		as.peakCommit = max(as.peakCommit, as.committed)
		s.commitLow = low
		return nil
	}
	first := va / PageSize
	last := (va + n - 1) / PageSize
	for pg := first; pg <= last; pg++ {
		if _, ok := s.touched[pg]; ok {
			continue
		}
		if as.commitLimit > 0 && as.committed+PageSize > as.commitLimit {
			return fmt.Errorf("%d committed + %d > commit limit %d: %w",
				as.committed, int64(PageSize), as.commitLimit, ErrNoMem)
		}
		if s.touched == nil {
			s.touched = make(map[int64]struct{})
		}
		s.touched[pg] = struct{}{}
		as.committed += PageSize
		as.peakCommit = max(as.peakCommit, as.committed)
		if as.faultFn != nil {
			as.faultFn(s.obj.FileBacked())
		}
	}
	return nil
}

// access validates an access and returns the segment. Accesses must
// fall within one segment.
func (as *AddressSpace) access(va, n int64, want Prot) (*Segment, error) {
	if n <= 0 {
		return nil, ErrInval
	}
	s := as.findLocked(va)
	if s != nil && s.Flags&MapRedZone != 0 {
		return nil, fmt.Errorf("%w: va %#x under stack base %#x", ErrRedZone, va, s.end())
	}
	if s == nil || va+n > s.end() {
		return nil, fmt.Errorf("%w: va %#x+%d", ErrFault, va, n)
	}
	if s.Prot&want != want {
		return nil, fmt.Errorf("%w: va %#x", ErrProt, va)
	}
	if err := as.touchLocked(s, va, n); err != nil {
		return nil, err
	}
	return s, nil
}

// Read copies memory at va into b.
func (as *AddressSpace) Read(va int64, b []byte) error {
	as.mu.Lock()
	s, err := as.access(va, int64(len(b)), ProtRead)
	if err != nil {
		as.mu.Unlock()
		return err
	}
	obj, off := s.obj, s.objOff+(va-s.Base)
	as.mu.Unlock()
	return obj.ReadObject(b, off)
}

// Write copies b into memory at va.
func (as *AddressSpace) Write(va int64, b []byte) error {
	as.mu.Lock()
	s, err := as.access(va, int64(len(b)), ProtWrite)
	if err != nil {
		as.mu.Unlock()
		return err
	}
	obj, off := s.obj, s.objOff+(va-s.Base)
	as.mu.Unlock()
	return obj.WriteObject(b, off)
}

// Resolve maps a virtual address to the identity of the backing
// object and the offset within it. Synchronization variables placed
// in shared memory are named by this (object, offset) pair, which is
// how threads in different processes find the same variable even when
// the object is mapped at different virtual addresses.
func (as *AddressSpace) Resolve(va int64) (Object, int64, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	s := as.findLocked(va)
	if s == nil {
		return nil, 0, fmt.Errorf("%w: va %#x", ErrFault, va)
	}
	return s.obj, s.objOff + (va - s.Base), nil
}

// Brk sets the break to addr, like brk(2). It fails with ErrNoMem
// when the growth would exceed the address-space rlimit, leaving the
// break unchanged.
func (as *AddressSpace) Brk(addr int64) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	if addr < as.brkBase {
		return ErrInval
	}
	if err := as.ensureHeapLocked(addr); err != nil {
		return err
	}
	as.brk = addr
	return nil
}

// Sbrk adjusts the break by delta and returns the previous break.
func (as *AddressSpace) Sbrk(delta int64) (int64, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	old := as.brk
	next := old + delta
	if next < as.brkBase {
		return 0, ErrInval
	}
	if err := as.ensureHeapLocked(next); err != nil {
		return 0, err
	}
	as.brk = next
	return old, nil
}

// ensureHeapLocked keeps a heap segment covering [brkBase, addr).
func (as *AddressSpace) ensureHeapLocked(addr int64) error {
	need := pageRound(addr - as.brkBase)
	if need <= 0 {
		return nil
	}
	if as.heapObj == nil {
		if err := as.reserveLocked(need); err != nil {
			return err
		}
		as.heapObj = NewAnon(need)
		seg := &Segment{
			Base: as.brkBase, Length: need,
			Prot: ProtRead | ProtWrite, Flags: MapPrivate,
			obj: as.heapObj, origin: as.heapObj,
		}
		as.insertLocked(seg)
		return nil
	}
	// Grow the existing heap segment.
	if s := as.findLocked(as.brkBase); s != nil && s.obj == as.heapObj && s.Base == as.brkBase {
		if need > s.Length {
			if err := as.reserveLocked(need - s.Length); err != nil {
				return err
			}
			as.mapped += need - s.Length
			s.Length = need
		}
	}
	return nil
}

// MapStack carves a thread stack of size bytes guarded below by a
// red-zone page, the paper's defense against silent stack overflow:
// stacks grow down, so the first write past the bottom lands on the
// guard and faults with ErrRedZone (a SIGSEGV at the mt layer)
// instead of corrupting the neighboring mapping. Returns the base of
// the usable stack — the guard page sits at base-PageSize.
//
// The carve only reserves: no page is committed until first touch,
// at which point the stack commits down in commitChunk steps toward
// the red zone (see touchLocked). Reservation fails with ErrNoMem
// past the rlimit; the guard page counts toward the reserved limit
// like any other mapping.
func (as *AddressSpace) MapStack(size int64) (int64, error) {
	if size <= 0 {
		return 0, ErrInval
	}
	size = pageRound(size)
	total := size + PageSize
	as.mu.Lock()
	defer as.mu.Unlock()
	if err := as.reserveLocked(total); err != nil {
		return 0, err
	}
	va := as.findHoleLocked(total)
	guard := &Segment{
		Base: va, Length: PageSize, Prot: 0,
		Flags: MapPrivate | MapRedZone,
		obj:   guardObj, origin: guardObj,
	}
	stackObj := NewSparseAnon(size)
	stack := &Segment{
		Base: va + PageSize, Length: size,
		Prot: ProtRead | ProtWrite, Flags: MapPrivate,
		obj: stackObj, origin: stackObj,
		stack: true, commitLow: va + PageSize + size,
	}
	// Descending order: the stack (higher base) inserts before the
	// guard; both append at the tail for fresh carves.
	as.insertLocked(stack)
	as.insertLocked(guard)
	return stack.Base, nil
}

// TouchStack commits the top of a stack carve, modeling the first
// frame pushed when a thread starts running: the top chunk commits,
// moving the watermark off the reservation ceiling. A stack recycled
// through the thread library's cache is already committed and the
// touch is free. Fails with ErrNoMem past the committed-byte rlimit.
func (as *AddressSpace) TouchStack(base, size int64) error {
	if size <= 0 {
		return ErrInval
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	top := base + pageRound(size) - 1
	s := as.findLocked(top)
	if s == nil {
		return fmt.Errorf("%w: va %#x", ErrFault, top)
	}
	return as.touchLocked(s, top, 1)
}

// UnmapStack releases a MapStack carve: the stack and its red-zone
// guard page.
func (as *AddressSpace) UnmapStack(base, size int64) error {
	if size <= 0 || base%PageSize != 0 {
		return ErrInval
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	as.unmapLocked(base-PageSize, pageRound(size)+PageSize)
	return nil
}

// Brk0 returns the current break.
func (as *AddressSpace) Brk0() int64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.brk
}

// Segments returns a snapshot of the mappings, sorted by ascending
// base.
func (as *AddressSpace) Segments() []Segment {
	as.mu.Lock()
	defer as.mu.Unlock()
	out := make([]Segment, len(as.segs))
	for i, s := range as.segs {
		out[len(as.segs)-1-i] = *s
		out[len(as.segs)-1-i].touched = nil
	}
	return out
}

// Fork duplicates the address space for a child process: shared
// mappings refer to the same objects; private mappings (including the
// heap) are copied — sparse stack objects chunk-by-chunk, so idle
// stacks stay cheap across fork. The child's touch state is fresh:
// its committed total starts at zero and rebuilds as it faults pages
// in.
func (as *AddressSpace) Fork() (*AddressSpace, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	child := &AddressSpace{
		brk:     as.brk,
		brkBase: as.brkBase,
		mapHint: as.mapHint,
		mapped:  as.mapped,
		limit:   as.limit, // rlimits are inherited across fork
		chaos:   as.chaos,
		faultFn: nil, // the caller wires the child's accounting
	}
	child.commitLimit = as.commitLimit
	for _, s := range as.segs {
		ns := &Segment{
			Base: s.Base, Length: s.Length, Prot: s.Prot,
			Flags: s.Flags, obj: s.obj, origin: s.origin,
			objOff: s.objOff, stack: s.stack,
		}
		if ns.stack {
			ns.commitLow = ns.end()
		}
		if s.Flags&MapPrivate != 0 && s.obj != guardObj {
			if sp, ok := s.obj.(*SparseAnon); ok {
				ns.obj = sp.clone()
			} else {
				snap, err := snapshot(s.obj)
				if err != nil {
					return nil, err
				}
				ns.obj = snap
				if s.obj == as.heapObj {
					child.heapObj = snap
				}
			}
		}
		child.segs = append(child.segs, ns)
	}
	return child, nil
}

// Reset drops all mappings (used by exec).
func (as *AddressSpace) Reset() {
	as.mu.Lock()
	defer as.mu.Unlock()
	as.segs = nil
	as.heapObj = nil
	as.brk = as.brkBase
	as.mapHint = mapTop
	as.mapped = 0
	as.committed = 0
	as.peakCommit = 0
}
