package vm

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"sunosmt/internal/chaos"
)

func TestAnonReadBeyondEndIsZero(t *testing.T) {
	a := NewAnon(4)
	if err := a.WriteObject([]byte{1, 2, 3, 4}, 0); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 8)
	if err := a.ReadObject(b, 0); err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 4, 0, 0, 0, 0}
	if !bytes.Equal(b, want) {
		t.Fatalf("got %v, want %v", b, want)
	}
}

func TestAnonGrowsOnWrite(t *testing.T) {
	a := NewAnon(0)
	if err := a.WriteObject([]byte{9}, 100); err != nil {
		t.Fatal(err)
	}
	if a.ObjectSize() != 101 {
		t.Fatalf("size = %d, want 101", a.ObjectSize())
	}
	b := make([]byte, 1)
	a.ReadObject(b, 100)
	if b[0] != 9 {
		t.Fatalf("read back %d, want 9", b[0])
	}
}

func TestObjectIDsUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		id := NewAnon(1).ObjectID()
		if seen[id] {
			t.Fatalf("duplicate object id %d", id)
		}
		seen[id] = true
	}
}

func TestMmapAndReadWrite(t *testing.T) {
	as := New(nil)
	va, err := as.Mmap(0, 100, ProtRead|ProtWrite, MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if va%PageSize != 0 {
		t.Fatalf("va %#x not page aligned", va)
	}
	if err := as.Write(va+10, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 5)
	if err := as.Read(va+10, b); err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello" {
		t.Fatalf("read %q", b)
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	as := New(nil)
	err := as.Read(0x1234, make([]byte, 4))
	if !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want ErrFault", err)
	}
	err = as.Write(0x1234, []byte{1})
	if !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want ErrFault", err)
	}
}

func TestProtectionEnforced(t *testing.T) {
	as := New(nil)
	va, err := as.Mmap(0, PageSize, ProtRead, MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Write(va, []byte{1}); !errors.Is(err, ErrProt) {
		t.Fatalf("write to read-only = %v, want ErrProt", err)
	}
	if err := as.Read(va, make([]byte, 1)); err != nil {
		t.Fatalf("read of read-only mapping failed: %v", err)
	}
}

func TestSharedMappingVisibleAcrossSpaces(t *testing.T) {
	obj := NewAnon(PageSize)
	as1 := New(nil)
	as2 := New(nil)
	va1, err := as1.Mmap(0, PageSize, ProtRead|ProtWrite, MapShared, obj, 0)
	if err != nil {
		t.Fatal(err)
	}
	va2, err := as2.Mmap(0, 2*PageSize, ProtRead|ProtWrite, MapShared, obj, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The two mappings are at different virtual addresses, as the
	// paper requires for cross-process synchronization variables.
	if err := as1.Write(va1+8, []byte("record")); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 6)
	if err := as2.Read(va2+8, b); err != nil {
		t.Fatal(err)
	}
	if string(b) != "record" {
		t.Fatalf("shared mapping read %q", b)
	}
}

func TestResolveGivesSameIdentityAtDifferentVAs(t *testing.T) {
	obj := NewAnon(PageSize)
	as1 := New(nil)
	as2 := New(nil)
	va1, _ := as1.Mmap(0, PageSize, ProtRead|ProtWrite, MapShared, obj, 0)
	va2, _ := as2.Mmap(0, PageSize, ProtRead|ProtWrite, MapShared, obj, 0)
	o1, off1, err := as1.Resolve(va1 + 64)
	if err != nil {
		t.Fatal(err)
	}
	o2, off2, err := as2.Resolve(va2 + 64)
	if err != nil {
		t.Fatal(err)
	}
	if o1.ObjectID() != o2.ObjectID() || off1 != off2 {
		t.Fatalf("identities differ: (%d,%d) vs (%d,%d)", o1.ObjectID(), off1, o2.ObjectID(), off2)
	}
}

func TestPrivateMappingIsolated(t *testing.T) {
	obj := NewAnon(PageSize)
	obj.WriteObject([]byte("original"), 0)
	as := New(nil)
	va, err := as.Mmap(0, PageSize, ProtRead|ProtWrite, MapPrivate, obj, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot sees the original contents...
	b := make([]byte, 8)
	as.Read(va, b)
	if string(b) != "original" {
		t.Fatalf("private read %q", b)
	}
	// ...writes do not reach the object...
	as.Write(va, []byte("modified"))
	obj.ReadObject(b, 0)
	if string(b) != "original" {
		t.Fatalf("private write leaked to object: %q", b)
	}
	// ...and later object writes are not seen.
	obj.WriteObject([]byte("rewritten"), 0)
	as.Read(va, b)
	if string(b) != "modified" {
		t.Fatalf("private mapping saw object write: %q", b)
	}
}

func TestMapFixedReplacesExisting(t *testing.T) {
	as := New(nil)
	va, err := as.Mmap(0, PageSize, ProtRead|ProtWrite, MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	as.Write(va, []byte("aaaa"))
	if _, err := as.Mmap(va, PageSize, ProtRead|ProtWrite, MapPrivate|MapFixed, nil, 0); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 4)
	as.Read(va, b)
	if !bytes.Equal(b, []byte{0, 0, 0, 0}) {
		t.Fatalf("fixed mapping did not replace: %v", b)
	}
}

func TestMunmapSplitsSegment(t *testing.T) {
	as := New(nil)
	va, err := as.Mmap(0, 3*PageSize, ProtRead|ProtWrite, MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	as.Write(va, []byte("left"))
	as.Write(va+2*PageSize, []byte("right"))
	if err := as.Munmap(va+PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 5)
	if err := as.Read(va, b[:4]); err != nil || string(b[:4]) != "left" {
		t.Fatalf("left remainder: %q err %v", b[:4], err)
	}
	if err := as.Read(va+2*PageSize, b); err != nil || string(b) != "right" {
		t.Fatalf("right remainder: %q err %v", b, err)
	}
	if err := as.Read(va+PageSize, b); !errors.Is(err, ErrFault) {
		t.Fatalf("hole read err = %v, want fault", err)
	}
}

func TestFaultAccounting(t *testing.T) {
	var minor, major int
	as := New(func(m bool) {
		if m {
			major++
		} else {
			minor++
		}
	})
	va, _ := as.Mmap(0, 2*PageSize, ProtRead|ProtWrite, MapPrivate, nil, 0)
	as.Write(va, []byte{1})
	as.Write(va, []byte{2}) // same page: no new fault
	as.Write(va+PageSize, []byte{3})
	if minor != 2 || major != 0 {
		t.Fatalf("minor=%d major=%d, want 2/0", minor, major)
	}
}

type fileLike struct{ *Anon }

func (fileLike) FileBacked() bool { return true }

func TestMajorFaultsForFileBacked(t *testing.T) {
	var major int
	as := New(func(m bool) {
		if m {
			major++
		}
	})
	f := fileLike{NewAnon(PageSize)}
	va, err := as.Mmap(0, PageSize, ProtRead|ProtWrite, MapShared, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	as.Read(va, make([]byte, 1))
	if major != 1 {
		t.Fatalf("major = %d, want 1", major)
	}
}

func TestBrkSbrk(t *testing.T) {
	as := New(nil)
	start := as.Brk0()
	old, err := as.Sbrk(100)
	if err != nil {
		t.Fatal(err)
	}
	if old != start {
		t.Fatalf("sbrk returned %#x, want %#x", old, start)
	}
	if err := as.Write(start, []byte("heap")); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Sbrk(-(200)); !errors.Is(err, ErrInval) {
		t.Fatalf("sbrk below base err = %v, want ErrInval", err)
	}
	if err := as.Brk(start + PageSize*4); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(start+PageSize*3, []byte("far")); err != nil {
		t.Fatalf("write in grown heap: %v", err)
	}
}

func TestForkCopiesPrivateSharesShared(t *testing.T) {
	obj := NewAnon(PageSize)
	as := New(nil)
	shared, _ := as.Mmap(0, PageSize, ProtRead|ProtWrite, MapShared, obj, 0)
	private, _ := as.Mmap(0, PageSize, ProtRead|ProtWrite, MapPrivate, nil, 0)
	as.Write(shared, []byte("S1"))
	as.Write(private, []byte("P1"))

	child, err := as.Fork()
	if err != nil {
		t.Fatal(err)
	}
	// Parent's later private write is invisible to the child.
	as.Write(private, []byte("P2"))
	b := make([]byte, 2)
	child.Read(private, b)
	if string(b) != "P1" {
		t.Fatalf("child private = %q, want P1", b)
	}
	// Shared stays shared both ways.
	as.Write(shared, []byte("S2"))
	child.Read(shared, b)
	if string(b) != "S2" {
		t.Fatalf("child shared = %q, want S2", b)
	}
	child.Write(shared, []byte("S3"))
	as.Read(shared, b)
	if string(b) != "S3" {
		t.Fatalf("parent shared = %q, want S3", b)
	}
}

func TestResetDropsEverything(t *testing.T) {
	as := New(nil)
	va, _ := as.Mmap(0, PageSize, ProtRead|ProtWrite, MapPrivate, nil, 0)
	as.Reset()
	if err := as.Read(va, make([]byte, 1)); !errors.Is(err, ErrFault) {
		t.Fatal("mapping survived Reset")
	}
	if len(as.Segments()) != 0 {
		t.Fatal("segments survived Reset")
	}
}

func TestMmapValidation(t *testing.T) {
	as := New(nil)
	if _, err := as.Mmap(0, 0, ProtRead, MapPrivate, nil, 0); !errors.Is(err, ErrInval) {
		t.Fatal("zero length accepted")
	}
	if _, err := as.Mmap(0, 10, ProtRead, MapShared|MapPrivate, nil, 0); !errors.Is(err, ErrInval) {
		t.Fatal("shared|private accepted")
	}
	if _, err := as.Mmap(0, 10, ProtRead, 0, nil, 0); !errors.Is(err, ErrInval) {
		t.Fatal("neither shared nor private accepted")
	}
	if _, err := as.Mmap(123, PageSize, ProtRead, MapPrivate|MapFixed, nil, 0); !errors.Is(err, ErrInval) {
		t.Fatal("unaligned MapFixed accepted")
	}
}

func TestConcurrentMmapAndAccess(t *testing.T) {
	as := New(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				va, err := as.Mmap(0, PageSize, ProtRead|ProtWrite, MapPrivate, nil, 0)
				if err != nil {
					t.Error(err)
					return
				}
				if err := as.Write(va, []byte("x")); err != nil {
					t.Error(err)
					return
				}
				if err := as.Munmap(va, PageSize); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Property: data written through one shared mapping is read back
// identically through another mapping of the same object at any
// offset.
func TestSharedMappingRoundTripProperty(t *testing.T) {
	f := func(data []byte, offRaw uint16) bool {
		if len(data) == 0 {
			return true
		}
		off := int64(offRaw) % PageSize
		obj := NewAnon(2 * PageSize)
		as1, as2 := New(nil), New(nil)
		va1, err1 := as1.Mmap(0, 2*PageSize, ProtRead|ProtWrite, MapShared, obj, 0)
		va2, err2 := as2.Mmap(0, 2*PageSize, ProtRead|ProtWrite, MapShared, obj, 0)
		if err1 != nil || err2 != nil {
			return false
		}
		if int64(len(data)) > PageSize {
			data = data[:PageSize]
		}
		if err := as1.Write(va1+off, data); err != nil {
			return false
		}
		b := make([]byte, len(data))
		if err := as2.Read(va2+off, b); err != nil {
			return false
		}
		return bytes.Equal(b, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- resource-exhaustion error paths ------------------------------------

func TestMmapLimitENOMEM(t *testing.T) {
	as := New(nil)
	base := as.Mapped()
	as.SetLimit(base + 2*PageSize)
	va, err := as.Mmap(0, 2*PageSize, ProtRead|ProtWrite, MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One page over the limit: refused with ErrNoMem, space untouched.
	if _, err := as.Mmap(0, PageSize, ProtRead, MapPrivate, nil, 0); !errors.Is(err, ErrNoMem) {
		t.Fatalf("over-limit Mmap = %v, want ErrNoMem", err)
	}
	if got := as.Mapped(); got != base+2*PageSize {
		t.Fatalf("refused Mmap changed accounting: %d, want %d", got, base+2*PageSize)
	}
	// A fixed remap of an already-mapped range is judged net of the
	// bytes it replaces, so it fits even with the limit exhausted.
	if _, err := as.Mmap(va, 2*PageSize, ProtRead, MapPrivate|MapFixed, nil, 0); err != nil {
		t.Fatalf("fixed remap within limit failed: %v", err)
	}
	// Raising the fixed mapping's footprint past the limit is refused
	// before anything is unmapped.
	if _, err := as.Mmap(va, 3*PageSize, ProtRead, MapPrivate|MapFixed, nil, 0); !errors.Is(err, ErrNoMem) {
		t.Fatalf("growing fixed remap = %v, want ErrNoMem", err)
	}
	b := make([]byte, 1)
	if err := as.Read(va, b); err != nil {
		t.Fatalf("refused fixed remap tore down the old mapping: %v", err)
	}
	// Lifting the limit unblocks growth.
	as.SetLimit(0)
	if _, err := as.Mmap(0, 16*PageSize, ProtRead, MapPrivate, nil, 0); err != nil {
		t.Fatalf("Mmap after lifting limit: %v", err)
	}
}

func TestMmapTransientAllocFail(t *testing.T) {
	as := New(nil)
	cfg := chaos.DefaultConfig(1)
	cfg.AllocFail = 1000 // every carve fails
	as.SetChaos(chaos.New(cfg))
	if _, err := as.Mmap(0, PageSize, ProtRead, MapPrivate, nil, 0); !errors.Is(err, ErrNoMem) {
		t.Fatalf("chaos Mmap = %v, want ErrNoMem", err)
	}
	if _, err := as.MapStack(PageSize); !errors.Is(err, ErrNoMem) {
		t.Fatalf("chaos MapStack = %v, want ErrNoMem", err)
	}
	if _, err := as.Sbrk(PageSize); !errors.Is(err, ErrNoMem) {
		t.Fatalf("chaos Sbrk = %v, want ErrNoMem", err)
	}
	as.SetChaos(nil)
	if _, err := as.Mmap(0, PageSize, ProtRead, MapPrivate, nil, 0); err != nil {
		t.Fatalf("Mmap after clearing chaos: %v", err)
	}
}

func TestMunmapPartialUnmap(t *testing.T) {
	as := New(nil)
	base := as.Mapped()
	va, err := as.Mmap(0, 4*PageSize, ProtRead|ProtWrite, MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Munmap(va, 0); !errors.Is(err, ErrInval) {
		t.Fatalf("zero-length Munmap = %v, want ErrInval", err)
	}
	if err := as.Munmap(va+1, PageSize); !errors.Is(err, ErrInval) {
		t.Fatalf("unaligned Munmap = %v, want ErrInval", err)
	}
	// Punch out the middle two pages: the ends stay mapped, the hole
	// faults, and the accounting drops by exactly the hole.
	if err := as.Munmap(va+PageSize, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if err := as.Write(va, b); err != nil {
		t.Fatalf("low end unmapped by partial Munmap: %v", err)
	}
	if err := as.Write(va+3*PageSize, b); err != nil {
		t.Fatalf("high end unmapped by partial Munmap: %v", err)
	}
	if err := as.Write(va+PageSize, b); !errors.Is(err, ErrFault) {
		t.Fatalf("hole access = %v, want ErrFault", err)
	}
	if got := as.Mapped(); got != base+2*PageSize {
		t.Fatalf("partial unmap accounting: %d mapped, want %d", got, base+2*PageSize)
	}
}

func TestStackRedZoneFault(t *testing.T) {
	as := New(nil)
	base := as.Mapped()
	sp, err := as.MapStack(2 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if got := as.Mapped(); got != base+3*PageSize {
		t.Fatalf("stack+guard accounting: %d, want %d", got, base+3*PageSize)
	}
	b := make([]byte, 1)
	if err := as.Write(sp, b); err != nil {
		t.Fatalf("stack not writable: %v", err)
	}
	// The first byte below the stack lands on the guard page: a
	// distinguished red-zone fault, for reads and writes both.
	if err := as.Write(sp-1, b); !errors.Is(err, ErrRedZone) {
		t.Fatalf("write under stack = %v, want ErrRedZone", err)
	}
	if err := as.Read(sp-PageSize, b); !errors.Is(err, ErrRedZone) {
		t.Fatalf("read in guard page = %v, want ErrRedZone", err)
	}
	// Releasing the stack reclaims the guard page with it, and the
	// former guard address reverts to a plain segmentation fault.
	if err := as.UnmapStack(sp, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if got := as.Mapped(); got != base {
		t.Fatalf("UnmapStack accounting: %d mapped, want %d", got, base)
	}
	if err := as.Write(sp-1, b); !errors.Is(err, ErrFault) || errors.Is(err, ErrRedZone) {
		t.Fatalf("unmapped guard access = %v, want plain ErrFault", err)
	}
}

func TestMapStackLimitENOMEM(t *testing.T) {
	as := New(nil)
	base := as.Mapped()
	// Room for the stack but not its guard page: the carve must be
	// refused as a whole, leaving no half-mapped stack behind.
	as.SetLimit(base + 2*PageSize)
	if _, err := as.MapStack(2 * PageSize); !errors.Is(err, ErrNoMem) {
		t.Fatalf("MapStack past limit = %v, want ErrNoMem", err)
	}
	if got := as.Mapped(); got != base {
		t.Fatalf("refused MapStack leaked: %d mapped, want %d", got, base)
	}
	as.SetLimit(base + 3*PageSize)
	if _, err := as.MapStack(2 * PageSize); err != nil {
		t.Fatalf("MapStack at exact fit failed: %v", err)
	}
}
