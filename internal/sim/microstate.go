package sim

import (
	"fmt"
	"time"
)

// Kernel-level microstate accounting: the LWP counterpart of the
// threads library's per-thread microstates. Every LWP state change
// goes through Kernel.setLWPStateLocked, which charges the interval
// since the previous change to the outgoing state — one clock read
// per transition, and the per-state times telescope to the LWP's
// exact lifetime.

// LWPMicro is one per-LWP accounting state.
type LWPMicro int

// LWP microstates.
const (
	// LMEmbryo: created but not yet started by an animator.
	LMEmbryo LWPMicro = iota
	// LMRunq: runnable, waiting for a CPU — kernel dispatch latency.
	LMRunq
	// LMOnCPU: holding a CPU.
	LMOnCPU
	// LMSleep: blocked on a kernel wait queue or in SigWait.
	LMSleep
	// LMPark: parked by the threads library (lwp_park) — an idle
	// pool LWP, not a blocked one.
	LMPark
	// LMStop: stopped by job control.
	LMStop
	// NumLWPMicro sizes accumulator arrays.
	NumLWPMicro
)

// String implements fmt.Stringer.
func (ms LWPMicro) String() string {
	switch ms {
	case LMEmbryo:
		return "embryo"
	case LMRunq:
		return "runq"
	case LMOnCPU:
		return "oncpu"
	case LMSleep:
		return "sleep"
	case LMPark:
		return "park"
	case LMStop:
		return "stopped"
	}
	return fmt.Sprintf("LWPMicro(%d)", int(ms))
}

// lwpMicroOf maps a scheduling state onto the microstate its time is
// charged to. A zombie never transitions again, so its mapping is
// never charged.
func lwpMicroOf(s LWPState) LWPMicro {
	switch s {
	case LWPEmbryo, LWPZombie:
		return LMEmbryo
	case LWPRunnable:
		return LMRunq
	case LWPOnCPU:
		return LMOnCPU
	case LWPParked:
		return LMPark
	case LWPStopped:
		return LMStop
	}
	return LMSleep // LWPSleeping, LWPSigWait
}

// LWPMicrostates is a snapshot of one LWP's accumulated state times.
// The per-state times always sum exactly to Total.
type LWPMicrostates struct {
	Embryo  time.Duration // created, not yet running
	Runq    time.Duration // waiting for a CPU
	OnCPU   time.Duration // holding a CPU
	Sleep   time.Duration // blocked in the kernel
	Park    time.Duration // parked by the library (idle)
	Stopped time.Duration // job-control stopped
	Total   time.Duration // lifetime on the virtual clock
	State   LWPState      // state at snapshot time
	Dead    bool          // LWP has exited; times are final
}

// Sum returns the sum of the per-state times (== Total).
func (u LWPMicrostates) Sum() time.Duration {
	return u.Embryo + u.Runq + u.OnCPU + u.Sleep + u.Park + u.Stopped
}

// lwpSchedulable reports whether an LWP in state s can make progress
// without an external event: embryos are about to run, runnables are
// waiting only for a CPU, on-CPU LWPs are running. Sleeping, parked,
// stopped, sig-waiting and zombie LWPs all wait on something else.
func lwpSchedulable(s LWPState) bool {
	return s == LWPEmbryo || s == LWPRunnable || s == LWPOnCPU
}

// setLWPStateLocked is the single LWP state-change point: it charges
// the interval since the last change to the outgoing state's
// accumulator and enters s. It also maintains the kernel's
// schedulable-LWP count, kicking the fast-forward clock when the last
// schedulable LWP blocks. Requires Kernel.mu; callers read the clock
// once per transition and pass it in.
func (k *Kernel) setLWPStateLocked(l *LWP, now time.Duration, s LWPState) {
	l.msAcc[lwpMicroOf(l.state)] += now - l.msMark
	l.msMark = now
	if was, is := lwpSchedulable(l.state), lwpSchedulable(s); was != is {
		if is {
			k.nactive++
		} else if k.nactive--; k.nactive == 0 && k.ff != nil {
			k.ff.Kick()
		}
	}
	l.state = s
}

// Microstates snapshots the LWP's microstate accounting. For a live
// LWP the open interval is charged up to now; for an exited LWP the
// times are final. In both cases Sum() == Total.
func (l *LWP) Microstates() LWPMicrostates {
	k := l.proc.kern
	k.mu.Lock()
	defer k.mu.Unlock()
	acc := l.msAcc
	dead := l.state == LWPZombie
	now := l.msMark
	if !dead {
		if clk := k.clock.Now(); clk > now {
			now = clk
		}
		acc[lwpMicroOf(l.state)] += now - l.msMark
	}
	return LWPMicrostates{
		Embryo:  acc[LMEmbryo],
		Runq:    acc[LMRunq],
		OnCPU:   acc[LMOnCPU],
		Sleep:   acc[LMSleep],
		Park:    acc[LMPark],
		Stopped: acc[LMStop],
		Total:   now - l.msBorn,
		State:   l.state,
		Dead:    dead,
	}
}

// CurCPU returns the id of the CPU the LWP is currently running on, or
// -1. Lock-free: the threads library uses it to attribute trace-ring
// events without taking the kernel lock.
func (l *LWP) CurCPU() int { return int(l.curCPU.Load()) }
