package sim

import (
	"time"

	"sunosmt/internal/trace"
)

// WaitQ is a kernel sleep queue. LWPs block on wait queues inside
// system calls (pipe I/O, poll, waitpid, process-shared
// synchronization variables, bound-thread sleeps). Wakeups are FIFO.
// The queue is an intrusive doubly-linked list through the LWPs'
// wqNext/wqPrev fields, so timeout and signal-interrupt removal of a
// mid-queue sleeper is O(1).
//
// The zero value is ready to use. A WaitQ must not be copied after
// first use.
type WaitQ struct {
	name       string
	head, tail *LWP // guarded by Kernel.mu
	n          int
}

// NewWaitQ returns a named wait queue (the name appears in traces and
// /proc wchan output).
func NewWaitQ(name string) *WaitQ { return &WaitQ{name: name} }

// Name returns the queue's name.
func (w *WaitQ) Name() string { return w.name }

func (w *WaitQ) add(l *LWP) {
	l.wqPrev = w.tail
	l.wqNext = nil
	if w.tail != nil {
		w.tail.wqNext = l
	} else {
		w.head = l
	}
	w.tail = l
	w.n++
}

func (w *WaitQ) remove(l *LWP) {
	if l.wq != w {
		return
	}
	if l.wqPrev != nil {
		l.wqPrev.wqNext = l.wqNext
	} else {
		w.head = l.wqNext
	}
	if l.wqNext != nil {
		l.wqNext.wqPrev = l.wqPrev
	} else {
		w.tail = l.wqPrev
	}
	l.wqNext, l.wqPrev = nil, nil
	w.n--
}

// nth returns the i'th queued LWP (head = 0). Only the chaos
// wake-reorder path walks the list.
func (w *WaitQ) nth(i int) *LWP {
	l := w.head
	for ; i > 0 && l != nil; i-- {
		l = l.wqNext
	}
	return l
}

// Len reports how many LWPs are blocked on the queue.
func (w *WaitQ) Len(k *Kernel) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return w.n
}

// SleepOpts controls a kernel sleep.
type SleepOpts struct {
	// Interruptible sleeps are broken by signal delivery; the
	// sleep returns WakeInterrupted and the system call should
	// fail with EINTR.
	Interruptible bool
	// Indefinite marks the sleep as waiting for an external event
	// of unbounded latency (e.g. poll). When every live LWP of a
	// process is in an indefinite wait, the kernel sends the
	// process SIGWAITING.
	Indefinite bool
	// Timeout, if positive, bounds the sleep.
	Timeout time.Duration
}

// Sleep blocks the LWP on wq until Wakeup, signal interruption, or
// timeout. The LWP's CPU is released for the duration; on return the
// LWP holds a CPU again. Sleep panics with *Unwind if the process
// dies while sleeping.
func (k *Kernel) Sleep(l *LWP, wq *WaitQ, o SleepOpts) WakeResult {
	res, _ := k.SleepIf(l, wq, nil, o)
	return res
}

// SleepIf is Sleep with a commit condition evaluated under the kernel
// lock immediately before the LWP is queued: if cond returns false
// the sleep is abandoned and SleepIf returns (WakeNormal, false).
// This is the futex-style race-free block used by process-shared
// synchronization variables — the waker's state change and Wakeup
// cannot slip between the caller's user-level check and the enqueue.
// cond must not call back into the kernel.
func (k *Kernel) SleepIf(l *LWP, wq *WaitQ, cond func() bool, o SleepOpts) (WakeResult, bool) {
	spinFor(k.cfg.KernelSwitchCost) // simulated trap entry + switch
	k.mu.Lock()
	defer k.mu.Unlock()
	k.checkpointLocked(l)
	// Chaos: an interruptible sleep may fail with EINTR even though
	// no signal is pending, as real kernels are permitted to do.
	// Injection happens only at sites whose callers declared the
	// sleep interruptible, so every caller already handles EINTR.
	if o.Interruptible && (k.deliverableLocked(l) != 0 || k.chaos.EINTR()) {
		return WakeInterrupted, false
	}
	if cond != nil && !cond() {
		return WakeNormal, false
	}
	p := l.proc
	k.releaseCPULocked(l, LWPSleeping)
	l.wq = wq
	wq.add(l)
	l.woken = false
	l.wakeRes = WakeNormal
	l.interruptible = o.Interruptible
	indefinite := o.Indefinite || k.cfg.SignalOnAnyBlock
	if indefinite {
		l.indefinite = true
		p.indefSleepers++
		k.maybeSigwaitingLocked(p)
		// Chaos: randomize SIGWAITING timing by posting it early,
		// before the true all-LWPs-blocked condition holds. Early
		// posts are the safe direction: the library's growth hook
		// re-checks whether more LWPs are actually needed, while a
		// delayed post could deadlock the pool.
		if k.chaos.Sigwaiting() {
			k.postSignalLocked(p, SIGWAITING, nil)
		}
	}
	if o.Timeout > 0 {
		ll := l
		l.sleepTimer = k.clock.AfterFunc(o.Timeout, func() {
			k.mu.Lock()
			if ll.state == LWPSleeping && !ll.woken {
				k.wakeLWPLocked(ll, WakeTimeout)
			}
			k.mu.Unlock()
		})
	}
	for !l.woken {
		l.cond.Wait()
		if reason, bad := k.mustUnwindLocked(l); bad {
			k.unwindLocked(l, reason)
		}
	}
	if l.sleepTimer != nil {
		l.sleepTimer.Stop()
		l.sleepTimer = nil
	}
	res := l.wakeRes
	k.makeRunnableLocked(l)
	k.waitOnCPULocked(l)
	return res, true
}

// wakeLWPLocked pulls a sleeping LWP off its wait queue and marks it
// woken with the given result. The LWP's own goroutine re-enters the
// run queue when it observes the wake.
func (k *Kernel) wakeLWPLocked(l *LWP, res WakeResult) {
	if l.wq != nil {
		l.wq.remove(l)
		l.wq = nil
	}
	if l.indefinite {
		l.proc.indefSleepers--
		l.indefinite = false
	}
	l.interruptible = false
	l.woken = true
	l.wakeRes = res
	// The process is no longer all-blocked.
	l.proc.sigwaitingOn = false
	k.rings.Record(-1, trace.EvWakeup, int(l.proc.pid), int(l.id), 0, uint64(res))
	l.cond.Broadcast()
}

// Wakeup wakes up to n LWPs blocked on wq (FIFO order) and returns
// how many were woken. n < 0 wakes all.
func (k *Kernel) Wakeup(wq *WaitQ, n int) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.wakeupLocked(wq, n)
}

func (k *Kernel) wakeupLocked(wq *WaitQ, n int) int {
	if n < 0 {
		n = wq.n
	}
	count := 0
	for count < n && wq.n > 0 {
		// Chaos: wake a non-head waiter, breaking FIFO order. Any
		// queued LWP is a legitimate wake target; callers built on
		// sleep queues re-check their condition after waking.
		l := wq.head
		if alt := k.chaos.WakeReorder(wq.n); alt > 0 {
			if cand := wq.nth(alt); cand != nil {
				l = cand
			}
		}
		k.wakeLWPLocked(l, WakeNormal)
		count++
	}
	return count
}

// Park idles the LWP until Unpark. The threads library parks pool
// LWPs that have no thread to run (SunOS's lwp_park). A prior Unpark
// leaves a permit that makes the next Park return immediately, so the
// park/unpark pair is race-free.
func (k *Kernel) Park(l *LWP) {
	spinFor(k.cfg.KernelSwitchCost) // simulated trap entry + switch
	k.mu.Lock()
	defer k.mu.Unlock()
	k.checkpointLocked(l)
	if l.parkPermit {
		l.parkPermit = false
		return
	}
	k.releaseCPULocked(l, LWPParked)
	l.woken = false
	for !l.woken {
		l.cond.Wait()
		if reason, bad := k.mustUnwindLocked(l); bad {
			k.unwindLocked(l, reason)
		}
	}
	k.makeRunnableLocked(l)
	k.waitOnCPULocked(l)
}

// Unpark releases a parked LWP, or leaves a permit if the LWP is not
// currently parked.
func (k *Kernel) Unpark(l *LWP) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if l.state == LWPParked && !l.woken {
		l.woken = true
		k.rings.Record(-1, trace.EvWakeup, int(l.proc.pid), int(l.id), 0, uint64(WakeNormal))
		l.cond.Broadcast()
		return
	}
	l.parkPermit = true
}

// SyscallEnter marks the LWP as executing inside the kernel. The
// thread stays bound to its LWP for the duration of the call (paper:
// "When a thread executes a kernel call, it remains bound to the same
// lightweight process for the duration of the kernel call").
func (k *Kernel) SyscallEnter(l *LWP) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.checkpointLocked(l)
	k.chargeLocked(l) // close out user time
	l.inSyscall = true
	l.syscallStart = k.clock.Now()
}

// SyscallExit marks the LWP as back in user mode.
func (k *Kernel) SyscallExit(l *LWP) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.chargeLocked(l) // close out system time
	l.inSyscall = false
	k.checkpointLocked(l)
}

// InSyscall reports whether the LWP is currently inside a kernel call.
func (l *LWP) InSyscall() bool {
	k := l.proc.kern
	k.mu.Lock()
	defer k.mu.Unlock()
	return l.inSyscall
}
