package sim

import (
	"fmt"
	"time"
)

// PID identifies a process system-wide.
type PID int

// ProcState is the lifecycle state of a process.
type ProcState int

// Process states.
const (
	ProcRunning ProcState = iota
	ProcStopped
	ProcZombie
	ProcDead // reaped
)

// String implements fmt.Stringer.
func (s ProcState) String() string {
	switch s {
	case ProcRunning:
		return "running"
	case ProcStopped:
		return "stopped"
	case ProcZombie:
		return "zombie"
	case ProcDead:
		return "dead"
	}
	return fmt.Sprintf("ProcState(%d)", int(s))
}

// Rlimit is a soft/hard resource limit pair.
type Rlimit struct {
	Soft, Hard time.Duration
}

// RlimitInfinity marks an unlimited resource.
const RlimitInfinity = time.Duration(1<<63 - 1)

// Credentials are the per-process user and group IDs. As the paper
// notes there is only one set per process; if one thread changes them
// it is changed for all, and the kernel samples them atomically once
// per system call.
type Credentials struct {
	UID, GID int
}

// Process is the kernel's view of a UNIX process: an address space
// and a set of LWPs that share it, plus the shared state (fd table,
// working directory, credentials, signal dispositions) that the paper
// enumerates as shared among all threads.
type Process struct {
	pid    PID
	name   string
	kern   *Kernel
	parent *Process

	// Extension slots populated by the layers above the kernel
	// (internal/vfs sets Files, internal/vm sets Mem). The kernel
	// itself never interprets them; fork hooks copy them.
	Files any
	Mem   any

	// Everything below is guarded by Kernel.mu.

	lwps     map[LWPID]*LWP
	nextLWP  LWPID
	liveLWPs int
	// Counters driving SIGWAITING: the signal is sent when every
	// live, non-sigwait LWP is blocked in an indefinite wait.
	indefSleepers int
	sigwaiters    int
	sigwaitingOn  bool // edge-trigger: don't repost until state changes

	state        ProcState
	dying        bool
	execing      bool
	execSurvivor *LWP // the LWP performing exec; spared from unwind
	exitStatus   int
	killSig      Signal // signal that terminated the process, if any
	dumpedCore   bool
	abortMsg     string // panic message when Abort killed the process

	actions     [NSIG]sigaction
	pendingProc Sigset

	children map[PID]*Process
	zombies  []*Process
	waitq    WaitQ // parents sleep here in WaitChild

	creds Credentials
	cwd   string

	cpuLimit   Rlimit
	lwpLimit   int // max live LWPs; 0 is unlimited
	xcpuSent   bool
	childUser  time.Duration
	childSys   time.Duration
	deadUser   time.Duration // usage folded in from exited LWPs
	deadSys    time.Duration
	minorFault int64
	majorFault int64

	// Real-time interval timer: one per process (paper: "There is
	// only one real-time interval timer per process").
	rtimer *itimer

	// Hooks the threads library registers so the kernel can notify
	// it; invoked on fresh goroutines with no kernel locks held.
	sigwaitingHook func()

	exitedCh chan struct{}
}

// PID returns the process id.
func (p *Process) PID() PID { return p.pid }

// Name returns the process's descriptive name (comm).
func (p *Process) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.kern }

// Parent returns the parent process, or nil for the initial process.
func (p *Process) Parent() *Process { return p.parent }

// State returns the process lifecycle state.
func (p *Process) State() ProcState {
	p.kern.mu.Lock()
	defer p.kern.mu.Unlock()
	return p.state
}

// Dying reports whether the process has begun involuntary exit. The
// threads library checks this to unwind user-level threads that are
// parked outside the kernel's view.
func (p *Process) Dying() bool {
	p.kern.mu.Lock()
	defer p.kern.mu.Unlock()
	return p.dying
}

// Exited returns a channel closed when the process has fully exited
// (all LWPs gone).
func (p *Process) Exited() <-chan struct{} { return p.exitedCh }

// ExitStatus returns the exit status and the signal (if any) that
// terminated the process. Valid once Exited is closed.
func (p *Process) ExitStatus() (status int, sig Signal) {
	p.kern.mu.Lock()
	defer p.kern.mu.Unlock()
	return p.exitStatus, p.killSig
}

// DumpedCore reports whether the terminating signal's default action
// dumped core. Valid once Exited is closed.
func (p *Process) DumpedCore() bool {
	p.kern.mu.Lock()
	defer p.kern.mu.Unlock()
	return p.dumpedCore
}

// AbortMessage returns the panic message recorded when Kernel.Abort
// killed the process ("" when the process did not die by abort).
func (p *Process) AbortMessage() string {
	p.kern.mu.Lock()
	defer p.kern.mu.Unlock()
	return p.abortMsg
}

// LWPs returns a snapshot of the process's non-zombie LWPs.
func (p *Process) LWPs() []*LWP {
	p.kern.mu.Lock()
	defer p.kern.mu.Unlock()
	out := make([]*LWP, 0, len(p.lwps))
	for _, l := range p.lwps {
		if l.state != LWPZombie {
			out = append(out, l)
		}
	}
	return out
}

// NumLWPs returns the number of live LWPs.
func (p *Process) NumLWPs() int {
	p.kern.mu.Lock()
	defer p.kern.mu.Unlock()
	return p.liveLWPs
}

// Credentials returns the process credentials, sampled atomically.
func (p *Process) Credentials() Credentials {
	p.kern.mu.Lock()
	defer p.kern.mu.Unlock()
	return p.creds
}

// SetCredentials replaces the process credentials. The change is
// process-wide: it affects every thread, as the paper warns.
func (p *Process) SetCredentials(c Credentials) {
	p.kern.mu.Lock()
	p.creds = c
	p.kern.mu.Unlock()
}

// Cwd returns the working directory. There is only one per process.
func (p *Process) Cwd() string {
	p.kern.mu.Lock()
	defer p.kern.mu.Unlock()
	return p.cwd
}

// Chdir changes the working directory for every thread in the process.
func (p *Process) Chdir(dir string) {
	p.kern.mu.Lock()
	p.cwd = dir
	p.kern.mu.Unlock()
}

// SetCPULimit installs the process CPU rlimit. When the summed CPU
// usage of all LWPs exceeds the soft limit, the LWP that exceeded it
// is sent SIGXCPU (paper, "Resource usage").
func (p *Process) SetCPULimit(lim Rlimit) {
	p.kern.mu.Lock()
	p.cpuLimit = lim
	p.xcpuSent = false
	p.kern.mu.Unlock()
}

// SetLWPLimit installs the process's max-LWP rlimit: NewLWP fails
// with ErrAgain once the process has n live LWPs. Zero removes the
// limit. Like the CPU rlimit it is inherited across fork. Lowering
// the limit below the current LWP count never kills LWPs; it only
// refuses new ones, exactly as setrlimit does.
func (p *Process) SetLWPLimit(n int) {
	p.kern.mu.Lock()
	p.lwpLimit = n
	p.kern.mu.Unlock()
}

// LWPLimit returns the max-LWP rlimit (0 when unlimited).
func (p *Process) LWPLimit() int {
	p.kern.mu.Lock()
	defer p.kern.mu.Unlock()
	return p.lwpLimit
}

// Rusage is the aggregated resource usage of a process: the sum of
// the usage of all its LWPs (paper: available via getrusage()).
type Rusage struct {
	UserTime    time.Duration
	SysTime     time.Duration
	ChildUser   time.Duration
	ChildSys    time.Duration
	MinorFaults int64
	MajorFaults int64
	LiveLWPs    int
}

// Getrusage sums resource usage over all LWPs in the process,
// including exited ones (their usage is folded into the totals when
// they exit).
func (p *Process) Getrusage() Rusage {
	p.kern.mu.Lock()
	defer p.kern.mu.Unlock()
	return p.rusageLocked()
}

func (p *Process) rusageLocked() Rusage {
	r := Rusage{
		ChildUser:   p.childUser,
		ChildSys:    p.childSys,
		MinorFaults: p.minorFault,
		MajorFaults: p.majorFault,
		LiveLWPs:    p.liveLWPs,
		UserTime:    p.deadUser,
		SysTime:     p.deadSys,
	}
	for _, l := range p.lwps {
		r.UserTime += l.userTime
		r.SysTime += l.sysTime
	}
	return r
}

// AddFault charges page faults to the process (called by internal/vm).
func (p *Process) AddFault(major bool) {
	p.kern.mu.Lock()
	if major {
		p.majorFault++
	} else {
		p.minorFault++
	}
	p.kern.mu.Unlock()
}

// SetSigwaitingHook registers fn to run (on a fresh goroutine) each
// time the kernel posts SIGWAITING to this process. The threads
// library uses it to grow the LWP pool; it complements, not replaces,
// normal delivery of SIGWAITING to a handler.
func (p *Process) SetSigwaitingHook(fn func()) {
	p.kern.mu.Lock()
	p.sigwaitingHook = fn
	p.kern.mu.Unlock()
}
