package sim

import "math/bits"

// This file holds the per-CPU dispatch queues. Dispatch used to pop
// from one shared runnable list under the kernel lock; it now mirrors
// the Solaris dispatcher structure proper: every CPU owns a fixed
// array of per-priority FIFO queues (disp_q) indexed by an
// active-priority bitmap (dqactmap), and placement/steal policy moves
// LWPs between CPUs instead of a global scan choosing per pick.
//
// All fields are guarded by Kernel.mu (the simulated giant lock); the
// sharding buys O(1) picks, cache-warm affinity placement and an
// explicit steal/balance policy rather than lock-level parallelism,
// which the animation model cannot express.

// NumGlobalPrio is the number of global dispatch priority levels
// (TS 0-59, SYS 60-99, RT 100-159). Queue levels are exact global
// priorities, so bitmap order is dispatch order.
const NumGlobalPrio = rtMaxGlobal + 1

// lwpQ is one per-priority FIFO ring: head is dispatched first.
type lwpQ struct {
	head, tail *LWP
}

// lwpRunq is one CPU's dispatch queue: a FIFO ring per global
// priority plus an occupancy bitmap, so push, pop, remove and top are
// O(1). LWPs link intrusively through rqNext/rqPrev. The queue also
// counts its CPU-bound entries: those are invisible to work stealing.
type lwpRunq struct {
	qs     [NumGlobalPrio]lwpQ
	bitmap [(NumGlobalPrio + 63) / 64]uint64
	n      int
	nbound int // queued LWPs bound to this CPU; never stolen
}

// globalLevel clamps a global priority onto a queue level.
func globalLevel(prio int) int {
	if prio < 0 {
		return 0
	}
	if prio >= NumGlobalPrio {
		return NumGlobalPrio - 1
	}
	return prio
}

// push appends l at level lvl (FIFO among equals).
func (r *lwpRunq) push(l *LWP, lvl int) {
	l.rqLevel = lvl
	l.rqOn = true
	l.rqNext = nil
	q := &r.qs[lvl]
	if q.tail == nil {
		l.rqPrev = nil
		q.head, q.tail = l, l
		r.bitmap[lvl>>6] |= 1 << (lvl & 63)
	} else {
		l.rqPrev = q.tail
		q.tail.rqNext = l
		q.tail = l
	}
	r.n++
	if l.boundCPU != nil {
		r.nbound++
	}
}

// unlink detaches a queued LWP in O(1).
func (r *lwpRunq) unlink(l *LWP) {
	q := &r.qs[l.rqLevel]
	if l.rqPrev != nil {
		l.rqPrev.rqNext = l.rqNext
	} else {
		q.head = l.rqNext
	}
	if l.rqNext != nil {
		l.rqNext.rqPrev = l.rqPrev
	} else {
		q.tail = l.rqPrev
	}
	if q.head == nil {
		r.bitmap[l.rqLevel>>6] &^= 1 << (l.rqLevel & 63)
	}
	l.rqNext, l.rqPrev = nil, nil
	l.rqOn = false
	r.n--
	if l.boundCPU != nil {
		r.nbound--
	}
}

// top returns the highest occupied level, or -1 when empty.
func (r *lwpRunq) top() int {
	for w := len(r.bitmap) - 1; w >= 0; w-- {
		if word := r.bitmap[w]; word != 0 {
			return w<<6 + bits.Len64(word) - 1
		}
	}
	return -1
}

// stealableN reports how many queued LWPs another CPU may take.
func (r *lwpRunq) stealableN() int { return r.n - r.nbound }

// topStealable returns the highest level holding an unbound LWP, or
// -1. With no bound entries queued (the common case) this is a bitmap
// read; otherwise active levels are walked for the first unbound LWP.
func (r *lwpRunq) topStealable() int {
	if r.n == r.nbound {
		return -1
	}
	if r.nbound == 0 {
		return r.top()
	}
	for lvl := r.top(); lvl >= 0; lvl = r.nextBelow(lvl) {
		for l := r.qs[lvl].head; l != nil; l = l.rqNext {
			if l.boundCPU == nil {
				return lvl
			}
		}
	}
	return -1
}

// nextBelow returns the highest occupied level strictly below lvl.
func (r *lwpRunq) nextBelow(lvl int) int {
	if lvl <= 0 {
		return -1
	}
	w := (lvl - 1) >> 6
	if word := r.bitmap[w] & (^uint64(0) >> (63 - uint((lvl-1)&63))); word != 0 {
		return w<<6 + bits.Len64(word) - 1
	}
	for w--; w >= 0; w-- {
		if word := r.bitmap[w]; word != 0 {
			return w<<6 + bits.Len64(word) - 1
		}
	}
	return -1
}

// head returns the FIFO head of the given level.
func (r *lwpRunq) head(lvl int) *LWP {
	if lvl < 0 {
		return nil
	}
	return r.qs[lvl].head
}

// firstStealableAt returns the first unbound LWP at or below lvl.
func (r *lwpRunq) firstStealableAt(lvl int) *LWP {
	for ; lvl >= 0; lvl = r.nextBelow(lvl) {
		for l := r.qs[lvl].head; l != nil; l = l.rqNext {
			if l.boundCPU == nil {
				return l
			}
		}
	}
	return nil
}

// bottomStealable returns the lowest-priority, most-recently-queued
// unbound LWP — the least disruptive entry for the balancer to move.
func (r *lwpRunq) bottomStealable() *LWP {
	if r.n == r.nbound {
		return nil
	}
	for w := 0; w < len(r.bitmap); w++ {
		word := r.bitmap[w]
		for word != 0 {
			lvl := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			for l := r.qs[lvl].tail; l != nil; l = l.rqPrev {
				if l.boundCPU == nil {
					return l
				}
			}
		}
	}
	return nil
}

// nth returns the i'th queued LWP in priority-then-FIFO order — the
// O(n) walk taken only when a chaos source reorders a pick.
func (r *lwpRunq) nth(i int) *LWP {
	for lvl := r.top(); lvl >= 0; lvl = r.nextBelow(lvl) {
		for l := r.qs[lvl].head; l != nil; l = l.rqNext {
			if i == 0 {
				return l
			}
			i--
		}
	}
	return nil
}

// forEach visits every queued LWP (gang scans, /proc, re-leveling).
func (r *lwpRunq) forEach(fn func(*LWP)) {
	for lvl := r.top(); lvl >= 0; lvl = r.nextBelow(lvl) {
		for l := r.qs[lvl].head; l != nil; l = l.rqNext {
			fn(l)
		}
	}
}
