package sim

import (
	"errors"
	"fmt"
)

// This file implements process creation and destruction: exit, fork,
// fork1, exec, and waiting for children.
//
// The paper's fork() duplicates the address space and "creates the
// same LWPs in the same states as in the original"; fork1() forks
// only the calling thread/LWP. Go cannot clone goroutine stacks, so
// the kernel duplicates all *kernel-side* state (fd table and address
// space via fork hooks, dispositions, credentials, limits) and
// returns descriptors of the parent's other LWPs to the caller; the
// threads library re-animates them from explicit continuations. This
// substitution is recorded in DESIGN.md.

// ErrChild is returned by WaitChild when the process has no children
// to wait for (ECHILD).
var ErrChild = errors.New("sim: no child processes")

// ErrIntr is returned when an interruptible wait is broken by a
// signal (EINTR).
var ErrIntr = errors.New("sim: interrupted system call")

// ForkedLWP describes one LWP of the parent that fork duplicated into
// the child, so the threads library can re-animate its thread there.
type ForkedLWP struct {
	// LWP is the child-side LWP record (embryo; needs animation).
	LWP *LWP
	// ParentID is the id of the parent LWP it mirrors.
	ParentID LWPID
}

// Fork duplicates the calling LWP's process, like fork(2). all
// selects fork (true: duplicate every LWP) or fork1 (false: only the
// caller). It returns the child process, the child LWP corresponding
// to the caller, and — for full fork — records for the parent's other
// LWPs.
//
// As the paper specifies, fork causes interruptible system calls in
// progress on *other* LWPs to return EINTR.
func (k *Kernel) Fork(l *LWP, all bool) (*Process, *LWP, []ForkedLWP, error) {
	p := l.proc
	// SyscallEnter checkpoints, so a dying process unwinds here
	// with the kernel lock properly released.
	k.SyscallEnter(l)
	defer k.SyscallExit(l)

	child, cl, others, hooks := k.forkLocked(l, p, all)

	// Run fork hooks (fd table, address space duplication) without
	// the kernel lock; the child has no runnable LWPs yet so its
	// state cannot race.
	for _, h := range hooks {
		h(p, child)
	}
	return child, cl, others, nil
}

func (k *Kernel) forkLocked(l *LWP, p *Process, all bool) (*Process, *LWP, []ForkedLWP, []func(parent, child *Process)) {
	k.mu.Lock()
	defer k.mu.Unlock()
	child := k.newProcessLocked(p.name, p)
	child.creds = p.creds
	child.cwd = p.cwd
	child.actions = p.actions
	child.cpuLimit = p.cpuLimit
	// Pending signals are NOT inherited (POSIX/SVR4 semantics).

	// Duplicate the calling LWP.
	cl := k.newLWPLocked(child, l.class, l.userPrio)
	cl.mask = l.mask
	cl.gang = l.gang

	var others []ForkedLWP
	if all {
		for _, pl := range p.lwps {
			if pl == l || pl.state == LWPZombie {
				continue
			}
			nl := k.newLWPLocked(child, pl.class, pl.userPrio)
			nl.mask = pl.mask
			nl.gang = pl.gang
			others = append(others, ForkedLWP{LWP: nl, ParentID: pl.id})
		}
		// fork() may cause interruptible system calls to return
		// EINTR when made by any LWP other than the one calling
		// fork (paper).
		for _, pl := range p.lwps {
			if pl != l && pl.state == LWPSleeping && pl.interruptible {
				k.wakeLWPLocked(pl, WakeInterrupted)
			}
		}
	}
	hooks := append([]func(parent, child *Process){}, k.forkHooks...)
	k.tr.Add("proc", "pid %d forked -> pid %d (all=%v, %d extra lwps)", p.pid, child.pid, all, len(others))
	return child, cl, others, hooks
}

// Exec replaces the process image, like exec(2): it destroys all the
// LWPs in the address space, blocking until they are gone, then
// creates the single fresh LWP from which process startup code builds
// the initial thread. The caller's own LWP is consumed: Exec returns
// the new LWP-0 record which the caller must animate (or hand off).
func (k *Kernel) Exec(l *LWP, name string) (*LWP, error) {
	p := l.proc
	k.Checkpoint(l) // unwind here if the process is already dying
	nl, hooks, err := k.execInner(l, p, name)
	if err != nil {
		return nil, err
	}
	for _, h := range hooks {
		h(p)
	}
	// The caller's LWP dies; its animator must not touch it again.
	k.ExitLWP(l)
	return nl, nil
}

func (k *Kernel) execInner(l *LWP, p *Process, name string) (*LWP, []func(*Process), error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if p.execing {
		return nil, nil, fmt.Errorf("sim: concurrent exec in pid %d", p.pid)
	}
	p.execing = true
	p.execSurvivor = l
	k.tr.Add("proc", "pid %d exec (%s): tearing down %d LWPs", p.pid, name, p.liveLWPs-1)
	// Wake everyone; non-survivors unwind at their next kernel
	// entry. Exec blocks until all the LWPs are destroyed (paper).
	for _, x := range p.lwps {
		if x != l {
			x.cond.Broadcast()
		}
	}
	for p.liveLWPs > 1 {
		if p.dying {
			p.execing = false
			p.execSurvivor = nil
			k.unwindLocked(l, "process dying during exec")
		}
		// Reuse the survivor's cond as the exec barrier: ExitLWP
		// broadcasts scheduling changes globally via scheduleLocked,
		// so poll via wait on our own cond, which ExitLWP pokes.
		l.cond.Wait()
	}
	// Rebuild: reset signal state; fresh LWP 0.
	p.actions = [NSIG]sigaction{}
	p.pendingProc = 0
	p.name = name
	nl := k.newLWPLocked(p, ClassTS, defaultTSPrio)
	p.execing = false
	p.execSurvivor = nil
	hooks := append([]func(*Process){}, k.execHooks...)
	return nl, hooks, nil
}

// defaultTSPrio is the base timeshare priority of new LWPs.
const defaultTSPrio = 30

// Exit terminates the whole process voluntarily, like exit(2): all
// threads and LWPs are destroyed. The calling animator unwinds.
func (k *Kernel) Exit(l *LWP, status int) {
	k.mu.Lock()
	defer k.mu.Unlock() // runs during the unwind panic
	p := l.proc
	if !p.dying {
		k.killProcLocked(p, status, SIGNONE, false)
	}
	k.unwindLocked(l, "exit")
	// not reached
}

// WaitResult describes a reaped child.
type WaitResult struct {
	PID        PID
	Status     int
	Signal     Signal // signal that killed the child, if any
	DumpedCore bool
}

// WaitChild blocks until a child of the calling LWP's process exits,
// reaps it, and returns its status, like waitpid(2). pid < 0 waits
// for any child. The wait is interruptible and indefinite (it counts
// toward SIGWAITING).
func (k *Kernel) WaitChild(l *LWP, pid PID) (WaitResult, error) {
	p := l.proc
	k.SyscallEnter(l)
	defer k.SyscallExit(l)
	interrupted := false
	for {
		k.mu.Lock()
		if len(p.children) == 0 && len(p.zombies) == 0 {
			k.mu.Unlock()
			return WaitResult{}, ErrChild
		}
		for i, z := range p.zombies {
			if pid >= 0 && z.pid != pid {
				continue
			}
			p.zombies = append(p.zombies[:i], p.zombies[i+1:]...)
			delete(p.children, z.pid)
			res := WaitResult{PID: z.pid, Status: z.exitStatus, Signal: z.killSig, DumpedCore: z.dumpedCore}
			// Fold child rusage into the parent (getrusage
			// RUSAGE_CHILDREN semantics).
			r := z.rusageLocked()
			p.childUser += r.UserTime + r.ChildUser
			p.childSys += r.SysTime + r.ChildSys
			k.reapLocked(z)
			k.mu.Unlock()
			return res, nil
		}
		if pid >= 0 {
			if _, ok := p.children[pid]; !ok {
				k.mu.Unlock()
				return WaitResult{}, ErrChild
			}
		}
		k.mu.Unlock()
		if interrupted {
			// A signal (often our own SIGCHLD) broke the wait
			// and no matching zombie appeared on re-check.
			return WaitResult{}, ErrIntr
		}
		res := k.Sleep(l, &p.waitq, SleepOpts{Interruptible: true, Indefinite: true})
		// On interruption, loop once more to re-check the zombie
		// list: the interrupting signal is frequently the SIGCHLD
		// for the very child we are waiting for.
		interrupted = res == WakeInterrupted
	}
}
