package sim

import (
	"fmt"
	"time"
)

// Class is a kernel scheduling class. LWPs (and therefore bound
// threads) can change their scheduling class and class priority via
// Priocntl, as in the paper.
type Class int

// Scheduling classes.
const (
	// ClassTS is the timeshare class: priorities decay with CPU
	// usage and recover while sleeping.
	ClassTS Class = iota
	// ClassSYS is the system class, used by kernel-internal LWPs.
	ClassSYS
	// ClassRT is the real-time class: fixed priorities that always
	// beat TS and SYS. A bound thread in this class has true
	// system-wide scheduling priority (the paper's answer to the
	// Chorus real-time objection).
	ClassRT
	// ClassGang is the paper's new scheduling class for "gang"
	// scheduling of fine-grain parallel computations: the
	// dispatcher co-schedules runnable members of the same gang
	// onto free CPUs together whenever possible.
	ClassGang
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassTS:
		return "TS"
	case ClassSYS:
		return "SYS"
	case ClassRT:
		return "RT"
	case ClassGang:
		return "GANG"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Priority bands. Global priorities are comparable across classes;
// higher wins.
const (
	tsMinGlobal  = 0
	tsMaxGlobal  = 59
	sysMinGlobal = 60
	sysMaxGlobal = 99
	rtMinGlobal  = 100
	rtMaxGlobal  = 159

	// MaxUserPrio is the largest class-relative priority a user can
	// request with Priocntl for the TS and RT classes.
	MaxUserPrio = 59
)

// tsUsagePenalty converts accumulated CPU time into a priority
// penalty: every tsPenaltyQuantum of CPU costs one priority level, up
// to tsMaxPenalty levels. This is a simplified version of the SVR4 TS
// dispatch table, chosen so the behaviour ("CPU hogs sink, sleepers
// rise") is easy to verify in tests.
const (
	tsPenaltyQuantum = 5 * time.Millisecond
	tsMaxPenalty     = 30
	tsDecayInterval  = time.Second
)

// tsGlobalPrio computes the global priority of a timeshare LWP from
// its user-set base priority (0..59) and its accumulated, decayed CPU
// usage. Exposed as a pure function so the arithmetic is testable.
func tsGlobalPrio(base int, usage time.Duration) int {
	penalty := int(usage / tsPenaltyQuantum)
	if penalty > tsMaxPenalty {
		penalty = tsMaxPenalty
	}
	g := base - penalty
	if g < tsMinGlobal {
		g = tsMinGlobal
	}
	if g > tsMaxGlobal {
		g = tsMaxGlobal
	}
	return g
}

// globalPrio computes an LWP's current global dispatch priority.
// Caller holds k.mu.
func (l *LWP) globalPrio() int {
	switch l.class {
	case ClassRT:
		p := rtMinGlobal + l.userPrio
		if p > rtMaxGlobal {
			p = rtMaxGlobal
		}
		return p
	case ClassSYS:
		p := sysMinGlobal + l.userPrio
		if p > sysMaxGlobal {
			p = sysMaxGlobal
		}
		return p
	default: // TS and GANG share the TS priority range.
		return tsGlobalPrio(l.userPrio, l.cpuUsage)
	}
}

// chargeAndDecay charges d of CPU time to a TS/GANG LWP's usage and
// applies the periodic decay. Caller holds k.mu.
func (l *LWP) chargeAndDecay(d time.Duration, now time.Duration) {
	l.cpuUsage += d
	if now-l.lastDecay >= tsDecayInterval {
		// Halve usage for each full decay interval elapsed.
		for now-l.lastDecay >= tsDecayInterval {
			l.cpuUsage /= 2
			l.lastDecay += tsDecayInterval
		}
	}
}

// Priocntl changes the scheduling class and class-relative priority of
// an LWP, like priocntl(2). prio must be in [0, MaxUserPrio].
func (k *Kernel) Priocntl(l *LWP, class Class, prio int) error {
	if prio < 0 || prio > MaxUserPrio {
		return fmt.Errorf("sim: priocntl: priority %d out of range", prio)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if l.state == LWPZombie {
		return fmt.Errorf("sim: priocntl: lwp %d is a zombie", l.id)
	}
	k.reclassLocked(l, class, prio, 0)
	k.tr.Add("sched", "lwp %d -> class %s prio %d", l.id, class, prio)
	k.preemptCheckLocked()
	return nil
}

// reclassLocked installs new class parameters with the
// remove-modify-push discipline: a queued LWP is unlinked first and
// re-pushed after, so its queue level and the kernel's gang counter
// track the change.
func (k *Kernel) reclassLocked(l *LWP, class Class, prio, gang int) {
	queued := l.rqOn
	var c *CPU
	if queued {
		c = l.rqCPU
		k.runqRemoveLocked(l)
	}
	l.class = class
	l.userPrio = prio
	if class == ClassGang {
		l.gang = gang
	} else {
		l.gang = 0
	}
	if queued {
		k.runqPushLocked(c, l)
	}
}

// JoinGang places the LWP in the gang scheduling class as a member of
// gang group g (g > 0). Members of the same gang are co-scheduled onto
// free CPUs whenever possible.
func (k *Kernel) JoinGang(l *LWP, g int, prio int) error {
	if g <= 0 {
		return fmt.Errorf("sim: gang id must be positive")
	}
	if prio < 0 || prio > MaxUserPrio {
		return fmt.Errorf("sim: priocntl: priority %d out of range", prio)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if l.state == LWPZombie {
		return fmt.Errorf("sim: priocntl: lwp %d is a zombie", l.id)
	}
	k.reclassLocked(l, ClassGang, prio, g)
	k.tr.Add("sched", "lwp %d -> gang %d prio %d", l.id, g, prio)
	k.preemptCheckLocked()
	return nil
}

// BindCPU restricts the LWP to run only on CPU cpuID (the paper's
// "the process has asked the system to bind one of its LWPs to a
// CPU"). A negative cpuID removes the binding.
func (k *Kernel) BindCPU(l *LWP, cpuID int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	var bound *CPU
	if cpuID >= 0 {
		if cpuID >= len(k.cpus) {
			return fmt.Errorf("sim: no CPU %d (have %d)", cpuID, len(k.cpus))
		}
		bound = k.cpus[cpuID]
		if l.psBound && bound.ps != l.ps {
			return fmt.Errorf("sim: CPU %d is outside lwp %d's pset %d", cpuID, l.id, l.ps.id)
		}
	}
	// Remove-modify-push: the binding decides which queue the LWP
	// may sit on and whether it counts as stealable there.
	queued := l.rqOn
	if queued {
		k.runqRemoveLocked(l)
	}
	l.boundCPU = bound
	if bound != nil && !l.psBound {
		// An unbound-pset LWP follows its CPU's set.
		l.ps = bound.ps
	}
	if queued {
		k.runqPushLocked(k.placeLocked(l), l)
	}
	if bound != nil {
		if l.cpu != nil && l.cpu != bound {
			l.preempt = true
		}
		k.tr.Add("sched", "lwp %d bound to cpu %d", l.id, cpuID)
	} else {
		k.tr.Add("sched", "lwp %d unbound", l.id)
	}
	k.scheduleLocked()
	return nil
}
