package sim

import (
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

func TestTSGlobalPrioBounds(t *testing.T) {
	f := func(base int16, usageMs uint16) bool {
		b := int(base) % 60
		if b < 0 {
			b = -b
		}
		g := tsGlobalPrio(b, time.Duration(usageMs)*time.Millisecond)
		return g >= tsMinGlobal && g <= tsMaxGlobal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTSGlobalPrioMonotonicInUsage(t *testing.T) {
	// More CPU usage never raises a timeshare priority.
	f := func(aMs, bMs uint16) bool {
		lo, hi := time.Duration(aMs)*time.Millisecond, time.Duration(bMs)*time.Millisecond
		if lo > hi {
			lo, hi = hi, lo
		}
		return tsGlobalPrio(45, lo) >= tsGlobalPrio(45, hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTSGlobalPrioPenaltyCapped(t *testing.T) {
	if got := tsGlobalPrio(59, time.Hour); got != 59-tsMaxPenalty {
		t.Fatalf("hour of usage -> prio %d, want %d", got, 59-tsMaxPenalty)
	}
}

// Property: Sigset operations behave like a set of small integers.
func TestSigsetProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		var ss Sigset
		model := map[Signal]bool{}
		for _, r := range raw {
			sig := Signal(int(r)%int(NSIG-1) + 1)
			if r%2 == 0 {
				ss = ss.Add(sig)
				model[sig] = true
			} else {
				ss = ss.Del(sig)
				delete(model, sig)
			}
		}
		for sig := Signal(1); sig < NSIG; sig++ {
			if ss.Has(sig) != model[sig] {
				return false
			}
		}
		// Lowest agrees with the model.
		want := SIGNONE
		for sig := Signal(1); sig < NSIG; sig++ {
			if model[sig] {
				want = sig
				break
			}
		}
		if ss.Lowest() != want {
			return false
		}
		return len(ss.Signals()) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyMaskSemantics(t *testing.T) {
	old := MakeSigset(SIGUSR1, SIGUSR2)
	add := MakeSigset(SIGHUP)
	if got := ApplyMask(old, SigBlock, add); !got.Has(SIGHUP) || !got.Has(SIGUSR1) {
		t.Fatalf("SigBlock = %v", got.Signals())
	}
	if got := ApplyMask(old, SigUnblock, MakeSigset(SIGUSR1)); got.Has(SIGUSR1) || !got.Has(SIGUSR2) {
		t.Fatalf("SigUnblock = %v", got.Signals())
	}
	if got := ApplyMask(old, SigSetMask, add); got != add {
		t.Fatalf("SigSetMask = %v", got.Signals())
	}
}

func TestTrapClassification(t *testing.T) {
	for _, sig := range []Signal{SIGILL, SIGTRAP, SIGEMT, SIGFPE, SIGBUS, SIGSEGV, SIGSYS} {
		if !sig.IsTrap() {
			t.Errorf("%v not classified as trap", sig)
		}
	}
	for _, sig := range []Signal{SIGINT, SIGIO, SIGALRM, SIGCHLD, SIGWAITING} {
		if sig.IsTrap() {
			t.Errorf("%v wrongly classified as trap", sig)
		}
	}
}

func TestDefaultActions(t *testing.T) {
	cases := map[Signal]DefaultAction{
		SIGTERM:    ActExit,
		SIGSEGV:    ActCore,
		SIGCHLD:    ActIgnore,
		SIGWAITING: ActIgnore,
		SIGTSTP:    ActStop,
		SIGCONT:    ActContinue,
	}
	for sig, want := range cases {
		if got := DefaultActionOf(sig); got != want {
			t.Errorf("DefaultActionOf(%v) = %v, want %v", sig, got, want)
		}
	}
}

// TestGangCoScheduling verifies that runnable members of a gang that
// is already on CPU are preferred over a higher-TS-priority outsider.
func TestGangCoScheduling(t *testing.T) {
	k := NewKernel(Config{NCPU: 2, KernelSwitchCost: -1, LWPCreateCost: -1})
	p := k.NewProcess("p", nil)

	// Gate LWP occupies CPU until released, so contenders queue.
	release := make(chan struct{})
	gate, dGate := animate(k, p, func(l *LWP) {
		k.JoinGang(l, 7, 30)
		<-release
		// Keep running so the gang stays "on CPU" while the
		// dispatcher fills the second CPU.
		for i := 0; i < 50; i++ {
			k.Checkpoint(l)
			time.Sleep(100 * time.Microsecond)
		}
	})
	for gate.State() != LWPOnCPU {
		time.Sleep(100 * time.Microsecond)
	}

	order := make(chan string, 2)
	start := func(tag string, class Class, prio, gang int) (*LWP, <-chan struct{}) {
		l, err := k.NewLWP(p, class, prio)
		if err != nil {
			t.Fatal(err)
		}
		if gang > 0 {
			l.gang = gang
			l.class = ClassGang
		}
		d := make(chan struct{})
		go func() {
			defer close(d)
			defer func() { recover(); k.ExitLWP(l) }()
			k.Start(l)
			order <- tag
		}()
		return l, d
	}
	// Occupy the second CPU until both contenders are queued.
	blockerRelease := make(chan struct{})
	blocker, dBlocker := animate(k, p, func(l *LWP) {
		<-blockerRelease
	})
	for blocker.State() != LWPOnCPU {
		time.Sleep(100 * time.Microsecond)
	}
	tsLWP, dTS := start("ts", ClassTS, 59, 0) // best TS priority
	gLWP, dG := start("gang", ClassTS, 1, 7)  // low priority, same gang as gate
	for tsLWP.State() != LWPRunnable || gLWP.State() != LWPRunnable {
		time.Sleep(100 * time.Microsecond)
	}
	// Free CPU 1 while the gate (gang 7) still runs on CPU 0: the
	// dispatcher should co-schedule the gang member despite the
	// outsider's higher timeshare priority.
	close(blockerRelease)
	first := <-order
	close(release)
	<-dBlocker
	<-dTS
	<-dG
	<-dGate
	if first != "gang" {
		t.Fatalf("first dispatched %q, want gang member (co-scheduling)", first)
	}
}

// TestTimeSliceRotatesEqualPriority checks that with a time slice
// configured, two compute-bound LWPs of equal priority alternate at
// checkpoints. The bodies call runtime.Gosched so the test also works
// on GOMAXPROCS=1 hosts, where a spin loop would starve the sibling
// goroutine at the Go level before the simulated kernel ever saw it.
func TestTimeSliceRotatesEqualPriority(t *testing.T) {
	k := NewKernel(Config{NCPU: 1, TimeSlice: time.Millisecond, KernelSwitchCost: -1, LWPCreateCost: -1})
	p := k.NewProcess("p", nil)
	var first, second []time.Time
	mk := func(out *[]time.Time) func(*LWP) {
		return func(l *LWP) {
			deadline := time.Now().Add(20 * time.Millisecond)
			for time.Now().Before(deadline) {
				*out = append(*out, time.Now())
				k.Checkpoint(l)
				runtime.Gosched()
			}
		}
	}
	_, d1 := animate(k, p, mk(&first))
	_, d2 := animate(k, p, mk(&second))
	<-d1
	<-d2
	if len(first) == 0 || len(second) == 0 {
		t.Fatal("one LWP starved completely despite time slicing")
	}
	// The two executions overlapped in time (interleaving), rather
	// than running strictly one after the other.
	if first[len(first)-1].Before(second[0]) || second[len(second)-1].Before(first[0]) {
		t.Fatal("LWPs ran strictly serially; time slice did not rotate the CPU")
	}
}
