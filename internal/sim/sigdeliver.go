package sim

import (
	"fmt"

	"sunosmt/internal/trace"
)

// This file implements the kernel half of the paper's signal model.
//
// Signals are divided into traps (caused synchronously by a thread,
// handled only by that thread) and interrupts (asynchronous; handled
// by any one LWP/thread that has the signal unmasked). Each LWP has
// its own signal mask; the threads library points the LWP mask at the
// mask of the thread currently running on it, which is how per-thread
// masks are realized. All threads share the per-process disposition
// vector. If every LWP masks an interrupt it pends on the process
// until some LWP unmasks it. The number of signals received is less
// than or equal to the number sent (pending is a set, not a queue).

// SetAction installs a disposition for sig process-wide, like
// sigaction(2). handler is recorded by the kernel and run by the
// library in thread context; handlerMask is OR-ed into the handling
// context's mask for the duration of the handler.
func (k *Kernel) SetAction(p *Process, sig Signal, disp Disposition, handler func(Signal), handlerMask Sigset) error {
	return k.SetActionCookie(p, sig, disp, handler, nil, handlerMask)
}

// SetActionCookie is SetAction with an opaque cookie the library can
// retrieve from delivered signals; the threads library stores its
// thread-context handler (func(*Thread, Signal)) there.
func (k *Kernel) SetActionCookie(p *Process, sig Signal, disp Disposition, handler func(Signal), cookie any, handlerMask Sigset) error {
	if !sig.Valid() {
		return fmt.Errorf("sim: bad signal %d", int(sig))
	}
	if sig == SIGKILL || sig == SIGSTOP {
		return fmt.Errorf("sim: cannot change disposition of %v", sig)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	p.actions[sig] = sigaction{disp: disp, handler: handler, cookie: cookie, mask: handlerMask}
	// Re-ignoring discards pending instances, as in SVR4.
	if disp == SigIgn || (disp == SigDfl && DefaultActionOf(sig) == ActIgnore) {
		p.pendingProc = p.pendingProc.Del(sig)
		for _, l := range p.lwps {
			l.pending = l.pending.Del(sig)
		}
	}
	return nil
}

// Action returns the current disposition of sig for the process.
func (k *Kernel) Action(p *Process, sig Signal) Disposition {
	k.mu.Lock()
	defer k.mu.Unlock()
	return p.actions[sig].disp
}

// ActionInfo returns the full disposition of sig: how it is handled,
// the catch function, the library cookie, and the mask applied while
// handling. The threads library uses it to run handlers in thread
// context.
func (k *Kernel) ActionInfo(p *Process, sig Signal) (disp Disposition, handler func(Signal), cookie any, handlerMask Sigset) {
	k.mu.Lock()
	defer k.mu.Unlock()
	a := p.actions[sig]
	return a.disp, a.handler, a.cookie, a.mask
}

// ApplyDefault applies sig's SIG_DFL action to the calling LWP's
// process: terminating and stopping actions are taken (termination
// unwinds the caller); ignore/continue are no-ops. The threads
// library calls this when a thread-directed signal with default
// disposition must take effect.
func (k *Kernel) ApplyDefault(l *LWP, sig Signal) {
	k.mu.Lock()
	defer k.mu.Unlock()
	switch DefaultActionOf(sig) {
	case ActIgnore, ActContinue:
		return
	case ActStop:
		k.stopProcLocked(l.proc)
		k.checkpointLocked(l)
	default:
		k.killProcLocked(l.proc, 0, sig, DefaultActionOf(sig) == ActCore)
		k.unwindLocked(l, "fatal signal "+sig.String())
	}
}

// PostSignal sends sig to the process as an interrupt (kill(2)).
func (k *Kernel) PostSignal(p *Process, sig Signal) error {
	if !sig.Valid() {
		return fmt.Errorf("sim: bad signal %d", int(sig))
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.postSignalLocked(p, sig, nil)
	return nil
}

// PostSignalLWP sends sig directed at a specific LWP (used by the
// threads library for bound threads and by per-LWP timers). A
// directed signal behaves like a trap: only that LWP handles it.
func (k *Kernel) PostSignalLWP(l *LWP, sig Signal) error {
	if !sig.Valid() {
		return fmt.Errorf("sim: bad signal %d", int(sig))
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.postSignalLocked(l.proc, sig, l)
	return nil
}

func (k *Kernel) postSignalLocked(p *Process, sig Signal, target *LWP) {
	if p.dying || p.state == ProcZombie || p.state == ProcDead {
		return
	}
	k.tr.Add("sig", "pid %d gets %v%s", p.pid, sig, dirSuffix(target))

	// SIGKILL, SIGSTOP and SIGCONT act immediately; they cannot be
	// caught or blocked (CONT's continue action happens even if
	// caught).
	switch sig {
	case SIGKILL:
		k.killProcLocked(p, 0, sig, false)
		return
	case SIGSTOP:
		k.stopProcLocked(p)
		return
	case SIGCONT:
		k.contProcLocked(p)
		if p.actions[sig].disp != SigCatch {
			return
		}
	}

	// The SIGWAITING hook is the library's ASLWP stand-in: it runs
	// regardless of the signal's disposition, so the library can
	// ignore SIGWAITING (avoiding EINTR storms in its own blocked
	// LWPs) and still grow the pool.
	if sig == SIGWAITING && p.sigwaitingHook != nil {
		go p.sigwaitingHook()
	}

	// A sigwaiter (the library's ASLWP) takes precedence and
	// bypasses dispositions: it asked for the signal explicitly.
	for _, l := range p.lwps {
		if l.state == LWPSigWait && l.sigwaitS.Has(sig) {
			l.sigDelivered = sig
			l.woken = true
			l.cond.Broadcast()
			return
		}
	}

	act := p.actions[sig]
	switch act.disp {
	case SigIgn:
		return
	case SigDfl:
		switch DefaultActionOf(sig) {
		case ActIgnore:
			return
		case ActExit:
			k.killProcLocked(p, 0, sig, false)
			return
		case ActCore:
			k.killProcLocked(p, 0, sig, true)
			return
		case ActStop:
			k.stopProcLocked(p)
			return
		case ActContinue:
			return // already continued above
		}
	}

	// Caught signal: route to an LWP.
	if target != nil {
		target.pending = target.pending.Add(sig)
		k.kickLocked(target)
		return
	}
	// Prefer an LWP that can notice soonest: interruptible
	// sleepers wake with EINTR; on-CPU LWPs see the signal at
	// their next checkpoint; runnable LWPs when dispatched.
	var onCPU, sleeper, runnable *LWP
	for _, l := range p.lwps {
		if l.mask.Has(sig) || l.state == LWPZombie {
			continue
		}
		switch l.state {
		case LWPSleeping:
			if l.interruptible && sleeper == nil {
				sleeper = l
			}
		case LWPOnCPU:
			if onCPU == nil {
				onCPU = l
			}
		case LWPRunnable:
			if runnable == nil {
				runnable = l
			}
		}
	}
	switch {
	case sleeper != nil:
		sleeper.pending = sleeper.pending.Add(sig)
		k.kickLocked(sleeper)
	case onCPU != nil:
		onCPU.pending = onCPU.pending.Add(sig)
		k.kickLocked(onCPU)
	case runnable != nil:
		runnable.pending = runnable.pending.Add(sig)
	default:
		// All threads mask it: pend on the process until a
		// thread unmasks the signal (paper).
		p.pendingProc = p.pendingProc.Add(sig)
	}
}

func dirSuffix(l *LWP) string {
	if l == nil {
		return ""
	}
	return fmt.Sprintf(" (directed at lwp %d)", l.id)
}

// kickLocked prods an LWP so it notices pending state soon.
func (k *Kernel) kickLocked(l *LWP) {
	if l.state == LWPSleeping && l.interruptible {
		k.wakeLWPLocked(l, WakeInterrupted)
	}
	// On-CPU and runnable LWPs notice pending signals at their next
	// checkpoint; preemption is cooperative throughout.
}

// deliverableLocked returns the set of signals currently deliverable
// to l: pending on the LWP or the process and not masked.
func (k *Kernel) deliverableLocked(l *LWP) Sigset {
	return (l.pending | l.proc.pendingProc).Minus(l.mask)
}

// SignalPending reports whether TakeSignal would find a signal.
func (k *Kernel) SignalPending(l *LWP) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.deliverableLocked(l) != 0
}

// PendingSet returns the deliverable signal set for the LWP.
func (k *Kernel) PendingSet(l *LWP) Sigset {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.deliverableLocked(l)
}

// TakenSignal describes one signal consumed by TakeSignal.
type TakenSignal struct {
	Sig Signal
	// Handler is the process's catch function. Nil means the
	// signal's action was applied inside the kernel (ignored) and
	// the caller has nothing to run.
	Handler func(Signal)
	// Cookie is the opaque library data installed with the action.
	Cookie any
	// HandlerMask is OR-ed into the handling context's signal mask
	// while the handler runs.
	HandlerMask Sigset
}

// TakeSignal consumes the lowest-numbered deliverable signal for the
// LWP and returns what the animator should do with it. Default
// dispositions that terminate or stop the process are applied here
// (termination unwinds via panic). ok is false when nothing is
// deliverable.
func (k *Kernel) TakeSignal(l *LWP) (ts TakenSignal, ok bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for {
		ds := k.deliverableLocked(l)
		sig := ds.Lowest()
		if sig == SIGNONE {
			return TakenSignal{}, false
		}
		// Consume from the LWP first, then the process.
		if l.pending.Has(sig) {
			l.pending = l.pending.Del(sig)
		} else {
			l.proc.pendingProc = l.proc.pendingProc.Del(sig)
		}
		act := l.proc.actions[sig]
		switch act.disp {
		case SigIgn:
			continue
		case SigDfl:
			switch DefaultActionOf(sig) {
			case ActIgnore, ActContinue:
				continue
			case ActStop:
				k.stopProcLocked(l.proc)
				k.checkpointLocked(l) // parks here until SIGCONT
				continue
			default: // exit or core
				k.killProcLocked(l.proc, 0, sig, DefaultActionOf(sig) == ActCore)
				k.unwindLocked(l, "fatal signal "+sig.String())
			}
		}
		k.tr.Add("sig", "pid %d lwp %d takes %v", l.proc.pid, l.id, sig)
		return TakenSignal{Sig: sig, Handler: act.handler, Cookie: act.cookie, HandlerMask: act.mask}, true
	}
}

// RaiseTrap delivers a synchronous trap (SIGFPE, SIGSEGV, ...) caused
// by the LWP's own execution. Traps are handled only by the thread
// that caused them (paper). If the trap is caught, the handler is
// returned for the caller to run synchronously; if ignored, ok is
// false; if the default action applies, the process is terminated and
// the call unwinds.
func (k *Kernel) RaiseTrap(l *LWP, sig Signal) (ts TakenSignal, ok bool) {
	if !sig.IsTrap() {
		panic(fmt.Sprintf("sim: RaiseTrap(%v): not a trap signal", sig))
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.tr.Add("sig", "pid %d lwp %d trap %v", l.proc.pid, l.id, sig)
	act := l.proc.actions[sig]
	switch act.disp {
	case SigIgn:
		return TakenSignal{}, false
	case SigCatch:
		return TakenSignal{Sig: sig, Handler: act.handler, Cookie: act.cookie, HandlerMask: act.mask}, true
	}
	switch DefaultActionOf(sig) {
	case ActIgnore:
		return TakenSignal{}, false
	default:
		k.killProcLocked(l.proc, 0, sig, DefaultActionOf(sig) == ActCore)
		k.unwindLocked(l, "fatal trap "+sig.String())
	}
	return TakenSignal{}, false
}

// SetLWPMask manipulates the LWP's signal mask and returns the old
// mask. The threads library points this at the running thread's mask
// on every thread dispatch. SIGKILL and SIGSTOP cannot be masked.
func (k *Kernel) SetLWPMask(l *LWP, how SigHow, set Sigset) Sigset {
	k.mu.Lock()
	defer k.mu.Unlock()
	old := l.mask
	l.mask = ApplyMask(old, how, set).Minus(unmaskable)
	return old
}

// LWPMask returns the LWP's current signal mask.
func (k *Kernel) LWPMask(l *LWP) Sigset {
	k.mu.Lock()
	defer k.mu.Unlock()
	return l.mask
}

// SigWait blocks until one of the signals in set is posted to the
// process, consumes it, and returns it. The waiting LWP is excluded
// from the SIGWAITING all-blocked computation; the threads library's
// ASLWP sits here to receive SIGWAITING and asynchronous signals.
func (k *Kernel) SigWait(l *LWP, set Sigset) Signal {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.checkpointLocked(l)
	p := l.proc
	// Already pending on the process?
	if got := (p.pendingProc | l.pending) & set; got != 0 {
		sig := got.Lowest()
		p.pendingProc = p.pendingProc.Del(sig)
		l.pending = l.pending.Del(sig)
		return sig
	}
	k.releaseCPULocked(l, LWPSigWait)
	l.sigwaitS = set
	l.sigDelivered = SIGNONE
	l.woken = false
	p.sigwaiters++
	k.maybeSigwaitingLocked(p)
	for !l.woken {
		l.cond.Wait()
		if reason, bad := k.mustUnwindLocked(l); bad {
			p.sigwaiters--
			l.sigwaitS = 0
			// ExitLWP must not double-decrement.
			k.setLWPStateLocked(l, k.clock.Now(), LWPRunnable)
			k.unwindLocked(l, reason)
		}
	}
	p.sigwaiters--
	l.sigwaitS = 0
	sig := l.sigDelivered
	k.makeRunnableLocked(l)
	k.waitOnCPULocked(l)
	return sig
}

// maybeSigwaitingLocked posts SIGWAITING when every live LWP that is
// not itself sitting in SigWait is blocked in an indefinite wait
// (paper: "A new signal, SIGWAITING, is sent to the process when all
// its LWPs are waiting for some indefinite, external event").
// Edge-triggered: it fires once per all-blocked episode.
func (k *Kernel) maybeSigwaitingLocked(p *Process) {
	if p.dying || p.state != ProcRunning {
		return
	}
	eligible := p.liveLWPs - p.sigwaiters
	if eligible <= 0 || p.indefSleepers < eligible || p.sigwaitingOn {
		return
	}
	p.sigwaitingOn = true
	k.tr.Add("sig", "pid %d: all %d LWPs blocked indefinitely -> SIGWAITING", p.pid, eligible)
	k.rings.Record(-1, trace.EvSigwaiting, int(p.pid), 0, 0, uint64(eligible))
	k.postSignalLocked(p, SIGWAITING, nil)
}

// --- process-level default actions -------------------------------------

// killProcLocked begins involuntary termination of the process.
func (k *Kernel) killProcLocked(p *Process, status int, sig Signal, core bool) {
	if p.dying || p.state == ProcZombie || p.state == ProcDead {
		return
	}
	p.dying = true
	p.exitStatus = status
	p.killSig = sig
	p.dumpedCore = core
	p.state = ProcRunning // a stopped process being killed resumes to die
	k.tr.Add("proc", "pid %d dying (sig %v, core %v)", p.pid, sig, core)
	// Death hooks fire exactly once per process death (the dying
	// guard above makes re-entry impossible), on fresh goroutines so
	// they may take the kernel lock themselves.
	for _, h := range k.deathHooks {
		go h(p)
	}
	// Wake every blocked LWP so its animator observes dying and
	// unwinds; on-CPU LWPs observe it at their next checkpoint, and
	// runnable LWPs re-check in waitOnCPULocked after the broadcast.
	// Pull runnables off the run queues first so the dispatcher does
	// not hand a dying LWP a CPU in the window before its animator
	// wakes.
	for _, l := range p.lwps {
		k.removeRunnableLocked(l)
		l.cond.Broadcast()
	}
	if p.liveLWPs == 0 {
		k.finalizeProcLocked(p)
	}
}

// Abort terminates the calling LWP's process as if a fatal SIGABRT
// with a core dump had been delivered, recording msg as the abort
// reason, then unwinds the caller. The threads library uses it to
// contain a panicking thread body: the panic becomes a simulated
// process death instead of crashing the host. Abort never returns —
// it panics with *Unwind, which the animator's recovery handles.
func (k *Kernel) Abort(l *LWP, msg string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p := l.proc
	if !p.dying && p.state != ProcZombie && p.state != ProcDead {
		p.abortMsg = msg
		k.tr.Add("proc", "pid %d aborts: %s", p.pid, msg)
		k.killProcLocked(p, 0, SIGABRT, true)
	}
	k.unwindLocked(l, "abort")
}

func (k *Kernel) stopProcLocked(p *Process) {
	if p.state != ProcRunning || p.dying {
		return
	}
	p.state = ProcStopped
	k.tr.Add("proc", "pid %d stopped", p.pid)
	// On-CPU LWPs park at their next checkpoint; nothing to do for
	// sleepers (they stop when they wake and hit a checkpoint).
}

func (k *Kernel) contProcLocked(p *Process) {
	if p.state != ProcStopped {
		return
	}
	p.state = ProcRunning
	k.tr.Add("proc", "pid %d continued", p.pid)
	for _, l := range p.lwps {
		l.cond.Broadcast()
	}
}

// finalizeProcLocked turns a process with no remaining LWPs into a
// zombie, notifies the parent, and reparents children.
func (k *Kernel) finalizeProcLocked(p *Process) {
	if p.state == ProcZombie || p.state == ProcDead {
		return
	}
	p.state = ProcZombie
	k.tr.Add("proc", "pid %d zombie (status %d sig %v)", p.pid, p.exitStatus, p.killSig)
	// Reparent live children to nobody (the kernel reaps their
	// zombies directly), and release zombie children now.
	for _, c := range p.children {
		c.parent = nil
		if c.state == ProcZombie {
			k.reapLocked(c)
		}
	}
	p.children = nil
	p.zombies = nil
	if p.parent != nil {
		p.parent.zombies = append(p.parent.zombies, p)
		k.postSignalLocked(p.parent, SIGCHLD, nil)
		k.wakeupLocked(&p.parent.waitq, -1)
	} else {
		k.reapLocked(p)
	}
	close(p.exitedCh)
}

func (k *Kernel) reapLocked(p *Process) {
	if p.state == ProcDead {
		return
	}
	p.state = ProcDead
	delete(k.procs, p.pid)
}
