// Package sim is the simulated SunOS 5 kernel substrate underneath
// the threads library.
//
// The paper's threads are multiplexed by a user-level library onto
// kernel-supported LWPs, which the kernel dispatches onto CPUs. Go
// gives us no real kernel to extend, so this package *is* that
// kernel: it owns a fixed set of simulated CPUs and dispatches LWPs
// onto them by scheduling class and priority; it provides kernel
// sleep queues, signals (traps and interrupts, per-LWP masks, default
// actions, SIGWAITING), per-LWP interval timers and profiling,
// resource usage and limits, and fork/fork1/exec/exit/wait.
//
// # Animation model
//
// An LWP is a kernel data structure, not a goroutine. Whichever
// goroutine currently animates an LWP (the threads library's
// dispatcher between threads; a thread goroutine while the thread
// runs and during its system calls) drives the LWP through this
// package's methods. The rule enforced throughout: an animator may
// execute "user code" only while its LWP holds a CPU grant, and every
// blocking kernel service releases the CPU for the duration of the
// block. This reproduces the paper's contract — at most NCPU LWPs
// make progress at once, each LWP blocks in the kernel independently
// — without fighting the Go runtime for real context switching.
//
// # Locking
//
// A single kernel lock (Kernel.mu) guards all scheduling, signal and
// process state, exactly like a giant kernel lock. Methods with the
// Locked suffix require it. The kernel never calls user code with mu
// held; hooks run on fresh goroutines.
//
// # Unwinding
//
// Involuntary process termination (kill -9, default signal actions,
// Exit from another LWP, exec) cannot asynchronously stop a running
// goroutine, so the kernel panics with *Unwind at the next kernel
// entry of each affected LWP. The threads library recovers the panic
// and retires the LWP. This is the cooperative analogue of the kernel
// yanking an LWP out of the trap handler.
package sim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sunosmt/internal/chaos"
	"sunosmt/internal/ktime"
	"sunosmt/internal/trace"
)

// ErrAgain is the kernel's EAGAIN: a resource limit (the max-LWP
// rlimit, or a chaos-injected transient spawn failure) refused an
// allocation that may succeed later. _lwp_create returns it when "the
// limit on LWPs is exhausted"; callers are expected to back off and
// retry or degrade, never to crash.
var ErrAgain = errors.New("sim: resource temporarily unavailable (EAGAIN)")

// Config configures a Kernel.
type Config struct {
	// NCPU is the number of simulated processors (default 1).
	NCPU int
	// Clock supplies time; default is a shared real clock.
	Clock ktime.Clock
	// TimeSlice is the timeshare scheduling quantum checked at
	// preemption points; 0 disables time slicing.
	TimeSlice time.Duration
	// Trace, if non-nil, receives kernel events.
	Trace *trace.Buffer
	// Rings, if non-nil, receives hot-path scheduler events
	// (dispatch, preemption, wakeup, migration, SIGWAITING) in the
	// per-CPU binary event rings. Nil disables event tracing with no
	// cost at the recording sites.
	Rings *trace.Rings
	// SignalOnAnyBlock makes the kernel treat every kernel sleep as
	// an indefinite wait for SIGWAITING purposes. This is the
	// "send signals on faster events" experiment the paper proposes
	// as future work (and the scheduler-activations comparison):
	// the library learns about every blocking, not only indefinite
	// waits.
	SignalOnAnyBlock bool
	// LWPCreateCost models the kernel path length of creating an
	// LWP (kernel stack allocation, scheduler registration) that a
	// goroutine spawn does not capture; the creator busy-waits this
	// long inside the NewLWP call. Negative disables; zero selects
	// the default (20us), calibrated so the bound/unbound creation
	// ratio of the paper's Figure 5 is reproduced in shape.
	LWPCreateCost time.Duration
	// KernelSwitchCost models the trap entry plus LWP context
	// switch a kernel block performs, which a Go channel/cond wake
	// does not capture; the blocking LWP busy-waits this long on
	// entry to Sleep and Park. Negative disables; zero selects the
	// default (1.5us), calibrated so bound-thread synchronization
	// costs a multiple of user-level unbound synchronization, as in
	// the paper's Figure 6.
	KernelSwitchCost time.Duration
	// BalancePeriod is how often the dispatcher's periodic balancer
	// evens out per-CPU run-queue depths within each processor set
	// (and re-levels queued timeshare LWPs whose decayed usage moved
	// their priority). Zero selects the default (10ms); negative
	// disables periodic balancing, leaving only idle/priority
	// stealing. The balancer runs at scheduling points against the
	// configured Clock, never on its own goroutine, so balanced
	// schedules stay seed-replayable.
	BalancePeriod time.Duration
	// Chaos, if non-nil, perturbs scheduling decisions (forced
	// preemption, dispatch pick order, wakeup order, injected
	// EINTR, early SIGWAITING) deterministically from its seed.
	Chaos *chaos.Source
	// FastForward, when Clock is nil, boots the kernel on a
	// ktime.FastForward clock: whenever every LWP is sleeping or
	// parked with a timer pending, virtual time jumps to the next
	// deadline instead of waiting for it. A caller-supplied
	// fast-forward Clock (including one wrapped in ktime.Jittered)
	// is detected and driven the same way, so mt composes chaos
	// jitter with fast-forward. Real-time configurations are
	// untouched: with neither, nothing jumps.
	FastForward bool
}

// Default simulated kernel path lengths (see Config).
const (
	defaultLWPCreateCost    = 20 * time.Microsecond
	defaultKernelSwitchCost = 1500 * time.Nanosecond
	defaultBalancePeriod    = 10 * time.Millisecond
)

// spinFor models a fixed kernel path length by burning host CPU.
func spinFor(d time.Duration) {
	if d <= 0 {
		return
	}
	for start := time.Now(); time.Since(start) < d; {
	}
}

// Kernel is the simulated kernel.
type Kernel struct {
	mu    sync.Mutex
	cfg   Config
	clock ktime.Clock
	ff    *ktime.FastForward // non-nil when the clock fast-forwards
	tr    *trace.Buffer
	rings *trace.Rings
	chaos *chaos.Source

	// nactive counts LWPs in a schedulable state (embryo, runnable,
	// on-CPU). When it drops to zero every LWP is blocked waiting on
	// an event or a timer, and the fast-forward clock is kicked to
	// leap over the idle time. Maintained by setLWPStateLocked.
	nactive int

	cpus    []*CPU
	procs   map[PID]*Process
	nextPID PID

	// Dispatcher state (per-CPU queues live on the CPUs; see
	// dispq.go). nrunnable and gangQueued are the global counts the
	// hot paths consult instead of scanning queues.
	psets        map[PsetID]*pset
	nextPset     PsetID
	nrunnable    int // queued LWPs across all CPUs
	gangQueued   int // queued gang members (enables the gang slow path)
	lastBalance  time.Duration
	balanceMoves uint64

	// forkHooks run (in registration order, with mu released) when
	// a process is duplicated; layers above the kernel use them to
	// copy fd tables and address spaces.
	forkHooks []func(parent, child *Process)
	// execHooks run when a process execs.
	execHooks []func(p *Process)
	// deathHooks run (on fresh goroutines, with mu released) once
	// per process death — voluntary exit or kill alike. The shared
	// synchronization registry uses them to sweep locks the dead
	// process owned and mark them OWNERDEAD.
	deathHooks []func(p *Process)
}

// Unwind is the panic value used to tear an animator out of a dead or
// exec-ing process. The threads library recovers it and calls ExitLWP.
type Unwind struct {
	Proc   *Process
	Reason string
}

// Error implements error so an un-recovered Unwind reads well.
func (u *Unwind) Error() string {
	return fmt.Sprintf("sim: unwind of process %d: %s", u.Proc.pid, u.Reason)
}

// IsUnwind reports whether a recovered panic value is a kernel unwind.
func IsUnwind(r any) bool {
	_, ok := r.(*Unwind)
	return ok
}

// NewKernel boots a kernel with the given configuration.
func NewKernel(cfg Config) *Kernel {
	if cfg.NCPU <= 0 {
		cfg.NCPU = 1
	}
	if cfg.Clock == nil {
		if cfg.FastForward {
			cfg.Clock = ktime.NewFastForward()
		} else {
			cfg.Clock = ktime.NewReal()
		}
	}
	switch {
	case cfg.LWPCreateCost < 0:
		cfg.LWPCreateCost = 0
	case cfg.LWPCreateCost == 0:
		cfg.LWPCreateCost = defaultLWPCreateCost
	}
	switch {
	case cfg.KernelSwitchCost < 0:
		cfg.KernelSwitchCost = 0
	case cfg.KernelSwitchCost == 0:
		cfg.KernelSwitchCost = defaultKernelSwitchCost
	}
	switch {
	case cfg.BalancePeriod < 0:
		cfg.BalancePeriod = 0
	case cfg.BalancePeriod == 0:
		cfg.BalancePeriod = defaultBalancePeriod
	}
	k := &Kernel{
		cfg:   cfg,
		clock: cfg.Clock,
		tr:    cfg.Trace,
		rings: cfg.Rings,
		chaos: cfg.Chaos,
		procs: make(map[PID]*Process),
		psets: make(map[PsetID]*pset),
	}
	def := &pset{id: PsetDefault}
	k.psets[PsetDefault] = def
	for i := 0; i < cfg.NCPU; i++ {
		c := &CPU{id: i, ps: def}
		k.cpus = append(k.cpus, c)
		def.cpus = append(def.cpus, c)
	}
	if ff := ktime.FastForwardOf(k.clock); ff != nil {
		k.ff = ff
		ff.SetIdle(k.allIdle)
	}
	return k
}

// allIdle is the fast-forward clock's idle predicate: true when no
// LWP can make progress without a timer firing or external input.
// Besides the schedulable count it checks for LWPs already woken but
// not yet re-run by their animator goroutine — jumping in that window
// would leap over time the woken LWP is about to use.
func (k *Kernel) allIdle() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.nactive > 0 {
		return false
	}
	for _, p := range k.procs {
		for _, l := range p.lwps {
			if l.woken {
				switch l.state {
				case LWPSleeping, LWPParked, LWPSigWait:
					return false
				}
			}
		}
	}
	return true
}

// FastForward returns the kernel's fast-forward clock, or nil when
// the configured clock does not fast-forward.
func (k *Kernel) FastForward() *ktime.FastForward { return k.ff }

// Clock returns the kernel's clock.
func (k *Kernel) Clock() ktime.Clock { return k.clock }

// NCPU returns the number of simulated CPUs.
func (k *Kernel) NCPU() int { return len(k.cpus) }

// Trace returns the kernel trace buffer (may be nil).
func (k *Kernel) Trace() *trace.Buffer { return k.tr }

// Rings returns the per-CPU event rings (nil when event tracing is
// off).
func (k *Kernel) Rings() *trace.Rings { return k.rings }

// Chaos returns the kernel's chaos source (nil when not configured).
// The threads library and synchronization layer share it so every
// perturbation draws from one deterministic decision stream.
func (k *Kernel) Chaos() *chaos.Source { return k.chaos }

// AddForkHook registers fn to run whenever a process forks. Hooks run
// after the kernel-side duplication, without kernel locks held.
func (k *Kernel) AddForkHook(fn func(parent, child *Process)) {
	k.mu.Lock()
	k.forkHooks = append(k.forkHooks, fn)
	k.mu.Unlock()
}

// AddExecHook registers fn to run whenever a process execs (after the
// kernel has torn down the old LWPs).
func (k *Kernel) AddExecHook(fn func(p *Process)) {
	k.mu.Lock()
	k.execHooks = append(k.execHooks, fn)
	k.mu.Unlock()
}

// AddDeathHook registers fn to run (on a fresh goroutine, no kernel
// locks held) each time a process begins to die, whether by voluntary
// exit or by signal. Exactly one invocation per process death.
func (k *Kernel) AddDeathHook(fn func(p *Process)) {
	k.mu.Lock()
	k.deathHooks = append(k.deathHooks, fn)
	k.mu.Unlock()
}

// NewProcess creates a process with no LWPs. parent may be nil for
// the initial process.
func (k *Kernel) NewProcess(name string, parent *Process) *Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.newProcessLocked(name, parent)
}

func (k *Kernel) newProcessLocked(name string, parent *Process) *Process {
	k.nextPID++
	p := &Process{
		pid:      k.nextPID,
		name:     name,
		kern:     k,
		parent:   parent,
		lwps:     make(map[LWPID]*LWP),
		children: make(map[PID]*Process),
		cwd:      "/",
		cpuLimit: Rlimit{Soft: RlimitInfinity, Hard: RlimitInfinity},
		exitedCh: make(chan struct{}),
	}
	p.waitq.name = fmt.Sprintf("wait:%d", p.pid)
	if parent != nil {
		p.cwd = parent.cwd
		p.creds = parent.creds
		p.actions = parent.actions
		p.cpuLimit = parent.cpuLimit
		p.lwpLimit = parent.lwpLimit
		parent.children[p.pid] = p
	}
	k.procs[p.pid] = p
	k.tr.Add("proc", "created pid %d (%s)", p.pid, name)
	return p
}

// Processes returns a snapshot of all non-reaped processes.
func (k *Kernel) Processes() []*Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		out = append(out, p)
	}
	return out
}

// FindProcess returns the process with the given pid, if present.
func (k *Kernel) FindProcess(pid PID) (*Process, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p, ok := k.procs[pid]
	return p, ok
}

// NewLWP creates an LWP in the process. The LWP does not run until a
// goroutine animates it by calling Start. Creating an LWP is the
// expensive kernel operation that makes bound-thread creation ~40x
// slower than unbound creation in the paper's Figure 5; the kernel
// charges syscall time to the caller (curLWP, may be nil during
// process setup).
func (k *Kernel) NewLWP(p *Process, class Class, prio int) (*LWP, error) {
	spinFor(k.cfg.LWPCreateCost) // simulated kernel path length
	k.mu.Lock()
	defer k.mu.Unlock()
	if p.dying || p.state == ProcZombie || p.state == ProcDead {
		return nil, fmt.Errorf("sim: process %d is exiting", p.pid)
	}
	if p.lwpLimit > 0 && p.liveLWPs >= p.lwpLimit {
		k.tr.Add("lwp", "pid %d: LWP rlimit (%d) reached", p.pid, p.lwpLimit)
		return nil, fmt.Errorf("pid %d at LWP rlimit %d: %w", p.pid, p.lwpLimit, ErrAgain)
	}
	if k.chaos.LWPSpawnFail() {
		k.tr.Add("lwp", "pid %d: chaos LWP spawn failure", p.pid)
		return nil, fmt.Errorf("pid %d transient spawn failure: %w", p.pid, ErrAgain)
	}
	return k.newLWPLocked(p, class, prio), nil
}

func (k *Kernel) newLWPLocked(p *Process, class Class, prio int) *LWP {
	p.nextLWP++
	now := k.clock.Now()
	l := &LWP{
		id:        p.nextLWP,
		proc:      p,
		state:     LWPEmbryo,
		class:     class,
		userPrio:  prio,
		lastDecay: now,
		msBorn:    now,
		msMark:    now,
		lastCPU:   -1,
		ps:        k.psets[PsetDefault],
		exited:    make(chan struct{}),
	}
	l.curCPU.Store(-1)
	l.cond = sync.NewCond(&k.mu)
	p.lwps[l.id] = l
	p.liveLWPs++
	k.nactive++ // embryo counts as schedulable: it is about to run
	// A fresh LWP can run threads, so the all-blocked condition no
	// longer holds.
	p.sigwaitingOn = false
	k.tr.Add("lwp", "pid %d: created lwp %d class %s", p.pid, l.id, class)
	return l
}

// Start attaches the calling goroutine to the LWP as its animator and
// blocks until the kernel dispatches the LWP onto a CPU. It must be
// called exactly once per LWP, before any other kernel service.
func (k *Kernel) Start(l *LWP) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if l.state != LWPEmbryo {
		panic(fmt.Sprintf("sim: Start on lwp %d in state %s", l.id, l.state))
	}
	k.makeRunnableLocked(l)
	k.waitOnCPULocked(l)
}

// --- dispatch ----------------------------------------------------------

func (k *Kernel) makeRunnableLocked(l *LWP) {
	k.setLWPStateLocked(l, k.clock.Now(), LWPRunnable)
	k.enqueueLocked(l)
	k.scheduleLocked()
}

// enqueueLocked places a runnable LWP on a CPU's dispatch queue.
func (k *Kernel) enqueueLocked(l *LWP) {
	k.runqPushLocked(k.placeLocked(l), l)
}

// runqPushLocked and runqRemoveLocked are the only mutators of the
// per-CPU queues: they keep the global runnable and gang counters
// consistent. Class, priority, gang, CPU-binding and pset changes to
// a queued LWP must remove first and re-push after.
func (k *Kernel) runqPushLocked(c *CPU, l *LWP) {
	c.runq.push(l, globalLevel(l.globalPrio()))
	l.rqCPU = c
	k.nrunnable++
	if l.gang != 0 {
		k.gangQueued++
	}
}

func (k *Kernel) runqRemoveLocked(l *LWP) {
	l.rqCPU.runq.unlink(l)
	l.rqCPU = nil
	k.nrunnable--
	if l.gang != 0 {
		k.gangQueued--
	}
}

// placeLocked chooses the CPU a runnable LWP queues on: its bound CPU
// if hard-bound; otherwise, within its processor set, the CPU it last
// ran on (cache affinity) when that CPU is free or no CPU is free, a
// free CPU over a busy affine one (work conservation beats warmth),
// and the shallowest queue when everything is busy.
func (k *Kernel) placeLocked(l *LWP) *CPU {
	if l.boundCPU != nil {
		return l.boundCPU
	}
	ps := l.ps
	var affin *CPU
	if l.lastCPU >= 0 {
		if c := k.cpus[l.lastCPU]; c.ps == ps {
			affin = c
		}
	}
	var free *CPU
	for _, c := range ps.cpus {
		if c.lwp == nil {
			free = c
			break
		}
	}
	if affin != nil && (affin.lwp == nil || free == nil) {
		return affin
	}
	if free != nil {
		return free
	}
	best := ps.cpus[0]
	for _, c := range ps.cpus[1:] {
		if c.runq.n < best.runq.n {
			best = c
		}
	}
	return best
}

// scheduleLocked assigns queued LWPs to free CPUs: each free CPU pops
// its own queue, stealing from a processor-set sibling when the
// sibling holds strictly better (or the only) stealable work. It then
// runs the periodic balancer if its period elapsed and flags any
// outranked on-CPU LWP for preemption.
func (k *Kernel) scheduleLocked() {
	for {
		progress := false
		for _, c := range k.cpus {
			if c.lwp != nil {
				continue
			}
			l := k.pickForLocked(c)
			if l == nil {
				continue
			}
			k.assignLocked(l, c)
			progress = true
		}
		if !progress {
			break
		}
	}
	k.maybeBalanceLocked()
	k.preemptCheckLocked()
}

// gangBonus is added to the effective dispatch priority of a runnable
// gang member whose gang already has a member on CPU; the boosted
// priority is capped at the top of the SYS band, so co-scheduling
// beats any timeshare LWP but never a real-time one.
const gangBonus = 60

func (k *Kernel) onCPUGangsLocked() map[int]bool {
	var gangs map[int]bool
	for _, c := range k.cpus {
		if c.lwp != nil && c.lwp.gang != 0 {
			if gangs == nil {
				gangs = make(map[int]bool)
			}
			gangs[c.lwp.gang] = true
		}
	}
	return gangs
}

// pickForLocked selects the LWP for a free CPU: the head of its own
// queue's top level, unless a sibling queue in the same processor set
// holds strictly higher-priority stealable work (or c's queue is
// empty), in which case c steals — so per-CPU queues preserve the
// shared queue's global priority order, and no CPU idles while its
// set has stealable work.
func (k *Kernel) pickForLocked(c *CPU) *LWP {
	if k.gangQueued > 0 {
		return k.pickGangLocked(c)
	}
	own := c.runq.top()
	vLvl := -1
	var victim *CPU
	var candidates []*CPU
	collect := k.chaos.Enabled()
	for _, d := range c.ps.cpus {
		if d == c {
			continue
		}
		lvl := d.runq.topStealable()
		if lvl < 0 {
			continue
		}
		if collect {
			candidates = append(candidates, d)
		}
		if lvl > vLvl {
			vLvl, victim = lvl, d
		}
	}
	if victim != nil && vLvl > own {
		// Chaos: steal from a different victim queue. The thief
		// still takes that queue's best stealable LWP, so the CPU is
		// never idled; only placement is perturbed.
		if alt := k.chaos.StealReorder(len(candidates)); alt >= 0 {
			victim = candidates[alt]
		}
		l := victim.runq.firstStealableAt(victim.runq.topStealable())
		k.runqRemoveLocked(l)
		c.steals++
		k.rings.Record(c.id, trace.EvSteal, int(l.proc.pid), int(l.id), 0, uint64(victim.id))
		return l
	}
	if own < 0 {
		return nil
	}
	// Chaos: dispatch a non-best LWP from c's own queue, delaying
	// the best one; preemptCheckLocked reclaims a CPU for it.
	if alt := k.chaos.PickReorder(c.runq.n); alt >= 0 {
		if l := c.runq.nth(alt); l != nil {
			k.runqRemoveLocked(l)
			return l
		}
	}
	l := c.runq.head(own)
	k.runqRemoveLocked(l)
	return l
}

// pickGangLocked is the dispatch slow path while gang members are
// queued: it scans every queue in c's processor set, boosting members
// of gangs already on CPU, reproducing the shared-queue co-scheduling
// semantics. Gang workloads are rare; the common path never scans.
func (k *Kernel) pickGangLocked(c *CPU) *LWP {
	gangs := k.onCPUGangsLocked()
	var best *LWP
	bestPrio := -1
	var bestCPU *CPU
	var eligible []*LWP
	var eligibleCPU []*CPU
	collect := k.chaos.Enabled()
	for _, d := range c.ps.cpus {
		d.runq.forEach(func(l *LWP) {
			if l.boundCPU != nil && l.boundCPU != c {
				return
			}
			if collect {
				eligible = append(eligible, l)
				eligibleCPU = append(eligibleCPU, d)
			}
			prio := l.globalPrio()
			if l.gang != 0 && gangs[l.gang] {
				prio += gangBonus
				if prio > sysMaxGlobal {
					prio = sysMaxGlobal
				}
			}
			if prio > bestPrio {
				bestPrio = prio
				best = l
				bestCPU = d
			}
		})
	}
	if best == nil {
		return nil
	}
	if alt := k.chaos.PickReorder(len(eligible)); alt >= 0 {
		best, bestCPU = eligible[alt], eligibleCPU[alt]
	}
	k.runqRemoveLocked(best)
	if bestCPU != c {
		c.steals++
		k.rings.Record(c.id, trace.EvSteal, int(best.proc.pid), int(best.id), 0, uint64(bestCPU.id))
	}
	return best
}

// maybeBalanceLocked runs the balancer when its period has elapsed on
// the kernel clock (or a chaos source forces an early pass). The
// balancer never runs on its own goroutine: it piggybacks on
// scheduling points, so balanced schedules replay from a seed.
func (k *Kernel) maybeBalanceLocked() {
	if k.nrunnable == 0 {
		return
	}
	now := k.clock.Now()
	period := k.cfg.BalancePeriod
	due := period > 0 && now-k.lastBalance >= period
	if !due && !k.chaos.BalanceEarly() {
		return
	}
	k.balanceLocked(now)
}

// balanceLocked re-levels queued timeshare LWPs whose decayed usage
// moved their priority (the ts_update analogue) and evens out
// stealable queue depths within each processor set, moving the
// lowest-priority, youngest entries from the deepest queue toward the
// shallowest until they differ by at most one.
func (k *Kernel) balanceLocked(now time.Duration) {
	k.lastBalance = now
	var relevel []*LWP
	for _, c := range k.cpus {
		c.runq.forEach(func(l *LWP) {
			if lvl := globalLevel(l.globalPrio()); lvl != l.rqLevel {
				relevel = append(relevel, l)
			}
		})
	}
	for _, l := range relevel {
		c := l.rqCPU
		k.runqRemoveLocked(l)
		k.runqPushLocked(c, l)
	}
	for _, ps := range k.psets {
		if len(ps.cpus) < 2 {
			continue
		}
		for {
			lo, hi := ps.cpus[0], ps.cpus[0]
			for _, c := range ps.cpus[1:] {
				if c.runq.n < lo.runq.n {
					lo = c
				}
				if c.runq.stealableN() > hi.runq.stealableN() {
					hi = c
				}
			}
			if hi.runq.stealableN()-lo.runq.n < 2 || lo == hi {
				break
			}
			l := hi.runq.bottomStealable()
			k.runqRemoveLocked(l)
			k.runqPushLocked(lo, l)
			k.balanceMoves++
			k.rings.Record(lo.id, trace.EvBalance, int(l.proc.pid), int(l.id), 0, uint64(hi.id))
		}
	}
}

func (k *Kernel) assignLocked(l *LWP, c *CPU) {
	now := k.clock.Now()
	k.setLWPStateLocked(l, now, LWPOnCPU)
	l.cpu = c
	c.lwp = l
	l.preempt = false
	l.onCPUSince = now
	l.chargeMark = now
	l.curCPU.Store(int32(c.id))
	c.dispatches++
	if l.lastCPU >= 0 && l.lastCPU != c.id {
		c.migrations++
		k.rings.Record(c.id, trace.EvMigrate, int(l.proc.pid), int(l.id), 0, uint64(l.lastCPU))
	}
	l.lastCPU = c.id
	k.rings.Record(c.id, trace.EvDispatch, int(l.proc.pid), int(l.id), 0, uint64(l.globalPrio()))
	l.cond.Broadcast()
}

// releaseCPULocked takes the CPU away from l and records the new
// state. The caller is responsible for queueing/wait bookkeeping.
func (k *Kernel) releaseCPULocked(l *LWP, newState LWPState) {
	now := k.clock.Now()
	if l.cpu == nil {
		k.setLWPStateLocked(l, now, newState)
		return
	}
	k.chargeAtLocked(l, now)
	c := l.cpu
	c.lwp = nil
	l.cpu = nil
	l.curCPU.Store(-1)
	k.setLWPStateLocked(l, now, newState)
	k.scheduleLocked()
}

// preemptCheckLocked flags on-CPU LWPs for preemption when a
// higher-priority LWP is waiting for a CPU. Preemption is cooperative
// and takes effect at the victim's next checkpoint.
func (k *Kernel) preemptCheckLocked() {
	if k.nrunnable == 0 {
		return
	}
	for _, ps := range k.psets {
		bestWaiting := -1
		for _, c := range ps.cpus {
			if lvl := c.runq.top(); lvl > bestWaiting {
				bestWaiting = lvl
			}
		}
		if bestWaiting < 0 {
			continue
		}
		for _, c := range ps.cpus {
			if c.lwp != nil && c.lwp.globalPrio() < bestWaiting {
				c.lwp.preempt = true
			}
		}
	}
}

// mustUnwindLocked reports whether the LWP must abandon its current
// kernel wait and unwind (process death, or exec tearing down all
// LWPs but the survivor).
func (k *Kernel) mustUnwindLocked(l *LWP) (string, bool) {
	if l.proc.dying {
		return "process dying", true
	}
	if l.proc.execing && l != l.proc.execSurvivor {
		return "exec", true
	}
	return "", false
}

// waitOnCPULocked blocks until l is dispatched onto a CPU. It panics
// with *Unwind if the process dies (or execs away) while waiting —
// including when death lands in the window where the dispatcher has
// already handed l a CPU but its animator has not woken yet: the exit
// of the wait loop re-checks, or the LWP would run on (and a parking
// LWP would sleep past the kill broadcast, leaving liveLWPs pinned and
// the process unfinalizable).
func (k *Kernel) waitOnCPULocked(l *LWP) {
	for l.state != LWPOnCPU {
		if reason, bad := k.mustUnwindLocked(l); bad {
			k.unwindLocked(l, reason)
		}
		l.cond.Wait()
	}
	if reason, bad := k.mustUnwindLocked(l); bad {
		k.unwindLocked(l, reason)
	}
}

func (k *Kernel) unwindLocked(l *LWP, reason string) {
	// Leave cleanup to ExitLWP, which the recovering animator must
	// call; just make sure we are not on a run queue so the
	// dispatcher cannot hand us a CPU mid-unwind.
	k.removeRunnableLocked(l)
	panic(&Unwind{Proc: l.proc, Reason: reason})
}

func (k *Kernel) removeRunnableLocked(l *LWP) {
	if l.rqOn {
		k.runqRemoveLocked(l)
	}
}

// --- time accounting ---------------------------------------------------

// chargeLocked attributes CPU time since the last charge mark to the
// LWP (user or system depending on the in-syscall flag), feeds the
// profiling buffer and interval timers, and enforces the CPU rlimit.
func (k *Kernel) chargeLocked(l *LWP) {
	k.chargeAtLocked(l, k.clock.Now())
}

// chargeAtLocked is chargeLocked with the clock already read, so
// transition points that also update microstates read it once.
func (k *Kernel) chargeAtLocked(l *LWP, now time.Duration) {
	d := now - l.chargeMark
	l.chargeMark = now
	if d <= 0 {
		return
	}
	p := l.proc
	if l.inSyscall {
		l.sysTime += d
	} else {
		l.userTime += d
		l.prof.charge(l.profLabel, d)
		if l.vtimer != nil {
			l.vtimer.decrement(k, l, d)
		}
	}
	if l.ptimer != nil {
		l.ptimer.decrement(k, l, d)
	}
	if l.class == ClassTS || l.class == ClassGang {
		l.chargeAndDecay(d, now)
	}
	if p.cpuLimit.Soft != RlimitInfinity && !p.xcpuSent {
		r := p.rusageLocked()
		if r.UserTime+r.SysTime > p.cpuLimit.Soft {
			p.xcpuSent = true
			k.postSignalLocked(p, SIGXCPU, l)
		}
	}
}

// Checkpoint is a cooperative preemption point. Animators call it at
// synchronization operations, system-call boundaries and voluntary
// yields. It handles process death and exec unwinding, process stop,
// priority preemption and time-slice expiry. It reports whether a
// signal is now deliverable to this LWP, in which case the caller
// should invoke TakeSignal.
func (k *Kernel) Checkpoint(l *LWP) (signalPending bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.checkpointLocked(l)
	return k.deliverableLocked(l) != 0
}

func (k *Kernel) checkpointLocked(l *LWP) {
	p := l.proc
	if p.dying {
		k.unwindLocked(l, "process dying")
	}
	if p.execing && l != p.execSurvivor {
		k.unwindLocked(l, "exec")
	}
	if l.state == LWPOnCPU {
		// Checkpoints are the cooperative analogue of clock
		// ticks: attribute CPU time, drive virtual interval
		// timers, and enforce the CPU rlimit.
		k.chargeLocked(l)
	}
	for p.state == ProcStopped {
		k.tr.Add("proc", "pid %d lwp %d stops", p.pid, l.id)
		k.releaseCPULocked(l, LWPStopped)
		for p.state == ProcStopped && !p.dying {
			l.cond.Wait()
		}
		if p.dying {
			k.unwindLocked(l, "process dying")
		}
		k.makeRunnableLocked(l)
		k.waitOnCPULocked(l)
	}
	slice := k.cfg.TimeSlice
	expired := slice > 0 && k.clock.Now()-l.onCPUSince >= slice && k.nrunnable > 0
	// Chaos: force a preemption as if the slice expired, so the
	// dispatcher re-decides who runs here.
	forced := l.state == LWPOnCPU && k.chaos.Preempt()
	if l.preempt || expired || forced {
		k.chargeLocked(l)
		if l.cpu != nil {
			k.rings.Record(l.cpu.id, trace.EvPreempt, int(l.proc.pid), int(l.id), 0, 0)
		}
		k.releaseCPULocked(l, LWPRunnable)
		k.enqueueLocked(l)
		k.scheduleLocked()
		k.waitOnCPULocked(l)
	}
}

// Yield voluntarily gives up the CPU, letting the dispatcher pick the
// highest-priority runnable LWP (possibly this one again).
func (k *Kernel) Yield(l *LWP) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.checkpointLocked(l)
	k.chargeLocked(l)
	k.releaseCPULocked(l, LWPRunnable)
	k.enqueueLocked(l)
	k.scheduleLocked()
	k.waitOnCPULocked(l)
}

// ExitLWP retires the LWP. The animating goroutine must not use the
// LWP afterwards. When the last LWP of a process exits, the process
// itself is finalized. Safe to call from an Unwind recovery.
func (k *Kernel) ExitLWP(l *LWP) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if l.state == LWPZombie {
		return
	}
	p := l.proc
	now := k.clock.Now()
	if l.cpu != nil {
		k.chargeAtLocked(l, now)
		c := l.cpu
		c.lwp = nil
		l.cpu = nil
		l.curCPU.Store(-1)
	}
	if l.wq != nil {
		l.wq.remove(l)
		l.wq = nil
	}
	if l.indefinite {
		p.indefSleepers--
		l.indefinite = false
	}
	if l.state == LWPSigWait {
		p.sigwaiters--
	}
	k.removeRunnableLocked(l)
	if l.psBound {
		l.ps.nbound--
		l.psBound = false
	}
	if l.sleepTimer != nil {
		l.sleepTimer.Stop()
		l.sleepTimer = nil
	}
	k.setLWPStateLocked(l, now, LWPZombie)
	p.deadUser += l.userTime
	p.deadSys += l.sysTime
	delete(p.lwps, l.id)
	p.liveLWPs--
	close(l.exited)
	k.tr.Add("lwp", "pid %d lwp %d exits (%d live)", p.pid, l.id, p.liveLWPs)
	k.scheduleLocked()
	if p.execing && p.execSurvivor != nil {
		p.execSurvivor.cond.Broadcast() // exec barrier progress
	}
	if p.liveLWPs == 0 && p.state == ProcRunning {
		k.finalizeProcLocked(p)
	}
	// The all-blocked condition may newly hold among remaining LWPs.
	k.maybeSigwaitingLocked(p)
}
