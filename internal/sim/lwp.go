package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// LWPID identifies an LWP within its process. There is no system-wide
// name space for LWPs (paper, "Threads and lightweight processes").
type LWPID int

// LWPState is the kernel-visible state of an LWP.
type LWPState int

// LWP states.
const (
	// LWPEmbryo: created, animator has not called Start yet.
	LWPEmbryo LWPState = iota
	// LWPRunnable: wants a CPU.
	LWPRunnable
	// LWPOnCPU: currently holding a CPU.
	LWPOnCPU
	// LWPSleeping: blocked in the kernel on a wait queue.
	LWPSleeping
	// LWPParked: idle, parked by the threads library (lwp_park).
	LWPParked
	// LWPStopped: stopped by job control or process stop.
	LWPStopped
	// LWPSigWait: blocked in SigWait (the library's ASLWP). Not
	// counted as an indefinite sleeper for SIGWAITING purposes.
	LWPSigWait
	// LWPZombie: exited.
	LWPZombie
)

// String implements fmt.Stringer.
func (s LWPState) String() string {
	switch s {
	case LWPEmbryo:
		return "embryo"
	case LWPRunnable:
		return "runnable"
	case LWPOnCPU:
		return "oncpu"
	case LWPSleeping:
		return "sleeping"
	case LWPParked:
		return "parked"
	case LWPStopped:
		return "stopped"
	case LWPSigWait:
		return "sigwait"
	case LWPZombie:
		return "zombie"
	}
	return fmt.Sprintf("LWPState(%d)", int(s))
}

// WakeResult reports why a Sleep returned.
type WakeResult int

// Sleep outcomes.
const (
	WakeNormal WakeResult = iota
	// WakeInterrupted: an interruptible sleep was broken by a
	// signal (the syscall should return EINTR).
	WakeInterrupted
	// WakeTimeout: the sleep's timeout expired.
	WakeTimeout
)

// LWP is a lightweight process: the kernel-supported thread of
// control. It consists of a data structure in the kernel used for
// processor scheduling, page-fault handling, and kernel-call
// execution, plus state private to the LWP (paper, "Lightweight
// process state").
//
// An LWP has no goroutine of its own inside the kernel; whichever
// goroutine currently animates the LWP (the threads library's
// dispatcher between threads, or a thread goroutine while it runs and
// during its system calls) drives it through the Kernel's methods.
type LWP struct {
	id   LWPID
	proc *Process

	// Scheduling state; guarded by Kernel.mu.
	state      LWPState
	class      Class
	userPrio   int
	gang       int // gang group id when class == ClassGang, else 0
	cpu        *CPU
	boundCPU   *CPU
	ps         *pset // processor set the LWP runs in (default set if unbound)
	psBound    bool  // explicitly bound to a user pset (counts in pset.nbound)
	cond       *sync.Cond // signalled when state changes to OnCPU or wake conditions
	preempt    bool       // yield CPU at next checkpoint
	onCPUSince time.Duration
	chargeMark time.Duration // last point CPU time was attributed
	cpuUsage   time.Duration // decayed usage, drives TS priority
	lastDecay  time.Duration

	// Intrusive dispatch-queue node (dispq.go): the per-CPU run
	// queue the LWP is waiting on, its level there, and the FIFO
	// links. Guarded by Kernel.mu.
	rqNext, rqPrev *LWP
	rqCPU          *CPU
	rqLevel        int
	rqOn           bool

	// Microstate accounting (see microstate.go); guarded by
	// Kernel.mu except curCPU, an atomic mirror of the current CPU
	// id (-1 off-CPU) read lock-free by the threads library.
	msBorn  time.Duration
	msMark  time.Duration
	msAcc   [NumLWPMicro]time.Duration
	lastCPU int // previous CPU dispatched on; -1 before first dispatch
	curCPU  atomic.Int32

	// Sleep state; guarded by Kernel.mu. wqNext/wqPrev are the
	// intrusive links of the WaitQ the LWP sleeps on.
	wq            *WaitQ
	wqNext        *LWP
	wqPrev        *LWP
	wakeRes       WakeResult
	woken         bool
	sleepTimer    interface{ Stop() bool }
	parkPermit    bool
	indefinite    bool
	interruptible bool
	sigDelivered  Signal // set when a SigWait is satisfied

	// Signal state; guarded by Kernel.mu. Per the paper each LWP
	// has its own signal mask; the threads library points it at the
	// mask of whichever thread the LWP is currently executing.
	mask     Sigset
	pending  Sigset
	sigwaitS Sigset // set being waited for in SigWait

	// Alternate signal stack (paper: per-LWP state — "Alternate
	// signal stack and masks for alternate stack disable and
	// onstack"). Guarded by Kernel.mu.
	altStack AltStack

	// In-syscall flag plus times; guarded by Kernel.mu.
	inSyscall    bool
	syscallStart time.Duration

	// Resource usage (paper: "User time and system CPU usage" are
	// per-LWP state). Guarded by Kernel.mu.
	userTime time.Duration
	sysTime  time.Duration

	// Interval timers ("Each LWP has two private interval timers").
	vtimer *itimer // decrements in LWP user time -> SIGVTALRM
	ptimer *itimer // decrements in user+system time -> SIGPROF

	// Profiling ("Profiling is enabled for each LWP individually").
	prof      *ProfBuffer
	profLabel string

	// exited is closed when the LWP becomes a zombie; used by
	// LWP reapers and tests.
	exited chan struct{}
}

// ID returns the LWP's id, unique within its process.
func (l *LWP) ID() LWPID { return l.id }

// Process returns the owning process.
func (l *LWP) Process() *Process { return l.proc }

// State returns the LWP's current scheduling state.
func (l *LWP) State() LWPState {
	k := l.proc.kern
	k.mu.Lock()
	defer k.mu.Unlock()
	return l.state
}

// Class returns the LWP's scheduling class.
func (l *LWP) Class() Class {
	k := l.proc.kern
	k.mu.Lock()
	defer k.mu.Unlock()
	return l.class
}

// Wchan returns the name of the kernel wait queue the LWP is sleeping
// on ("" when it is not sleeping) — the /proc WCHAN of this kernel.
// Priority returns the LWP's class-relative user priority.
func (l *LWP) Priority() int {
	k := l.proc.kern
	k.mu.Lock()
	defer k.mu.Unlock()
	return l.userPrio
}

// BoundCPU reports the CPU the LWP is hard-bound to (BindCPU), or -1
// when it may run on any CPU of its processor set.
func (l *LWP) BoundCPU() int {
	k := l.proc.kern
	k.mu.Lock()
	defer k.mu.Unlock()
	if l.boundCPU == nil {
		return -1
	}
	return l.boundCPU.id
}

func (l *LWP) Wchan() string {
	k := l.proc.kern
	k.mu.Lock()
	defer k.mu.Unlock()
	if l.wq != nil {
		return l.wq.name
	}
	return ""
}

// OnCPUFor returns how long the LWP has continuously held a CPU (0
// when it is not on one) — the signal the deadman watchdog judges
// against its deadline to flag an LWP stuck on-CPU.
func (l *LWP) OnCPUFor() time.Duration {
	k := l.proc.kern
	k.mu.Lock()
	defer k.mu.Unlock()
	if l.state != LWPOnCPU {
		return 0
	}
	return k.clock.Now() - l.onCPUSince
}

// Usage returns the LWP's accumulated user and system CPU time.
func (l *LWP) Usage() (user, sys time.Duration) {
	k := l.proc.kern
	k.mu.Lock()
	defer k.mu.Unlock()
	return l.userTime, l.sysTime
}

// Exited returns a channel closed when the LWP has exited.
func (l *LWP) Exited() <-chan struct{} { return l.exited }

// AltStack is an LWP's alternate signal stack registration, like
// sigaltstack(2). The stack memory itself is simulated (signal
// handlers run on goroutine stacks), but the registration, disable
// flag and on-stack flag are real per-LWP state: the paper makes
// alternate stacks an LWP capability that unbound threads cannot use.
type AltStack struct {
	Base    int64
	Size    int64
	Enabled bool
	OnStack bool
}

// SigAltStack installs (or with enabled=false disables) the LWP's
// alternate signal stack.
func (k *Kernel) SigAltStack(l *LWP, base, size int64, enabled bool) {
	k.mu.Lock()
	l.altStack = AltStack{Base: base, Size: size, Enabled: enabled}
	k.mu.Unlock()
}

// AltStackState returns the LWP's alternate-stack registration.
func (k *Kernel) AltStackState(l *LWP) AltStack {
	k.mu.Lock()
	defer k.mu.Unlock()
	return l.altStack
}

// enterAltStackLocked marks handler execution on the alternate stack.
func (l *LWP) enterAltStackLocked() bool {
	if !l.altStack.Enabled || l.altStack.OnStack {
		return false
	}
	l.altStack.OnStack = true
	return true
}

// ExitAltStack clears the on-stack flag after a handler returns.
func (k *Kernel) ExitAltStack(l *LWP) {
	k.mu.Lock()
	l.altStack.OnStack = false
	k.mu.Unlock()
}

// EnterAltStack marks the LWP as running its handler on the alternate
// stack; reports whether the switch happened.
func (k *Kernel) EnterAltStack(l *LWP) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return l.enterAltStackLocked()
}

// CPU is one simulated processor. At most one LWP runs on a CPU at a
// time. Each CPU owns a dispatch queue of runnable LWPs placed on it
// (affinity first); an idle CPU steals from its processor-set
// siblings, so no CPU idles while its set has stealable work.
type CPU struct {
	id  int
	lwp *LWP // guarded by Kernel.mu

	// Dispatcher state; guarded by Kernel.mu.
	ps         *pset   // processor set this CPU belongs to
	runq       lwpRunq // LWPs placed on this CPU
	dispatches uint64  // LWPs dispatched onto this CPU
	steals     uint64  // LWPs this CPU stole from a sibling's queue
	migrations uint64  // dispatches whose LWP last ran elsewhere
}

// ID returns the CPU number.
func (c *CPU) ID() int { return c.id }

// ProfBuffer accumulates per-label tick counts for one LWP. Real
// SunOS samples the PC at each clock tick in LWP user time; a Go
// reproduction has no PC to sample, so the animating code labels its
// current activity and the kernel charges CPU time per label.
type ProfBuffer struct {
	mu     sync.Mutex
	Counts map[string]time.Duration
}

// NewProfBuffer returns an empty profiling buffer. Several LWPs may
// share one buffer if accumulated information is desired (paper).
func NewProfBuffer() *ProfBuffer {
	return &ProfBuffer{Counts: make(map[string]time.Duration)}
}

func (b *ProfBuffer) charge(label string, d time.Duration) {
	if b == nil || d <= 0 {
		return
	}
	b.mu.Lock()
	b.Counts[label] += d
	b.mu.Unlock()
}

// Total returns the total charged time for label.
func (b *ProfBuffer) Total(label string) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.Counts[label]
}
