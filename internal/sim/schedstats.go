package sim

// CPUStat is a snapshot of one CPU's dispatcher state and counters,
// consumed by /proc and mtstat. Depths are instantaneous; the counters
// are monotonic since boot.
type CPUStat struct {
	CPU        int
	Pset       PsetID
	RunqDepth  int // LWPs queued on this CPU
	RunqBound  int // queued LWPs hard-bound here (never stolen)
	Dispatches uint64
	Steals     uint64 // picks this CPU took from a sibling's queue
	Migrations uint64 // dispatches whose LWP last ran elsewhere
}

// SchedStats returns a per-CPU snapshot of the dispatcher, ascending
// by CPU id.
func (k *Kernel) SchedStats() []CPUStat {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]CPUStat, len(k.cpus))
	for i, c := range k.cpus {
		out[i] = CPUStat{
			CPU:        c.id,
			Pset:       c.ps.id,
			RunqDepth:  c.runq.n,
			RunqBound:  c.runq.nbound,
			Dispatches: c.dispatches,
			Steals:     c.steals,
			Migrations: c.migrations,
		}
	}
	return out
}

// BalanceMoves returns how many queued LWPs the periodic balancer has
// moved between CPUs since boot.
func (k *Kernel) BalanceMoves() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.balanceMoves
}

// WorkConserving verifies the dispatcher invariant the chaos sweeps
// assert: no CPU sits idle while its own queue is non-empty or while a
// processor-set sibling holds stealable work. Every kernel mutation
// ends in scheduleLocked under the same lock hold, so the invariant
// must hold at any observation point.
func (k *Kernel) WorkConserving() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, ps := range k.psets {
		idle := false
		stealable := 0
		for _, c := range ps.cpus {
			if c.lwp == nil {
				if c.runq.n > 0 {
					return false
				}
				idle = true
			}
			stealable += c.runq.stealableN()
		}
		if idle && stealable > 0 {
			return false
		}
	}
	return true
}
