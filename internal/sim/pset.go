package sim

import "fmt"

// Processor sets, after Solaris psrset(1M)/pset_create(2): a pset is
// a disjoint group of CPUs that runs only the LWPs bound to it. CPUs
// start in the default set (PsetDefault); LWPs with no binding run on
// the default set's CPUs. Placement, stealing and balancing never
// cross set boundaries, so a pset is both an isolation and a
// dedication primitive: binding a bound thread's LWP to a set of
// dedicated CPUs shields it from the rest of the process, and keeps
// the rest of the process off those CPUs.

// PsetID names a processor set. PsetDefault is the default set.
type PsetID int

// PsetDefault is the id of the default processor set, which holds
// every CPU at boot and every CPU not assigned to a user set.
const PsetDefault PsetID = 0

// pset is one processor set. Guarded by Kernel.mu.
type pset struct {
	id     PsetID
	cpus   []*CPU // member CPUs, ascending id
	nbound int    // live LWPs bound to this set
}

// PsetInfo is a snapshot of one processor set for /proc and mtstat.
type PsetInfo struct {
	ID PsetID
	// CPUs holds the member CPU ids, ascending.
	CPUs []int
	// BoundLWPs is the number of live LWPs bound to the set.
	BoundLWPs int
}

// PsetCreate creates an empty processor set. CPUs are added with
// PsetAssign.
func (k *Kernel) PsetCreate() PsetID {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.nextPset++
	id := k.nextPset
	k.psets[id] = &pset{id: id}
	k.tr.Add("pset", "pset %d created", id)
	return id
}

// PsetDestroy destroys a user processor set: its CPUs return to the
// default set and its bound LWPs are unbound.
func (k *Kernel) PsetDestroy(id PsetID) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if id == PsetDefault {
		return fmt.Errorf("sim: cannot destroy the default pset")
	}
	ps, ok := k.psets[id]
	if !ok {
		return fmt.Errorf("sim: no pset %d", id)
	}
	for _, p := range k.procs {
		for _, l := range p.lwps {
			if l.ps == ps {
				k.psetRebindLocked(l, k.psets[PsetDefault], false)
			}
		}
	}
	for _, c := range ps.cpus {
		k.moveCPULocked(c, k.psets[PsetDefault])
	}
	delete(k.psets, id)
	k.tr.Add("pset", "pset %d destroyed", id)
	k.scheduleLocked()
	return nil
}

// PsetAssign moves a CPU into the processor set (PsetDefault moves it
// back to the default set). The default set must keep at least one
// CPU, a set with bound LWPs must keep at least one CPU, and a CPU
// with LWPs hard-bound to it (BindCPU) cannot change sets.
func (k *Kernel) PsetAssign(id PsetID, cpuID int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if cpuID < 0 || cpuID >= len(k.cpus) {
		return fmt.Errorf("sim: no CPU %d (have %d)", cpuID, len(k.cpus))
	}
	dst, ok := k.psets[id]
	if !ok {
		return fmt.Errorf("sim: no pset %d", id)
	}
	c := k.cpus[cpuID]
	src := c.ps
	if src == dst {
		return nil
	}
	if len(src.cpus) == 1 && (src.id == PsetDefault || src.nbound > 0) {
		return fmt.Errorf("sim: cannot remove the last CPU from pset %d", src.id)
	}
	for _, p := range k.procs {
		for _, l := range p.lwps {
			if l.boundCPU == c && l.state != LWPZombie {
				return fmt.Errorf("sim: CPU %d has LWPs bound to it", cpuID)
			}
		}
	}
	k.moveCPULocked(c, dst)
	k.tr.Add("pset", "cpu %d -> pset %d", cpuID, id)
	k.scheduleLocked()
	return nil
}

// moveCPULocked reassigns c to dst, re-placing c's queued LWPs (they
// belong to c's old set) and flagging an on-CPU LWP from the old set
// for preemption so it drifts back at its next checkpoint.
func (k *Kernel) moveCPULocked(c *CPU, dst *pset) {
	src := c.ps
	var queued []*LWP
	c.runq.forEach(func(l *LWP) { queued = append(queued, l) })
	for _, l := range queued {
		k.runqRemoveLocked(l)
	}
	for i, x := range src.cpus {
		if x == c {
			src.cpus = append(src.cpus[:i], src.cpus[i+1:]...)
			break
		}
	}
	c.ps = dst
	insertCPU(&dst.cpus, c)
	for _, l := range queued {
		k.runqPushLocked(k.placeLocked(l), l)
	}
	if c.lwp != nil && c.lwp.ps != dst {
		c.lwp.preempt = true
	}
}

// insertCPU keeps a pset's CPU list ascending by id.
func insertCPU(cpus *[]*CPU, c *CPU) {
	i := 0
	for i < len(*cpus) && (*cpus)[i].id < c.id {
		i++
	}
	*cpus = append(*cpus, nil)
	copy((*cpus)[i+1:], (*cpus)[i:])
	(*cpus)[i] = c
}

// PsetBind binds the LWP to the processor set (PsetDefault removes
// the binding): the LWP runs only on the set's CPUs from now on. The
// target set must have at least one CPU, and a CPU-bound LWP cannot
// bind to a set its CPU is outside of.
func (k *Kernel) PsetBind(l *LWP, id PsetID) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	ps, ok := k.psets[id]
	if !ok {
		return fmt.Errorf("sim: no pset %d", id)
	}
	if len(ps.cpus) == 0 {
		return fmt.Errorf("sim: pset %d has no CPUs", id)
	}
	if l.boundCPU != nil && l.boundCPU.ps != ps {
		return fmt.Errorf("sim: lwp %d is bound to CPU %d outside pset %d", l.id, l.boundCPU.id, id)
	}
	k.psetRebindLocked(l, ps, id != PsetDefault)
	k.tr.Add("pset", "lwp %d -> pset %d", l.id, id)
	k.scheduleLocked()
	return nil
}

// psetRebindLocked installs a new pset for l, maintaining bind
// counts, re-placing l if queued, and preempting l if it is running
// on a CPU outside the new set.
func (k *Kernel) psetRebindLocked(l *LWP, ps *pset, bound bool) {
	if l.psBound {
		l.ps.nbound--
	}
	queued := l.rqOn
	if queued {
		k.runqRemoveLocked(l)
	}
	l.ps = ps
	l.psBound = bound
	if bound {
		ps.nbound++
	}
	if queued {
		k.runqPushLocked(k.placeLocked(l), l)
	}
	if l.cpu != nil && l.cpu.ps != ps {
		l.preempt = true
	}
}

// Pset reports the processor set the LWP is bound to (PsetDefault
// when unbound).
func (l *LWP) Pset() PsetID {
	k := l.proc.kern
	k.mu.Lock()
	defer k.mu.Unlock()
	if !l.psBound {
		return PsetDefault
	}
	return l.ps.id
}

// Psets returns a snapshot of all processor sets, ascending by id.
func (k *Kernel) Psets() []PsetInfo {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]PsetInfo, 0, len(k.psets))
	for id := PsetID(0); id <= k.nextPset; id++ {
		ps, ok := k.psets[id]
		if !ok {
			continue
		}
		info := PsetInfo{ID: id, BoundLWPs: ps.nbound}
		for _, c := range ps.cpus {
			info.CPUs = append(info.CPUs, c.id)
		}
		out = append(out, info)
	}
	return out
}
