package sim

import (
	"sync/atomic"
	"testing"
	"time"

	"sunosmt/internal/ktime"
)

// newTestKernel boots a kernel on the real clock with ncpu CPUs.
func newTestKernel(ncpu int) *Kernel {
	return NewKernel(Config{NCPU: ncpu})
}

// animate creates an LWP in p and runs body on a fresh goroutine as
// its animator: Start, body, ExitLWP, with kernel unwinds recovered.
// It returns the LWP and a channel closed when the animator is done.
func animate(k *Kernel, p *Process, body func(l *LWP)) (*LWP, <-chan struct{}) {
	l, err := k.NewLWP(p, ClassTS, defaultTSPrio)
	if err != nil {
		panic(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil && !IsUnwind(r) {
				panic(r)
			}
			k.ExitLWP(l)
		}()
		k.Start(l)
		body(l)
	}()
	return l, done
}

func waitClosed(t *testing.T, ch <-chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatalf("timeout waiting for %s", what)
	}
}

func TestSingleLWPRunsAndExits(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("init", nil)
	ran := false
	l, done := animate(k, p, func(l *LWP) { ran = true })
	waitClosed(t, done, "animator")
	if !ran {
		t.Fatal("body did not run")
	}
	if l.State() != LWPZombie {
		t.Fatalf("lwp state = %v, want zombie", l.State())
	}
	waitClosed(t, p.Exited(), "process exit")
	if st := p.State(); st != ProcZombie && st != ProcDead {
		t.Fatalf("proc state = %v, want zombie/dead", st)
	}
}

func TestTwoLWPsShareOneCPU(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	const rounds = 50
	counts := [2]int{}
	mk := func(i int) func(*LWP) {
		return func(l *LWP) {
			for j := 0; j < rounds; j++ {
				counts[i]++
				k.Yield(l)
			}
		}
	}
	_, d1 := animate(k, p, mk(0))
	_, d2 := animate(k, p, mk(1))
	waitClosed(t, d1, "lwp1")
	waitClosed(t, d2, "lwp2")
	if counts[0] != rounds || counts[1] != rounds {
		t.Fatalf("counts = %v, want both %d", counts, rounds)
	}
}

func TestAtMostNCPUOnCPU(t *testing.T) {
	k := newTestKernel(2)
	p := k.NewProcess("p", nil)
	var dones []<-chan struct{}
	// Track max concurrency via kernel state inspection at yields.
	maxSeen := 0
	check := func() {
		k.mu.Lock()
		n := 0
		for _, c := range k.cpus {
			if c.lwp != nil {
				n++
			}
		}
		if n > maxSeen {
			maxSeen = n
		}
		if n > 2 {
			panic("more LWPs on CPU than CPUs")
		}
		k.mu.Unlock()
	}
	for i := 0; i < 6; i++ {
		_, d := animate(k, p, func(l *LWP) {
			for j := 0; j < 30; j++ {
				check()
				k.Yield(l)
			}
		})
		dones = append(dones, d)
	}
	for _, d := range dones {
		waitClosed(t, d, "worker")
	}
	if maxSeen == 0 {
		t.Fatal("no concurrency observed")
	}
}

func TestSleepWakeup(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	wq := NewWaitQ("test")
	got := make(chan WakeResult, 1)
	sleeper, d1 := animate(k, p, func(l *LWP) {
		got <- k.Sleep(l, wq, SleepOpts{})
	})
	// Wait for the sleeper to block.
	for sleeper.State() != LWPSleeping {
		time.Sleep(100 * time.Microsecond)
	}
	if n := wq.Len(k); n != 1 {
		t.Fatalf("waitq len = %d, want 1", n)
	}
	if n := k.Wakeup(wq, 1); n != 1 {
		t.Fatalf("Wakeup woke %d, want 1", n)
	}
	waitClosed(t, d1, "sleeper")
	if res := <-got; res != WakeNormal {
		t.Fatalf("wake result = %v, want normal", res)
	}
}

func TestSleepTimeout(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	wq := NewWaitQ("test")
	got := make(chan WakeResult, 1)
	_, d := animate(k, p, func(l *LWP) {
		got <- k.Sleep(l, wq, SleepOpts{Timeout: time.Millisecond})
	})
	waitClosed(t, d, "sleeper")
	if res := <-got; res != WakeTimeout {
		t.Fatalf("wake result = %v, want timeout", res)
	}
	if wq.Len(k) != 0 {
		t.Fatal("timed-out LWP still on waitq")
	}
}

func TestSleepInterruptedBySignal(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	if err := k.SetAction(p, SIGUSR1, SigCatch, func(Signal) {}, 0); err != nil {
		t.Fatal(err)
	}
	wq := NewWaitQ("test")
	got := make(chan WakeResult, 1)
	sleeper, d := animate(k, p, func(l *LWP) {
		got <- k.Sleep(l, wq, SleepOpts{Interruptible: true})
	})
	for sleeper.State() != LWPSleeping {
		time.Sleep(100 * time.Microsecond)
	}
	if err := k.PostSignal(p, SIGUSR1); err != nil {
		t.Fatal(err)
	}
	waitClosed(t, d, "sleeper")
	if res := <-got; res != WakeInterrupted {
		t.Fatalf("wake result = %v, want interrupted", res)
	}
}

func TestUninterruptibleSleepIgnoresSignal(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	k.SetAction(p, SIGUSR1, SigCatch, func(Signal) {}, 0)
	wq := NewWaitQ("test")
	got := make(chan WakeResult, 1)
	sleeper, d := animate(k, p, func(l *LWP) {
		got <- k.Sleep(l, wq, SleepOpts{Interruptible: false})
	})
	for sleeper.State() != LWPSleeping {
		time.Sleep(100 * time.Microsecond)
	}
	k.PostSignal(p, SIGUSR1)
	time.Sleep(5 * time.Millisecond)
	select {
	case <-d:
		t.Fatal("uninterruptible sleep was broken by a signal")
	default:
	}
	k.Wakeup(wq, -1)
	waitClosed(t, d, "sleeper")
	if res := <-got; res != WakeNormal {
		t.Fatalf("wake result = %v, want normal", res)
	}
	// The signal is still pending and deliverable after the wake.
	if !sleeper.pending.Has(SIGUSR1) && !p.pendingProc.Has(SIGUSR1) {
		t.Fatal("signal lost during uninterruptible sleep")
	}
}

func TestParkUnpark(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	parked := make(chan struct{})
	lwp, d := animate(k, p, func(l *LWP) {
		close(parked)
		k.Park(l)
	})
	<-parked
	for lwp.State() != LWPParked {
		time.Sleep(100 * time.Microsecond)
	}
	k.Unpark(lwp)
	waitClosed(t, d, "parker")
}

func TestUnparkBeforeParkLeavesPermit(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	_, d := animate(k, p, func(l *LWP) {
		k.Unpark(l) // self-permit
		k.Park(l)   // consumes permit, returns immediately
	})
	waitClosed(t, d, "parker")
}

func TestPriorityRTBeatsTS(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	order := make(chan string, 2)
	// Occupy the only CPU so both contenders queue up as runnable,
	// then yield and observe who is dispatched first.
	release := make(chan struct{})
	gate, dGate := animate(k, p, func(l *LWP) {
		<-release
		k.Yield(l)
	})
	for gate.State() != LWPOnCPU {
		time.Sleep(100 * time.Microsecond)
	}

	start := func(class Class, prio int, tag string) (*LWP, <-chan struct{}) {
		l, err := k.NewLWP(p, class, prio)
		if err != nil {
			t.Fatal(err)
		}
		d := make(chan struct{})
		go func() {
			defer close(d)
			defer func() { recover(); k.ExitLWP(l) }()
			k.Start(l)
			order <- tag
		}()
		return l, d
	}
	tsLWP, dTS := start(ClassTS, 30, "ts")
	rtLWP, dRT := start(ClassRT, 10, "rt")
	for tsLWP.State() != LWPRunnable || rtLWP.State() != LWPRunnable {
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	waitClosed(t, dTS, "ts")
	waitClosed(t, dRT, "rt")
	waitClosed(t, dGate, "gate")
	if first := <-order; first != "rt" {
		t.Fatalf("dispatched %q first, want rt", first)
	}
}

func TestSignalDeliveredToUnmaskedLWP(t *testing.T) {
	k := newTestKernel(2)
	p := k.NewProcess("p", nil)
	handled := make(chan Signal, 1)
	k.SetAction(p, SIGUSR1, SigCatch, func(s Signal) { handled <- s }, 0)
	stop := make(chan struct{})
	lwp, d := animate(k, p, func(l *LWP) {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if k.Checkpoint(l) {
				if ts, ok := k.TakeSignal(l); ok && ts.Handler != nil {
					ts.Handler(ts.Sig)
				}
			}
			time.Sleep(time.Millisecond)
		}
	})
	_ = lwp
	k.PostSignal(p, SIGUSR1)
	select {
	case s := <-handled:
		if s != SIGUSR1 {
			t.Fatalf("handled %v, want SIGUSR1", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("signal never handled")
	}
	close(stop)
	waitClosed(t, d, "worker")
}

func TestFullyMaskedSignalPendsOnProcess(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	k.SetAction(p, SIGUSR2, SigCatch, func(Signal) {}, 0)
	gotSig := make(chan Signal, 1)
	_, d := animate(k, p, func(l *LWP) {
		k.SetLWPMask(l, SigSetMask, MakeSigset(SIGUSR2))
		k.PostSignal(p, SIGUSR2) // masked everywhere: must pend
		if k.SignalPending(l) {
			gotSig <- SIGNONE
			return
		}
		k.SetLWPMask(l, SigUnblock, MakeSigset(SIGUSR2))
		if ts, ok := k.TakeSignal(l); ok {
			gotSig <- ts.Sig
			return
		}
		gotSig <- SIGNONE
	})
	waitClosed(t, d, "worker")
	if s := <-gotSig; s != SIGUSR2 {
		t.Fatalf("after unmask got %v, want SIGUSR2", s)
	}
}

func TestDefaultActionExitKillsProcess(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	wq := NewWaitQ("forever")
	_, d := animate(k, p, func(l *LWP) {
		k.Sleep(l, wq, SleepOpts{}) // uninterruptible; death still unwinds
	})
	k.PostSignal(p, SIGTERM)
	waitClosed(t, d, "victim")
	waitClosed(t, p.Exited(), "process")
	if _, sig := p.ExitStatus(); sig != SIGTERM {
		t.Fatalf("kill signal = %v, want SIGTERM", sig)
	}
}

func TestIgnoredSignalDropped(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	k.SetAction(p, SIGTERM, SigIgn, nil, 0)
	_, d := animate(k, p, func(l *LWP) {
		k.PostSignal(p, SIGTERM)
		if k.SignalPending(l) {
			t.Error("ignored signal pending")
		}
	})
	waitClosed(t, d, "worker")
}

func TestSIGKILLUncatchable(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	if err := k.SetAction(p, SIGKILL, SigCatch, func(Signal) {}, 0); err == nil {
		t.Fatal("SetAction(SIGKILL) succeeded, want error")
	}
	wq := NewWaitQ("forever")
	_, d := animate(k, p, func(l *LWP) {
		k.Sleep(l, wq, SleepOpts{})
	})
	k.PostSignal(p, SIGKILL)
	waitClosed(t, d, "victim")
	if _, sig := p.ExitStatus(); sig != SIGKILL {
		t.Fatalf("kill signal = %v, want SIGKILL", sig)
	}
}

func TestStopAndContinue(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	var progress atomic.Int64
	_, d := animate(k, p, func(l *LWP) {
		for i := 0; i < 1000; i++ {
			progress.Store(int64(i))
			k.Checkpoint(l)
			time.Sleep(50 * time.Microsecond)
		}
	})
	k.PostSignal(p, SIGSTOP)
	// Wait until the process actually stops.
	for p.State() != ProcStopped {
		time.Sleep(100 * time.Microsecond)
	}
	snap := progress.Load()
	time.Sleep(5 * time.Millisecond)
	if got := progress.Load(); got > snap+1 {
		t.Fatalf("progress advanced while stopped: %d -> %d", snap, got)
	}
	k.PostSignal(p, SIGCONT)
	waitClosed(t, d, "worker")
	if got := progress.Load(); got != 999 {
		t.Fatalf("final progress = %d, want 999", got)
	}
}

func TestTrapCaughtByHandler(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	caught := SIGNONE
	k.SetAction(p, SIGFPE, SigCatch, func(s Signal) { caught = s }, 0)
	_, d := animate(k, p, func(l *LWP) {
		if ts, ok := k.RaiseTrap(l, SIGFPE); ok && ts.Handler != nil {
			ts.Handler(ts.Sig)
		}
	})
	waitClosed(t, d, "worker")
	if caught != SIGFPE {
		t.Fatalf("caught = %v, want SIGFPE", caught)
	}
	// The process exits normally (its only LWP returned), not by
	// the trap signal.
	if _, sig := p.ExitStatus(); sig != SIGNONE {
		t.Fatalf("process killed by %v despite caught trap", sig)
	}
}

func TestTrapDefaultKillsProcess(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	_, d := animate(k, p, func(l *LWP) {
		k.RaiseTrap(l, SIGSEGV) // default: core -> unwind
		t.Error("survived default SIGSEGV")
	})
	waitClosed(t, d, "worker")
	waitClosed(t, p.Exited(), "process")
	if _, sig := p.ExitStatus(); sig != SIGSEGV {
		t.Fatalf("kill signal = %v, want SIGSEGV", sig)
	}
}

func TestSigWaitReceivesSignal(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	got := make(chan Signal, 1)
	lwp, d := animate(k, p, func(l *LWP) {
		got <- k.SigWait(l, MakeSigset(SIGUSR1, SIGWAITING))
	})
	for lwp.State() != LWPSigWait {
		time.Sleep(100 * time.Microsecond)
	}
	k.PostSignal(p, SIGUSR1)
	waitClosed(t, d, "sigwaiter")
	if s := <-got; s != SIGUSR1 {
		t.Fatalf("SigWait got %v, want SIGUSR1", s)
	}
}

func TestSIGWAITINGWhenAllLWPsBlockIndefinitely(t *testing.T) {
	k := newTestKernel(2)
	p := k.NewProcess("p", nil)
	notified := make(chan struct{}, 1)
	p.SetSigwaitingHook(func() {
		select {
		case notified <- struct{}{}:
		default:
		}
	})
	k.SetAction(p, SIGWAITING, SigCatch, func(Signal) {}, 0)
	wq := NewWaitQ("poll")
	var dones []<-chan struct{}
	for i := 0; i < 2; i++ {
		_, d := animate(k, p, func(l *LWP) {
			k.Sleep(l, wq, SleepOpts{Indefinite: true})
		})
		dones = append(dones, d)
	}
	select {
	case <-notified:
	case <-time.After(5 * time.Second):
		t.Fatal("SIGWAITING hook never ran")
	}
	k.Wakeup(wq, -1)
	for _, d := range dones {
		waitClosed(t, d, "sleeper")
	}
}

func TestNoSIGWAITINGWhileOneLWPRuns(t *testing.T) {
	k := newTestKernel(2)
	p := k.NewProcess("p", nil)
	fired := make(chan struct{}, 1)
	p.SetSigwaitingHook(func() {
		select {
		case fired <- struct{}{}:
		default:
		}
	})
	wq := NewWaitQ("poll")
	sleeper, d1 := animate(k, p, func(l *LWP) {
		k.Sleep(l, wq, SleepOpts{Indefinite: true})
	})
	stop := make(chan struct{})
	_, d2 := animate(k, p, func(l *LWP) {
		for {
			select {
			case <-stop:
				return
			default:
				k.Yield(l)
			}
		}
	})
	for sleeper.State() != LWPSleeping {
		time.Sleep(100 * time.Microsecond)
	}
	time.Sleep(5 * time.Millisecond)
	select {
	case <-fired:
		t.Fatal("SIGWAITING fired although one LWP is runnable")
	default:
	}
	k.Wakeup(wq, -1)
	close(stop)
	waitClosed(t, d1, "sleeper")
	waitClosed(t, d2, "runner")
}

func TestExitKillsAllLWPs(t *testing.T) {
	k := newTestKernel(2)
	p := k.NewProcess("p", nil)
	wq := NewWaitQ("forever")
	_, d1 := animate(k, p, func(l *LWP) {
		k.Sleep(l, wq, SleepOpts{})
	})
	_, d2 := animate(k, p, func(l *LWP) {
		time.Sleep(2 * time.Millisecond)
		k.Exit(l, 7)
	})
	waitClosed(t, d1, "sleeper unwound")
	waitClosed(t, d2, "exiter")
	waitClosed(t, p.Exited(), "process")
	if st, sig := p.ExitStatus(); st != 7 || sig != SIGNONE {
		t.Fatalf("exit status = %d/%v, want 7/none", st, sig)
	}
}

func TestWaitChildReapsZombie(t *testing.T) {
	k := newTestKernel(1)
	parent := k.NewProcess("parent", nil)
	gotChld := make(chan Signal, 1)
	k.SetAction(parent, SIGCHLD, SigCatch, func(s Signal) { gotChld <- s }, 0)
	res := make(chan WaitResult, 1)
	_, d := animate(k, parent, func(l *LWP) {
		child, cl, _, err := k.Fork(l, false)
		if err != nil {
			t.Error(err)
			return
		}
		go func() {
			defer func() { recover(); k.ExitLWP(cl) }()
			k.Start(cl)
			k.Exit(cl, 42)
		}()
		_ = child
		r, err := k.WaitChild(l, -1)
		if err != nil {
			t.Error(err)
			return
		}
		res <- r
	})
	waitClosed(t, d, "parent")
	r := <-res
	if r.Status != 42 {
		t.Fatalf("child status = %d, want 42", r.Status)
	}
	if _, ok := k.FindProcess(r.PID); ok {
		t.Fatal("child not reaped")
	}
}

func TestWaitChildNoChildren(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	var err error
	_, d := animate(k, p, func(l *LWP) {
		_, err = k.WaitChild(l, -1)
	})
	waitClosed(t, d, "waiter")
	if err != ErrChild {
		t.Fatalf("err = %v, want ErrChild", err)
	}
}

func TestForkAllDuplicatesLWPsAndEINTRsSleepers(t *testing.T) {
	k := newTestKernel(2)
	p := k.NewProcess("p", nil)
	wq := NewWaitQ("pollish")
	sleepRes := make(chan WakeResult, 1)
	sleeper, dSleep := animate(k, p, func(l *LWP) {
		sleepRes <- k.Sleep(l, wq, SleepOpts{Interruptible: true, Indefinite: true})
	})
	for sleeper.State() != LWPSleeping {
		time.Sleep(100 * time.Microsecond)
	}
	var nOthers int
	var childLive int
	_, dFork := animate(k, p, func(l *LWP) {
		child, cl, others, err := k.Fork(l, true)
		if err != nil {
			t.Error(err)
			return
		}
		nOthers = len(others)
		childLive = child.NumLWPs()
		// Retire the child records so the child process finishes.
		k.ExitLWP(cl)
		for _, o := range others {
			k.ExitLWP(o.LWP)
		}
	})
	waitClosed(t, dSleep, "sleeper")
	waitClosed(t, dFork, "forker")
	if res := <-sleepRes; res != WakeInterrupted {
		t.Fatalf("sleeper wake = %v, want interrupted (EINTR on fork)", res)
	}
	if nOthers != 1 {
		t.Fatalf("fork duplicated %d other LWPs, want 1", nOthers)
	}
	if childLive != 2 {
		t.Fatalf("child has %d LWPs, want 2", childLive)
	}
}

func TestForkHooksRun(t *testing.T) {
	k := newTestKernel(1)
	type fdtable struct{ n int }
	k.AddForkHook(func(parent, child *Process) {
		child.Files = &fdtable{n: parent.Files.(*fdtable).n}
	})
	p := k.NewProcess("p", nil)
	p.Files = &fdtable{n: 5}
	var childN int
	_, d := animate(k, p, func(l *LWP) {
		child, cl, _, err := k.Fork(l, false)
		if err != nil {
			t.Error(err)
			return
		}
		childN = child.Files.(*fdtable).n
		k.ExitLWP(cl)
	})
	waitClosed(t, d, "forker")
	if childN != 5 {
		t.Fatalf("child fd table n = %d, want 5", childN)
	}
}

func TestExecTearsDownOtherLWPs(t *testing.T) {
	k := newTestKernel(2)
	p := k.NewProcess("p", nil)
	wq := NewWaitQ("forever")
	_, dOther := animate(k, p, func(l *LWP) {
		k.Sleep(l, wq, SleepOpts{})
	})
	var newLWP *LWP
	_, dExec := animate(k, p, func(l *LWP) {
		time.Sleep(2 * time.Millisecond)
		nl, err := k.Exec(l, "newimage")
		if err != nil {
			t.Error(err)
			return
		}
		newLWP = nl
		// Animate the fresh LWP 0 and exit cleanly.
		go func() {
			defer func() { recover(); k.ExitLWP(nl) }()
			k.Start(nl)
		}()
	})
	waitClosed(t, dOther, "victim unwound by exec")
	waitClosed(t, dExec, "execer")
	waitClosed(t, p.Exited(), "process")
	if newLWP == nil {
		t.Fatal("no new LWP from exec")
	}
	if p.Name() != "newimage" {
		t.Fatalf("process name = %q, want newimage", p.Name())
	}
}

func TestItimerRealFiresSIGALRM(t *testing.T) {
	clk := ktime.NewManual()
	k := NewKernel(Config{NCPU: 1, Clock: clk})
	p := k.NewProcess("p", nil)
	got := make(chan Signal, 1)
	k.SetAction(p, SIGALRM, SigCatch, func(Signal) {}, 0)
	started := make(chan struct{})
	_, d := animate(k, p, func(l *LWP) {
		if err := k.Setitimer(l, ITimerReal, 100*time.Millisecond, 0); err != nil {
			t.Error(err)
		}
		close(started)
		for !k.SignalPending(l) {
			time.Sleep(200 * time.Microsecond)
		}
		if ts, ok := k.TakeSignal(l); ok {
			got <- ts.Sig
		}
	})
	<-started
	clk.Advance(100 * time.Millisecond)
	waitClosed(t, d, "worker")
	if s := <-got; s != SIGALRM {
		t.Fatalf("got %v, want SIGALRM", s)
	}
}

func TestVirtualTimerChargesUserTime(t *testing.T) {
	clk := ktime.NewManual()
	k := NewKernel(Config{NCPU: 1, Clock: clk})
	p := k.NewProcess("p", nil)
	k.SetAction(p, SIGVTALRM, SigCatch, func(Signal) {}, 0)
	got := make(chan Signal, 1)
	ready := make(chan struct{})
	step := make(chan struct{})
	_, d := animate(k, p, func(l *LWP) {
		k.Setitimer(l, ITimerVirtual, 50*time.Millisecond, 0)
		close(ready) // on CPU from here on
		<-step       // test advances the clock while we are "computing"
		k.Checkpoint(l)
		if ts, ok := k.TakeSignal(l); ok {
			got <- ts.Sig
		} else {
			got <- SIGNONE
		}
	})
	// Advance virtual time while the LWP is on CPU in user mode,
	// then let it hit a checkpoint, which charges the time.
	<-ready
	clk.Advance(60 * time.Millisecond)
	close(step)
	waitClosed(t, d, "worker")
	if s := <-got; s != SIGVTALRM {
		t.Fatalf("got %v, want SIGVTALRM", s)
	}
}

func TestRusageAccumulates(t *testing.T) {
	clk := ktime.NewManual()
	k := NewKernel(Config{NCPU: 1, Clock: clk})
	p := k.NewProcess("p", nil)
	step := make(chan struct{})
	ready := make(chan struct{})
	_, d := animate(k, p, func(l *LWP) {
		close(ready) // on CPU from here on
		<-step
		k.Checkpoint(l) // charge 10ms user
		k.SyscallEnter(l)
		<-step
		k.SyscallExit(l) // charge 20ms sys
	})
	<-ready
	clk.Advance(10 * time.Millisecond)
	step <- struct{}{}
	for {
		r := p.Getrusage()
		if r.UserTime >= 10*time.Millisecond {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	clk.Advance(20 * time.Millisecond)
	step <- struct{}{}
	waitClosed(t, d, "worker")
	r := p.Getrusage()
	if r.UserTime < 10*time.Millisecond {
		t.Fatalf("user time = %v, want >= 10ms", r.UserTime)
	}
	if r.SysTime < 20*time.Millisecond {
		t.Fatalf("sys time = %v, want >= 20ms", r.SysTime)
	}
}

func TestCPULimitSendsSIGXCPU(t *testing.T) {
	clk := ktime.NewManual()
	k := NewKernel(Config{NCPU: 1, Clock: clk})
	p := k.NewProcess("p", nil)
	p.SetCPULimit(Rlimit{Soft: 5 * time.Millisecond, Hard: RlimitInfinity})
	k.SetAction(p, SIGXCPU, SigCatch, func(Signal) {}, 0)
	got := make(chan Signal, 1)
	ready := make(chan struct{})
	step := make(chan struct{})
	_, d := animate(k, p, func(l *LWP) {
		close(ready)
		<-step
		k.Checkpoint(l)
		if ts, ok := k.TakeSignal(l); ok {
			got <- ts.Sig
		} else {
			got <- SIGNONE
		}
	})
	<-ready
	clk.Advance(10 * time.Millisecond)
	close(step)
	waitClosed(t, d, "worker")
	if s := <-got; s != SIGXCPU {
		t.Fatalf("got %v, want SIGXCPU", s)
	}
}

func TestProfilingChargesLabels(t *testing.T) {
	clk := ktime.NewManual()
	k := NewKernel(Config{NCPU: 1, Clock: clk})
	p := k.NewProcess("p", nil)
	buf := NewProfBuffer()
	ready := make(chan struct{})
	step := make(chan struct{})
	_, d := animate(k, p, func(l *LWP) {
		k.SetProfiling(l, buf)
		k.SetProfLabel(l, "compute")
		close(ready)
		<-step
		k.SetProfLabel(l, "idle") // charges "compute" up to now
	})
	<-ready
	clk.Advance(30 * time.Millisecond)
	close(step)
	waitClosed(t, d, "worker")
	if got := buf.Total("compute"); got < 30*time.Millisecond {
		t.Fatalf("compute charged %v, want >= 30ms", got)
	}
}

func TestPriocntlValidation(t *testing.T) {
	k := newTestKernel(1)
	p := k.NewProcess("p", nil)
	l, _ := k.NewLWP(p, ClassTS, 30)
	if err := k.Priocntl(l, ClassRT, -1); err == nil {
		t.Fatal("negative priority accepted")
	}
	if err := k.Priocntl(l, ClassRT, MaxUserPrio+1); err == nil {
		t.Fatal("too-large priority accepted")
	}
	if err := k.Priocntl(l, ClassRT, 10); err != nil {
		t.Fatal(err)
	}
	if l.Class() != ClassRT {
		t.Fatalf("class = %v, want RT", l.Class())
	}
	k.ExitLWP(l)
}

func TestBindCPUValidation(t *testing.T) {
	k := newTestKernel(2)
	p := k.NewProcess("p", nil)
	l, _ := k.NewLWP(p, ClassTS, 30)
	if err := k.BindCPU(l, 5); err == nil {
		t.Fatal("bind to nonexistent CPU accepted")
	}
	if err := k.BindCPU(l, 1); err != nil {
		t.Fatal(err)
	}
	if err := k.BindCPU(l, -1); err != nil {
		t.Fatal(err)
	}
	k.ExitLWP(l)
}

func TestBoundLWPRunsOnItsCPU(t *testing.T) {
	k := newTestKernel(2)
	p := k.NewProcess("p", nil)
	l, err := k.NewLWP(p, ClassTS, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.BindCPU(l, 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover(); k.ExitLWP(l) }()
		k.Start(l)
		for i := 0; i < 10; i++ {
			k.mu.Lock()
			cpu := l.cpu
			k.mu.Unlock()
			if cpu == nil || cpu.id != 1 {
				t.Errorf("bound LWP on cpu %v, want 1", cpu)
				return
			}
			k.Yield(l)
		}
	}()
	waitClosed(t, done, "bound LWP")
}

func TestSleepForManualClock(t *testing.T) {
	clk := ktime.NewManual()
	k := NewKernel(Config{NCPU: 1, Clock: clk})
	p := k.NewProcess("p", nil)
	slept := make(chan error, 1)
	started := make(chan struct{})
	_, d := animate(k, p, func(l *LWP) {
		close(started)
		slept <- k.SleepFor(l, 50*time.Millisecond)
	})
	<-started
	for clk.PendingTimers() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	clk.Advance(50 * time.Millisecond)
	waitClosed(t, d, "sleeper")
	if err := <-slept; err != nil {
		t.Fatal(err)
	}
}
