package sim

import (
	"fmt"
	"time"
)

// This file implements the paper's "Time, interval timers, and
// profiling" section: one real-time interval timer per process
// (SIGALRM), and two private interval timers per LWP — one that
// decrements in LWP user time (SIGVTALRM) and one that decrements in
// both user and system time (SIGPROF). Profiling is enabled per LWP,
// with optionally shared buffers.

// itimer is an interval timer. For virtual timers, remaining is
// decremented as the kernel charges CPU time; for the real timer, a
// clock timer fires.
type itimer struct {
	remaining time.Duration
	interval  time.Duration // reload value; 0 = one-shot
	sig       Signal
	realTimer interface{ Stop() bool } // real-time timers only
}

// decrement charges d against a virtual timer and posts its signal on
// expiry. Caller holds k.mu.
func (t *itimer) decrement(k *Kernel, l *LWP, d time.Duration) {
	if t.remaining <= 0 {
		return
	}
	t.remaining -= d
	if t.remaining > 0 {
		return
	}
	k.postSignalLocked(l.proc, t.sig, l)
	if t.interval > 0 {
		for t.remaining <= 0 {
			t.remaining += t.interval
		}
	} else {
		t.remaining = 0
	}
}

// Which selects an interval timer, as with setitimer(2).
type Which int

// Timer selectors.
const (
	// ITimerReal counts down in wall time and delivers SIGALRM to
	// the process. There is only one per process.
	ITimerReal Which = iota
	// ITimerVirtual counts down in LWP user time and delivers
	// SIGVTALRM to the LWP that owns it.
	ITimerVirtual
	// ITimerProf counts down in LWP user+system time and delivers
	// SIGPROF to the LWP that owns it.
	ITimerProf
)

// Setitimer arms (or with value 0 disarms) an interval timer. For
// ITimerReal, l identifies the calling LWP's process; for the virtual
// and profiling timers the timer belongs to l itself and is
// inherited-from-nothing (each LWP arms its own).
func (k *Kernel) Setitimer(l *LWP, which Which, value, interval time.Duration) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	p := l.proc
	switch which {
	case ITimerReal:
		if p.rtimer != nil && p.rtimer.realTimer != nil {
			p.rtimer.realTimer.Stop()
			p.rtimer = nil
		}
		if value <= 0 {
			return nil
		}
		t := &itimer{remaining: value, interval: interval, sig: SIGALRM}
		p.rtimer = t
		k.armRealLocked(p, t, value)
	case ITimerVirtual:
		if value <= 0 {
			l.vtimer = nil
			return nil
		}
		l.vtimer = &itimer{remaining: value, interval: interval, sig: SIGVTALRM}
	case ITimerProf:
		if value <= 0 {
			l.ptimer = nil
			return nil
		}
		l.ptimer = &itimer{remaining: value, interval: interval, sig: SIGPROF}
	default:
		return fmt.Errorf("sim: bad itimer selector %d", which)
	}
	return nil
}

func (k *Kernel) armRealLocked(p *Process, t *itimer, d time.Duration) {
	t.realTimer = k.clock.AfterFunc(d, func() {
		k.mu.Lock()
		defer k.mu.Unlock()
		if p.rtimer != t {
			return // disarmed or replaced
		}
		k.postSignalLocked(p, SIGALRM, nil)
		if t.interval > 0 {
			k.armRealLocked(p, t, t.interval)
		} else {
			p.rtimer = nil
		}
	})
}

// SetProfiling points the LWP's profiling at buf (nil disables) —
// paper: "Each LWP can set up a separate profiling buffer, but it may
// also share one if accumulated information is desired."
func (k *Kernel) SetProfiling(l *LWP, buf *ProfBuffer) {
	k.mu.Lock()
	l.prof = buf
	k.mu.Unlock()
}

// InheritProfiling copies the profiling setup from one LWP to another
// ("The state of profiling is inherited from the creating LWP").
func (k *Kernel) InheritProfiling(from, to *LWP) {
	k.mu.Lock()
	to.prof = from.prof
	to.profLabel = from.profLabel
	k.mu.Unlock()
}

// SetProfLabel labels the LWP's current activity for profiling
// attribution (the reproduction's stand-in for PC sampling).
func (k *Kernel) SetProfLabel(l *LWP, label string) {
	k.mu.Lock()
	k.chargeLocked(l) // charge the old label up to now
	l.profLabel = label
	k.mu.Unlock()
}

// SleepFor blocks the LWP for d, like a nanosleep(2) system call:
// interruptible, but not an indefinite wait (it has a known bound).
func (k *Kernel) SleepFor(l *LWP, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	k.SyscallEnter(l)
	defer k.SyscallExit(l)
	wq := NewWaitQ("nanosleep")
	if res := k.Sleep(l, wq, SleepOpts{Interruptible: true, Timeout: d}); res == WakeInterrupted {
		return ErrIntr
	}
	return nil
}
