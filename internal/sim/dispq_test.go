package sim

import (
	"fmt"
	"testing"
	"time"

	"sunosmt/internal/chaos"
	"sunosmt/internal/ktime"
	"sunosmt/internal/trace"
)

// Dispatcher conformance suite: white-box, table-driven checks of the
// per-CPU dispatch queues and the placement/steal/balance policy.
// Everything runs single-threaded under k.mu with hand-built CPU
// occupancy, so each case is a deterministic statement about policy,
// not a race against real animator goroutines.

func dispKernel(ncpu int) (*Kernel, *Process) {
	k := NewKernel(Config{NCPU: ncpu, LWPCreateCost: -1, KernelSwitchCost: -1})
	p := k.NewProcess("dispq", nil)
	return k, p
}

// occupyAll puts one filler LWP on every CPU directly, so LWPs made
// runnable afterwards stay queued.
func occupyAll(k *Kernel, p *Process) {
	k.mu.Lock()
	for _, c := range k.cpus {
		l := k.newLWPLocked(p, ClassTS, 0)
		k.setLWPStateLocked(l, k.clock.Now(), LWPRunnable)
		k.assignLocked(l, c)
	}
	k.mu.Unlock()
}

// queueOn makes a runnable LWP that queues on the given CPU (via the
// cache-affinity rule: lastCPU wins while every CPU is busy).
func queueOn(k *Kernel, p *Process, cpu int, class Class, prio int) *LWP {
	k.mu.Lock()
	defer k.mu.Unlock()
	l := k.newLWPLocked(p, class, prio)
	l.lastCPU = cpu
	k.makeRunnableLocked(l)
	if l.rqCPU != k.cpus[cpu] {
		panic(fmt.Sprintf("queueOn: lwp landed on %v, want cpu %d", l.rqCPU, cpu))
	}
	return l
}

// TestLwpRunqOrder checks the queue structure itself: strict priority
// order with FIFO among equals, across pushes and removals.
func TestLwpRunqOrder(t *testing.T) {
	type op struct {
		push   string // id to push, "" for pop
		lvl    int
		expect string // for pops: id expected at the head
	}
	cases := []struct {
		name string
		ops  []op
	}{
		{"fifo-among-equals", []op{
			{push: "a", lvl: 30}, {push: "b", lvl: 30}, {push: "c", lvl: 30},
			{expect: "a"}, {expect: "b"}, {expect: "c"},
		}},
		{"higher-level-first", []op{
			{push: "lo", lvl: 10}, {push: "hi", lvl: 50}, {push: "mid", lvl: 30},
			{expect: "hi"}, {expect: "mid"}, {expect: "lo"},
		}},
		{"interleaved", []op{
			{push: "a", lvl: 30}, {push: "b", lvl: 59}, {push: "c", lvl: 30},
			{expect: "b"}, {expect: "a"},
			{push: "d", lvl: 30},
			{expect: "c"}, {expect: "d"},
		}},
		{"rt-beats-ts", []op{
			{push: "ts", lvl: 59}, {push: "rt", lvl: 100},
			{expect: "rt"}, {expect: "ts"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r lwpRunq
			lwps := map[string]*LWP{}
			for _, o := range tc.ops {
				if o.push != "" {
					l := &LWP{}
					lwps[o.push] = l
					r.push(l, o.lvl)
					continue
				}
				h := r.head(r.top())
				if h != lwps[o.expect] {
					t.Fatalf("head = %p, want %q", h, o.expect)
				}
				r.unlink(h)
			}
			if r.n != 0 || r.top() != -1 {
				t.Fatalf("queue not drained: n=%d top=%d", r.n, r.top())
			}
		})
	}
}

// TestPlacementAffinityFirst checks placeLocked's rules: hard binding
// beats everything, then the last CPU when free (or when nothing is
// free), then any free CPU, then the shallowest queue.
func TestPlacementAffinityFirst(t *testing.T) {
	cases := []struct {
		name string
		// busy marks CPUs to occupy; depth queues extra LWPs there.
		busy    []int
		depth   map[int]int
		lastCPU int
		bindCPU int // -1 none
		want    int
	}{
		{"affine-free", []int{0, 2, 3}, nil, 1, -1, 1},
		{"affine-busy-prefers-free", []int{0, 1}, nil, 1, -1, 2},
		{"all-busy-affine-wins", []int{0, 1, 2, 3}, nil, 2, -1, 2},
		{"all-busy-shallowest", []int{0, 1, 2, 3},
			map[int]int{0: 2, 1: 1, 2: 3, 3: 1}, -1, -1, 1},
		{"bound-beats-affinity", []int{0, 1, 2, 3}, nil, 1, 3, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k, p := dispKernel(4)
			k.mu.Lock()
			for _, ci := range tc.busy {
				l := k.newLWPLocked(p, ClassTS, 0)
				k.setLWPStateLocked(l, k.clock.Now(), LWPRunnable)
				k.assignLocked(l, k.cpus[ci])
			}
			for ci, n := range tc.depth {
				for i := 0; i < n; i++ {
					q := k.newLWPLocked(p, ClassTS, 10)
					k.runqPushLocked(k.cpus[ci], q)
				}
			}
			l := k.newLWPLocked(p, ClassTS, 30)
			l.lastCPU = tc.lastCPU
			if tc.bindCPU >= 0 {
				l.boundCPU = k.cpus[tc.bindCPU]
			}
			got := k.placeLocked(l).id
			k.mu.Unlock()
			if got != tc.want {
				t.Fatalf("placed on cpu %d, want %d", got, tc.want)
			}
		})
	}
}

// TestStealTakesHighestPriority checks the pick policy of a free CPU:
// own head unless a sibling advertises strictly higher stealable work,
// in which case the highest-priority stealable LWP anywhere in the
// processor set is taken (and counted as a steal).
func TestStealTakesHighestPriority(t *testing.T) {
	cases := []struct {
		name string
		// queued[cpu] lists TS priorities queued there (in order).
		queued   map[int][]int
		pickFor  int
		wantPrio int // -1: expect no pick
		steal    bool
	}{
		{"steals-best-across-siblings",
			map[int][]int{1: {30, 50}, 2: {40}}, 0, 50, true},
		{"own-empty-steals-only-work",
			map[int][]int{2: {10}}, 0, 10, true},
		{"own-equal-keeps-own",
			map[int][]int{0: {50}, 1: {50}}, 0, 50, false},
		{"own-higher-keeps-own",
			map[int][]int{0: {50}, 1: {40}}, 0, 50, false},
		{"sibling-strictly-higher-steals",
			map[int][]int{0: {40}, 1: {50}}, 0, 50, true},
		{"nothing-anywhere",
			map[int][]int{}, 0, -1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k, p := dispKernel(3)
			occupyAll(k, p)
			for ci, prios := range tc.queued {
				for _, prio := range prios {
					queueOn(k, p, ci, ClassTS, prio)
				}
			}
			k.mu.Lock()
			c := k.cpus[tc.pickFor]
			c.lwp = nil // free the CPU without rescheduling
			before := c.steals
			l := k.pickForLocked(c)
			k.mu.Unlock()
			if tc.wantPrio < 0 {
				if l != nil {
					t.Fatalf("picked lwp prio %d, want none", l.userPrio)
				}
				return
			}
			if l == nil || l.userPrio != tc.wantPrio {
				t.Fatalf("picked %v, want prio %d", l, tc.wantPrio)
			}
			stole := c.steals > before
			if stole != tc.steal {
				t.Fatalf("steal = %v, want %v", stole, tc.steal)
			}
		})
	}
}

// TestPriocntlRequeues checks the remove-modify-push discipline: a
// class or priority change on a queued LWP moves it to its new level
// immediately, on the same CPU's queue.
func TestPriocntlRequeues(t *testing.T) {
	k, p := dispKernel(2)
	occupyAll(k, p)
	a := queueOn(k, p, 1, ClassTS, 30)
	b := queueOn(k, p, 1, ClassTS, 30)
	if err := k.Priocntl(b, ClassRT, 10); err != nil {
		t.Fatal(err)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if !b.rqOn || b.rqCPU != k.cpus[1] {
		t.Fatalf("b not queued on cpu 1 after priocntl")
	}
	if b.rqLevel != rtMinGlobal+10 {
		t.Fatalf("b at level %d, want %d", b.rqLevel, rtMinGlobal+10)
	}
	if a.rqLevel != 30 {
		t.Fatalf("a moved to level %d", a.rqLevel)
	}
	// b now outranks a: it must be the pick.
	c := k.cpus[1]
	c.lwp = nil
	if l := k.pickForLocked(c); l != b {
		t.Fatalf("pick after priocntl = %v, want the RT lwp", l)
	}
}

// TestBindExcludesSteal checks both exclusion rules: a hard CPU
// binding hides the LWP from sibling CPUs, and a processor-set
// binding hides it from CPUs outside the set.
func TestBindExcludesSteal(t *testing.T) {
	t.Run("cpu-bound-never-stolen", func(t *testing.T) {
		k, p := dispKernel(2)
		occupyAll(k, p)
		k.mu.Lock()
		l := k.newLWPLocked(p, ClassTS, 50)
		l.boundCPU = k.cpus[1]
		k.makeRunnableLocked(l)
		if l.rqCPU != k.cpus[1] {
			t.Fatalf("bound lwp queued on %v", l.rqCPU)
		}
		c0 := k.cpus[0]
		c0.lwp = nil
		got := k.pickForLocked(c0)
		k.mu.Unlock()
		if got != nil {
			t.Fatalf("cpu 0 stole a hard-bound lwp: %v", got)
		}
	})
	t.Run("pset-confines-steal", func(t *testing.T) {
		k, p := dispKernel(4)
		ps := k.PsetCreate()
		for _, ci := range []int{2, 3} {
			if err := k.PsetAssign(ps, ci); err != nil {
				t.Fatal(err)
			}
		}
		occupyAll(k, p)
		k.mu.Lock()
		l := k.newLWPLocked(p, ClassTS, 50)
		k.mu.Unlock()
		if err := k.PsetBind(l, ps); err != nil {
			t.Fatal(err)
		}
		k.mu.Lock()
		k.makeRunnableLocked(l)
		if got := l.rqCPU.id; got != 2 && got != 3 {
			t.Fatalf("pset-bound lwp queued on cpu %d", got)
		}
		// A free CPU in the default set must not see it...
		c0 := k.cpus[0]
		c0.lwp = nil
		cross := k.pickForLocked(c0)
		// ...while a free CPU in the set takes it.
		c3 := k.cpus[3]
		c3.lwp = nil
		own := k.pickForLocked(c3)
		k.mu.Unlock()
		if cross != nil {
			t.Fatalf("default-set cpu stole across pset: %v", cross)
		}
		if own != l {
			t.Fatalf("pset cpu picked %v, want the bound lwp", own)
		}
	})
}

// TestClassSemantics pins the class priority laws: TS priorities sink
// with accumulated usage down to the band floor, RT and SYS are fixed
// regardless of usage, and RT always outranks any TS priority.
func TestClassSemantics(t *testing.T) {
	cases := []struct {
		name  string
		class Class
		prio  int
		usage time.Duration
		want  int
	}{
		{"ts-fresh", ClassTS, 50, 0, 50},
		{"ts-aged", ClassTS, 50, 50 * time.Millisecond, 40},
		{"ts-floor", ClassTS, 5, time.Second, 0},
		{"sys-fixed", ClassSYS, 20, time.Second, 80},
		{"rt-fixed", ClassRT, 10, time.Second, 110},
		{"rt-above-every-ts", ClassRT, 0, 0, 100},
	}
	k, p := dispKernel(1)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k.mu.Lock()
			l := k.newLWPLocked(p, tc.class, tc.prio)
			l.cpuUsage = tc.usage
			got := l.globalPrio()
			k.mu.Unlock()
			if got != tc.want {
				t.Fatalf("globalPrio = %d, want %d", got, tc.want)
			}
			if tc.class == ClassRT && got <= tsMaxGlobal {
				t.Fatalf("RT priority %d not above the TS band", got)
			}
		})
	}
}

// TestBalancerRelevelsAndEvens drives the virtual clock past the
// balance period and checks both balancer duties: queued TS LWPs whose
// decayed usage changed their priority move to their current level,
// and depths within a pset even out.
func TestBalancerRelevelsAndEvens(t *testing.T) {
	clk := ktime.NewManual()
	k := NewKernel(Config{NCPU: 2, Clock: clk, LWPCreateCost: -1, KernelSwitchCost: -1})
	p := k.NewProcess("balance", nil)
	occupyAll(k, p)
	var queued []*LWP
	for i := 0; i < 4; i++ {
		queued = append(queued, queueOn(k, p, 0, ClassTS, 40))
	}
	k.mu.Lock()
	// Age one queued LWP after it was queued, so its queue level is
	// stale until the balancer re-levels it.
	aged := queued[0]
	aged.cpuUsage = 50 * time.Millisecond // 10 levels of penalty
	staleLvl := aged.rqLevel
	k.mu.Unlock()

	clk.Advance(k.cfg.BalancePeriod + time.Millisecond)
	k.mu.Lock()
	k.maybeBalanceLocked()
	d0, d1 := k.cpus[0].runq.n, k.cpus[1].runq.n
	newLvl := aged.rqLevel
	moves := k.balanceMoves
	k.mu.Unlock()

	if newLvl != staleLvl-10 {
		t.Errorf("aged lwp at level %d, want %d", newLvl, staleLvl-10)
	}
	if d0+d1 != 4 || d0 > d1+1 || d1 > d0+1 {
		t.Errorf("depths not evened: cpu0=%d cpu1=%d", d0, d1)
	}
	if moves == 0 {
		t.Errorf("balancer reported no moves")
	}
}

// TestDispatchDeterminism replays a scripted scheduling workload twice
// under the same chaos seed and requires bit-identical event-ring
// journals — steals, migrations, balancer timing and all. The script
// runs single-threaded under the kernel lock on a manual clock, so the
// only nondeterminism available is the chaos source itself.
func TestDispatchDeterminism(t *testing.T) {
	run := func(seed uint64) []trace.Record {
		clk := ktime.NewManual()
		rings := trace.NewRings(4, 1024, clk.Now)
		k := NewKernel(Config{
			NCPU: 4, Clock: clk, Rings: rings,
			LWPCreateCost: -1, KernelSwitchCost: -1,
			Chaos: chaos.New(chaos.DefaultConfig(seed)),
		})
		p := k.NewProcess("det", nil)
		var lwps []*LWP
		k.mu.Lock()
		for i := 0; i < 12; i++ {
			l := k.newLWPLocked(p, ClassTS, 20+(i*7)%40)
			if i%4 == 0 {
				l.class = ClassRT
				l.userPrio = i
			}
			lwps = append(lwps, l)
			k.makeRunnableLocked(l)
		}
		k.mu.Unlock()
		for step := 0; step < 200; step++ {
			clk.Advance(time.Millisecond)
			k.mu.Lock()
			l := lwps[step%len(lwps)]
			switch {
			case l.cpu != nil:
				// Preempt it back to its queue.
				k.releaseCPULocked(l, LWPRunnable)
				k.enqueueLocked(l)
				k.scheduleLocked()
			case l.rqOn && step%3 == 0:
				// Re-place it with fresh affinity, as a wakeup would.
				k.runqRemoveLocked(l)
				l.lastCPU = (step / 3) % 4
				k.enqueueLocked(l)
				k.scheduleLocked()
			}
			k.mu.Unlock()
		}
		recs, _ := rings.Snapshot()
		return recs
	}

	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("no events recorded")
	}
	if len(a) != len(b) {
		t.Fatalf("journal lengths differ: %d vs %d", len(a), len(b))
	}
	steals := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("journals diverge at %d:\n  %v\n  %v", i, a[i], b[i])
		}
		if a[i].Kind == trace.EvSteal {
			steals++
		}
	}
	if steals == 0 {
		t.Error("workload exercised no steals; the determinism check is vacuous")
	}
}
