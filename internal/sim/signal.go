package sim

import "fmt"

// Signal is a SVR4-style signal number. The numbering follows SunOS 5
// closely; SIGWAITING is the new signal introduced by the paper, sent
// to a process when all of its LWPs are blocked in indefinite waits.
type Signal int

// Signal numbers.
const (
	SIGNONE Signal = iota
	SIGHUP
	SIGINT
	SIGQUIT
	SIGILL
	SIGTRAP
	SIGABRT
	SIGEMT
	SIGFPE
	SIGKILL
	SIGBUS
	SIGSEGV
	SIGSYS
	SIGPIPE
	SIGALRM
	SIGTERM
	SIGUSR1
	SIGUSR2
	SIGCHLD
	SIGPWR
	SIGWINCH
	SIGURG
	SIGIO
	SIGSTOP
	SIGTSTP
	SIGCONT
	SIGTTIN
	SIGTTOU
	SIGVTALRM
	SIGPROF
	SIGXCPU
	SIGXFSZ
	SIGWAITING

	// NSIG is one greater than the largest signal number.
	NSIG
)

var sigNames = [NSIG]string{
	SIGHUP: "SIGHUP", SIGINT: "SIGINT", SIGQUIT: "SIGQUIT", SIGILL: "SIGILL",
	SIGTRAP: "SIGTRAP", SIGABRT: "SIGABRT", SIGEMT: "SIGEMT", SIGFPE: "SIGFPE",
	SIGKILL: "SIGKILL", SIGBUS: "SIGBUS", SIGSEGV: "SIGSEGV", SIGSYS: "SIGSYS",
	SIGPIPE: "SIGPIPE", SIGALRM: "SIGALRM", SIGTERM: "SIGTERM", SIGUSR1: "SIGUSR1",
	SIGUSR2: "SIGUSR2", SIGCHLD: "SIGCHLD", SIGPWR: "SIGPWR", SIGWINCH: "SIGWINCH",
	SIGURG: "SIGURG", SIGIO: "SIGIO", SIGSTOP: "SIGSTOP", SIGTSTP: "SIGTSTP",
	SIGCONT: "SIGCONT", SIGTTIN: "SIGTTIN", SIGTTOU: "SIGTTOU", SIGVTALRM: "SIGVTALRM",
	SIGPROF: "SIGPROF", SIGXCPU: "SIGXCPU", SIGXFSZ: "SIGXFSZ", SIGWAITING: "SIGWAITING",
}

// String implements fmt.Stringer.
func (s Signal) String() string {
	if s > 0 && s < NSIG && sigNames[s] != "" {
		return sigNames[s]
	}
	return fmt.Sprintf("SIG(%d)", int(s))
}

// Valid reports whether s names a real signal.
func (s Signal) Valid() bool { return s > 0 && s < NSIG }

// IsTrap reports whether the signal is in the paper's "trap" category:
// caused synchronously by the operation of a thread and handled only
// by the thread that caused it. Everything else is an "interrupt".
func (s Signal) IsTrap() bool {
	switch s {
	case SIGILL, SIGTRAP, SIGEMT, SIGFPE, SIGBUS, SIGSEGV, SIGSYS:
		return true
	}
	return false
}

// Sigset is a set of signals, one bit per signal number.
type Sigset uint64

// MakeSigset builds a set from the given signals.
func MakeSigset(sigs ...Signal) Sigset {
	var s Sigset
	for _, sig := range sigs {
		s = s.Add(sig)
	}
	return s
}

// Add returns the set with sig added.
func (ss Sigset) Add(sig Signal) Sigset { return ss | 1<<uint(sig) }

// Del returns the set with sig removed.
func (ss Sigset) Del(sig Signal) Sigset { return ss &^ (1 << uint(sig)) }

// Has reports whether sig is in the set.
func (ss Sigset) Has(sig Signal) bool { return ss&(1<<uint(sig)) != 0 }

// Union returns the union of the two sets.
func (ss Sigset) Union(o Sigset) Sigset { return ss | o }

// Minus returns ss with every member of o removed.
func (ss Sigset) Minus(o Sigset) Sigset { return ss &^ o }

// Empty reports whether no signals are in the set.
func (ss Sigset) Empty() bool { return ss == 0 }

// Lowest returns the lowest-numbered signal in the set, or SIGNONE.
func (ss Sigset) Lowest() Signal {
	if ss == 0 {
		return SIGNONE
	}
	for sig := Signal(1); sig < NSIG; sig++ {
		if ss.Has(sig) {
			return sig
		}
	}
	return SIGNONE
}

// Signals returns the members of the set in ascending order.
func (ss Sigset) Signals() []Signal {
	var out []Signal
	for sig := Signal(1); sig < NSIG; sig++ {
		if ss.Has(sig) {
			out = append(out, sig)
		}
	}
	return out
}

// SigHow selects how thread/LWP signal masks are combined, mirroring
// sigprocmask(2).
type SigHow int

// Mask-manipulation modes.
const (
	SigBlock SigHow = iota
	SigUnblock
	SigSetMask
)

// ApplyMask combines old and set according to how.
func ApplyMask(old Sigset, how SigHow, set Sigset) Sigset {
	switch how {
	case SigBlock:
		return old.Union(set)
	case SigUnblock:
		return old.Minus(set)
	case SigSetMask:
		return set
	}
	return old
}

// unmaskable are signals whose delivery cannot be blocked or ignored.
const unmaskable = Sigset(1<<uint(SIGKILL) | 1<<uint(SIGSTOP))

// DefaultAction describes what a signal does to a process when its
// disposition is SIG_DFL.
type DefaultAction int

// Default dispositions.
const (
	ActExit DefaultAction = iota
	ActCore
	ActIgnore
	ActStop
	ActContinue
)

// DefaultActionOf returns the SIG_DFL behaviour of sig.
func DefaultActionOf(sig Signal) DefaultAction {
	switch sig {
	case SIGQUIT, SIGILL, SIGTRAP, SIGABRT, SIGEMT, SIGFPE, SIGBUS, SIGSEGV,
		SIGSYS, SIGXCPU, SIGXFSZ:
		return ActCore
	case SIGCHLD, SIGPWR, SIGWINCH, SIGURG, SIGWAITING:
		return ActIgnore
	case SIGSTOP, SIGTSTP, SIGTTIN, SIGTTOU:
		return ActStop
	case SIGCONT:
		return ActContinue
	}
	return ActExit
}

// Disposition is a per-process, per-signal handler setting. As in the
// paper, all threads in an address space share the set of signal
// handlers set up by signal() and its variants.
type Disposition int

// Handler dispositions.
const (
	SigDfl Disposition = iota
	SigIgn
	SigCatch
)

// sigaction is a process's per-signal handler slot.
type sigaction struct {
	disp Disposition
	// handler runs in the context of whichever thread the library
	// routes the signal to; the kernel only records it.
	handler func(Signal)
	// cookie is opaque library data carried with the action; the
	// threads library stores its thread-context handler here.
	cookie any
	// mask is added to the handling context's mask for the duration
	// of the handler, as with sigaction(2).
	mask Sigset
}
