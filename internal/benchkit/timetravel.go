package benchkit

import (
	"time"

	"sunosmt/mt"
)

// SleepSweep runs a seeded sweep of a sleep-heavy workload — the
// shape of a chaos timeout sweep, where nearly all of every seed's
// wall-clock time is LWPs blocked in timed kernel sleeps — and
// returns the total real time for all seeds. With ff the machines run
// on the virtual fast-forward clock: whenever every LWP is idle with
// a timer pending, the clock jumps to the next deadline, so each seed
// costs only its compute time. The real/fast-forward ratio is the
// speedup mtbench's -fastforward flag gates.
func SleepSweep(seeds int, ff bool) time.Duration {
	start := time.Now()
	for s := 1; s <= seeds; s++ {
		sleepSweepSeed(uint64(s), ff)
	}
	return time.Since(start)
}

// sleepSweepSeed is one sweep iteration: four bound threads each
// taking three timed sleeps of 10-25ms under chaos timer jitter, so a
// seed spends ~75ms of virtual time almost entirely asleep. Bound
// threads give every sleeper its own LWP (a timed kernel sleep holds
// its LWP, and concurrent sleepers are what make the all-idle jump
// predicate interesting); chaos perturbs the deadline order seed to
// seed.
func sleepSweepSeed(seed uint64, ff bool) {
	sys := mt.NewSystem(mt.Options{
		NCPU:             1,
		FastForward:      ff,
		Chaos:            mt.NewChaos(seed),
		LWPCreateCost:    -1,
		KernelSwitchCost: -1,
	})
	ch := make(chan *mt.Proc, 1)
	p, err := sys.Spawn("sleep-sweep", func(t *mt.Thread, _ any) {
		p := <-ch
		r := t.Runtime()
		const workers = 4
		ids := make([]mt.ThreadID, 0, workers)
		for i := 0; i < workers; i++ {
			i := i
			c, err := r.Create(func(c *mt.Thread, _ any) {
				for j := 0; j < 3; j++ {
					// Chaos may EINTR an interruptible sleep; a
					// shortened sleep is fine, both clock modes see
					// the same injected schedule.
					_ = p.Sleep(c, time.Duration(10+5*i)*time.Millisecond)
				}
			}, nil, mt.CreateOpts{Flags: mt.ThreadWait | mt.ThreadBindLWP})
			if err != nil {
				panic(err)
			}
			ids = append(ids, c.ID())
		}
		for _, id := range ids {
			t.Wait(id)
		}
	}, nil, mt.ProcConfig{DefaultStackSize: 4096})
	if err != nil {
		panic(err)
	}
	ch <- p
	p.WaitExit()
}

// Figure11 runs the sleep-heavy sweep with the real clock and again
// with fast-forward (not in the paper — the virtual-time tier). seeds
// defaults to 100. The per-op values are real milliseconds per seed;
// the second row's ratio column in the printed table is the inverse
// of the fast-forward speedup.
func Figure11(seeds int) []Row {
	if seeds <= 0 {
		seeds = 100
	}
	wall := SleepSweep(seeds, false)
	ff := SleepSweep(seeds, true)
	return unmeasured([]Row{
		{Name: "Sleep sweep, real clock", Measured: wall, Ops: seeds},
		{Name: "Sleep sweep, fast-forward", Measured: ff, Ops: seeds},
	})
}
