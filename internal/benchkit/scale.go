package benchkit

import (
	"runtime"
	"time"

	"sunosmt/mt"
)

// This file holds the million-thread scale tier (Figure 10, not in
// the paper): the paper's "tens of thousands of threads" ambition
// pushed two orders of magnitude further. The tier exists to measure
// the per-thread memory story — reserve-don't-commit stacks, pooled
// Thread shells — at a scale where any per-thread waste or any
// O(n) step in the create/exit path dominates.

// ScaleStats carries the non-time results of the scale tier, used by
// mtbench's -memceiling gate and EXPERIMENTS.md.
type ScaleStats struct {
	Threads int
	// ReservedPerThread is the address-space bytes one idle,
	// never-run thread costs (stack reservation + red-zone guard).
	ReservedPerThread int64
	// CommittedPerThread is the committed (simulated-resident) bytes
	// one never-run thread costs. The reserve/commit split makes
	// this 0: no page commits until the thread first runs.
	CommittedPerThread int64
	// CreateAllocsPerThread is the host heap allocations per mass
	// create. Mass creation is not the zero-alloc steady state (the
	// freelist starts empty), so this is the cold-path cost.
	CreateAllocsPerThread float64
	// RingPeakCommitted is the address space's high-water committed
	// bytes while the thread ring ran n threads through dispatch —
	// the number the nightly RSS ceiling gates.
	RingPeakCommitted int64
}

// countAllocs runs f and reports the host heap allocations performed
// during it. The count spans the whole scenario — harness setup
// included — so it is a coarse diagnostic; the precise steady-state
// claims are pinned by testing.AllocsPerRun unit tests in core.
func countAllocs(f func() time.Duration) (time.Duration, int64) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	d := f()
	runtime.ReadMemStats(&m1)
	return d, int64(m1.Mallocs - m0.Mallocs)
}

// ScaleCreate mass-creates n stopped threads in one process and
// reports the creation time plus the address-space accounting. The
// threads are created THREAD_STOPPED and never dispatched: each one
// costs its stack reservation but not a single committed page — the
// overcommit that makes a million-thread process affordable. The
// process is torn down with exit(2) (stopped threads never exit on
// their own).
func ScaleCreate(n int) (elapsed time.Duration, reserved, committed int64) {
	sys := mt.NewSystem(mt.Options{NCPU: 2})
	done := make(chan struct{})
	ch := make(chan *mt.Proc, 1)
	p, err := sys.Spawn("scale", func(t *mt.Thread, _ any) {
		p := <-ch
		r := t.Runtime()
		res0, com0 := p.AS.Reserved(), p.AS.Committed()
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := r.Create(noop, nil, mt.CreateOpts{Flags: mt.ThreadStop}); err != nil {
				panic(err)
			}
		}
		elapsed = time.Since(start)
		reserved = (p.AS.Reserved() - res0) / int64(n)
		committed = (p.AS.Committed() - com0) / int64(n)
		close(done)
		t.ExitProcess(0)
	}, nil, mt.ProcConfig{})
	if err != nil {
		panic(err)
	}
	ch <- p
	<-done
	p.WaitExit()
	return elapsed, reserved, committed
}

// ThreadRing runs n threads through a full lifecycle in a chain: each
// thread is created stopped, and when continued it continues the next
// thread and exits. n sequential dispatch+exit cycles exercise the
// shell freelist, the animator pool, and the stack cache at scale;
// the returned peak-committed number is the high-water simulated
// resident footprint — bounded by the few threads alive at once, not
// by n.
//
// The ring is created in reverse index order so that ring[0] — the
// first to run and exit — owns the most recent (lowest-base) stack
// carve: exits then unmap from the tail of the segment list, the O(1)
// splice path.
func ThreadRing(n int) (elapsed time.Duration, peakCommitted int64) {
	sys := mt.NewSystem(mt.Options{NCPU: 2})
	done := make(chan struct{})
	ch := make(chan *mt.Proc, 1)
	p, err := sys.Spawn("ring", func(t *mt.Thread, _ any) {
		defer close(done)
		p := <-ch
		r := t.Runtime()
		var fin mt.Sema
		hop := func(c *mt.Thread, arg any) {
			if next, ok := arg.(*mt.Thread); ok {
				if err := c.Runtime().Continue(next); err != nil {
					panic(err)
				}
				return
			}
			fin.V(c)
		}
		var next any // ring[i] hands control to ring[i+1]; the last to fin
		var first *mt.Thread
		for i := n - 1; i >= 0; i-- {
			c, err := r.Create(hop, next, mt.CreateOpts{Flags: mt.ThreadStop})
			if err != nil {
				panic(err)
			}
			next, first = c, c
		}
		start := time.Now()
		if err := r.Continue(first); err != nil {
			panic(err)
		}
		fin.P(t)
		elapsed = time.Since(start)
		peakCommitted = p.AS.PeakCommitted()
	}, nil, mt.ProcConfig{})
	if err != nil {
		panic(err)
	}
	ch <- p
	<-done
	p.WaitExit()
	return elapsed, peakCommitted
}

// PairChain churns `pairs` short-lived thread pairs, each ping-ponging
// `rounds` semaphore rounds before being waited — the steady-state
// create/sync/exit/reap mix a thread-per-request server generates,
// run long enough that every pair after the first recycles its
// predecessors' shells and stacks. The duration covers
// pairs*rounds*2 synchronizations.
func PairChain(pairs, rounds int) time.Duration {
	sys := mt.NewSystem(mt.Options{NCPU: 2})
	var elapsed time.Duration
	done := make(chan struct{})
	p, err := sys.Spawn("chain", func(t *mt.Thread, _ any) {
		defer close(done)
		r := t.Runtime()
		start := time.Now()
		for i := 0; i < pairs; i++ {
			var s1, s2 mt.Sema
			a, err := r.Create(func(c *mt.Thread, _ any) {
				for j := 0; j < rounds; j++ {
					s2.P(c)
					s1.V(c)
				}
			}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
			if err != nil {
				panic(err)
			}
			b, err := r.Create(func(c *mt.Thread, _ any) {
				for j := 0; j < rounds; j++ {
					s2.V(c)
					s1.P(c)
				}
			}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
			if err != nil {
				panic(err)
			}
			t.Wait(a.ID())
			t.Wait(b.ID())
		}
		elapsed = time.Since(start)
	}, nil, mt.ProcConfig{DefaultStackSize: 4096})
	if err != nil {
		panic(err)
	}
	<-done
	p.WaitExit()
	return elapsed
}

// Figure10 runs the scale tier at n threads (default one million) and
// returns the table rows plus the raw stats. Non-time metrics ride in
// Row's duration/ops encoding the way Figure9's steal rate does:
// "KB per thread" rows carry the byte count as microseconds so the
// baseline gate watches memory regressions exactly like time ones.
func Figure10(n int) ([]Row, ScaleStats) {
	if n <= 0 {
		n = 1_000_000
	}
	var stats ScaleStats
	stats.Threads = n

	createT, allocs := countAllocs(func() time.Duration {
		d, res, com := ScaleCreate(n)
		stats.ReservedPerThread, stats.CommittedPerThread = res, com
		return d
	})
	stats.CreateAllocsPerThread = float64(allocs) / float64(n)

	ringT, peak := ThreadRing(n)
	stats.RingPeakCommitted = peak

	pairs := max(n/16, 1)
	const pairRounds = 4
	chainT := PairChain(pairs, pairRounds)

	waiters := max(min(n/16, 65536), 1)
	const bcRounds = 2
	bcT := BroadcastWake(waiters, bcRounds)

	kb := func(b int64) time.Duration {
		return time.Duration(b/1024) * time.Microsecond
	}
	rows := []Row{
		{Name: "Mass create (stopped)", Measured: createT, Ops: n, Allocs: allocs},
		{Name: "Reserved KB per thread", Measured: kb(stats.ReservedPerThread), Ops: 1, Allocs: -1},
		{Name: "Committed KB per thread (idle)", Measured: kb(stats.CommittedPerThread), Ops: 1, Allocs: -1},
		{Name: "Thread ring hop", Measured: ringT, Ops: n, Allocs: -1},
		{Name: "Ring peak committed KB", Measured: kb(peak), Ops: 1, Allocs: -1},
		{Name: "Pairwise sync chain", Measured: chainT, Ops: pairs * pairRounds * 2, Allocs: -1},
		{Name: "Mass broadcast wake", Measured: bcT, Ops: waiters * bcRounds, Allocs: -1},
	}
	return rows, stats
}
