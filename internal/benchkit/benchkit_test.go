package benchkit

import (
	"strings"
	"testing"
)

// Small-n smoke tests: the measurement procedures complete, return
// positive durations, and keep the paper's coarse ordering.

func TestFigure5Smoke(t *testing.T) {
	rows := Figure5(200)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Measured <= 0 || r.Ops <= 0 {
			t.Fatalf("row %q not measured: %+v", r.Name, r)
		}
	}
	if rows[1].PerOp() <= rows[0].PerOp() {
		t.Fatalf("bound create (%v) not slower than unbound (%v)",
			rows[1].PerOp(), rows[0].PerOp())
	}
}

func TestFigure6Smoke(t *testing.T) {
	rows := Figure6(200)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Measured <= 0 {
			t.Fatalf("row %q not measured", r.Name)
		}
	}
	// Order-tolerant assertions. The robust invariant is the order-of-
	// magnitude gap between the setjmp baseline and either parking
	// sync path. The paper's unbound-vs-bound adjacency is NOT gated
	// strictly: the two rows sit within a few percent of each other in
	// this simulation and flip freely under -race on one-core hosts,
	// so the gate only requires them to be in the same ballpark (a
	// bound path that got 2x cheaper than unbound stopped doing its
	// kernel round trips — that is a real regression).
	base, unbound, bound := rows[0].PerOp(), rows[1].PerOp(), rows[2].PerOp()
	if unbound <= base {
		t.Fatalf("unbound sync (%v) not slower than setjmp baseline (%v)", unbound, base)
	}
	if bound <= base {
		t.Fatalf("bound sync (%v) not slower than setjmp baseline (%v)", bound, base)
	}
	if bound < unbound/2 {
		t.Fatalf("bound sync (%v) less than half of unbound (%v): kernel path lost", bound, unbound)
	}
}

func TestFigure8Smoke(t *testing.T) {
	rows := Figure8(100)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Measured <= 0 || r.Ops <= 0 {
			t.Fatalf("row %q not measured: %+v", r.Name, r)
		}
	}
}

// TestFigure9Smoke checks the structural property behind the fig 9
// rows: with low-priority spinners holding every CPU, each ping-pong
// wakeup must queue behind them, so the run exercises preemption and
// stealing and pairs at least some wakeups with cross-CPU dispatches.
// The wall-clock magnitudes are noisy on a shared host (CI gates them
// only loosely); steals happening at all is the deterministic part.
func TestFigure9Smoke(t *testing.T) {
	dispatches, steals, lat := StealWakeup(200)
	if dispatches == 0 {
		t.Fatal("no dispatches recorded")
	}
	if steals == 0 {
		t.Fatal("no steals: spinner occupancy no longer forces queued wakeups")
	}
	if len(lat) == 0 {
		t.Fatal("no cross-CPU wakeup latency samples paired from the event rings")
	}
}

func TestFormatTableShape(t *testing.T) {
	rows := []Row{
		{Name: "first", PaperUS: 10, Measured: 1000, Ops: 1},
		{Name: "second", PaperUS: 40, Measured: 4000, Ops: 1},
	}
	out := FormatTable("Title", rows)
	if !strings.Contains(out, "Title") || !strings.Contains(out, "first") {
		t.Fatalf("table missing pieces:\n%s", out)
	}
	// Ratio column of the second row: 4.00 both measured and paper.
	if !strings.Contains(out, "4.00") {
		t.Fatalf("ratio missing:\n%s", out)
	}
}

func TestDefaultIterationCounts(t *testing.T) {
	// n <= 0 falls back to defaults without panicking (tiny check
	// via the Ops fields of a real run would be slow; validate the
	// guard arithmetic instead).
	rows := Figure5(1)
	if rows[1].Ops < 1 {
		t.Fatalf("bound ops = %d", rows[1].Ops)
	}
}
