// Package benchkit implements the measurement procedures of the
// paper's Performance section, shared by the root bench_test.go and
// cmd/mtbench (which prints the paper's Figure 5 and Figure 6 tables
// with the same rows and ratio columns).
//
// The paper measured a 25 MHz SPARCstation 1+ with a microsecond
// timer; we measure the simulation substrate on the host clock.
// Absolute numbers are not comparable — EXPERIMENTS.md records both —
// but the *shape* (which operations involve the kernel and are an
// order of magnitude heavier) is the reproduced result.
package benchkit

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"sunosmt/mt"
)

// noop is the empty thread body used by creation benchmarks.
func noop(*mt.Thread, any) {}

// UnboundCreate measures creating n unbound threads with a cached
// default stack (the Figure 5 "Unbound thread create" row: creation
// time only, no first context switch, no kernel involvement).
//
// Each thread gets its own stack from the library's cache: thread
// local storage is carved from the top of the stack, so handing every
// thread the same caller-supplied slice would alias their TLS.
func UnboundCreate(n int) time.Duration {
	sys := mt.NewSystem(mt.Options{NCPU: 2})
	var elapsed time.Duration
	done := make(chan struct{})
	var p *mt.Proc
	var err error
	p, err = sys.Spawn("bench", func(t *mt.Thread, _ any) {
		defer close(done)
		r := t.Runtime()
		const batch = 8192
		for remaining := n; remaining > 0; {
			k := min(batch, remaining)
			start := time.Now()
			for i := 0; i < k; i++ {
				if _, err := r.Create(noop, nil, mt.CreateOpts{}); err != nil {
					panic(err)
				}
			}
			elapsed += time.Since(start)
			remaining -= k
			// Drain outside the timed region so queued threads
			// do not accumulate without bound.
			for r.RunnableThreads() > 0 {
				t.Yield()
			}
		}
	}, nil, mt.ProcConfig{DefaultStackSize: 4096})
	if err != nil {
		panic(err)
	}
	<-done
	p.WaitExit()
	return elapsed
}

// BoundCreate measures creating n bound threads (the Figure 5 "Bound
// thread create" row): each creation calls into the kernel to create
// an LWP to run the thread.
func BoundCreate(n int) time.Duration {
	sys := mt.NewSystem(mt.Options{NCPU: 2})
	var elapsed time.Duration
	done := make(chan struct{})
	var p *mt.Proc
	var err error
	p, err = sys.Spawn("bench", func(t *mt.Thread, _ any) {
		defer close(done)
		r := t.Runtime()
		const batch = 256
		for remaining := n; remaining > 0; {
			k := min(batch, remaining)
			created := make([]*mt.Thread, 0, k)
			start := time.Now()
			for i := 0; i < k; i++ {
				c, err := r.Create(noop, nil, mt.CreateOpts{
					Flags: mt.ThreadWait | mt.ThreadBindLWP,
				})
				if err != nil {
					panic(err)
				}
				created = append(created, c)
			}
			elapsed += time.Since(start)
			remaining -= k
			for _, c := range created {
				t.Wait(c.ID())
			}
		}
	}, nil, mt.ProcConfig{DefaultStackSize: 4096})
	if err != nil {
		panic(err)
	}
	<-done
	p.WaitExit()
	return elapsed
}

// SetjmpLongjmp measures the paper's baseline for thread switching: a
// routine that does a setjmp() and longjmp() to itself.
func SetjmpLongjmp(n int) time.Duration {
	sys := mt.NewSystem(mt.Options{NCPU: 1})
	var elapsed time.Duration
	done := make(chan struct{})
	p, err := sys.Spawn("bench", func(t *mt.Thread, _ any) {
		defer close(done)
		start := time.Now()
		for i := 0; i < n; i++ {
			t.Setjmp(func(jb *mt.Jmpbuf) {
				t.Longjmp(jb, 1)
			})
		}
		elapsed = time.Since(start)
	}, nil, mt.ProcConfig{})
	if err != nil {
		panic(err)
	}
	<-done
	p.WaitExit()
	return elapsed
}

// SyncPingPong measures the paper's Figure 6 synchronization
// procedure: two threads synchronize via two semaphores
// (sema_v(&s1); sema_p(&s2) against sema_p(&s2); sema_v(&s1)), so n
// rounds contain 2n synchronizations. bound selects bound threads
// (each on its own LWP, blocking through the kernel) versus unbound
// threads multiplexed on one LWP (pure user-level switching).
func SyncPingPong(n int, bound bool) time.Duration {
	// Uniprocessor, like the paper's measurement machine: bound-thread
	// synchronization must context-switch through the kernel.
	sys := mt.NewSystem(mt.Options{NCPU: 1})
	var elapsed time.Duration
	done := make(chan struct{})
	var s1, s2 mt.Sema
	flags := mt.ThreadWait
	if bound {
		flags |= mt.ThreadBindLWP
	}
	p, err := sys.Spawn("bench", func(t *mt.Thread, _ any) {
		defer close(done)
		r := t.Runtime()
		t2, err := r.Create(func(c *mt.Thread, _ any) {
			for i := 0; i < n; i++ {
				s2.P(c)
				s1.V(c)
			}
		}, nil, mt.CreateOpts{Flags: flags})
		if err != nil {
			panic(err)
		}
		t1, err := r.Create(func(c *mt.Thread, _ any) {
			start := time.Now()
			for i := 0; i < n; i++ {
				s2.V(c)
				s1.P(c)
			}
			elapsed = time.Since(start)
		}, nil, mt.CreateOpts{Flags: flags})
		if err != nil {
			panic(err)
		}
		t.Wait(t1.ID())
		t.Wait(t2.ID())
	}, nil, mt.ProcConfig{})
	if err != nil {
		panic(err)
	}
	<-done
	p.WaitExit()
	return elapsed
}

// CrossProcessSync measures Figure 6's last row: threads in two
// different processes synchronizing through semaphores placed in a
// file mapped MAP_SHARED by both.
func CrossProcessSync(n int) time.Duration {
	sys := mt.NewSystem(mt.Options{NCPU: 1})
	var elapsed time.Duration
	setup := func(p *mt.Proc, t *mt.Thread) (s1, s2 *mt.Sema) {
		fd, err := p.Open(t, "/tmp/syncfile", mt.OCreate|mt.ORdWr)
		if err != nil {
			panic(err)
		}
		va, err := p.Mmap(t, 0, mt.PageSize, mt.ProtRead|mt.ProtWrite, mt.MapShared, fd, 0)
		if err != nil {
			panic(err)
		}
		s1, err = p.SharedSemaAt(t, va, 0)
		if err != nil {
			panic(err)
		}
		s2, err = p.SharedSemaAt(t, va+64, 0)
		if err != nil {
			panic(err)
		}
		return s1, s2
	}
	spawn := func(name string, body func(p *mt.Proc, t *mt.Thread)) *mt.Proc {
		ch := make(chan *mt.Proc, 1)
		p, err := sys.Spawn(name, func(t *mt.Thread, _ any) {
			body(<-ch, t)
		}, nil, mt.ProcConfig{})
		if err != nil {
			panic(err)
		}
		ch <- p
		return p
	}
	done := make(chan struct{})
	p2 := spawn("peer", func(p *mt.Proc, t *mt.Thread) {
		s1, s2 := setup(p, t)
		for i := 0; i < n; i++ {
			s2.P(t)
			s1.V(t)
		}
	})
	p1 := spawn("timer", func(p *mt.Proc, t *mt.Thread) {
		defer close(done)
		s1, s2 := setup(p, t)
		start := time.Now()
		for i := 0; i < n; i++ {
			s2.V(t)
			s1.P(t)
		}
		elapsed = time.Since(start)
	})
	<-done
	p1.WaitExit()
	p2.WaitExit()
	return elapsed
}

// DispatchLatency measures the user-level dispatch hot path — one
// push plus one pop of the run queue, through a full Yield — with
// `queued` unrelated runnable threads resident in the queue. The
// measuring thread runs at a priority above the crowd, so every Yield
// re-queues and immediately re-dispatches it while the crowd stays
// queued. A dispatcher whose pop scans the queue shows per-op cost
// growing with `queued`; the per-priority bitmap queue is O(1).
func DispatchLatency(queued, n int) time.Duration {
	return dispatchLatency(queued, n, 0)
}

// DispatchLatencyTraced is DispatchLatency with the per-CPU event
// rings enabled, so the cost of hot-path event recording shows up in
// the measurement. Comparing it against DispatchLatency bounds the
// tracing overhead (see mtbench -traceoverhead).
func DispatchLatencyTraced(queued, n int) time.Duration {
	return dispatchLatency(queued, n, 4096)
}

func dispatchLatency(queued, n, ring int) time.Duration {
	sys := mt.NewSystem(mt.Options{NCPU: 1, EventRing: ring})
	var elapsed time.Duration
	done := make(chan struct{})
	p, err := sys.Spawn("bench", func(t *mt.Thread, _ any) {
		defer close(done)
		r := t.Runtime()
		if _, err := r.SetPriority(t, 10); err != nil {
			panic(err)
		}
		for i := 0; i < queued; i++ {
			if _, err := r.Create(noop, nil, mt.CreateOpts{}); err != nil {
				panic(err)
			}
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			t.Yield()
		}
		elapsed = time.Since(start)
		// Returning lets the crowd drain and the process exit.
	}, nil, mt.ProcConfig{DefaultStackSize: 4096})
	if err != nil {
		panic(err)
	}
	<-done
	p.WaitExit()
	return elapsed
}

// BroadcastWake measures multi-thread wakeup throughput: `waiters`
// threads block on one condition variable; each round broadcasts,
// every waiter re-checks the generation and parks again, and the
// round ends when all of them are queued once more. The reported
// duration covers rounds*waiters wakeups.
func BroadcastWake(waiters, rounds int) time.Duration {
	sys := mt.NewSystem(mt.Options{NCPU: 2})
	var elapsed time.Duration
	done := make(chan struct{})
	p, err := sys.Spawn("bench", func(t *mt.Thread, _ any) {
		defer close(done)
		r := t.Runtime()
		var mu mt.Mutex
		var cv mt.Cond
		gen, stop := 0, false
		var ids []mt.ThreadID
		for i := 0; i < waiters; i++ {
			c, err := r.Create(func(c *mt.Thread, _ any) {
				mu.Enter(c)
				for !stop {
					g := gen
					for gen == g && !stop {
						cv.Wait(c, &mu)
					}
				}
				mu.Exit(c)
			}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
			if err != nil {
				panic(err)
			}
			ids = append(ids, c.ID())
		}
		settle := func() {
			for cv.Waiters() < waiters {
				t.Yield()
			}
		}
		settle()
		start := time.Now()
		for i := 0; i < rounds; i++ {
			mu.Enter(t)
			gen++
			cv.Broadcast(t)
			mu.Exit(t)
			settle()
		}
		elapsed = time.Since(start)
		mu.Enter(t)
		stop = true
		cv.Broadcast(t)
		mu.Exit(t)
		for _, id := range ids {
			t.Wait(id)
		}
	}, nil, mt.ProcConfig{DefaultStackSize: 4096})
	if err != nil {
		panic(err)
	}
	<-done
	p.WaitExit()
	return elapsed
}

// ContendedMutex measures adaptive (default-variant) mutex throughput
// under contention: `workers` threads on `lwps` LWPs each perform
// `per` enter/exit pairs on one mutex with an empty critical section.
// The reported duration covers workers*per acquisitions.
func ContendedMutex(lwps, workers, per int) time.Duration {
	sys := mt.NewSystem(mt.Options{NCPU: lwps})
	var elapsed time.Duration
	done := make(chan struct{})
	p, err := sys.Spawn("bench", func(t *mt.Thread, _ any) {
		defer close(done)
		r := t.Runtime()
		if err := r.SetConcurrency(lwps); err != nil {
			panic(err)
		}
		var mu mt.Mutex
		var ids []mt.ThreadID
		start := time.Now()
		for w := 0; w < workers; w++ {
			c, err := r.Create(func(c *mt.Thread, _ any) {
				for i := 0; i < per; i++ {
					mu.Enter(c)
					mu.Exit(c)
				}
			}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
			if err != nil {
				panic(err)
			}
			ids = append(ids, c.ID())
		}
		for _, id := range ids {
			t.Wait(id)
		}
		elapsed = time.Since(start)
	}, nil, mt.ProcConfig{DefaultStackSize: 4096})
	if err != nil {
		panic(err)
	}
	<-done
	p.WaitExit()
	return elapsed
}

// PriorityInversion measures the latency of a high-priority mutex
// acquisition from a low-priority owner while a medium-priority
// spinner competes for the only LWP — the classic priority-inversion
// triangle. Per round the measurer (priority 20) lets the holder
// (priority 1) take the lock, releases the spinner (priority 5, a
// bounded yield loop), and times its own blocking Enter. With
// inheritance the blocked Enter wills priority 20 to the holder, which
// then outranks the spinner and releases promptly: latency is bounded
// by the critical section. With inherit=false (the
// NoPriorityInheritance ablation) the holder stays at priority 1 and
// cannot run until the spinner exhausts its budget, so the measured
// latency grows with the spinner's budget — the inversion the
// turnstiles exist to prevent. The reported duration covers n
// acquisitions.
func PriorityInversion(n int, inherit bool) time.Duration {
	// One CPU, like the paper's measurement machine: the inversion
	// needs the spinner to be able to starve the holder.
	const spinBudget = 512
	sys := mt.NewSystem(mt.Options{NCPU: 1})
	var elapsed time.Duration
	done := make(chan struct{})
	var stop atomic.Bool
	var mu mt.Mutex
	var lGo, sGo, ready mt.Sema
	p, err := sys.Spawn("bench", func(t *mt.Thread, _ any) {
		defer close(done)
		r := t.Runtime()
		if _, err := r.SetPriority(t, 20); err != nil {
			panic(err)
		}
		holder, err := r.Create(func(c *mt.Thread, _ any) {
			for {
				lGo.P(c)
				if stop.Load() {
					return
				}
				mu.Enter(c)
				ready.V(c)
				// Hand the LWP back to the measurer; without
				// inheritance we run again — and release — only
				// after the spinner drains its budget.
				c.Yield()
				mu.Exit(c)
			}
		}, nil, mt.CreateOpts{Flags: mt.ThreadWait, Priority: 1})
		if err != nil {
			panic(err)
		}
		spinner, err := r.Create(func(c *mt.Thread, _ any) {
			for {
				sGo.P(c)
				if stop.Load() {
					return
				}
				for i := 0; i < spinBudget; i++ {
					c.Yield()
				}
			}
		}, nil, mt.CreateOpts{Flags: mt.ThreadWait, Priority: 5})
		if err != nil {
			panic(err)
		}
		for i := 0; i < n; i++ {
			lGo.V(t)
			ready.P(t) // holder owns the lock once this returns
			sGo.V(t)   // spinner is runnable, outranking the holder
			start := time.Now()
			mu.Enter(t)
			elapsed += time.Since(start)
			mu.Exit(t)
		}
		stop.Store(true)
		lGo.V(t)
		sGo.V(t)
		t.Wait(holder.ID())
		t.Wait(spinner.ID())
	}, nil, mt.ProcConfig{
		DefaultStackSize:      4096,
		NoPriorityInheritance: !inherit,
	})
	if err != nil {
		panic(err)
	}
	<-done
	p.WaitExit()
	return elapsed
}

// DispatchScaling measures the library ready-queue layer at a given
// width: ncpu workers hammer a dispatcher configured with either one
// shard (the pre-sharding shared queue, every pop under one lock) or
// ncpu shards (each worker popping from its affine shard). The
// returned durations cover ncpu*iters pop+push pairs each; the
// shared/sharded per-op ratio is the dispatch throughput gain.
//
// Both sides warm up once and keep the best of three runs,
// interleaved like gateTraceOverhead, so host noise and first-run
// effects (allocator, cold code paths) hit shared and sharded alike.
func DispatchScaling(ncpu, iters int) (shared, sharded time.Duration) {
	best := func(cur, d time.Duration) time.Duration {
		if cur == 0 || d < cur {
			return d
		}
		return cur
	}
	mt.DispatchBench(1, ncpu, iters/4+1)
	mt.DispatchBench(ncpu, ncpu, iters/4+1)
	for i := 0; i < 3; i++ {
		shared = best(shared, mt.DispatchBench(1, ncpu, iters))
		sharded = best(sharded, mt.DispatchBench(ncpu, ncpu, iters))
	}
	return shared, sharded
}

// StealWakeup runs a steal- and wakeup-heavy kernel workload — pairs
// of bound threads ping-ponging on semaphores while bound yielders
// keep every CPU busy, three times as many LWPs as CPUs — and reports
// the dispatcher's steal traffic and cross-CPU wakeup cost: how many
// dispatches and steals the kernel performed, and the latency samples
// from a wakeup to the woken LWP's dispatch on a *different* CPU
// (paired through the event rings: EvWakeup to the EvMigrate of the
// same LWP's next dispatch). Low-priority bound spinners keep the
// CPUs occupied with on-CPU work: a woken ping-pong LWP then cannot
// find a free CPU and queues, outranking the spinners — so it reaches
// a CPU either by preempting a spinner or by a CPU that frees up
// stealing it from a sibling's queue. Both paths are cross-CPU
// dispatches; the second is the steal traffic the rate row measures.
func StealWakeup(rounds int) (dispatches, steals uint64, lat []time.Duration) {
	const ncpu, pairs, spinners = 4, 4, 4
	sys := mt.NewSystem(mt.Options{NCPU: ncpu, EventRing: 1 << 15})
	done := make(chan struct{})
	var stop atomic.Bool
	var sink atomic.Uint64
	p, err := sys.Spawn("bench", func(t *mt.Thread, _ any) {
		defer close(done)
		r := t.Runtime()
		ids := make([]mt.ThreadID, 0, 2*pairs+spinners)
		for i := 0; i < spinners; i++ {
			c, err := r.Create(func(c *mt.Thread, _ any) {
				for !stop.Load() {
					for j := 0; j < 64; j++ {
						sink.Add(1)
					}
					c.Checkpoint()
					// Yield the *host* CPU so the serialized host
					// schedules blocked ping-pong goroutines promptly;
					// the simulated CPU stays held by this LWP.
					runtime.Gosched()
				}
			}, nil, mt.CreateOpts{Flags: mt.ThreadWait | mt.ThreadBindLWP})
			if err != nil {
				panic(err)
			}
			// Timeshare floor: every woken ping-pong LWP outranks the
			// spinners, so wakeups preempt and steals favor them.
			if err := sys.Priocntl(c, mt.ClassTS, 0); err != nil {
				panic(err)
			}
			ids = append(ids, c.ID())
		}
		for i := 0; i < pairs; i++ {
			var s1, s2 mt.Sema
			// The Gosched after each V keeps the waker's LWP on CPU
			// while the woken LWP's goroutine re-enters the kernel
			// run queue — the overlap a parallel host gives for free.
			// Without it a serialized host runs the waker until it
			// blocks, and the wakee always finds its old CPU free.
			a, err := r.Create(func(c *mt.Thread, _ any) {
				for j := 0; j < rounds; j++ {
					s2.P(c)
					s1.V(c)
					runtime.Gosched()
				}
			}, nil, mt.CreateOpts{Flags: mt.ThreadWait | mt.ThreadBindLWP})
			if err != nil {
				panic(err)
			}
			b, err := r.Create(func(c *mt.Thread, _ any) {
				for j := 0; j < rounds; j++ {
					s2.V(c)
					runtime.Gosched()
					s1.P(c)
				}
			}, nil, mt.CreateOpts{Flags: mt.ThreadWait | mt.ThreadBindLWP})
			if err != nil {
				panic(err)
			}
			ids = append(ids, a.ID(), b.ID())
		}
		for _, id := range ids[spinners:] {
			t.Wait(id)
		}
		stop.Store(true)
		for _, id := range ids[:spinners] {
			t.Wait(id)
		}
	}, nil, mt.ProcConfig{DefaultStackSize: 4096})
	if err != nil {
		panic(err)
	}
	<-done
	p.WaitExit()

	for _, cs := range sys.SchedStats() {
		dispatches += cs.Dispatches
		steals += cs.Steals
	}
	recs, _ := sys.Events().Snapshot()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	// EvMigrate is recorded immediately before the same dispatch's
	// EvDispatch, so a pending wakeup that reaches an EvMigrate first
	// was a cross-CPU wakeup; one that reaches EvDispatch first was
	// dispatched back onto its last CPU and is dropped.
	pending := make(map[int32]time.Duration)
	for _, rec := range recs {
		switch rec.Kind {
		case mt.EvWakeup:
			pending[rec.LWP] = rec.When
		case mt.EvMigrate:
			if w, ok := pending[rec.LWP]; ok {
				lat = append(lat, rec.When-w)
				delete(pending, rec.LWP)
			}
		case mt.EvDispatch:
			delete(pending, rec.LWP)
		}
	}
	return dispatches, steals, lat
}

// Row is one line of a paper-style results table.
type Row struct {
	Name     string
	PaperUS  float64 // the paper's measurement, microseconds
	Measured time.Duration
	Ops      int // operations the Measured total covers
	// Allocs is the total host heap allocations the scenario
	// performed (harness setup included), or -1 when not measured.
	// mtbench -allocs divides by Ops for a coarse per-op column; the
	// precise steady-state zero-alloc claims are pinned by
	// testing.AllocsPerRun unit tests in internal/core.
	Allocs int64
}

// PerOp returns the measured time per operation.
func (r Row) PerOp() time.Duration {
	if r.Ops == 0 {
		return 0
	}
	return r.Measured / time.Duration(r.Ops)
}

// Figure5 runs the thread-creation experiment and returns the table's
// rows with the paper's reference numbers attached.
func Figure5(n int) []Row {
	if n <= 0 {
		n = 20000
	}
	nb := n / 20
	if nb == 0 {
		nb = 1
	}
	ut, ua := countAllocs(func() time.Duration { return UnboundCreate(n) })
	bt, ba := countAllocs(func() time.Duration { return BoundCreate(nb) })
	return []Row{
		{Name: "Unbound thread create", PaperUS: 56, Measured: ut, Ops: n, Allocs: ua},
		{Name: "Bound thread create", PaperUS: 2327, Measured: bt, Ops: nb, Allocs: ba},
	}
}

// unmeasured marks every row's alloc count as not collected.
func unmeasured(rows []Row) []Row {
	for i := range rows {
		rows[i].Allocs = -1
	}
	return rows
}

// Figure6 runs the synchronization experiment. Each ping-pong round
// is two synchronizations, so Ops is 2n for those rows, matching the
// paper's division by two.
func Figure6(n int) []Row {
	if n <= 0 {
		n = 20000
	}
	return unmeasured([]Row{
		{Name: "Setjmp/longjmp", PaperUS: 59, Measured: SetjmpLongjmp(n), Ops: n},
		{Name: "Unbound thread sync", PaperUS: 158, Measured: SyncPingPong(n, false), Ops: 2 * n},
		{Name: "Bound thread sync", PaperUS: 348, Measured: SyncPingPong(n, true), Ops: 2 * n},
		{Name: "Cross process thread sync", PaperUS: 301, Measured: CrossProcessSync(n), Ops: 2 * n},
	})
}

// Figure7 runs the priority-inversion experiment — not a figure of
// the paper, which predates the turnstile work, but measured in its
// style: the same triangle with inheritance on and off. The "off" row
// needs far fewer rounds because each one deliberately pays the
// spinner's full budget.
func Figure7(n int) []Row {
	if n <= 0 {
		n = 20000
	}
	nOn := n / 4
	if nOn == 0 {
		nOn = 1
	}
	nOff := n / 64
	if nOff == 0 {
		nOff = 1
	}
	return unmeasured([]Row{
		{Name: "Contended enter, inheritance", Measured: PriorityInversion(nOn, true), Ops: nOn},
		{Name: "Contended enter, inversion", Measured: PriorityInversion(nOff, false), Ops: nOff},
	})
}

// Figure8 runs the dispatch-scaling experiment (not in the paper,
// which measured a uniprocessor): per-op ready-queue cost at NCPU in
// {1, 4, 16, 64}, shared single queue vs per-CPU shards. Adjacent
// rows share an NCPU, so the table's ratio column under each "per-CPU
// shards" row is its speedup over the shared queue (< 1 is faster).
func Figure8(n int) []Row {
	if n <= 0 {
		n = 20000
	}
	var rows []Row
	for _, ncpu := range []int{1, 4, 16, 64} {
		shared, sharded := DispatchScaling(ncpu, n)
		ops := ncpu * n
		rows = append(rows,
			Row{Name: fmt.Sprintf("Dispatch NCPU=%d shared queue", ncpu), Measured: shared, Ops: ops},
			Row{Name: fmt.Sprintf("Dispatch NCPU=%d per-CPU shards", ncpu), Measured: sharded, Ops: ops},
		)
	}
	return unmeasured(rows)
}

// Fig9Stats carries the deterministic side of the figure 9 run: the
// kernel's dispatch and steal counters, pooled over every trial. The
// CI gate asserts Steals > 0 — the structural property that spinner
// occupancy forces queued wakeups which only reach a CPU by preemption
// or stealing — instead of gating the steal *rate*, which depends on
// how the host interleaves waker and wakee goroutines and needed a 5x
// threshold to stop flaking.
type Fig9Stats struct {
	Dispatches uint64
	Steals     uint64
}

// Figure9 runs the steal/wakeup experiment (not in the paper) and
// reports one gated row plus the raw scheduler counters:
//
//   - "Cross-CPU wakeup latency": the best (minimum) per-trial median
//     wakeup-to-dispatch time for wakeups whose LWP was dispatched on
//     a different CPU. Best-of-N discards trials degraded by host
//     scheduling noise, so the row holds a far tighter baseline
//     threshold than the old steal-rate row could (CI gates it at
//     2.5x, half the old backstop); a real regression slows every
//     trial, including the best one.
//   - Fig9Stats: dispatch/steal totals for the deterministic
//     steal-happened property (mtbench fails the run when zero).
func Figure9(n int) ([]Row, Fig9Stats) {
	if n <= 0 {
		n = 20000
	}
	rounds := n / 4
	if rounds == 0 {
		rounds = 1
	}
	const trials = 5
	var st Fig9Stats
	var best time.Duration
	for i := 0; i < trials; i++ {
		d, s, l := StealWakeup(rounds)
		st.Dispatches += d
		st.Steals += s
		if len(l) == 0 {
			continue
		}
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
		if med := l[len(l)/2]; best == 0 || med < best {
			best = med
		}
	}
	latRow := Row{Name: "Cross-CPU wakeup latency", Measured: best, Ops: 1}
	return unmeasured([]Row{latRow}), st
}

// LockCell is one cell of the figure 12 lock-policy shootout matrix:
// one policy at one LWP width and one critical-section length, with
// tail-latency percentiles over every completed MSLock wait episode
// the run produced (sampled by the runtime's microstate accounting,
// so the numbers are on the simulation clock, not the host clock).
type LockCell struct {
	Policy string
	LWPs   int
	Hold   int    // busy-work increments inside the critical section
	Waits  uint64 // completed lock-wait episodes observed
	P50    time.Duration
	P99    time.Duration
	P999   time.Duration
}

// quantile returns the num/den quantile of a sorted sample set by
// nearest-rank on the lower side (the conventional conservative choice
// for small tails).
func quantile(sorted []time.Duration, num, den int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[(len(sorted)-1)*num/den]
}

// LockLatency runs one figure 12 cell: `workers` unbound threads on
// `lwps` LWPs each performing `per` enter/exit pairs on one mutex
// under the given lock policy, holding the lock for `hold` busy
// increments and then yielding the LWP once while still holding it.
// The in-section yield is what makes the cell a lock benchmark rather
// than a loop benchmark: unbound threads are never preempted
// mid-section, so without it a worker runs its whole loop before the
// next one gets the LWP and no acquisition ever waits. With it every
// acquisition contends against a descheduled owner — the case the
// spin heuristics, hand-off disciplines and turnstile inheritance all
// exist to handle. The policy is installed as the process default
// (ProcConfig.LockPolicy), so the cell exercises the same path
// applications use; the mutex itself stays a zero value.
func LockLatency(pol mt.LockPolicy, lwps, workers, per, hold int) LockCell {
	sys := mt.NewSystem(mt.Options{NCPU: lwps})
	done := make(chan struct{})
	var sink atomic.Uint64
	p, err := sys.Spawn("bench", func(t *mt.Thread, _ any) {
		defer close(done)
		r := t.Runtime()
		if err := r.SetConcurrency(lwps); err != nil {
			panic(err)
		}
		var mu mt.Mutex
		var ids []mt.ThreadID
		for w := 0; w < workers; w++ {
			c, err := r.Create(func(c *mt.Thread, _ any) {
				for i := 0; i < per; i++ {
					mu.Enter(c)
					for j := 0; j < hold; j++ {
						sink.Add(1)
					}
					c.Yield()
					mu.Exit(c)
				}
			}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
			if err != nil {
				panic(err)
			}
			ids = append(ids, c.ID())
		}
		for _, id := range ids {
			t.Wait(id)
		}
	}, nil, mt.ProcConfig{
		DefaultStackSize:  4096,
		LockPolicy:        pol,
		LockWaitSampleCap: 1 << 16,
	})
	if err != nil {
		panic(err)
	}
	<-done
	// Read the ring before reaping the process; every worker has
	// joined, so all wait episodes are closed and recorded.
	samples, total := p.RT.LockWaitSamples()
	p.WaitExit()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return LockCell{
		Policy: pol.String(),
		LWPs:   lwps,
		Hold:   hold,
		Waits:  total,
		P50:    quantile(samples, 50, 100),
		P99:    quantile(samples, 99, 100),
		P999:   quantile(samples, 999, 1000),
	}
}

// Figure12 runs the lock-policy shootout: every policy crossed with
// LWP widths and hold times, percentiles per cell. It returns the
// whole matrix for the table plus baseline Rows for the default
// (adaptive) policy's contended cell only — those are the rows
// committed to BENCH_baseline.json and gated in CI. The other
// policies' cells print for comparison but are not gated: the queue
// disciplines trade throughput for tail shape in ways that shift with
// host scheduling, and the regression the gate exists to catch is in
// the default path every program uses. full widens the matrix (the
// nightly -lockfull run).
func Figure12(n int, full bool) ([]LockCell, []Row) {
	if n <= 0 {
		n = 20000
	}
	const workers = 8
	per := n / workers
	if per == 0 {
		per = 1
	}
	lwps := []int{1, 4}
	holds := []int{0, 256}
	if full {
		lwps = []int{1, 4, 16}
		holds = []int{0, 256, 2048}
	}
	var cells []LockCell
	var rows []Row
	for _, pol := range mt.LockPolicies() {
		for _, l := range lwps {
			for _, h := range holds {
				c := LockLatency(pol, l, workers, per, h)
				cells = append(cells, c)
				if pol == mt.PolicyAdaptive && l == 4 && h == 0 {
					rows = append(rows,
						Row{Name: "Lock wait p50, adaptive 4 LWP", Measured: c.P50, Ops: 1, Allocs: -1},
						Row{Name: "Lock wait p99, adaptive 4 LWP", Measured: c.P99, Ops: 1, Allocs: -1},
						Row{Name: "Lock wait p999, adaptive 4 LWP", Measured: c.P999, Ops: 1, Allocs: -1},
					)
				}
			}
		}
	}
	return cells, rows
}

// FormatLockMatrix renders the figure 12 cells as a matrix table.
func FormatLockMatrix(title string, cells []LockCell) string {
	out := fmt.Sprintf("%s\n%-12s %5s %6s %10s %14s %14s %14s\n", title,
		"policy", "lwps", "hold", "waits", "p50", "p99", "p999")
	for _, c := range cells {
		out += fmt.Sprintf("%-12s %5d %6d %10d %14v %14v %14v\n",
			c.Policy, c.LWPs, c.Hold, c.Waits, c.P50, c.P99, c.P999)
	}
	return out
}

// FormatTable renders rows in the paper's format: a time column and a
// ratio column giving each row's ratio to the previous row, plus the
// paper's numbers alongside.
func FormatTable(title string, rows []Row) string {
	out := fmt.Sprintf("%s\n%-28s %12s %8s %12s %8s\n", title,
		"", "measured", "ratio", "paper (us)", "ratio")
	var prev, prevPaper float64
	for i, r := range rows {
		us := float64(r.PerOp().Nanoseconds()) / 1e3
		ratio, paperRatio := "", ""
		if i > 0 {
			ratio = fmt.Sprintf("%.2f", us/prev)
			if prevPaper > 0 {
				paperRatio = fmt.Sprintf("%.2f", r.PaperUS/prevPaper)
			}
		}
		paperCol := "-"
		if r.PaperUS > 0 {
			paperCol = fmt.Sprintf("%.0f", r.PaperUS)
		}
		out += fmt.Sprintf("%-28s %10.2fus %8s %12s %8s\n", r.Name, us, ratio, paperCol, paperRatio)
		prev, prevPaper = us, r.PaperUS
	}
	return out
}
