package vfs

import (
	"time"

	"sunosmt/internal/sim"
)

// PollEvents is a bitmask of poll conditions.
type PollEvents int

// Poll event bits.
const (
	PollIn PollEvents = 1 << iota
	PollOut
	PollHup
	PollErr
)

// PollFD is one entry in a Poll request, like struct pollfd.
type PollFD struct {
	FD      int
	Events  PollEvents
	Revents PollEvents
}

// Poll waits until one of the requested descriptors is ready, the
// timeout expires (timeout > 0), or a signal interrupts the wait.
// The wait is *indefinite* in the paper's sense — poll is its example
// of a wait that should trigger SIGWAITING when every LWP is stuck in
// one. Returns the number of ready descriptors (0 on timeout).
func (pf *ProcFiles) Poll(l *sim.LWP, fds []PollFD, timeout time.Duration) (int, error) {
	k := pf.fs.kern
	k.SyscallEnter(l)
	defer k.SyscallExit(l)

	deadline := time.Duration(-1)
	if timeout > 0 {
		deadline = timeout
	}
	for {
		ready := 0
		var pipes []*Pipe
		for i := range fds {
			fds[i].Revents = 0
			of, err := pf.get(fds[i].FD)
			if err != nil {
				fds[i].Revents |= PollErr
				ready++
				continue
			}
			if of.pipe != nil {
				pipes = append(pipes, of.pipe)
				if fds[i].Events&PollIn != 0 && of.pipe.pollReadable() {
					fds[i].Revents |= PollIn
				}
				if fds[i].Events&PollOut != 0 && of.pipe.pollWritable() {
					fds[i].Revents |= PollOut
				}
				of.pipe.mu.Lock()
				if of.pipe.writers == 0 && of.pipe.readers == 0 {
					fds[i].Revents |= PollHup
				}
				of.pipe.mu.Unlock()
			} else {
				// Regular files are always ready.
				fds[i].Revents |= fds[i].Events & (PollIn | PollOut)
			}
			if fds[i].Revents != 0 {
				ready++
			}
		}
		if ready > 0 {
			return ready, nil
		}
		if len(pipes) == 0 {
			// Nothing can ever become ready; treat as timeout
			// semantics with no wait channel.
			return 0, ErrInval
		}
		// Block on the first pipe's poll queue. Every state
		// change on any pipe wakes its pollers; for simplicity a
		// multi-pipe poll re-checks all after any wake on the
		// first. To avoid missing wakes from other pipes, bound
		// the sleep.
		opts := sim.SleepOpts{Interruptible: true, Indefinite: true}
		if deadline >= 0 {
			opts.Timeout = deadline
		} else if len(pipes) > 1 {
			opts.Timeout = time.Millisecond
		}
		res := k.Sleep(l, pipes[0].pollq, opts)
		switch res {
		case sim.WakeInterrupted:
			return 0, sim.ErrIntr
		case sim.WakeTimeout:
			if deadline >= 0 {
				return 0, nil
			}
		}
	}
}
