package vfs

import (
	"errors"
	"io"
	"testing"
	"time"

	"sunosmt/internal/sim"
)

// harness boots a kernel, a process with a ProcFiles table, and runs
// body as the animator of a fresh LWP.
type harness struct {
	k  *sim.Kernel
	fs *FS
	p  *sim.Process
	pf *ProcFiles
}

func newHarness(ncpu int) *harness {
	k := sim.NewKernel(sim.Config{NCPU: ncpu})
	fs := NewFS(k)
	p := k.NewProcess("test", nil)
	pf := NewProcFiles(fs, p)
	h := &harness{k: k, fs: fs, p: p, pf: pf}
	// A parked keeper LWP holds the process open across the
	// sequential bodies the tests run.
	keeper, err := k.NewLWP(p, sim.ClassTS, 30)
	if err != nil {
		panic(err)
	}
	go func() {
		defer func() {
			if r := recover(); r != nil && !sim.IsUnwind(r) {
				panic(r)
			}
			k.ExitLWP(keeper)
		}()
		k.Start(keeper)
		for {
			k.Park(keeper) // until the process dies
		}
	}()
	return h
}

func (h *harness) run(body func(l *sim.LWP)) <-chan struct{} {
	l, err := h.k.NewLWP(h.p, sim.ClassTS, 30)
	if err != nil {
		panic(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil && !sim.IsUnwind(r) {
				panic(r)
			}
			h.k.ExitLWP(l)
		}()
		h.k.Start(l)
		body(l)
	}()
	return done
}

func (h *harness) wait(t *testing.T, ch <-chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatalf("timeout waiting for %s", what)
	}
}

func TestCreateWriteReadFile(t *testing.T) {
	h := newHarness(1)
	done := h.run(func(l *sim.LWP) {
		fd, err := h.pf.Open(l, "/tmp/hello", OCreate|ORdWr)
		if err != nil {
			t.Error(err)
			return
		}
		if n, err := h.pf.Write(l, fd, []byte("hello world")); err != nil || n != 11 {
			t.Errorf("write = %d, %v", n, err)
			return
		}
		if _, err := h.pf.Lseek(fd, 0, SeekSet); err != nil {
			t.Error(err)
			return
		}
		b := make([]byte, 32)
		n, err := h.pf.Read(l, fd, b)
		if err != nil || string(b[:n]) != "hello world" {
			t.Errorf("read = %q, %v", b[:n], err)
		}
		if err := h.pf.Close(fd); err != nil {
			t.Error(err)
		}
	})
	h.wait(t, done, "io")
}

func TestFilePersistsAfterProcessExit(t *testing.T) {
	h := newHarness(1)
	done := h.run(func(l *sim.LWP) {
		fd, _ := h.pf.Open(l, "/tmp/persistent", OCreate|ORdWr)
		h.pf.Write(l, fd, []byte("outlives me"))
		h.pf.Close(fd)
	})
	h.wait(t, done, "writer")
	// The creating process is gone; the file remains (the paper's
	// requirement for sync variables in files).
	n, err := h.fs.Lookup("/", "/tmp/persistent")
	if err != nil {
		t.Fatal(err)
	}
	f := n.(*File)
	b := make([]byte, 11)
	f.ReadObject(b, 0)
	if string(b) != "outlives me" {
		t.Fatalf("file content = %q", b)
	}
}

func TestOpenMissingFails(t *testing.T) {
	h := newHarness(1)
	done := h.run(func(l *sim.LWP) {
		if _, err := h.pf.Open(l, "/tmp/nope", ORdOnly); !errors.Is(err, ErrNoEnt) {
			t.Errorf("err = %v, want ErrNoEnt", err)
		}
	})
	h.wait(t, done, "open")
}

func TestOExclFailsOnExisting(t *testing.T) {
	h := newHarness(1)
	done := h.run(func(l *sim.LWP) {
		fd, err := h.pf.Open(l, "/tmp/x", OCreate|ORdWr)
		if err != nil {
			t.Error(err)
			return
		}
		h.pf.Close(fd)
		if _, err := h.pf.Open(l, "/tmp/x", OCreate|OExcl|ORdWr); !errors.Is(err, ErrExist) {
			t.Errorf("err = %v, want ErrExist", err)
		}
	})
	h.wait(t, done, "open")
}

func TestDupSharesOffset(t *testing.T) {
	h := newHarness(1)
	done := h.run(func(l *sim.LWP) {
		fd, _ := h.pf.Open(l, "/tmp/f", OCreate|ORdWr)
		h.pf.Write(l, fd, []byte("abcdef"))
		h.pf.Lseek(fd, 0, SeekSet)
		dup, err := h.pf.Dup(fd)
		if err != nil {
			t.Error(err)
			return
		}
		b := make([]byte, 3)
		h.pf.Read(l, fd, b) // advances the shared offset to 3
		n, _ := h.pf.Read(l, dup, b)
		if string(b[:n]) != "def" {
			t.Errorf("dup read %q, want def (shared offset)", b[:n])
		}
	})
	h.wait(t, done, "dup")
}

func TestSeekEndAndTrunc(t *testing.T) {
	h := newHarness(1)
	done := h.run(func(l *sim.LWP) {
		fd, _ := h.pf.Open(l, "/tmp/f", OCreate|ORdWr)
		h.pf.Write(l, fd, []byte("0123456789"))
		off, err := h.pf.Lseek(fd, -4, SeekEnd)
		if err != nil || off != 6 {
			t.Errorf("seek end = %d, %v", off, err)
		}
		fd2, _ := h.pf.Open(l, "/tmp/f", OTrunc|ORdWr)
		var b [4]byte
		if _, err := h.pf.Read(l, fd2, b[:]); err != io.EOF {
			t.Errorf("read after trunc err = %v, want EOF", err)
		}
	})
	h.wait(t, done, "seek")
}

func TestMkdirReadDirUnlink(t *testing.T) {
	h := newHarness(1)
	if err := h.fs.Mkdir("/", "/data"); err != nil {
		t.Fatal(err)
	}
	if err := h.fs.Mkdir("/", "/data"); !errors.Is(err, ErrExist) {
		t.Fatalf("second mkdir err = %v", err)
	}
	done := h.run(func(l *sim.LWP) {
		for _, name := range []string{"/data/a", "/data/b"} {
			fd, err := h.pf.Open(l, name, OCreate|OWrOnly)
			if err != nil {
				t.Error(err)
				return
			}
			h.pf.Close(fd)
		}
	})
	h.wait(t, done, "creator")
	names, err := h.fs.ReadDir("/", "/data")
	if err != nil || len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if err := h.fs.Unlink("/", "/data/a"); err != nil {
		t.Fatal(err)
	}
	if err := h.fs.Rmdir("/", "/data"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("rmdir non-empty err = %v", err)
	}
	h.fs.Unlink("/", "/data/b")
	if err := h.fs.Rmdir("/", "/data"); err != nil {
		t.Fatal(err)
	}
}

func TestRelativePathsUseCwd(t *testing.T) {
	h := newHarness(1)
	h.fs.Mkdir("/", "/home")
	h.p.Chdir("/home")
	done := h.run(func(l *sim.LWP) {
		fd, err := h.pf.Open(l, "notes.txt", OCreate|OWrOnly)
		if err != nil {
			t.Error(err)
			return
		}
		h.pf.Close(fd)
	})
	h.wait(t, done, "creator")
	if _, err := h.fs.Lookup("/", "/home/notes.txt"); err != nil {
		t.Fatalf("file not created relative to cwd: %v", err)
	}
}

func TestPipeTransfersData(t *testing.T) {
	h := newHarness(2)
	var rfd, wfd int
	setup := h.run(func(l *sim.LWP) {
		var err error
		rfd, wfd, err = h.pf.Pipe(l)
		if err != nil {
			t.Error(err)
		}
	})
	h.wait(t, setup, "pipe setup")

	got := make(chan string, 1)
	reader := h.run(func(l *sim.LWP) {
		b := make([]byte, 64)
		n, err := h.pf.Read(l, rfd, b)
		if err != nil {
			t.Error(err)
			return
		}
		got <- string(b[:n])
	})
	writer := h.run(func(l *sim.LWP) {
		time.Sleep(time.Millisecond) // let the reader block first
		if _, err := h.pf.Write(l, wfd, []byte("through the pipe")); err != nil {
			t.Error(err)
		}
	})
	h.wait(t, reader, "reader")
	h.wait(t, writer, "writer")
	if s := <-got; s != "through the pipe" {
		t.Fatalf("pipe delivered %q", s)
	}
}

func TestPipeEOFWhenWritersClose(t *testing.T) {
	h := newHarness(2)
	var rfd, wfd int
	setup := h.run(func(l *sim.LWP) {
		rfd, wfd, _ = h.pf.Pipe(l)
	})
	h.wait(t, setup, "setup")
	readErr := make(chan error, 1)
	reader := h.run(func(l *sim.LWP) {
		b := make([]byte, 8)
		_, err := h.pf.Read(l, rfd, b)
		readErr <- err
	})
	closer := h.run(func(l *sim.LWP) {
		time.Sleep(time.Millisecond)
		h.pf.Close(wfd)
	})
	h.wait(t, reader, "reader")
	h.wait(t, closer, "closer")
	if err := <-readErr; err != io.EOF {
		t.Fatalf("read err = %v, want EOF", err)
	}
}

func TestPipeEPIPEAndSIGPIPE(t *testing.T) {
	h := newHarness(1)
	h.k.SetAction(h.p, sim.SIGPIPE, sim.SigIgn, nil, 0)
	var werr error
	done := h.run(func(l *sim.LWP) {
		rfd, wfd, _ := h.pf.Pipe(l)
		h.pf.Close(rfd)
		_, werr = h.pf.Write(l, wfd, []byte("x"))
	})
	h.wait(t, done, "writer")
	if !errors.Is(werr, ErrPipe) {
		t.Fatalf("write err = %v, want ErrPipe", werr)
	}
}

func TestPipeWriteBlocksWhenFull(t *testing.T) {
	h := newHarness(2)
	var rfd, wfd int
	setup := h.run(func(l *sim.LWP) {
		rfd, wfd, _ = h.pf.Pipe(l)
	})
	h.wait(t, setup, "setup")

	wrote := make(chan int, 1)
	writer := h.run(func(l *sim.LWP) {
		big := make([]byte, pipeCap+100)
		n, err := h.pf.Write(l, wfd, big)
		if err != nil {
			t.Error(err)
		}
		wrote <- n
	})
	// The writer must block with exactly pipeCap bytes queued.
	time.Sleep(5 * time.Millisecond)
	select {
	case <-writer:
		t.Fatal("oversized write did not block")
	default:
	}
	drainer := h.run(func(l *sim.LWP) {
		b := make([]byte, pipeCap+100)
		total := 0
		for total < pipeCap+100 {
			n, err := h.pf.Read(l, rfd, b)
			if err != nil {
				t.Error(err)
				return
			}
			total += n
		}
	})
	h.wait(t, writer, "writer")
	h.wait(t, drainer, "drainer")
	if n := <-wrote; n != pipeCap+100 {
		t.Fatalf("wrote %d, want %d", n, pipeCap+100)
	}
}

func TestPollReturnsReadyPipe(t *testing.T) {
	h := newHarness(2)
	var rfd, wfd int
	setup := h.run(func(l *sim.LWP) {
		rfd, wfd, _ = h.pf.Pipe(l)
		h.pf.Write(l, wfd, []byte("ready"))
	})
	h.wait(t, setup, "setup")
	done := h.run(func(l *sim.LWP) {
		fds := []PollFD{{FD: rfd, Events: PollIn}}
		n, err := h.pf.Poll(l, fds, 0)
		if err != nil || n != 1 || fds[0].Revents&PollIn == 0 {
			t.Errorf("poll = %d, %v, revents %v", n, err, fds[0].Revents)
		}
	})
	h.wait(t, done, "poller")
}

func TestPollBlocksUntilData(t *testing.T) {
	h := newHarness(2)
	var rfd, wfd int
	setup := h.run(func(l *sim.LWP) {
		rfd, wfd, _ = h.pf.Pipe(l)
	})
	h.wait(t, setup, "setup")
	polled := make(chan int, 1)
	poller := h.run(func(l *sim.LWP) {
		fds := []PollFD{{FD: rfd, Events: PollIn}}
		n, err := h.pf.Poll(l, fds, 0)
		if err != nil {
			t.Error(err)
		}
		polled <- n
	})
	writer := h.run(func(l *sim.LWP) {
		time.Sleep(2 * time.Millisecond)
		h.pf.Write(l, wfd, []byte("x"))
	})
	h.wait(t, poller, "poller")
	h.wait(t, writer, "writer")
	if n := <-polled; n != 1 {
		t.Fatalf("poll returned %d", n)
	}
}

func TestPollTimeout(t *testing.T) {
	h := newHarness(1)
	done := h.run(func(l *sim.LWP) {
		rfd, _, _ := h.pf.Pipe(l)
		fds := []PollFD{{FD: rfd, Events: PollIn}}
		n, err := h.pf.Poll(l, fds, 2*time.Millisecond)
		if err != nil || n != 0 {
			t.Errorf("poll = %d, %v; want 0 on timeout", n, err)
		}
	})
	h.wait(t, done, "poller")
}

func TestForkIntoSharesOpenFiles(t *testing.T) {
	// Two CPUs: the parent's animator waits (in Go, still on its
	// CPU) for the child's LWP, which needs the second CPU.
	h := newHarness(2)
	done := h.run(func(l *sim.LWP) {
		fd, _ := h.pf.Open(l, "/tmp/f", OCreate|ORdWr)
		h.pf.Write(l, fd, []byte("abcdef"))
		h.pf.Lseek(fd, 0, SeekSet)

		child, cl, _, err := h.k.Fork(l, false)
		if err != nil {
			t.Error(err)
			return
		}
		cf := h.pf.ForkInto(child)
		// Child reads 3 bytes through the shared entry...
		b := make([]byte, 3)
		go func() {
			defer func() { recover(); h.k.ExitLWP(cl) }()
			h.k.Start(cl)
			cf.Read(cl, fd, b)
		}()
		<-cl.Exited()
		// ...so the parent's next read continues at offset 3.
		b2 := make([]byte, 3)
		n, _ := h.pf.Read(l, fd, b2)
		if string(b2[:n]) != "def" {
			t.Errorf("parent read %q after child read, want def", b2[:n])
		}
	})
	h.wait(t, done, "fork io")
}

func TestSynthFileSnapshotsAtOpen(t *testing.T) {
	h := newHarness(1)
	val := "v1"
	h.fs.Attach("/", "/tmp/status", &SynthFile{Gen: func() []byte { return []byte(val) }})
	done := h.run(func(l *sim.LWP) {
		fd, err := h.pf.Open(l, "/tmp/status", ORdOnly)
		if err != nil {
			t.Error(err)
			return
		}
		val = "v2" // generated content was snapshotted at open
		b := make([]byte, 8)
		n, _ := h.pf.Read(l, fd, b)
		if string(b[:n]) != "v1" {
			t.Errorf("synth read %q, want v1", b[:n])
		}
	})
	h.wait(t, done, "synth")
}

func TestCloseAllAndBadFD(t *testing.T) {
	h := newHarness(1)
	done := h.run(func(l *sim.LWP) {
		fd, _ := h.pf.Open(l, "/tmp/f", OCreate|ORdWr)
		h.pf.CloseAll()
		if _, err := h.pf.Read(l, fd, make([]byte, 1)); !errors.Is(err, ErrBadF) {
			t.Errorf("read after CloseAll err = %v", err)
		}
		if err := h.pf.Close(99); !errors.Is(err, ErrBadF) {
			t.Errorf("close(99) err = %v", err)
		}
	})
	h.wait(t, done, "worker")
}

func TestWriteOnReadOnlyFD(t *testing.T) {
	h := newHarness(1)
	done := h.run(func(l *sim.LWP) {
		fd, _ := h.pf.Open(l, "/tmp/f", OCreate|OWrOnly)
		h.pf.Close(fd)
		fd, _ = h.pf.Open(l, "/tmp/f", ORdOnly)
		if _, err := h.pf.Write(l, fd, []byte("x")); !errors.Is(err, ErrBadF) {
			t.Errorf("write on rdonly err = %v", err)
		}
	})
	h.wait(t, done, "worker")
}
