package vfs

import (
	"fmt"
	"io"
	"sync"

	"sunosmt/internal/sim"
)

// OpenFlags control Open, like open(2).
type OpenFlags int

// Open flags.
const (
	ORdOnly OpenFlags = 0
	OWrOnly OpenFlags = 1 << iota
	ORdWr
	OCreate
	OTrunc
	OAppend
	OExcl
	OCloExec
)

func (f OpenFlags) readable() bool { return f&OWrOnly == 0 }
func (f OpenFlags) writable() bool { return f&(OWrOnly|ORdWr) != 0 }

// Whence selects the Lseek origin.
type Whence int

// Seek origins.
const (
	SeekSet Whence = iota
	SeekCur
	SeekEnd
)

// OpenFile is an entry in the system open-file table. It is shared
// between descriptors created by dup and inherited across fork, so
// the seek offset is shared exactly as the paper warns: "another
// thread could change the seek position before the read or write".
type OpenFile struct {
	mu     sync.Mutex
	node   Node
	flags  OpenFlags
	offset int64
	refs   int
	// For pipe ends.
	pipe     *Pipe
	pipeRead bool
	// Snapshot for SynthFiles, generated at open.
	synth []byte
}

// Node returns the node this open file refers to.
func (of *OpenFile) Node() Node { return of.node }

func (of *OpenFile) incRef() {
	of.mu.Lock()
	of.refs++
	of.mu.Unlock()
	if of.pipe != nil {
		of.pipe.addEnd(of.pipeRead, 1)
	}
}

// ProcFiles is a process's file-descriptor table plus working
// directory. It lives in sim.Process.Files. All threads in the
// process share it.
type ProcFiles struct {
	fs   *FS
	proc *sim.Process
	mu   sync.Mutex
	fds  []*OpenFile
}

// NewProcFiles creates an empty descriptor table bound to proc.
func NewProcFiles(fs *FS, proc *sim.Process) *ProcFiles {
	pf := &ProcFiles{fs: fs, proc: proc}
	proc.Files = pf
	return pf
}

// Files returns the ProcFiles attached to a process.
func Files(p *sim.Process) *ProcFiles {
	pf, _ := p.Files.(*ProcFiles)
	return pf
}

// FS returns the file system this table opens into.
func (pf *ProcFiles) FS() *FS { return pf.fs }

func (pf *ProcFiles) install(of *OpenFile) int {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	for i, slot := range pf.fds {
		if slot == nil {
			pf.fds[i] = of
			return i
		}
	}
	pf.fds = append(pf.fds, of)
	return len(pf.fds) - 1
}

func (pf *ProcFiles) get(fd int) (*OpenFile, error) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if fd < 0 || fd >= len(pf.fds) || pf.fds[fd] == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadF, fd)
	}
	return pf.fds[fd], nil
}

// Open opens name and returns a descriptor. It runs as a system call
// on the given LWP.
func (pf *ProcFiles) Open(l *sim.LWP, name string, flags OpenFlags) (int, error) {
	k := pf.fs.kern
	k.SyscallEnter(l)
	defer k.SyscallExit(l)
	cwd := pf.proc.Cwd()
	node, err := pf.fs.Lookup(cwd, name)
	if err != nil {
		if flags&OCreate == 0 {
			return -1, err
		}
		dir, leaf, rerr := pf.fs.resolve(cwd, name)
		if rerr != nil {
			return -1, rerr
		}
		dir.mu.Lock()
		if existing, ok := dir.children[leaf]; ok {
			node = existing
		} else {
			node = NewFile()
			dir.children[leaf] = node.(*File)
		}
		dir.mu.Unlock()
	} else if flags&OCreate != 0 && flags&OExcl != 0 {
		return -1, fmt.Errorf("%w: %s", ErrExist, name)
	}
	of := &OpenFile{node: node, flags: flags, refs: 1}
	switch n := node.(type) {
	case *Dir:
		if flags.writable() {
			return -1, fmt.Errorf("%w: %s", ErrIsDir, name)
		}
	case *File:
		if flags&OTrunc != 0 && flags.writable() {
			n.Truncate(0)
		}
	case *SynthFile:
		of.synth = n.Gen()
	case *Pipe:
		return -1, ErrNotSup
	}
	return pf.install(of), nil
}

// File returns the regular file behind fd, for mmap.
func (pf *ProcFiles) File(fd int) (*File, error) {
	of, err := pf.get(fd)
	if err != nil {
		return nil, err
	}
	f, ok := of.node.(*File)
	if !ok {
		return nil, ErrInval
	}
	return f, nil
}

// Read reads from the descriptor at its current offset, advancing it.
// Pipe reads may block the LWP in the kernel.
func (pf *ProcFiles) Read(l *sim.LWP, fd int, b []byte) (int, error) {
	k := pf.fs.kern
	of, err := pf.get(fd)
	if err != nil {
		return 0, err
	}
	if !of.flags.readable() {
		return 0, ErrBadF
	}
	k.SyscallEnter(l)
	defer k.SyscallExit(l)
	if of.pipe != nil {
		if !of.pipeRead {
			return 0, ErrBadF
		}
		return of.pipe.read(l, b)
	}
	switch n := of.node.(type) {
	case *File:
		of.mu.Lock()
		defer of.mu.Unlock()
		got := n.readAt(b, of.offset)
		of.offset += int64(got)
		if got == 0 && len(b) > 0 {
			return 0, io.EOF
		}
		return got, nil
	case *SynthFile:
		of.mu.Lock()
		defer of.mu.Unlock()
		if of.offset >= int64(len(of.synth)) {
			return 0, io.EOF
		}
		got := copy(b, of.synth[of.offset:])
		of.offset += int64(got)
		return got, nil
	case *Dir:
		return 0, ErrIsDir
	}
	return 0, ErrNotSup
}

// Write writes at the descriptor's current offset (or the end with
// OAppend), advancing it. Pipe writes may block when the pipe is full
// and raise SIGPIPE/EPIPE with no readers.
func (pf *ProcFiles) Write(l *sim.LWP, fd int, b []byte) (int, error) {
	k := pf.fs.kern
	of, err := pf.get(fd)
	if err != nil {
		return 0, err
	}
	if !of.flags.writable() {
		return 0, ErrBadF
	}
	k.SyscallEnter(l)
	defer k.SyscallExit(l)
	if of.pipe != nil {
		if of.pipeRead {
			return 0, ErrBadF
		}
		return of.pipe.write(l, b)
	}
	f, ok := of.node.(*File)
	if !ok {
		return 0, ErrNotSup
	}
	of.mu.Lock()
	defer of.mu.Unlock()
	if of.flags&OAppend != 0 {
		of.offset = f.ObjectSize()
	}
	if err := f.WriteObject(b, of.offset); err != nil {
		return 0, err
	}
	of.offset += int64(len(b))
	return len(b), nil
}

// Lseek repositions the shared offset.
func (pf *ProcFiles) Lseek(fd int, off int64, whence Whence) (int64, error) {
	of, err := pf.get(fd)
	if err != nil {
		return 0, err
	}
	if of.pipe != nil {
		return 0, ErrInval
	}
	of.mu.Lock()
	defer of.mu.Unlock()
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = of.offset
	case SeekEnd:
		switch n := of.node.(type) {
		case *File:
			base = n.ObjectSize()
		case *SynthFile:
			base = int64(len(of.synth))
		default:
			return 0, ErrInval
		}
	default:
		return 0, ErrInval
	}
	next := base + off
	if next < 0 {
		return 0, ErrInval
	}
	of.offset = next
	return next, nil
}

// Dup duplicates a descriptor; both share one open-file entry (and
// therefore one offset).
func (pf *ProcFiles) Dup(fd int) (int, error) {
	of, err := pf.get(fd)
	if err != nil {
		return -1, err
	}
	of.incRef()
	return pf.install(of), nil
}

// Close closes a descriptor. Because the table is process-wide, a
// close by one thread closes the file for every thread (paper).
func (pf *ProcFiles) Close(fd int) error {
	pf.mu.Lock()
	if fd < 0 || fd >= len(pf.fds) || pf.fds[fd] == nil {
		pf.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrBadF, fd)
	}
	of := pf.fds[fd]
	pf.fds[fd] = nil
	pf.mu.Unlock()
	pf.release(of)
	return nil
}

func (pf *ProcFiles) release(of *OpenFile) {
	of.mu.Lock()
	of.refs--
	last := of.refs == 0
	of.mu.Unlock()
	if of.pipe != nil {
		of.pipe.addEnd(of.pipeRead, -1)
	}
	_ = last
}

// CloseAll releases every descriptor (process exit).
func (pf *ProcFiles) CloseAll() {
	pf.mu.Lock()
	fds := pf.fds
	pf.fds = nil
	pf.mu.Unlock()
	for _, of := range fds {
		if of != nil {
			pf.release(of)
		}
	}
}

// CloseOnExec drops descriptors opened with OCloExec (used by exec).
func (pf *ProcFiles) CloseOnExec() {
	pf.mu.Lock()
	var drop []*OpenFile
	for i, of := range pf.fds {
		if of != nil && of.flags&OCloExec != 0 {
			drop = append(drop, of)
			pf.fds[i] = nil
		}
	}
	pf.mu.Unlock()
	for _, of := range drop {
		pf.release(of)
	}
}

// ForkInto duplicates the descriptor table into child, sharing
// open-file entries (offsets included), exactly as fork(2) does.
func (pf *ProcFiles) ForkInto(child *sim.Process) *ProcFiles {
	cf := NewProcFiles(pf.fs, child)
	pf.mu.Lock()
	defer pf.mu.Unlock()
	cf.fds = make([]*OpenFile, len(pf.fds))
	for i, of := range pf.fds {
		if of == nil {
			continue
		}
		of.incRef()
		cf.fds[i] = of
	}
	return cf
}

// NumOpen reports how many descriptors are open.
func (pf *ProcFiles) NumOpen() int {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	n := 0
	for _, of := range pf.fds {
		if of != nil {
			n++
		}
	}
	return n
}
