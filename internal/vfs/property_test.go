package vfs

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"sunosmt/internal/sim"
)

// Property: any sequence of writes through the fd layer reads back
// exactly, and the shared offset advances like a model file.
func TestFileWriteReadModelProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		h := newHarness(1)
		ok := true
		done := h.run(func(l *sim.LWP) {
			fd, err := h.pf.Open(l, "/tmp/model", OCreate|ORdWr)
			if err != nil {
				ok = false
				return
			}
			var model []byte
			for _, c := range chunks {
				if len(c) == 0 {
					continue
				}
				n, err := h.pf.Write(l, fd, c)
				if err != nil || n != len(c) {
					ok = false
					return
				}
				model = append(model, c...)
			}
			if _, err := h.pf.Lseek(fd, 0, SeekSet); err != nil {
				ok = false
				return
			}
			var back []byte
			buf := make([]byte, 37) // odd size to cross chunk boundaries
			for {
				n, err := h.pf.Read(l, fd, buf)
				back = append(back, buf[:n]...)
				if err == io.EOF {
					break
				}
				if err != nil {
					ok = false
					return
				}
			}
			if !bytes.Equal(back, model) {
				ok = false
			}
		})
		select {
		case <-done:
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: pipe transport delivers every byte in order regardless of
// chunking, across two LWPs.
func TestPipeOrderProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		h := newHarness(2)
		var rfd, wfd int
		setup := h.run(func(l *sim.LWP) {
			rfd, wfd, _ = h.pf.Pipe(l)
		})
		<-setup
		var want []byte
		for _, c := range chunks {
			want = append(want, c...)
		}
		if len(want) > 3*pipeCap {
			want = want[:3*pipeCap]
		}
		got := make([]byte, 0, len(want))
		reader := h.run(func(l *sim.LWP) {
			buf := make([]byte, 97)
			for len(got) < len(want) {
				n, err := h.pf.Read(l, rfd, buf)
				if err != nil {
					return
				}
				got = append(got, buf[:n]...)
			}
		})
		writer := h.run(func(l *sim.LWP) {
			rest := want
			for len(rest) > 0 {
				n := min(1000, len(rest))
				if _, err := h.pf.Write(l, wfd, rest[:n]); err != nil {
					return
				}
				rest = rest[n:]
			}
		})
		<-reader
		<-writer
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
