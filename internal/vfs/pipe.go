package vfs

import (
	"io"
	"sync"

	"sunosmt/internal/sim"
)

// pipeCap is the pipe buffer capacity, matching the classic 5-page
// UNIX pipe.
const pipeCap = 5 * 4096

// Pipe is an anonymous FIFO. A read with an empty buffer blocks the
// calling LWP in the kernel on an indefinite, interruptible wait —
// which is exactly the kind of wait that can trigger SIGWAITING when
// every LWP of a process is stuck in one.
type Pipe struct {
	mu      sync.Mutex
	fs      *FS
	buf     []byte
	readers int
	writers int
	rq      *sim.WaitQ // blocked readers
	wq      *sim.WaitQ // blocked writers
	pollq   *sim.WaitQ // pollers
}

func (*Pipe) isNode() {}

// NewPipe creates a pipe against the FS's kernel.
func newPipe(fs *FS) *Pipe {
	return &Pipe{
		fs:    fs,
		rq:    sim.NewWaitQ("pipe-read"),
		wq:    sim.NewWaitQ("pipe-write"),
		pollq: sim.NewWaitQ("pipe-poll"),
	}
}

// Pipe creates a pipe and returns (read fd, write fd), like pipe(2).
func (pf *ProcFiles) Pipe(l *sim.LWP) (int, int, error) {
	k := pf.fs.kern
	k.SyscallEnter(l)
	defer k.SyscallExit(l)
	p := newPipe(pf.fs)
	r := &OpenFile{node: p, flags: ORdOnly, refs: 1, pipe: p, pipeRead: true}
	w := &OpenFile{node: p, flags: OWrOnly, refs: 1, pipe: p, pipeRead: false}
	p.addEnd(true, 1)
	p.addEnd(false, 1)
	return pf.install(r), pf.install(w), nil
}

// addEnd adjusts the reader/writer reference counts; closing the last
// end wakes the other side (EOF for readers, EPIPE for writers).
func (p *Pipe) addEnd(read bool, delta int) {
	p.mu.Lock()
	if read {
		p.readers += delta
	} else {
		p.writers += delta
	}
	wakeAll := (read && p.readers == 0) || (!read && p.writers == 0)
	p.mu.Unlock()
	if wakeAll {
		k := p.fs.kern
		k.Wakeup(p.rq, -1)
		k.Wakeup(p.wq, -1)
		k.Wakeup(p.pollq, -1)
	}
}

// read implements pipe reads: blocks while empty and writers remain;
// returns EOF when empty with no writers.
func (p *Pipe) read(l *sim.LWP, b []byte) (int, error) {
	k := p.fs.kern
	for {
		p.mu.Lock()
		if len(p.buf) > 0 {
			n := copy(b, p.buf)
			p.buf = p.buf[n:]
			p.mu.Unlock()
			k.Wakeup(p.wq, -1)
			k.Wakeup(p.pollq, -1)
			return n, nil
		}
		if p.writers == 0 {
			p.mu.Unlock()
			return 0, io.EOF
		}
		p.mu.Unlock()
		res := k.Sleep(l, p.rq, sim.SleepOpts{Interruptible: true, Indefinite: true})
		if res == sim.WakeInterrupted {
			return 0, sim.ErrIntr
		}
	}
}

// write implements pipe writes: blocks while full; raises SIGPIPE and
// returns EPIPE with no readers.
func (p *Pipe) write(l *sim.LWP, b []byte) (int, error) {
	k := p.fs.kern
	total := 0
	for len(b) > 0 {
		p.mu.Lock()
		if p.readers == 0 {
			p.mu.Unlock()
			k.PostSignalLWP(l, sim.SIGPIPE)
			return total, ErrPipe
		}
		space := pipeCap - len(p.buf)
		if space > 0 {
			n := min(space, len(b))
			p.buf = append(p.buf, b[:n]...)
			b = b[n:]
			total += n
			p.mu.Unlock()
			k.Wakeup(p.rq, -1)
			k.Wakeup(p.pollq, -1)
			continue
		}
		p.mu.Unlock()
		res := k.Sleep(l, p.wq, sim.SleepOpts{Interruptible: true, Indefinite: true})
		if res == sim.WakeInterrupted {
			return total, sim.ErrIntr
		}
	}
	return total, nil
}

func (p *Pipe) pollReadable() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf) > 0 || p.writers == 0
}

func (p *Pipe) pollWritable() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf) < pipeCap || p.readers == 0
}

// Buffered reports the bytes currently queued in the pipe.
func (p *Pipe) Buffered() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf)
}
