// Package vfs is the file-system substrate: a rooted tree of
// directories, regular files and synthetic nodes, per-process file
// descriptor tables with UNIX sharing semantics, pipes, and poll.
//
// The paper leans on the file system in several places this package
// must reproduce:
//
//   - File descriptors are shared by all threads in a process: if one
//     thread closes a file it is closed for all; seek offsets live in
//     the shared open-file entry, so seeks and reads by different
//     threads (or a parent and child sharing the descriptor across
//     fork) interleave on one offset.
//   - Synchronization variables can be placed in files, which can be
//     mapped MAP_SHARED by several processes, and such variables have
//     lifetimes beyond that of the creating process. Files here
//     implement vm.Object so they can be mapped, and they persist in
//     the FS tree after their creator exits.
//   - Blocking I/O (pipe reads/writes, poll) blocks the calling LWP
//     in the kernel; other LWPs keep running, and an indefinite wait
//     by every LWP triggers SIGWAITING.
package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"

	"sunosmt/internal/sim"
	"sunosmt/internal/vm"
)

// Errors mirroring the relevant errnos.
var (
	ErrNoEnt    = errors.New("vfs: no such file or directory")
	ErrExist    = errors.New("vfs: file exists")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrBadF     = errors.New("vfs: bad file descriptor")
	ErrPipe     = errors.New("vfs: broken pipe")
	ErrInval    = errors.New("vfs: invalid argument")
	ErrNotSup   = errors.New("vfs: operation not supported")
	ErrNotEmpty = errors.New("vfs: directory not empty")
)

// Node is any object in the file tree.
type Node interface {
	isNode()
}

// Dir is a directory node.
type Dir struct {
	mu       sync.Mutex
	children map[string]Node
}

func (*Dir) isNode() {}

// NewDir returns an empty directory.
func NewDir() *Dir { return &Dir{children: make(map[string]Node)} }

// File is a regular file. It implements vm.Object so it can be mapped
// into address spaces; synchronization variables placed in a mapped
// file are named (ObjectID, offset) and outlive any single process.
type File struct {
	id   uint64
	mu   sync.Mutex
	data []byte
}

func (*File) isNode() {}

// NewFile returns an empty regular file.
func NewFile() *File { return &File{id: vm.NextObjectID()} }

// ObjectID implements vm.Object.
func (f *File) ObjectID() uint64 { return f.id }

// ObjectSize implements vm.Object.
func (f *File) ObjectSize() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.data))
}

// FileBacked implements vm.Object.
func (f *File) FileBacked() bool { return true }

// ReadObject implements vm.Object: reads beyond EOF return zeroes
// (mapped pages past the end are demand-zero here).
func (f *File) ReadObject(b []byte, off int64) error {
	if off < 0 {
		return ErrInval
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range b {
		p := off + int64(i)
		if p < int64(len(f.data)) {
			b[i] = f.data[p]
		} else {
			b[i] = 0
		}
	}
	return nil
}

// WriteObject implements vm.Object, growing the file as needed.
func (f *File) WriteObject(b []byte, off int64) error {
	if off < 0 {
		return ErrInval
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if need := off + int64(len(b)); need > int64(len(f.data)) {
		grown := make([]byte, need)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:], b)
	return nil
}

// readAt copies file contents (no zero fill past EOF) and reports n.
func (f *File) readAt(b []byte, off int64) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off >= int64(len(f.data)) {
		return 0
	}
	return copy(b, f.data[off:])
}

// Truncate sets the file length.
func (f *File) Truncate(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case n < int64(len(f.data)):
		f.data = f.data[:n]
	case n > int64(len(f.data)):
		grown := make([]byte, n)
		copy(grown, f.data)
		f.data = grown
	}
}

// SynthFile is a synthetic read-only node whose contents are
// generated at open time; /proc status files are SynthFiles.
type SynthFile struct {
	Gen func() []byte
}

func (*SynthFile) isNode() {}

// FS is a mounted file-system tree.
type FS struct {
	kern *sim.Kernel
	root *Dir
}

// NewFS creates a file system with an empty root and a /tmp
// directory.
func NewFS(kern *sim.Kernel) *FS {
	fs := &FS{kern: kern, root: NewDir()}
	fs.root.children["tmp"] = NewDir()
	return fs
}

// Kernel returns the kernel this FS blocks against.
func (fs *FS) Kernel() *sim.Kernel { return fs.kern }

// WrapDir returns an FS view rooted at an existing directory, so
// synthetic trees (procfs) can be built with the path operations.
func WrapDir(kern *sim.Kernel, d *Dir) *FS { return &FS{kern: kern, root: d} }

// Root returns the root directory.
func (fs *FS) Root() *Dir { return fs.root }

// resolve walks name (absolute or relative to cwd) and returns the
// parent directory and final component. The final component need not
// exist.
func (fs *FS) resolve(cwd, name string) (*Dir, string, error) {
	if name == "" {
		return nil, "", ErrNoEnt
	}
	if !path.IsAbs(name) {
		name = path.Join(cwd, name)
	}
	name = path.Clean(name)
	if name == "/" {
		return nil, "", ErrIsDir
	}
	parts := strings.Split(strings.TrimPrefix(name, "/"), "/")
	dir := fs.root
	for _, comp := range parts[:len(parts)-1] {
		dir.mu.Lock()
		next, ok := dir.children[comp]
		dir.mu.Unlock()
		if !ok {
			return nil, "", fmt.Errorf("%w: %s", ErrNoEnt, name)
		}
		nd, ok := next.(*Dir)
		if !ok {
			return nil, "", fmt.Errorf("%w: %s", ErrNotDir, comp)
		}
		dir = nd
	}
	return dir, parts[len(parts)-1], nil
}

// Lookup returns the node at name.
func (fs *FS) Lookup(cwd, name string) (Node, error) {
	if path.Clean(name) == "/" {
		return fs.root, nil
	}
	dir, leaf, err := fs.resolve(cwd, name)
	if err != nil {
		return nil, err
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	n, ok := dir.children[leaf]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoEnt, name)
	}
	return n, nil
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(cwd, name string) error {
	dir, leaf, err := fs.resolve(cwd, name)
	if err != nil {
		return err
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	if _, ok := dir.children[leaf]; ok {
		return fmt.Errorf("%w: %s", ErrExist, name)
	}
	dir.children[leaf] = NewDir()
	return nil
}

// Attach places an externally built node (e.g. a procfs synthetic
// tree) at name, replacing any existing entry.
func (fs *FS) Attach(cwd, name string, n Node) error {
	dir, leaf, err := fs.resolve(cwd, name)
	if err != nil {
		return err
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	dir.children[leaf] = n
	return nil
}

// Unlink removes a file (not a directory).
func (fs *FS) Unlink(cwd, name string) error {
	dir, leaf, err := fs.resolve(cwd, name)
	if err != nil {
		return err
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	n, ok := dir.children[leaf]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoEnt, name)
	}
	if _, isDir := n.(*Dir); isDir {
		return fmt.Errorf("%w: %s", ErrIsDir, name)
	}
	delete(dir.children, leaf)
	return nil
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(cwd, name string) error {
	dir, leaf, err := fs.resolve(cwd, name)
	if err != nil {
		return err
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	n, ok := dir.children[leaf]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoEnt, name)
	}
	d, isDir := n.(*Dir)
	if !isDir {
		return fmt.Errorf("%w: %s", ErrNotDir, name)
	}
	d.mu.Lock()
	empty := len(d.children) == 0
	d.mu.Unlock()
	if !empty {
		return fmt.Errorf("%w: %s", ErrNotEmpty, name)
	}
	delete(dir.children, leaf)
	return nil
}

// ReadDir lists the names in a directory, sorted.
func (fs *FS) ReadDir(cwd, name string) ([]string, error) {
	n, err := fs.Lookup(cwd, name)
	if err != nil {
		return nil, err
	}
	d, ok := n.(*Dir)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.children))
	for k := range d.children {
		names = append(names, k)
	}
	sort.Strings(names)
	return names, nil
}
