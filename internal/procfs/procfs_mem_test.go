package procfs

import (
	"fmt"
	"strings"
	"testing"

	"sunosmt/internal/sim"
	"sunosmt/internal/vfs"
	"sunosmt/internal/vm"
)

// TestProcStatusMemoryAccounting: /proc/<pid>/status reports the
// reserve/commit split — vmres (carved address space), vmcom
// (first-touch committed bytes), vmpeak (committed high-water mark).
func TestProcStatusMemoryAccounting(t *testing.T) {
	k := sim.NewKernel(sim.Config{NCPU: 1})
	fs := vfs.NewFS(k)
	pfs, err := Mount(k, fs)
	if err != nil {
		t.Fatal(err)
	}
	target := k.NewProcess("memproc", nil)
	as := vm.New(target.AddFault)
	target.Mem = as
	const stk = 64 << 10
	base, err := as.MapStack(stk)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.TouchStack(base, stk); err != nil {
		t.Fatal(err)
	}
	if err := pfs.Refresh(); err != nil {
		t.Fatal(err)
	}

	obs := k.NewProcess("mdb", nil)
	opf := vfs.NewProcFiles(fs, obs)
	l, _ := k.NewLWP(obs, sim.ClassTS, 30)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover(); k.ExitLWP(l) }()
		k.Start(l)
		status := readAll(t, k, opf, l, "/proc/"+itoa(int(target.PID()))+"/status")
		for _, want := range []string{
			fmt.Sprintf("vmres:\t%d\n", as.Reserved()),
			fmt.Sprintf("vmcom:\t%d\n", as.Committed()),
			fmt.Sprintf("vmpeak:\t%d\n", as.PeakCommitted()),
		} {
			if !strings.Contains(status, want) {
				t.Errorf("status missing %q:\n%s", want, status)
			}
		}
	}()
	<-done
	if as.Committed() == 0 || as.Reserved() <= as.Committed() {
		t.Errorf("test precondition: Reserved %d, Committed %d; want 0 < committed < reserved",
			as.Reserved(), as.Committed())
	}
}
