// Package procfs reproduces the paper's /proc extension [Faulkner
// 1991]: the process file system reflects the multi-threaded process
// model. A kernel interface can expose only kernel-supported threads
// of control — LWPs — so /proc publishes per-process and per-LWP
// status nodes; debugger control of library threads is accomplished
// by cooperation between the debugger and the threads library, for
// which the library registers a thread lister here.
//
// Layout (all nodes are synthetic, generated at open time):
//
//	/proc/sched               per-CPU dispatcher queues: processor
//	                          set, queue depth, dispatch/steal/
//	                          migration counters, balancer moves
//	/proc/<pid>/status        process summary
//	/proc/<pid>/lwps          one line per LWP
//	/proc/<pid>/psinfo        scheduling placement per LWP: class,
//	                          priority, processor set, CPU binding
//	/proc/<pid>/threads       one line per library thread (via the
//	                          registered lister; absent without one)
//	/proc/<pid>/lstatus       lock wait-for edges of the process's
//	                          threads and any deadlock cycles the
//	                          system-wide detector finds
//	/proc/<pid>/health        deadman-watchdog report: LWPs stuck
//	                          on-CPU and threads blocked past the
//	                          configured deadline
//
// Mount attaches the tree; Refresh regenerates the directory for the
// current process table (the tree is a snapshot, like reading /proc
// with ls).
package procfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sunosmt/internal/core"
	"sunosmt/internal/sim"
	"sunosmt/internal/vfs"
	"sunosmt/internal/vm"
)

// ProcFS serves /proc for one kernel.
type ProcFS struct {
	kern *sim.Kernel
	fs   *vfs.FS

	mu      sync.Mutex
	listers map[sim.PID]*core.Runtime
}

// Mount creates /proc in fs and returns the server. Call Refresh to
// (re)populate it.
func Mount(kern *sim.Kernel, fs *vfs.FS) (*ProcFS, error) {
	pfs := &ProcFS{kern: kern, fs: fs, listers: make(map[sim.PID]*core.Runtime)}
	if err := fs.Mkdir("/", "/proc"); err != nil {
		return nil, err
	}
	return pfs, nil
}

// RegisterRuntime registers the threads library instance of a process
// so debuggers can enumerate its user-level threads — the
// library/debugger cooperation of the paper.
func (pfs *ProcFS) RegisterRuntime(rt *core.Runtime) {
	pfs.mu.Lock()
	pfs.listers[rt.Process().PID()] = rt
	pfs.mu.Unlock()
}

// Refresh rebuilds the /proc tree to match the current process table.
func (pfs *ProcFS) Refresh() error {
	root := vfs.NewDir()
	pfs.attach(root, "sched", func() []byte { return pfs.schedStatus() })
	for _, p := range pfs.kern.Processes() {
		p := p
		dir := vfs.NewDir()
		pfs.attach(dir, "status", func() []byte { return pfs.procStatus(p) })
		pfs.attach(dir, "lwps", func() []byte { return pfs.lwpStatus(p) })
		pfs.attach(dir, "psinfo", func() []byte { return pfs.psinfo(p) })
		pfs.mu.Lock()
		rt := pfs.listers[p.PID()]
		pfs.mu.Unlock()
		pfs.attach(dir, "usage", func() []byte { return pfs.usage(p, rt) })
		if rt != nil {
			pfs.attach(dir, "threads", func() []byte { return pfs.threadStatus(rt) })
			pfs.attach(dir, "lstatus", func() []byte { return pfs.lockStatus(rt) })
			pfs.attach(dir, "health", func() []byte { return pfs.health(rt) })
		}
		pfs.attachDir(root, fmt.Sprintf("%d", p.PID()), dir)
	}
	return pfs.fs.Attach("/", "/proc", root)
}

func (pfs *ProcFS) attach(d *vfs.Dir, name string, gen func() []byte) {
	pfs.attachNode(d, name, &vfs.SynthFile{Gen: gen})
}

func (pfs *ProcFS) attachDir(d *vfs.Dir, name string, child *vfs.Dir) {
	pfs.attachNode(d, name, child)
}

func (pfs *ProcFS) attachNode(d *vfs.Dir, name string, n vfs.Node) {
	// Dir children maps are unexported; go through a tiny scratch
	// FS bound to d as root.
	scratch := vfs.WrapDir(pfs.kern, d)
	scratch.Attach("/", "/"+name, n)
}

func (pfs *ProcFS) procStatus(p *sim.Process) []byte {
	r := p.Getrusage()
	var sb strings.Builder
	fmt.Fprintf(&sb, "pid:\t%d\n", p.PID())
	fmt.Fprintf(&sb, "comm:\t%s\n", p.Name())
	if pp := p.Parent(); pp != nil {
		fmt.Fprintf(&sb, "ppid:\t%d\n", pp.PID())
	} else {
		fmt.Fprintf(&sb, "ppid:\t0\n")
	}
	fmt.Fprintf(&sb, "state:\t%v\n", p.State())
	fmt.Fprintf(&sb, "nlwp:\t%d\n", r.LiveLWPs)
	fmt.Fprintf(&sb, "utime:\t%v\n", r.UserTime)
	fmt.Fprintf(&sb, "stime:\t%v\n", r.SysTime)
	fmt.Fprintf(&sb, "minflt:\t%d\n", r.MinorFaults)
	fmt.Fprintf(&sb, "majflt:\t%d\n", r.MajorFaults)
	// Address-space accounting under the reserve/commit split:
	// vmres is carved address space (vsize), vmcom the first-touch
	// committed bytes (the simulated RSS), vmpeak its high-water
	// mark. A million idle threads show a large vmres and a tiny
	// vmcom — the overcommit the lazily-committed stacks buy.
	if as, ok := p.Mem.(*vm.AddressSpace); ok && as != nil {
		fmt.Fprintf(&sb, "vmres:\t%d\n", as.Reserved())
		fmt.Fprintf(&sb, "vmcom:\t%d\n", as.Committed())
		fmt.Fprintf(&sb, "vmpeak:\t%d\n", as.PeakCommitted())
	}
	return []byte(sb.String())
}

func (pfs *ProcFS) lwpStatus(p *sim.Process) []byte {
	lwps := p.LWPs()
	sort.Slice(lwps, func(i, j int) bool { return lwps[i].ID() < lwps[j].ID() })
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-10s %-6s %-10s %-10s %s\n", "LWPID", "STATE", "CLASS", "UTIME", "STIME", "WCHAN")
	for _, l := range lwps {
		u, s := l.Usage()
		wchan := l.Wchan()
		if wchan == "" {
			wchan = "-"
		}
		fmt.Fprintf(&sb, "%-6d %-10v %-6v %-10v %-10v %s\n", l.ID(), l.State(), l.Class(), u, s, wchan)
	}
	return []byte(sb.String())
}

// schedStatus renders the machine-wide dispatcher view: one row per
// CPU with its processor set, instantaneous queue depth (and how many
// of those are hard-bound, hence unstealable), and the monotonic
// dispatch/steal/migration counters, followed by the processor sets
// and the balancer's move count.
func (pfs *ProcFS) schedStatus() []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-5s %-6s %-6s %-10s %-8s %s\n",
		"CPU", "PSET", "RUNQ", "BOUND", "DISPATCH", "STEAL", "MIGRATE")
	for _, cs := range pfs.kern.SchedStats() {
		fmt.Fprintf(&sb, "%-4d %-5d %-6d %-6d %-10d %-8d %d\n",
			cs.CPU, cs.Pset, cs.RunqDepth, cs.RunqBound, cs.Dispatches, cs.Steals, cs.Migrations)
	}
	for _, ps := range pfs.kern.Psets() {
		fmt.Fprintf(&sb, "pset %d: cpus %v bound-lwps %d\n", ps.ID, ps.CPUs, ps.BoundLWPs)
	}
	fmt.Fprintf(&sb, "balance-moves: %d\n", pfs.kern.BalanceMoves())
	return []byte(sb.String())
}

// psinfo renders the scheduling placement of each LWP: class, user
// priority, the processor set it is confined to, and the CPU it is
// hard-bound to (- when unbound) — the psrset/pbind view.
func (pfs *ProcFS) psinfo(p *sim.Process) []byte {
	lwps := p.LWPs()
	sort.Slice(lwps, func(i, j int) bool { return lwps[i].ID() < lwps[j].ID() })
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-6s %-6s %-6s %s\n", "LWPID", "CLASS", "PRIO", "PSET", "BOUND-CPU")
	for _, l := range lwps {
		bound := "-"
		if c := l.BoundCPU(); c >= 0 {
			bound = fmt.Sprintf("%d", c)
		}
		fmt.Fprintf(&sb, "%-6d %-6v %-6d %-6d %s\n", l.ID(), l.Class(), l.Priority(), l.Pset(), bound)
	}
	return []byte(sb.String())
}

// usage renders the Solaris prusage-style microstate accounting view:
// process totals aggregated over the live LWPs, one line per LWP, and
// — when the threads library registered itself — one line per library
// thread. Per-row times always sum exactly to the row's TOTAL.
func (pfs *ProcFS) usage(p *sim.Process, rt *core.Runtime) []byte {
	lwps := p.LWPs()
	sort.Slice(lwps, func(i, j int) bool { return lwps[i].ID() < lwps[j].ID() })
	var sb strings.Builder
	var agg sim.LWPMicrostates
	rows := make([]sim.LWPMicrostates, len(lwps))
	for i, l := range lwps {
		u := l.Microstates()
		rows[i] = u
		agg.OnCPU += u.OnCPU
		agg.Runq += u.Runq
		agg.Sleep += u.Sleep
		agg.Park += u.Park
		agg.Stopped += u.Stopped
		agg.Embryo += u.Embryo
		agg.Total += u.Total
	}
	fmt.Fprintf(&sb, "pid:\t%d\n", p.PID())
	fmt.Fprintf(&sb, "oncpu:\t%v\nrunq:\t%v\nsleep:\t%v\npark:\t%v\nstopped:\t%v\nembryo:\t%v\ntotal:\t%v\n",
		agg.OnCPU, agg.Runq, agg.Sleep, agg.Park, agg.Stopped, agg.Embryo, agg.Total)
	fmt.Fprintf(&sb, "%-6s %-10s %-12s %-12s %-12s %-12s %-12s %s\n",
		"LWPID", "STATE", "ONCPU", "RUNQ", "SLEEP", "PARK", "STOP", "TOTAL")
	for i, l := range lwps {
		u := rows[i]
		fmt.Fprintf(&sb, "%-6d %-10v %-12v %-12v %-12v %-12v %-12v %v\n",
			l.ID(), u.State, u.OnCPU, u.Runq, u.Sleep, u.Park, u.Stopped, u.Total)
	}
	if rt != nil {
		threads := rt.Threads()
		sort.Slice(threads, func(i, j int) bool { return threads[i].ID() < threads[j].ID() })
		fmt.Fprintf(&sb, "%-6s %-10s %-12s %-12s %-12s %-12s %-12s %s\n",
			"TID", "STATE", "USER", "RUNQ", "SLEEP", "LOCK", "STOP", "TOTAL")
		for _, t := range threads {
			ms := t.Microstates()
			fmt.Fprintf(&sb, "%-6d %-10v %-12v %-12v %-12v %-12v %-12v %v\n",
				t.ID(), ms.State, ms.User, ms.Runq, ms.Sleep, ms.Lock, ms.Stopped, ms.Total)
		}
	}
	return []byte(sb.String())
}

func (pfs *ProcFS) threadStatus(rt *core.Runtime) []byte {
	threads := rt.Threads()
	sort.Slice(threads, func(i, j int) bool { return threads[i].ID() < threads[j].ID() })
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-10s %-6s %-6s %-6s %s\n", "TID", "STATE", "PRIO", "EPRI", "BOUND", "BLOCKED-ON")
	for _, t := range threads {
		blocked := "-"
		if bi := t.BlockedOn(); bi != nil {
			blocked = bi.Kind + ":" + bi.Name
		}
		fmt.Fprintf(&sb, "%-6d %-10v %-6d %-6d %-6v %s\n", t.ID(), t.State(), t.Priority(), t.EffPriority(), t.Bound(), blocked)
	}
	fmt.Fprintf(&sb, "pool-lwps: %d  runnable: %d\n", rt.PoolSize(), rt.RunnableThreads())
	depth, occ := rt.RunqStats()
	fmt.Fprintf(&sb, "runq-depth: %d  occupancy:", depth)
	if len(occ) == 0 {
		sb.WriteString(" -")
	}
	for _, pc := range occ {
		fmt.Fprintf(&sb, " prio%d:%d", pc.Prio, pc.Count)
	}
	sb.WriteByte('\n')
	// The ready queue is sharded per CPU; the depth above is the sum.
	// One line per shard with its steal counter (pops taken by an LWP
	// affine to another shard).
	for _, ss := range rt.DispatchStats() {
		fmt.Fprintf(&sb, "runq-shard%d: depth %d  pushes %d  pops %d  stolen %d\n",
			ss.Shard, ss.Depth, ss.Pushes, ss.Pops, ss.Stolen)
	}
	return []byte(sb.String())
}

// lockStatus renders the process's outgoing wait-for edges with
// resolved owners, then runs the system-wide deadlock detector over
// every registered runtime and reports the cycles that involve this
// process.
func (pfs *ProcFS) lockStatus(rt *core.Runtime) []byte {
	pid := rt.Process().PID()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-8s %-20s %-10s %s\n", "TID", "KIND", "OBJECT", "POLICY", "OWNER")
	for _, w := range rt.LockWaiters() {
		owner := "-"
		if w.HasOwner {
			opid := w.Owner.PID
			if opid == 0 {
				opid = pid
			}
			owner = fmt.Sprintf("%d/%d", opid, w.Owner.TID)
		}
		policy := w.Policy
		if policy == "" {
			policy = "-"
		}
		fmt.Fprintf(&sb, "%-6d %-8s %-20s %-10s %s\n", w.TID, w.Kind, w.Name, policy, owner)
	}
	cycles := core.DetectDeadlocks(pfs.runtimes())
	n := 0
	for _, d := range cycles {
		involved := false
		for _, node := range d.Nodes {
			if node.PID == pid {
				involved = true
				break
			}
		}
		if !involved {
			continue
		}
		n++
		fmt.Fprintf(&sb, "deadlock: %s\n", d)
	}
	fmt.Fprintf(&sb, "deadlocks: %d\n", n)
	return []byte(sb.String())
}

// health renders the deadman-watchdog report: one line per LWP stuck
// on-CPU past the deadline and one per thread blocked or sleeping
// past it, headed by an ok/stuck status line.
func (pfs *ProcFS) health(rt *core.Runtime) []byte {
	rep := rt.Health(0)
	var sb strings.Builder
	fmt.Fprintf(&sb, "deadline:\t%v\n", rep.Deadline)
	if rep.Healthy() {
		fmt.Fprintf(&sb, "status:\tok\n")
		return []byte(sb.String())
	}
	fmt.Fprintf(&sb, "status:\tstuck (%d lwps, %d threads)\n",
		len(rep.StuckLWPs), len(rep.StuckThreads))
	for _, lh := range rep.StuckLWPs {
		fmt.Fprintf(&sb, "lwp %d: on-cpu %v (cpu %d, %d ring dispatches)\n",
			lh.ID, lh.OnCPUFor, lh.CPU, lh.Dispatches)
	}
	for _, th := range rep.StuckThreads {
		on := th.BlockedOn
		if on == "" {
			on = "-"
		}
		fmt.Fprintf(&sb, "thread %d: %v %v blocked-on %s\n",
			th.ID, th.State, th.StuckFor, on)
	}
	return []byte(sb.String())
}

// runtimes snapshots every registered threads-library instance, in
// pid order so detection passes are deterministic.
func (pfs *ProcFS) runtimes() []*core.Runtime {
	pfs.mu.Lock()
	rts := make([]*core.Runtime, 0, len(pfs.listers))
	for _, rt := range pfs.listers {
		rts = append(rts, rt)
	}
	pfs.mu.Unlock()
	sort.Slice(rts, func(i, j int) bool { return rts[i].Process().PID() < rts[j].Process().PID() })
	return rts
}
