package procfs

import (
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sunosmt/internal/core"
	"sunosmt/internal/sim"
	"sunosmt/internal/vfs"
)

func readAll(t *testing.T, k *sim.Kernel, pf *vfs.ProcFiles, l *sim.LWP, path string) string {
	t.Helper()
	fd, err := pf.Open(l, path, vfs.ORdOnly)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer pf.Close(fd)
	var out []byte
	b := make([]byte, 256)
	for {
		n, err := pf.Read(l, fd, b)
		out = append(out, b[:n]...)
		if err == io.EOF {
			return string(out)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestProcStatusAndThreads(t *testing.T) {
	k := sim.NewKernel(sim.Config{NCPU: 2})
	fs := vfs.NewFS(k)
	pfs, err := Mount(k, fs)
	if err != nil {
		t.Fatal(err)
	}

	// A multi-threaded target process.
	target := k.NewProcess("victim", nil)
	rt := core.NewRuntime(k, target, core.Config{})
	pfs.RegisterRuntime(rt)
	var released atomic.Bool
	if _, err := rt.Start(func(self *core.Thread, _ any) {
		for i := 0; i < 3; i++ {
			rt.Create(func(c *core.Thread, _ any) {
				c.Park() // parked worker, visible in /proc
			}, nil, core.CreateOpts{Flags: core.ThreadDaemon})
		}
		for !released.Load() {
			self.Yield() // let the workers run and park
			time.Sleep(100 * time.Microsecond)
		}
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Let the workers park. Counting runnables is racy here — the
	// check can sample before the workers are even created — so wait
	// until three threads are observably asleep.
	for {
		parked := 0
		for _, th := range rt.Threads() {
			if th.State() == core.ThreadSleeping {
				parked++
			}
		}
		if parked >= 3 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := pfs.Refresh(); err != nil {
		t.Fatal(err)
	}

	// An observer process (the debugger) reads /proc.
	obs := k.NewProcess("mdb", nil)
	opf := vfs.NewProcFiles(fs, obs)
	l, _ := k.NewLWP(obs, sim.ClassTS, 30)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover(); k.ExitLWP(l) }()
		k.Start(l)
		pid := target.PID()
		status := readAll(t, k, opf, l, "/proc/"+itoa(int(pid))+"/status")
		if !strings.Contains(status, "comm:\tvictim") {
			t.Errorf("status missing comm:\n%s", status)
		}
		if !strings.Contains(status, "state:\trunning") {
			t.Errorf("status missing state:\n%s", status)
		}
		lwps := readAll(t, k, opf, l, "/proc/"+itoa(int(pid))+"/lwps")
		if !strings.Contains(lwps, "LWPID") {
			t.Errorf("lwps header missing:\n%s", lwps)
		}
		threads := readAll(t, k, opf, l, "/proc/"+itoa(int(pid))+"/threads")
		if strings.Count(threads, "sleeping") < 3 {
			t.Errorf("expected 3 parked threads:\n%s", threads)
		}
		if !strings.Contains(threads, "pool-lwps:") {
			t.Errorf("threads footer missing:\n%s", threads)
		}
		if !strings.Contains(threads, "runq-depth:") || !strings.Contains(threads, "occupancy:") {
			t.Errorf("threads footer missing run-queue stats:\n%s", threads)
		}
		// The runnable total must be the sum over per-CPU shards, and
		// each shard reports its own depth and steal counter.
		if !strings.Contains(threads, "runq-shard0:") || !strings.Contains(threads, "runq-shard1:") {
			t.Errorf("threads footer missing per-shard run-queue lines:\n%s", threads)
		}
		if !strings.Contains(threads, "stolen") {
			t.Errorf("threads footer missing steal counters:\n%s", threads)
		}
		psinfo := readAll(t, k, opf, l, "/proc/"+itoa(int(pid))+"/psinfo")
		if !strings.Contains(psinfo, "PSET") || !strings.Contains(psinfo, "BOUND-CPU") {
			t.Errorf("psinfo missing placement columns:\n%s", psinfo)
		}
		sched := readAll(t, k, opf, l, "/proc/sched")
		if !strings.Contains(sched, "STEAL") || !strings.Contains(sched, "balance-moves:") {
			t.Errorf("sched missing dispatcher columns:\n%s", sched)
		}
		if strings.Count(sched, "\n") < 3 { // header + 2 CPUs
			t.Errorf("sched missing per-CPU rows:\n%s", sched)
		}
		usage := readAll(t, k, opf, l, "/proc/"+itoa(int(pid))+"/usage")
		if !strings.Contains(usage, "oncpu:") || !strings.Contains(usage, "total:") {
			t.Errorf("usage missing process totals:\n%s", usage)
		}
		if !strings.Contains(usage, "LWPID") {
			t.Errorf("usage missing per-LWP microstate table:\n%s", usage)
		}
		if !strings.Contains(usage, "TID") || !strings.Contains(usage, "LOCK") {
			t.Errorf("usage missing per-thread microstate table:\n%s", usage)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("observer timed out")
	}
	released.Store(true)
	select {
	case <-rt.Exited():
	case <-time.After(10 * time.Second):
		t.Fatal("target did not exit")
	}
}

// TestPsinfoReflectsBinding checks that psrset/pbind state — an LWP's
// class, processor set, and hard CPU binding — shows up in its
// process's psinfo node and in the machine-wide sched node.
func TestPsinfoReflectsBinding(t *testing.T) {
	k := sim.NewKernel(sim.Config{NCPU: 2})
	fs := vfs.NewFS(k)
	pfs, err := Mount(k, fs)
	if err != nil {
		t.Fatal(err)
	}
	target := k.NewProcess("bound", nil)
	bl, err := k.NewLWP(target, sim.ClassRT, 10)
	if err != nil {
		t.Fatal(err)
	}
	ps := k.PsetCreate()
	if err := k.PsetAssign(ps, 1); err != nil {
		t.Fatal(err)
	}
	if err := k.PsetBind(bl, ps); err != nil {
		t.Fatal(err)
	}
	if err := k.BindCPU(bl, 1); err != nil {
		t.Fatal(err)
	}
	if err := pfs.Refresh(); err != nil {
		t.Fatal(err)
	}

	obs := k.NewProcess("mdb", nil)
	opf := vfs.NewProcFiles(fs, obs)
	l, _ := k.NewLWP(obs, sim.ClassTS, 30)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover(); k.ExitLWP(l) }()
		k.Start(l)
		psinfo := readAll(t, k, opf, l, "/proc/"+itoa(int(target.PID()))+"/psinfo")
		row := ""
		for _, line := range strings.Split(psinfo, "\n") {
			if strings.HasPrefix(line, itoa(int(bl.ID()))+" ") {
				row = line
			}
		}
		if row == "" {
			t.Errorf("psinfo has no row for lwp %d:\n%s", bl.ID(), psinfo)
		}
		for _, want := range []string{"RT", itoa(int(ps)), "1"} {
			if !strings.Contains(row, want) {
				t.Errorf("psinfo row %q missing %q", row, want)
			}
		}
		sched := readAll(t, k, opf, l, "/proc/sched")
		if !strings.Contains(sched, "pset "+itoa(int(ps))+": cpus [1] bound-lwps 1") {
			t.Errorf("sched missing pset membership:\n%s", sched)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("observer timed out")
	}
}

func TestRefreshDropsDeadProcesses(t *testing.T) {
	k := sim.NewKernel(sim.Config{NCPU: 1})
	fs := vfs.NewFS(k)
	pfs, _ := Mount(k, fs)
	p := k.NewProcess("ephemeral", nil)
	rt := core.NewRuntime(k, p, core.Config{})
	rt.Start(func(*core.Thread, any) {}, nil)
	<-rt.Exited()
	pfs.Refresh()
	names, err := fs.ReadDir("/", "/proc")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == itoa(int(p.PID())) {
			t.Fatalf("dead process still listed: %v", names)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestHealthNode checks the /proc/<pid>/health deadman report: a
// process with a worker blocked far past the watchdog deadline
// renders as stuck with a per-thread line naming what it waits on.
func TestHealthNode(t *testing.T) {
	k := sim.NewKernel(sim.Config{NCPU: 2})
	fs := vfs.NewFS(k)
	pfs, err := Mount(k, fs)
	if err != nil {
		t.Fatal(err)
	}
	target := k.NewProcess("wedged", nil)
	rt := core.NewRuntime(k, target, core.Config{WatchdogDeadline: time.Millisecond})
	pfs.RegisterRuntime(rt)
	var released atomic.Bool
	if _, err := rt.Start(func(self *core.Thread, _ any) {
		rt.Create(func(c *core.Thread, _ any) {
			c.Park() // blocked far past the 1ms deadline
		}, nil, core.CreateOpts{Flags: core.ThreadDaemon})
		for !released.Load() {
			self.Yield()
			time.Sleep(100 * time.Microsecond)
		}
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Wait until the worker is observably parked, then let it age past
	// the deadline.
	for {
		parked := false
		for _, th := range rt.Threads() {
			if th.State() == core.ThreadSleeping {
				parked = true
			}
		}
		if parked {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	time.Sleep(5 * time.Millisecond)
	if err := pfs.Refresh(); err != nil {
		t.Fatal(err)
	}

	obs := k.NewProcess("mdb", nil)
	opf := vfs.NewProcFiles(fs, obs)
	l, _ := k.NewLWP(obs, sim.ClassTS, 30)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover(); k.ExitLWP(l) }()
		k.Start(l)
		health := readAll(t, k, opf, l, "/proc/"+itoa(int(target.PID()))+"/health")
		if !strings.Contains(health, "deadline:\t1ms") {
			t.Errorf("health missing deadline:\n%s", health)
		}
		if !strings.Contains(health, "status:\tstuck") {
			t.Errorf("health not stuck with a wedged worker:\n%s", health)
		}
		if !strings.Contains(health, "thread ") || !strings.Contains(health, "blocked-on") {
			t.Errorf("health missing per-thread line:\n%s", health)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("observer timed out")
	}
	released.Store(true)
	select {
	case <-rt.Exited():
	case <-time.After(10 * time.Second):
		t.Fatal("target did not exit")
	}
}
