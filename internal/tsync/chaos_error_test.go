package tsync

import (
	"fmt"
	"strings"
	"testing"

	"sunosmt/internal/chaos"
	"sunosmt/internal/core"
	"sunosmt/internal/sim"
	"sunosmt/internal/usync"
)

// Error-path tests run under schedule perturbation: each case is
// swept across a dozen chaos seeds so the error detection does not
// depend on one lucky interleaving.

const errSeeds = 12

// newChaosWorld is newWorld with a seeded chaos source perturbing the
// kernel. Switch costs are disabled so seed sweeps stay fast.
func newChaosWorld(ncpu int, seed uint64) *world {
	k := sim.NewKernel(sim.Config{
		NCPU:             ncpu,
		LWPCreateCost:    -1,
		KernelSwitchCost: -1,
		Chaos:            chaos.New(chaos.DefaultConfig(seed)),
	})
	return &world{k: k, reg: usync.NewRegistry(k)}
}

// recovered runs f and reports the panic message it raised ("" if
// none).
func recovered(f func()) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprint(r)
		}
	}()
	f()
	return ""
}

func TestChaosECMutexRecursiveEnter(t *testing.T) {
	for seed := uint64(1); seed <= errSeeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			w := newChaosWorld(2, seed)
			var mu Mutex
			mu.Init(VariantErrorCheck)
			var msg string
			m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
				mu.Enter(self)
				msg = recovered(func() { mu.Enter(self) })
				mu.Exit(self)
			})
			waitRT(t, m)
			if !strings.Contains(msg, "recursive mutex_enter") {
				t.Fatalf("recursive enter not detected; panic = %q", msg)
			}
		})
	}
}

func TestChaosECMutexWrongOwnerExit(t *testing.T) {
	for seed := uint64(1); seed <= errSeeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			w := newChaosWorld(2, seed)
			var mu Mutex
			mu.Init(VariantErrorCheck)
			var msg string
			m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
				r := self.Runtime()
				r.SetConcurrency(2)
				mu.Enter(self)
				c, _ := r.Create(func(c *core.Thread, _ any) {
					msg = recovered(func() { mu.Exit(c) })
				}, nil, core.CreateOpts{Flags: core.ThreadWait})
				self.Wait(c.ID())
				mu.Exit(self)
			})
			waitRT(t, m)
			if !strings.Contains(msg, "not held by the thread") {
				t.Fatalf("wrong-owner exit not detected; panic = %q", msg)
			}
		})
	}
}

func TestChaosRWTryUpgradeContention(t *testing.T) {
	for seed := uint64(1); seed <= errSeeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			w := newChaosWorld(2, seed)
			var rw RWLock
			var contended, sole bool
			m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
				r := self.Runtime()
				r.SetConcurrency(2)
				rw.Enter(self, RWReader)
				c, _ := r.Create(func(c *core.Thread, _ any) {
					rw.Enter(c, RWReader)
					// Two readers hold the lock: the upgrade must
					// fail no matter how the schedule is perturbed.
					contended = rw.TryUpgrade(c)
					rw.Exit(c)
				}, nil, core.CreateOpts{Flags: core.ThreadWait})
				self.Wait(c.ID())
				// Sole remaining reader: the upgrade must succeed.
				sole = rw.TryUpgrade(self)
				rw.Exit(self)
			})
			waitRT(t, m)
			if contended {
				t.Fatal("TryUpgrade succeeded with two readers holding the lock")
			}
			if !sole {
				t.Fatal("TryUpgrade failed for the sole reader")
			}
		})
	}
}

func TestChaosSemaTryPZero(t *testing.T) {
	for seed := uint64(1); seed <= errSeeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			w := newChaosWorld(2, seed)
			var sp Sema
			sp.Init(1)
			var onZero, afterV bool
			m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
				sp.P(self)
				onZero = sp.TryP(self) // count is 0: must fail, not block
				sp.V(self)
				afterV = sp.TryP(self) // count is 1 again: must succeed
				sp.V(self)
			})
			waitRT(t, m)
			if onZero {
				t.Fatal("TryP succeeded on a zero semaphore")
			}
			if !afterV {
				t.Fatal("TryP failed after V restored the count")
			}
			if c := sp.Count(); c != 1 {
				t.Fatalf("final count = %d, want 1", c)
			}
		})
	}
}
