package tsync

import (
	"sync"

	"sunosmt/internal/core"
	"sunosmt/internal/usync"
)

// RWType selects reader or writer acquisition for RWLock.Enter.
type RWType int

// rw_enter types.
const (
	// RWReader acquires a readers lock: many simultaneous holders.
	RWReader RWType = iota
	// RWWriter acquires the writer lock: exclusive.
	RWWriter
)

// RWLock is the paper's multiple-readers, single-writer lock: a good
// fit for an object searched more frequently than it is changed.
// Writers are preferred: a waiting writer blocks new readers, which
// prevents writer starvation. The zero value is an unheld lock.
type RWLock struct {
	mu        sync.Mutex
	readers   int
	writer    bool
	wwaiting  int // writers waiting
	upgrading bool
	rq        waitq // blocked readers
	wq        waitq // blocked writers

	// sv (process-shared variant): word 0 = readers, word 1 =
	// writer flag, word 2 = waiting writers, word 3 = upgrade in
	// progress.
	sv *usync.Var
}

// RWShmSize is the number of bytes a process-shared readers/writer
// lock occupies in mapped memory.
const RWShmSize = 32

// InitShared binds the lock to shared state — the USYNC_PROCESS
// variant (rw_init with THREAD_SYNC_SHARED).
func (rw *RWLock) InitShared(sv *usync.Var) { rw.sv = sv }

// Enter acquires a readers or writer lock (rw_enter), blocking as
// needed.
func (rw *RWLock) Enter(t *core.Thread, typ RWType) {
	if rw.sv != nil {
		rw.enterShared(t, typ)
		return
	}
	for {
		rw.mu.Lock()
		if rw.tryLocked(typ) {
			rw.mu.Unlock()
			return
		}
		if typ == RWWriter {
			rw.wwaiting++
			rw.wq.push(t)
		} else {
			rw.rq.push(t)
		}
		rw.mu.Unlock()
		if chaosOf(t).SpuriousWakeup() {
			t.Checkpoint() // chaos: spurious wakeup, park elided
		} else {
			t.Park()
		}
		rw.mu.Lock()
		if typ == RWWriter {
			if rw.wq.remove(t) {
				// Still queued: the wake was spurious; our
				// wwaiting contribution stands until we
				// re-queue, so drop it now.
			}
			rw.wwaiting--
		} else {
			rw.rq.remove(t)
		}
		rw.mu.Unlock()
	}
}

// tryLocked attempts the acquisition; caller holds rw.mu. Readers are
// admitted only when no writer holds or awaits the lock (writer
// preference).
func (rw *RWLock) tryLocked(typ RWType) bool {
	if typ == RWWriter {
		if rw.writer || rw.readers > 0 {
			return false
		}
		rw.writer = true
		return true
	}
	if rw.writer || rw.wwaiting > 0 {
		return false
	}
	rw.readers++
	return true
}

// TryEnter acquires the lock only if no blocking is required
// (rw_tryenter).
func (rw *RWLock) TryEnter(t *core.Thread, typ RWType) bool {
	if rw.sv != nil {
		return rw.tryEnterShared(typ)
	}
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.tryLocked(typ)
}

// Exit releases a readers or writer lock (rw_exit).
func (rw *RWLock) Exit(t *core.Thread) {
	if rw.sv != nil {
		rw.exitShared()
		return
	}
	var wakeOne *core.Thread
	var wakeAll []*core.Thread
	rw.mu.Lock()
	switch {
	case rw.writer:
		rw.writer = false
	case rw.readers > 0:
		rw.readers--
	default:
		rw.mu.Unlock()
		panic("tsync: rw_exit of an unheld lock")
	}
	if rw.readers == 0 && !rw.writer {
		if rw.wq.len() > 0 {
			wakeOne = rw.wq.pop()
		} else {
			wakeAll = rw.rq.popAll()
		}
	}
	rw.mu.Unlock()
	if wakeOne != nil {
		wakeOne.Unpark()
	}
	for _, w := range wakeAll {
		w.Unpark()
	}
}

// Downgrade atomically converts a writer lock into a readers lock
// (rw_downgrade). Any waiting writers remain waiting; if there are
// none, pending readers are woken (paper).
func (rw *RWLock) Downgrade(t *core.Thread) {
	if rw.sv != nil {
		rw.downgradeShared()
		return
	}
	var wakeAll []*core.Thread
	rw.mu.Lock()
	if !rw.writer {
		rw.mu.Unlock()
		panic("tsync: rw_downgrade without the writer lock")
	}
	rw.writer = false
	rw.readers = 1
	if rw.wwaiting == 0 {
		wakeAll = rw.rq.popAll()
	}
	rw.mu.Unlock()
	for _, w := range wakeAll {
		w.Unpark()
	}
}

// TryUpgrade attempts to atomically convert a readers lock into a
// writer lock (rw_tryupgrade). It fails if another upgrade is in
// progress, writers are waiting (paper), or other readers hold the
// lock.
func (rw *RWLock) TryUpgrade(t *core.Thread) bool {
	if rw.sv != nil {
		return rw.tryUpgradeShared()
	}
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.upgrading || rw.wwaiting > 0 || rw.writer || rw.readers != 1 {
		return false
	}
	rw.readers = 0
	rw.writer = true
	return true
}

// Holders reports (readers, writerHeld) for debugging.
func (rw *RWLock) Holders() (int, bool) {
	if rw.sv != nil {
		var r int
		var w bool
		rw.sv.Atomically(func(ws usync.Words) {
			r = int(ws.Load(0))
			w = ws.Load(1) != 0
		})
		return r, w
	}
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.readers, rw.writer
}

// --- process-shared implementation --------------------------------------

func (rw *RWLock) tryEnterShared(typ RWType) bool {
	ok := false
	rw.sv.Atomically(func(w usync.Words) {
		readers, writer, ww := w.Load(0), w.Load(1), w.Load(2)
		if typ == RWWriter {
			if writer == 0 && readers == 0 {
				w.Store(1, 1)
				ok = true
			}
		} else if writer == 0 && ww == 0 {
			w.Store(0, readers+1)
			ok = true
		}
	})
	return ok
}

func (rw *RWLock) enterShared(t *core.Thread, typ RWType) {
	l := t.LWP()
	for {
		if rw.tryEnterShared(typ) {
			return
		}
		if typ == RWWriter {
			rw.sv.Atomically(func(w usync.Words) { w.Store(2, w.Load(2)+1) })
			rw.sv.SleepWhile(l, func(w usync.Words) bool {
				return w.Load(1) != 0 || w.Load(0) != 0
			}, usync.SleepOpts{})
			rw.sv.Atomically(func(w usync.Words) { w.Store(2, w.Load(2)-1) })
		} else {
			rw.sv.SleepWhile(l, func(w usync.Words) bool {
				return w.Load(1) != 0 || w.Load(2) != 0
			}, usync.SleepOpts{})
		}
		t.Checkpoint()
	}
}

func (rw *RWLock) exitShared() {
	rw.sv.Atomically(func(w usync.Words) {
		if w.Load(1) != 0 {
			w.Store(1, 0)
		} else if r := w.Load(0); r > 0 {
			w.Store(0, r-1)
		}
	})
	rw.sv.Wake(-1) // writers and readers re-contend; shared variant keeps one queue
}

func (rw *RWLock) downgradeShared() {
	rw.sv.Atomically(func(w usync.Words) {
		w.Store(1, 0)
		w.Store(0, 1)
	})
	rw.sv.Wake(-1)
}

func (rw *RWLock) tryUpgradeShared() bool {
	ok := false
	rw.sv.Atomically(func(w usync.Words) {
		if w.Load(3) == 0 && w.Load(2) == 0 && w.Load(1) == 0 && w.Load(0) == 1 {
			w.Store(0, 0)
			w.Store(1, 1)
			ok = true
		}
	})
	return ok
}
