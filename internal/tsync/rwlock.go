package tsync

import (
	"sync"
	"time"

	"sunosmt/internal/core"
	"sunosmt/internal/usync"
)

// RWType selects reader or writer acquisition for RWLock.Enter.
type RWType int

// rw_enter types.
const (
	// RWReader acquires a readers lock: many simultaneous holders.
	RWReader RWType = iota
	// RWWriter acquires the writer lock: exclusive.
	RWWriter
)

// RWLock is the paper's multiple-readers, single-writer lock: a good
// fit for an object searched more frequently than it is changed.
// Writers are preferred: a waiting writer blocks new readers, which
// prevents writer starvation. The zero value is an unheld lock.
//
// Process-shared locks are robust for writers: a process that dies
// holding the writer lock (or an unresolved owner-dead claim) is
// swept, and the next acquirer — in either mode — gets ErrOwnerDead
// and holds a claim until MakeConsistent. Reader deaths are not
// tracked (readers leave no owner word), matching the POSIX robust
// model, which covers only exclusive ownership.
type RWLock struct {
	mu        sync.Mutex
	readers   int
	writer    bool
	owner     *core.Thread // writer owner (wait-for graph)
	wwaiting  int          // writers waiting
	upgrading bool
	rq        waitq          // blocked readers
	wq        waitq          // blocked writers
	ts        core.Turnstile // priority-inheritance anchor (writer owner)
	name      string

	// sv (process-shared variant): word 0 = readers, word 1 =
	// writer flag, word 2 = waiting writers, word 3 = upgrade in
	// progress, word 4 = owner (pid, tid) of the writer or of the
	// owner-dead claimant, word 5 = robust state.
	sv *usync.Var
}

// RWShmSize is the number of bytes a process-shared readers/writer
// lock occupies in mapped memory.
const RWShmSize = 48

// InitShared binds the lock to shared state — the USYNC_PROCESS
// variant (rw_init with THREAD_SYNC_SHARED).
func (rw *RWLock) InitShared(sv *usync.Var) {
	rw.sv = sv
	sv.Declare(usync.KindRW)
}

// Name returns the lock's identity for diagnostics.
func (rw *RWLock) Name() string {
	if rw.sv != nil {
		return rw.sv.Name()
	}
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.name == "" {
		rw.name = autoName("rwlock")
	}
	return rw.name
}

// blockInfo is the wait-for edge for threads parked on this lock. The
// resolvable owner is the writer (readers are anonymous).
func (rw *RWLock) blockInfo() *core.BlockInfo {
	name := rw.Name()
	if rw.sv != nil {
		return &core.BlockInfo{Kind: "rwlock", Name: name, Owner: func() (core.OwnerRef, bool) {
			var ow uint64
			rw.sv.Atomically(func(w usync.Words) { ow = w.Load(4) })
			if ow == 0 {
				return core.OwnerRef{}, false
			}
			pid, tid := usync.DecodeOwner(ow)
			return core.OwnerRef{PID: pid, TID: core.ThreadID(tid)}, true
		}}
	}
	return &core.BlockInfo{Kind: "rwlock", Name: name, Ts: &rw.ts, Owner: func() (core.OwnerRef, bool) {
		rw.mu.Lock()
		o := rw.owner
		rw.mu.Unlock()
		if o == nil {
			return core.OwnerRef{}, false
		}
		return core.OwnerRef{TID: o.ID()}, true
	}}
}

// Enter acquires a readers or writer lock (rw_enter), blocking as
// needed. An owner-dead shared lock is recovered transparently (use
// EnterErr for the robust protocol).
func (rw *RWLock) Enter(t *core.Thread, typ RWType) {
	switch err := rw.EnterErr(t, typ); err {
	case nil:
	case ErrOwnerDead:
		rw.MakeConsistent(t)
	case ErrNotRecoverable:
		panic("tsync: rw_enter of a not-recoverable shared lock")
	}
}

// EnterErr acquires like Enter but surfaces the robust protocol on
// shared locks: ErrOwnerDead means the caller holds the requested
// mode plus the recovery claim (other acquirers wait until
// MakeConsistent or a claim-dropping Exit, which poisons the lock
// with ErrNotRecoverable). Unshared locks always return nil.
func (rw *RWLock) EnterErr(t *core.Thread, typ RWType) error {
	if rw.sv != nil {
		return rw.enterShared(t, typ, 0)
	}
	return rw.enterLocal(t, typ, 0)
}

// TimedRdLock acquires a readers lock with a deadline, returning
// ErrTimedOut when d elapses first (cf. Cond.TimedWait).
func (rw *RWLock) TimedRdLock(t *core.Thread, d time.Duration) error {
	if rw.sv != nil {
		return rw.enterShared(t, RWReader, d)
	}
	return rw.enterLocal(t, RWReader, d)
}

// TimedWrLock acquires the writer lock with a deadline, returning
// ErrTimedOut when d elapses first.
func (rw *RWLock) TimedWrLock(t *core.Thread, d time.Duration) error {
	if rw.sv != nil {
		return rw.enterShared(t, RWWriter, d)
	}
	return rw.enterLocal(t, RWWriter, d)
}

// MakeConsistent resolves an ErrOwnerDead claim held by the calling
// thread: the lock returns to normal service in the claimed mode.
// Reports whether a claim was resolved.
func (rw *RWLock) MakeConsistent(t *core.Thread) bool {
	if rw.sv == nil {
		return false
	}
	self := ownerWord(t)
	ok := false
	rw.sv.Atomically(func(w usync.Words) {
		if w.Load(5) == usync.RobustClaimed && w.Load(4) == self {
			w.Store(5, usync.RobustOK)
			if w.Load(1) == 0 {
				w.Store(4, 0) // reader claim: readers are anonymous again
			}
			ok = true
		}
	})
	if ok {
		rw.sv.Wake(-1) // claim resolved: everyone re-contends
	}
	return ok
}

// enterLocal acquires the unshared lock; d > 0 bounds the wait.
func (rw *RWLock) enterLocal(t *core.Thread, typ RWType, d time.Duration) error {
	clk := t.Runtime().Kernel().Clock()
	var deadline time.Duration
	if d > 0 {
		deadline = clk.Now() + d
	}
	var bi *core.BlockInfo
	for {
		rw.mu.Lock()
		if rw.tryLocked(t, typ) {
			rw.mu.Unlock()
			return nil
		}
		if d > 0 && clk.Now() >= deadline {
			rw.mu.Unlock()
			return ErrTimedOut
		}
		if typ == RWWriter {
			rw.wwaiting++
			rw.ts.SetQueue(rw.wq.chanOf())
			rw.wq.push(t)
		} else {
			rw.ts.SetQueue2(rw.rq.chanOf())
			rw.rq.push(t)
		}
		rw.mu.Unlock()
		if bi == nil {
			bi = rw.blockInfo()
		}
		timedOut := false
		if chaosOf(t).SpuriousWakeup() {
			t.Checkpoint() // chaos: spurious wakeup, park elided
		} else if d > 0 {
			t.NoteBlocked(bi)
			t.WillPriority() // boost the writer holding us out
			timedOut = parkTimed(t, clk, deadline, func() bool {
				rw.mu.Lock()
				var removed bool
				if typ == RWWriter {
					removed = rw.wq.remove(t)
				} else {
					removed = rw.rq.remove(t)
				}
				rw.mu.Unlock()
				return removed
			})
			t.NoteUnblocked()
		} else {
			t.NoteBlocked(bi)
			t.WillPriority() // boost the writer holding us out
			t.Park()
			t.NoteUnblocked()
		}
		rw.mu.Lock()
		if typ == RWWriter {
			if rw.wq.remove(t) {
				// Still queued: the wake was spurious; our
				// wwaiting contribution stands until we
				// re-queue, so drop it now.
			}
			rw.wwaiting--
		} else {
			rw.rq.remove(t)
		}
		rw.mu.Unlock()
		if timedOut {
			return ErrTimedOut
		}
	}
}

// tryLocked attempts the acquisition; caller holds rw.mu. Readers are
// admitted only when no writer holds or awaits the lock (writer
// preference).
func (rw *RWLock) tryLocked(t *core.Thread, typ RWType) bool {
	if typ == RWWriter {
		if rw.writer || rw.readers > 0 {
			return false
		}
		rw.writer = true
		rw.owner = t
		rw.ts.Acquired(t)
		return true
	}
	if rw.writer || rw.wwaiting > 0 {
		return false
	}
	rw.readers++
	return true
}

// TryEnter acquires the lock only if no blocking is required
// (rw_tryenter). A shared lock with a pending or unresolved owner
// death is never taken by TryEnter — recovery needs EnterErr.
func (rw *RWLock) TryEnter(t *core.Thread, typ RWType) bool {
	if rw.sv != nil {
		return rw.tryEnterShared(t, typ)
	}
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.tryLocked(t, typ)
}

// Exit releases a readers or writer lock (rw_exit). Releasing an
// unresolved ErrOwnerDead claim poisons the shared lock
// (ErrNotRecoverable) — callers must MakeConsistent first.
func (rw *RWLock) Exit(t *core.Thread) {
	if rw.sv != nil {
		rw.exitShared(t)
		return
	}
	var wakeOne *core.Thread
	var wakeAll []*core.Thread
	rw.mu.Lock()
	switch {
	case rw.writer:
		rw.writer = false
		rw.owner = nil
		rw.ts.Released(t) // shed any boost willed by blocked acquirers
	case rw.readers > 0:
		rw.readers--
	default:
		rw.mu.Unlock()
		panic("tsync: rw_exit of an unheld lock")
	}
	if rw.readers == 0 && !rw.writer {
		if rw.wq.len() > 0 {
			wakeOne = rw.wq.pop()
		} else {
			wakeAll = rw.rq.popAll()
		}
	}
	rw.mu.Unlock()
	if wakeOne != nil {
		wakeOne.Unpark()
	}
	core.UnparkAll(wakeAll) // readers wake in one scheduler-lock pass
}

// Downgrade atomically converts a writer lock into a readers lock
// (rw_downgrade). Any waiting writers remain waiting; if there are
// none, pending readers are woken (paper).
func (rw *RWLock) Downgrade(t *core.Thread) {
	if rw.sv != nil {
		rw.downgradeShared()
		return
	}
	var wakeAll []*core.Thread
	rw.mu.Lock()
	if !rw.writer {
		rw.mu.Unlock()
		panic("tsync: rw_downgrade without the writer lock")
	}
	rw.writer = false
	rw.owner = nil
	rw.ts.Released(t) // readers hold no turnstile
	rw.readers = 1
	if rw.wwaiting == 0 {
		wakeAll = rw.rq.popAll()
	}
	rw.mu.Unlock()
	core.UnparkAll(wakeAll)
}

// TryUpgrade attempts to atomically convert a readers lock into a
// writer lock (rw_tryupgrade). It fails if another upgrade is in
// progress, writers are waiting (paper), or other readers hold the
// lock.
func (rw *RWLock) TryUpgrade(t *core.Thread) bool {
	if rw.sv != nil {
		return rw.tryUpgradeShared(t)
	}
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.upgrading || rw.wwaiting > 0 || rw.writer || rw.readers != 1 {
		return false
	}
	rw.readers = 0
	rw.writer = true
	rw.owner = t
	rw.ts.Acquired(t)
	return true
}

// Holders reports (readers, writerHeld) for debugging.
func (rw *RWLock) Holders() (int, bool) {
	if rw.sv != nil {
		var r int
		var w bool
		rw.sv.Atomically(func(ws usync.Words) {
			r = int(ws.Load(0))
			w = ws.Load(1) != 0
		})
		return r, w
	}
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.readers, rw.writer
}

// --- process-shared implementation --------------------------------------

func (rw *RWLock) tryEnterShared(t *core.Thread, typ RWType) bool {
	self := ownerWord(t)
	ok := false
	rw.sv.Atomically(func(w usync.Words) {
		if w.Load(5) != usync.RobustOK {
			return
		}
		readers, writer, ww := w.Load(0), w.Load(1), w.Load(2)
		if typ == RWWriter {
			if writer == 0 && readers == 0 {
				w.Store(1, 1)
				w.Store(4, self)
				ok = true
			}
		} else if writer == 0 && ww == 0 {
			w.Store(0, readers+1)
			ok = true
		}
	})
	return ok
}

func (rw *RWLock) enterShared(t *core.Thread, typ RWType, d time.Duration) error {
	l := t.LWP()
	self := ownerWord(t)
	clk := t.Runtime().Kernel().Clock()
	var deadline time.Duration
	if d > 0 {
		deadline = clk.Now() + d
	}
	// Writer-waiting count: incremented once, decremented on every
	// exit (including unwind) so a dying waiter cannot wedge the
	// writer-preference gate.
	wwait := false
	defer func() {
		if wwait {
			rw.sv.Atomically(func(w usync.Words) { w.Store(2, w.Load(2)-1) })
		}
	}()
	var bi *core.BlockInfo
	for {
		var acquired, dead, notrec bool
		rw.sv.Atomically(func(w usync.Words) {
			switch w.Load(5) {
			case usync.RobustNotRecoverable:
				notrec = true
				return
			case usync.RobustOwnerDead:
				// First acquirer after an owner death claims the
				// lock in the requested mode, bypassing the
				// writer-preference gate: recovery must not wait
				// behind ordinary contention.
				if typ == RWWriter {
					w.Store(1, 1)
				} else {
					w.Store(0, w.Load(0)+1)
				}
				w.Store(4, self)
				w.Store(5, usync.RobustClaimed)
				dead = true
				acquired = true
				return
			case usync.RobustClaimed:
				return // wait for the claim to resolve
			}
			readers, writer, ww := w.Load(0), w.Load(1), w.Load(2)
			if typ == RWWriter {
				if writer == 0 && readers == 0 {
					w.Store(1, 1)
					w.Store(4, self)
					acquired = true
				}
			} else if writer == 0 && ww == 0 {
				w.Store(0, readers+1)
				acquired = true
			}
		})
		if notrec {
			return ErrNotRecoverable
		}
		if acquired {
			if dead {
				return ErrOwnerDead
			}
			return nil
		}
		if d > 0 && clk.Now() >= deadline {
			return ErrTimedOut
		}
		if typ == RWWriter && !wwait {
			wwait = true
			rw.sv.Atomically(func(w usync.Words) { w.Store(2, w.Load(2)+1) })
		}
		opts := usync.SleepOpts{}
		if d > 0 {
			opts.Timeout = deadline - clk.Now()
		}
		if bi == nil {
			bi = rw.blockInfo()
		}
		t.NoteBlocked(bi)
		if typ == RWWriter {
			rw.sv.SleepWhile(l, func(w usync.Words) bool {
				if rb := w.Load(5); rb == usync.RobustNotRecoverable || rb == usync.RobustOwnerDead {
					return false // wake: the robust state must be acted on
				} else if rb == usync.RobustClaimed {
					return true // claim pending: keep waiting
				}
				return w.Load(1) != 0 || w.Load(0) != 0
			}, opts)
		} else {
			rw.sv.SleepWhile(l, func(w usync.Words) bool {
				if rb := w.Load(5); rb == usync.RobustNotRecoverable || rb == usync.RobustOwnerDead {
					return false
				} else if rb == usync.RobustClaimed {
					return true
				}
				return w.Load(1) != 0 || w.Load(2) != 0
			}, opts)
		}
		t.NoteUnblocked()
		t.Checkpoint()
	}
}

func (rw *RWLock) exitShared(t *core.Thread) {
	self := ownerWord(t)
	rw.sv.Atomically(func(w usync.Words) {
		if w.Load(5) == usync.RobustClaimed && w.Load(4) == self {
			// The claimant released without MakeConsistent: the
			// protected state is unrecoverable, forever.
			w.Store(0, 0)
			w.Store(1, 0)
			w.Store(4, 0)
			w.Store(5, usync.RobustNotRecoverable)
			return
		}
		if w.Load(1) != 0 {
			w.Store(1, 0)
			w.Store(4, 0)
		} else if r := w.Load(0); r > 0 {
			w.Store(0, r-1)
		}
	})
	rw.sv.Wake(-1) // writers and readers re-contend; shared variant keeps one queue
}

func (rw *RWLock) downgradeShared() {
	rw.sv.Atomically(func(w usync.Words) {
		w.Store(1, 0)
		w.Store(0, 1)
		if w.Load(5) != usync.RobustClaimed {
			w.Store(4, 0) // claimants keep their claim across downgrade
		}
	})
	rw.sv.Wake(-1)
}

func (rw *RWLock) tryUpgradeShared(t *core.Thread) bool {
	self := ownerWord(t)
	ok := false
	rw.sv.Atomically(func(w usync.Words) {
		if w.Load(5) != usync.RobustOK {
			return
		}
		if w.Load(3) == 0 && w.Load(2) == 0 && w.Load(1) == 0 && w.Load(0) == 1 {
			w.Store(0, 0)
			w.Store(1, 1)
			w.Store(4, self)
			ok = true
		}
	})
	return ok
}
