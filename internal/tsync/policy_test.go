package tsync

import (
	"testing"
	"time"

	"sunosmt/internal/core"
)

// TestPolicyMutualExclusion is the shared conformance suite: every
// lock policy must provide mutual exclusion under oversubscription,
// including with the owner descheduled mid-section (the Yield inside
// the critical section forces the park/hand-off paths; a policy that
// only ever grants via its spin phase is not exercised otherwise).
func TestPolicyMutualExclusion(t *testing.T) {
	for _, pol := range Policies() {
		t.Run(pol.String(), func(t *testing.T) {
			w := newWorld(2)
			var mu Mutex
			mu.InitPolicy(pol)
			var counter, holders int
			m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
				r := self.Runtime()
				r.SetConcurrency(2)
				var ids []core.ThreadID
				for i := 0; i < 4; i++ {
					c, _ := r.Create(func(c *core.Thread, _ any) {
						for j := 0; j < 200; j++ {
							mu.Enter(c)
							holders++
							if holders != 1 {
								t.Errorf("%d threads inside the critical section", holders)
							}
							counter++
							if j%16 == 0 {
								c.Yield() // deschedule while holding
							}
							holders--
							mu.Exit(c)
						}
					}, nil, core.CreateOpts{Flags: core.ThreadWait})
					ids = append(ids, c.ID())
				}
				for _, id := range ids {
					self.Wait(id)
				}
			})
			waitRT(t, m)
			if counter != 800 {
				t.Fatalf("policy %v: counter = %d, want 800 (lost updates)", pol, counter)
			}
			if got := mu.LockPolicy(); got != pol.String() {
				t.Fatalf("LockPolicy() = %q, want %q", got, pol)
			}
		})
	}
}

// TestPolicyProcessDefault pins the resolution chain: a zero-value
// mutex in a process whose Config carries a LockPolicy uses that
// policy, and reports it through LockPolicy() once pinned.
func TestPolicyProcessDefault(t *testing.T) {
	for _, pol := range Policies() {
		t.Run(pol.String(), func(t *testing.T) {
			w := newWorld(2)
			var mu Mutex // zero value: inherits the process default
			var counter int
			m := w.boot(t, "p", core.Config{LockPolicy: int(pol)}, func(self *core.Thread, _ any) {
				r := self.Runtime()
				r.SetConcurrency(2)
				var ids []core.ThreadID
				for i := 0; i < 3; i++ {
					c, _ := r.Create(func(c *core.Thread, _ any) {
						for j := 0; j < 150; j++ {
							mu.Enter(c)
							counter++
							if j%32 == 0 {
								c.Yield()
							}
							mu.Exit(c)
						}
					}, nil, core.CreateOpts{Flags: core.ThreadWait})
					ids = append(ids, c.ID())
				}
				for _, id := range ids {
					self.Wait(id)
				}
			})
			waitRT(t, m)
			if counter != 450 {
				t.Fatalf("policy %v: counter = %d, want 450", pol, counter)
			}
			if got := mu.LockPolicy(); got != pol.String() {
				t.Fatalf("LockPolicy() = %q, want %q (process default not inherited)", got, pol)
			}
		})
	}
}

// TestHandOffFIFOGrantOrder pins the defining property of the
// hand-off family: ticket and queue locks grant strictly in arrival
// order, even when later waiters have higher priority (the barging
// policies would wake the best waiter instead). Waiters are enqueued
// one at a time on one LWP — each runs to its blocking Enter before
// the next is created — with priorities increasing in arrival order,
// so a priority-ordered discipline would grant in exactly the reverse
// of the order this test demands.
func TestHandOffFIFOGrantOrder(t *testing.T) {
	const waiters = 5
	for _, pol := range []Policy{PolicyTicket, PolicyQueue} {
		t.Run(pol.String(), func(t *testing.T) {
			w := newWorld(1)
			var mu Mutex
			mu.InitPolicy(pol)
			var order []int
			m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
				r := self.Runtime()
				mu.Enter(self)
				var ids []core.ThreadID
				for i := 0; i < waiters; i++ {
					i := i
					c, _ := r.Create(func(c *core.Thread, _ any) {
						mu.Enter(c)
						order = append(order, i)
						mu.Exit(c)
					}, nil, core.CreateOpts{Flags: core.ThreadWait, Priority: 1 + i})
					ids = append(ids, c.ID())
					// One full rotation of the run queue: the new waiter
					// reaches its Enter and queues before the next exists.
					for k := 0; k < 4; k++ {
						self.Yield()
					}
				}
				mu.Exit(self) // hand-off chain starts here
				for _, id := range ids {
					self.Wait(id)
				}
			})
			waitRT(t, m)
			if len(order) != waiters {
				t.Fatalf("order = %v, want %d grants", order, waiters)
			}
			for i, got := range order {
				if got != i {
					t.Fatalf("policy %v granted out of arrival order: %v", pol, order)
				}
			}
		})
	}
}

// TestPolicyTimedEnter runs the timed acquisition through every
// policy: a held lock times out with ErrTimedOut (and the expired
// waiter is cleanly dequeued — a later Exit must not hand the lock to
// it), a free lock succeeds.
func TestPolicyTimedEnter(t *testing.T) {
	for _, pol := range Policies() {
		t.Run(pol.String(), func(t *testing.T) {
			w := newWorld(2)
			var mu Mutex
			mu.InitPolicy(pol)
			m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
				r := self.Runtime()
				r.SetConcurrency(2)
				mu.Enter(self)
				c, _ := r.Create(func(c *core.Thread, _ any) {
					if err := mu.TimedEnter(c, 2*time.Millisecond); err != ErrTimedOut {
						t.Errorf("TimedEnter on held lock = %v, want ErrTimedOut", err)
					}
				}, nil, core.CreateOpts{Flags: core.ThreadWait})
				self.Wait(c.ID())
				mu.Exit(self)
				// The timed-out waiter must be gone from the queue: a
				// fresh acquisition succeeds immediately.
				if err := mu.TimedEnter(self, time.Millisecond); err != nil {
					t.Errorf("TimedEnter on free lock = %v", err)
				}
				mu.Exit(self)
			})
			waitRT(t, m)
		})
	}
}

// TestAdaptiveSpinOwnerChangeReset is the regression test for the
// adaptive-spin accounting bug: the spin budget is charged per
// observed owner, so a waiter that watched owner A for the full cap
// gets a fresh budget when it observes the lock held by B — the new
// owner may well be on CPU and about to release. Before the fix the
// counter kept accumulating across owner changes and a long-lived
// waiter degraded to park-only.
func TestAdaptiveSpinOwnerChangeReset(t *testing.T) {
	ownerA, ownerB := new(core.Thread), new(core.Thread)
	var s adaptiveSpin
	for i := 0; i < adaptiveSpinCap; i++ {
		if !s.shouldSpin(ownerA) {
			t.Fatalf("budget exhausted after %d spins, cap is %d", i, adaptiveSpinCap)
		}
	}
	if s.shouldSpin(ownerA) {
		t.Fatal("budget not exhausted at cap for an unchanged owner")
	}
	if !s.shouldSpin(ownerB) {
		t.Fatal("owner change did not reset the spin budget")
	}
	for i := 1; i < adaptiveSpinCap; i++ {
		if !s.shouldSpin(ownerB) {
			t.Fatalf("fresh budget for new owner exhausted early at %d", i)
		}
	}
	if s.shouldSpin(ownerB) {
		t.Fatal("budget not exhausted at cap for the new owner")
	}
	if !s.shouldSpin(ownerA) {
		t.Fatal("changing back to a previous owner did not reset the budget")
	}
}
