package tsync

import (
	"sync"
	"time"

	"sunosmt/internal/core"
	"sunosmt/internal/sim"
	"sunosmt/internal/usync"
)

// Cond is a condition variable. It must be used with a Mutex held,
// forming a monitor; because the reacquisition of the mutex can be
// blocked by other threads, the waited-for condition must be
// re-tested in a loop, exactly as the paper's usage example shows.
// The zero value is a valid condition variable.
type Cond struct {
	mu      sync.Mutex
	waiters waitq
	name    string

	// sv (process-shared variant): word 0 is the wake generation
	// counter.
	sv *usync.Var
}

// CondShmSize is the number of bytes a process-shared condition
// variable occupies in mapped memory.
const CondShmSize = 8

// InitShared binds the condition variable to shared state —
// the USYNC_PROCESS variant (cv_init with THREAD_SYNC_SHARED).
func (cv *Cond) InitShared(sv *usync.Var) { cv.sv = sv }

// Name returns the condition variable's identity for diagnostics.
func (cv *Cond) Name() string {
	if cv.sv != nil {
		return cv.sv.Name()
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	if cv.name == "" {
		cv.name = autoName("cond")
	}
	return cv.name
}

// blockInfo is the wait-for edge for threads parked in Wait. A
// condition wait has no owner — someone must Signal — so it never
// contributes an edge to deadlock cycles, but it does show up in
// lstatus as what the thread is blocked on.
func (cv *Cond) blockInfo() *core.BlockInfo {
	return &core.BlockInfo{Kind: "cond", Name: cv.Name()}
}

// Wait blocks until the condition is signalled (cv_wait): it releases
// mp before blocking and reacquires it before returning. Spurious
// wakeups are possible; callers loop.
func (cv *Cond) Wait(t *core.Thread, mp *Mutex) {
	if cv.sv != nil {
		cv.waitShared(t, mp, 0)
		return
	}
	cv.mu.Lock()
	cv.waiters.push(t)
	cv.mu.Unlock()
	mp.Exit(t)
	if chaosOf(t).SpuriousWakeup() {
		t.Checkpoint() // chaos: spurious wakeup, park elided
	} else {
		t.NoteBlocked(cv.blockInfo())
		t.Park()
		t.NoteUnblocked()
	}
	// Deregister in case the wake was a permit consumed elsewhere
	// (stop/continue interleavings); harmless if already popped.
	cv.mu.Lock()
	cv.waiters.remove(t)
	cv.mu.Unlock()
	mp.Enter(t)
	t.Checkpoint()
}

// TimedWait is Wait with a timeout bound, an extension of the shipped
// library (cond_timedwait). It reports false on timeout. Only
// process-shared variables support exact kernel timeouts; unshared
// variables approximate with a kernel timer wake.
func (cv *Cond) TimedWait(t *core.Thread, mp *Mutex, d time.Duration) bool {
	if cv.sv != nil {
		return cv.waitShared(t, mp, d)
	}
	if d <= 0 {
		cv.Wait(t, mp)
		return true
	}
	// Arm a wake that fires if we are still queued at the deadline.
	fired := make(chan struct{})
	timer := t.Runtime().Kernel().Clock().AfterFunc(d, func() {
		close(fired)
		cv.mu.Lock()
		removed := cv.waiters.remove(t)
		cv.mu.Unlock()
		if removed {
			t.Unpark()
		}
	})
	cv.Wait(t, mp)
	timer.Stop()
	select {
	case <-fired:
		return false
	default:
		return true
	}
}

// Signal wakes one waiter (cv_signal). There is no guaranteed order
// of mutex acquisition among woken threads.
func (cv *Cond) Signal(t *core.Thread) {
	if cv.sv != nil {
		cv.sv.Atomically(func(w usync.Words) { w.Store(0, w.Load(0)+1) })
		cv.sv.Wake(1)
		return
	}
	cv.mu.Lock()
	wake := cv.waiters.pop()
	cv.mu.Unlock()
	if wake != nil {
		wake.Unpark()
	}
}

// Broadcast wakes all waiters (cv_broadcast). The paper cautions that
// all of them re-contend for the mutex, so it should be used with
// care — e.g. when variable amounts of resources are released.
func (cv *Cond) Broadcast(t *core.Thread) {
	if cv.sv != nil {
		cv.sv.Atomically(func(w usync.Words) { w.Store(0, w.Load(0)+1) })
		cv.sv.Wake(-1)
		return
	}
	cv.mu.Lock()
	all := cv.waiters.popAll()
	cv.mu.Unlock()
	// Batch: all waiters enter the run queue in one pass over the
	// scheduler lock instead of one unpark round-trip each.
	core.UnparkAll(all)
}

// Waiters reports how many threads are blocked (debugging aid).
func (cv *Cond) Waiters() int {
	if cv.sv != nil {
		return cv.sv.Waiters()
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	return cv.waiters.len()
}

// waitShared implements the process-shared wait: generation counting
// through the mapped word with a race-free kernel commit. Returns
// false on timeout.
func (cv *Cond) waitShared(t *core.Thread, mp *Mutex, d time.Duration) bool {
	var gen uint64
	cv.sv.Atomically(func(w usync.Words) { gen = w.Load(0) })
	mp.Exit(t)
	opts := usync.SleepOpts{}
	if d > 0 {
		opts.Timeout = d
	}
	t.NoteBlocked(cv.blockInfo())
	res, slept := cv.sv.SleepWhile(t.LWP(), func(w usync.Words) bool {
		return w.Load(0) == gen // no signal since we decided to wait
	}, opts)
	t.NoteUnblocked()
	mp.Enter(t)
	t.Checkpoint()
	return !(slept && res == sim.WakeTimeout)
}
