package tsync

import (
	"testing"
	"testing/quick"
	"time"

	"sunosmt/internal/core"
	"sunosmt/internal/vm"
)

// Property: for any interleaving of P and V operations that never
// blocks (TryP), a semaphore's count equals inits + Vs - successful
// TryPs, and TryP succeeds exactly when the count is positive.
func TestSemaCountProperty(t *testing.T) {
	f := func(ops []bool, init uint8) bool {
		w := newWorld(1)
		ok := true
		m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
			var s Sema
			s.Init(uint(init % 8))
			model := int(init % 8)
			for _, op := range ops {
				if op {
					s.V(self)
					model++
				} else {
					got := s.TryP(self)
					want := model > 0
					if got != want {
						ok = false
						return
					}
					if got {
						model--
					}
				}
				if int(s.Count()) != model {
					ok = false
					return
				}
			}
		})
		waitRT(t, m)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a shared semaphore behaves identically to a local one for
// the same non-blocking op sequence.
func TestSharedSemaEquivalenceProperty(t *testing.T) {
	f := func(ops []bool) bool {
		w := newWorld(1)
		ok := true
		m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
			obj := vm.NewAnon(vm.PageSize)
			var local, shared Sema
			shared.InitShared(w.reg.Var(obj, 0), 0)
			for _, op := range ops {
				if op {
					local.V(self)
					shared.V(self)
				} else {
					a := local.TryP(self)
					b := shared.TryP(self)
					if a != b {
						ok = false
						return
					}
				}
				if local.Count() != shared.Count() {
					ok = false
					return
				}
			}
		})
		waitRT(t, m)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: RWLock bookkeeping — after any sequence of non-blocking
// TryEnter/Exit operations, reader and writer counts match a model.
func TestRWLockModelProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		w := newWorld(1)
		ok := true
		m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
			var rw RWLock
			readers, writer := 0, false
			for _, op := range ops {
				switch op % 3 {
				case 0: // try reader
					got := rw.TryEnter(self, RWReader)
					want := !writer
					if got != want {
						ok = false
						return
					}
					if got {
						readers++
					}
				case 1: // try writer
					got := rw.TryEnter(self, RWWriter)
					want := !writer && readers == 0
					if got != want {
						ok = false
						return
					}
					if got {
						writer = true
					}
				case 2: // exit one holder, if any
					if writer {
						rw.Exit(self)
						writer = false
					} else if readers > 0 {
						rw.Exit(self)
						readers--
					}
				}
				nr, wr := rw.Holders()
				if nr != readers || wr != writer {
					ok = false
					return
				}
			}
		})
		waitRT(t, m)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Stress: N threads, M critical sections each, across all mutex
// variants simultaneously protecting one counter each; verifies no
// lost updates anywhere under a multi-CPU kernel.
func TestMutexStressAllVariants(t *testing.T) {
	w := newWorld(2)
	var mus [3]Mutex
	mus[0].Init(VariantDefault)
	mus[1].Init(VariantSpin)
	mus[2].Init(VariantAdaptive)
	counters := [3]int{}
	const workers, iters = 6, 150
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		r := self.Runtime()
		r.SetConcurrency(2)
		var ids []core.ThreadID
		for i := 0; i < workers; i++ {
			i := i
			c, _ := r.Create(func(c *core.Thread, _ any) {
				for j := 0; j < iters; j++ {
					k := (i + j) % 3
					mus[k].Enter(c)
					counters[k]++
					mus[k].Exit(c)
				}
			}, nil, core.CreateOpts{Flags: core.ThreadWait})
			ids = append(ids, c.ID())
		}
		for _, id := range ids {
			self.Wait(id)
		}
	})
	waitRT(t, m)
	if counters[0]+counters[1]+counters[2] != workers*iters {
		t.Fatalf("counters = %v, sum != %d", counters, workers*iters)
	}
}

// Failure injection: a thread killed (process death) while holding a
// process-shared mutex — the pitfall the paper explicitly warns about
// for fork and shared locks. The robust protocol turns the orphaned
// lock into an acquirable one that reports the death: the next
// acquirer gets ErrOwnerDead, repairs state, and MakeConsistent
// restores normal service.
func TestSharedMutexHeldAcrossOwnerDeath(t *testing.T) {
	w := newWorld(1)
	obj := vm.NewAnon(vm.PageSize)
	m1 := w.boot(t, "dies", core.Config{}, func(self *core.Thread, _ any) {
		mu := &Mutex{}
		mu.InitShared(w.reg.Var(obj, 0))
		mu.Enter(self)
		self.ExitProcess(1) // dies holding the lock
	})
	waitRT(t, m1)

	m2 := w.boot(t, "recovers", core.Config{}, func(self *core.Thread, _ any) {
		mu := &Mutex{}
		sv := w.reg.Var(obj, 0)
		mu.InitShared(sv)
		err := mu.EnterErr(self)
		if err != ErrOwnerDead {
			t.Errorf("EnterErr after owner death = %v, want ErrOwnerDead", err)
			return
		}
		if !mu.MakeConsistent(self) {
			t.Error("MakeConsistent failed while holding owner-dead lock")
		}
		mu.Exit(self)
		// Normal service restored.
		if !mu.TryEnter(self) {
			t.Error("recovered lock not acquirable")
		}
		mu.Exit(self)
	})
	waitRT(t, m2)
}

// TestCondWaitTimeoutUnderContention exercises TimedWait both firing
// and not firing while signals race it.
func TestCondWaitTimedRace(t *testing.T) {
	w := newWorld(2)
	var mu Mutex
	var cv Cond
	fired := 0
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		r := self.Runtime()
		sig, _ := r.Create(func(c *core.Thread, _ any) {
			for i := 0; i < 50; i++ {
				cv.Signal(c)
				c.Yield()
			}
		}, nil, core.CreateOpts{Flags: core.ThreadWait})
		for i := 0; i < 25; i++ {
			mu.Enter(self)
			if cv.TimedWait(self, &mu, 500*time.Microsecond) {
				fired++
			}
			mu.Exit(self)
		}
		self.Wait(sig.ID())
	})
	waitRT(t, m)
	// No assertion on the exact split — only that nothing hung and
	// the monitor invariant held throughout (mutex reacquired each
	// time). Reaching here is the test.
	_ = fired
}
