// Package tsync implements the paper's thread synchronization
// facilities: mutual exclusion locks, condition variables, counting
// semaphores, and multiple-readers/single-writer locks.
//
// Each type follows the paper's rules:
//
//   - A variable statically or dynamically allocated as zero is
//     usable immediately and provides the default implementation
//     variant (all zero values here are valid).
//   - The programmer chooses an implementation variant at
//     initialization time (spin, adaptive, sleep/default,
//     error-checking for mutexes).
//   - Process-shared variants place their state in mapped memory
//     (internal/vm object bytes) and block through the kernel
//     (internal/usync), so threads of different processes — mapping
//     the object at different virtual addresses — synchronize with
//     each other, and a variable placed in a file outlives its
//     creating process.
//
// Operations on unshared variables never enter the simulated kernel
// unless they must block (and for unbound threads not even then: the
// thread parks at user level and its LWP picks another thread).
//
// Every blocking operation takes the calling thread explicitly
// because Go has no implicit current-thread register; see DESIGN.md.
package tsync

import (
	"errors"
	"fmt"
	"sync/atomic"

	"sunosmt/internal/chaos"
	"sunosmt/internal/core"
)

// Errors returned by the fallible acquisition entry points (EnterErr,
// TimedEnter, PErr, ...). They map to the POSIX robust-mutex and
// timed-lock errno values named in the comments.
var (
	// ErrTimedOut: the timed acquisition's deadline expired
	// (ETIMEDOUT).
	ErrTimedOut = errors.New("tsync: timed acquisition expired")
	// ErrOwnerDead: the previous owner died holding the lock; the
	// caller now holds it and must make the protected state
	// consistent, then call MakeConsistent — or release, making the
	// lock permanently unusable (EOWNERDEAD).
	ErrOwnerDead = errors.New("tsync: previous owner died holding the lock")
	// ErrNotRecoverable: an owner-dead holder released the lock
	// without MakeConsistent; it can never be acquired again
	// (ENOTRECOVERABLE).
	ErrNotRecoverable = errors.New("tsync: lock is not recoverable")
	// ErrDeadlock: acquiring would deadlock the calling thread —
	// it already owns the lock, or the wait-for graph closes a
	// cycle through it (EDEADLK). Error-check mutexes only.
	ErrDeadlock = errors.New("tsync: acquisition would deadlock")
)

// nameSeq numbers the lazily-assigned names of unshared primitives so
// wait-for edges and /proc lstatus have something to print.
var nameSeq atomic.Uint64

func autoName(kind string) string {
	return fmt.Sprintf("%s#%d", kind, nameSeq.Add(1))
}

// Variant selects a mutex implementation variant, as the paper allows
// at initialization time.
type Variant int

// Mutex variants.
const (
	// VariantDefault parks waiters after a brief adaptive phase.
	VariantDefault Variant = iota
	// VariantSpin never parks: waiters spin (yielding the LWP
	// between probes). Appropriate for short critical sections on
	// multiprocessors.
	VariantSpin
	// VariantAdaptive spins briefly, then parks — explicit version
	// of the default.
	VariantAdaptive
	// VariantErrorCheck records ownership and panics on
	// self-deadlock or on release by a non-owner, matching the
	// paper's "extra debugging" variant. Mutexes are strictly
	// bracketing: releasing a lock not held by the thread is an
	// error.
	VariantErrorCheck
)

// adaptiveSpinCap bounds the owner-running spin phase of
// adaptive/default mutexes: a waiter keeps probing only while the
// owner is observed on a processor (core.Thread.OnCPU), so the spin
// budget tracks observed owner-running time rather than a fixed
// iteration count, and a waiter whose owner is preempted parks
// immediately. The cap catches pathological long critical sections.
const adaptiveSpinCap = 128

// waitq is a queue of parked threads — ordered by descending
// effective priority, FIFO among equals, so pop always wakes the best
// waiter — fronted by the primitive's internal word lock. The word lock (a plain Go mutex) models the
// hardware atomic instruction sequence of a real implementation: it
// is never held while parked. The waiters themselves hang off one
// channel of the core package's sharded sleep-queue table (the
// Solaris turnstile analogue), so enqueue, dequeue and — critically
// for timed waits — middle-of-queue removal are all O(1), and
// primitives hashing to different shards never touch a common lock.
// The channel is allocated lazily under the word lock, keeping the
// paper's "a zero variable is usable immediately" rule.
type waitq struct {
	wc core.WaitChan
}

func (w *waitq) chanOf() core.WaitChan {
	if !w.wc.Valid() {
		w.wc = core.AllocWaitChan()
	}
	return w.wc
}

// chanOfFIFO allocates the queue as a strict arrival-order channel
// instead — the hand-off lock policies' discipline. A given waitq is
// allocated exactly one way (the policy is pinned before its first
// enqueue), so the two allocators never race on one queue.
func (w *waitq) chanOfFIFO() core.WaitChan {
	if !w.wc.Valid() {
		w.wc = core.AllocWaitChanFIFO()
	}
	return w.wc
}

func (w *waitq) push(t *core.Thread) { w.chanOf().Enqueue(t) }

func (w *waitq) pop() *core.Thread {
	if !w.wc.Valid() {
		return nil
	}
	return w.wc.DequeueOne()
}

func (w *waitq) remove(t *core.Thread) bool {
	if !w.wc.Valid() {
		return false
	}
	return w.wc.Remove(t)
}

func (w *waitq) len() int {
	if !w.wc.Valid() {
		return 0
	}
	return w.wc.Len()
}

// popAll empties the queue, returning the waiters in queue
// (priority-then-FIFO) order.
func (w *waitq) popAll() []*core.Thread {
	if !w.wc.Valid() {
		return nil
	}
	return w.wc.DequeueAll()
}

// chaosOf returns the chaos source perturbing t's system (nil — and
// so inert — when chaos is disabled). Spurious wakeups are injected
// only at the park sites in this package because every one of them
// sits in a Mesa-style re-check loop; kernel sleep sites do not all
// tolerate a WakeNormal without the awaited event.
func chaosOf(t *core.Thread) *chaos.Source { return t.Runtime().ChaosSource() }
