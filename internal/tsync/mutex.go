package tsync

import (
	"sync"

	"sunosmt/internal/core"
	"sunosmt/internal/usync"
)

// Mutex is the paper's mutual exclusion lock: low overhead in space
// and time, suitable for high-frequency usage, strictly bracketing.
// The zero value is an unlocked mutex of the default variant.
type Mutex struct {
	mu      sync.Mutex // word lock; models the atomic instructions
	held    bool
	owner   *core.Thread // error-checking variant only
	variant Variant
	waiters waitq

	// sv, when non-nil, makes this a process-shared mutex whose
	// state lives in mapped memory at the variable's offset:
	// word 0 = lock state, word 1 = waiter count.
	sv *usync.Var
}

// MutexShmSize is the number of bytes a process-shared mutex occupies
// in mapped memory.
const MutexShmSize = 16

// Init selects the implementation variant (mutex_init). Calling Init
// on a held mutex is a programming error the library does not check
// for, as in the original.
func (mp *Mutex) Init(v Variant) { mp.variant = v }

// InitShared binds the mutex to shared state at (obj, off) resolved
// through reg — the USYNC_PROCESS variant. Threads in any process
// that binds a Mutex to the same identity contend on the same lock.
func (mp *Mutex) InitShared(sv *usync.Var) { mp.sv = sv }

// Enter acquires the lock, blocking if it is already held
// (mutex_enter).
func (mp *Mutex) Enter(t *core.Thread) {
	if mp.sv != nil {
		mp.enterShared(t)
		return
	}
	spins := 0
	if mp.variant == VariantSpin {
		spins = -1 // never park
	} else if mp.variant == VariantAdaptive || mp.variant == VariantDefault {
		spins = adaptiveSpins
	}
	for {
		mp.mu.Lock()
		if !mp.held {
			mp.held = true
			if mp.variant == VariantErrorCheck {
				mp.owner = t
			}
			mp.mu.Unlock()
			return
		}
		if mp.variant == VariantErrorCheck && mp.owner == t {
			mp.mu.Unlock()
			panic("tsync: recursive mutex_enter (self-deadlock) detected by error-check mutex")
		}
		if spins != 0 {
			mp.mu.Unlock()
			if spins > 0 {
				spins--
			}
			t.Yield() // let the holder run
			continue
		}
		// Queue and park. The enqueue happens under the word
		// lock; the wake permit protocol in core makes the
		// release-side unpark race-free.
		mp.waiters.push(t)
		mp.mu.Unlock()
		if chaosOf(t).SpuriousWakeup() {
			// Chaos: the park returns with no real wake.
			// Deregister (a real wake would have popped us)
			// and re-contend.
			mp.mu.Lock()
			mp.waiters.remove(t)
			mp.mu.Unlock()
			t.Checkpoint()
			continue
		}
		t.Park()
		// Loop: mutex may have been stolen by a barger; Mesa
		// semantics, as with real adaptive locks.
	}
}

// TryEnter acquires the lock only if that requires no blocking
// (mutex_tryenter); it reports whether the lock was taken. The paper
// notes it can be used to avoid deadlock in lock-hierarchy
// violations.
func (mp *Mutex) TryEnter(t *core.Thread) bool {
	if mp.sv != nil {
		return mp.tryEnterShared(t)
	}
	mp.mu.Lock()
	defer mp.mu.Unlock()
	if mp.held {
		return false
	}
	mp.held = true
	if mp.variant == VariantErrorCheck {
		mp.owner = t
	}
	return true
}

// Exit releases the lock, unblocking one waiter (mutex_exit).
func (mp *Mutex) Exit(t *core.Thread) {
	if mp.sv != nil {
		mp.exitShared(t)
		return
	}
	mp.mu.Lock()
	if mp.variant == VariantErrorCheck {
		if !mp.held || mp.owner != t {
			mp.mu.Unlock()
			panic("tsync: mutex_exit of a lock not held by the thread")
		}
		mp.owner = nil
	}
	mp.held = false
	wake := mp.waiters.pop()
	mp.mu.Unlock()
	if wake != nil {
		wake.Unpark()
	}
}

// Held reports whether the mutex is currently held (debugging aid).
func (mp *Mutex) Held() bool {
	if mp.sv != nil {
		var h bool
		mp.sv.Atomically(func(w usync.Words) { h = w.Load(0) != 0 })
		return h
	}
	mp.mu.Lock()
	defer mp.mu.Unlock()
	return mp.held
}

// --- process-shared implementation --------------------------------------

func (mp *Mutex) enterShared(t *core.Thread) {
	l := t.LWP()
	for {
		acquired := false
		mp.sv.Atomically(func(w usync.Words) {
			if w.Load(0) == 0 {
				w.Store(0, 1)
				acquired = true
			} else {
				w.Store(1, w.Load(1)+1) // waiter count
			}
		})
		if acquired {
			return
		}
		// Block in the kernel: the thread is temporarily bound to
		// the LWP that blocks, as in a system call (paper).
		mp.sv.SleepWhile(l, func(w usync.Words) bool {
			return w.Load(0) != 0
		}, usync.SleepOpts{})
		mp.sv.Atomically(func(w usync.Words) {
			w.Store(1, w.Load(1)-1)
		})
		t.Checkpoint()
	}
}

func (mp *Mutex) tryEnterShared(*core.Thread) bool {
	acquired := false
	mp.sv.Atomically(func(w usync.Words) {
		if w.Load(0) == 0 {
			w.Store(0, 1)
			acquired = true
		}
	})
	return acquired
}

func (mp *Mutex) exitShared(*core.Thread) {
	hadWaiters := false
	mp.sv.Atomically(func(w usync.Words) {
		w.Store(0, 0)
		hadWaiters = w.Load(1) > 0
	})
	if hadWaiters {
		mp.sv.Wake(1)
	}
}
