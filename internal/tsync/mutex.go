package tsync

import (
	"sync"
	"time"

	"sunosmt/internal/core"
	"sunosmt/internal/ktime"
	"sunosmt/internal/usync"
)

// Mutex is the paper's mutual exclusion lock: low overhead in space
// and time, suitable for high-frequency usage, strictly bracketing.
// The zero value is an unlocked mutex of the default variant.
//
// Every variant records its owner so the library can maintain the
// wait-for graph (deadlock detection, /proc lstatus); only the
// error-checking variant acts on it. Process-shared mutexes are
// robust: the owner's (pid, tid) lives in the mapped words, a process
// death sweeps it, and the next acquirer gets ErrOwnerDead (see
// EnterErr and MakeConsistent).
type Mutex struct {
	mu      sync.Mutex // word lock; models the atomic instructions
	held    bool
	owner   *core.Thread
	variant Variant
	waiters waitq
	ts      core.Turnstile // priority-inheritance anchor (local only)
	name    string         // lazily assigned; identifies the lock in lstatus

	// policy is the configured lock/wake policy (InitPolicy); pinned
	// is its resolved implementation, fixed at first use so the
	// waiter-queue discipline never changes mid-life. See policy.go.
	policy Policy
	pinned lockPolicy

	// qhead/qtail chain the queue policy's explicit MCS nodes; plSeq
	// counts the parking-lot policy's releases for its fairness
	// hand-off. All under the word lock.
	qhead, qtail *mcsNode
	plSeq        uint64

	// sv, when non-nil, makes this a process-shared mutex whose
	// state lives in mapped memory at the variable's offset:
	// word 0 = lock state, word 1 = waiter count, word 2 = owner
	// (pid, tid), word 3 = robust state.
	sv *usync.Var
}

// MutexShmSize is the number of bytes a process-shared mutex occupies
// in mapped memory.
const MutexShmSize = 32

// Init selects the implementation variant (mutex_init). Calling Init
// on a held mutex is a programming error the library does not check
// for, as in the original.
func (mp *Mutex) Init(v Variant) { mp.variant = v }

// InitPolicy pins this lock's lock/wake policy (see Policy), overriding
// the process default. Like Init, it must be called before first use;
// once the mutex has been contended the policy is fixed.
func (mp *Mutex) InitPolicy(p Policy) {
	mp.mu.Lock()
	mp.policy = p
	mp.mu.Unlock()
}

// LockPolicy reports the lock's policy: the resolved one once the
// mutex has been used, the configured one before that.
func (mp *Mutex) LockPolicy() string { return mp.policyName() }

// InitShared binds the mutex to shared state at (obj, off) resolved
// through reg — the USYNC_PROCESS variant. Threads in any process
// that binds a Mutex to the same identity contend on the same lock.
func (mp *Mutex) InitShared(sv *usync.Var) {
	mp.sv = sv
	sv.Declare(usync.KindMutex)
}

// Name returns the lock's identity for diagnostics: the shared
// variable's system-wide name, or a lazily assigned "mutex#N".
func (mp *Mutex) Name() string {
	if mp.sv != nil {
		return mp.sv.Name()
	}
	mp.mu.Lock()
	defer mp.mu.Unlock()
	if mp.name == "" {
		mp.name = autoName("mutex")
	}
	return mp.name
}

// blockInfo builds the wait-for edge published while parked on this
// mutex. The owner closure resolves at walk time, never under the
// caller's locks.
func (mp *Mutex) blockInfo() *core.BlockInfo {
	name := mp.Name()
	if mp.sv != nil {
		return &core.BlockInfo{Kind: "mutex", Name: name, Owner: func() (core.OwnerRef, bool) {
			var ow uint64
			mp.sv.Atomically(func(w usync.Words) { ow = w.Load(2) })
			if ow == 0 {
				return core.OwnerRef{}, false
			}
			pid, tid := usync.DecodeOwner(ow)
			return core.OwnerRef{PID: pid, TID: core.ThreadID(tid)}, true
		}}
	}
	return &core.BlockInfo{Kind: "mutex", Name: name, Ts: &mp.ts, Policy: mp.policyName(), Owner: func() (core.OwnerRef, bool) {
		mp.mu.Lock()
		o := mp.owner
		mp.mu.Unlock()
		if o == nil {
			return core.OwnerRef{}, false
		}
		return core.OwnerRef{TID: o.ID()}, true
	}}
}

// Enter acquires the lock, blocking if it is already held
// (mutex_enter). On an error-check mutex a lock-time deadlock panics,
// as the paper's debugging variant did; an owner-dead shared lock is
// recovered transparently (use EnterErr for the robust protocol).
func (mp *Mutex) Enter(t *core.Thread) {
	switch err := mp.EnterErr(t); err {
	case nil:
	case ErrOwnerDead:
		mp.MakeConsistent(t)
	case ErrDeadlock:
		panic("tsync: recursive mutex_enter (self-deadlock) detected by error-check mutex")
	case ErrNotRecoverable:
		panic("tsync: mutex_enter of a not-recoverable shared lock")
	}
}

// EnterErr acquires the lock like Enter but reports exceptional
// acquisitions instead of panicking or recovering silently:
//
//   - ErrDeadlock (error-check variant): the calling thread already
//     owns the lock, or parking would close a wait-for cycle. The
//     lock is not acquired and the thread did not park.
//   - ErrOwnerDead (shared): a process died holding the lock. The
//     caller HOLDS the lock and must repair the protected state and
//     call MakeConsistent before Exit; releasing without it makes
//     the lock permanently ErrNotRecoverable.
//   - ErrNotRecoverable (shared): the lock is dead forever.
func (mp *Mutex) EnterErr(t *core.Thread) error {
	if mp.sv != nil {
		return mp.enterShared(t, 0)
	}
	return mp.enterLocal(t, 0)
}

// TimedEnter is EnterErr with a deadline: it gives up and returns
// ErrTimedOut if the lock cannot be acquired within d (cf.
// Cond.TimedWait). d <= 0 means no deadline.
func (mp *Mutex) TimedEnter(t *core.Thread, d time.Duration) error {
	if mp.sv != nil {
		return mp.enterShared(t, d)
	}
	return mp.enterLocal(t, d)
}

// MakeConsistent marks an owner-dead shared lock consistent again
// (pthread_mutex_consistent). Only the thread currently holding the
// lock after an ErrOwnerDead acquisition may call it; reports whether
// the mark was cleared. Unshared mutexes have no robust state.
func (mp *Mutex) MakeConsistent(t *core.Thread) bool {
	if mp.sv == nil {
		return false
	}
	self := ownerWord(t)
	ok := false
	mp.sv.Atomically(func(w usync.Words) {
		if w.Load(3) == usync.RobustOwnerDead && w.Load(0) != 0 && w.Load(2) == self {
			w.Store(3, usync.RobustOK)
			ok = true
		}
	})
	return ok
}

// enterLocal is the unshared acquisition path: it resolves the lock's
// policy (per-lock InitPolicy, else the process default) and runs its
// acquisition loop. d > 0 bounds the wait.
func (mp *Mutex) enterLocal(t *core.Thread, d time.Duration) error {
	return mp.impl(t).enter(mp, t, d)
}

// parkTimed parks t with a deadline. dequeue must atomically remove t
// from the primitive's wait queue and report whether it was still
// queued; when the timer wins that race the park is cut short and
// parkTimed reports true (timed out). A racing real wake keeps its
// normal meaning: the thread was popped by the waker, the timer's
// dequeue fails, and parkTimed reports false.
func parkTimed(t *core.Thread, clk ktime.Clock, deadline time.Duration, dequeue func() bool) bool {
	rem := deadline - clk.Now()
	if rem <= 0 {
		if dequeue() {
			return true
		}
		// Already woken for real: consume the wake.
		t.Park()
		return false
	}
	fired := make(chan struct{})
	timer := clk.AfterFunc(rem, func() {
		if dequeue() {
			close(fired)
			t.Unpark()
		}
	})
	t.Park()
	timer.Stop()
	select {
	case <-fired:
		return true
	default:
		return false
	}
}

// TryEnter acquires the lock only if that requires no blocking
// (mutex_tryenter); it reports whether the lock was taken. The paper
// notes it can be used to avoid deadlock in lock-hierarchy
// violations. An owner-dead shared lock is taken and recovered
// transparently; a not-recoverable one is never taken.
func (mp *Mutex) TryEnter(t *core.Thread) bool {
	if mp.sv != nil {
		return mp.tryEnterShared(t)
	}
	mp.mu.Lock()
	defer mp.mu.Unlock()
	if mp.held {
		return false
	}
	mp.held = true
	mp.owner = t
	mp.ts.Acquired(t)
	return true
}

// Exit releases the lock (mutex_exit): the policy either wakes the
// best waiter into an open re-acquisition race (barging: adaptive,
// parkinglot) or transfers ownership directly to the oldest waiter
// (hand-off: ticket, queue).
func (mp *Mutex) Exit(t *core.Thread) {
	if mp.sv != nil {
		mp.exitShared(t)
		return
	}
	mp.impl(t).exit(mp, t)
}

// Held reports whether the mutex is currently held (debugging aid).
func (mp *Mutex) Held() bool {
	if mp.sv != nil {
		var h bool
		mp.sv.Atomically(func(w usync.Words) { h = w.Load(0) != 0 })
		return h
	}
	mp.mu.Lock()
	defer mp.mu.Unlock()
	return mp.held
}

// ownerWord encodes the calling thread as a shared owner word.
func ownerWord(t *core.Thread) uint64 {
	return usync.EncodeOwner(t.Runtime().Process().PID(), int(t.ID()))
}

// --- process-shared implementation --------------------------------------

func (mp *Mutex) enterShared(t *core.Thread, d time.Duration) error {
	l := t.LWP()
	self := ownerWord(t)
	clk := t.Runtime().Kernel().Clock()
	var deadline time.Duration
	if d > 0 {
		deadline = clk.Now() + d
	}
	// The waiter count is incremented once and decremented on every
	// exit from this function — including a kernel unwind tearing
	// through the sleep when this process dies, which previously
	// leaked the count forever.
	waiting := false
	defer func() {
		if waiting {
			mp.sv.Atomically(func(w usync.Words) { w.Store(1, w.Load(1)-1) })
		}
	}()
	var bi *core.BlockInfo
	for {
		var acquired, dead, notrec, selfOwned bool
		mp.sv.Atomically(func(w usync.Words) {
			switch {
			case w.Load(3) == usync.RobustNotRecoverable:
				notrec = true
			case w.Load(0) == 0:
				w.Store(0, 1)
				w.Store(2, self)
				dead = w.Load(3) == usync.RobustOwnerDead
				acquired = true
			default:
				selfOwned = w.Load(2) == self
			}
		})
		if notrec {
			return ErrNotRecoverable
		}
		if acquired {
			if dead {
				return ErrOwnerDead
			}
			return nil
		}
		if selfOwned && mp.variant == VariantErrorCheck {
			return ErrDeadlock
		}
		if d > 0 && clk.Now() >= deadline {
			return ErrTimedOut
		}
		if !waiting {
			waiting = true
			mp.sv.Atomically(func(w usync.Words) { w.Store(1, w.Load(1)+1) })
		}
		opts := usync.SleepOpts{}
		if d > 0 {
			opts.Timeout = deadline - clk.Now()
		}
		if bi == nil {
			bi = mp.blockInfo()
		}
		// Block in the kernel: the thread is temporarily bound to
		// the LWP that blocks, as in a system call (paper). The
		// sleep breaks on release, on the owner-death sweep
		// (which clears the lock word), and on NOTRECOVERABLE.
		t.NoteBlocked(bi)
		mp.sv.SleepWhile(l, func(w usync.Words) bool {
			return w.Load(0) != 0 && w.Load(3) != usync.RobustNotRecoverable
		}, opts)
		t.NoteUnblocked()
		t.Checkpoint()
	}
}

func (mp *Mutex) tryEnterShared(t *core.Thread) bool {
	self := ownerWord(t)
	acquired := false
	mp.sv.Atomically(func(w usync.Words) {
		if w.Load(3) == usync.RobustNotRecoverable {
			return
		}
		if w.Load(0) == 0 {
			w.Store(0, 1)
			w.Store(2, self)
			if w.Load(3) == usync.RobustOwnerDead {
				w.Store(3, usync.RobustOK) // transparent recovery
			}
			acquired = true
		}
	})
	return acquired
}

func (mp *Mutex) exitShared(t *core.Thread) {
	self := ownerWord(t)
	var hadWaiters, wakeAll, bad bool
	mp.sv.Atomically(func(w usync.Words) {
		if mp.variant == VariantErrorCheck && (w.Load(0) == 0 || w.Load(2) != self) {
			bad = true
			return
		}
		if w.Load(3) == usync.RobustOwnerDead && w.Load(2) == self {
			// Released while still inconsistent: nobody can ever
			// trust the protected state again (ENOTRECOVERABLE).
			// All sleepers wake and fail their acquisitions.
			w.Store(3, usync.RobustNotRecoverable)
			wakeAll = true
		}
		w.Store(0, 0)
		w.Store(2, 0)
		hadWaiters = w.Load(1) > 0
	})
	if bad {
		panic("tsync: mutex_exit of a lock not held by the thread")
	}
	if wakeAll {
		mp.sv.Wake(-1)
	} else if hadWaiters {
		mp.sv.Wake(1)
	}
}
