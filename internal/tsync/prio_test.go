package tsync

import (
	"sync/atomic"
	"testing"

	"sunosmt/internal/core"
)

// These tests pin the priority semantics of the sleep queues and the
// turnstile priority-inheritance protocol. They run on one LWP so the
// interleavings are deterministic: the main thread (priority 1) only
// loses the LWP when it yields, and a created thread runs until it
// parks.

// yieldUntil yields the caller until cond() holds.
func yieldUntil(t *testing.T, self *core.Thread, cond func() bool) {
	t.Helper()
	for i := 0; !cond(); i++ {
		if i > 1_000_000 {
			t.Fatal("condition never became true")
		}
		self.Yield()
	}
}

// sleepingOn reports whether th is parked on a synchronization object
// of the given kind.
func sleepingOn(th *core.Thread, kind string) bool {
	if th.State() != core.ThreadSleeping {
		return false
	}
	bi := th.BlockedOn()
	return bi != nil && bi.Kind == kind
}

// TestSemaVWakesHighestPriority is the regression test for the FIFO
// sleep-queue bug: a V must wake the highest-priority waiter, even
// when a lower-priority thread queued first.
func TestSemaVWakesHighestPriority(t *testing.T) {
	w := newWorld(1)
	var sem Sema
	var woke [2]atomic.Int32 // acquisition order: priorities
	var n atomic.Int32
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		r := self.Runtime()
		waiter := func(prio int) *core.Thread {
			c, err := r.Create(func(c *core.Thread, _ any) {
				sem.P(c)
				woke[n.Add(1)-1].Store(int32(prio))
			}, nil, core.CreateOpts{Flags: core.ThreadWait, Priority: prio})
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		// Low queues FIRST; under the old FIFO buckets the first V
		// woke it despite the higher-priority waiter behind it.
		low := waiter(1)
		yieldUntil(t, self, func() bool { return sleepingOn(low, "sema") })
		high := waiter(5)
		yieldUntil(t, self, func() bool { return sleepingOn(high, "sema") })
		sem.V(self)
		yieldUntil(t, self, func() bool { return n.Load() == 1 })
		if low.State() != core.ThreadSleeping {
			t.Error("low-priority waiter woke on the first V; want it still queued")
		}
		sem.V(self)
		self.Wait(low.ID())
		self.Wait(high.ID())
	})
	waitRT(t, m)
	if woke[0].Load() != 5 || woke[1].Load() != 1 {
		t.Errorf("wake order by priority = [%d %d], want [5 1]", woke[0].Load(), woke[1].Load())
	}
}

// TestCondSignalWakesHighestPriority: same regression for cond_signal.
func TestCondSignalWakesHighestPriority(t *testing.T) {
	w := newWorld(1)
	var mu Mutex
	var cv Cond
	ready := false
	var woke [2]atomic.Int32
	var n atomic.Int32
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		r := self.Runtime()
		waiter := func(prio int) *core.Thread {
			c, err := r.Create(func(c *core.Thread, _ any) {
				mu.Enter(c)
				for !ready {
					cv.Wait(c, &mu)
				}
				woke[n.Add(1)-1].Store(int32(prio))
				mu.Exit(c)
			}, nil, core.CreateOpts{Flags: core.ThreadWait, Priority: prio})
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		low := waiter(1)
		yieldUntil(t, self, func() bool { return sleepingOn(low, "cond") })
		high := waiter(5)
		yieldUntil(t, self, func() bool { return sleepingOn(high, "cond") })
		mu.Enter(self)
		ready = true
		mu.Exit(self)
		cv.Signal(self)
		yieldUntil(t, self, func() bool { return n.Load() == 1 })
		if low.State() != core.ThreadSleeping {
			t.Error("low-priority waiter woke on Signal; want it still queued")
		}
		cv.Signal(self)
		self.Wait(low.ID())
		self.Wait(high.ID())
	})
	waitRT(t, m)
	if woke[0].Load() != 5 || woke[1].Load() != 1 {
		t.Errorf("wake order by priority = [%d %d], want [5 1]", woke[0].Load(), woke[1].Load())
	}
}

// TestMutexHandoffWakesHighestPriority: a mutex release hands off to
// the best waiter, not the oldest.
func TestMutexHandoffWakesHighestPriority(t *testing.T) {
	w := newWorld(1)
	var mu Mutex
	var woke [2]atomic.Int32
	var n atomic.Int32
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		r := self.Runtime()
		mu.Enter(self)
		waiter := func(prio int) *core.Thread {
			c, err := r.Create(func(c *core.Thread, _ any) {
				mu.Enter(c)
				woke[n.Add(1)-1].Store(int32(prio))
				mu.Exit(c)
			}, nil, core.CreateOpts{Flags: core.ThreadWait, Priority: prio})
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		low := waiter(2)
		yieldUntil(t, self, func() bool { return sleepingOn(low, "mutex") })
		high := waiter(5)
		yieldUntil(t, self, func() bool { return sleepingOn(high, "mutex") })
		mu.Exit(self)
		self.Wait(low.ID())
		self.Wait(high.ID())
	})
	waitRT(t, m)
	if woke[0].Load() != 5 || woke[1].Load() != 2 {
		t.Errorf("acquisition order by priority = [%d %d], want [5 2]", woke[0].Load(), woke[1].Load())
	}
}

// TestMutexPriorityInheritance: a high-priority thread blocking on a
// mutex wills its effective priority to the low-priority owner — even
// while the owner is itself asleep — and the boost is shed at release.
func TestMutexPriorityInheritance(t *testing.T) {
	w := newWorld(1)
	var mu Mutex
	var gate Sema
	var effDuring, effAfter, baseDuring atomic.Int32
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		r := self.Runtime()
		low, err := r.Create(func(c *core.Thread, _ any) {
			mu.Enter(c)
			gate.P(c) // hold the lock while parked elsewhere
			mu.Exit(c)
			effAfter.Store(int32(c.EffPriority()))
		}, nil, core.CreateOpts{Flags: core.ThreadWait, Priority: 2})
		if err != nil {
			t.Fatal(err)
		}
		yieldUntil(t, self, func() bool { return sleepingOn(low, "sema") })
		high, err := r.Create(func(c *core.Thread, _ any) {
			mu.Enter(c)
			mu.Exit(c)
		}, nil, core.CreateOpts{Flags: core.ThreadWait, Priority: 10})
		if err != nil {
			t.Fatal(err)
		}
		yieldUntil(t, self, func() bool { return sleepingOn(high, "mutex") })
		// high parked after willing: the boost is visible and stable
		// until the owner releases.
		effDuring.Store(int32(low.EffPriority()))
		baseDuring.Store(int32(low.Priority()))
		gate.V(self)
		self.Wait(low.ID())
		self.Wait(high.ID())
	})
	waitRT(t, m)
	if got := effDuring.Load(); got != 10 {
		t.Errorf("owner effective priority while high-priority waiter blocked = %d, want 10 (inherited)", got)
	}
	if got := baseDuring.Load(); got != 2 {
		t.Errorf("owner base priority while boosted = %d, want 2 (unchanged)", got)
	}
	if got := effAfter.Load(); got != 2 {
		t.Errorf("owner effective priority after release = %d, want 2 (boost shed)", got)
	}
}

// TestMutexInheritanceChain: a blocking chain H -> mu2(L2) -> mu1(L1)
// wills H's priority transitively to both owners, and each boost is
// shed as its turnstile drains.
func TestMutexInheritanceChain(t *testing.T) {
	w := newWorld(1)
	var mu1, mu2 Mutex
	var gate Sema
	var effL1, effL2, afterL1, afterL2 atomic.Int32
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		r := self.Runtime()
		l1, err := r.Create(func(c *core.Thread, _ any) {
			mu1.Enter(c)
			gate.P(c)
			mu1.Exit(c)
			afterL1.Store(int32(c.EffPriority()))
		}, nil, core.CreateOpts{Flags: core.ThreadWait, Priority: 2})
		if err != nil {
			t.Fatal(err)
		}
		yieldUntil(t, self, func() bool { return sleepingOn(l1, "sema") })
		l2, err := r.Create(func(c *core.Thread, _ any) {
			mu2.Enter(c)
			mu1.Enter(c) // blocks: l1 holds mu1
			mu1.Exit(c)
			mu2.Exit(c)
			afterL2.Store(int32(c.EffPriority()))
		}, nil, core.CreateOpts{Flags: core.ThreadWait, Priority: 3})
		if err != nil {
			t.Fatal(err)
		}
		yieldUntil(t, self, func() bool { return sleepingOn(l2, "mutex") })
		h, err := r.Create(func(c *core.Thread, _ any) {
			mu2.Enter(c) // blocks: l2 holds mu2
			mu2.Exit(c)
		}, nil, core.CreateOpts{Flags: core.ThreadWait, Priority: 10})
		if err != nil {
			t.Fatal(err)
		}
		yieldUntil(t, self, func() bool { return sleepingOn(h, "mutex") })
		effL1.Store(int32(l1.EffPriority()))
		effL2.Store(int32(l2.EffPriority()))
		gate.V(self)
		self.Wait(l1.ID())
		self.Wait(l2.ID())
		self.Wait(h.ID())
	})
	waitRT(t, m)
	if got := effL2.Load(); got != 10 {
		t.Errorf("eff(l2) with high blocked on its lock = %d, want 10", got)
	}
	if got := effL1.Load(); got != 10 {
		t.Errorf("eff(l1) at the end of the chain = %d, want 10 (transitive)", got)
	}
	if got := afterL2.Load(); got != 3 {
		t.Errorf("eff(l2) after releasing = %d, want base 3", got)
	}
	if got := afterL1.Load(); got != 2 {
		t.Errorf("eff(l1) after releasing = %d, want base 2", got)
	}
}

// TestRWLockWriterInheritance: readers and writers blocked on a held
// writer lock boost the writer; the boost is shed at release.
func TestRWLockWriterInheritance(t *testing.T) {
	w := newWorld(1)
	var rw RWLock
	var gate Sema
	var effReader, effWriter, after atomic.Int32
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		r := self.Runtime()
		wr, err := r.Create(func(c *core.Thread, _ any) {
			rw.Enter(c, RWWriter)
			gate.P(c)
			rw.Exit(c)
			after.Store(int32(c.EffPriority()))
		}, nil, core.CreateOpts{Flags: core.ThreadWait, Priority: 2})
		if err != nil {
			t.Fatal(err)
		}
		yieldUntil(t, self, func() bool { return sleepingOn(wr, "sema") })
		rd, err := r.Create(func(c *core.Thread, _ any) {
			rw.Enter(c, RWReader)
			rw.Exit(c)
		}, nil, core.CreateOpts{Flags: core.ThreadWait, Priority: 7})
		if err != nil {
			t.Fatal(err)
		}
		yieldUntil(t, self, func() bool { return sleepingOn(rd, "rwlock") })
		effReader.Store(int32(wr.EffPriority()))
		w2, err := r.Create(func(c *core.Thread, _ any) {
			rw.Enter(c, RWWriter)
			rw.Exit(c)
		}, nil, core.CreateOpts{Flags: core.ThreadWait, Priority: 9})
		if err != nil {
			t.Fatal(err)
		}
		yieldUntil(t, self, func() bool { return sleepingOn(w2, "rwlock") })
		effWriter.Store(int32(wr.EffPriority()))
		gate.V(self)
		self.Wait(wr.ID())
		self.Wait(rd.ID())
		self.Wait(w2.ID())
	})
	waitRT(t, m)
	if got := effReader.Load(); got != 7 {
		t.Errorf("writer eff with reader blocked = %d, want 7", got)
	}
	if got := effWriter.Load(); got != 9 {
		t.Errorf("writer eff with writer blocked = %d, want 9", got)
	}
	if got := after.Load(); got != 2 {
		t.Errorf("writer eff after release = %d, want base 2", got)
	}
}

// TestNoPriorityInheritanceAblation: with the knob off, a blocked
// high-priority acquirer does NOT boost the owner (the inversion the
// PriorityInversion bench reproduces), while the sleep queues stay
// priority-ordered.
func TestNoPriorityInheritanceAblation(t *testing.T) {
	w := newWorld(1)
	var mu Mutex
	var gate Sema
	var effDuring atomic.Int32
	m := w.boot(t, "p", core.Config{NoPriorityInheritance: true}, func(self *core.Thread, _ any) {
		r := self.Runtime()
		low, err := r.Create(func(c *core.Thread, _ any) {
			mu.Enter(c)
			gate.P(c)
			mu.Exit(c)
		}, nil, core.CreateOpts{Flags: core.ThreadWait, Priority: 2})
		if err != nil {
			t.Fatal(err)
		}
		yieldUntil(t, self, func() bool { return sleepingOn(low, "sema") })
		high, err := r.Create(func(c *core.Thread, _ any) {
			mu.Enter(c)
			mu.Exit(c)
		}, nil, core.CreateOpts{Flags: core.ThreadWait, Priority: 10})
		if err != nil {
			t.Fatal(err)
		}
		yieldUntil(t, self, func() bool { return sleepingOn(high, "mutex") })
		effDuring.Store(int32(low.EffPriority()))
		gate.V(self)
		self.Wait(low.ID())
		self.Wait(high.ID())
	})
	waitRT(t, m)
	if got := effDuring.Load(); got != 2 {
		t.Errorf("owner eff with inheritance disabled = %d, want 2 (no boost)", got)
	}
}
