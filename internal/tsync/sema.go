package tsync

import (
	"sync"
	"time"

	"sunosmt/internal/core"
	"sunosmt/internal/usync"
)

// Sema is a classic counting semaphore. Semaphores are not as
// efficient as mutex locks, but they need not be bracketed, so they
// can be used for asynchronous event notification (e.g. from signal
// handlers), and they carry state, so they can be used without an
// associated mutex (paper). The zero value is a semaphore with count
// zero.
//
// Semaphores have no strict owner, so robustness on the shared
// variant is best-effort: the most recent P-er that has not yet V'd
// is recorded, and if its process dies the sweep restores the
// consumed unit and leaves a one-shot owner-dead mark that the next
// PErr consumes. A death between a V and the next P is invisible, as
// it is in every robust-semaphore design.
type Sema struct {
	mu      sync.Mutex
	count   uint
	holder  *core.Thread // most recent P-er without a matching V
	waiters waitq
	name    string

	// sv (process-shared variant): word 0 is the count, word 1 the
	// most recent holder (pid, tid), word 2 the robust state.
	sv *usync.Var
}

// SemaShmSize is the number of bytes a process-shared semaphore
// occupies in mapped memory.
const SemaShmSize = 24

// Init sets the initial count (sema_init).
func (sp *Sema) Init(count uint) {
	sp.mu.Lock()
	sp.count = count
	sp.mu.Unlock()
}

// InitShared binds the semaphore to shared state at the variable —
// the USYNC_PROCESS variant — and sets the initial count if the
// shared word is still zero and count is non-zero.
func (sp *Sema) InitShared(sv *usync.Var, count uint) {
	sp.sv = sv
	sv.Declare(usync.KindSema)
	if count > 0 {
		sv.Atomically(func(w usync.Words) {
			if w.Load(0) == 0 {
				w.Store(0, uint64(count))
			}
		})
	}
}

// Name returns the semaphore's identity for diagnostics.
func (sp *Sema) Name() string {
	if sp.sv != nil {
		return sp.sv.Name()
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.name == "" {
		sp.name = autoName("sema")
	}
	return sp.name
}

// blockInfo is the wait-for edge for threads parked in P. The
// resolvable owner is the most recent un-V'd P-er, which makes
// mutex-style semaphore usage visible to the deadlock detector.
func (sp *Sema) blockInfo() *core.BlockInfo {
	name := sp.Name()
	if sp.sv != nil {
		return &core.BlockInfo{Kind: "sema", Name: name, Owner: func() (core.OwnerRef, bool) {
			var ow uint64
			sp.sv.Atomically(func(w usync.Words) { ow = w.Load(1) })
			if ow == 0 {
				return core.OwnerRef{}, false
			}
			pid, tid := usync.DecodeOwner(ow)
			return core.OwnerRef{PID: pid, TID: core.ThreadID(tid)}, true
		}}
	}
	return &core.BlockInfo{Kind: "sema", Name: name, Owner: func() (core.OwnerRef, bool) {
		sp.mu.Lock()
		h := sp.holder
		sp.mu.Unlock()
		if h == nil {
			return core.OwnerRef{}, false
		}
		return core.OwnerRef{TID: h.ID()}, true
	}}
}

// P decrements the semaphore, blocking while the count is zero
// (sema_p). A pending owner-death mark on a shared semaphore is
// absorbed silently; use PErr to observe it.
func (sp *Sema) P(t *core.Thread) {
	sp.PErr(t)
}

// PErr is P surfacing the robust protocol of shared semaphores: it
// returns ErrOwnerDead (with the unit acquired) to the first P after
// a process died between P and V — the compensating unit restored by
// the sweep may guard state that needs checking. Unshared semaphores
// always return nil.
func (sp *Sema) PErr(t *core.Thread) error {
	if sp.sv != nil {
		return sp.pShared(t, 0)
	}
	return sp.pLocal(t, 0)
}

// TimedP is PErr with a deadline, returning ErrTimedOut when d
// elapses before a unit is available (sema_timedwait).
func (sp *Sema) TimedP(t *core.Thread, d time.Duration) error {
	if sp.sv != nil {
		return sp.pShared(t, d)
	}
	return sp.pLocal(t, d)
}

func (sp *Sema) pLocal(t *core.Thread, d time.Duration) error {
	clk := t.Runtime().Kernel().Clock()
	var deadline time.Duration
	if d > 0 {
		deadline = clk.Now() + d
	}
	var bi *core.BlockInfo
	for {
		sp.mu.Lock()
		if sp.count > 0 {
			sp.count--
			sp.holder = t
			sp.mu.Unlock()
			return nil
		}
		if d > 0 && clk.Now() >= deadline {
			sp.mu.Unlock()
			return ErrTimedOut
		}
		sp.waiters.push(t)
		sp.mu.Unlock()
		if chaosOf(t).SpuriousWakeup() {
			t.Checkpoint() // chaos: spurious wakeup, park elided
		} else if d > 0 {
			if bi == nil {
				bi = sp.blockInfo()
			}
			t.NoteBlocked(bi)
			timedOut := parkTimed(t, clk, deadline, func() bool {
				sp.mu.Lock()
				removed := sp.waiters.remove(t)
				sp.mu.Unlock()
				return removed
			})
			t.NoteUnblocked()
			if timedOut {
				return ErrTimedOut
			}
		} else {
			if bi == nil {
				bi = sp.blockInfo()
			}
			t.NoteBlocked(bi)
			t.Park()
			t.NoteUnblocked()
		}
		// Mesa semantics: re-check; a barger may have taken the
		// count.
		sp.mu.Lock()
		sp.waiters.remove(t)
		sp.mu.Unlock()
	}
}

// TryP decrements the semaphore only if no blocking is required
// (sema_tryp); it reports whether the decrement happened.
func (sp *Sema) TryP(t *core.Thread) bool {
	if sp.sv != nil {
		ok := false
		self := ownerWord(t)
		sp.sv.Atomically(func(w usync.Words) {
			if c := w.Load(0); c > 0 {
				w.Store(0, c-1)
				w.Store(1, self)
				if w.Load(2) == usync.RobustOwnerDead {
					w.Store(2, usync.RobustOK) // absorbed silently
				}
				ok = true
			}
		})
		return ok
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.count == 0 {
		return false
	}
	sp.count--
	sp.holder = t
	return true
}

// V increments the semaphore, unblocking one waiter (sema_v). V takes
// the posting thread for symmetry but never blocks, so it is safe in
// signal handlers; t may be nil when posting from outside any thread.
func (sp *Sema) V(t *core.Thread) {
	if sp.sv != nil {
		var self uint64
		if t != nil {
			self = ownerWord(t)
		}
		sp.sv.Atomically(func(w usync.Words) {
			w.Store(0, w.Load(0)+1)
			if self != 0 && w.Load(1) == self {
				w.Store(1, 0) // balanced P/V: no outstanding holder
			}
		})
		sp.sv.Wake(1)
		return
	}
	sp.mu.Lock()
	sp.count++
	if t != nil && sp.holder == t {
		sp.holder = nil
	}
	wake := sp.waiters.pop()
	sp.mu.Unlock()
	if wake != nil {
		wake.Unpark()
	}
}

// Count returns the current count (debugging aid).
func (sp *Sema) Count() uint {
	if sp.sv != nil {
		var c uint64
		sp.sv.Atomically(func(w usync.Words) { c = w.Load(0) })
		return uint(c)
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.count
}

func (sp *Sema) pShared(t *core.Thread, d time.Duration) error {
	l := t.LWP()
	self := ownerWord(t)
	clk := t.Runtime().Kernel().Clock()
	var deadline time.Duration
	if d > 0 {
		deadline = clk.Now() + d
	}
	var bi *core.BlockInfo
	for {
		var acquired, dead bool
		sp.sv.Atomically(func(w usync.Words) {
			if c := w.Load(0); c > 0 {
				w.Store(0, c-1)
				w.Store(1, self)
				if w.Load(2) == usync.RobustOwnerDead {
					// One-shot: the first P after the death
					// observes it; later Ps see a normal
					// semaphore.
					w.Store(2, usync.RobustOK)
					dead = true
				}
				acquired = true
			}
		})
		if acquired {
			if dead {
				return ErrOwnerDead
			}
			return nil
		}
		if d > 0 && clk.Now() >= deadline {
			return ErrTimedOut
		}
		opts := usync.SleepOpts{}
		if d > 0 {
			opts.Timeout = deadline - clk.Now()
		}
		if bi == nil {
			bi = sp.blockInfo()
		}
		t.NoteBlocked(bi)
		sp.sv.SleepWhile(l, func(w usync.Words) bool {
			return w.Load(0) == 0
		}, opts)
		t.NoteUnblocked()
		t.Checkpoint()
	}
}
