package tsync

import (
	"sync"

	"sunosmt/internal/core"
	"sunosmt/internal/usync"
)

// Sema is a classic counting semaphore. Semaphores are not as
// efficient as mutex locks, but they need not be bracketed, so they
// can be used for asynchronous event notification (e.g. from signal
// handlers), and they carry state, so they can be used without an
// associated mutex (paper). The zero value is a semaphore with count
// zero.
type Sema struct {
	mu      sync.Mutex
	count   uint
	waiters waitq

	// sv (process-shared variant): word 0 is the count.
	sv *usync.Var
}

// SemaShmSize is the number of bytes a process-shared semaphore
// occupies in mapped memory.
const SemaShmSize = 8

// Init sets the initial count (sema_init).
func (sp *Sema) Init(count uint) {
	sp.mu.Lock()
	sp.count = count
	sp.mu.Unlock()
}

// InitShared binds the semaphore to shared state at the variable —
// the USYNC_PROCESS variant — and sets the initial count if the
// shared word is still zero and count is non-zero.
func (sp *Sema) InitShared(sv *usync.Var, count uint) {
	sp.sv = sv
	if count > 0 {
		sv.Atomically(func(w usync.Words) {
			if w.Load(0) == 0 {
				w.Store(0, uint64(count))
			}
		})
	}
}

// P decrements the semaphore, blocking while the count is zero
// (sema_p).
func (sp *Sema) P(t *core.Thread) {
	if sp.sv != nil {
		sp.pShared(t)
		return
	}
	for {
		sp.mu.Lock()
		if sp.count > 0 {
			sp.count--
			sp.mu.Unlock()
			return
		}
		sp.waiters.push(t)
		sp.mu.Unlock()
		if chaosOf(t).SpuriousWakeup() {
			t.Checkpoint() // chaos: spurious wakeup, park elided
		} else {
			t.Park()
		}
		// Mesa semantics: re-check; a barger may have taken the
		// count.
		sp.mu.Lock()
		sp.waiters.remove(t)
		sp.mu.Unlock()
	}
}

// TryP decrements the semaphore only if no blocking is required
// (sema_tryp); it reports whether the decrement happened.
func (sp *Sema) TryP(t *core.Thread) bool {
	if sp.sv != nil {
		ok := false
		sp.sv.Atomically(func(w usync.Words) {
			if c := w.Load(0); c > 0 {
				w.Store(0, c-1)
				ok = true
			}
		})
		return ok
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.count == 0 {
		return false
	}
	sp.count--
	return true
}

// V increments the semaphore, unblocking one waiter (sema_v). V takes
// the posting thread for symmetry but never blocks, so it is safe in
// signal handlers; t may be nil when posting from outside any thread.
func (sp *Sema) V(t *core.Thread) {
	if sp.sv != nil {
		sp.sv.Atomically(func(w usync.Words) { w.Store(0, w.Load(0)+1) })
		sp.sv.Wake(1)
		return
	}
	sp.mu.Lock()
	sp.count++
	wake := sp.waiters.pop()
	sp.mu.Unlock()
	if wake != nil {
		wake.Unpark()
	}
}

// Count returns the current count (debugging aid).
func (sp *Sema) Count() uint {
	if sp.sv != nil {
		var c uint64
		sp.sv.Atomically(func(w usync.Words) { c = w.Load(0) })
		return uint(c)
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.count
}

func (sp *Sema) pShared(t *core.Thread) {
	l := t.LWP()
	for {
		if sp.TryP(t) {
			return
		}
		sp.sv.SleepWhile(l, func(w usync.Words) bool {
			return w.Load(0) == 0
		}, usync.SleepOpts{})
		t.Checkpoint()
	}
}
