// Lock policies: pluggable lock/wake strategies behind Mutex's word
// lock.
//
// "Basic Lock Algorithms in Lightweight Thread Environments" finds
// that under user-level threading the lock/wake policy — who spins,
// who parks, and who the release wakes — dominates tail latency, not
// the critical section itself. This file factors that policy out of
// Mutex: the word lock, the owner word, the turnstile, and the robust
// shared-memory variant stay shared, while acquisition and release
// dispatch through a lockPolicy.
//
// Two families:
//
//   - Barging (adaptive, parkinglot): release clears the owner word
//     and wakes the best waiter, but an un-queued acquirer that
//     arrives before the woken waiter runs can take the lock first
//     (Mesa semantics, like Solaris adaptive mutexes). Throughput-
//     friendly — the lock is never held by a thread that is not
//     running — but unfair under sustained contention.
//   - Hand-off (ticket, queue): waiters queue in strict arrival order
//     on a FIFO sleep channel and release transfers ownership
//     directly to the head waiter while the lock stays held — there
//     is no unowned window, so no barging and no starvation. Tail
//     latency is bounded by queue position at the cost of lock
//     hand-off convoys when the wake is slow.
//
// Hand-off interacts with priority inheritance: a FIFO queue's head
// is not its best waiter, so the turnstile scans hand-off queues in
// full (core.heldMaxLocked) and ownership transfer re-computes both
// threads' effective priorities in one critical section
// (core.Turnstile.HandOff) — the inheritance invariant, eff(owner) >=
// max(eff(blocked waiters)), holds across the transfer itself.
package tsync

import (
	"sync/atomic"
	"time"

	"sunosmt/internal/core"
)

// Policy selects a mutex lock/wake policy, per-lock via
// Mutex.InitPolicy or per-process via the runtime's LockPolicy config
// (mt.Options/ProcConfig). Orthogonal to Variant: error checking and
// the pure-spin variant behave the same under every policy.
type Policy int

// Mutex lock policies.
const (
	// PolicyDefault defers to the process default (core.Config
	// .LockPolicy), which itself defaults to PolicyAdaptive.
	PolicyDefault Policy = iota
	// PolicyAdaptive is the paper's adaptive mutex: spin while the
	// owner is observed on-CPU, park otherwise; barging release.
	PolicyAdaptive
	// PolicyTicket queues waiters in strict arrival order and hands
	// the lock to the oldest waiter on release (a ticket lock's
	// now-serving discipline on the sleep queue). No spin phase.
	PolicyTicket
	// PolicyQueue is the MCS/CLH-style queue lock: arrival-order
	// hand-off like ticket, but each waiter chains an explicit queue
	// node and briefly spins on its own node's grant flag (local
	// spinning) before parking.
	PolicyQueue
	// PolicyParkingLot is a parking-lot-style adaptive lock: a short
	// fixed spin (owner state ignored), priority-ordered parking, and
	// barging release — except every fairHandOffEvery-th release
	// hands off directly to the best waiter, parking_lot's eventual-
	// fairness rule.
	PolicyParkingLot
)

// String implements fmt.Stringer; the names appear in /proc lstatus
// and the fig-12 shootout tables.
func (p Policy) String() string {
	switch p {
	case PolicyDefault:
		return "default"
	case PolicyAdaptive:
		return "adaptive"
	case PolicyTicket:
		return "ticket"
	case PolicyQueue:
		return "queue"
	case PolicyParkingLot:
		return "parkinglot"
	}
	return "policy?"
}

// Policies lists the concrete policies (for conformance and chaos
// sweeps and the shootout matrix).
func Policies() []Policy {
	return []Policy{PolicyAdaptive, PolicyTicket, PolicyQueue, PolicyParkingLot}
}

// lockPolicy is the strategy behind Mutex's word lock: how a thread
// acquires a contended (unshared) mutex and how a release picks and
// wakes the successor. Implementations share the Mutex's word lock,
// owner word, waiter queue, and turnstile; they differ in queue order
// (priority vs arrival), spin discipline, and barging vs hand-off
// release. The process-shared (robust) path never dispatches here —
// its waiters sleep in the kernel on the mapped words.
type lockPolicy interface {
	name() string
	// enter acquires mp for t, parking as needed; d > 0 bounds the
	// wait (ErrTimedOut). Called with no locks held.
	enter(mp *Mutex, t *core.Thread, d time.Duration) error
	// exit releases mp held by t, waking (or handing off to) a
	// waiter. Called with no locks held.
	exit(mp *Mutex, t *core.Thread)
}

// implOf maps a resolved Policy to its singleton implementation.
func implOf(p Policy) lockPolicy {
	switch p {
	case PolicyTicket:
		return ticketPolicy{}
	case PolicyQueue:
		return queuePolicy{}
	case PolicyParkingLot:
		return parkingLotPolicy{}
	}
	return adaptivePolicy{}
}

// impl resolves (and pins) mp's policy implementation: the per-lock
// policy if one was set with InitPolicy, else the process default from
// t's runtime, else adaptive. Pinned on first use so a mutex never
// changes discipline mid-life (its waiter queue order is baked into
// the sleep channel); the pure-spin variant always resolves to the
// adaptive implementation, whose spin branch never parks.
func (mp *Mutex) impl(t *core.Thread) lockPolicy {
	mp.mu.Lock()
	if mp.pinned == nil {
		p := mp.policy
		if p == PolicyDefault {
			p = Policy(t.Runtime().LockPolicy())
		}
		if mp.variant == VariantSpin {
			p = PolicyAdaptive
		}
		mp.pinned = implOf(p)
	}
	ip := mp.pinned
	mp.mu.Unlock()
	return ip
}

// policyName reports the pinned policy's name, or the configured
// policy's name before first use — the /proc lstatus POLICY column.
func (mp *Mutex) policyName() string {
	mp.mu.Lock()
	defer mp.mu.Unlock()
	if mp.pinned != nil {
		return mp.pinned.name()
	}
	return mp.policy.String()
}

// --- adaptive (the paper's default) -------------------------------------

// adaptiveSpin is the owner-tracking spin budget of the adaptive
// policy. The budget is per OBSERVED OWNER, not per acquisition
// attempt: a waiter that has spun on several successive short-hold
// owners is exactly the waiter whose next owner is also likely to
// release quickly, so an owner change resets the budget instead of
// counting against it. (Before this, the counter persisted across
// owner changes and such a waiter parked prematurely.)
type adaptiveSpin struct {
	last  *core.Thread
	spins int
}

// shouldSpin charges one probe against the budget for the observed
// owner, resetting the budget when ownership has changed since the
// last probe. Reports whether the waiter should keep spinning.
func (s *adaptiveSpin) shouldSpin(owner *core.Thread) bool {
	if owner != s.last {
		s.last = owner
		s.spins = 0
	}
	if s.spins >= adaptiveSpinCap {
		return false
	}
	s.spins++
	return true
}

type adaptivePolicy struct{}

func (adaptivePolicy) name() string { return "adaptive" }

func (adaptivePolicy) enter(mp *Mutex, t *core.Thread, d time.Duration) error {
	spin := mp.variant == VariantSpin
	adaptive := !spin
	var as adaptiveSpin
	clk := t.Runtime().Kernel().Clock()
	var deadline time.Duration
	if d > 0 {
		deadline = clk.Now() + d
	}
	var bi *core.BlockInfo
	for {
		mp.mu.Lock()
		if !mp.held {
			mp.held = true
			mp.owner = t
			mp.ts.Acquired(t)
			mp.mu.Unlock()
			return nil
		}
		owner := mp.owner
		mp.mu.Unlock()
		if mp.variant == VariantErrorCheck && owner != nil {
			// EDEADLK at lock time: self-ownership, or the
			// wait-for graph shows the owner (transitively)
			// waiting on us. Checked before parking.
			if owner == t || t.Runtime().WouldDeadlock(t, owner) {
				return ErrDeadlock
			}
		}
		if d > 0 && clk.Now() >= deadline {
			return ErrTimedOut
		}
		if spin {
			t.Yield() // let the holder run; never park
			continue
		}
		if adaptive && owner != nil && owner.OnCPU() && as.shouldSpin(owner) {
			// Adaptive phase, as in the real Solaris adaptive mutex:
			// spin only while the owner is observed executing on a
			// processor — its release is then likely imminent and
			// cheaper to catch than two context switches. The moment
			// the owner is seen off-CPU (preempted, blocked), fall
			// through and park.
			t.Yield()
			continue
		}
		// Queue and park. The enqueue happens under the word
		// lock; the wake permit protocol in core makes the
		// release-side unpark race-free.
		mp.mu.Lock()
		if !mp.held {
			mp.mu.Unlock()
			continue // released between probes: re-try
		}
		mp.ts.SetQueue(mp.waiters.chanOf())
		mp.waiters.push(t)
		mp.mu.Unlock()
		if chaosOf(t).SpuriousWakeup() {
			// Chaos: the park returns with no real wake.
			// Deregister (a real wake would have popped us)
			// and re-contend.
			mp.mu.Lock()
			mp.waiters.remove(t)
			mp.mu.Unlock()
			t.Checkpoint()
			continue
		}
		if bi == nil {
			bi = mp.blockInfo()
		}
		t.NoteBlocked(bi)
		// Will our effective priority down the ownership chain so
		// the holder (and whatever it is blocked on) outranks us
		// while we park — the turnstile priority inheritance.
		t.WillPriority()
		if d > 0 {
			if timedOut := parkTimed(t, clk, deadline, func() bool {
				mp.mu.Lock()
				removed := mp.waiters.remove(t)
				mp.mu.Unlock()
				return removed
			}); timedOut {
				t.NoteUnblocked()
				return ErrTimedOut
			}
		} else {
			t.Park()
		}
		t.NoteUnblocked()
		as = adaptiveSpin{} // a fresh contention round gets a fresh spin budget
		// Loop: mutex may have been stolen by a barger; Mesa
		// semantics, as with real adaptive locks.
	}
}

func (adaptivePolicy) exit(mp *Mutex, t *core.Thread) {
	mp.mu.Lock()
	if mp.variant == VariantErrorCheck {
		if !mp.held || mp.owner != t {
			mp.mu.Unlock()
			panic("tsync: mutex_exit of a lock not held by the thread")
		}
	}
	mp.owner = nil
	mp.held = false
	// Shed any boost willed through this lock; the handoff below
	// wakes the highest-priority waiter (the queue is priority-
	// ordered).
	mp.ts.Released(t)
	wake := mp.waiters.pop()
	mp.mu.Unlock()
	if wake != nil {
		wake.Unpark()
	}
}

// --- FIFO hand-off (ticket, queue) --------------------------------------

// mcsNode is one waiter's link in the queue policy's explicit chain —
// the MCS/CLH shape: the releaser touches only the head node, and the
// waiter spins on its OWN node's grant flag, not on the lock word.
// The chain mirrors the FIFO sleep channel (which the turnstile and
// the sleepq bookkeeping need); every enqueue, grant, and cancel
// updates both under the word lock, and exitHandOff panics if they
// ever disagree — the queue-node integrity the chaos sweep exercises.
type mcsNode struct {
	t          *core.Thread
	next, prev *mcsNode
	granted    atomic.Bool
}

// mcsLocalSpinCap bounds the queue policy's local-spin phase: probes
// of the waiter's own grant flag (each yielding the LWP) before it
// parks. Short — its job is to catch an imminent hand-off without a
// park/unpark round trip, not to busy-wait through a hold.
const mcsLocalSpinCap = 32

// pushNodeLocked appends a node for t to the MCS chain; word lock held.
func (mp *Mutex) pushNodeLocked(t *core.Thread) *mcsNode {
	nd := &mcsNode{t: t}
	nd.prev = mp.qtail
	if mp.qtail != nil {
		mp.qtail.next = nd
	} else {
		mp.qhead = nd
	}
	mp.qtail = nd
	return nd
}

// unlinkNodeLocked removes nd from the MCS chain; word lock held.
func (mp *Mutex) unlinkNodeLocked(nd *mcsNode) {
	if nd.prev != nil {
		nd.prev.next = nd.next
	} else {
		mp.qhead = nd.next
	}
	if nd.next != nil {
		nd.next.prev = nd.prev
	} else {
		mp.qtail = nd.prev
	}
	nd.next, nd.prev = nil, nil
}

// popNodeLocked removes and returns the chain head; word lock held.
func (mp *Mutex) popNodeLocked() *mcsNode {
	nd := mp.qhead
	if nd != nil {
		mp.unlinkNodeLocked(nd)
	}
	return nd
}

// dequeueSelfLocked removes t from the FIFO waiter queue and (if nd is
// non-nil) its node from the MCS chain, reporting whether t was still
// queued. False means a releaser already popped t and granted it the
// lock — the caller's re-check loop will observe mp.owner == t. Both
// structures are popped together by the granter, so the single
// removed flag keeps them consistent. Word lock held.
func (mp *Mutex) dequeueSelfLocked(t *core.Thread, nd *mcsNode) bool {
	removed := mp.waiters.remove(t)
	if removed && nd != nil {
		mp.unlinkNodeLocked(nd)
	}
	return removed
}

// enterHandOff is the acquisition loop shared by the ticket and queue
// policies: waiters queue in strict arrival order, release transfers
// ownership directly (the lock stays held across the transfer), and a
// woken waiter re-checks ownership rather than re-competing — there
// is no barging window. nodes selects the queue policy's explicit
// node chain with its local-spin phase.
func enterHandOff(mp *Mutex, t *core.Thread, d time.Duration, nodes bool) error {
	clk := t.Runtime().Kernel().Clock()
	var deadline time.Duration
	if d > 0 {
		deadline = clk.Now() + d
	}
	var bi *core.BlockInfo
	enqueued := false // a grant (owner == t) is only possible once queued
	for {
		mp.mu.Lock()
		if enqueued && mp.owner == t {
			// Hand-off grant: the releaser dequeued us and made us
			// owner while we were parked; held stayed true the whole
			// time, so nobody barged in between.
			mp.mu.Unlock()
			return nil
		}
		if !mp.held {
			mp.held = true
			mp.owner = t
			mp.ts.Acquired(t)
			mp.mu.Unlock()
			return nil
		}
		owner := mp.owner
		mp.mu.Unlock()
		if mp.variant == VariantErrorCheck && owner != nil {
			if owner == t || t.Runtime().WouldDeadlock(t, owner) {
				return ErrDeadlock
			}
		}
		if d > 0 && clk.Now() >= deadline {
			return ErrTimedOut
		}
		// Queue at the arrival-order tail and park.
		var nd *mcsNode
		mp.mu.Lock()
		if enqueued && mp.owner == t {
			mp.mu.Unlock()
			return nil
		}
		if !mp.held {
			mp.mu.Unlock()
			continue
		}
		q := mp.waiters.chanOfFIFO()
		mp.ts.SetQueue(q)
		q.Enqueue(t)
		if nodes {
			nd = mp.pushNodeLocked(t)
		}
		enqueued = true
		mp.mu.Unlock()
		if chaosOf(t).SpuriousWakeup() {
			// Chaos: the park returns with no real wake. Deregister
			// from BOTH queue structures (unless a grant already
			// popped us — the re-check above then sees ownership)
			// and re-contend from the tail.
			mp.mu.Lock()
			mp.dequeueSelfLocked(t, nd)
			mp.mu.Unlock()
			t.Checkpoint()
			continue
		}
		if nodes {
			// Local spinning, the MCS distinctive: probe our own
			// node's grant flag — never the shared lock word — so an
			// imminent hand-off is caught without a park/unpark round
			// trip. The park below then consumes the grant's wake
			// permit immediately.
			for i := 0; i < mcsLocalSpinCap && !nd.granted.Load(); i++ {
				t.Yield()
			}
		}
		if bi == nil {
			bi = mp.blockInfo()
		}
		t.NoteBlocked(bi)
		t.WillPriority()
		if d > 0 {
			if timedOut := parkTimed(t, clk, deadline, func() bool {
				mp.mu.Lock()
				removed := mp.dequeueSelfLocked(t, nd)
				mp.mu.Unlock()
				return removed
			}); timedOut {
				t.NoteUnblocked()
				return ErrTimedOut
			}
		} else {
			t.Park()
		}
		t.NoteUnblocked()
	}
}

// exitHandOff releases a hand-off mutex: ownership transfers directly
// to the oldest waiter with the lock held throughout (no unowned
// window), and the turnstile moves with it (core.Turnstile.HandOff
// re-computes both effective priorities atomically). With no waiters
// the lock releases normally.
func exitHandOff(mp *Mutex, t *core.Thread, nodes bool) {
	mp.mu.Lock()
	if mp.variant == VariantErrorCheck {
		if !mp.held || mp.owner != t {
			mp.mu.Unlock()
			panic("tsync: mutex_exit of a lock not held by the thread")
		}
	}
	wake := mp.waiters.pop()
	if wake == nil {
		mp.owner = nil
		mp.held = false
		mp.ts.Released(t)
		mp.mu.Unlock()
		return
	}
	if nodes {
		nd := mp.popNodeLocked()
		if nd == nil || nd.t != wake {
			// The node chain and the sleep channel must agree on the
			// oldest waiter; divergence means a cancel path unlinked
			// one but not the other.
			panic("tsync: queue-lock node chain diverged from waiter queue")
		}
		nd.granted.Store(true)
	}
	mp.owner = wake // held stays true: direct hand-off, no barging
	mp.ts.HandOff(t, wake)
	mp.mu.Unlock()
	wake.Unpark()
}

type ticketPolicy struct{}

func (ticketPolicy) name() string { return "ticket" }
func (ticketPolicy) enter(mp *Mutex, t *core.Thread, d time.Duration) error {
	return enterHandOff(mp, t, d, false)
}
func (ticketPolicy) exit(mp *Mutex, t *core.Thread) { exitHandOff(mp, t, false) }

type queuePolicy struct{}

func (queuePolicy) name() string { return "queue" }
func (queuePolicy) enter(mp *Mutex, t *core.Thread, d time.Duration) error {
	return enterHandOff(mp, t, d, true)
}
func (queuePolicy) exit(mp *Mutex, t *core.Thread) { exitHandOff(mp, t, true) }

// --- parking-lot adaptive -----------------------------------------------

// parkingLotSpinCap is the parking-lot policy's fixed spin budget:
// unlike adaptive, the probes do not require the owner on-CPU — the
// bet is on the hold time alone, webkit-parking-lot style.
const parkingLotSpinCap = 40

// fairHandOffEvery makes every Nth contended release a direct
// hand-off to the best waiter instead of a barging release —
// parking_lot's eventual-fairness rule, bounding how long a parked
// waiter can be barged past without reintroducing hand-off convoys on
// every release.
const fairHandOffEvery = 64

type parkingLotPolicy struct{}

func (parkingLotPolicy) name() string { return "parkinglot" }

func (parkingLotPolicy) enter(mp *Mutex, t *core.Thread, d time.Duration) error {
	spins := 0
	clk := t.Runtime().Kernel().Clock()
	var deadline time.Duration
	if d > 0 {
		deadline = clk.Now() + d
	}
	var bi *core.BlockInfo
	enqueued := false
	for {
		mp.mu.Lock()
		if enqueued && mp.owner == t {
			mp.mu.Unlock()
			return nil // fairness hand-off granted us the lock
		}
		if !mp.held {
			mp.held = true
			mp.owner = t
			mp.ts.Acquired(t)
			mp.mu.Unlock()
			return nil
		}
		owner := mp.owner
		mp.mu.Unlock()
		if mp.variant == VariantErrorCheck && owner != nil {
			if owner == t || t.Runtime().WouldDeadlock(t, owner) {
				return ErrDeadlock
			}
		}
		if d > 0 && clk.Now() >= deadline {
			return ErrTimedOut
		}
		if spins < parkingLotSpinCap {
			// Fixed-budget spin regardless of the owner's state: a
			// short-hold bet that pays on multiprogrammed hosts where
			// OnCPU is stale, at the cost of wasted probes when the
			// owner is truly descheduled.
			spins++
			t.Yield()
			continue
		}
		mp.mu.Lock()
		if enqueued && mp.owner == t {
			mp.mu.Unlock()
			return nil
		}
		if !mp.held {
			mp.mu.Unlock()
			continue
		}
		mp.ts.SetQueue(mp.waiters.chanOf())
		mp.waiters.push(t)
		enqueued = true
		mp.mu.Unlock()
		if chaosOf(t).SpuriousWakeup() {
			mp.mu.Lock()
			mp.waiters.remove(t)
			mp.mu.Unlock()
			t.Checkpoint()
			continue
		}
		if bi == nil {
			bi = mp.blockInfo()
		}
		t.NoteBlocked(bi)
		t.WillPriority()
		if d > 0 {
			if timedOut := parkTimed(t, clk, deadline, func() bool {
				mp.mu.Lock()
				removed := mp.waiters.remove(t)
				mp.mu.Unlock()
				return removed
			}); timedOut {
				t.NoteUnblocked()
				return ErrTimedOut
			}
		} else {
			t.Park()
		}
		t.NoteUnblocked()
		spins = 0
	}
}

func (parkingLotPolicy) exit(mp *Mutex, t *core.Thread) {
	mp.mu.Lock()
	if mp.variant == VariantErrorCheck {
		if !mp.held || mp.owner != t {
			mp.mu.Unlock()
			panic("tsync: mutex_exit of a lock not held by the thread")
		}
	}
	mp.plSeq++
	if mp.plSeq%fairHandOffEvery == 0 {
		if wake := mp.waiters.pop(); wake != nil {
			// Eventual fairness: this release hands off directly to
			// the best (priority-then-FIFO) waiter — no barging
			// window this round, bounding parked waiters' starvation.
			mp.owner = wake
			mp.ts.HandOff(t, wake)
			mp.mu.Unlock()
			wake.Unpark()
			return
		}
	}
	mp.owner = nil
	mp.held = false
	mp.ts.Released(t)
	wake := mp.waiters.pop()
	mp.mu.Unlock()
	if wake != nil {
		wake.Unpark()
	}
}
