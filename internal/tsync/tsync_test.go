package tsync

import (
	"sync/atomic"
	"testing"
	"time"

	"sunosmt/internal/core"
	"sunosmt/internal/sim"
	"sunosmt/internal/usync"
	"sunosmt/internal/vm"
)

// world is one simulated machine with a kernel, a usync registry, and
// helpers to boot thread runtimes (processes).
type world struct {
	k   *sim.Kernel
	reg *usync.Registry
}

func newWorld(ncpu int) *world {
	k := sim.NewKernel(sim.Config{NCPU: ncpu})
	return &world{k: k, reg: usync.NewRegistry(k)}
}

// boot starts a process whose main thread runs fn.
func (w *world) boot(t *testing.T, name string, cfg core.Config, fn core.Func) *core.Runtime {
	t.Helper()
	p := w.k.NewProcess(name, nil)
	m := core.NewRuntime(w.k, p, cfg)
	if _, err := m.Start(fn, nil); err != nil {
		t.Fatal(err)
	}
	return m
}

func waitRT(t *testing.T, m *core.Runtime) {
	t.Helper()
	select {
	case <-m.Exited():
	case <-time.After(15 * time.Second):
		t.Fatal("timeout waiting for runtime exit")
	}
}

func TestMutexZeroValueMutualExclusion(t *testing.T) {
	w := newWorld(2)
	var mu Mutex // zero value: default variant, usable immediately
	var counter int
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		r := self.Runtime()
		r.SetConcurrency(2)
		var ids []core.ThreadID
		for i := 0; i < 4; i++ {
			c, _ := r.Create(func(c *core.Thread, _ any) {
				for j := 0; j < 500; j++ {
					mu.Enter(c)
					counter++
					mu.Exit(c)
				}
			}, nil, core.CreateOpts{Flags: core.ThreadWait})
			ids = append(ids, c.ID())
		}
		for _, id := range ids {
			self.Wait(id)
		}
	})
	waitRT(t, m)
	if counter != 2000 {
		t.Fatalf("counter = %d, want 2000 (lost updates)", counter)
	}
}

func TestMutexVariants(t *testing.T) {
	for _, v := range []Variant{VariantDefault, VariantSpin, VariantAdaptive, VariantErrorCheck} {
		v := v
		w := newWorld(2)
		var mu Mutex
		mu.Init(v)
		var counter int
		m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
			r := self.Runtime()
			r.SetConcurrency(2)
			var ids []core.ThreadID
			for i := 0; i < 3; i++ {
				c, _ := r.Create(func(c *core.Thread, _ any) {
					for j := 0; j < 200; j++ {
						mu.Enter(c)
						counter++
						mu.Exit(c)
					}
				}, nil, core.CreateOpts{Flags: core.ThreadWait})
				ids = append(ids, c.ID())
			}
			for _, id := range ids {
				self.Wait(id)
			}
		})
		waitRT(t, m)
		if counter != 600 {
			t.Fatalf("variant %d: counter = %d, want 600", v, counter)
		}
	}
}

func TestMutexTryEnter(t *testing.T) {
	w := newWorld(1)
	var mu Mutex
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		if !mu.TryEnter(self) {
			t.Error("TryEnter on free mutex failed")
		}
		if mu.TryEnter(self) {
			t.Error("TryEnter on held mutex succeeded")
		}
		mu.Exit(self)
		if !mu.TryEnter(self) {
			t.Error("TryEnter after Exit failed")
		}
		mu.Exit(self)
	})
	waitRT(t, m)
}

func TestErrorCheckMutexCatchesMisuse(t *testing.T) {
	w := newWorld(1)
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		var mu Mutex
		mu.Init(VariantErrorCheck)
		mu.Enter(self)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("recursive enter not detected")
				}
			}()
			mu.Enter(self)
		}()
		mu.Exit(self)
		c, _ := self.Runtime().Create(func(c *core.Thread, _ any) {
			mu.Enter(c)
			// Release by a non-owner must panic.
		}, nil, core.CreateOpts{Flags: core.ThreadWait})
		self.Wait(c.ID())
		func() {
			defer func() {
				if recover() == nil {
					t.Error("release by non-owner not detected")
				}
			}()
			mu.Exit(self)
		}()
	})
	waitRT(t, m)
}

func TestCondVarMonitor(t *testing.T) {
	w := newWorld(1)
	var mu Mutex
	var cv Cond
	queue := 0
	var produced, consumed int
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		r := self.Runtime()
		cons, _ := r.Create(func(c *core.Thread, _ any) {
			for i := 0; i < 50; i++ {
				mu.Enter(c)
				for queue == 0 {
					cv.Wait(c, &mu) // paper's canonical loop
				}
				queue--
				consumed++
				mu.Exit(c)
			}
		}, nil, core.CreateOpts{Flags: core.ThreadWait})
		prod, _ := r.Create(func(c *core.Thread, _ any) {
			for i := 0; i < 50; i++ {
				mu.Enter(c)
				queue++
				produced++
				mu.Exit(c)
				cv.Signal(c)
				if i%10 == 0 {
					c.Yield()
				}
			}
		}, nil, core.CreateOpts{Flags: core.ThreadWait})
		self.Wait(cons.ID())
		self.Wait(prod.ID())
	})
	waitRT(t, m)
	if produced != 50 || consumed != 50 {
		t.Fatalf("produced %d consumed %d", produced, consumed)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	w := newWorld(2)
	var mu Mutex
	var cv Cond
	ready := false
	var woken atomic.Int64
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		r := self.Runtime()
		var ids []core.ThreadID
		for i := 0; i < 5; i++ {
			c, _ := r.Create(func(c *core.Thread, _ any) {
				mu.Enter(c)
				for !ready {
					cv.Wait(c, &mu)
				}
				mu.Exit(c)
				woken.Add(1)
			}, nil, core.CreateOpts{Flags: core.ThreadWait})
			ids = append(ids, c.ID())
		}
		// Let all five park in the wait.
		for cv.Waiters() < 5 {
			self.Yield()
		}
		mu.Enter(self)
		ready = true
		mu.Exit(self)
		cv.Broadcast(self)
		for _, id := range ids {
			self.Wait(id)
		}
	})
	waitRT(t, m)
	if woken.Load() != 5 {
		t.Fatalf("woken = %d, want 5", woken.Load())
	}
}

func TestCondTimedWait(t *testing.T) {
	w := newWorld(1)
	var mu Mutex
	var cv Cond
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		mu.Enter(self)
		ok := cv.TimedWait(self, &mu, 5*time.Millisecond)
		mu.Exit(self)
		if ok {
			t.Error("TimedWait reported signal on timeout")
		}
	})
	waitRT(t, m)
}

func TestSemaphorePingPong(t *testing.T) {
	// The paper's Figure 6 synchronization benchmark shape.
	w := newWorld(1)
	var s1, s2 Sema
	const rounds = 100
	var hits int
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		r := self.Runtime()
		t2, _ := r.Create(func(c *core.Thread, _ any) {
			for i := 0; i < rounds; i++ {
				s2.P(c)
				s1.V(c)
			}
		}, nil, core.CreateOpts{Flags: core.ThreadWait})
		t1, _ := r.Create(func(c *core.Thread, _ any) {
			for i := 0; i < rounds; i++ {
				s2.V(c)
				s1.P(c)
				hits++
			}
		}, nil, core.CreateOpts{Flags: core.ThreadWait})
		self.Wait(t1.ID())
		self.Wait(t2.ID())
	})
	waitRT(t, m)
	if hits != rounds {
		t.Fatalf("hits = %d, want %d", hits, rounds)
	}
}

func TestSemaTryPAndCount(t *testing.T) {
	w := newWorld(1)
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		var s Sema
		s.Init(2)
		if !s.TryP(self) || !s.TryP(self) {
			t.Error("TryP failed with positive count")
		}
		if s.TryP(self) {
			t.Error("TryP succeeded at zero")
		}
		s.V(self)
		if s.Count() != 1 {
			t.Errorf("count = %d, want 1", s.Count())
		}
	})
	waitRT(t, m)
}

func TestRWLockManyReadersOneWriter(t *testing.T) {
	w := newWorld(2)
	var rw RWLock
	var concurrentReaders, maxReaders atomic.Int64
	var data int
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		r := self.Runtime()
		r.SetConcurrency(2)
		var ids []core.ThreadID
		for i := 0; i < 4; i++ {
			c, _ := r.Create(func(c *core.Thread, _ any) {
				for j := 0; j < 100; j++ {
					rw.Enter(c, RWReader)
					n := concurrentReaders.Add(1)
					for {
						old := maxReaders.Load()
						if n <= old || maxReaders.CompareAndSwap(old, n) {
							break
						}
					}
					_ = data
					concurrentReaders.Add(-1)
					rw.Exit(c)
				}
			}, nil, core.CreateOpts{Flags: core.ThreadWait})
			ids = append(ids, c.ID())
		}
		wr, _ := r.Create(func(c *core.Thread, _ any) {
			for j := 0; j < 50; j++ {
				rw.Enter(c, RWWriter)
				if concurrentReaders.Load() != 0 {
					t.Error("writer saw active readers")
				}
				data++
				rw.Exit(c)
				c.Yield()
			}
		}, nil, core.CreateOpts{Flags: core.ThreadWait})
		ids = append(ids, wr.ID())
		for _, id := range ids {
			self.Wait(id)
		}
	})
	waitRT(t, m)
	if data != 50 {
		t.Fatalf("writer made %d updates, want 50", data)
	}
}

func TestRWDowngradeKeepsLockAndWakesReaders(t *testing.T) {
	w := newWorld(2)
	var rw RWLock
	var readerRan atomic.Bool
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		r := self.Runtime()
		r.SetConcurrency(2)
		rw.Enter(self, RWWriter)
		rd, _ := r.Create(func(c *core.Thread, _ any) {
			rw.Enter(c, RWReader)
			readerRan.Store(true)
			rw.Exit(c)
		}, nil, core.CreateOpts{Flags: core.ThreadWait})
		// Let the reader block on the writer hold.
		for i := 0; i < 20; i++ {
			self.Yield()
		}
		rw.Downgrade(self) // reader should now get in alongside us
		self.Wait(rd.ID())
		if nr, wr := rw.Holders(); nr != 1 || wr {
			t.Errorf("after downgrade+reader exit: readers=%d writer=%v", nr, wr)
		}
		rw.Exit(self)
	})
	waitRT(t, m)
	if !readerRan.Load() {
		t.Fatal("reader never ran after downgrade")
	}
}

func TestRWTryUpgrade(t *testing.T) {
	w := newWorld(1)
	var rw RWLock
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		rw.Enter(self, RWReader)
		if !rw.TryUpgrade(self) {
			t.Error("sole reader failed to upgrade")
		}
		if nr, wr := rw.Holders(); nr != 0 || !wr {
			t.Errorf("after upgrade: readers=%d writer=%v", nr, wr)
		}
		rw.Exit(self)

		// With two readers, upgrade must fail.
		rw.Enter(self, RWReader)
		c, _ := self.Runtime().Create(func(c *core.Thread, _ any) {
			rw.Enter(c, RWReader)
			if rw.TryUpgrade(c) {
				t.Error("upgrade succeeded with two readers")
			}
			rw.Exit(c)
		}, nil, core.CreateOpts{Flags: core.ThreadWait})
		self.Wait(c.ID())
		rw.Exit(self)
	})
	waitRT(t, m)
}

func TestRWTryEnter(t *testing.T) {
	w := newWorld(1)
	var rw RWLock
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		if !rw.TryEnter(self, RWReader) {
			t.Error("reader tryenter on free lock failed")
		}
		if rw.TryEnter(self, RWWriter) {
			t.Error("writer tryenter succeeded with a reader")
		}
		if !rw.TryEnter(self, RWReader) {
			t.Error("second reader tryenter failed")
		}
		rw.Exit(self)
		rw.Exit(self)
		if !rw.TryEnter(self, RWWriter) {
			t.Error("writer tryenter on free lock failed")
		}
		rw.Exit(self)
	})
	waitRT(t, m)
}

// TestFigure1CrossProcessSync reproduces the paper's Figure 1: two
// processes map the same file at different virtual addresses; a mutex
// inside the file synchronizes their threads, and the lock's state
// outlives the first process.
func TestFigure1CrossProcessSync(t *testing.T) {
	w := newWorld(2)
	// The "file" with a mutex at offset 0 and a record counter the
	// test reads back at offset 64.
	file := vm.NewAnon(vm.PageSize) // stands in for a vfs file object here
	const recOff = 64

	record := func(delta uint64) core.Func {
		return func(self *core.Thread, _ any) {
			mu := &Mutex{}
			mu.InitShared(w.reg.Var(file, 0))
			for i := 0; i < 200; i++ {
				mu.Enter(self)
				// Read-modify-write of the shared record —
				// racy without the file lock.
				var b [8]byte
				file.ReadObject(b[:], recOff)
				v := uint64(b[0]) | uint64(b[1])<<8
				v += delta
				b[0], b[1] = byte(v), byte(v>>8)
				file.WriteObject(b[:], recOff)
				mu.Exit(self)
			}
		}
	}
	m1 := w.boot(t, "p1", core.Config{}, record(1))
	m2 := w.boot(t, "p2", core.Config{}, record(1))
	waitRT(t, m1)
	waitRT(t, m2)
	var b [8]byte
	file.ReadObject(b[:], recOff)
	got := uint64(b[0]) | uint64(b[1])<<8
	if got != 400 {
		t.Fatalf("record = %d, want 400 (lost cross-process updates)", got)
	}
}

func TestSharedSemaphoreAcrossProcesses(t *testing.T) {
	w := newWorld(2)
	obj := vm.NewAnon(vm.PageSize)
	// Producer posts 50 tokens; consumer in another process takes
	// them all.
	var consumed atomic.Int64
	cons := w.boot(t, "consumer", core.Config{}, func(self *core.Thread, _ any) {
		var s Sema
		s.InitShared(w.reg.Var(obj, 0), 0)
		for i := 0; i < 50; i++ {
			s.P(self)
			consumed.Add(1)
		}
	})
	prod := w.boot(t, "producer", core.Config{}, func(self *core.Thread, _ any) {
		var s Sema
		s.InitShared(w.reg.Var(obj, 0), 0)
		for i := 0; i < 50; i++ {
			s.V(self)
			if i%8 == 0 {
				self.Yield()
			}
		}
	})
	waitRT(t, prod)
	waitRT(t, cons)
	if consumed.Load() != 50 {
		t.Fatalf("consumed = %d, want 50", consumed.Load())
	}
}

func TestSharedMutexStateOutlivesProcess(t *testing.T) {
	w := newWorld(1)
	obj := vm.NewAnon(vm.PageSize)
	// Process 1 locks the mutex and dies without unlocking — the
	// state persists in the object bytes beyond the process's
	// lifetime: the robust sweep records the death there, and a later
	// process observes it as ErrOwnerDead.
	m1 := w.boot(t, "locker", core.Config{}, func(self *core.Thread, _ any) {
		mu := &Mutex{}
		mu.InitShared(w.reg.Var(obj, 0))
		mu.Enter(self)
	})
	waitRT(t, m1)
	m2 := w.boot(t, "checker", core.Config{}, func(self *core.Thread, _ any) {
		mu := &Mutex{}
		mu.InitShared(w.reg.Var(obj, 0))
		if err := mu.EnterErr(self); err != ErrOwnerDead {
			t.Errorf("EnterErr = %v, want ErrOwnerDead: lock state did not persist beyond creating process", err)
			return
		}
		mu.MakeConsistent(self)
		mu.Exit(self)
	})
	waitRT(t, m2)
}

func TestSharedCondAcrossProcesses(t *testing.T) {
	w := newWorld(2)
	obj := vm.NewAnon(vm.PageSize)
	// Layout: mutex at 0, cond at 16, flag word at 64.
	flagOff := int64(64)
	var sawFlag atomic.Bool
	waiter := w.boot(t, "waiter", core.Config{}, func(self *core.Thread, _ any) {
		mu := &Mutex{}
		mu.InitShared(w.reg.Var(obj, 0))
		cv := &Cond{}
		cv.InitShared(w.reg.Var(obj, 16))
		mu.Enter(self)
		for {
			var b [8]byte
			obj.ReadObject(b[:], flagOff)
			if b[0] != 0 {
				break
			}
			cv.Wait(self, mu)
		}
		sawFlag.Store(true)
		mu.Exit(self)
	})
	setter := w.boot(t, "setter", core.Config{}, func(self *core.Thread, _ any) {
		mu := &Mutex{}
		mu.InitShared(w.reg.Var(obj, 0))
		cv := &Cond{}
		cv.InitShared(w.reg.Var(obj, 16))
		time.Sleep(2 * time.Millisecond)
		mu.Enter(self)
		obj.WriteObject([]byte{1}, flagOff)
		mu.Exit(self)
		cv.Broadcast(self)
	})
	waitRT(t, setter)
	waitRT(t, waiter)
	if !sawFlag.Load() {
		t.Fatal("cross-process condition wait never satisfied")
	}
}

func TestSharedRWLockAcrossProcesses(t *testing.T) {
	w := newWorld(2)
	obj := vm.NewAnon(vm.PageSize)
	var writes atomic.Int64
	mk := func() core.Func {
		return func(self *core.Thread, _ any) {
			rw := &RWLock{}
			rw.InitShared(w.reg.Var(obj, 0))
			for i := 0; i < 50; i++ {
				rw.Enter(self, RWWriter)
				writes.Add(1)
				rw.Exit(self)
				rw.Enter(self, RWReader)
				rw.Exit(self)
			}
		}
	}
	m1 := w.boot(t, "p1", core.Config{}, mk())
	m2 := w.boot(t, "p2", core.Config{}, mk())
	waitRT(t, m1)
	waitRT(t, m2)
	if writes.Load() != 100 {
		t.Fatalf("writes = %d, want 100", writes.Load())
	}
}

func TestBoundThreadsUseKernelSync(t *testing.T) {
	// Bound threads block through the kernel on contention but the
	// semantics are identical.
	w := newWorld(2)
	var mu Mutex
	counter := 0
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		r := self.Runtime()
		var ids []core.ThreadID
		for i := 0; i < 2; i++ {
			c, _ := r.Create(func(c *core.Thread, _ any) {
				for j := 0; j < 300; j++ {
					mu.Enter(c)
					counter++
					mu.Exit(c)
				}
			}, nil, core.CreateOpts{Flags: core.ThreadWait | core.ThreadBindLWP})
			ids = append(ids, c.ID())
		}
		for _, id := range ids {
			self.Wait(id)
		}
	})
	waitRT(t, m)
	if counter != 600 {
		t.Fatalf("counter = %d, want 600", counter)
	}
}
