package tsync

// Unit coverage for the fallible/timed entry points added with the
// fault-containment work; the cross-process protocol is exercised
// end-to-end in mt/robust_test.go and mt/robust_chaos_test.go.

import (
	"testing"
	"time"

	"sunosmt/internal/core"
	"sunosmt/internal/vm"
)

// TestTimedEnterLocalExpires: a held local mutex times a waiter out,
// and the lock still works afterwards.
func TestTimedEnterLocalExpires(t *testing.T) {
	w := newWorld(2)
	var mu Mutex
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		mu.Enter(self)
		c, _ := self.Runtime().Create(func(ct *core.Thread, _ any) {
			if err := mu.TimedEnter(ct, time.Millisecond); err != ErrTimedOut {
				t.Errorf("TimedEnter = %v, want ErrTimedOut", err)
			}
		}, nil, core.CreateOpts{Flags: core.ThreadWait})
		self.Wait(c.ID())
		mu.Exit(self)
		if err := mu.TimedEnter(self, time.Millisecond); err != nil {
			t.Errorf("uncontended TimedEnter = %v, want nil", err)
			return
		}
		mu.Exit(self)
	})
	waitRT(t, m)
}

// TestTimedWaitqConsistency: a timed-out waiter must not linger on
// the wait queue and absorb a wakeup meant for a live waiter.
func TestTimedWaitqConsistency(t *testing.T) {
	w := newWorld(2)
	var mu Mutex
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		mu.Enter(self)
		// First waiter times out; second waits indefinitely.
		timed, _ := self.Runtime().Create(func(ct *core.Thread, _ any) {
			mu.TimedEnter(ct, time.Millisecond)
		}, nil, core.CreateOpts{Flags: core.ThreadWait})
		self.Wait(timed.ID())
		got := make(chan struct{})
		forever, _ := self.Runtime().Create(func(ct *core.Thread, _ any) {
			mu.Enter(ct)
			close(got)
			mu.Exit(ct)
		}, nil, core.CreateOpts{Flags: core.ThreadWait})
		mu.Exit(self)
		self.Wait(forever.ID())
		select {
		case <-got:
		default:
			t.Error("indefinite waiter lost its wakeup after a timed waiter expired")
		}
	})
	waitRT(t, m)
}

// TestErrorCheckEnterErrDeadlock: EDEADLK surfaces as an error from
// EnterErr without parking, and MakeConsistent is a no-op on local
// mutexes.
func TestErrorCheckEnterErrDeadlock(t *testing.T) {
	w := newWorld(1)
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		var mu Mutex
		mu.Init(VariantErrorCheck)
		mu.Enter(self)
		if err := mu.EnterErr(self); err != ErrDeadlock {
			t.Errorf("recursive EnterErr = %v, want ErrDeadlock", err)
		}
		if mu.MakeConsistent(self) {
			t.Error("MakeConsistent on a local mutex reported a resolved claim")
		}
		mu.Exit(self)
	})
	waitRT(t, m)
}

// TestSharedRWClaimBlocksOthers: while an ErrOwnerDead claim is
// unresolved, other acquirers wait (TryEnter refuses) instead of
// seeing inconsistent state; MakeConsistent releases them.
func TestSharedRWClaimBlocksOthers(t *testing.T) {
	w := newWorld(1)
	obj := vm.NewAnon(vm.PageSize)
	m1 := w.boot(t, "writer", core.Config{}, func(self *core.Thread, _ any) {
		var rw RWLock
		rw.InitShared(w.reg.Var(obj, 0))
		rw.Enter(self, RWWriter)
		// dies holding (voluntary exit counts as owner death)
	})
	waitRT(t, m1)
	m2 := w.boot(t, "claimant", core.Config{}, func(self *core.Thread, _ any) {
		var rw RWLock
		rw.InitShared(w.reg.Var(obj, 0))
		if err := rw.EnterErr(self, RWWriter); err != ErrOwnerDead {
			t.Errorf("EnterErr = %v, want ErrOwnerDead", err)
			return
		}
		// Claim pending: nobody else gets in, in either mode.
		if rw.TryEnter(self, RWReader) || rw.TryEnter(self, RWWriter) {
			t.Error("TryEnter acquired a lock with an unresolved claim")
		}
		if !rw.MakeConsistent(self) {
			t.Error("MakeConsistent refused the claim")
		}
		rw.Exit(self)
		if !rw.TryEnter(self, RWReader) {
			t.Error("lock unusable after MakeConsistent + Exit")
		}
		rw.Exit(self)
	})
	waitRT(t, m2)
}

// TestSharedRWExitWithClaimPoisons: dropping the claim without
// MakeConsistent yields ErrNotRecoverable forever after.
func TestSharedRWExitWithClaimPoisons(t *testing.T) {
	w := newWorld(1)
	obj := vm.NewAnon(vm.PageSize)
	m1 := w.boot(t, "writer", core.Config{}, func(self *core.Thread, _ any) {
		var rw RWLock
		rw.InitShared(w.reg.Var(obj, 0))
		rw.Enter(self, RWWriter)
	})
	waitRT(t, m1)
	m2 := w.boot(t, "dropper", core.Config{}, func(self *core.Thread, _ any) {
		var rw RWLock
		rw.InitShared(w.reg.Var(obj, 0))
		if err := rw.EnterErr(self, RWReader); err != ErrOwnerDead {
			t.Errorf("EnterErr = %v, want ErrOwnerDead", err)
			return
		}
		rw.Exit(self) // no MakeConsistent
		if err := rw.EnterErr(self, RWReader); err != ErrNotRecoverable {
			t.Errorf("EnterErr after dropped claim = %v, want ErrNotRecoverable", err)
		}
		if err := rw.TimedWrLock(self, time.Millisecond); err != ErrNotRecoverable {
			t.Errorf("TimedWrLock = %v, want ErrNotRecoverable", err)
		}
	})
	waitRT(t, m2)
}

// TestSemaTimedPExpires: TimedP on an empty semaphore expires; a V
// makes the next TimedP succeed.
func TestSemaTimedPExpires(t *testing.T) {
	w := newWorld(1)
	m := w.boot(t, "p", core.Config{}, func(self *core.Thread, _ any) {
		var s Sema
		if err := s.TimedP(self, time.Millisecond); err != ErrTimedOut {
			t.Errorf("TimedP = %v, want ErrTimedOut", err)
		}
		s.V(self)
		if err := s.TimedP(self, time.Millisecond); err != nil {
			t.Errorf("TimedP after V = %v, want nil", err)
		}
	})
	waitRT(t, m)
}
