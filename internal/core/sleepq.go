package core

import (
	"sync"
	"sync/atomic"
)

// Sharded sleep queues — the library's stand-in for Solaris's
// sleepq_head hash of turnstiles. Every blocking object (a tsync
// primitive's waiter list, a thread's thread_wait channel) allocates a
// WaitChan: one queue of parked waiters, ordered by descending
// effective priority and FIFO among equals (exactly the sleep-queue
// order the Solaris dispatcher keeps, so a wakeup always takes the
// best waiter), whose lock comes from a fixed hashed array of shard
// locks, exactly as Solaris hashes a sleep channel into sleepq_head[].
// Threads blocking on objects that hash to different shards therefore
// touch disjoint locks instead of contending on one global structure,
// and a waiter is removed from the middle of a queue (timed-wait
// cancel, a waiter deregistering only itself) in O(1) through the
// intrusive sqNext/sqPrev links on Thread.
//
// Real Solaris hashes the address of the awaited object; Go forbids
// taking stable object addresses without unsafe, so each channel is
// assigned a shard by an atomic counter at allocation time instead —
// uniform by construction. The queue itself lives in the channel (the
// turnstile), not in the shard, so the hot park/unpark path is a
// shard-lock acquisition plus pointer links: no map, no allocation.
//
// Lock ordering: a sleep-queue shard lock is a leaf. Callers may hold
// Runtime.mu or a primitive's word lock around these operations; the
// shard code takes no other locks.

// WaitChan identifies one sleep queue. The zero value is not a valid
// channel — allocate with AllocWaitChan. Comparable; the zero value
// lets a primitive allocate its channel lazily.
type WaitChan struct {
	b *sleepqBucket
}

// sleepqShards is the number of independently locked shards; a power
// of two so the shard index is a mask.
const sleepqShards = 64

var (
	sleepqSeq  atomic.Uint64
	sleepqLock [sleepqShards]sync.Mutex
)

// sleepqBucket is one channel's queue of waiters — descending
// effective priority, FIFO among equals (or strict FIFO when fifo is
// set) — linked intrusively through Thread.sqNext/sqPrev; guarded by
// its shard's lock.
type sleepqBucket struct {
	shard      uint64
	head, tail *Thread
	n          int

	// fifo marks a strict arrival-order queue (ticket and MCS/CLH
	// lock policies hand the lock to the oldest waiter regardless of
	// priority). A fifo bucket's head is NOT its highest-priority
	// waiter, so priority scans (heldMaxLocked) must walk the whole
	// queue and reposition is a no-op. Immutable after allocation.
	fifo bool
}

// AllocWaitChan allocates a fresh sleep channel, assigning it a shard.
func AllocWaitChan() WaitChan {
	b := &sleepqBucket{}
	initBucket(b, false)
	return WaitChan{b}
}

// AllocWaitChanFIFO allocates a strict arrival-order sleep channel for
// hand-off lock policies (ticket, MCS/CLH): Enqueue appends at the
// tail unconditionally and priority changes never re-sort the queue.
func AllocWaitChanFIFO() WaitChan {
	b := &sleepqBucket{}
	initBucket(b, true)
	return WaitChan{b}
}

// initBucket readies a zeroed bucket (fresh or slab-carved), assigning
// its shard.
func initBucket(b *sleepqBucket, fifo bool) {
	b.shard = sleepqSeq.Add(1) & (sleepqShards - 1)
	b.fifo = fifo
}

// Valid reports whether the channel has been allocated.
func (wc WaitChan) Valid() bool { return wc.b != nil }

func (wc WaitChan) lock() *sync.Mutex { return &sleepqLock[wc.b.shard] }

// Enqueue inserts t into the channel's queue in priority-then-FIFO
// order. The thread must not be queued on any channel (a thread waits
// on at most one object).
func (wc WaitChan) Enqueue(t *Thread) {
	mu := wc.lock()
	mu.Lock()
	wc.b.insertLocked(t)
	mu.Unlock()
}

// insertLocked places t by descending effective priority, FIFO among
// equals (it goes behind every waiter at its own priority); the shard
// lock is held. The common case — equal priorities — walks to the tail
// only when a strictly lower-priority waiter exists, so uniform-
// priority workloads keep the old append-at-tail cost via the tail
// check below.
func (b *sleepqBucket) insertLocked(t *Thread) {
	t.sqBkt.Store(b)
	p := t.effPrio.Load()
	if b.fifo || b.tail == nil || b.tail.effPrio.Load() >= p {
		// Empty, or t belongs at the tail (the usual FIFO case).
		t.sqNext = nil
		t.sqPrev = b.tail
		if b.tail == nil {
			b.head = t
		} else {
			b.tail.sqNext = t
		}
		b.tail = t
		b.n++
		return
	}
	at := b.head
	for at.effPrio.Load() >= p {
		at = at.sqNext // tail check above guarantees a stop
	}
	t.sqNext = at
	t.sqPrev = at.sqPrev
	if at.sqPrev == nil {
		b.head = t
	} else {
		at.sqPrev.sqNext = t
	}
	at.sqPrev = t
	b.n++
}

// reposition re-sorts t within its bucket after an effective-priority
// change, if it is still queued there. Callers may hold Runtime.mu;
// the shard lock is a leaf. t.sqBkt stays set throughout so a
// concurrent teardown (sleepqDetach) never misses the thread.
func (wc WaitChan) reposition(t *Thread) {
	if wc.b.fifo {
		// Strict arrival order: a priority change never moves a
		// waiter. (Inheritance still sees it — heldMaxLocked walks
		// fifo queues in full.)
		return
	}
	mu := wc.lock()
	mu.Lock()
	if t.sqBkt.Load() == wc.b {
		b := wc.b
		if t.sqPrev != nil {
			t.sqPrev.sqNext = t.sqNext
		} else {
			b.head = t.sqNext
		}
		if t.sqNext != nil {
			t.sqNext.sqPrev = t.sqPrev
		} else {
			b.tail = t.sqPrev
		}
		b.n--
		b.insertLocked(t)
	}
	mu.Unlock()
}

// unlinkLocked detaches t from b; the shard lock is held.
func (b *sleepqBucket) unlinkLocked(t *Thread) {
	if t.sqPrev != nil {
		t.sqPrev.sqNext = t.sqNext
	} else {
		b.head = t.sqNext
	}
	if t.sqNext != nil {
		t.sqNext.sqPrev = t.sqPrev
	} else {
		b.tail = t.sqPrev
	}
	t.sqNext, t.sqPrev = nil, nil
	t.sqBkt.Store(nil)
	b.n--
}

// DequeueOne removes and returns the best waiter — highest effective
// priority, oldest among equals — or nil.
func (wc WaitChan) DequeueOne() *Thread {
	mu := wc.lock()
	mu.Lock()
	t := wc.b.head
	if t != nil {
		wc.b.unlinkLocked(t)
	}
	mu.Unlock()
	return t
}

// DequeueAll removes every waiter, returned in queue (priority-then-
// FIFO) order.
func (wc WaitChan) DequeueAll() []*Thread {
	mu := wc.lock()
	mu.Lock()
	b := wc.b
	if b.n == 0 {
		mu.Unlock()
		return nil
	}
	out := make([]*Thread, 0, b.n)
	for t := b.head; t != nil; {
		next := t.sqNext
		t.sqNext, t.sqPrev = nil, nil
		t.sqBkt.Store(nil)
		out = append(out, t)
		t = next
	}
	b.head, b.tail, b.n = nil, nil, 0
	mu.Unlock()
	return out
}

// Remove takes t off the channel if it is queued there — the O(1)
// middle-of-queue removal used by timed-wait cancellation and by a
// waiter deregistering only itself after a spurious wake.
func (wc WaitChan) Remove(t *Thread) bool {
	mu := wc.lock()
	mu.Lock()
	if t.sqBkt.Load() != wc.b {
		mu.Unlock()
		return false
	}
	wc.b.unlinkLocked(t)
	mu.Unlock()
	return true
}

// Len reports the number of queued waiters.
func (wc WaitChan) Len() int {
	mu := wc.lock()
	mu.Lock()
	n := wc.b.n
	mu.Unlock()
	return n
}

// ResidualLinks counts library linkage that must be empty once a
// runtime has quiesced: threads still linked on a sleep-queue bucket
// and threads still owning turnstiles. The exhaustion sweeps assert
// both are zero after every failed create has unwound — a non-zero
// count is a leaked link that would corrupt a later wait or
// inheritance walk.
func (m *Runtime) ResidualLinks() (sleepq, turnstiles int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range m.threads {
		if t.sqBkt.Load() != nil {
			sleepq++
		}
		if t.heldTs != nil {
			turnstiles++
		}
	}
	return sleepq, turnstiles
}

// sleepqDetach removes t from whatever channel it is queued on, if
// any. Used when a thread is torn down (process death) while parked:
// without it the dead Thread would stay linked in a live queue.
func sleepqDetach(t *Thread) {
	for {
		b := t.sqBkt.Load()
		if b == nil {
			return
		}
		if (WaitChan{b}).Remove(t) {
			return
		}
		// Raced with a dequeue that may have been followed by a
		// re-enqueue elsewhere; re-read and retry.
	}
}
