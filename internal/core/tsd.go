package core

import "fmt"

// This file implements POSIX-style thread-specific data, the "more
// dynamic mechanism" the paper says "can be built using thread-local
// storage". Keys are created process-wide with an optional destructor;
// each thread carries a value slot per key in its aux block;
// destructors run, in ascending key order, when a thread exits
// voluntarily.
//
// Concurrency: the key table is published copy-on-write through an
// atomic pointer, so SetSpecific/GetSpecific validate keys against an
// immutable snapshot while CreateTSDKey appends under m.mu. A thread's
// value slots are touched only by that thread (or, for the destructor
// sweep and the recycling scrub, after it can no longer run), so slot
// access takes no lock at all — the hot path is allocation- and
// lock-free.

// TSDKey names one item of thread-specific data.
type TSDKey int

// tsdEntry is a registered key.
type tsdEntry struct {
	destructor func(value any)
}

// tsdSnapshot returns the current immutable key table (nil before the
// first CreateTSDKey).
func (m *Runtime) tsdSnapshot() []tsdEntry {
	if p := m.tsdKeys.Load(); p != nil {
		return *p
	}
	return nil
}

// CreateTSDKey allocates a new key (pthread_key_create). Unlike TLS
// registration, keys may be created at any time — the dynamism the
// paper contrasts with the frozen-size #pragma unshared storage.
func (m *Runtime) CreateTSDKey(destructor func(value any)) TSDKey {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.tsdSnapshot()
	next := make([]tsdEntry, len(old)+1)
	copy(next, old)
	next[len(old)] = tsdEntry{destructor: destructor}
	m.tsdKeys.Store(&next)
	return TSDKey(len(next) - 1)
}

// SetSpecific binds a value to (thread, key), like pthread_setspecific.
// Called by the owning thread; nil clears the slot.
func (t *Thread) SetSpecific(k TSDKey, v any) error {
	if int(k) < 0 || int(k) >= len(t.m.tsdSnapshot()) {
		return fmt.Errorf("core: bad TSD key %d", int(k))
	}
	a := t.auxb()
	if int(k) >= len(a.tsd) {
		if v == nil {
			return nil // clearing an unset slot
		}
		n := int(k) + 1
		if n <= cap(a.tsd) {
			// Regrow into recycled capacity: scrub cleared the full
			// capacity, so the exposed slots are all nil.
			a.tsd = a.tsd[:n]
		} else {
			grown := make([]any, n)
			copy(grown, a.tsd)
			a.tsd = grown
		}
	}
	a.tsd[k] = v
	return nil
}

// GetSpecific returns the calling thread's value for the key, or nil.
func (t *Thread) GetSpecific(k TSDKey) any {
	a := t.aux
	if a == nil || int(k) < 0 || int(k) >= len(a.tsd) {
		return nil
	}
	return a.tsd[k]
}

// runTSDDestructors runs the exiting thread's destructors on its bound
// values in ascending key order, clearing each slot before its
// destructor runs (pthread semantics: the value is unbound first).
// Runs on the thread's own goroutine, outside m.mu.
func (t *Thread) runTSDDestructors() {
	a := t.aux
	if a == nil || len(a.tsd) == 0 {
		return
	}
	keys := t.m.tsdSnapshot()
	for k, v := range a.tsd {
		if v == nil {
			continue
		}
		a.tsd[k] = nil
		if k < len(keys) && keys[k].destructor != nil {
			keys[k].destructor(v)
		}
	}
}
