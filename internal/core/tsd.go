package core

import "fmt"

// This file implements POSIX-style thread-specific data, the "more
// dynamic mechanism" the paper says "can be built using thread-local
// storage". Keys are created process-wide with an optional
// destructor; each thread carries its own value slot per key (the
// per-thread anchor is the thread's TLS block); destructors run, in
// unspecified key order, when a thread exits voluntarily.

// TSDKey names one item of thread-specific data.
type TSDKey int

// tsdEntry is a registered key.
type tsdEntry struct {
	destructor func(value any)
}

// CreateTSDKey allocates a new key (pthread_key_create). Unlike TLS
// registration, keys may be created at any time — the dynamism the
// paper contrasts with the frozen-size #pragma unshared storage.
func (m *Runtime) CreateTSDKey(destructor func(value any)) TSDKey {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tsdKeys = append(m.tsdKeys, tsdEntry{destructor: destructor})
	return TSDKey(len(m.tsdKeys) - 1)
}

// SetSpecific binds a value to (thread, key), like
// pthread_setspecific.
func (t *Thread) SetSpecific(k TSDKey, v any) error {
	m := t.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(k) < 0 || int(k) >= len(m.tsdKeys) {
		return fmt.Errorf("core: bad TSD key %d", int(k))
	}
	if t.tsd == nil {
		t.tsd = make(map[TSDKey]any)
	}
	if v == nil {
		delete(t.tsd, k)
	} else {
		t.tsd[k] = v
	}
	return nil
}

// GetSpecific returns the calling thread's value for the key, or nil.
func (t *Thread) GetSpecific(k TSDKey) any {
	m := t.m
	m.mu.Lock()
	defer m.mu.Unlock()
	return t.tsd[k]
}

// runTSDDestructors runs the exiting thread's destructors on its
// bound values. Runs on the thread's own goroutine, outside m.mu.
func (t *Thread) runTSDDestructors() {
	m := t.m
	m.mu.Lock()
	vals := t.tsd
	t.tsd = nil
	keys := m.tsdKeys
	m.mu.Unlock()
	for k, v := range vals {
		if int(k) < len(keys) && keys[k].destructor != nil {
			keys[k].destructor(v)
		}
	}
}
