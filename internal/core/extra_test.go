package core

import (
	"sync/atomic"
	"testing"
	"time"

	"sunosmt/internal/sim"
)

func TestThreadNewLWPFlagGrowsPool(t *testing.T) {
	m := rt(t, 4, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		before := r.PoolSize()
		c, err := r.Create(func(*Thread, any) {}, nil,
			CreateOpts{Flags: ThreadWait | ThreadNewLWP})
		if err != nil {
			t.Error(err)
			return
		}
		if got := r.PoolSize(); got != before+1 {
			t.Errorf("pool = %d after THREAD_NEW_LWP, want %d", got, before+1)
		}
		self.Wait(c.ID())
	})
	waitExit(t, m)
}

func TestPreemptionByHigherPriorityThread(t *testing.T) {
	// Two LWPs: the main thread keeps running while the low-priority
	// spinner occupies the other LWP; creating the high-priority
	// thread must flag the spinner for preemption at its next
	// checkpoint.
	m := rt(t, 2, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		r.SetConcurrency(2)
		order := make(chan string, 2)
		var lowDone atomic.Bool
		var started atomic.Bool
		low, _ := r.Create(func(c *Thread, _ any) {
			started.Store(true)
			for i := 0; i < 5_000_000 && !lowDone.Load(); i++ {
				c.Checkpoint() // preemption point
			}
			order <- "low"
			lowDone.Store(true)
		}, nil, CreateOpts{Flags: ThreadWait, Priority: 1})
		for !started.Load() {
			self.Yield()
			time.Sleep(100 * time.Microsecond)
		}
		hi, _ := r.Create(func(c *Thread, _ any) {
			order <- "high"
			lowDone.Store(true)
		}, nil, CreateOpts{Flags: ThreadWait, Priority: 50})
		self.Wait(hi.ID())
		self.Wait(low.ID())
		if first := <-order; first != "high" {
			t.Errorf("first finisher = %q: high-priority thread did not preempt", first)
		}
	})
	waitExit(t, m)
}

func TestSigSendAllReachesEveryThread(t *testing.T) {
	var handled atomic.Int64
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		r.Signal(sim.SIGUSR1, sim.SigCatch, func(*Thread, sim.Signal) { handled.Add(1) })
		var ids []ThreadID
		for i := 0; i < 3; i++ {
			c, _ := r.Create(func(c *Thread, _ any) {
				for c.Pending() == 0 && handled.Load() < 4 {
					c.Yield()
				}
				c.Checkpoint() // deliver
			}, nil, CreateOpts{Flags: ThreadWait})
			ids = append(ids, c.ID())
		}
		self.Yield()
		if err := self.SigSendAll(sim.SIGUSR1); err != nil {
			t.Error(err)
		}
		self.Checkpoint() // handle our own copy
		for _, id := range ids {
			self.Wait(id)
		}
	})
	waitExit(t, m)
	if handled.Load() != 4 {
		t.Fatalf("handled = %d, want 4 (3 workers + main)", handled.Load())
	}
}

func TestStopThenContinueParkedThread(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		var resumed atomic.Bool
		c, _ := r.Create(func(c *Thread, _ any) {
			c.Park()
			resumed.Store(true)
		}, nil, CreateOpts{Flags: ThreadWait})
		// Let it park.
		for c.State() != ThreadSleeping {
			self.Yield()
		}
		// Waking it with a stop request pending must stop, not run.
		r.mu.Lock()
		c.stopReq = true
		r.mu.Unlock()
		c.Unpark()
		for c.State() != ThreadStopped {
			self.Yield()
			time.Sleep(100 * time.Microsecond)
		}
		if resumed.Load() {
			t.Error("thread ran past its park despite stop request")
		}
		r.Continue(c)
		self.Wait(c.ID())
		if !resumed.Load() {
			t.Error("thread never resumed after continue")
		}
	})
	waitExit(t, m)
}

func TestConcurrencyAutoGrowsOnlyUnderSigwaiting(t *testing.T) {
	// With plenty of runnable threads but no blocking, the automatic
	// policy keeps a single LWP (growth only happens on SIGWAITING).
	m := rt(t, 4, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		var ids []ThreadID
		for i := 0; i < 16; i++ {
			c, _ := r.Create(func(c *Thread, _ any) {
				for j := 0; j < 20; j++ {
					c.Yield()
				}
			}, nil, CreateOpts{Flags: ThreadWait})
			ids = append(ids, c.ID())
		}
		for _, id := range ids {
			self.Wait(id)
		}
		if got := r.PoolSize(); got != 1 {
			t.Errorf("pool grew to %d without any blocking", got)
		}
	})
	waitExit(t, m)
}

func TestWaitReturnsZombieThatExitedBeforeWait(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		c, _ := self.Runtime().Create(func(*Thread, any) {}, nil, CreateOpts{Flags: ThreadWait})
		// Let it exit first.
		for {
			if _, ok := self.Runtime().Find(c.ID()); !ok {
				break
			}
			self.Yield()
		}
		got, err := self.Wait(c.ID())
		if err != nil || got != c.ID() {
			t.Errorf("Wait on pre-exited zombie = %d, %v", got, err)
		}
	})
	waitExit(t, m)
}

func TestManyWaitersManyZombies(t *testing.T) {
	// Several threads each wait for a distinct child; all complete.
	m := rt(t, 2, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		r.SetConcurrency(2)
		var waiters []ThreadID
		for i := 0; i < 8; i++ {
			child, _ := r.Create(func(c *Thread, _ any) { c.Yield() }, nil,
				CreateOpts{Flags: ThreadWait})
			w, _ := r.Create(func(c *Thread, arg any) {
				id := arg.(ThreadID)
				if got, err := c.Wait(id); err != nil || got != id {
					t.Errorf("waiter: Wait(%d) = %d, %v", id, got, err)
				}
			}, child.ID(), CreateOpts{Flags: ThreadWait})
			waiters = append(waiters, w.ID())
		}
		for _, id := range waiters {
			self.Wait(id)
		}
	})
	waitExit(t, m)
}
