package core

import (
	"sync/atomic"
	"testing"
	"time"

	"sunosmt/internal/sim"
)

// rt boots a kernel and a runtime and runs mainFn as the main thread.
// It returns the runtime; the caller typically waits on rt.Exited().
func rt(t *testing.T, ncpu int, cfg Config, mainFn Func) *Runtime {
	t.Helper()
	k := sim.NewKernel(sim.Config{NCPU: ncpu})
	p := k.NewProcess("test", nil)
	m := NewRuntime(k, p, cfg)
	if _, err := m.Start(mainFn, nil); err != nil {
		t.Fatal(err)
	}
	return m
}

func waitExit(t *testing.T, m *Runtime) {
	t.Helper()
	select {
	case <-m.Exited():
	case <-time.After(10 * time.Second):
		t.Fatal("timeout waiting for process exit")
	}
}

func TestMainThreadRunsAndProcessExits(t *testing.T) {
	var ran atomic.Bool
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		ran.Store(true)
	})
	waitExit(t, m)
	if !ran.Load() {
		t.Fatal("main thread did not run")
	}
	if st := m.Process().State(); st != sim.ProcZombie && st != sim.ProcDead {
		t.Fatalf("process state = %v", st)
	}
}

func TestCreateAndWait(t *testing.T) {
	var sum atomic.Int64
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		var ids []ThreadID
		for i := 1; i <= 5; i++ {
			i := i
			child, err := self.Runtime().Create(func(c *Thread, _ any) {
				sum.Add(int64(i))
			}, nil, CreateOpts{Flags: ThreadWait})
			if err != nil {
				t.Error(err)
				return
			}
			ids = append(ids, child.ID())
		}
		for _, id := range ids {
			got, err := self.Wait(id)
			if err != nil || got != id {
				t.Errorf("Wait(%d) = %d, %v", id, got, err)
			}
		}
		if sum.Load() != 15 {
			t.Errorf("sum = %d, want 15", sum.Load())
		}
	})
	waitExit(t, m)
}

func TestThousandsOfThreadsOnOneLWP(t *testing.T) {
	// The window-system argument: thousands of threads, one LWP.
	const n = 2000
	var count atomic.Int64
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		ids := make([]ThreadID, 0, n)
		for i := 0; i < n; i++ {
			c, err := self.Runtime().Create(func(c *Thread, _ any) {
				count.Add(1)
			}, nil, CreateOpts{Flags: ThreadWait})
			if err != nil {
				t.Error(err)
				return
			}
			ids = append(ids, c.ID())
		}
		for _, id := range ids {
			if _, err := self.Wait(id); err != nil {
				t.Error(err)
				return
			}
		}
	})
	waitExit(t, m)
	if count.Load() != n {
		t.Fatalf("ran %d threads, want %d", count.Load(), n)
	}
	if ps := m.PoolSize(); ps > 2 {
		t.Fatalf("pool grew to %d LWPs without reason", ps)
	}
}

func TestWaitAnyReturnsExitedThread(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		c, _ := self.Runtime().Create(func(*Thread, any) {}, nil, CreateOpts{Flags: ThreadWait})
		got, err := self.Wait(0)
		if err != nil || got != c.ID() {
			t.Errorf("Wait(0) = %d, %v; want %d", got, err, c.ID())
		}
	})
	waitExit(t, m)
}

func TestWaitErrors(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		if _, err := self.Wait(self.ID()); err != ErrSelfWait {
			t.Errorf("self wait err = %v", err)
		}
		if _, err := self.Wait(9999); err != ErrNoThread {
			t.Errorf("missing wait err = %v", err)
		}
		nc, _ := self.Runtime().Create(func(c *Thread, _ any) {
			c.Yield()
		}, nil, CreateOpts{}) // no ThreadWait
		if _, err := self.Wait(nc.ID()); err != ErrNotWaited && err != ErrNoThread {
			t.Errorf("not-waited err = %v", err)
		}
	})
	waitExit(t, m)
}

func TestYieldInterleavesThreads(t *testing.T) {
	var order []int
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		mk := func(tag int) Func {
			return func(c *Thread, _ any) {
				for i := 0; i < 3; i++ {
					order = append(order, tag)
					c.Yield()
				}
			}
		}
		a, _ := self.Runtime().Create(mk(1), nil, CreateOpts{Flags: ThreadWait})
		b, _ := self.Runtime().Create(mk(2), nil, CreateOpts{Flags: ThreadWait})
		self.Wait(a.ID())
		self.Wait(b.ID())
		// With one LWP and cooperative yields the two threads must
		// interleave: we should not see all of one tag before any
		// of the other.
		first := order[0]
		interleaved := false
		for _, v := range order[:4] {
			if v != first {
				interleaved = true
			}
		}
		if !interleaved {
			t.Errorf("no interleaving: %v", order)
		}
	})
	waitExit(t, m)
}

func TestHigherPriorityRunsFirst(t *testing.T) {
	var order []int
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		mk := func(tag int) Func {
			return func(*Thread, any) { order = append(order, tag) }
		}
		lo, _ := self.Runtime().Create(mk(1), nil, CreateOpts{Flags: ThreadWait, Priority: 1})
		hi, _ := self.Runtime().Create(mk(2), nil, CreateOpts{Flags: ThreadWait, Priority: 9})
		self.Wait(lo.ID())
		self.Wait(hi.ID())
		if len(order) != 2 || order[0] != 2 {
			t.Errorf("order = %v, want high (2) first", order)
		}
	})
	waitExit(t, m)
}

func TestParkUnparkPingPong(t *testing.T) {
	const rounds = 20
	var a, b *Thread
	var hits atomic.Int64
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		a, _ = r.Create(func(c *Thread, _ any) {
			for i := 0; i < rounds; i++ {
				c.Park() // until b (or main) wakes us
				hits.Add(1)
				b.Unpark()
			}
		}, nil, CreateOpts{Flags: ThreadWait})
		b, _ = r.Create(func(c *Thread, _ any) {
			for i := 0; i < rounds; i++ {
				a.Unpark()
				c.Park()
				hits.Add(1)
			}
		}, nil, CreateOpts{Flags: ThreadWait})
		self.Wait(a.ID())
		self.Wait(b.ID())
	})
	waitExit(t, m)
	if hits.Load() != 2*rounds {
		t.Fatalf("hits = %d, want %d", hits.Load(), 2*rounds)
	}
}

func TestThreadStopFlagAndContinue(t *testing.T) {
	var ran atomic.Bool
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		c, _ := r.Create(func(*Thread, any) { ran.Store(true) }, nil,
			CreateOpts{Flags: ThreadWait | ThreadStop})
		// Give it a chance to (incorrectly) run.
		self.Yield()
		if ran.Load() {
			t.Error("THREAD_STOP thread ran before continue")
		}
		if c.State() != ThreadStopped {
			t.Errorf("state = %v, want stopped", c.State())
		}
		r.Continue(c)
		self.Wait(c.ID())
		if !ran.Load() {
			t.Error("thread did not run after continue")
		}
	})
	waitExit(t, m)
}

func TestStopRunningThread(t *testing.T) {
	var progress atomic.Int64
	m := rt(t, 2, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		c, _ := r.Create(func(c *Thread, _ any) {
			for i := 0; i < 1_000_000; i++ {
				progress.Add(1)
				c.Checkpoint()
			}
		}, nil, CreateOpts{Flags: ThreadWait})
		r.SetConcurrency(2) // let it actually run in parallel
		for progress.Load() == 0 {
			self.Yield()
		}
		if err := self.Stop(c); err != nil {
			t.Error(err)
			return
		}
		snap := progress.Load()
		for i := 0; i < 50; i++ {
			self.Yield()
		}
		if got := progress.Load(); got > snap {
			t.Errorf("stopped thread advanced: %d -> %d", snap, got)
		}
		r.Continue(c)
		self.Wait(c.ID())
		if progress.Load() != 1_000_000 {
			t.Errorf("final progress = %d", progress.Load())
		}
	})
	waitExit(t, m)
}

func TestSetConcurrencyGrowsAndShrinks(t *testing.T) {
	m := rt(t, 4, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		if err := r.SetConcurrency(4); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 100 && r.Concurrency() < 4; i++ {
			self.Yield()
			time.Sleep(time.Millisecond)
		}
		if got := r.Concurrency(); got != 4 {
			t.Errorf("concurrency = %d, want 4", got)
		}
		if err := r.SetConcurrency(1); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 1000 && r.Concurrency() > 1; i++ {
			self.Yield()
			time.Sleep(time.Millisecond)
		}
		if got := r.Concurrency(); got != 1 {
			t.Errorf("concurrency after shrink = %d, want 1", got)
		}
	})
	waitExit(t, m)
}

func TestBoundThreadRunsOnOwnLWP(t *testing.T) {
	m := rt(t, 2, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		var boundLWP *sim.LWP
		c, err := r.Create(func(c *Thread, _ any) {
			boundLWP = c.LWP()
		}, nil, CreateOpts{Flags: ThreadWait | ThreadBindLWP})
		if err != nil {
			t.Error(err)
			return
		}
		if !c.Bound() {
			t.Error("thread not bound")
		}
		self.Wait(c.ID())
		if boundLWP == nil || boundLWP == self.LWP() {
			t.Error("bound thread did not run on its own LWP")
		}
	})
	waitExit(t, m)
}

func TestBoundThreadRealtimePriority(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		c, _ := r.Create(func(c *Thread, _ any) {
			// A bound thread can enter the RT class: system-wide
			// priority, the paper's real-time story.
			if err := r.Kernel().Priocntl(c.LWP(), sim.ClassRT, 10); err != nil {
				t.Error(err)
			}
			if c.LWP().Class() != sim.ClassRT {
				t.Error("LWP not in RT class")
			}
		}, nil, CreateOpts{Flags: ThreadWait | ThreadBindLWP})
		self.Wait(c.ID())
	})
	waitExit(t, m)
}

func TestTLSRegisterFreezeAndIsolation(t *testing.T) {
	k := sim.NewKernel(sim.Config{NCPU: 1})
	p := k.NewProcess("test", nil)
	m := NewRuntime(k, p, Config{})
	v, err := m.RegisterUnshared(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterUnshared(0); err == nil {
		t.Fatal("zero-size TLS accepted")
	}
	if _, err := m.Start(func(self *Thread, arg any) {
		// Frozen now.
		if _, err := self.Runtime().RegisterUnshared(8); err == nil {
			t.Error("TLS registration allowed after threads started")
		}
		if self.TLSUint64(v) != 0 {
			t.Error("TLS not zeroed")
		}
		self.SetTLSUint64(v, 42)
		c, _ := self.Runtime().Create(func(c *Thread, _ any) {
			if c.TLSUint64(v) != 0 {
				t.Error("child saw parent's TLS value")
			}
			c.SetTLSUint64(v, 7)
		}, nil, CreateOpts{Flags: ThreadWait})
		self.Wait(c.ID())
		if self.TLSUint64(v) != 42 {
			t.Error("TLS value lost")
		}
	}, nil); err != nil {
		t.Fatal(err)
	}
	waitExit(t, m)
	_ = v
}

func TestErrnoPerThread(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		self.SetErrno(4) // EINTR, say
		c, _ := self.Runtime().Create(func(c *Thread, _ any) {
			if c.Errno() != 0 {
				t.Error("child inherited errno")
			}
			c.SetErrno(9)
		}, nil, CreateOpts{Flags: ThreadWait})
		self.Wait(c.ID())
		if self.Errno() != 4 {
			t.Errorf("errno = %d, want 4", self.Errno())
		}
	})
	waitExit(t, m)
}

func TestThreadKillDeliversToTarget(t *testing.T) {
	var handled atomic.Int64
	var victim *Thread
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		r.Signal(sim.SIGUSR1, sim.SigCatch, func(ht *Thread, s sim.Signal) {
			if ht == victim {
				handled.Add(1)
			} else {
				t.Errorf("handler ran on thread %d, want victim", ht.ID())
			}
		})
		victim, _ = r.Create(func(c *Thread, _ any) {
			for handled.Load() == 0 {
				c.Yield()
			}
		}, nil, CreateOpts{Flags: ThreadWait})
		self.Yield() // let the victim start
		if err := self.Kill(victim, sim.SIGUSR1); err != nil {
			t.Error(err)
		}
		self.Wait(victim.ID())
	})
	waitExit(t, m)
	if handled.Load() != 1 {
		t.Fatalf("handled = %d, want 1", handled.Load())
	}
}

func TestThreadKillMaskedPendsUntilUnmask(t *testing.T) {
	var handled atomic.Int64
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		r.Signal(sim.SIGUSR2, sim.SigCatch, func(*Thread, sim.Signal) { handled.Add(1) })
		self.SigSetMask(sim.SigBlock, sim.MakeSigset(sim.SIGUSR2))
		self.Kill(self, sim.SIGUSR2)
		self.Yield()
		if handled.Load() != 0 {
			t.Error("masked signal was handled")
		}
		if !self.Pending().Has(sim.SIGUSR2) {
			t.Error("signal not pending on thread")
		}
		self.SigSetMask(sim.SigUnblock, sim.MakeSigset(sim.SIGUSR2))
		if handled.Load() != 1 {
			t.Errorf("handled = %d after unmask, want 1", handled.Load())
		}
	})
	waitExit(t, m)
}

func TestTrapHandledByRaisingThread(t *testing.T) {
	var handledBy ThreadID
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		r.Signal(sim.SIGFPE, sim.SigCatch, func(ht *Thread, s sim.Signal) {
			handledBy = ht.ID()
		})
		c, _ := r.Create(func(c *Thread, _ any) {
			c.RaiseTrap(sim.SIGFPE)
		}, nil, CreateOpts{Flags: ThreadWait})
		self.Wait(c.ID())
		if handledBy != c.ID() {
			t.Errorf("trap handled by %d, want %d", handledBy, c.ID())
		}
	})
	waitExit(t, m)
}

func TestProcessInterruptReachesUnmaskedThread(t *testing.T) {
	var handled atomic.Int64
	var m *Runtime
	m = rt(t, 1, Config{}, func(self *Thread, arg any) {
		self.Runtime().Signal(sim.SIGUSR1, sim.SigCatch, func(*Thread, sim.Signal) {
			handled.Add(1)
		})
		for handled.Load() == 0 {
			self.Yield()
			time.Sleep(100 * time.Microsecond)
		}
	})
	// Post from outside, like kill(2) from another process — but
	// only once the handler is installed, or the default action
	// (exit) would kill the process.
	for m.Kernel().Action(m.Process(), sim.SIGUSR1) != sim.SigCatch {
		time.Sleep(100 * time.Microsecond)
	}
	for i := 0; i < 100 && handled.Load() == 0; i++ {
		m.Kernel().PostSignal(m.Process(), sim.SIGUSR1)
		time.Sleep(time.Millisecond)
	}
	waitExit(t, m)
	if handled.Load() == 0 {
		t.Fatal("interrupt never handled")
	}
}

func TestSigwaitingGrowsPool(t *testing.T) {
	var grew atomic.Bool
	m := rt(t, 2, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		// A runnable thread that will only run if the pool grows.
		r.Create(func(c *Thread, _ any) {
			grew.Store(true)
		}, nil, CreateOpts{})
		// Block the only LWP indefinitely in the kernel.
		wq := sim.NewWaitQ("ext")
		k := r.Kernel()
		k.SyscallEnter(self.LWP())
		res := k.Sleep(self.LWP(), wq, sim.SleepOpts{Indefinite: true, Timeout: time.Second})
		k.SyscallExit(self.LWP())
		_ = res
		for i := 0; i < 1000 && !grew.Load(); i++ {
			self.Yield()
			time.Sleep(time.Millisecond)
		}
	})
	waitExit(t, m)
	if !grew.Load() {
		t.Fatal("SIGWAITING did not grow the pool; runnable thread starved")
	}
}

func TestNoGrowthWhenSigwaitingDisabled(t *testing.T) {
	var ran atomic.Bool
	m := rt(t, 2, Config{DisableSigwaiting: true}, func(self *Thread, arg any) {
		r := self.Runtime()
		r.Create(func(c *Thread, _ any) { ran.Store(true) }, nil, CreateOpts{})
		wq := sim.NewWaitQ("ext")
		k := r.Kernel()
		k.SyscallEnter(self.LWP())
		k.Sleep(self.LWP(), wq, sim.SleepOpts{Indefinite: true, Timeout: 50 * time.Millisecond})
		k.SyscallExit(self.LWP())
	})
	waitExit(t, m)
	// The runnable thread eventually ran (after the timeout), but
	// the pool must not have grown.
	if m.PoolSize() > 1 {
		t.Fatalf("pool grew to %d with SIGWAITING disabled", m.PoolSize())
	}
	_ = ran.Load()
}

func TestSetjmpLongjmp(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		v := self.Setjmp(func(jb *Jmpbuf) {
			deep := func() { self.Longjmp(jb, 3) }
			deep()
			t.Error("unreached after longjmp")
		})
		if v != 3 {
			t.Errorf("setjmp returned %d, want 3", v)
		}
		// Cross-thread longjmp is an error.
		var childErr error
		self.Setjmp(func(jb *Jmpbuf) {
			c, _ := self.Runtime().Create(func(c *Thread, _ any) {
				childErr = c.Longjmp(jb, 1)
			}, nil, CreateOpts{Flags: ThreadWait})
			self.Wait(c.ID())
		})
		if childErr != ErrJmpCrossThread {
			t.Errorf("cross-thread longjmp err = %v", childErr)
		}
	})
	waitExit(t, m)
}

func TestThreadExitFromDeepCall(t *testing.T) {
	var after atomic.Bool
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		c, _ := self.Runtime().Create(func(c *Thread, _ any) {
			func() { c.Exit() }()
			after.Store(true)
		}, nil, CreateOpts{Flags: ThreadWait})
		self.Wait(c.ID())
	})
	waitExit(t, m)
	if after.Load() {
		t.Fatal("code after thread_exit ran")
	}
}

func TestDaemonThreadsDoNotHoldProcess(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		self.Runtime().Create(func(c *Thread, _ any) {
			for {
				c.Park() // daemon parks forever
			}
		}, nil, CreateOpts{Flags: ThreadDaemon})
		self.Yield()
	})
	waitExit(t, m) // must exit although the daemon never does
}

func TestCreateAfterExitFails(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {})
	waitExit(t, m)
	if _, err := m.Create(func(*Thread, any) {}, nil, CreateOpts{}); err == nil {
		t.Fatal("Create succeeded on dead runtime")
	}
}

func TestStackCachedAcrossCreates(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		c1, _ := r.Create(func(*Thread, any) {}, nil, CreateOpts{Flags: ThreadWait})
		self.Wait(c1.ID())
		r.mu.Lock()
		cached := len(r.stackCache)
		r.mu.Unlock()
		if cached == 0 {
			t.Error("no stack cached after waited thread exit")
		}
	})
	waitExit(t, m)
}

func TestCallerSuppliedStackHoldsTLS(t *testing.T) {
	k := sim.NewKernel(sim.Config{NCPU: 1})
	p := k.NewProcess("test", nil)
	m := NewRuntime(k, p, Config{})
	v, _ := m.RegisterUnshared(16)
	stack := make([]byte, 4096)
	if _, err := m.Start(func(self *Thread, arg any) {
		c, err := self.Runtime().Create(func(c *Thread, _ any) {
			c.SetTLSUint64(v, 0xdead)
		}, nil, CreateOpts{Flags: ThreadWait, Stack: stack})
		if err != nil {
			t.Error(err)
			return
		}
		self.Wait(c.ID())
		// TLS was carved from the top of the supplied stack.
		found := false
		for _, b := range stack[len(stack)-16:] {
			if b != 0 {
				found = true
			}
		}
		if !found {
			t.Error("TLS not placed in caller-supplied stack")
		}
	}, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-m.Exited():
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
	// Too-small stacks are rejected.
	if _, err := m.Create(func(*Thread, any) {}, nil, CreateOpts{Stack: make([]byte, 4)}); err == nil {
		t.Fatal("tiny stack accepted")
	}
}
