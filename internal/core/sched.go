package core

import (
	"math/bits"
	"sort"

	"sunosmt/internal/chaos"
	"sunosmt/internal/sim"
)

// This file holds the user-level run queue and the thread execution
// control interfaces: thread_wait, thread_stop, thread_continue,
// thread_priority.

// NumPrioLevels is the number of dispatch-queue levels of the run
// queue, mirroring Solaris's fixed array of per-priority dispatch
// queues (disp_q) indexed by an active-priority bitmap (dqactmap).
// Priorities at or above the cap share the top level: they still beat
// every lower priority, but are FIFO among themselves.
const NumPrioLevels = 128

// prioLevel maps a thread priority onto its dispatch-queue level.
func prioLevel(prio int) int {
	if prio >= NumPrioLevels {
		return NumPrioLevels - 1
	}
	return prio
}

// runQueue is the priority run queue of unbound runnable threads:
// one FIFO ring per priority level plus a bitmap of occupied levels,
// so push, pop, remove and maxPrio are all O(1) — the dispatch hot
// path does no scanning regardless of how many threads are queued.
// Threads are linked intrusively through Thread.rqNext/rqPrev, so
// removal (thread_stop, signal redirect) needs no search either.
// Guarded by Runtime.mu.
type runQueue struct {
	qs     [NumPrioLevels]dispQ
	bitmap [NumPrioLevels / 64]uint64
	n      int
}

// dispQ is one per-priority FIFO ring: head is popped, tail appended.
type dispQ struct {
	head, tail *Thread
}

func (r *runQueue) len() int { return r.n }

// push appends t to the tail of its effective-priority level (FIFO
// among equals) and marks the level active.
func (r *runQueue) push(t *Thread) {
	lvl := prioLevel(int(t.effPrio.Load()))
	t.rqLevel = lvl
	t.rqOn = true
	t.rqNext = nil
	q := &r.qs[lvl]
	if q.tail == nil {
		t.rqPrev = nil
		q.head, q.tail = t, t
		r.bitmap[lvl>>6] |= 1 << (lvl & 63)
	} else {
		t.rqPrev = q.tail
		q.tail.rqNext = t
		q.tail = t
	}
	r.n++
}

// topLevel returns the highest active level, or -1 when empty: one
// bits.Len64 per bitmap word, never a queue scan.
func (r *runQueue) topLevel() int {
	for w := len(r.bitmap) - 1; w >= 0; w-- {
		if word := r.bitmap[w]; word != 0 {
			return w<<6 + bits.Len64(word) - 1
		}
	}
	return -1
}

// pop removes and returns the highest-priority thread (FIFO among
// equals), or nil. A chaos source (nil when disabled) may pick a
// different queued thread, exploring dispatch orders the priority rule
// would not produce; the passed-over thread stays queued.
func (r *runQueue) pop(src *chaos.Source) *Thread {
	if r.n == 0 {
		return nil
	}
	if alt := src.RunqReorder(r.n); alt >= 0 {
		if t := r.nth(alt); t != nil {
			r.unlink(t)
			return t
		}
	}
	lvl := r.topLevel()
	t := r.qs[lvl].head
	r.unlink(t)
	return t
}

// nth returns the alt-th queued thread in priority-then-FIFO order
// (chaos exploration only: this is the one O(n) path, taken solely
// when a chaos source fires).
func (r *runQueue) nth(alt int) *Thread {
	for lvl := NumPrioLevels - 1; lvl >= 0; lvl-- {
		for t := r.qs[lvl].head; t != nil; t = t.rqNext {
			if alt == 0 {
				return t
			}
			alt--
		}
	}
	return nil
}

// unlink detaches a queued thread from its ring in O(1).
func (r *runQueue) unlink(t *Thread) {
	q := &r.qs[t.rqLevel]
	if t.rqPrev != nil {
		t.rqPrev.rqNext = t.rqNext
	} else {
		q.head = t.rqNext
	}
	if t.rqNext != nil {
		t.rqNext.rqPrev = t.rqPrev
	} else {
		q.tail = t.rqPrev
	}
	if q.head == nil {
		r.bitmap[t.rqLevel>>6] &^= 1 << (t.rqLevel & 63)
	}
	t.rqNext, t.rqPrev = nil, nil
	t.rqOn = false
	r.n--
}

// remove takes t off the queue if it is queued, in O(1) via its
// intrusive links (thread_stop, timed-wait cancel, signal redirect).
func (r *runQueue) remove(t *Thread) bool {
	if !t.rqOn {
		return false
	}
	r.unlink(t)
	return true
}

func (r *runQueue) clear() {
	for lvl := 0; lvl < NumPrioLevels; lvl++ {
		for t := r.qs[lvl].head; t != nil; {
			next := t.rqNext
			t.rqNext, t.rqPrev = nil, nil
			t.rqOn = false
			t = next
		}
		r.qs[lvl] = dispQ{}
	}
	for i := range r.bitmap {
		r.bitmap[i] = 0
	}
	r.n = 0
}

// maxPrio returns the highest queued priority, or -1 when empty. For
// levels below the clamp this is exact from the bitmap; the top
// (shared) level is scanned for the true maximum.
func (r *runQueue) maxPrio() int {
	lvl := r.topLevel()
	if lvl < 0 {
		return -1
	}
	if lvl < NumPrioLevels-1 {
		return lvl
	}
	best := -1
	for t := r.qs[lvl].head; t != nil; t = t.rqNext {
		if p := int(t.effPrio.Load()); p > best {
			best = p
		}
	}
	return best
}

// PrioCount is one row of a run-queue occupancy report: Count queued
// threads at priority Prio.
type PrioCount struct {
	Prio  int
	Count int
}

// RunqStats reports the total run-queue depth (across every
// dispatcher shard) and the per-priority occupancy (ascending
// priority), for mtstat and /proc. Counts are by actual effective
// thread priority — what the dispatcher orders by — not queue level,
// so clamped priorities above the level cap report distinctly. See
// DispatchStats for the per-shard view.
func (m *Runtime) RunqStats() (int, []PrioCount) {
	depth := 0
	counts := make(map[int]int)
	for i := range m.disp.shards {
		s := &m.disp.shards[i]
		s.mu.Lock()
		depth += s.q.n
		for lvl := 0; lvl < NumPrioLevels; lvl++ {
			for t := s.q.qs[lvl].head; t != nil; t = t.rqNext {
				counts[int(t.effPrio.Load())]++
			}
		}
		s.mu.Unlock()
	}
	prios := make([]int, 0, len(counts))
	for p := range counts {
		prios = append(prios, p)
	}
	sort.Ints(prios)
	occ := make([]PrioCount, 0, len(prios))
	for _, p := range prios {
		occ = append(occ, PrioCount{Prio: p, Count: counts[p]})
	}
	return depth, occ
}

// Find returns the live thread with the given ID.
func (m *Runtime) Find(id ThreadID) (*Thread, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.threads[id]
	return t, ok
}

// NumThreads reports the number of live (non-zombie) threads.
func (m *Runtime) NumThreads() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nlive
}

// Threads returns a snapshot of the live threads (for /proc and the
// debugger cooperation interface).
func (m *Runtime) Threads() []*Thread {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Thread, 0, len(m.threads))
	for _, t := range m.threads {
		out = append(out, t)
	}
	return out
}

// Wait implements thread_wait: the calling thread blocks until the
// thread with the given ID exits (id == 0: until any THREAD_WAIT
// thread exits) and returns the ID of the exited thread. Per the
// paper it is an error to wait for a thread created without
// THREAD_WAIT, to wait for the current thread, or to have two waits
// on one thread.
func (caller *Thread) Wait(id ThreadID) (ThreadID, error) {
	m := caller.m
	if id == caller.id {
		return 0, ErrSelfWait
	}
	for {
		m.mu.Lock()
		var reg WaitChan
		if id != 0 {
			if z, ok := m.zombies[id]; ok {
				m.reapLocked(z)
				m.mu.Unlock()
				return id, nil
			}
			target, ok := m.threads[id]
			if !ok {
				m.mu.Unlock()
				return 0, ErrNoThread
			}
			if target.flags&ThreadWait == 0 {
				m.mu.Unlock()
				return 0, ErrNotWaited
			}
			if target.waitWC.Len() > 0 {
				m.mu.Unlock()
				return 0, ErrDoubleWait
			}
			reg = target.waitWC
		} else {
			for zid, z := range m.zombies {
				m.reapLocked(z)
				m.mu.Unlock()
				return zid, nil
			}
			reg = m.anyWC
		}
		reg.Enqueue(caller)
		m.mu.Unlock()
		caller.parkSelf(ThreadWaiting)
		caller.Checkpoint()
		// Loop: re-scan for our zombie. A wake permit or spurious
		// wake simply re-checks. Deregister only the caller — a
		// blanket flush here would drop waiters that registered on
		// the same channel while we were waking.
		m.mu.Lock()
		reg.Remove(caller)
		m.mu.Unlock()
	}
}

// reapLocked removes a zombie after a successful wait, reclaiming a
// library-allocated stack into the cache (a programmer-supplied stack
// is simply no longer referenced: the caller may reuse it, as the
// paper specifies) and recycling the Thread shell. The shell is not
// scrubbed until a later Create pops it, so the waiter's post-mortem
// handle reads (Microstates, Errno) stay valid until recycling — the
// same validity window pthread_t gives.
func (m *Runtime) reapLocked(z *Thread) {
	delete(m.zombies, z.id)
	m.freeThreadLocked(z)
}

// Stop implements thread_stop(target): it prevents the target from
// running and does not return until the target is stopped. caller may
// be nil when the request comes from outside any thread (tests,
// debugger). Stopping the calling thread stops it immediately.
func (caller *Thread) Stop(target *Thread) error {
	m := caller.m
	if target == caller {
		m.mu.Lock()
		target.stopReq = true
		m.mu.Unlock()
		target.parkSelf(ThreadStopped)
		return nil
	}
	m.mu.Lock()
	if target.state == ThreadZombie {
		m.mu.Unlock()
		return ErrNoThread
	}
	target.stopReq = true
	switch target.state {
	case ThreadStopped:
		m.mu.Unlock()
		return nil
	case ThreadRunnable:
		if m.disp.remove(target) {
			target.state = ThreadStopped
			target.msSwitchLocked(m.kern.Clock().Now(), MSStopped)
			m.mu.Unlock()
			return nil
		}
		// Bound and between queues: fall through to waiting.
	case ThreadRunning:
		target.preempt = true
	}
	// Wait until the target parks itself as stopped at its next
	// checkpoint. The caller parks; the target's transition wakes
	// stop-waiters.
	a := target.auxb()
	a.stopWaiters = append(a.stopWaiters, caller)
	m.mu.Unlock()
	if target.bound() {
		// Bound targets stop via their own checkpoint too; the
		// kernel cannot stop a single LWP asynchronously (the
		// simulation is cooperative), so the path is the same.
		m.kern.Unpark(target.bndLWP) // kick it through a park, if parked
	}
	for {
		m.mu.Lock()
		stopped := target.state == ThreadStopped || target.state == ThreadZombie
		m.mu.Unlock()
		if stopped {
			return nil
		}
		caller.parkSelf(ThreadWaiting)
		caller.Checkpoint()
	}
}

// Continue implements thread_continue: it (re)starts a stopped
// thread. Its effect may be delayed (paper).
func (m *Runtime) Continue(target *Thread) error {
	m.mu.Lock()
	if target.state == ThreadZombie {
		m.mu.Unlock()
		return ErrNoThread
	}
	target.stopReq = false
	stopped := target.state == ThreadStopped
	if stopped {
		target.state = ThreadSleeping // so unparkInto re-enqueues
	}
	m.mu.Unlock()
	if stopped {
		m.unparkInto(target)
	}
	return nil
}

// noteStopped is called by a thread as it parks stopped, to release
// thread_stop callers.
func (t *Thread) noteStopped() {
	m := t.m
	m.mu.Lock()
	var waiters []*Thread
	if a := t.aux; a != nil {
		waiters = a.stopWaiters
		a.stopWaiters = nil
	}
	m.mu.Unlock()
	m.unparkBatch(waiters)
}

// SetPriority implements thread_priority: it sets the target's base
// priority and returns the old one. Priority must be >= 0; increasing
// values give increasing scheduling priority. The effective priority
// is recomputed as max(base, held-turnstile boosts), and setEffLocked
// moves the thread wherever priority orders it — its run-queue level
// if queued runnable, and its position within its sleep-queue bucket
// if blocked (so a raised sleeper wakes ahead of its old equals, not
// at its stale FIFO slot).
func (m *Runtime) SetPriority(target *Thread, prio int) (int, error) {
	if prio < 0 {
		return 0, ErrBadPrio
	}
	m.mu.Lock()
	old := target.prio
	target.prio = prio
	eff := prio
	if h := m.heldMaxLocked(target); h > eff {
		eff = h
	}
	m.setEffLocked(target, eff)
	m.mu.Unlock()
	if target.bound() {
		// Map the effective priority onto the bound LWP's class
		// priority so the kernel dispatcher honours it.
		p := eff
		if p > sim.MaxUserPrio {
			p = sim.MaxUserPrio
		}
		if err := m.kern.Priocntl(target.bndLWP, target.bndLWP.Class(), p); err != nil {
			return old, err
		}
	}
	return old, nil
}

// Priority returns the thread's current base priority (what
// thread_priority set; see EffPriority for the inherited one).
func (t *Thread) Priority() int {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return t.prio
}
