package core

import (
	"sunosmt/internal/chaos"
	"sunosmt/internal/sim"
)

// This file holds the user-level run queue and the thread execution
// control interfaces: thread_wait, thread_stop, thread_continue,
// thread_priority.

// runQueue is the priority run queue of unbound runnable threads:
// highest priority first, FIFO among equal priorities.
type runQueue struct {
	q []*Thread
}

func (r *runQueue) len() int { return len(r.q) }

func (r *runQueue) push(t *Thread) { r.q = append(r.q, t) }

// pop removes and returns the highest-priority thread (FIFO among
// equals), or nil. A chaos source (nil when disabled) may pick a
// different queued thread, exploring dispatch orders the priority rule
// would not produce; the passed-over thread stays queued.
func (r *runQueue) pop(src *chaos.Source) *Thread {
	best := -1
	for i, t := range r.q {
		if best < 0 || t.prio > r.q[best].prio {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	if alt := src.RunqReorder(len(r.q)); alt >= 0 {
		best = alt
	}
	t := r.q[best]
	r.q = append(r.q[:best], r.q[best+1:]...)
	return t
}

func (r *runQueue) remove(t *Thread) bool {
	for i, x := range r.q {
		if x == t {
			r.q = append(r.q[:i], r.q[i+1:]...)
			return true
		}
	}
	return false
}

func (r *runQueue) clear() { r.q = nil }

// maxPrio returns the highest queued priority, or -1 when empty.
func (r *runQueue) maxPrio() int {
	best := -1
	for _, t := range r.q {
		if t.prio > best {
			best = t.prio
		}
	}
	return best
}

// Find returns the live thread with the given ID.
func (m *Runtime) Find(id ThreadID) (*Thread, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.threads[id]
	return t, ok
}

// NumThreads reports the number of live (non-zombie) threads.
func (m *Runtime) NumThreads() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nlive
}

// Threads returns a snapshot of the live threads (for /proc and the
// debugger cooperation interface).
func (m *Runtime) Threads() []*Thread {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Thread, 0, len(m.threads))
	for _, t := range m.threads {
		out = append(out, t)
	}
	return out
}

// Wait implements thread_wait: the calling thread blocks until the
// thread with the given ID exits (id == 0: until any THREAD_WAIT
// thread exits) and returns the ID of the exited thread. Per the
// paper it is an error to wait for a thread created without
// THREAD_WAIT, to wait for the current thread, or to have two waits
// on one thread.
func (caller *Thread) Wait(id ThreadID) (ThreadID, error) {
	m := caller.m
	if id == caller.id {
		return 0, ErrSelfWait
	}
	for {
		m.mu.Lock()
		if id != 0 {
			if z, ok := m.zombies[id]; ok {
				m.reapLocked(z)
				m.mu.Unlock()
				return id, nil
			}
			target, ok := m.threads[id]
			if !ok {
				m.mu.Unlock()
				return 0, ErrNoThread
			}
			if target.flags&ThreadWait == 0 {
				m.mu.Unlock()
				return 0, ErrNotWaited
			}
			if len(m.waiters[id]) > 0 {
				m.mu.Unlock()
				return 0, ErrDoubleWait
			}
			m.waiters[id] = append(m.waiters[id], caller)
		} else {
			for zid, z := range m.zombies {
				m.reapLocked(z)
				m.mu.Unlock()
				return zid, nil
			}
			m.anyWait = append(m.anyWait, caller)
		}
		m.mu.Unlock()
		caller.parkSelf(ThreadWaiting)
		caller.Checkpoint()
		// Loop: re-scan for our zombie. A wake permit or spurious
		// wake simply re-checks.
		m.mu.Lock()
		// Deregister in case we were woken without our target
		// having exited (any-wait broadcast).
		if id != 0 {
			delete(m.waiters, id)
		} else {
			m.anyWait = removeThread(m.anyWait, caller)
		}
		m.mu.Unlock()
	}
}

// reapLocked removes a zombie after a successful wait, reclaiming a
// library-allocated stack into the cache (a programmer-supplied stack
// is simply no longer referenced: the caller may reuse it, as the
// paper specifies).
func (m *Runtime) reapLocked(z *Thread) {
	delete(m.zombies, z.id)
	if z.stackOwn && len(m.stackCache) < 32 {
		m.stackCache = append(m.stackCache, z.stack)
	}
}

func removeThread(s []*Thread, t *Thread) []*Thread {
	for i, x := range s {
		if x == t {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Stop implements thread_stop(target): it prevents the target from
// running and does not return until the target is stopped. caller may
// be nil when the request comes from outside any thread (tests,
// debugger). Stopping the calling thread stops it immediately.
func (caller *Thread) Stop(target *Thread) error {
	m := caller.m
	if target == caller {
		m.mu.Lock()
		target.stopReq = true
		m.mu.Unlock()
		target.parkSelf(ThreadStopped)
		return nil
	}
	m.mu.Lock()
	if target.state == ThreadZombie {
		m.mu.Unlock()
		return ErrNoThread
	}
	target.stopReq = true
	switch target.state {
	case ThreadStopped:
		m.mu.Unlock()
		return nil
	case ThreadRunnable:
		if m.runq.remove(target) {
			target.state = ThreadStopped
			m.mu.Unlock()
			return nil
		}
		// Bound and between queues: fall through to waiting.
	case ThreadRunning:
		target.preempt = true
	}
	// Wait until the target parks itself as stopped at its next
	// checkpoint. The caller parks; the target's transition wakes
	// stop-waiters.
	target.stopWaiters = append(target.stopWaiters, caller)
	m.mu.Unlock()
	if target.bound() {
		// Bound targets stop via their own checkpoint too; the
		// kernel cannot stop a single LWP asynchronously (the
		// simulation is cooperative), so the path is the same.
		m.kern.Unpark(target.bndLWP) // kick it through a park, if parked
	}
	for {
		m.mu.Lock()
		stopped := target.state == ThreadStopped || target.state == ThreadZombie
		m.mu.Unlock()
		if stopped {
			return nil
		}
		caller.parkSelf(ThreadWaiting)
		caller.Checkpoint()
	}
}

// Continue implements thread_continue: it (re)starts a stopped
// thread. Its effect may be delayed (paper).
func (m *Runtime) Continue(target *Thread) error {
	m.mu.Lock()
	if target.state == ThreadZombie {
		m.mu.Unlock()
		return ErrNoThread
	}
	target.stopReq = false
	stopped := target.state == ThreadStopped
	if stopped {
		target.state = ThreadSleeping // so unparkInto re-enqueues
	}
	m.mu.Unlock()
	if stopped {
		m.unparkInto(target)
	}
	return nil
}

// noteStopped is called by a thread as it parks stopped, to release
// thread_stop callers.
func (t *Thread) noteStopped() {
	m := t.m
	m.mu.Lock()
	waiters := t.stopWaiters
	t.stopWaiters = nil
	m.mu.Unlock()
	for _, w := range waiters {
		if w != nil {
			m.unparkInto(w)
		}
	}
}

// SetPriority implements thread_priority: it sets the target's
// priority and returns the old one. Priority must be >= 0; increasing
// values give increasing scheduling priority.
func (m *Runtime) SetPriority(target *Thread, prio int) (int, error) {
	if prio < 0 {
		return 0, ErrBadPrio
	}
	m.mu.Lock()
	old := target.prio
	target.prio = prio
	// A runnable thread's queue position is recomputed at pop time,
	// so no re-queue is needed; but a raised priority may warrant
	// preempting a running thread.
	if target.state == ThreadRunnable {
		m.flagPreemptionLocked(prio)
	}
	m.mu.Unlock()
	if target.bound() {
		// Map thread priority onto the bound LWP's class priority
		// so the kernel dispatcher honours it.
		p := prio
		if p > sim.MaxUserPrio {
			p = sim.MaxUserPrio
		}
		if err := m.kern.Priocntl(target.bndLWP, target.bndLWP.Class(), p); err != nil {
			return old, err
		}
	}
	return old, nil
}

// Priority returns the thread's current priority.
func (t *Thread) Priority() int {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return t.prio
}
