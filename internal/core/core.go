// Package core implements the paper's primary contribution: the
// threads library that multiplexes extremely lightweight user-level
// threads onto kernel-supported LWPs.
//
// A Runtime (the library instance for one process — "libthread")
// owns:
//
//   - the thread table and the user-level run queue of unbound
//     threads, ordered by thread priority;
//   - a pool of LWPs that execute unbound threads. Each pool LWP's
//     dispatcher loop picks the highest-priority runnable thread,
//     assumes its identity (signal mask), and hands it the CPU; the
//     thread hands control back when it blocks, yields, or exits —
//     the paper's Figure 2 cycle, entirely in user space;
//   - bound threads, each permanently attached to its own LWP, giving
//     it kernel scheduling (real-time class, CPU binding, per-LWP
//     timers) while retaining the whole thread API;
//   - thread-local storage, per-thread signal masks, and the
//     SIGWAITING-driven automatic growth of the LWP pool.
//
// # Context switching in this reproduction
//
// Real SunOS switches threads by saving and loading register state.
// Go forbids that, so every thread is lazily given a goroutine that
// runs only while it holds its LWP's grant; "saving thread state" is
// the thread parking on its gate channel and returning control to the
// LWP's dispatcher goroutine. The multiplexing structure — who is
// allowed to run, on which LWP, with which mask, with no kernel
// involvement on the switch path — is exactly the paper's. See
// DESIGN.md for the substitution table.
//
// # Locking
//
// Runtime.mu guards the library-level scheduling state except the
// ready queue, which is sharded per simulated CPU under its own locks
// (see dispatcher.go) so dispatch traffic does not serialize on
// Runtime.mu. Lock order is Runtime.mu -> shard lock; the dispatcher
// never takes Runtime.mu. Runtime.mu is never held across a kernel
// call that can block (Park, Sleep, Start); it may be held across
// non-blocking kernel calls (Unpark).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sunosmt/internal/chaos"
	"sunosmt/internal/ktime"
	"sunosmt/internal/sim"
	"sunosmt/internal/trace"
)

// Config configures a Runtime.
type Config struct {
	// Trace, if non-nil, receives library events (thread dispatch,
	// park, pool growth) for debugging and the Figure 2 demo.
	Trace *trace.Buffer
	// MaxAutoLWPs caps SIGWAITING-driven pool growth (default 64).
	MaxAutoLWPs int
	// DefaultStackSize is used when thread_create is given no
	// stack (default 64 KiB, simulated).
	DefaultStackSize int
	// StackCacheSize caps how many library-allocated default stacks
	// are kept for reuse after their threads exit (default 32) —
	// the cache behind Figure 5's "default stack" creation time.
	StackCacheSize int
	// ThreadCacheSize caps the Runtime's Thread freelist: exited
	// unwaited (or reaped) threads park their Thread struct, gate
	// channel, and TSD block here for the next Create to recycle,
	// making steady-state create/exit allocation-free. Zero selects
	// the default (1024); negative disables recycling.
	ThreadCacheSize int
	// StackMem, if non-nil, carves thread stacks from an address
	// space (reserve on create, commit on first dispatch) instead of
	// allocating host memory per stack. mt wires the process's
	// vm.AddressSpace here so a million mostly-idle threads cost
	// address space, not committed bytes.
	StackMem StackMem
	// DisableSigwaiting turns off automatic LWP creation on
	// SIGWAITING — the ablation knob for the deadlock-avoidance
	// experiment.
	DisableSigwaiting bool
	// InitialLWP, if set, is adopted as the runtime's first pool
	// LWP instead of creating a fresh one. Exec uses it to hand
	// the single LWP the kernel rebuilds to the new image's
	// runtime ("When exec() rebuilds the process, it creates a
	// single LWP. The process startup code then builds the initial
	// thread.").
	InitialLWP *sim.LWP
	// LWPAgeTime retires a pool LWP that has sat idle this long —
	// the shrink counterpart of SIGWAITING growth, so a burst of
	// concurrency does not pin kernel resources forever. Zero
	// disables aging. Aging applies only under automatic sizing
	// (thread_setconcurrency 0) and never retires the last LWP.
	LWPAgeTime time.Duration
	// NoPriorityInheritance disables turnstile priority
	// inheritance: blocking acquirers no longer will their effective
	// priority to lock owners. The ablation knob behind the
	// PriorityInversion bench and the examples/realtime demo; sleep
	// queues stay priority-ordered either way.
	NoPriorityInheritance bool
	// MaxThreads is the per-process thread cap: Create fails with
	// ErrAgain once this many threads are live. Zero is unlimited.
	// This is the library-level admission control that lets a server
	// shed load with an error instead of exhausting the kernel.
	MaxThreads int
	// WatchdogDeadline is the residency deadline the health monitor
	// judges against: an LWP on-CPU, or a thread blocked on a lock
	// or sleep, for longer than this is flagged stuck. Zero selects
	// the default (1s). See Runtime.Health.
	WatchdogDeadline time.Duration
	// LockPolicy selects the process-default mutex lock/wake policy
	// for tsync mutexes that do not pin one per-lock. The values are
	// tsync's Policy constants (core cannot import tsync); 0 selects
	// the adaptive default. The per-process ablation knob beside
	// NoPriorityInheritance for the lock-policy shootout.
	LockPolicy int
	// LockWaitSampleCap, when positive, keeps a bounded ring of the
	// most recent per-interval lock-wait times (one sample per
	// MSLock episode, from the microstate clock) for tail-latency
	// percentiles. Zero disables sampling; cumulative MSLock
	// microstate accounting is unaffected either way.
	LockWaitSampleCap int
}

// Runtime is the threads library instance for one process.
type Runtime struct {
	kern  *sim.Kernel
	proc  *sim.Process
	cfg   Config
	tr    *trace.Buffer
	rings *trace.Rings // kernel's event rings (nil: tracing off)

	mu      sync.Mutex
	threads map[ThreadID]*Thread
	nextID  ThreadID
	nlive   int // threads not yet zombies
	ndaemon int // live daemon threads

	// disp is the per-CPU sharded ready queue; its shard locks are
	// leaves under mu (see dispatcher.go). dying is atomic so the
	// dispatch fast path reads it without mu.
	disp     *dispatcher
	dying    atomic.Bool
	idle     []*poolLWP // idle pool LWPs, LIFO
	pool     []*poolLWP // all pool LWPs
	nparked  int
	retiring int // pool LWPs asked to exit
	agedOut  int // pool LWPs retired by idle aging (stats)

	concurrency int // thread_setconcurrency target; 0 = automatic

	// SIGWAITING growth backoff (see onSigwaiting): after a failed
	// LWP spawn the pool waits growBackoff (doubling per consecutive
	// failure, bounded) before trying again, instead of retrying on
	// every SIGWAITING.
	growBackoff    time.Duration
	growNextAt     time.Duration
	growRetryArmed bool
	growFailures   uint64
	growDeferred   uint64

	zombies   map[ThreadID]*Thread // THREAD_WAIT zombies awaiting thread_wait
	anyWC     WaitChan             // thread_wait(0) callers sleep here
	tsdKeys   atomic.Pointer[[]tsdEntry]
	exitWG    sync.WaitGroup // animator goroutines
	exitedCh  chan struct{}
	exitOnce  sync.Once
	tlsSize   int
	tlsFrozen bool

	stackMem   StackMem
	stackCache []stackSpan // cached default-stack carves (paper: Fig 5 uses a cached stack)
	tlsCache   [][]byte    // recycled TLS blocks, paired with stackCache
	tcache     []*Thread   // Thread-struct freelist (zero-alloc create)

	// idleAnim holds the handoff channels of animator goroutines
	// whose thread has exited: first dispatch hands them a new thread
	// instead of spawning a goroutine (and paying its closure
	// allocation). See Runtime.animate.
	idleAnim []chan *Thread

	// Thread-shell slab: the mass-create cold path carves Thread,
	// threadAux, and wait-channel buckets from batch-allocated arrays
	// instead of paying one host allocation each per thread. Guarded
	// by mu. See allocThreadLocked.
	slabT    []Thread
	slabA    []threadAux
	slabB    []sleepqBucket
	slabUsed int

	// lockWaitRing is the bounded ring of recent MSLock wait
	// intervals (LockWaitSampleCap > 0): one duration per completed
	// lock-wait episode, overwriting the oldest past the cap. Guarded
	// by mu (fed from msSwitchLocked, which already holds it).
	lockWaitRing []time.Duration
	lockWaitPos  int
	lockWaitN    uint64 // total episodes observed (can exceed cap)
}

// poolLWP is one LWP dedicated to running unbound threads.
type poolLWP struct {
	l       *sim.LWP
	back    chan struct{} // current thread returns control here
	cur     *Thread       // guarded by Runtime.mu
	die     atomic.Bool   // retire at next dispatch point
	counted bool          // counted in Runtime.retiring; guarded by mu

	// fair makes this LWP's next pop use global FIFO-among-equals
	// order instead of affinity-first, so a thr_yield lets every
	// earlier-queued equal-priority thread run regardless of which
	// shard it sits on. Set by the yielding thread before it hands
	// control back, read by the dispatch loop; the pl.back handoff
	// orders the accesses.
	fair bool
}

// allSigs is the fully-blocked mask installed on idle pool LWPs so
// that interrupts are never routed to an LWP with no thread identity.
const allSigs = ^sim.Sigset(0)

// NewRuntime creates the threads library for proc. The process must
// have no LWPs yet; the runtime creates the initial pool LWP that
// will execute the main thread (the paper: "One lightweight process
// is created by the kernel when a program is started, and it starts
// executing the thread compiled as the main program").
func NewRuntime(kern *sim.Kernel, proc *sim.Process, cfg Config) *Runtime {
	if cfg.MaxAutoLWPs <= 0 {
		cfg.MaxAutoLWPs = 64
	}
	if cfg.DefaultStackSize <= 0 {
		cfg.DefaultStackSize = 64 << 10
	}
	if cfg.StackCacheSize <= 0 {
		cfg.StackCacheSize = 32
	}
	if cfg.ThreadCacheSize == 0 {
		cfg.ThreadCacheSize = 1024
	}
	if cfg.StackMem == nil {
		cfg.StackMem = newFlatStackMem()
	}
	m := &Runtime{
		kern:     kern,
		proc:     proc,
		cfg:      cfg,
		stackMem: cfg.StackMem,
		tr:       cfg.Trace,
		rings:    kern.Rings(),
		threads:  make(map[ThreadID]*Thread),
		zombies:  make(map[ThreadID]*Thread),
		anyWC:    AllocWaitChan(),
		exitedCh: make(chan struct{}),
		disp:     newDispatcher(kern.NCPU()),
	}
	// The library consumes SIGWAITING privately (the hook is its
	// ASLWP stand-in) and grows the pool when the kernel reports
	// that every LWP is blocked indefinitely. The disposition is
	// ignore so the notification never EINTRs the blocked LWPs
	// themselves.
	if !cfg.DisableSigwaiting {
		kern.SetAction(proc, sim.SIGWAITING, sim.SigIgn, nil, 0)
		proc.SetSigwaitingHook(m.onSigwaiting)
	}
	return m
}

// Kernel returns the kernel under this runtime.
func (m *Runtime) Kernel() *sim.Kernel { return m.kern }

// ChaosSource returns the kernel's chaos source (nil when chaos is not
// configured); the library and the synchronization primitives draw
// their perturbation decisions from it.
func (m *Runtime) ChaosSource() *chaos.Source { return m.kern.Chaos() }

// Process returns the kernel process this runtime manages.
func (m *Runtime) Process() *sim.Process { return m.proc }

// Exited is closed when the process has exited and all animator
// goroutines have finished.
func (m *Runtime) Exited() <-chan struct{} { return m.exitedCh }

// Start creates the main thread running fn(arg) on the initial pool
// LWP and returns it. It must be called exactly once.
func (m *Runtime) Start(fn Func, arg any) (*Thread, error) {
	if fn == nil {
		return nil, fmt.Errorf("core: nil main function")
	}
	m.mu.Lock()
	m.tlsFrozen = true // program start freezes TLS size (paper)
	m.mu.Unlock()
	t, err := m.Create(fn, arg, CreateOpts{Flags: ThreadWait})
	if err != nil {
		return nil, err
	}
	if err := m.addPoolLWP(); err != nil {
		return nil, err
	}
	go m.watchProcess()
	return t, nil
}

// watchProcess reaps the runtime when the kernel process dies: any
// user-level-parked threads (invisible to the kernel) are released so
// their goroutines can unwind.
func (m *Runtime) watchProcess() {
	<-m.proc.Exited()
	m.sweepDying()
	m.exitWG.Wait()
	m.exitOnce.Do(func() { close(m.exitedCh) })
}

// Shutdown tears down the runtime's user-level state: all parked
// threads are released to unwind. The kernel process itself is not
// touched; exec uses this to retire the old image's threads.
func (m *Runtime) Shutdown() { m.sweepDying() }

// sweepDying releases every user-parked thread of a dying process.
// Idempotent and safe to call concurrently: each thread is granted at
// most once (killed flag), and the grant is non-blocking.
func (m *Runtime) sweepDying() {
	m.mu.Lock()
	m.dying.Store(true)
	var parked []*Thread
	for _, t := range m.threads {
		if t.state != ThreadRunning && t.state != ThreadZombie && !t.bound() && t.started && !t.killed {
			t.killed = true
			parked = append(parked, t)
		}
	}
	m.disp.clear()
	// Shutdown releases the recycling caches; a dying process makes
	// no more threads. Standby animators are told to exit so exitWG
	// can drain.
	m.stackCache = nil
	m.tlsCache = nil
	m.tcache = nil
	m.slabT, m.slabA, m.slabB, m.slabUsed = nil, nil, nil, 0
	anims := m.idleAnim
	m.idleAnim = nil
	m.mu.Unlock()
	for _, ch := range anims {
		ch <- nil // buffered: the animator is parked receiving
	}
	for _, t := range parked {
		select {
		case t.gate <- struct{}{}: // wakes in park(), observes dying, unwinds
		default:
		}
	}
}

// --- LWP pool ----------------------------------------------------------

// addPoolLWP creates one more LWP for running unbound threads (or
// adopts the configured initial LWP the first time).
func (m *Runtime) addPoolLWP() error {
	var l *sim.LWP
	m.mu.Lock()
	if m.cfg.InitialLWP != nil {
		l = m.cfg.InitialLWP
		m.cfg.InitialLWP = nil
	}
	m.mu.Unlock()
	if l == nil {
		var err error
		l, err = m.kern.NewLWP(m.proc, sim.ClassTS, 30)
		if err != nil {
			return err
		}
	}
	pl := &poolLWP{l: l, back: make(chan struct{}, 1)}
	m.mu.Lock()
	m.pool = append(m.pool, pl)
	m.mu.Unlock()
	m.tr.Add("pool", "pool lwp %d created (%d total)", l.ID(), len(m.pool))
	m.exitWG.Add(1)
	go m.poolLoop(pl)
	return nil
}

// poolLoop is the dispatcher: the paper's Figure 2. The LWP chooses a
// thread, assumes its identity, runs it until it yields back, then
// chooses another.
func (m *Runtime) poolLoop(pl *poolLWP) {
	defer m.exitWG.Done()
	defer func() {
		if r := recover(); r != nil && !sim.IsUnwind(r) {
			panic(r)
		}
		m.kern.ExitLWP(pl.l)
		m.mu.Lock()
		if pl.counted {
			pl.counted = false
			m.retiring--
		}
		m.removePoolLocked(pl)
		m.mu.Unlock()
		m.sweepIfDying()
	}()
	m.kern.Start(pl.l)
	for {
		t := m.nextThread(pl)
		if t == nil {
			return // retired
		}
		m.dispatch(pl, t)
	}
}

func (m *Runtime) removePoolLocked(pl *poolLWP) {
	for i, x := range m.pool {
		if x == pl {
			m.pool = append(m.pool[:i], m.pool[i+1:]...)
			break
		}
	}
	for i, x := range m.idle {
		if x == pl {
			m.idle = append(m.idle[:i], m.idle[i+1:]...)
			break
		}
	}
}

func (m *Runtime) sweepIfDying() {
	if m.proc.Dying() {
		m.sweepDying()
	}
}

// nextThread returns the next thread for pl to run, parking the LWP
// in the kernel while there is no work. A nil return retires the LWP.
func (m *Runtime) nextThread(pl *poolLWP) *Thread {
	for {
		if pl.die.Load() || m.dying.Load() {
			pl.die.Store(true)
			return nil
		}
		// Hot path: pop straight off the dispatcher shard of the
		// CPU this LWP is on — Runtime.mu is not involved while
		// work is available.
		fair := pl.fair
		pl.fair = false
		if t := m.disp.pop(m.kern.Chaos(), pl.l.CurCPU(), fair); t != nil {
			return t
		}
		m.mu.Lock()
		if pl.die.Load() || m.dying.Load() {
			pl.die.Store(true)
			m.mu.Unlock()
			return nil
		}
		m.idle = append(m.idle, pl)
		m.nparked++
		// Re-check after registering idle: a pusher publishes its
		// thread before consulting the idle list (both under mu),
		// so either it saw us here and will unpark, or this load
		// sees its push and we retry instead of parking.
		if m.disp.len() > 0 {
			m.idle = m.idle[:len(m.idle)-1]
			m.nparked--
			m.mu.Unlock()
			continue
		}
		m.mu.Unlock()
		// Arm the idle age-out timer: an LWP that finds no work for
		// LWPAgeTime is retired (ageOut re-checks eligibility under
		// the lock, so a racing enqueue always wins). Chaos can
		// expire the grace period immediately — early expiry is the
		// safe direction, since SIGWAITING regrows the pool.
		var ageTimer ktime.Timer
		if d := m.cfg.LWPAgeTime; d > 0 {
			if m.kern.Chaos().AgeOutEarly() {
				d = time.Nanosecond
			}
			ageTimer = m.kern.Clock().AfterFunc(d, func() { m.ageOut(pl) })
		}
		// Idle LWPs mask everything: an interrupt must be routed
		// to an LWP that is executing a thread with the signal
		// unmasked, never to an idle dispatcher.
		m.kern.SetLWPMask(pl.l, sim.SigSetMask, allSigs)
		m.kern.Park(pl.l)
		if ageTimer != nil {
			ageTimer.Stop()
		}
		m.mu.Lock()
		m.nparked--
		// We may still be on the idle list if the unpark came
		// from a permit; drop ourselves.
		for i, x := range m.idle {
			if x == pl {
				m.idle = append(m.idle[:i], m.idle[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
	}
}

// ageOut retires pl if it is still idle when its age timer fires. It
// removes pl from the idle list before unparking so a concurrent
// enqueue can never hand work to a dying LWP (no lost wakeups).
func (m *Runtime) ageOut(pl *poolLWP) {
	m.mu.Lock()
	idle := false
	for i, x := range m.idle {
		if x == pl {
			m.idle = append(m.idle[:i], m.idle[i+1:]...)
			idle = true
			break
		}
	}
	if !idle || pl.die.Load() || m.dying.Load() || m.concurrency != 0 || len(m.pool)-m.retiring <= 1 {
		if idle {
			m.idle = append(m.idle, pl) // not eligible after all
		}
		m.mu.Unlock()
		return
	}
	pl.die.Store(true)
	pl.counted = true
	m.retiring++
	m.agedOut++
	m.mu.Unlock()
	m.tr.Add("pool", "idle lwp %d aged out (%d remain)", pl.l.ID(), m.PoolSize()-1)
	m.kern.Unpark(pl.l)
}

// AgedOut reports how many pool LWPs idle aging has retired.
func (m *Runtime) AgedOut() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.agedOut
}

// dispatch runs t on pl until t yields control back: Figure 2 steps
// (a) choose thread, (b) assume identity and execute, (c) state saved
// by the thread itself at its park point, (d) loop.
func (m *Runtime) dispatch(pl *poolLWP, t *Thread) {
	m.mu.Lock()
	if t.killed || m.dying.Load() {
		m.mu.Unlock()
		t.grant() // let the goroutine (if any) unwind
		return
	}
	t.state = ThreadRunning
	t.msSwitchLocked(m.kern.Clock().Now(), MSUser)
	t.lwp = pl
	pl.cur = t
	first := !t.started
	t.started = true
	m.mu.Unlock()
	t.onCPU.Store(true)

	// The LWP assumes the thread's identity: its signal mask.
	m.kern.SetLWPMask(pl.l, sim.SigSetMask, t.mask())
	m.rings.Record(pl.l.CurCPU(), trace.EvThreadRun, int(m.proc.PID()), int(pl.l.ID()), int(t.id),
		uint64(t.poppedFrom.Load()+1))

	if first {
		// First dispatch: the thread is about to push its first
		// frame, so commit the top of its (reserved-only) stack and
		// give it an animator goroutine (recycled when possible).
		m.touchStack(t)
		m.startAnimator(t)
	}
	t.grant()
	<-pl.back // thread parked, exited, or unwound
	m.mu.Lock()
	pl.cur = nil
	m.mu.Unlock()
}

// yieldLWP returns control of the calling thread's LWP to its
// dispatcher loop. Called on the thread goroutine with the thread
// already transitioned off the LWP.
func yieldLWP(pl *poolLWP) {
	pl.back <- struct{}{}
}

// --- concurrency control ------------------------------------------------

// SetConcurrency implements thread_setconcurrency(n): it sets the
// number of LWPs available to run unbound threads. n == 0 restores
// automatic (SIGWAITING-driven) sizing.
func (m *Runtime) SetConcurrency(n int) error {
	if n < 0 {
		return fmt.Errorf("core: negative concurrency %d", n)
	}
	m.mu.Lock()
	m.concurrency = n
	have := len(m.pool) - m.retiring
	var grow int
	if n > 0 {
		grow = n - have
		if grow < 0 {
			// Retire surplus idle LWPs: mark and unpark them.
			shrink := -grow
			for _, pl := range m.idle {
				if shrink == 0 {
					break
				}
				if !pl.die.Load() {
					pl.die.Store(true)
					pl.counted = true
					m.retiring++
					shrink--
					m.kern.Unpark(pl.l)
				}
			}
			// Any remainder retires lazily: mark busy LWPs.
			for _, pl := range m.pool {
				if shrink == 0 {
					break
				}
				if !pl.die.Load() {
					pl.die.Store(true)
					pl.counted = true
					m.retiring++
					shrink--
				}
			}
		}
	}
	m.mu.Unlock()
	for i := 0; i < grow; i++ {
		if err := m.addPoolLWP(); err != nil {
			return err
		}
	}
	return nil
}

// Concurrency reports the current number of pool LWPs.
func (m *Runtime) Concurrency() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pool) - m.retiring
}

// SIGWAITING growth backoff bounds: the first failed spawn waits
// minGrowBackoff before retrying; consecutive failures double the
// wait up to maxGrowBackoff.
const (
	minGrowBackoff = time.Millisecond
	maxGrowBackoff = 128 * time.Millisecond
)

// onSigwaiting grows the pool when the kernel reports that all LWPs
// are blocked in indefinite waits and runnable threads exist — the
// deadlock-avoidance mechanism of the paper ("The threads package can
// use the receipt of SIGWAITING to cause extra LWPs to be created as
// required to avoid deadlock").
//
// Growth is failure-aware: when the kernel refuses an LWP (EAGAIN at
// the rlimit, transient chaos fault) the pool backs off with bounded
// exponential delay rather than re-spawning on every SIGWAITING, and
// arms a retry timer so growth resumes even if no further SIGWAITING
// arrives (the kernel's edge trigger will not repost while the
// blocked set is unchanged).
func (m *Runtime) onSigwaiting() {
	m.mu.Lock()
	need := m.disp.len() > 0 && !m.dying.Load() &&
		len(m.pool)-m.retiring < m.cfg.MaxAutoLWPs &&
		m.concurrency == 0
	now := m.kern.Clock().Now()
	if need && m.growBackoff > 0 && now < m.growNextAt {
		m.growDeferred++
		m.ensureGrowRetryLocked(m.growNextAt - now)
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	if !need {
		return
	}
	m.tr.Add("pool", "SIGWAITING: growing LWP pool")
	if err := m.addPoolLWP(); err != nil {
		m.growthFailed(now, err)
		return
	}
	m.mu.Lock()
	m.growBackoff = 0
	m.mu.Unlock()
}

// growthFailed records a failed SIGWAITING spawn: double the backoff
// (bounded) and make sure a retry fires after it elapses.
func (m *Runtime) growthFailed(now time.Duration, err error) {
	m.mu.Lock()
	switch {
	case m.growBackoff == 0:
		m.growBackoff = minGrowBackoff
	case m.growBackoff < maxGrowBackoff:
		m.growBackoff *= 2
	}
	d := m.growBackoff
	m.growNextAt = now + d
	m.growFailures++
	m.ensureGrowRetryLocked(d)
	m.mu.Unlock()
	m.tr.Add("pool", "SIGWAITING growth failed (%v); backing off %v", err, d)
}

// ensureGrowRetryLocked arms at most one pending retry timer that
// re-evaluates pool growth once the backoff window closes.
func (m *Runtime) ensureGrowRetryLocked(d time.Duration) {
	if m.growRetryArmed || m.dying.Load() {
		return
	}
	m.growRetryArmed = true
	m.kern.Clock().AfterFunc(d, func() {
		m.mu.Lock()
		m.growRetryArmed = false
		m.mu.Unlock()
		m.onSigwaiting()
	})
}

// GrowthStats reports the SIGWAITING degradation counters: spawn
// failures, growth attempts absorbed by the backoff window, and the
// current backoff (0 when the last spawn succeeded).
func (m *Runtime) GrowthStats() (failures, deferred uint64, backoff time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.growFailures, m.growDeferred, m.growBackoff
}

// PoolSize reports the number of pool LWPs (for tests and mtstat).
func (m *Runtime) PoolSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pool)
}

// RunnableThreads reports the length of the user-level run queue
// (lock-free: the dispatcher keeps a global count).
func (m *Runtime) RunnableThreads() int {
	return m.disp.len()
}

// LockPolicy reports the process-default lock policy configured for
// this runtime (tsync's Policy constants; 0 = adaptive default).
func (m *Runtime) LockPolicy() int { return m.cfg.LockPolicy }

// recordLockWaitLocked appends one completed MSLock episode to the
// sample ring. Runtime.mu is held (called from msSwitchLocked).
func (m *Runtime) recordLockWaitLocked(d time.Duration) {
	n := m.cfg.LockWaitSampleCap
	if n <= 0 {
		return
	}
	if len(m.lockWaitRing) < n {
		m.lockWaitRing = append(m.lockWaitRing, d)
	} else {
		m.lockWaitRing[m.lockWaitPos] = d
		m.lockWaitPos = (m.lockWaitPos + 1) % n
	}
	m.lockWaitN++
}

// LockWaitSamples returns a copy of the retained per-episode lock-wait
// intervals (most recent LockWaitSampleCap episodes, unordered beyond
// ring rotation) and the total number of episodes observed. The
// percentile source for the lock-policy shootout (mtbench fig 12).
func (m *Runtime) LockWaitSamples() ([]time.Duration, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]time.Duration, len(m.lockWaitRing))
	copy(out, m.lockWaitRing)
	return out, m.lockWaitN
}
