package core

import (
	"sort"
	"time"

	"sunosmt/internal/sim"
	"sunosmt/internal/trace"
)

// Deadman watchdog: a liveness monitor built from data the runtime
// already keeps — LWP and thread microstate residency plus the
// per-CPU event rings. It never runs on its own goroutine; Health is
// a pure observation pass computed on read (like the deadlock
// detector), so watchdog-enabled schedules stay seed-replayable. The
// report is surfaced through /proc/<pid>/health and `mtstat -health`.

// defaultWatchdogDeadline applies when Config.WatchdogDeadline is 0.
const defaultWatchdogDeadline = time.Second

// LWPHealth describes one LWP flagged by the watchdog: it has held a
// CPU continuously for longer than the deadline (a runaway spin, or a
// thread that stopped hitting checkpoints).
type LWPHealth struct {
	ID       sim.LWPID
	CPU      int           // the CPU it occupies (-1 if it just moved)
	OnCPUFor time.Duration // continuous on-CPU residency
	// Dispatches counts dispatch events still in that CPU's event
	// ring — context for how starved the CPU's queue is (a stuck
	// LWP shows a ring with no recent dispatches). 0 when event
	// tracing is off.
	Dispatches int
}

// ThreadHealth describes one thread flagged by the watchdog: blocked
// on a synchronization object or sleeping past the deadline.
type ThreadHealth struct {
	ID       ThreadID
	State    Microstate    // MSLock or MSSleep
	StuckFor time.Duration // residency in that state
	// BlockedOn is the published wait-for edge ("kind:name"), ""
	// for a plain event sleep.
	BlockedOn string
}

// HealthReport is one watchdog pass over a process.
type HealthReport struct {
	Deadline     time.Duration
	StuckLWPs    []LWPHealth
	StuckThreads []ThreadHealth
}

// Healthy reports whether the pass flagged nothing.
func (r HealthReport) Healthy() bool {
	return len(r.StuckLWPs) == 0 && len(r.StuckThreads) == 0
}

// Health runs one watchdog pass: every LWP whose continuous on-CPU
// residency exceeds the deadline, and every thread blocked (MSLock)
// or sleeping (MSSleep) past it, is flagged. deadline <= 0 selects
// the configured WatchdogDeadline (default 1s). Results are sorted by
// id so repeated passes are comparable.
func (m *Runtime) Health(deadline time.Duration) HealthReport {
	if deadline <= 0 {
		deadline = m.cfg.WatchdogDeadline
	}
	if deadline <= 0 {
		deadline = defaultWatchdogDeadline
	}
	rep := HealthReport{Deadline: deadline}
	for _, l := range m.proc.LWPs() {
		if d := l.OnCPUFor(); d > deadline {
			rep.StuckLWPs = append(rep.StuckLWPs, LWPHealth{
				ID: l.ID(), CPU: l.CurCPU(), OnCPUFor: d,
			})
		}
	}
	if rings := m.kern.Rings(); rings != nil && len(rep.StuckLWPs) > 0 {
		recs := rings.Kinds(trace.EvDispatch)
		for i := range rep.StuckLWPs {
			for _, r := range recs {
				if int(r.CPU) == rep.StuckLWPs[i].CPU {
					rep.StuckLWPs[i].Dispatches++
				}
			}
		}
	}
	m.mu.Lock()
	now := m.kern.Clock().Now()
	for _, t := range m.threads {
		a := t.aux
		if a == nil || (a.msState != MSLock && a.msState != MSSleep) {
			continue
		}
		d := now - a.msMark
		if d <= deadline {
			continue
		}
		th := ThreadHealth{ID: t.id, State: a.msState, StuckFor: d}
		if bi := t.blocked.Load(); bi != nil {
			th.BlockedOn = bi.Kind + ":" + bi.Name
		}
		rep.StuckThreads = append(rep.StuckThreads, th)
	}
	m.mu.Unlock()
	sort.Slice(rep.StuckLWPs, func(i, j int) bool { return rep.StuckLWPs[i].ID < rep.StuckLWPs[j].ID })
	sort.Slice(rep.StuckThreads, func(i, j int) bool { return rep.StuckThreads[i].ID < rep.StuckThreads[j].ID })
	return rep
}
