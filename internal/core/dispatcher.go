package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sunosmt/internal/chaos"
)

// dispatcher is the sharded ready queue of unbound runnable threads:
// one priority runQueue per simulated CPU, each under its own lock, so
// ready-queue traffic no longer serializes on Runtime.mu. A pool LWP
// pops from the shard of the CPU it is running on (cache-affine, and
// usually the same shard its threads were queued to), and steals from
// a sibling shard when the sibling advertises strictly higher-priority
// work or its own shard is empty — the same affinity-first,
// priority-steal policy the kernel dispatcher applies to LWPs.
//
// Locking: each shard's queue (including the intrusive rq fields of
// the threads linked on it) is guarded by that shard's mutex. Shard
// locks are leaves — the dispatcher never takes Runtime.mu, while
// Runtime.mu holders may take a shard lock (push from enqueue,
// remove from thread_stop). The advertised per-shard top level and the
// global count are atomics, so steal decisions and emptiness checks
// read no locks at all.
//
// Lost wakeups are prevented by ordering, not by a shared lock: a
// pusher publishes the thread (shard-linked, total incremented) before
// consulting the idle-LWP list under Runtime.mu, and a parking LWP
// registers itself idle under Runtime.mu before re-checking the total;
// whichever side acts second observes the other.
type dispatcher struct {
	shards []dispShard
	total  atomic.Int64  // queued threads across all shards
	rr     atomic.Uint32 // round-robin placement for unplaced threads
	seq    atomic.Uint64 // global push sequence, stamps Thread.rqSeq
	// maxTop over-approximates the highest advertised level of any
	// shard: raised by every push/requeue that could raise a shard's
	// top, lowered only by a full scan in pop. A popper whose own top
	// matches maxTop pops its own shard without scanning the siblings
	// at all, so the hot path is O(1) in the shard count. maxTop may
	// be stale in either direction for at most a scan period
	// (scanEvery pops per popper), never longer: stale-high forces
	// scans which lower it, stale-low is corrected by the next
	// periodic scan or raised by the next push.
	maxTop atomic.Int32
}

// stealAge bounds cross-shard unfairness among equal priorities: a
// popper whose own shard has work at the same level steals a sibling's
// head only once that head has been passed over by this many newer
// pushes. Affinity wins while queues turn over at similar rates (no
// cross-shard traffic in the steady state), but a shard no LWP is
// affine to — fewer pool LWPs than CPUs — drains within stealAge
// pushes plus a scan period instead of starving.
const stealAge = 128

// scanEvery makes every scanEvery-th pop by a given popper take the
// full-scan path even when its own shard looks best, so aged steals
// and a stale-low maxTop are noticed within a bounded number of pops.
// Must be a power of two.
const scanEvery = 32

// dispShard is one per-CPU ready-queue shard.
type dispShard struct {
	mu sync.Mutex
	q  runQueue
	// top and topSeq advertise the shard's highest occupied level
	// (-1 empty) and the push sequence of the head thread there, so
	// poppers compare shards without taking their locks.
	top    atomic.Int32
	topSeq atomic.Uint64
	// tick counts pops by poppers affine to this shard, to schedule
	// their periodic full scans.
	tick atomic.Uint32

	// Counters; guarded by mu.
	pushes uint64
	pops   uint64
	stolen uint64 // pops taken by a popper affine to another shard
}

// publish refreshes the shard's advertised top level and head
// sequence. Caller holds s.mu.
func (s *dispShard) publish() {
	lvl := s.q.topLevel()
	s.top.Store(int32(lvl))
	if lvl >= 0 {
		s.topSeq.Store(s.q.qs[lvl].head.rqSeq)
	} else {
		s.topSeq.Store(0)
	}
}

func newDispatcher(n int) *dispatcher {
	if n < 1 {
		n = 1
	}
	d := &dispatcher{shards: make([]dispShard, n)}
	d.maxTop.Store(-1)
	for i := range d.shards {
		d.shards[i].top.Store(-1)
	}
	return d
}

// raiseTop lifts the advertised global maximum to lvl if it is behind.
func (d *dispatcher) raiseTop(lvl int32) {
	for {
		cur := d.maxTop.Load()
		if lvl <= cur || d.maxTop.CompareAndSwap(cur, lvl) {
			return
		}
	}
}

func (d *dispatcher) nshards() int { return len(d.shards) }

// len reports the queued-thread count. Advisory outside the push/park
// protocol: it may be stale by the time the caller acts on it.
func (d *dispatcher) len() int { return int(d.total.Load()) }

// push queues a runnable thread on its affinity shard (the shard it
// last ran from), or round-robin when it has none yet.
func (d *dispatcher) push(t *Thread) {
	si := int(t.shard.Load())
	if si < 0 || si >= len(d.shards) {
		si = int(d.rr.Add(1)-1) % len(d.shards)
	}
	s := &d.shards[si]
	s.mu.Lock()
	t.shard.Store(int32(si))
	t.rqSeq = d.seq.Add(1)
	s.q.push(t)
	s.pushes++
	s.publish()
	d.raiseTop(s.top.Load())
	d.total.Add(1)
	s.mu.Unlock()
}

// pop removes the best visible thread for a popper affine to shard
// hint: its own shard's top, unless a sibling advertises strictly
// higher-priority work, its own shard is empty, or an equal-priority
// sibling head has gone unserved past stealAge — in those cases it
// steals. Per-shard queues thus preserve the shared queue's global
// priority order, with FIFO-among-equals exact per shard and bounded
// (by stealAge pushes) across shards. With fair set, affinity is
// ignored and the globally oldest thread at the best priority wins —
// the exact order of the old shared queue, used after a thr_yield so
// the yielder cannot outrun earlier-queued equals on other shards.
// Returns nil only when every shard came up empty.
//
// The hot path is O(1) in the shard count: when the popper's own top
// matches the advertised global maximum it pops its own shard without
// reading any sibling. The full sibling scan runs only when a sibling
// may hold better work (maxTop above own), the own shard is empty, the
// pop is fair, or the popper's periodic scanEvery tick comes up (which
// bounds how long an aged foreign equal can go unnoticed).
func (d *dispatcher) pop(src *chaos.Source, hint int, fair bool) *Thread {
	if d.total.Load() == 0 {
		return nil
	}
	n := len(d.shards)
	if hint < 0 || hint >= n {
		hint = 0
	}
	own := &d.shards[hint]
	if ownLvl := int(own.top.Load()); !fair && ownLvl >= 0 &&
		int(d.maxTop.Load()) <= ownLvl && own.tick.Add(1)%scanEvery != 0 {
		if t := d.popShard(hint, src, hint); t != nil {
			return t
		}
	}
	ownLvl := int(own.top.Load())
	ownSeq := own.topSeq.Load()
	observedMax := d.maxTop.Load()
	victim, vLvl, vSeq := -1, -1, uint64(0)
	for i := 0; i < n; i++ {
		if i == hint {
			continue
		}
		lvl := int(d.shards[i].top.Load())
		if lvl < 0 {
			continue
		}
		seq := d.shards[i].topSeq.Load()
		if lvl > vLvl || (lvl == vLvl && seq < vSeq) {
			victim, vLvl, vSeq = i, lvl, seq
		}
	}
	// Lower a stale-high maxTop so later pops regain the fast path. The
	// CAS fails if a concurrent push raised it meanwhile — never clobber
	// a raise with scan results that predate it.
	trueMax := ownLvl
	if vLvl > trueMax {
		trueMax = vLvl
	}
	if int32(trueMax) < observedMax {
		d.maxTop.CompareAndSwap(observedMax, int32(trueMax))
	}
	first := hint
	if victim >= 0 {
		switch {
		case vLvl > ownLvl:
			first = victim // strictly better work: priority steal
		case vLvl == ownLvl && vSeq+stealAge < ownSeq:
			first = victim // equal work passed over too long: aged steal
		case fair && vLvl == ownLvl && vSeq < ownSeq:
			first = victim // yield handoff: oldest equal anywhere wins
		}
	}
	if ownLvl < 0 && victim < 0 {
		return nil
	}
	if t := d.popShard(first, src, hint); t != nil {
		return t
	}
	// The chosen shard was drained between the advertised read and
	// the lock; sweep the rest round-robin from our own.
	for i := 0; i < n; i++ {
		si := (hint + i) % n
		if si == first || d.shards[si].top.Load() < 0 {
			continue
		}
		if t := d.popShard(si, src, hint); t != nil {
			return t
		}
	}
	return nil
}

// popShard pops shard si's best thread for a popper affine to hint.
func (d *dispatcher) popShard(si int, src *chaos.Source, hint int) *Thread {
	s := &d.shards[si]
	s.mu.Lock()
	t := s.q.pop(src)
	if t != nil {
		s.pops++
		if si != hint {
			s.stolen++
		}
		s.publish()
		d.total.Add(-1)
		// Affinity follows the popper: the thread is about to run
		// on hint's CPU, so its next wakeup queues there.
		t.poppedFrom.Store(int32(si))
		t.shard.Store(int32(hint))
	}
	s.mu.Unlock()
	return t
}

// remove takes t off its shard if queued (thread_stop, timed-wait
// cancel, teardown). The shard index is re-read under the shard lock:
// a concurrent pop-and-repush can move t between the load and the
// lock, in which case the removal retries against the new shard.
func (d *dispatcher) remove(t *Thread) bool {
	for {
		si := int(t.shard.Load())
		if si < 0 || si >= len(d.shards) {
			return false
		}
		s := &d.shards[si]
		s.mu.Lock()
		if int(t.shard.Load()) != si {
			s.mu.Unlock()
			continue
		}
		if !t.rqOn {
			s.mu.Unlock()
			return false
		}
		s.q.unlink(t)
		s.publish()
		d.total.Add(-1)
		s.mu.Unlock()
		return true
	}
}

// requeue re-levels t on its shard after an effective-priority change
// (thread_priority, turnstile inheritance), so a queued thread moves
// to its new level immediately rather than at some later pop. No-op
// when t is not queued.
func (d *dispatcher) requeue(t *Thread) {
	for {
		si := int(t.shard.Load())
		if si < 0 || si >= len(d.shards) {
			return
		}
		s := &d.shards[si]
		s.mu.Lock()
		if int(t.shard.Load()) != si {
			s.mu.Unlock()
			continue
		}
		if t.rqOn {
			s.q.unlink(t)
			s.q.push(t)
			s.publish()
			d.raiseTop(s.top.Load())
		}
		s.mu.Unlock()
		return
	}
}

// clear empties every shard (process teardown). The threads' intrusive
// links are reset by runQueue.clear; their states are owned by the
// dying sweep.
func (d *dispatcher) clear() {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		d.total.Add(int64(-s.q.n))
		s.q.clear()
		s.publish()
		s.mu.Unlock()
	}
}

// ShardStat is one ready-queue shard's row of DispatchStats: its
// instantaneous depth plus monotonic push/pop/steal counters.
type ShardStat struct {
	Shard  int
	Depth  int
	Pushes uint64
	Pops   uint64
	// Stolen counts pops taken from this shard by an LWP affine to a
	// different shard — the work-stealing rate seen from the victim.
	Stolen uint64
}

// DispatchStats reports the per-shard state of the user-level ready
// queue for mtstat and /proc.
func (m *Runtime) DispatchStats() []ShardStat {
	out := make([]ShardStat, len(m.disp.shards))
	for i := range m.disp.shards {
		s := &m.disp.shards[i]
		s.mu.Lock()
		out[i] = ShardStat{
			Shard:  i,
			Depth:  s.q.n,
			Pushes: s.pushes,
			Pops:   s.pops,
			Stolen: s.stolen,
		}
		s.mu.Unlock()
	}
	return out
}

// DispatchBench measures the ready-queue layer in isolation: workers
// goroutines pass tokens through a dispatcher with nshards shards,
// each worker popping from its affine shard and re-pushing what it
// popped, iters operations per worker. With nshards == 1 every worker
// contends on a single queue lock — the pre-sharding configuration —
// so the nshards == NCPU vs nshards == 1 ratio is the dispatch
// throughput gain of sharding. Returns the wall-clock elapsed.
//
// GOMAXPROCS is raised to the worker count for the duration so the
// workers actually contend (with true parallelism when the host has
// the cores; via OS preemption of lock holders when it does not —
// either way, the serialization the shards remove is allowed to
// manifest) and restored before returning.
func DispatchBench(nshards, workers, iters int) time.Duration {
	d := newDispatcher(nshards)
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hint := w % d.nshards()
			tok := &Thread{}
			// One shared level: distinct levels would turn every pop
			// into a priority steal from the max-level shard and
			// measure that contention instead of the sharding.
			tok.effPrio.Store(1)
			tok.shard.Store(int32(hint))
			d.push(tok)
			for i := 0; i < iters; {
				if t := d.pop(nil, hint, false); t != nil {
					d.push(t)
					i++
				}
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}
