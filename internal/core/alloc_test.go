package core

import (
	"sync/atomic"
	"testing"
)

// These tests pin the zero-alloc thread lifecycle: in steady state
// (caches warm) create/exit, park/unpark, and thread_wait reap must
// not allocate, and a recycled Thread shell must carry nothing of its
// predecessor — in particular no TSD values.

// TestCreateWaitZeroAllocSteadyState pins the full create → run →
// exit → wait round trip at zero heap allocations once the stack
// cache and Thread freelist are warm. (The child's goroutine is
// recycled by the Go runtime's g-freelist, so it does not charge the
// loop either.)
func TestCreateWaitZeroAllocSteadyState(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, _ any) {
		cycle := func() {
			c, err := self.Runtime().Create(func(*Thread, any) {}, nil, CreateOpts{Flags: ThreadWait})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := self.Wait(c.ID()); err != nil {
				t.Error(err)
			}
		}
		for i := 0; i < 64; i++ {
			cycle() // warm the stack cache, TLS cache, and freelist
		}
		if avg := testing.AllocsPerRun(200, cycle); avg > 0 {
			t.Errorf("create/wait cycle allocates %.1f objects/op, want 0", avg)
		}
	})
	waitExit(t, m)
}

// TestCreateDetachedZeroAllocSteadyState pins the unwaited
// (detached) lifecycle, where retire recycles the shell directly.
func TestCreateDetachedZeroAllocSteadyState(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, _ any) {
		var ran atomic.Int64
		body := func(*Thread, any) { ran.Add(1) }
		cycle := func() {
			if _, err := self.Runtime().Create(body, nil, CreateOpts{}); err != nil {
				t.Error(err)
				return
			}
			self.Yield() // let the child run to completion on this LWP
		}
		for i := 0; i < 64; i++ {
			cycle()
		}
		before := ran.Load()
		if avg := testing.AllocsPerRun(200, cycle); avg > 0 {
			t.Errorf("detached create cycle allocates %.1f objects/op, want 0", avg)
		}
		if ran.Load() == before {
			t.Error("children did not run during the measured loop")
		}
	})
	waitExit(t, m)
}

// TestParkUnparkZeroAlloc pins the park/unpark ping-pong — the
// context-switch hot path — at zero allocations.
func TestParkUnparkZeroAlloc(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, _ any) {
		var done atomic.Bool
		peer, err := self.Runtime().Create(func(c *Thread, _ any) {
			for {
				c.Park()
				if done.Load() {
					return
				}
				self.Unpark()
			}
		}, nil, CreateOpts{Flags: ThreadWait})
		if err != nil {
			t.Fatal(err)
		}
		cycle := func() {
			peer.Unpark()
			self.Park()
		}
		for i := 0; i < 64; i++ {
			cycle()
		}
		if avg := testing.AllocsPerRun(200, cycle); avg > 0 {
			t.Errorf("park/unpark round trip allocates %.1f objects/op, want 0", avg)
		}
		done.Store(true)
		peer.Unpark()
		if _, err := self.Wait(peer.ID()); err != nil {
			t.Error(err)
		}
	})
	waitExit(t, m)
}

// TestMassCreateColdPathAllocBound pins the slab-batched cold path:
// creating a thread with an empty freelist must cost at most ~1 host
// allocation — the per-thread gate channel — because the Thread
// shell, aux block, and sleep-queue bucket are carved from slabs of
// threadSlabBatch, whose refill allocations amortize to a fraction of
// an object per thread. Before the batching, each cold create paid
// for every one of those objects (and their internal slices)
// individually. The created threads are kept un-run so no shell is
// ever recycled: every measured create takes the cold path.
func TestMassCreateColdPathAllocBound(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, _ any) {
		r := self.Runtime()
		ids := make([]ThreadID, 0, 2048)
		cycle := func() {
			c, err := r.Create(func(*Thread, any) {}, nil, CreateOpts{Flags: ThreadWait})
			if err != nil {
				t.Error(err)
				return
			}
			ids = append(ids, c.ID())
		}
		for i := 0; i < 64; i++ {
			cycle() // settle one-time table growth outside the window
		}
		if avg := testing.AllocsPerRun(1000, cycle); avg > 1.5 {
			t.Errorf("cold-path create allocates %.2f objects/thread, want <= 1.5 (gate channel + amortized slab refills)", avg)
		}
		for r.RunnableThreads() > 0 {
			self.Yield()
		}
		for _, id := range ids {
			if _, err := self.Wait(id); err != nil {
				t.Error(err)
			}
		}
	})
	waitExit(t, m)
}

// TestThreadShellRecycled verifies the freelist actually recycles: a
// create after an unwaited exit reuses the same Thread struct.
func TestThreadShellRecycled(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, _ any) {
		r := self.Runtime()
		c1, err := r.Create(func(*Thread, any) {}, nil, CreateOpts{})
		if err != nil {
			t.Fatal(err)
		}
		id1 := c1.ID() // recorded before the shell can be recycled
		self.Yield()   // c1 runs, exits, and parks its shell on the freelist
		r.mu.Lock()
		cached := len(r.tcache)
		r.mu.Unlock()
		if cached == 0 {
			t.Fatal("exited detached thread was not parked on the freelist")
		}
		c2, err := r.Create(func(*Thread, any) {}, nil, CreateOpts{Flags: ThreadWait})
		if err != nil {
			t.Fatal(err)
		}
		// c1 and c2 alias the same recycled struct, so the predecessor's
		// ID must come from before recycling; the new incarnation gets
		// a fresh ID.
		if c1 != c2 {
			t.Error("second create did not recycle the exited thread's shell")
		} else if c2.ID() == id1 {
			t.Error("recycled shell kept its predecessor's thread ID")
		}
		if _, err := self.Wait(c2.ID()); err != nil {
			t.Error(err)
		}
	})
	waitExit(t, m)
}

// TestRecycledThreadSeesNoPredecessorTSD: a recycled thread must
// never observe a predecessor's TSD values — including values in the
// slack capacity of the recycled slot slice.
func TestRecycledThreadSeesNoPredecessorTSD(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, _ any) {
		r := self.Runtime()
		var keys []TSDKey
		for i := 0; i < 8; i++ {
			keys = append(keys, r.CreateTSDKey(nil))
		}
		first, err := r.Create(func(c *Thread, _ any) {
			// Bind every key, then clear the last few so the slot
			// slice's len shrinks below its cap on the next reuse.
			for i, k := range keys {
				if err := c.SetSpecific(k, 1000+i); err != nil {
					t.Error(err)
				}
			}
		}, nil, CreateOpts{})
		if err != nil {
			t.Fatal(err)
		}
		self.Yield() // first exits; shell (and TSD block) recycled
		second, err := r.Create(func(c *Thread, _ any) {
			for _, k := range keys {
				if v := c.GetSpecific(k); v != nil {
					t.Errorf("recycled thread observes predecessor TSD value %v for key %d", v, k)
				}
			}
			// Growing into the recycled capacity must also see nil.
			if err := c.SetSpecific(keys[2], "mine"); err != nil {
				t.Error(err)
			}
			if v := c.GetSpecific(keys[7]); v != nil {
				t.Errorf("slack capacity leaked predecessor value %v", v)
			}
		}, nil, CreateOpts{Flags: ThreadWait})
		if err != nil {
			t.Fatal(err)
		}
		if first != second {
			t.Log("note: shell not recycled; test still validates fresh-thread TSD")
		}
		if _, err := self.Wait(second.ID()); err != nil {
			t.Error(err)
		}
	})
	waitExit(t, m)
}

// TestTSDDestructorOrdering: destructors run in ascending key order.
func TestTSDDestructorOrdering(t *testing.T) {
	var order []int
	m := rt(t, 1, Config{}, func(self *Thread, _ any) {
		r := self.Runtime()
		var keys []TSDKey
		for i := 0; i < 5; i++ {
			i := i
			keys = append(keys, r.CreateTSDKey(func(v any) {
				order = append(order, i)
			}))
		}
		c, err := r.Create(func(c *Thread, _ any) {
			// Bind in scrambled order; destruction order must still
			// be by key, not by binding sequence.
			for _, i := range []int{3, 0, 4, 2, 1} {
				if err := c.SetSpecific(keys[i], i); err != nil {
					t.Error(err)
				}
			}
		}, nil, CreateOpts{Flags: ThreadWait})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := self.Wait(c.ID()); err != nil {
			t.Error(err)
		}
	})
	waitExit(t, m)
	if len(order) != 5 {
		t.Fatalf("ran %d destructors, want 5 (order %v)", len(order), order)
	}
	for i, k := range order {
		if k != i {
			t.Fatalf("destructor order %v, want ascending key order", order)
		}
	}
}

// TestConcurrentTSDCreateAndSet is the regression test for the key
// table race: CreateTSDKey publishing new keys while other threads
// validate and set concurrently. Run under -race this catches any
// unsynchronized key-table access.
func TestConcurrentTSDCreateAndSet(t *testing.T) {
	m := rt(t, 4, Config{}, func(self *Thread, _ any) {
		r := self.Runtime()
		k0 := r.CreateTSDKey(nil)
		var stop atomic.Bool
		var ids []ThreadID
		for w := 0; w < 3; w++ {
			c, err := r.Create(func(c *Thread, _ any) {
				for i := 0; !stop.Load(); i++ {
					if err := c.SetSpecific(k0, i); err != nil {
						t.Error(err)
						return
					}
					if v := c.GetSpecific(k0); v != i {
						t.Errorf("TSD readback = %v, want %d", v, i)
						return
					}
					c.Yield()
				}
			}, nil, CreateOpts{Flags: ThreadWait})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, c.ID())
		}
		for i := 0; i < 200; i++ {
			k := r.CreateTSDKey(nil)
			if err := self.SetSpecific(k, i); err != nil {
				t.Error(err)
			}
			self.Yield()
		}
		stop.Store(true)
		for _, id := range ids {
			if _, err := self.Wait(id); err != nil {
				t.Error(err)
			}
		}
	})
	waitExit(t, m)
}
