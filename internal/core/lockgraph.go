// Wait-for graph maintenance and deadlock detection.
//
// Every blocking synchronization primitive publishes, just before it
// parks, *what* its thread is waiting for (a BlockInfo) and a way to
// resolve *who* currently owns that object. That gives the library a
// wait-for graph: thread -> sync object -> owning thread, possibly in
// another process (shared variables record (pid, tid) owners in their
// mapped words). Two consumers walk it:
//
//   - error-check mutexes call WouldDeadlock at lock time and return
//     EDEADLK instead of parking into a cycle;
//   - DetectDeadlocks walks the whole graph across runtimes in one
//     pass and reports every cycle, surfaced through /proc lstatus
//     and mtstat -locks.
//
// Locking: a thread's BlockInfo is an atomic pointer, so publishing
// an edge on the park/unpark hot path never touches Runtime.mu. Owner
// resolution closures take the sync object's own lock, so the walkers
// snapshot the edges first and resolve owners afterwards.
package core

import (
	"fmt"
	"sort"

	"sunosmt/internal/sim"
	"sunosmt/internal/trace"
)

// OwnerRef identifies the thread that owns a synchronization object.
// PID zero means "a thread in the caller's own process" (local
// primitives do not know their pid); cross-process owners carry the
// real pid decoded from the shared owner word.
type OwnerRef struct {
	PID sim.PID
	TID ThreadID
}

// BlockInfo describes what a blocked thread is waiting for. Owner
// resolves the object's current owner at walk time; ok=false when the
// object has no single owner (condition variables, semaphores with no
// tracked holder), which simply ends the wait-for chain there.
type BlockInfo struct {
	Kind  string // "mutex", "rwlock", "sema", "cond"
	Name  string
	Owner func() (OwnerRef, bool)
	// Ts, when non-nil, is the blocking object's turnstile: the
	// priority-inheritance walk (Thread.WillPriority) wills the
	// acquirer's effective priority to its owner chain through it.
	// Objects with no single local owner (cond, sema, process-shared
	// variants) leave it nil, which ends the chain there.
	Ts *Turnstile
	// Policy names the blocking object's lock/wake policy ("adaptive",
	// "ticket", "queue", "parkinglot"); empty for objects without one.
	// Surfaced through /proc lstatus and mtstat -locks.
	Policy string
}

// NoteBlocked publishes that the thread is about to park waiting for
// the described object. Paired with NoteUnblocked.
func (t *Thread) NoteBlocked(bi *BlockInfo) {
	t.blocked.Store(bi)
	t.m.rings.Record(-1, trace.EvLockBlock, int(t.m.proc.PID()), 0, int(t.id), 0)
}

// NoteUnblocked clears the thread's blocked-on record.
func (t *Thread) NoteUnblocked() {
	t.blocked.Store(nil)
}

// BlockedOn returns the thread's current blocked-on record (nil when
// it is not blocked on a synchronization object).
func (t *Thread) BlockedOn() *BlockInfo {
	return t.blocked.Load()
}

// LockWaiter is one resolved wait-for edge: thread TID is blocked on
// the named object, owned (if HasOwner) by Owner.
type LockWaiter struct {
	TID      ThreadID
	Kind     string
	Name     string
	Policy   string // the object's lock policy; empty when it has none
	Owner    OwnerRef
	HasOwner bool
}

// LockWaiters snapshots the runtime's outgoing wait-for edges. Owner
// closures are resolved after Runtime.mu is released.
func (m *Runtime) LockWaiters() []LockWaiter {
	type raw struct {
		tid ThreadID
		bi  *BlockInfo
	}
	m.mu.Lock()
	var rs []raw
	for id, t := range m.threads {
		if bi := t.blocked.Load(); bi != nil {
			rs = append(rs, raw{id, bi})
		}
	}
	m.mu.Unlock()
	out := make([]LockWaiter, 0, len(rs))
	for _, r := range rs {
		w := LockWaiter{TID: r.tid, Kind: r.bi.Kind, Name: r.bi.Name, Policy: r.bi.Policy}
		if r.bi.Owner != nil {
			if ref, ok := r.bi.Owner(); ok {
				w.Owner, w.HasOwner = ref, true
			}
		}
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TID < out[j].TID })
	return out
}

// WouldDeadlock reports whether blocking t on an object currently
// owned by owner would close a wait-for cycle inside this process.
// Error-check mutexes call it at lock time (EDEADLK). The walk stops
// at cross-process owners — those cycles are the system-wide
// detector's job. Callers must hold no sync-object locks.
func (m *Runtime) WouldDeadlock(t, owner *Thread) bool {
	cur := owner
	visited := make(map[ThreadID]bool)
	for cur != nil && !visited[cur.id] {
		if cur == t {
			return true
		}
		visited[cur.id] = true
		bi := cur.blocked.Load()
		if bi == nil || bi.Owner == nil {
			return false
		}
		ref, ok := bi.Owner()
		if !ok || ref.PID != 0 {
			return false
		}
		m.mu.Lock()
		cur = m.threads[ref.TID]
		m.mu.Unlock()
	}
	return false
}

// DeadlockNode is one thread in a detected cycle, annotated with the
// object it is blocked on.
type DeadlockNode struct {
	PID  sim.PID
	TID  ThreadID
	Kind string
	Name string
}

// Deadlock is one wait-for cycle. Nodes are rotated so the smallest
// (PID, TID) leads, making cycles comparable across detection passes.
type Deadlock struct {
	Nodes []DeadlockNode
}

// String renders the cycle as "pid/tid --kind:name--> pid/tid --...".
func (d Deadlock) String() string {
	s := ""
	for _, n := range d.Nodes {
		s += fmt.Sprintf("%d/%d --%s:%s--> ", n.PID, n.TID, n.Kind, n.Name)
	}
	if len(d.Nodes) > 0 {
		s += fmt.Sprintf("%d/%d", d.Nodes[0].PID, d.Nodes[0].TID)
	}
	return s
}

type dlKey struct {
	pid sim.PID
	tid ThreadID
}

type dlNode struct {
	edge dlKey
	hasE bool
	kind string
	name string
}

// DetectDeadlocks walks the wait-for graph of the given runtimes in
// one pass and returns every cycle found. Cross-process edges resolve
// through the shared variables' owner words; edges into processes not
// listed end their chain (no false positives, possibly missed cycles
// through unlisted processes). Every thread has at most one outgoing
// edge, so the walk is linear. The start order rotates under chaos.
func DetectDeadlocks(rts []*Runtime) []Deadlock {
	nodes := make(map[dlKey]*dlNode)
	for _, m := range rts {
		pid := m.proc.PID()
		for _, w := range m.LockWaiters() {
			n := &dlNode{kind: w.Kind, name: w.Name}
			if w.HasOwner {
				opid := w.Owner.PID
				if opid == 0 {
					opid = pid
				}
				n.edge = dlKey{opid, w.Owner.TID}
				n.hasE = true
			}
			nodes[dlKey{pid, w.TID}] = n
		}
	}
	if len(nodes) == 0 {
		return nil
	}
	keys := make([]dlKey, 0, len(nodes))
	for k := range nodes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].tid < keys[j].tid
	})
	start := 0
	if len(rts) > 0 {
		if alt := rts[0].ChaosSource().DetectReorder(len(keys)); alt >= 0 {
			start = alt
		}
	}

	var out []Deadlock
	seen := make(map[string]bool) // canonical cycle -> reported
	done := make(map[dlKey]bool)  // fully explored
	for i := 0; i < len(keys); i++ {
		k := keys[(start+i)%len(keys)]
		if done[k] {
			continue
		}
		// Follow the (out-degree <= 1) chain, recording positions.
		path := make(map[dlKey]int)
		var order []dlKey
		cur := k
		for {
			if done[cur] {
				break // merges into an explored chain: no new cycle
			}
			if at, on := path[cur]; on {
				cyc := order[at:]
				d := canonicalize(cyc, nodes)
				if s := d.String(); !seen[s] {
					seen[s] = true
					out = append(out, d)
				}
				break
			}
			n, ok := nodes[cur]
			if !ok || !n.hasE {
				break
			}
			path[cur] = len(order)
			order = append(order, cur)
			cur = n.edge
		}
		for _, v := range order {
			done[v] = true
		}
	}
	return out
}

// canonicalize rotates a cycle so its smallest (PID, TID) leads.
func canonicalize(cyc []dlKey, nodes map[dlKey]*dlNode) Deadlock {
	min := 0
	for i := 1; i < len(cyc); i++ {
		if cyc[i].pid < cyc[min].pid ||
			(cyc[i].pid == cyc[min].pid && cyc[i].tid < cyc[min].tid) {
			min = i
		}
	}
	d := Deadlock{}
	for i := 0; i < len(cyc); i++ {
		k := cyc[(min+i)%len(cyc)]
		n := nodes[k]
		d.Nodes = append(d.Nodes, DeadlockNode{PID: k.pid, TID: k.tid, Kind: n.kind, Name: n.name})
	}
	return d
}
