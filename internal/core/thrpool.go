package core

import (
	"fmt"
	"sync/atomic"
)

// This file holds the per-thread memory machinery behind zero-alloc
// thread lifecycle: the StackMem abstraction (reserve address space at
// create, commit on first dispatch), the stack/TLS caches, and the
// Thread-struct freelist that recycles a thread's shell — struct, gate
// channel, wait channel, and TSD block — from exit to the next Create.

// StackMem carves thread stacks out of an address space. MapStack
// reserves (does not commit) size bytes plus a red-zone guard and
// returns the base of the usable stack; TouchStack commits the top of
// the carve when the thread first runs; UnmapStack returns the carve.
// vm.AddressSpace satisfies this.
type StackMem interface {
	MapStack(size int64) (int64, error)
	UnmapStack(base, size int64) error
	TouchStack(base, size int64) error
}

// flatStackMem is the fallback when no address space is wired: it
// hands out disjoint simulated addresses counting down from a high
// watermark, with no accounting. Tests that build a bare Runtime use
// this.
type flatStackMem struct {
	next atomic.Int64
}

func newFlatStackMem() *flatStackMem {
	f := &flatStackMem{}
	f.next.Store(1 << 46)
	return f
}

func (f *flatStackMem) MapStack(size int64) (int64, error) {
	// Leave a 4 KiB hole below each carve as the notional red zone.
	return f.next.Add(-(size + 4096)), nil
}

func (f *flatStackMem) UnmapStack(base, size int64) error { return nil }

func (f *flatStackMem) TouchStack(base, size int64) error { return nil }

// stackSpan is one cached default-stack carve.
type stackSpan struct {
	base, size int64
}

// stackFromCacheLocked returns a stack carve of at least size bytes,
// reusing a cached span when one fits and reserving a fresh one
// otherwise. Carve failure (address-space rlimit, chaos fault) is
// reported as ErrAgain per thread_create's contract. Caller holds
// m.mu.
func (m *Runtime) stackFromCacheLocked(size int64) (stackSpan, error) {
	for i, s := range m.stackCache {
		if s.size >= size {
			last := len(m.stackCache) - 1
			m.stackCache[i] = m.stackCache[last]
			m.stackCache = m.stackCache[:last]
			return s, nil
		}
	}
	base, err := m.stackMem.MapStack(size)
	if err != nil {
		return stackSpan{}, fmt.Errorf("core: stack carve failed: %v: %w", err, ErrAgain)
	}
	return stackSpan{base: base, size: size}, nil
}

// tlsFromCacheLocked returns a TLS block of the frozen size, recycled
// when possible. Caller holds m.mu; caller clears the block.
func (m *Runtime) tlsFromCacheLocked() []byte {
	if m.tlsSize == 0 {
		return nil
	}
	if n := len(m.tlsCache); n > 0 {
		b := m.tlsCache[n-1]
		m.tlsCache[n-1] = nil
		m.tlsCache = m.tlsCache[:n-1]
		if len(b) == m.tlsSize {
			return b
		}
	}
	return make([]byte, m.tlsSize)
}

// releaseStackLocked returns t's stack carve and TLS block to their
// caches (or unmaps the carve when the cache is full or the runtime is
// dying). The single release site unifying what used to be three
// duplicated cache pushes in retire, reap, and uncreate. Caller holds
// m.mu.
func (m *Runtime) releaseStackLocked(t *Thread) {
	if t.stackOwn {
		t.stackOwn = false
		if len(m.stackCache) < m.cfg.StackCacheSize && !m.dying.Load() {
			m.stackCache = append(m.stackCache, stackSpan{base: t.stkBase, size: t.stkSize})
		} else {
			_ = m.stackMem.UnmapStack(t.stkBase, t.stkSize)
		}
		if t.tls != nil && len(m.tlsCache) < m.cfg.StackCacheSize && !m.dying.Load() {
			m.tlsCache = append(m.tlsCache, t.tls)
		}
	}
	t.stkBase, t.stkSize = 0, 0
	t.stack = nil
	t.tls = nil
}

// pushFreeLocked parks t's shell on the freelist for a later Create
// to recycle. Bound shells are never recycled: boundMain's unwind
// still reads t.bndLWP after retire. Caller holds m.mu; t must
// already be off every queue with its stack released.
func (m *Runtime) pushFreeLocked(t *Thread) {
	if t.bndLWP != nil || m.cfg.ThreadCacheSize < 0 || m.dying.Load() {
		return
	}
	if len(m.tcache) >= m.cfg.ThreadCacheSize {
		return
	}
	m.tcache = append(m.tcache, t)
}

// freeThreadLocked releases t's per-thread memory and recycles its
// shell. Caller holds m.mu.
func (m *Runtime) freeThreadLocked(t *Thread) {
	m.releaseStackLocked(t)
	m.pushFreeLocked(t)
}

// threadSlabBatch is how many Thread shells the cold path reserves per
// slab refill: the struct, aux block, and wait-channel bucket for 64
// threads cost 3 host allocations instead of 192, so a mass create
// pays ~1 allocation per thread (the gate channel, which the Go
// runtime will not let us batch) plus amortized slab refills.
const threadSlabBatch = 64

// allocThreadLocked returns a Thread shell for Create: a recycled one
// from the freelist (scrubbed here, at reuse, so post-mortem handle
// reads stay valid until recycling — like pthread_t reuse) or a carve
// from the shell slab. Caller holds m.mu.
//
// A slab batch stays reachable while any of its shells is live; that
// is the same retention shape as the freelist and is bounded by the
// batch size.
func (m *Runtime) allocThreadLocked() *Thread {
	if n := len(m.tcache); n > 0 {
		t := m.tcache[n-1]
		m.tcache[n-1] = nil
		m.tcache = m.tcache[:n-1]
		t.scrubLocked()
		return t
	}
	if m.slabUsed == len(m.slabT) {
		m.slabT = make([]Thread, threadSlabBatch)
		m.slabA = make([]threadAux, threadSlabBatch)
		m.slabB = make([]sleepqBucket, threadSlabBatch)
		m.slabUsed = 0
	}
	i := m.slabUsed
	m.slabUsed++
	b := &m.slabB[i]
	initBucket(b, false)
	t := &m.slabT[i]
	t.gate = make(chan struct{}, 1)
	t.waitWC = WaitChan{b}
	t.aux = &m.slabA[i]
	return t
}

// scrubLocked resets a recycled shell to the zero state a fresh
// Thread{} would have, preserving only the reusable allocations: the
// gate channel, the wait channel, and the aux block with its TSD
// slice. The TSD slice is cleared across its FULL capacity — a later
// SetSpecific regrows it with s[:n], which must never expose a
// predecessor's values.
func (t *Thread) scrubLocked() {
	// Drain a stale wake permit left in the gate by a late unpark.
	select {
	case <-t.gate:
	default:
	}
	if t.waitWC.Len() != 0 {
		// Should be impossible (retire drains the ≤1 waiter), but a
		// waiter must never leak into a new thread's identity.
		t.waitWC = AllocWaitChan()
	}
	aux := t.aux
	if aux == nil {
		aux = &threadAux{}
	}
	tsd := aux.tsd
	tsd = tsd[:cap(tsd)]
	clear(tsd)
	*aux = threadAux{tsd: tsd[:0]}
	gate, wc := t.gate, t.waitWC
	*t = Thread{}
	t.gate, t.waitWC, t.aux = gate, wc, aux
}

// startAnimator gives a first-dispatched unbound thread its animator
// goroutine, reusing a standby animator when one is parked (the
// steady-state path: no goroutine spawn, no closure allocation).
// Called off m.mu from dispatch, before the thread's first grant.
func (m *Runtime) startAnimator(t *Thread) {
	m.mu.Lock()
	var ch chan *Thread
	if n := len(m.idleAnim); n > 0 {
		ch = m.idleAnim[n-1]
		m.idleAnim[n-1] = nil
		m.idleAnim = m.idleAnim[:n-1]
	}
	m.mu.Unlock()
	if ch != nil {
		ch <- t // buffered: the animator is parked receiving
		return
	}
	m.exitWG.Add(1)
	go m.animate(t)
}

// animate is an animator goroutine: it runs thread incarnations
// back-to-back, parking on its handoff channel between them, so the
// goroutine (like the Thread shell and stack carve it animates) is
// recycled rather than respawned. It exits on kernel unwind, on
// runtime shutdown (sweepDying sends nil), or when the standby pool
// is full.
func (m *Runtime) animate(t *Thread) {
	defer m.exitWG.Done()
	var ch chan *Thread
	for {
		if !t.threadMain() {
			return // unwound with the process; do not recycle
		}
		if ch == nil {
			ch = make(chan *Thread, 1)
		}
		m.mu.Lock()
		if m.dying.Load() || len(m.idleAnim) >= m.cfg.ThreadCacheSize {
			m.mu.Unlock()
			return
		}
		m.idleAnim = append(m.idleAnim, ch)
		m.mu.Unlock()
		next, ok := <-ch
		if !ok || next == nil {
			return // shutdown
		}
		t = next
	}
}

// touchStack commits the top of t's reserved stack carve before its
// first frame. Commit failure is deliberately not fatal here — commit
// accounting surfaces through explicit memory operations and the
// commit rlimit; a thread that cannot commit its first chunk still
// runs in the simulation.
func (m *Runtime) touchStack(t *Thread) {
	if t.stackOwn {
		_ = m.stackMem.TouchStack(t.stkBase, t.stkSize)
	}
}
