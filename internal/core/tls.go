package core

import (
	"encoding/binary"
	"fmt"
)

// This file implements thread-local storage and the per-thread
// setjmp/longjmp rules.
//
// The paper's TLS model: "#pragma unshared" variables are collected
// by the compiler and linker; the run-time linker sums the
// requirements of the linked libraries at program start, after which
// the size never changes, so TLS can be allocated as part of stack
// storage and is zeroed initially (no static initialization). Go has
// no linker pragma, so libraries register their unshared variables
// with RegisterUnshared before the first thread starts — the moment
// the paper freezes the size — and get back a TLSVar offset handle.

// TLSVar is the handle for one registered unshared variable: a byte
// range in every thread's thread-local storage.
type TLSVar struct {
	off, size int
}

// RegisterUnshared reserves size bytes of thread-local storage for an
// unshared variable (the #pragma unshared analogue). It must be
// called before the first thread is created; afterwards the size of
// thread-local storage is frozen, exactly as the paper specifies
// ("Once the size is computed it is not changed").
func (m *Runtime) RegisterUnshared(size int) (TLSVar, error) {
	if size <= 0 {
		return TLSVar{}, fmt.Errorf("core: bad TLS size %d", size)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.tlsFrozen {
		return TLSVar{}, fmt.Errorf("core: thread-local storage size is frozen once threads start")
	}
	v := TLSVar{off: m.tlsSize, size: size}
	m.tlsSize += size
	return v, nil
}

// TLSSize reports the per-thread thread-local storage size.
func (m *Runtime) TLSSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tlsSize
}

// TLS returns the thread's bytes for the registered variable. The
// contents start zeroed. Only the owning thread should access them
// ("a correct thread must never attempt" to touch another thread's
// TLS).
func (t *Thread) TLS(v TLSVar) []byte {
	if v.off+v.size > len(t.tls) {
		panic(fmt.Sprintf("core: TLS var [%d,%d) outside storage of %d bytes", v.off, v.off+v.size, len(t.tls)))
	}
	return t.tls[v.off : v.off+v.size]
}

// TLSUint64 reads the variable as a little-endian uint64 (the
// variable must be at least 8 bytes).
func (t *Thread) TLSUint64(v TLSVar) uint64 {
	return binary.LittleEndian.Uint64(t.TLS(v))
}

// SetTLSUint64 writes the variable as a little-endian uint64.
func (t *Thread) SetTLSUint64(v TLSVar, x uint64) {
	binary.LittleEndian.PutUint64(t.TLS(v), x)
}

// --- errno --------------------------------------------------------------

// Errno returns the calling thread's errno — the paper's canonical
// example of an unshared variable. It is stored in the thread's TLS
// when errno was registered (Runtime s created by the mt package
// always register it); otherwise in a plain per-thread slot.
func (t *Thread) Errno() int {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return t.errno
}

// SetErrno sets the calling thread's errno.
func (t *Thread) SetErrno(e int) {
	t.m.mu.Lock()
	t.errno = e
	t.m.mu.Unlock()
}

// --- setjmp / longjmp ----------------------------------------------------

// Jmpbuf is a non-local-goto target. setjmp/longjmp work only within
// a particular thread; it is an error for a thread to longjmp into
// another thread (paper, "Non-local goto").
type Jmpbuf struct {
	t     *Thread
	val   int
	armed bool
}

type longjmpPanic struct{ jb *Jmpbuf }

// ErrJmpCrossThread reports a longjmp into another thread.
var ErrJmpCrossThread = fmt.Errorf("core: longjmp into another thread")

// Setjmp runs body with an armed jump buffer. It returns 0 if body
// ran to completion, or the (non-zero) value passed to Longjmp. This
// mirrors `if (v = setjmp(buf)) == 0 { body } else { handle v }`.
func (t *Thread) Setjmp(body func(jb *Jmpbuf)) (ret int) {
	jb := &Jmpbuf{t: t, armed: true}
	defer func() {
		jb.armed = false
		if r := recover(); r != nil {
			lj, ok := r.(longjmpPanic)
			if !ok || lj.jb != jb {
				panic(r)
			}
			ret = lj.jb.val
		}
	}()
	body(jb)
	return 0
}

// Longjmp unwinds the calling thread to the Setjmp that created jb,
// which must belong to the calling thread and still be on its stack.
// val must be non-zero.
func (t *Thread) Longjmp(jb *Jmpbuf, val int) error {
	if jb.t != t {
		return ErrJmpCrossThread
	}
	if !jb.armed {
		return fmt.Errorf("core: longjmp target no longer on stack")
	}
	if val == 0 {
		val = 1
	}
	jb.val = val
	panic(longjmpPanic{jb})
}
