package core

import (
	"sync/atomic"
	"testing"
)

func TestTSDPerThreadIsolation(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		k := r.CreateTSDKey(nil)
		self.SetSpecific(k, "main")
		c, _ := r.Create(func(c *Thread, _ any) {
			if got := c.GetSpecific(k); got != nil {
				t.Errorf("child saw %v for unset key", got)
			}
			c.SetSpecific(k, "child")
		}, nil, CreateOpts{Flags: ThreadWait})
		self.Wait(c.ID())
		if got := self.GetSpecific(k); got != "main" {
			t.Errorf("main's value = %v", got)
		}
	})
	waitExit(t, m)
}

func TestTSDDestructorRunsAtExit(t *testing.T) {
	var destroyed atomic.Value
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		k := r.CreateTSDKey(func(v any) { destroyed.Store(v) })
		c, _ := r.Create(func(c *Thread, _ any) {
			c.SetSpecific(k, "resource-42")
		}, nil, CreateOpts{Flags: ThreadWait})
		self.Wait(c.ID())
		if destroyed.Load() != "resource-42" {
			t.Errorf("destructor got %v", destroyed.Load())
		}
	})
	waitExit(t, m)
}

func TestTSDKeysAreDynamic(t *testing.T) {
	// Unlike TLS, keys can be created after threads exist.
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		k1 := r.CreateTSDKey(nil)
		k2 := r.CreateTSDKey(nil)
		if k1 == k2 {
			t.Error("duplicate keys")
		}
		if err := self.SetSpecific(TSDKey(99), 1); err == nil {
			t.Error("bad key accepted")
		}
		// nil value clears the slot.
		self.SetSpecific(k1, "x")
		self.SetSpecific(k1, nil)
		if got := self.GetSpecific(k1); got != nil {
			t.Errorf("cleared slot = %v", got)
		}
	})
	waitExit(t, m)
}

func TestTSDDestructorSkippedOnProcessDeath(t *testing.T) {
	var destroyed atomic.Bool
	m := rt(t, 1, Config{}, func(self *Thread, arg any) {
		r := self.Runtime()
		k := r.CreateTSDKey(func(any) { destroyed.Store(true) })
		self.SetSpecific(k, "doomed")
		self.ExitProcess(3) // involuntary teardown: destructors skipped
	})
	waitExit(t, m)
	if destroyed.Load() {
		t.Fatal("destructor ran during process death")
	}
}
