package core

import (
	"sync/atomic"
	"testing"
)

// TestDispatchOrder pins the priority semantics the dispatcher queue
// must preserve: FIFO among equal priorities, higher priorities first,
// and SetPriority on a queued runnable thread taking effect at the
// next pop (the thread moves to its new level immediately, not at
// some later requeue).
func TestDispatchOrder(t *testing.T) {
	cases := []struct {
		name  string
		prios []int
		// setPrio, if non-nil, re-prioritizes queued threads
		// (index -> new priority) before any of them has run.
		setPrio map[int]int
		want    []int // completion order, as indices into prios
	}{
		{
			name:  "fifo-among-equals",
			prios: []int{1, 1, 1, 1},
			want:  []int{0, 1, 2, 3},
		},
		{
			name:  "higher-priority-first",
			prios: []int{1, 5, 3},
			want:  []int{1, 2, 0},
		},
		{
			name:  "equal-within-levels",
			prios: []int{2, 7, 2, 7},
			want:  []int{1, 3, 0, 2},
		},
		{
			name:    "setpriority-boost-next-pop",
			prios:   []int{1, 1, 1},
			setPrio: map[int]int{2: 10},
			want:    []int{2, 0, 1},
		},
		{
			name:    "setpriority-demote-next-pop",
			prios:   []int{5, 5, 2},
			setPrio: map[int]int{0: 1},
			want:    []int{1, 2, 0},
		},
		{
			name:    "setpriority-requeues-at-new-level-tail",
			prios:   []int{3, 3, 1},
			setPrio: map[int]int{2: 3}, // joins level 3 behind its equals
			want:    []int{0, 1, 2},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// One LWP: the main thread holds it, so created
			// threads stay queued until main blocks in Wait.
			m := rt(t, 1, Config{}, func(self *Thread, _ any) {
				r := self.Runtime()
				order := make(chan int, len(tc.prios))
				ths := make([]*Thread, len(tc.prios))
				for i, prio := range tc.prios {
					i := i
					th, err := r.Create(func(*Thread, any) {
						order <- i
					}, nil, CreateOpts{Flags: ThreadWait, Priority: prio})
					if err != nil {
						t.Error(err)
						return
					}
					ths[i] = th
				}
				for idx, prio := range tc.setPrio {
					if _, err := r.SetPriority(ths[idx], prio); err != nil {
						t.Error(err)
						return
					}
				}
				for _, th := range ths {
					self.Wait(th.ID())
				}
				for _, want := range tc.want {
					if got := <-order; got != want {
						t.Errorf("completion order: got thread %d, want %d", got, want)
					}
				}
			})
			waitExit(t, m)
		})
	}
}

// qt builds a bare thread for dispatcher unit tests: priority prio,
// affinity shard si (-1 for none).
func qt(prio, si int) *Thread {
	t := &Thread{}
	t.effPrio.Store(int32(prio))
	t.shard.Store(int32(si))
	return t
}

// TestDispatcherShardPolicy pins the sharded ready queue's pop policy:
// affinity-first among equals, priority steal when a sibling holds
// strictly better work, steal of any work when the own shard is empty
// — and the popped thread's affinity following the popper.
func TestDispatcherShardPolicy(t *testing.T) {
	cases := []struct {
		name string
		// threads pushed in order: {prio, shard}
		push [][2]int
		hint int
		want int // index into push of the expected first pop
	}{
		{"own-shard-wins-ties", [][2]int{{1, 1}, {1, 0}}, 0, 1},
		{"priority-steal", [][2]int{{1, 0}, {5, 1}}, 0, 1},
		{"own-empty-steals", [][2]int{{1, 1}}, 0, 0},
		{"steal-takes-highest-of-siblings", [][2]int{{3, 1}, {5, 2}, {4, 1}}, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := newDispatcher(3)
			ths := make([]*Thread, len(tc.push))
			for i, ps := range tc.push {
				ths[i] = qt(ps[0], ps[1])
				d.push(ths[i])
			}
			got := d.pop(nil, tc.hint, false)
			if got != ths[tc.want] {
				t.Fatalf("pop = %+v, want thread %d", got, tc.want)
			}
			if int(got.shard.Load()) != tc.hint {
				t.Errorf("popped thread's affinity = %d, want popper's shard %d",
					got.shard.Load(), tc.hint)
			}
		})
	}
}

// TestDispatcherAgedSteal: an equal-priority thread on a shard no LWP
// is affine to must not starve — once its head has been passed over by
// stealAge newer pushes, a popper with equal-priority work of its own
// takes it anyway, at the latest on its next periodic scan.
func TestDispatcherAgedSteal(t *testing.T) {
	d := newDispatcher(2)
	orphan := qt(1, 1) // lands on shard 1; no popper ever uses hint 1
	d.push(orphan)
	// A yield loop on shard 0: push self, pop — the orphan must be
	// taken within stealAge pushes plus one scan period.
	self := qt(1, 0)
	d.push(self)
	for i := 0; i < stealAge+scanEvery+2; i++ {
		got := d.pop(nil, 0, false)
		if got == orphan {
			if i < 2 {
				t.Fatalf("orphan stolen immediately (i=%d); affinity should win first", i)
			}
			return
		}
		d.push(got)
	}
	t.Fatalf("orphan starved beyond stealAge+scanEvery=%d pops", stealAge+scanEvery)
}

// TestDispatcherFairPop: the yield handoff (fair pop) restores the
// shared queue's global FIFO-among-equals — the oldest queued equal
// wins regardless of shard, so a yielder re-queued behind it cannot
// outrun it.
func TestDispatcherFairPop(t *testing.T) {
	d := newDispatcher(2)
	older := qt(1, 1)
	d.push(older)
	yielder := qt(1, 0)
	d.push(yielder)
	if got := d.pop(nil, 0, true); got != older {
		t.Fatalf("fair pop = %+v, want the older thread on the foreign shard", got)
	}
	if got := d.pop(nil, 0, true); got != yielder {
		t.Fatalf("second fair pop = %+v, want the yielder", got)
	}
	// Priority still dominates fairness.
	lo := qt(1, 0)
	hi := qt(5, 1)
	d.push(hi) // older AND higher
	d.push(lo)
	if got := d.pop(nil, 0, true); got != hi {
		t.Fatalf("fair pop with mixed levels = %+v, want the high-priority thread", got)
	}
	d.clear()
}

// TestDispatcherRequeueAcrossShards: SetPriority's requeue must take
// effect on whichever shard the thread is queued on — a boost on a
// foreign shard becomes visible to other poppers as stealable work at
// the new level.
func TestDispatcherRequeueAcrossShards(t *testing.T) {
	d := newDispatcher(2)
	own := qt(3, 0)
	far := qt(1, 1)
	d.push(own)
	d.push(far)
	// At prio 1 the foreign thread would lose to own prio 3...
	far.effPrio.Store(5)
	d.requeue(far)
	// ...but after the requeue it outranks it from shard 1.
	if got := d.pop(nil, 0, false); got != far {
		t.Fatalf("pop after cross-shard requeue = %+v, want the boosted thread", got)
	}
	if got := d.pop(nil, 0, false); got != own {
		t.Fatalf("second pop = %+v, want the original thread", got)
	}
	// remove is exact-once across shards too.
	gone := qt(2, 1)
	d.push(gone)
	if !d.remove(gone) {
		t.Fatal("remove of a queued thread = false")
	}
	if d.remove(gone) {
		t.Fatal("second remove = true, want false")
	}
	if d.len() != 0 {
		t.Fatalf("dispatcher not empty: %d", d.len())
	}
}

// TestDispatchStatsCountsSteals: the per-shard counters feed /proc and
// mtstat; a cross-shard pop must show up as the victim shard's stolen.
func TestDispatchStatsCountsSteals(t *testing.T) {
	d := newDispatcher(2)
	d.push(qt(1, 1))
	if got := d.pop(nil, 0, false); got == nil {
		t.Fatal("pop returned nil")
	}
	var m Runtime
	m.disp = d
	st := m.DispatchStats()
	if len(st) != 2 {
		t.Fatalf("got %d shard rows, want 2", len(st))
	}
	if st[1].Pops != 1 || st[1].Stolen != 1 {
		t.Errorf("victim shard stats = %+v, want pops=1 stolen=1", st[1])
	}
	if st[0].Stolen != 0 {
		t.Errorf("thief shard shows stolen=%d, want 0", st[0].Stolen)
	}
}

// TestStopRemovesQueuedThreadOnce: thread_stop on a queued runnable
// thread dequeues it exactly once — the body never runs before
// Continue, runs exactly once after, and a second Stop of the already
// stopped thread is a no-op.
func TestStopRemovesQueuedThreadOnce(t *testing.T) {
	var runs atomic.Int64
	m := rt(t, 1, Config{}, func(self *Thread, _ any) {
		r := self.Runtime()
		th, err := r.Create(func(*Thread, any) {
			runs.Add(1)
		}, nil, CreateOpts{Flags: ThreadWait})
		if err != nil {
			t.Error(err)
			return
		}
		// Queued, never run (main holds the only LWP).
		if err := self.Stop(th); err != nil {
			t.Errorf("Stop: %v", err)
		}
		if got := th.State(); got != ThreadStopped {
			t.Errorf("state after stop = %v, want stopped", got)
		}
		if err := self.Stop(th); err != nil { // second stop: no-op
			t.Errorf("second Stop: %v", err)
		}
		self.Yield() // would dispatch th if the remove had missed
		if n := runs.Load(); n != 0 {
			t.Errorf("stopped thread ran %d times before Continue", n)
		}
		if err := r.Continue(th); err != nil {
			t.Errorf("Continue: %v", err)
		}
		if _, err := self.Wait(th.ID()); err != nil {
			t.Errorf("Wait: %v", err)
		}
		if n := runs.Load(); n != 1 {
			t.Errorf("thread body ran %d times, want exactly 1", n)
		}
	})
	waitExit(t, m)
}

// TestSleepqRemoveOnlyTarget is the regression test for the
// thread_wait deregistration bug: removing one waiter from a wait
// channel must leave every other registered waiter queued (the old
// code dropped the whole registration list for the id).
func TestSleepqRemoveOnlyTarget(t *testing.T) {
	wc := AllocWaitChan()
	a, b, c := &Thread{id: 1}, &Thread{id: 2}, &Thread{id: 3}
	wc.Enqueue(a)
	wc.Enqueue(b)
	wc.Enqueue(c)
	if !wc.Remove(b) {
		t.Fatal("Remove(b) = false, want true")
	}
	if wc.Remove(b) {
		t.Fatal("second Remove(b) = true, want false")
	}
	if got := wc.Len(); got != 2 {
		t.Fatalf("Len after removing one of three = %d, want 2", got)
	}
	if got := wc.DequeueOne(); got != a {
		t.Fatalf("first remaining waiter = %v, want a", got)
	}
	if got := wc.DequeueOne(); got != c {
		t.Fatalf("second remaining waiter = %v, want c", got)
	}
	if got := wc.DequeueOne(); got != nil {
		t.Fatalf("DequeueOne on empty = %v, want nil", got)
	}
}

// TestAnyWaitSurvivesSpuriousWake: a Wait(0) caller that wakes without
// its zombie (here: an explicit spurious Unpark) must re-register and
// still reap a later exit, and a concurrent second any-waiter must not
// lose its registration when the first deregisters.
func TestAnyWaitSurvivesSpuriousWake(t *testing.T) {
	m := rt(t, 2, Config{}, func(self *Thread, _ any) {
		r := self.Runtime()
		r.SetConcurrency(2)
		reaped := make(chan ThreadID, 2)
		// The waiters are not THREAD_WAIT themselves: a finished
		// waiter must not become a zombie the other's Wait(0) reaps.
		w1, err := r.Create(func(c *Thread, _ any) {
			id, err := c.Wait(0)
			if err != nil {
				t.Errorf("waiter 1: %v", err)
				return
			}
			reaped <- id
		}, nil, CreateOpts{})
		if err != nil {
			t.Error(err)
			return
		}
		// Let w1 park in Wait(0), then wake it spuriously: it must
		// deregister only itself and re-register.
		for w1.State() != ThreadWaiting {
			self.Yield()
		}
		w1.Unpark()
		w2, err := r.Create(func(c *Thread, _ any) {
			id, err := c.Wait(0)
			if err != nil {
				t.Errorf("waiter 2: %v", err)
				return
			}
			reaped <- id
		}, nil, CreateOpts{})
		if err != nil {
			t.Error(err)
			return
		}
		// Two exiting children: each waiter must reap exactly one.
		c1, _ := r.Create(func(*Thread, any) {}, nil, CreateOpts{Flags: ThreadWait})
		c2, _ := r.Create(func(*Thread, any) {}, nil, CreateOpts{Flags: ThreadWait})
		got := map[ThreadID]bool{<-reaped: true, <-reaped: true}
		if !got[c1.ID()] || !got[c2.ID()] {
			t.Errorf("reaped %v, want {%d, %d}", got, c1.ID(), c2.ID())
		}
		_ = w1
		_ = w2
	})
	waitExit(t, m)
}

// TestTargetedWaitSurvivesSpuriousWake: same for Wait(id) — after a
// spurious wake the caller deregisters only itself from the target's
// channel and still completes when the target exits.
func TestTargetedWaitSurvivesSpuriousWake(t *testing.T) {
	m := rt(t, 2, Config{}, func(self *Thread, _ any) {
		r := self.Runtime()
		r.SetConcurrency(2)
		var release atomic.Bool
		child, err := r.Create(func(c *Thread, _ any) {
			for !release.Load() {
				c.Yield()
			}
		}, nil, CreateOpts{Flags: ThreadWait})
		if err != nil {
			t.Error(err)
			return
		}
		done := make(chan error, 1)
		w, err := r.Create(func(c *Thread, _ any) {
			id, err := c.Wait(child.ID())
			if err == nil && id != child.ID() {
				t.Errorf("Wait returned %d, want %d", id, child.ID())
			}
			done <- err
		}, nil, CreateOpts{Flags: ThreadWait})
		if err != nil {
			t.Error(err)
			return
		}
		for w.State() != ThreadWaiting {
			self.Yield()
		}
		w.Unpark() // spurious: the child has not exited
		for i := 0; i < 3; i++ {
			self.Yield() // let the waiter loop and re-register
		}
		release.Store(true)
		if err := <-done; err != nil {
			t.Errorf("targeted wait after spurious wake: %v", err)
		}
		self.Wait(w.ID())
	})
	waitExit(t, m)
}

// TestRunqStats: depth and per-priority occupancy reflect the queued
// threads (mtstat's view of the dispatcher).
func TestRunqStats(t *testing.T) {
	m := rt(t, 1, Config{}, func(self *Thread, _ any) {
		r := self.Runtime()
		var ths []*Thread
		for _, prio := range []int{1, 1, 3, 7, 7, 7} {
			th, err := r.Create(func(*Thread, any) {}, nil,
				CreateOpts{Flags: ThreadWait, Priority: prio})
			if err != nil {
				t.Error(err)
				return
			}
			ths = append(ths, th)
		}
		depth, occ := r.RunqStats()
		if depth != 6 {
			t.Errorf("depth = %d, want 6", depth)
		}
		want := []PrioCount{{1, 2}, {3, 1}, {7, 3}}
		if len(occ) != len(want) {
			t.Fatalf("occupancy = %v, want %v", occ, want)
		}
		for i := range want {
			if occ[i] != want[i] {
				t.Errorf("occupancy[%d] = %v, want %v", i, occ[i], want[i])
			}
		}
		for _, th := range ths {
			self.Wait(th.ID())
		}
		if depth, occ := r.RunqStats(); depth != 0 || len(occ) != 0 {
			t.Errorf("after drain: depth=%d occ=%v, want empty", depth, occ)
		}
	})
	waitExit(t, m)
}

// TestSetPriorityRepositionsSleepingWaiter: raising the priority of a
// thread that is already parked on a wait channel must reposition it
// within its sleep-queue bucket, so the next DequeueOne returns it
// ahead of earlier-queued equals — the raise-while-blocked half of
// priority-ordered sleep queues.
func TestSetPriorityRepositionsSleepingWaiter(t *testing.T) {
	wc := AllocWaitChan()
	m := rt(t, 1, Config{}, func(self *Thread, _ any) {
		r := self.Runtime()
		sleeper := func() *Thread {
			th, err := r.Create(func(c *Thread, _ any) {
				wc.Enqueue(c)
				c.Park()
			}, nil, CreateOpts{Flags: ThreadWait, Priority: 1})
			if err != nil {
				t.Error(err)
				return nil
			}
			for c := 0; th.State() != ThreadSleeping; c++ {
				if c > 1_000_000 {
					t.Fatal("thread never parked")
				}
				self.Yield()
			}
			return th
		}
		a := sleeper() // queued first
		b := sleeper() // queued second, same priority
		if _, err := r.SetPriority(b, 5); err != nil {
			t.Errorf("SetPriority on sleeping thread: %v", err)
		}
		if got := wc.DequeueOne(); got != b {
			t.Errorf("first dequeue after raising b = %v, want b (tid %d)", got, b.ID())
		}
		if got := wc.DequeueOne(); got != a {
			t.Errorf("second dequeue = %v, want a (tid %d)", got, a.ID())
		}
		a.Unpark()
		b.Unpark()
		self.Wait(a.ID())
		self.Wait(b.ID())
	})
	waitExit(t, m)
}
