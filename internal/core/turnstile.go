// Turnstiles: priority inheritance through blocking chains.
//
// Solaris queues the waiters of each blocking synchronization object
// on a turnstile and, when a thread blocks, "wills" its dispatch
// priority to the owner of the object — and transitively to whatever
// that owner is itself blocked on — so a low-priority lock holder
// cannot indefinitely invert a high-priority acquirer. On release the
// owner recomputes its priority from the turnstiles it still holds.
//
// This file is that mechanism for the library: every thread carries a
// base priority (prio, what thread_priority sets) and an effective
// priority (effPrio, what the dispatcher and the sleep queues order
// by). A tsync mutex or rwlock embeds a Turnstile; acquiring the lock
// registers ownership (Acquired), a blocking acquirer walks the
// published BlockInfo chain willing its effective priority to each
// owner (WillPriority), and releasing recomputes the owner's effective
// priority from its remaining held turnstiles (Released).
//
// Locking: Turnstile.owner and the held-list links are guarded by the
// owning Runtime.mu (local primitives never span processes). The
// waiter-queue bucket pointers are atomics set under the primitive's
// word lock; reading a bucket's head takes only the sleep-queue shard
// lock, which is a leaf and therefore safe under Runtime.mu. Kernel
// calls (Priocntl, mirroring a boost onto a bound LWP) happen outside
// Runtime.mu.
package core

import (
	"sync/atomic"

	"sunosmt/internal/sim"
)

// maxPIChain bounds the inheritance walk; chains this deep indicate a
// cycle the deadlock detector will report, not a priority problem.
const maxPIChain = 64

// Turnstile is the inheritance anchor embedded in an ownable blocking
// object (mutex, rwlock). The zero value is ready for use.
type Turnstile struct {
	// q1/q2 point at the object's waiter queue buckets (rwlock:
	// writers and readers). Set under the object's word lock, read
	// during effective-priority recomputation.
	q1, q2 atomic.Pointer[sleepqBucket]

	owner      *Thread    // current owner; guarded by owner's Runtime.mu
	next, prev *Turnstile // owner's held-turnstile list; Runtime.mu
}

// SetQueue publishes the object's (primary) waiter queue so a release
// can recompute the owner's effective priority from the queued
// waiters. Idempotent; called under the object's word lock.
func (ts *Turnstile) SetQueue(wc WaitChan) { ts.q1.Store(wc.b) }

// SetQueue2 publishes a second waiter queue (the rwlock's reader
// queue).
func (ts *Turnstile) SetQueue2(wc WaitChan) { ts.q2.Store(wc.b) }

// Acquired records t as the turnstile's owner and links the turnstile
// into t's held list. Called under the object's word lock by the
// thread that just took ownership.
func (ts *Turnstile) Acquired(t *Thread) {
	m := t.m
	m.mu.Lock()
	if ts.owner == t {
		m.mu.Unlock()
		return
	}
	if ts.owner != nil {
		// Ownership moved without a release (should not happen for
		// local primitives); unhook from the stale owner first.
		ts.unlinkLocked(ts.owner)
	}
	ts.owner = t
	ts.prev = nil
	ts.next = t.heldTs
	if t.heldTs != nil {
		t.heldTs.prev = ts
	}
	t.heldTs = ts
	m.mu.Unlock()
}

// unlinkLocked detaches ts from o's held list; Runtime.mu is held.
func (ts *Turnstile) unlinkLocked(o *Thread) {
	if ts.prev != nil {
		ts.prev.next = ts.next
	} else {
		o.heldTs = ts.next
	}
	if ts.next != nil {
		ts.next.prev = ts.prev
	}
	ts.next, ts.prev = nil, nil
	ts.owner = nil
}

// Released drops the turnstile from its owner and recomputes the
// owner's effective priority from its base priority and the waiters
// of the turnstiles it still holds — any boost willed through this
// object is shed here. Called under the object's word lock by the
// releasing thread.
func (ts *Turnstile) Released(t *Thread) {
	m := t.m
	m.mu.Lock()
	o := ts.owner
	if o == nil {
		m.mu.Unlock()
		return
	}
	ts.unlinkLocked(o)
	eff := o.prio
	if h := m.heldMaxLocked(o); h > eff {
		eff = h
	}
	mirror := m.setEffLocked(o, eff)
	m.mu.Unlock()
	if mirror {
		m.mirrorBoundPrio(o)
	}
}

// WillPriority wills the calling thread's effective priority down its
// blocking chain: for each hop, the owner of the object t (then the
// owner, then...) is blocked on is boosted to at least t's effective
// priority. Called by a blocking acquirer after it has published its
// BlockInfo and queued itself, before parking. Chains end at objects
// with no turnstile (cond, sema, process-shared variants), at an
// unowned object, or at an owner already at or above the willed
// priority.
func (t *Thread) WillPriority() {
	m := t.m
	if m.cfg.NoPriorityInheritance {
		return
	}
	bi := t.blocked.Load()
	for hops := 0; bi != nil && bi.Ts != nil && hops < maxPIChain; hops++ {
		ts := bi.Ts
		m.mu.Lock()
		// Re-read our own effective priority under the lock on every
		// hop: a boost willed TO us concurrently (we are someone
		// else's lock owner) is published under m.mu, and reading it
		// here rather than once up front means it propagates down
		// this chain too — without this, a walk that races with its
		// own boost wills a stale, lower priority.
		p := int(t.effPrio.Load())
		o := ts.owner
		if o == nil || o == t || int(o.effPrio.Load()) >= p {
			m.mu.Unlock()
			return
		}
		mirror := m.setEffLocked(o, p)
		next := o.blocked.Load()
		m.mu.Unlock()
		if mirror {
			m.mirrorBoundPrio(o)
		}
		bi = next
	}
}

// heldMaxLocked returns the highest effective priority among the
// waiters of every turnstile t holds, or -1. Priority-ordered buckets
// (kept sorted by reposition) need only their head read — O(1) per
// held turnstile. FIFO buckets (hand-off lock policies) keep arrival
// order, so the head is not the maximum and the whole queue is walked;
// queue depth there is bounded by the lock's contention, and the walk
// is what keeps the inheritance invariant (owner runs at ≥ the best
// blocked waiter) independent of wakeup order. Runtime.mu is held; the
// shard locks are leaves.
func (m *Runtime) heldMaxLocked(t *Thread) int {
	best := -1
	for ts := t.heldTs; ts != nil; ts = ts.next {
		for _, bp := range [...]*atomic.Pointer[sleepqBucket]{&ts.q1, &ts.q2} {
			b := bp.Load()
			if b == nil {
				continue
			}
			mu := &sleepqLock[b.shard]
			mu.Lock()
			if b.fifo {
				for w := b.head; w != nil; w = w.sqNext {
					if p := int(w.effPrio.Load()); p > best {
						best = p
					}
				}
			} else if h := b.head; h != nil {
				if p := int(h.effPrio.Load()); p > best {
					best = p
				}
			}
			mu.Unlock()
		}
	}
	return best
}

// HandOff transfers turnstile ownership from the releasing thread
// directly to to, the waiter being granted the lock, without an
// unowned window: in one Runtime.mu critical section the turnstile
// moves from from's held list to to's, from sheds any boost it was
// inheriting through this object, and to is boosted from the waiters
// still queued behind it — so the inheritance invariant (an owner runs
// at at least the effective priority of its best blocked waiter) holds
// across the hand-off itself. Used by the hand-off lock policies
// (ticket, MCS/CLH); the barging policies use Released + Acquired.
// Called under the object's word lock, with to already dequeued from
// the waiter queue.
func (ts *Turnstile) HandOff(from, to *Thread) {
	m := from.m
	m.mu.Lock()
	if ts.owner == from {
		ts.unlinkLocked(from)
	} else if ts.owner != nil {
		// Stale owner (should not happen for local primitives) —
		// unhook it so the links stay consistent.
		ts.unlinkLocked(ts.owner)
	}
	// Recompute the releaser first: any boost willed through this
	// object is shed now that its waiters are to's problem.
	effFrom := from.prio
	if h := m.heldMaxLocked(from); h > effFrom {
		effFrom = h
	}
	mirrorFrom := m.setEffLocked(from, effFrom)

	// Link the turnstile to the new owner and boost it from the
	// waiters still queued. to is typically sleeping (about to be
	// unparked); setEffLocked repositions it if needed.
	ts.owner = to
	ts.prev = nil
	ts.next = to.heldTs
	if to.heldTs != nil {
		to.heldTs.prev = ts
	}
	to.heldTs = ts
	effTo := to.prio
	if h := m.heldMaxLocked(to); h > effTo {
		effTo = h
	}
	mirrorTo := m.setEffLocked(to, effTo)
	m.mu.Unlock()
	if mirrorFrom {
		m.mirrorBoundPrio(from)
	}
	if mirrorTo {
		m.mirrorBoundPrio(to)
	}
}

// setEffLocked installs a new effective priority, moving the thread
// wherever priority orders it: its run-queue level if queued runnable,
// its position within its sleep-queue bucket if blocked, and the
// preemption check if the raise outranks a running thread. Returns
// whether the thread is bound — the caller must then mirror the
// change onto the LWP's class priority outside Runtime.mu.
func (m *Runtime) setEffLocked(t *Thread, p int) bool {
	if int(t.effPrio.Load()) == p {
		return false
	}
	t.effPrio.Store(int32(p))
	m.disp.requeue(t)
	if t.state == ThreadRunnable {
		m.flagPreemptionLocked(p)
	}
	if b := t.sqBkt.Load(); b != nil {
		(WaitChan{b}).reposition(t)
	}
	return t.bound()
}

// mirrorBoundPrio maps a bound thread's effective priority onto its
// LWP's kernel class priority so the kernel dispatcher honours the
// boost. Called outside Runtime.mu (Priocntl takes the kernel lock).
func (m *Runtime) mirrorBoundPrio(t *Thread) {
	l := t.bndLWP
	if l == nil {
		return
	}
	p := int(t.effPrio.Load())
	if p > sim.MaxUserPrio {
		p = sim.MaxUserPrio
	}
	// Best-effort: an inheritance boost must not fail the release
	// path; thread_priority's own kernel errors surface through
	// SetPriority instead.
	_ = m.kern.Priocntl(l, l.Class(), p)
}

// dropTurnstilesLocked severs every turnstile a dying thread still
// holds so no later acquirer walks into freed state. The waiters
// themselves are woken (or torn down) by the primitive or the process
// sweep; this only breaks the ownership links. Runtime.mu is held.
func (m *Runtime) dropTurnstilesLocked(t *Thread) {
	for ts := t.heldTs; ts != nil; {
		next := ts.next
		ts.owner = nil
		ts.next, ts.prev = nil, nil
		ts = next
	}
	t.heldTs = nil
}

// EffPriority returns the thread's effective (inherited) priority: its
// base priority plus any boost willed through the turnstiles it holds.
func (t *Thread) EffPriority() int { return int(t.effPrio.Load()) }
