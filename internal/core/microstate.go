package core

import (
	"fmt"
	"time"
)

// Microstate accounting, after Solaris's per-LWP microstates: every
// thread accumulates virtual-clock time in the state it is in, charged
// at the transition points the scheduler already passes through
// (create, enqueue, dispatch, park, unpark, stop, retire). Each
// transition reads the clock once and charges the elapsed interval to
// the outgoing state, so the per-state times telescope: they always
// sum exactly to the thread's lifetime, with no sampling error.

// Microstate is one per-thread accounting state.
type Microstate int

// Thread microstates.
const (
	// MSUser: on an LWP executing — user code and the kernel calls
	// made on its behalf. (A bound thread blocked inside a kernel
	// call stays MSUser at thread level; its LWP's microstates show
	// the kernel-side breakdown.)
	MSUser Microstate = iota
	// MSRunq: runnable, waiting on the run queue for an LWP — the
	// user-level dispatch latency.
	MSRunq
	// MSSleep: parked waiting for an event (condition wait,
	// thread_wait, stop-waiters).
	MSSleep
	// MSLock: parked on a contended synchronization object (the
	// thread published a wait-for edge before parking).
	MSLock
	// MSStopped: stopped by thread_stop or THREAD_STOP.
	MSStopped
	// NumMicrostates sizes accumulator arrays.
	NumMicrostates
)

// String implements fmt.Stringer.
func (ms Microstate) String() string {
	switch ms {
	case MSUser:
		return "user"
	case MSRunq:
		return "runq"
	case MSSleep:
		return "sleep"
	case MSLock:
		return "lock"
	case MSStopped:
		return "stopped"
	}
	return fmt.Sprintf("Microstate(%d)", int(ms))
}

// MicrostateTimes is a snapshot of one thread's accumulated state
// times. User+Runq+Sleep+Lock+Stopped always equals Total exactly.
type MicrostateTimes struct {
	User    time.Duration // on an LWP, executing
	Runq    time.Duration // waiting for an LWP
	Sleep   time.Duration // waiting for an event
	Lock    time.Duration // blocked on a synchronization object
	Stopped time.Duration // stopped
	Total   time.Duration // lifetime on the virtual clock
	State   Microstate    // state at snapshot time
	Dead    bool          // thread has retired; times are final
}

// Sum returns the sum of the per-state times (== Total).
func (mt MicrostateTimes) Sum() time.Duration {
	return mt.User + mt.Runq + mt.Sleep + mt.Lock + mt.Stopped
}

// msInitLocked starts accounting for a newborn thread. Requires m.mu.
func (t *Thread) msInitLocked(now time.Duration, st Microstate) {
	a := t.auxb()
	a.msBorn, a.msMark, a.msState = now, now, st
}

// msSwitchLocked charges the interval since the last transition to
// the outgoing state and enters st. Requires m.mu; the caller reads
// the clock once per transition and passes it in.
func (t *Thread) msSwitchLocked(now time.Duration, st Microstate) {
	a := t.aux
	d := now - a.msMark
	if a.msState == MSLock {
		// A completed lock-wait episode: feed the per-interval sample
		// ring (no-op unless LockWaitSampleCap is set) — the p50/p99/
		// p999 source for the lock-policy shootout. The cumulative
		// accumulator below is unchanged.
		t.m.recordLockWaitLocked(d)
	}
	a.msAcc[a.msState] += d
	a.msMark = now
	a.msState = st
}

// msFinalLocked closes accounting at thread death. Requires m.mu.
func (t *Thread) msFinalLocked(now time.Duration) {
	a := t.aux
	a.msAcc[a.msState] += now - a.msMark
	a.msMark = now
}

// msParkState maps the library state a thread parks in onto its
// microstate: a published wait-for edge marks the park as
// blocked-on-lock rather than a plain event sleep.
func (t *Thread) msParkState(st ThreadState) Microstate {
	if st == ThreadStopped {
		return MSStopped
	}
	if st == ThreadSleeping && t.blocked.Load() != nil {
		return MSLock
	}
	return MSSleep
}

// Microstates snapshots the thread's microstate accounting. For a
// live thread the open interval is charged up to now; for a retired
// thread the times are final. In both cases Sum() == Total.
func (t *Thread) Microstates() MicrostateTimes {
	m := t.m
	m.mu.Lock()
	defer m.mu.Unlock()
	a := t.aux
	if a == nil {
		return MicrostateTimes{Dead: t.state == ThreadZombie}
	}
	acc := a.msAcc
	dead := t.state == ThreadZombie
	now := a.msMark
	if !dead {
		if clk := m.kern.Clock().Now(); clk > now {
			now = clk
		}
		acc[a.msState] += now - a.msMark
	}
	return MicrostateTimes{
		User:    acc[MSUser],
		Runq:    acc[MSRunq],
		Sleep:   acc[MSSleep],
		Lock:    acc[MSLock],
		Stopped: acc[MSStopped],
		Total:   now - a.msBorn,
		State:   a.msState,
		Dead:    dead,
	}
}
