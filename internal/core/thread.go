package core

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"sunosmt/internal/sim"
	"sunosmt/internal/trace"
)

// ThreadID identifies a thread within its process; thread IDs have no
// meaning outside the process (paper).
type ThreadID int

// Func is a thread body. Because Go provides no implicit
// thread-local "current thread" register, the thread handle is passed
// explicitly as the first argument; every potentially-blocking
// library call takes the calling thread. This is the one deliberate
// API deviation from Figure 4 and is recorded in DESIGN.md.
type Func func(t *Thread, arg any)

// CreateFlags are the or'able options of thread_create.
type CreateFlags int

// thread_create flags (paper, "Thread creation").
const (
	// ThreadStop: the thread is created suspended and will not run
	// until Continue.
	ThreadStop CreateFlags = 1 << iota
	// ThreadNewLWP: create a new LWP and add it to the pool used
	// to execute unbound threads.
	ThreadNewLWP
	// ThreadBindLWP: create a new LWP and permanently bind the new
	// thread to it.
	ThreadBindLWP
	// ThreadWait: another thread will eventually thread_wait for
	// this one; its ID is not reused until then.
	ThreadWait
	// ThreadDaemon threads do not keep the process alive: the
	// process exits when only daemon threads remain. (An extension
	// present in the shipped Solaris library.)
	ThreadDaemon
)

// ThreadState is the library-level state of a thread.
type ThreadState int

// Thread states.
const (
	ThreadRunnable ThreadState = iota
	ThreadRunning
	ThreadSleeping // blocked on a synchronization object
	ThreadStopped
	ThreadWaiting // in thread_wait
	ThreadZombie
)

// String implements fmt.Stringer.
func (s ThreadState) String() string {
	switch s {
	case ThreadRunnable:
		return "runnable"
	case ThreadRunning:
		return "running"
	case ThreadSleeping:
		return "sleeping"
	case ThreadStopped:
		return "stopped"
	case ThreadWaiting:
		return "waiting"
	case ThreadZombie:
		return "zombie"
	}
	return fmt.Sprintf("ThreadState(%d)", int(s))
}

// Errors returned by thread operations.
var (
	ErrNoThread   = errors.New("core: no such thread")
	ErrNotWaited  = errors.New("core: thread was not created with THREAD_WAIT")
	ErrSelfWait   = errors.New("core: cannot wait for the current thread")
	ErrDoubleWait = errors.New("core: another thread is already waiting")
	ErrBadPrio    = errors.New("core: priority must be >= 0")
	ErrExiting    = errors.New("core: process is exiting")
	ErrNotBound   = errors.New("core: thread is not bound to an LWP")

	// ErrAgain is EAGAIN — thr_create's documented failure when "a
	// system limit is exceeded": the per-process thread cap, a stack
	// allocation failure, or the kernel refusing another LWP. One
	// sentinel (the kernel's) is shared across layers so callers
	// test errors.Is(err, ErrAgain) regardless of which resource ran
	// out. Always transient: retry later or shed the request.
	ErrAgain = sim.ErrAgain
)

// CreateOpts carries the optional thread_create parameters.
type CreateOpts struct {
	Flags CreateFlags
	// Stack is the caller-supplied stack (stack_addr/stack_size);
	// nil means the library allocates (and caches) a default
	// stack. Thread-local storage is carved from the top of a
	// caller-supplied stack so the library never calls malloc on
	// the caller's behalf (paper design goal).
	Stack []byte
	// StackSize requests a specific library-allocated stack size
	// when Stack is nil.
	StackSize int
	// Priority sets the initial priority when > 0; the zero value
	// keeps the library default (1). Higher values win.
	Priority int
}

// Thread is a user-level thread: per the paper its unique state is
// the thread ID, register state (here: the goroutine and gate),
// stack, signal mask, priority, and thread-local storage.
type Thread struct {
	m     *Runtime
	id    ThreadID
	flags CreateFlags
	fn    Func
	arg   any

	gate chan struct{} // run grant; buffered(1)

	// Intrusive run-queue node (Solaris: t_link on the disp_q). All
	// four fields are guarded by the lock of the dispatcher shard
	// the thread is (or was last) queued on.
	rqNext, rqPrev *Thread
	rqLevel        int
	rqOn           bool
	rqSeq          uint64 // global push sequence; cross-shard FIFO tiebreak

	// shard is the dispatcher shard the thread queues on: the shard
	// it is queued on now, or the one it last ran from (wakeups
	// queue it back there, cache-affine). -1 before the first
	// enqueue. Atomic: remove/requeue read it lock-free and confirm
	// under the shard lock.
	shard atomic.Int32

	// poppedFrom is the shard index the most recent dispatcher pop
	// took the thread from, or -1 before its first pop. The dispatch
	// trace records it (as shard+1) in EvThreadRun's Arg so a
	// schedule journal captures which queue the pop chose — the one
	// dispatcher decision the event stream otherwise loses.
	poppedFrom atomic.Int32

	// Intrusive sleep-queue node. sqNext/sqPrev are guarded by the
	// shard lock of the channel the thread is queued on; sqBkt
	// itself is atomic so teardown can read it without that lock.
	sqNext, sqPrev *Thread
	sqBkt          atomic.Pointer[sleepqBucket]

	// waitWC is the thread_wait sleep channel of this thread:
	// threads waiting for this one to exit park here. Immutable
	// after create.
	waitWC WaitChan

	// onCPU mirrors whether the thread currently holds a processor
	// grant. Advisory (read lock-free by the adaptive mutex spin
	// policy: spin while the owner is observed running).
	onCPU atomic.Bool

	// blocked is the wait-for edge published just before parking on
	// a synchronization object; atomic so the hot park/unpark path
	// publishes it without touching Runtime.mu.
	blocked atomic.Pointer[BlockInfo]

	// effPrio is the effective (inherited) dispatch priority: the
	// base priority plus any boost willed through held turnstiles.
	// The run queue and the sleep queues order by it. Written only
	// under m.mu (setEffLocked); atomic so the inheritance walk and
	// the sleep-queue insert read it without m.mu.
	effPrio atomic.Int32

	// heldTs heads the list of turnstiles this thread owns (the
	// locks it holds that track ownership); guarded by m.mu.
	heldTs *Turnstile

	// All fields below are guarded by m.mu unless noted.
	state      ThreadState
	prio       int
	lwp        *poolLWP // while running unbound
	bndLWP     *sim.LWP // bound threads only; immutable after create
	started    bool
	killed     bool
	preempt    bool
	stopReq    bool
	wakePermit bool
	sigmask    sim.Sigset // also mirrored into the LWP while running
	errno      int

	// Stack descriptor. Library stacks are reservations in the
	// process address space (or the built-in flat mapper): stkBase/
	// stkSize name the carve and stackOwn marks it library-owned.
	// A caller-supplied stack keeps its bytes in stack.
	stkBase  int64
	stkSize  int64
	stackOwn bool
	stack    []byte // caller-supplied stack only
	tls      []byte // thread-local storage block (pooled)

	// aux is the cold half of the thread: TSD slots, wait/exit
	// bookkeeping, signal pending set, fork continuation, and
	// microstate accounting. It is split out so the hot scheduling
	// fields above pack tightly, and it recycles with the shell
	// through the freelist. Guarded by m.mu unless noted.
	aux *threadAux
}

// threadAux holds the demoted cold per-thread state. One block is
// allocated per shell and scrubbed at reuse (deferred scrub: a
// retired thread's handle keeps readable microstates until a later
// create recycles the struct, like pthread_t reuse).
type threadAux struct {
	// tsd is the thread-specific-data slot table, indexed by TSDKey.
	// Owner-thread access only (no lock): see tsd.go.
	tsd []any

	stopWaiters []*Thread
	pending     sim.Sigset // thread-directed pending signals
	forkCont    Func
	forkArg     any

	// Microstate accounting (see microstate.go): the state being
	// charged, the virtual time of the last transition, birth time,
	// and the per-state accumulators. Guarded by m.mu.
	msState Microstate
	msMark  time.Duration
	msBorn  time.Duration
	msAcc   [NumMicrostates]time.Duration
}

// auxb returns the thread's aux block, allocating it if the thread
// has never had one. Threads obtained through Create always have one;
// the allocation covers zero-value handles defensively.
func (t *Thread) auxb() *threadAux {
	if t.aux == nil {
		t.aux = &threadAux{}
	}
	return t.aux
}

// ID implements thread_get_id for this thread handle.
func (t *Thread) ID() ThreadID { return t.id }

// Runtime returns the owning threads library instance.
func (t *Thread) Runtime() *Runtime { return t.m }

// State reports the thread's current state.
func (t *Thread) State() ThreadState {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return t.state
}

// Bound reports whether the thread is permanently bound to an LWP.
func (t *Thread) Bound() bool { return t.bndLWP != nil }

// BoundLWP returns the LWP a bound thread is permanently attached to,
// or nil for an unbound thread. Kernel scheduling controls that
// outlive a single dispatch — priocntl, pset_bind, processor_bind —
// only make sense against this LWP.
func (t *Thread) BoundLWP() *sim.LWP { return t.bndLWP }

func (t *Thread) bound() bool { return t.bndLWP != nil }

// LWP returns the LWP currently executing the thread. For bound
// threads this never changes; for unbound threads it is only
// meaningful from the thread itself while running.
func (t *Thread) LWP() *sim.LWP {
	if t.bndLWP != nil {
		return t.bndLWP
	}
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	if t.lwp != nil {
		return t.lwp.l
	}
	return nil
}

// grant hands the CPU to the thread's goroutine.
func (t *Thread) grant() { t.gate <- struct{}{} }

// Create implements thread_create: it allocates the thread and makes
// it runnable (or stopped, with ThreadStop). Creation of an unbound
// thread involves no kernel call — the property behind the 42x ratio
// in the paper's Figure 5 — and in steady state no heap allocation
// either: the shell, its gate channel, its TSD/microstate block, its
// TLS block, and its stack reservation all come from the runtime's
// freelists, refilled by exiting threads.
func (m *Runtime) Create(fn Func, arg any, opts CreateOpts) (*Thread, error) {
	if fn == nil {
		return nil, fmt.Errorf("core: nil thread function")
	}
	m.mu.Lock()
	if m.dying.Load() {
		m.mu.Unlock()
		return nil, ErrExiting
	}
	if m.cfg.MaxThreads > 0 && m.nlive >= m.cfg.MaxThreads {
		m.mu.Unlock()
		return nil, fmt.Errorf("core: %d live threads at cap %d: %w", m.nlive, m.cfg.MaxThreads, ErrAgain)
	}
	m.tlsFrozen = true
	// Stack: caller-supplied, else a reservation from the library's
	// cache (TLS lives in its own pooled block; a caller-supplied
	// stack carries TLS at its top so the library never calls malloc
	// on the caller's behalf).
	tlsSize := m.tlsSize
	var (
		span  stackSpan
		stack []byte
		tls   []byte
		own   bool
	)
	switch {
	case opts.Stack != nil:
		stack = opts.Stack
		if len(stack) < tlsSize {
			m.mu.Unlock()
			return nil, fmt.Errorf("core: stack smaller than thread-local storage (%d < %d)", len(stack), tlsSize)
		}
		if tlsSize > 0 {
			tls = stack[len(stack)-tlsSize:]
		}
	default:
		size := opts.StackSize
		if size <= 0 {
			size = m.cfg.DefaultStackSize
		}
		if m.kern.Chaos().StackFail() {
			m.mu.Unlock()
			return nil, fmt.Errorf("core: transient stack allocation failure: %w", ErrAgain)
		}
		var err error
		span, err = m.stackFromCacheLocked(int64(size))
		if err != nil {
			m.mu.Unlock()
			return nil, err
		}
		own = true
		tls = m.tlsFromCacheLocked()
	}
	clear(tls) // TLS starts zeroed (paper)
	t := m.allocThreadLocked()
	m.nextID++
	t.m = m
	t.id = m.nextID
	t.flags = opts.Flags
	t.fn = fn
	t.arg = arg
	t.prio = 1
	if opts.Priority > 0 {
		t.prio = opts.Priority
	}
	t.effPrio.Store(int32(t.prio))
	t.shard.Store(-1) // first enqueue places round-robin
	t.poppedFrom.Store(-1)
	t.stack = stack
	t.stkBase, t.stkSize = span.base, span.size
	t.stackOwn = own
	t.tls = tls
	m.threads[t.id] = t
	m.nlive++
	if opts.Flags&ThreadDaemon != 0 {
		m.ndaemon++
	}
	bind := opts.Flags&ThreadBindLWP != 0
	now := m.kern.Clock().Now()
	if opts.Flags&ThreadStop != 0 {
		t.state = ThreadStopped
		t.stopReq = true
		t.msInitLocked(now, MSStopped)
	} else {
		t.state = ThreadRunnable
		t.msInitLocked(now, MSRunq)
	}
	m.mu.Unlock()

	if opts.Flags&ThreadNewLWP != 0 && !bind {
		// THREAD_NEW_LWP increments the pool. A refused LWP refuses
		// the whole create, and the half-built thread is unwound so
		// a failed thr_create leaves no trace (EAGAIN semantics).
		if err := m.addPoolLWP(); err != nil {
			m.uncreate(t)
			return nil, err
		}
	}
	if bind {
		l, err := m.kern.NewLWP(m.proc, sim.ClassTS, 30)
		if err != nil {
			m.uncreate(t)
			return nil, err
		}
		t.bndLWP = l
		m.exitWG.Add(1)
		m.mu.Lock()
		t.started = true
		m.mu.Unlock()
		go t.boundMain()
		return t, nil
	}
	if opts.Flags&ThreadStop == 0 {
		m.enqueue(t)
	}
	return t, nil
}

// uncreate unwinds a registered thread after a failed create (the
// LWP-acquiring tail of Create refused). The thread never ran and was
// never enqueued, so unwinding is pure deregistration: close its
// microstate interval, drop it from the thread table, and return its
// stack, TLS block, and shell to the freelists. Afterwards no runq
// link, sleepq link, turnstile, TLS block, or lock-graph vertex
// refers to it — the invariant the exhaustion chaos sweep asserts.
func (m *Runtime) uncreate(t *Thread) {
	m.mu.Lock()
	t.state = ThreadZombie
	t.msFinalLocked(m.kern.Clock().Now())
	delete(m.threads, t.id)
	m.nlive--
	if t.flags&ThreadDaemon != 0 {
		m.ndaemon--
	}
	m.freeThreadLocked(t)
	m.mu.Unlock()
}

// enqueue makes an unbound thread runnable and finds it an LWP.
func (m *Runtime) enqueue(t *Thread) {
	m.mu.Lock()
	if t.state == ThreadZombie || m.dying.Load() {
		m.mu.Unlock()
		return
	}
	t.state = ThreadRunnable
	t.msSwitchLocked(m.kern.Clock().Now(), MSRunq)
	m.disp.push(t)
	// Wake an idle LWP if there is one; otherwise ask a
	// lower-priority running thread to yield.
	var wake *poolLWP
	if n := len(m.idle); n > 0 {
		wake = m.idle[n-1]
		m.idle = m.idle[:n-1]
	} else {
		m.flagPreemptionLocked(int(t.effPrio.Load()))
	}
	m.mu.Unlock()
	if wake != nil {
		m.kern.Unpark(wake.l)
	}
}

// flagPreemptionLocked marks the lowest-effective-priority running
// unbound thread for preemption if it is beneath prio.
func (m *Runtime) flagPreemptionLocked(prio int) {
	var victim *Thread
	for _, pl := range m.pool {
		if pl.cur != nil && (victim == nil || pl.cur.effPrio.Load() < victim.effPrio.Load()) {
			victim = pl.cur
		}
	}
	if victim != nil && int(victim.effPrio.Load()) < prio {
		victim.preempt = true
	}
}

// threadMain runs one incarnation of an unbound thread on the calling
// animator goroutine. It reports whether the goroutine may animate
// another thread afterwards: true after a normal retire, false when a
// kernel unwind (process death, exec) tore through the body.
func (t *Thread) threadMain() (reusable bool) {
	defer t.releaseOnUnwind()
	<-t.gate // first dispatch
	t.checkKilledPanic()
	t.pollSignals()
	t.callBody()
	t.retire()
	return true
}

// callBody runs the thread function, turning Thread.Exit's panic into
// a normal return and any other panic into a simulated process abort.
// Kernel unwinds pass through untouched.
func (t *Thread) callBody() {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if te, ok := r.(threadExitPanic); ok && te.t == t {
			return
		}
		if sim.IsUnwind(r) {
			panic(r)
		}
		t.abortProcess(r)
	}()
	t.fn(t, t.arg)
}

// abortProcess contains a panicking thread body: the panic becomes a
// fatal-SIGABRT-with-core death of the simulated process (observable
// through WaitExit), never a crash of the host binary or of any other
// simulated process. It does not return — Kernel.Abort unwinds, and
// the normal unwind recovery retires the LWP.
func (t *Thread) abortProcess(r any) {
	msg := fmt.Sprintf("thread %d panic: %v\n%s", t.id, r, debug.Stack())
	t.m.tr.Add("thread", "thread %d panics: %v", t.id, r)
	l := t.LWP()
	if l == nil {
		// The thread lost its LWP (it raced with process death);
		// unwind like any other torn-down thread.
		panic(&sim.Unwind{Proc: t.m.proc, Reason: "panic during teardown"})
	}
	t.m.kern.Abort(l, msg)
}

// releaseOnUnwind recovers a kernel unwind (process death, exec,
// exit) that tore through the thread body. It accounts the thread as
// gone and, crucially, releases the LWP dispatcher goroutine that is
// waiting for this thread to hand control back.
func (t *Thread) releaseOnUnwind() {
	r := recover()
	if r == nil {
		return
	}
	if !sim.IsUnwind(r) {
		panic(r)
	}
	m := t.m
	m.threadGone(t)
	m.mu.Lock()
	var pl *poolLWP
	for _, x := range m.pool {
		if x.cur == t {
			pl = x
			break
		}
	}
	m.mu.Unlock()
	if pl != nil {
		yieldLWP(pl)
	}
	m.sweepIfDying()
}

// boundMain is the goroutine body of a bound thread: it animates its
// own LWP for the thread's whole life.
func (t *Thread) boundMain() {
	defer t.m.exitWG.Done()
	defer func() {
		r := recover()
		if r != nil && !sim.IsUnwind(r) {
			panic(r)
		}
		t.m.kern.ExitLWP(t.bndLWP)
		if r != nil {
			t.m.threadGone(t)
			t.m.sweepIfDying()
		}
	}()
	m := t.m
	m.kern.Start(t.bndLWP)
	m.kern.SetLWPMask(t.bndLWP, sim.SigSetMask, t.mask())
	m.touchStack(t) // first frame: commit the top of the stack carve
	m.mu.Lock()
	stopped := t.stopReq
	if !stopped {
		t.state = ThreadRunning
		t.msSwitchLocked(m.kern.Clock().Now(), MSUser)
	}
	m.mu.Unlock()
	t.onCPU.Store(true)
	if stopped {
		t.parkSelf(ThreadStopped)
	}
	t.pollSignals()
	t.callBody()
	t.retire()
}

// currentPL returns the pool LWP the thread is on, or nil.
func (t *Thread) currentPL() *poolLWP {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return t.lwp
}

// parkSelf blocks the calling thread with the given state until
// someone re-enqueues it. This is the user-level context switch: for
// unbound threads control returns to the LWP dispatcher with no
// kernel involvement. A wake permit left by an earlier Unpark (the
// wake raced ahead of the park) is consumed and the park elided, so
// the synchronization primitives built on park/unpark are race-free.
func (t *Thread) parkSelf(state ThreadState) {
	m := t.m
	m.mu.Lock()
	switch state {
	case ThreadSleeping, ThreadWaiting:
		if t.wakePermit && !t.bound() {
			t.wakePermit = false
			m.mu.Unlock()
			return
		}
	case ThreadStopped:
		// A thread_continue that raced ahead of this park wins:
		// the stop never takes effect.
		if !t.stopReq {
			m.mu.Unlock()
			return
		}
	}
	if t.bound() {
		t.state = state
		t.msSwitchLocked(m.kern.Clock().Now(), t.msParkState(state))
		m.mu.Unlock()
		t.onCPU.Store(false)
		if state == ThreadStopped {
			t.noteStopped()
		}
		m.kern.Park(t.bndLWP) // kernel park has its own permit
		m.mu.Lock()
		t.state = ThreadRunning
		t.msSwitchLocked(m.kern.Clock().Now(), MSUser)
		m.mu.Unlock()
		t.onCPU.Store(true)
		t.stopIfRequested(state)
		return
	}
	pl := t.lwp
	t.state = state
	t.msSwitchLocked(m.kern.Clock().Now(), t.msParkState(state))
	t.lwp = nil
	if pl != nil && pl.cur == t {
		// Release the dispatcher's claim now, not when it next runs:
		// if this thread is re-dispatched elsewhere and exits before
		// pl's dispatcher drains back, a stale pl.cur would make
		// releaseOnUnwind hand the exit token to the wrong LWP.
		pl.cur = nil
	}
	m.mu.Unlock()
	t.onCPU.Store(false)
	if state == ThreadStopped {
		t.noteStopped()
	}
	m.rings.Record(pl.l.CurCPU(), trace.EvThreadPark, int(m.proc.PID()), int(pl.l.ID()), int(t.id), uint64(state))
	yieldLWP(pl)
	<-t.gate
	t.checkKilledPanic()
	t.stopIfRequested(state)
}

// stopIfRequested honours a thread_stop that arrived while the thread
// was parked: the wake becomes a stop at this dispatch point rather
// than a resumption.
func (t *Thread) stopIfRequested(prev ThreadState) {
	if prev == ThreadStopped {
		return // just woke from the stop itself
	}
	t.m.mu.Lock()
	stop := t.stopReq
	t.m.mu.Unlock()
	if stop {
		t.parkSelf(ThreadStopped)
	}
}

// checkKilledPanic unwinds a thread whose wake raced with process
// death — whether the grant came from the dying sweep or from a
// dispatcher that lost the race. The unwind lands in releaseOnUnwind,
// which hands the LWP back to any dispatcher still waiting on it; a
// plain return here would leave that dispatcher blocked forever.
func (t *Thread) checkKilledPanic() bool {
	t.m.mu.Lock()
	killed := t.killed || t.m.dying.Load()
	t.m.mu.Unlock()
	if killed {
		panic(&sim.Unwind{Proc: t.m.proc, Reason: "process dying"})
	}
	return false
}

// unparkInto re-enqueues a previously parked thread. If the thread
// has not parked yet (the wake raced ahead), a wake permit is left
// for its park to consume.
func (m *Runtime) unparkInto(t *Thread) {
	if t.bound() {
		m.mu.Lock()
		if t.state != ThreadZombie {
			t.state = ThreadRunnable
			t.msSwitchLocked(m.kern.Clock().Now(), MSRunq)
		}
		m.mu.Unlock()
		m.kern.Unpark(t.bndLWP)
		return
	}
	m.mu.Lock()
	switch t.state {
	case ThreadSleeping, ThreadWaiting:
		m.mu.Unlock()
		m.enqueue(t)
	case ThreadZombie:
		m.mu.Unlock()
	default:
		t.wakePermit = true
		m.mu.Unlock()
	}
}

// Unpark makes a thread parked with Park runnable again (or leaves a
// wake permit if it has not parked yet). The synchronization package
// uses this as the wake half of its sleep queues.
func (t *Thread) Unpark() { t.m.unparkInto(t) }

// OnCPU reports whether the thread currently holds a processor grant.
// Advisory and lock-free: the adaptive mutex spin policy uses it to
// spin only while the lock owner is observed running.
func (t *Thread) OnCPU() bool { return t.onCPU.Load() }

// UnparkAll wakes a batch of parked threads — the multi-thread wakeup
// of Cond.Broadcast, rwlock release, and thread exit. Threads of one
// runtime are re-enqueued in a single pass over the scheduler lock
// instead of one lock round-trip per waiter.
func UnparkAll(ts []*Thread) {
	for i := 0; i < len(ts); {
		m := ts[i].m
		j := i + 1
		for j < len(ts) && ts[j].m == m {
			j++
		}
		m.unparkBatch(ts[i:j])
		i = j
	}
}

// unparkBatch is unparkInto over a batch of this runtime's threads:
// one Runtime.mu critical section inserts every waking thread into
// the run queue, then idle LWPs are kicked (and at most one
// preemption flagged) outside the lock.
func (m *Runtime) unparkBatch(ts []*Thread) {
	if len(ts) == 0 {
		return
	}
	if len(ts) == 1 {
		m.unparkInto(ts[0])
		return
	}
	var kicks []*sim.LWP
	m.mu.Lock()
	now := m.kern.Clock().Now()
	maxPrio := -1
	woken := 0
	for _, t := range ts {
		if t.bound() {
			if t.state != ThreadZombie {
				t.state = ThreadRunnable
				t.msSwitchLocked(now, MSRunq)
			}
			kicks = append(kicks, t.bndLWP)
			continue
		}
		switch t.state {
		case ThreadSleeping, ThreadWaiting:
			if m.dying.Load() {
				continue // the sweep owns these threads now
			}
			t.state = ThreadRunnable
			t.msSwitchLocked(now, MSRunq)
			m.disp.push(t)
			woken++
			if p := int(t.effPrio.Load()); p > maxPrio {
				maxPrio = p
			}
		case ThreadZombie:
		default:
			t.wakePermit = true
		}
	}
	for woken > 0 && len(m.idle) > 0 {
		pl := m.idle[len(m.idle)-1]
		m.idle = m.idle[:len(m.idle)-1]
		kicks = append(kicks, pl.l)
		woken--
	}
	if woken > 0 && maxPrio >= 0 {
		m.flagPreemptionLocked(maxPrio)
	}
	m.mu.Unlock()
	for _, l := range kicks {
		m.kern.Unpark(l)
	}
}

// Park blocks the calling thread as sleeping on a synchronization
// object until Unpark. For an unbound thread this switches to another
// thread with no kernel involvement.
func (t *Thread) Park() { t.parkSelf(ThreadSleeping) }

// Yield gives up the processor to a higher- or equal-priority thread,
// if any (thr_yield). For an unbound thread this is a pure user-level
// operation unless the run queue is empty.
func (t *Thread) Yield() {
	m := t.m
	if t.bound() {
		m.kern.Yield(t.bndLWP)
		t.Checkpoint()
		return
	}
	m.mu.Lock()
	hasWork := m.disp.len() > 0
	if hasWork {
		t.state = ThreadRunnable
		t.msSwitchLocked(m.kern.Clock().Now(), MSRunq)
		m.disp.push(t)
		pl := t.lwp
		t.lwp = nil
		if pl != nil && pl.cur == t {
			pl.cur = nil // see parkSelf: avoid a stale dispatcher claim
		}
		m.mu.Unlock()
		t.onCPU.Store(false)
		pl.fair = true // next pop: oldest equal on any shard, not affinity
		yieldLWP(pl)
		<-t.gate
		t.checkKilledPanic()
	} else {
		m.mu.Unlock()
		// Nothing else to run; let the kernel checkpoint.
		if pl := t.currentPL(); pl != nil {
			m.kern.Checkpoint(pl.l)
		}
	}
	t.Checkpoint()
}

// Checkpoint is the thread-level preemption point: it honours stop
// requests, library preemption flags, pending thread signals, and
// kernel checkpoints. Synchronization operations call it.
func (t *Thread) Checkpoint() {
	m := t.m
	m.mu.Lock()
	stop := t.stopReq
	preempt := t.preempt
	t.preempt = false
	m.mu.Unlock()
	if stop {
		t.parkSelf(ThreadStopped)
	}
	// Chaos: force the thread back onto the run queue as if a
	// higher-priority thread had flagged it; the branch below only
	// switches when another thread is actually runnable.
	if !preempt && !t.bound() && m.kern.Chaos().ThreadPreempt() {
		preempt = true
	}
	if preempt && !t.bound() {
		m.mu.Lock()
		if m.disp.len() > 0 {
			t.state = ThreadRunnable
			t.msSwitchLocked(m.kern.Clock().Now(), MSRunq)
			m.disp.push(t)
			pl := t.lwp
			t.lwp = nil
			m.mu.Unlock()
			t.onCPU.Store(false)
			pl.fair = true
			yieldLWP(pl)
			<-t.gate
			t.checkKilledPanic()
		} else {
			m.mu.Unlock()
		}
	}
	if l := t.LWP(); l != nil {
		m.kern.Checkpoint(l)
	}
	// Always poll: thread-directed signals (thread_kill) pend at
	// the library level, invisible to the kernel checkpoint.
	t.pollSignals()
}

// Exit implements thread_exit for the calling thread: it terminates
// the thread and deallocates library resources. It never returns (it
// unwinds to the thread's entry frame).
func (t *Thread) Exit() {
	panic(threadExitPanic{t})
}

type threadExitPanic struct{ t *Thread }

// retire is the common end-of-life path, run on the thread's own
// goroutine after its body returns (or Exit unwinds). In steady state
// it allocates nothing: the single thread_wait waiter is dequeued in
// place, and an unwaited thread's stack, TLS, and shell go straight
// back to the freelists.
func (t *Thread) retire() {
	t.runTSDDestructors()
	m := t.m
	m.mu.Lock()
	if t.state == ThreadZombie {
		m.mu.Unlock()
		return
	}
	t.state = ThreadZombie
	t.onCPU.Store(false)
	t.msFinalLocked(m.kern.Clock().Now())
	m.dropTurnstilesLocked(t)
	pl := t.lwp
	t.lwp = nil
	delete(m.threads, t.id)
	m.nlive--
	if t.flags&ThreadDaemon != 0 {
		m.ndaemon--
	}
	last := m.nlive-m.ndaemon == 0 && !m.dying.Load()
	id := t.id
	bound := t.bound()
	bl := t.bndLWP
	var single *Thread
	var wake []*Thread
	if t.flags&ThreadWait != 0 {
		// The shell lives on as a zombie until thread_wait reaps it.
		// At most one waiter can be parked on waitWC (double waits
		// are ErrDoubleWait), so a single dequeue suffices.
		m.zombies[t.id] = t
		single = t.waitWC.DequeueOne()
		wake = m.anyWC.DequeueAll()
	} else {
		// Never waited for: recycle everything now. After this point
		// t may be handed to a concurrent Create, so only the locals
		// above are used below. The last thread's shell is kept out
		// of the freelist — its process-exit unwind still inspects t
		// in releaseOnUnwind/threadGone.
		m.releaseStackLocked(t)
		if !last {
			m.pushFreeLocked(t)
		}
	}
	m.mu.Unlock()
	if m.tr != nil {
		m.tr.Add("thread", "thread %d exits", id)
	}
	if single != nil {
		m.unparkInto(single)
	}
	m.unparkBatch(wake)
	if last && !m.proc.Dying() {
		// The last non-daemon thread exited: the process exits,
		// destroying all LWPs. The kernel unwind is caught by
		// releaseOnUnwind, which hands the LWP back to its
		// dispatcher for its own unwinding.
		l := bl
		if l == nil && pl != nil {
			l = pl.l
		}
		if l != nil {
			m.kern.Exit(l, 0)
		}
		return
	}
	if bound {
		return // boundMain's defer retires the LWP
	}
	if pl != nil {
		yieldLWP(pl)
	}
}

// ExitProcess implements exit(2) from a thread: all threads and LWPs
// in the process are destroyed (paper: "if one thread calls exit(),
// all threads are destroyed"). It never returns.
func (t *Thread) ExitProcess(status int) {
	l := t.LWP()
	if l == nil {
		panic("core: ExitProcess outside a running thread")
	}
	t.m.kern.Exit(l, status)
}

// SetForkContinuation registers the function a full fork() re-creates
// this thread with in the child process. Goroutine stacks cannot be
// cloned in Go, so duplicated threads resume from an explicit
// continuation rather than mid-stack; threads without one simply do
// not reappear in the child (see DESIGN.md).
func (t *Thread) SetForkContinuation(fn Func, arg any) {
	t.m.mu.Lock()
	a := t.auxb()
	a.forkCont = fn
	a.forkArg = arg
	t.m.mu.Unlock()
}

// ForkContinuation returns the registered continuation, if any.
func (t *Thread) ForkContinuation() (Func, any) {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	a := t.auxb()
	return a.forkCont, a.forkArg
}

// Exec implements the thread side of exec(2): it detaches the calling
// thread from the pool, performs the kernel exec (destroying every
// other LWP and, cooperatively, every other thread), tears down this
// runtime's user-level state, and returns the fresh LWP 0 from which
// the caller builds the new image's runtime. The calling thread must
// call Exit (or return) immediately afterwards.
func (t *Thread) Exec(name string) (*sim.LWP, error) {
	m := t.m
	k := m.kern
	// Move onto a private LWP so the pool dispatcher gets its LWP
	// back and can be torn down like the rest.
	l2, err := k.NewLWP(m.proc, sim.ClassTS, 30)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	pl := t.lwp
	t.lwp = nil
	t.bndLWP = l2
	m.mu.Unlock()
	if pl != nil {
		yieldLWP(pl)
	}
	k.Start(l2)
	nl, err := k.Exec(l2, name)
	if err != nil {
		return nil, err
	}
	m.Shutdown()
	return nl, nil
}

// threadGone is the idempotent forced-retirement used when a kernel
// unwind (process death) tears a thread down outside retire.
func (m *Runtime) threadGone(t *Thread) {
	m.mu.Lock()
	if t.state == ThreadZombie {
		m.mu.Unlock()
		return
	}
	t.state = ThreadZombie
	t.msFinalLocked(m.kern.Clock().Now())
	m.dropTurnstilesLocked(t)
	t.lwp = nil
	m.disp.remove(t)
	delete(m.threads, t.id)
	m.nlive--
	if t.flags&ThreadDaemon != 0 {
		m.ndaemon--
	}
	m.mu.Unlock()
	t.onCPU.Store(false)
	// A torn-down thread may still be linked on a sleep queue (it was
	// parked on a primitive when the process died); unlink it so the
	// global sharded table does not retain it.
	sleepqDetach(t)
}
