package core

import (
	"fmt"

	"sunosmt/internal/sim"
)

// This file implements the thread half of the paper's signal model:
// per-thread signal masks, thread_kill, sigsend(P_THREAD_ALL), trap
// raising, and the delivery of process interrupts to whichever thread
// has them unmasked.
//
// All threads share the process's handler vector (set with
// Runtime.Signal, the signal(2)/sigaction(2) analogue). Each thread
// has its own mask; while a thread runs, the library mirrors its mask
// into the executing LWP, so the kernel routes interrupts only to
// LWPs whose current thread can take them.

// Signal installs a process-wide disposition, like signal(2). handler
// runs in the context of the thread that takes the signal.
func (m *Runtime) Signal(sig sim.Signal, disp sim.Disposition, handler func(*Thread, sim.Signal)) error {
	return m.SignalMask(sig, disp, handler, 0)
}

// SignalMask is Signal with a sigaction-style handler mask, blocked
// in the handling thread for the duration of the handler.
func (m *Runtime) SignalMask(sig sim.Signal, disp sim.Disposition, handler func(*Thread, sim.Signal), handlerMask sim.Sigset) error {
	var cookie any
	if handler != nil {
		cookie = handler
	}
	return m.kern.SetActionCookie(m.proc, sig, disp, nil, cookie, handlerMask)
}

// mask returns the thread's signal mask (thread-safe snapshot).
func (t *Thread) mask() sim.Sigset {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return t.sigmask
}

// SigSetMask implements thread_sigsetmask: it adjusts the calling
// thread's signal mask and returns the old mask. If the thread is
// running, the LWP's mask is updated immediately; unmasking a
// process-pended signal delivers it at the next checkpoint (which
// this call performs).
func (t *Thread) SigSetMask(how sim.SigHow, set sim.Sigset) sim.Sigset {
	m := t.m
	m.mu.Lock()
	old := t.sigmask
	t.sigmask = sim.ApplyMask(old, how, set)
	m.mu.Unlock()
	if l := t.LWP(); l != nil {
		m.kern.SetLWPMask(l, sim.SigSetMask, t.sigmask)
	}
	t.pollSignals()
	return old
}

// SigMask returns the calling thread's signal mask.
func (t *Thread) SigMask() sim.Sigset { return t.mask() }

// Kill implements thread_kill: it sends sig to a specific thread in
// the same process. The signal behaves like a trap: it is handled
// only by the specified thread, when that thread next runs with the
// signal unmasked.
func (caller *Thread) Kill(target *Thread, sig sim.Signal) error {
	if !sig.Valid() {
		return fmt.Errorf("core: bad signal %d", int(sig))
	}
	m := caller.m
	m.mu.Lock()
	if target.state == ThreadZombie {
		m.mu.Unlock()
		return ErrNoThread
	}
	a := target.auxb()
	a.pending = a.pending.Add(sig)
	masked := target.sigmask.Has(sig)
	parked := target.state == ThreadSleeping || target.state == ThreadWaiting
	m.mu.Unlock()
	if masked {
		return nil // pends on the thread until unmasked
	}
	if parked {
		// Wake the thread so it can handle the signal; the
		// synchronization primitives re-check their condition on
		// spurious wakeups, as they must.
		m.unparkInto(target)
	}
	return nil
}

// SigSendAll implements sigsend(P_THREAD_ALL): sig is sent to every
// thread in the process.
func (caller *Thread) SigSendAll(sig sim.Signal) error {
	m := caller.m
	m.mu.Lock()
	targets := make([]*Thread, 0, len(m.threads))
	for _, t := range m.threads {
		targets = append(targets, t)
	}
	m.mu.Unlock()
	for _, t := range targets {
		if err := caller.Kill(t, sig); err != nil && err != ErrNoThread {
			return err
		}
	}
	return nil
}

// RaiseTrap reports a synchronous trap (SIGFPE, SIGSEGV, ...) caused
// by the calling thread. Per the paper, traps are handled only by the
// thread that caused them. If the trap is caught, its handler runs on
// this thread before RaiseTrap returns; a default disposition
// terminates the process.
func (t *Thread) RaiseTrap(sig sim.Signal) {
	l := t.LWP()
	if l == nil {
		panic("core: RaiseTrap outside a running thread")
	}
	ts, ok := t.m.kern.RaiseTrap(l, sig)
	if !ok {
		return
	}
	t.runHandler(ts)
}

// pollSignals delivers pending signals to the calling thread: first
// thread-directed signals (thread_kill), then process-level signals
// the kernel routed to the executing LWP.
func (t *Thread) pollSignals() {
	m := t.m
	for {
		// Thread-directed pending signals.
		m.mu.Lock()
		a := t.auxb()
		deliverable := a.pending.Minus(t.sigmask)
		sig := deliverable.Lowest()
		if sig != sim.SIGNONE {
			a.pending = a.pending.Del(sig)
		}
		m.mu.Unlock()
		if sig == sim.SIGNONE {
			break
		}
		t.dispatchSignal(sig)
	}
	// Kernel-level (LWP/process) pending signals.
	l := t.LWP()
	if l == nil {
		return
	}
	for {
		ts, ok := m.kern.TakeSignal(l)
		if !ok {
			return
		}
		t.runHandler(ts)
	}
}

// dispatchSignal applies the process disposition to a thread-directed
// signal.
func (t *Thread) dispatchSignal(sig sim.Signal) {
	m := t.m
	disp, kh, cookie, hm := m.kern.ActionInfo(m.proc, sig)
	switch disp {
	case sim.SigIgn:
		return
	case sim.SigCatch:
		t.runHandler(sim.TakenSignal{Sig: sig, Handler: kh, Cookie: cookie, HandlerMask: hm})
		return
	}
	// SIG_DFL: the action affects the whole process (paper: "If a
	// signal handler is marked SIG_DFL or SIG_IGN the action ...
	// affects all the threads in the receiving process").
	if sim.DefaultActionOf(sig) == sim.ActIgnore {
		return
	}
	if l := t.LWP(); l != nil {
		m.kern.ApplyDefault(l, sig)
	}
}

// SigAltStack registers an alternate signal stack for the calling
// thread, which must be bound to an LWP: the paper deems alternate
// stacks too expensive for unbound threads ("this would require a
// system call to establish the alternate stack for each context
// switch"), so they are an LWP capability only.
func (t *Thread) SigAltStack(base, size int64, enabled bool) error {
	if !t.bound() {
		return ErrUnboundAltStack
	}
	t.m.kern.SigAltStack(t.bndLWP, base, size, enabled)
	return nil
}

// ErrUnboundAltStack reports an alternate-stack request by an unbound
// thread.
var ErrUnboundAltStack = fmt.Errorf("core: threads not bound to LWPs may not use alternate signal stacks")

// runHandler executes a caught signal's handler in this thread's
// context with the handler mask in effect, per sigaction semantics:
// the signal itself plus the action's mask are blocked for the
// duration.
func (t *Thread) runHandler(ts sim.TakenSignal) {
	m := t.m
	block := ts.HandlerMask.Add(ts.Sig)
	old := t.SigSetMask(sim.SigBlock, block)
	defer t.SigSetMaskNoPoll(sim.SigSetMask, old)
	if l := t.LWP(); l != nil && t.bound() {
		if m.kern.EnterAltStack(l) {
			defer m.kern.ExitAltStack(l)
		}
	}
	m.tr.Add("sig", "thread %d handles %v", t.id, ts.Sig)
	if th, ok := ts.Cookie.(func(*Thread, sim.Signal)); ok {
		th(t, ts.Sig)
		return
	}
	if ts.Handler != nil {
		ts.Handler(ts.Sig)
	}
}

// SigSetMaskNoPoll adjusts the mask without re-polling for signals;
// used when unwinding a handler frame to avoid recursion.
func (t *Thread) SigSetMaskNoPoll(how sim.SigHow, set sim.Sigset) sim.Sigset {
	m := t.m
	m.mu.Lock()
	old := t.sigmask
	t.sigmask = sim.ApplyMask(old, how, set)
	m.mu.Unlock()
	if l := t.LWP(); l != nil {
		m.kern.SetLWPMask(l, sim.SigSetMask, t.sigmask)
	}
	return old
}

// Pending returns the set of signals pending on the thread.
func (t *Thread) Pending() sim.Sigset {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	if a := t.aux; a != nil {
		return a.pending
	}
	return 0
}
