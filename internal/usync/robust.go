// Robust owner tracking for process-shared synchronization variables.
//
// The paper's shared variables "retain their state" in the mapped
// bytes — which cuts both ways: a process that dies inside a critical
// section leaves the lock word set forever, and every other process
// hangs. Real SVR4/Solaris grew robust mutexes for this hole: the
// owner's identity is recorded next to the lock word, the kernel
// sweeps owned locks at process death, and the next acquirer gets
// EOWNERDEAD plus a make-consistent/ENOTRECOVERABLE protocol.
//
// This file is the registry half of that design. tsync declares each
// shared variable's kind and word layout (below); the registry's
// death hook sweeps all declared variables owned by the dead process,
// clears the lock, marks the robust word OWNERDEAD and wakes all
// waiters. tsync's acquisition paths surface the mark as ErrOwnerDead.
package usync

import (
	"sort"

	"sunosmt/internal/sim"
)

// Kind tells the owner-death sweep which word layout a declared
// shared variable uses.
type Kind int

// Declared variable kinds. The word layouts are fixed contracts
// between tsync (which operates them) and the sweep (which recovers
// them):
//
//	KindMutex: w0=lock  w1=waiters  w2=owner  w3=robust
//	KindSema:  w0=count w1=owner    w2=robust
//	KindRW:    w0=readers w1=writer w2=wwaiting w3=upgrade w4=owner w5=robust
const (
	KindNone Kind = iota
	KindMutex
	KindSema
	KindRW
)

// Robust-word states, stored in the variable's robust word.
const (
	// RobustOK: no pending owner death.
	RobustOK uint64 = iota
	// RobustOwnerDead: the owner died holding the variable; the next
	// acquirer gets ErrOwnerDead and must make it consistent.
	RobustOwnerDead
	// RobustNotRecoverable: an ErrOwnerDead acquirer released the
	// variable without making it consistent; it is unusable forever.
	RobustNotRecoverable
	// RobustClaimed: (rwlock only) an acquirer holds the lock under
	// ErrOwnerDead and has not yet decided its fate; other threads
	// wait for the claim to resolve.
	RobustClaimed
)

// EncodeOwner packs a (pid, tid) pair into an owner word. Zero (no
// owner) is never a valid encoding for a live thread because pids
// start at 1.
func EncodeOwner(pid sim.PID, tid int) uint64 {
	return uint64(uint32(pid))<<32 | uint64(uint32(tid))
}

// DecodeOwner unpacks an owner word.
func DecodeOwner(w uint64) (pid sim.PID, tid int) {
	return sim.PID(uint32(w >> 32)), int(uint32(w))
}

// Declare records the variable's kind so the owner-death sweep knows
// its word layout. Idempotent; every process sharing the variable
// declares the same kind when it initializes its local handle.
func (v *Var) Declare(kind Kind) {
	v.reg.mu.Lock()
	v.st.kind = kind
	v.reg.mu.Unlock()
}

// SweepOwnerDead scans every declared shared variable owned by a
// thread of the dead process, clears the holder, marks the robust
// word OWNERDEAD and wakes all waiters. Registered as a kernel death
// hook, so it runs exactly once per process death (voluntary exit
// included — a clean exit with a held shared lock is still an owner
// death). The visit order rotates under chaos so seeds explore which
// waiter observes OWNERDEAD first.
func (r *Registry) SweepOwnerDead(pid sim.PID) {
	type entry struct {
		key  varKey
		st   *varState
		kind Kind
	}
	r.mu.Lock()
	entries := make([]entry, 0, len(r.vars))
	for key, st := range r.vars {
		if st.kind != KindNone {
			entries = append(entries, entry{key, st, st.kind})
		}
	}
	r.mu.Unlock()
	if len(entries) == 0 {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key.obj != entries[j].key.obj {
			return entries[i].key.obj < entries[j].key.obj
		}
		return entries[i].key.off < entries[j].key.off
	})
	start := 0
	if alt := r.kern.Chaos().SweepReorder(len(entries)); alt >= 0 {
		start = alt
	}
	for i := 0; i < len(entries); i++ {
		e := entries[(start+i)%len(entries)]
		v := &Var{reg: r, obj: e.st.obj, off: e.key.off, st: e.st}
		r.sweepVar(v, e.kind, pid)
	}
}

// sweepVar recovers one variable if a thread of the dead process owns
// it. Waiters are woken outside the word-lock, like every other
// operation on the variable.
func (r *Registry) sweepVar(v *Var, kind Kind, pid sim.PID) {
	swept := false
	v.Atomically(func(w Words) {
		switch kind {
		case KindMutex:
			opid, _ := DecodeOwner(w.Load(2))
			if opid != pid || w.Load(0) == 0 {
				return
			}
			w.Store(0, 0)
			w.Store(2, 0)
			w.Store(3, RobustOwnerDead)
		case KindSema:
			opid, _ := DecodeOwner(w.Load(1))
			if opid != pid {
				return
			}
			// Compensating V: restore the unit the dead holder
			// consumed, and leave a one-shot OWNERDEAD mark for
			// the thread that next consumes it.
			w.Store(0, w.Load(0)+1)
			w.Store(1, 0)
			w.Store(2, RobustOwnerDead)
		case KindRW:
			opid, _ := DecodeOwner(w.Load(4))
			if opid != pid {
				return
			}
			if w.Load(5) == RobustClaimed || w.Load(1) != 0 {
				// Dead process was the writer, or held the
				// post-OWNERDEAD claim (in either mode): clear
				// whatever it held and re-mark OWNERDEAD.
				w.Store(0, 0)
				w.Store(1, 0)
				w.Store(3, 0)
				w.Store(4, 0)
				w.Store(5, RobustOwnerDead)
			}
		default:
			return
		}
		swept = true
		r.kern.Trace().Add("usync", "pid %d died owning %s -> OWNERDEAD", pid, v.Name())
	})
	if swept {
		v.Wake(-1)
	}
}
