package usync

import (
	"sync"
	"testing"
	"time"

	"sunosmt/internal/sim"
	"sunosmt/internal/vm"
)

func animate(k *sim.Kernel, p *sim.Process, body func(l *sim.LWP)) <-chan struct{} {
	l, err := k.NewLWP(p, sim.ClassTS, 30)
	if err != nil {
		panic(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil && !sim.IsUnwind(r) {
				panic(r)
			}
			k.ExitLWP(l)
		}()
		k.Start(l)
		body(l)
	}()
	return done
}

func TestSameIdentitySharesState(t *testing.T) {
	k := sim.NewKernel(sim.Config{NCPU: 1})
	reg := NewRegistry(k)
	obj := vm.NewAnon(vm.PageSize)
	v1 := reg.Var(obj, 64)
	v2 := reg.Var(obj, 64)
	if v1.WaitQ() != v2.WaitQ() {
		t.Fatal("same identity produced different wait queues")
	}
	v3 := reg.Var(obj, 128)
	if v3.WaitQ() == v1.WaitQ() {
		t.Fatal("different offsets share a wait queue")
	}
	if reg.NumVars() != 2 {
		t.Fatalf("NumVars = %d, want 2", reg.NumVars())
	}
}

func TestWordsRoundTrip(t *testing.T) {
	k := sim.NewKernel(sim.Config{NCPU: 1})
	reg := NewRegistry(k)
	obj := vm.NewAnon(vm.PageSize)
	v := reg.Var(obj, 8)
	v.Atomically(func(w Words) {
		w.Store(0, 0xdeadbeef)
		w.Store(3, 42)
	})
	var a, b uint64
	v.Atomically(func(w Words) {
		a = w.Load(0)
		b = w.Load(3)
	})
	if a != 0xdeadbeef || b != 42 {
		t.Fatalf("loads = %#x, %d", a, b)
	}
	// The state really lives in the object's bytes: a handle with
	// the same identity sees it.
	v2 := reg.Var(obj, 8)
	v2.Atomically(func(w Words) {
		if w.Load(0) != 0xdeadbeef {
			t.Error("second handle does not see stored word")
		}
	})
}

func TestSleepWhileAndWake(t *testing.T) {
	k := sim.NewKernel(sim.Config{NCPU: 2})
	reg := NewRegistry(k)
	obj := vm.NewAnon(vm.PageSize)
	p := k.NewProcess("p", nil)
	v := reg.Var(obj, 0)

	res := make(chan sim.WakeResult, 1)
	d1 := animate(k, p, func(l *sim.LWP) {
		r, slept := v.SleepWhile(l, func(w Words) bool {
			return w.Load(0) == 0 // wait until the flag is set
		}, SleepOpts{})
		if !slept {
			t.Error("did not sleep although flag clear")
		}
		res <- r
	})
	for v.Waiters() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	d2 := animate(k, p, func(l *sim.LWP) {
		v.Atomically(func(w Words) { w.Store(0, 1) })
		v.Wake(1)
	})
	<-d1
	<-d2
	if r := <-res; r != sim.WakeNormal {
		t.Fatalf("wake result = %v", r)
	}
}

func TestSleepWhileRefusesWhenCondFalse(t *testing.T) {
	k := sim.NewKernel(sim.Config{NCPU: 1})
	reg := NewRegistry(k)
	obj := vm.NewAnon(vm.PageSize)
	p := k.NewProcess("p", nil)
	v := reg.Var(obj, 0)
	v.Atomically(func(w Words) { w.Store(0, 1) })
	d := animate(k, p, func(l *sim.LWP) {
		_, slept := v.SleepWhile(l, func(w Words) bool { return w.Load(0) == 0 }, SleepOpts{})
		if slept {
			t.Error("slept although condition resolved")
		}
	})
	<-d
}

// TestNoLostWakeup hammers the futex protocol: a waker that flips the
// flag and wakes between the waiter's check and its sleep must never
// strand the waiter.
func TestNoLostWakeup(t *testing.T) {
	k := sim.NewKernel(sim.Config{NCPU: 2, KernelSwitchCost: -1})
	reg := NewRegistry(k)
	obj := vm.NewAnon(vm.PageSize)
	p := k.NewProcess("p", nil)
	v := reg.Var(obj, 0)

	const rounds = 300
	var wg sync.WaitGroup
	wg.Add(2)
	waiterDone := animate(k, p, func(l *sim.LWP) {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			// Wait for flag == 1, then reset it and notify.
			for {
				var got bool
				v.Atomically(func(w Words) {
					if w.Load(0) == 1 {
						w.Store(0, 0)
						got = true
					}
				})
				if got {
					v.Wake(-1)
					break
				}
				v.SleepWhile(l, func(w Words) bool { return w.Load(0) == 0 }, SleepOpts{})
			}
		}
	})
	wakerDone := animate(k, p, func(l *sim.LWP) {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			// Wait for flag == 0, set it to 1, wake.
			for {
				var clear bool
				v.Atomically(func(w Words) { clear = w.Load(0) == 0 })
				if clear {
					break
				}
				v.SleepWhile(l, func(w Words) bool { return w.Load(0) == 1 }, SleepOpts{})
			}
			v.Atomically(func(w Words) { w.Store(0, 1) })
			v.Wake(-1)
		}
	})
	ok := make(chan struct{})
	go func() {
		wg.Wait()
		close(ok)
	}()
	select {
	case <-ok:
	case <-time.After(20 * time.Second):
		t.Fatal("lost wakeup: protocol stranded a participant")
	}
	<-waiterDone
	<-wakerDone
}

func TestSleepWhileTimeout(t *testing.T) {
	k := sim.NewKernel(sim.Config{NCPU: 1})
	reg := NewRegistry(k)
	obj := vm.NewAnon(vm.PageSize)
	p := k.NewProcess("p", nil)
	v := reg.Var(obj, 0)
	d := animate(k, p, func(l *sim.LWP) {
		r, slept := v.SleepWhileTimeout(l, func(w Words) bool { return true }, 2*time.Millisecond)
		if !slept || r != sim.WakeTimeout {
			t.Errorf("slept=%v res=%v, want timeout", slept, r)
		}
	})
	<-d
}
