// Package usync is the kernel-mediated blocking path for
// process-shared synchronization variables.
//
// The paper: "Synchronization variables that are in shared memory or
// in files are also unknown to the kernel unless a thread is blocked
// on them. In the latter case the thread is temporarily bound to the
// LWP that is blocked by the kernel, as in a system call."
//
// A shared synchronization variable is identified by the (object,
// offset) pair of the underlying mapped object — never by a virtual
// address, since the sharing processes may map the object at
// different addresses. This package keeps one kernel wait queue and
// one word-lock per variable identity; the word-lock stands in for
// the hardware atomic instructions that real implementations use on
// the shared word, so the uncontended paths of the primitives built
// on top never enter the (simulated) kernel.
//
// The state words themselves live in the mapped object's bytes, so a
// synchronization variable placed in a file keeps its state across
// process lifetimes, exactly as the paper requires.
package usync

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"sunosmt/internal/sim"
	"sunosmt/internal/vm"
)

// Registry maps variable identities to their kernel-side state. One
// Registry serves a whole simulated machine.
type Registry struct {
	kern *sim.Kernel
	mu   sync.Mutex
	vars map[varKey]*varState
}

type varKey struct {
	obj uint64
	off int64
}

type varState struct {
	wordMu sync.Mutex // models the hardware atomic on the shared words
	wq     *sim.WaitQ
	// obj is the backing object, retained so the owner-death sweep
	// can reach the state words without a per-process handle; kind
	// tells the sweep which word layout the variable uses. Both are
	// guarded by Registry.mu.
	obj  vm.Object
	kind Kind
}

// NewRegistry creates a registry bound to a kernel. The registry
// hooks process death so shared variables owned by a dead process are
// marked OWNERDEAD and their waiters woken (robust-mutex semantics).
func NewRegistry(kern *sim.Kernel) *Registry {
	r := &Registry{kern: kern, vars: make(map[varKey]*varState)}
	kern.AddDeathHook(func(p *sim.Process) { r.SweepOwnerDead(p.PID()) })
	return r
}

// Kernel returns the registry's kernel.
func (r *Registry) Kernel() *sim.Kernel { return r.kern }

// Var returns the handle for the synchronization variable at (obj,
// off). Handles obtained by different processes for the same identity
// share one wait queue and one word-lock.
func (r *Registry) Var(obj vm.Object, off int64) *Var {
	key := varKey{obj.ObjectID(), off}
	r.mu.Lock()
	st, ok := r.vars[key]
	if !ok {
		st = &varState{wq: sim.NewWaitQ(fmt.Sprintf("usync:%d+%d", key.obj, key.off)), obj: obj}
		r.vars[key] = st
	}
	r.mu.Unlock()
	return &Var{reg: r, obj: obj, off: off, st: st}
}

// NumVars reports how many variable identities the registry tracks.
func (r *Registry) NumVars() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.vars)
}

// Var is a handle on one shared synchronization variable. The
// variable's state is an array of 64-bit words in the backing
// object's bytes starting at the variable's offset.
type Var struct {
	reg *Registry
	obj vm.Object
	off int64
	st  *varState
}

// WaitQ exposes the variable's kernel wait queue (for tests and
// debugging tools).
func (v *Var) WaitQ() *sim.WaitQ { return v.st.wq }

// Name returns the variable's system-wide identity string (the wait
// queue name), stable across the processes sharing it.
func (v *Var) Name() string { return v.st.wq.Name() }

// Words provides load/store access to the variable's state words
// while the word-lock is held.
type Words struct{ v *Var }

// Load returns state word i.
func (w Words) Load(i int) uint64 {
	var b [8]byte
	if err := w.v.obj.ReadObject(b[:], w.v.off+int64(8*i)); err != nil {
		panic(fmt.Sprintf("usync: load word %d: %v", i, err))
	}
	return binary.LittleEndian.Uint64(b[:])
}

// Store sets state word i.
func (w Words) Store(i int, x uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	if err := w.v.obj.WriteObject(b[:], w.v.off+int64(8*i)); err != nil {
		panic(fmt.Sprintf("usync: store word %d: %v", i, err))
	}
}

// Atomically runs f with the variable's word-lock held, giving f
// consistent access to the state words. This stands in for the
// load-store-conditional / test-and-set sequence of a real
// implementation: it involves no kernel entry.
func (v *Var) Atomically(f func(Words)) {
	v.st.wordMu.Lock()
	defer v.st.wordMu.Unlock()
	f(Words{v})
}

// SleepOpts re-exports the kernel sleep options for callers.
type SleepOpts = sim.SleepOpts

// SleepWhile blocks l on the variable's wait queue if cond (evaluated
// atomically with respect to Atomically sections) still holds at
// commit time. Returns the wake result and whether the LWP actually
// slept. Callers use the standard futex loop:
//
//	for {
//	    acquired := false
//	    v.Atomically(func(w Words){ ... try; acquired = ... })
//	    if acquired { return }
//	    v.SleepWhile(l, func(w Words) bool { return stillContended(w) }, opts)
//	}
func (v *Var) SleepWhile(l *sim.LWP, cond func(Words) bool, opts SleepOpts) (sim.WakeResult, bool) {
	k := v.reg.kern
	k.SyscallEnter(l)
	defer k.SyscallExit(l)
	return k.SleepIf(l, v.st.wq, func() bool {
		v.st.wordMu.Lock()
		defer v.st.wordMu.Unlock()
		return cond(Words{v})
	}, opts)
}

// Wake wakes up to n LWPs blocked on the variable (n < 0: all) and
// returns how many were woken. Callers must not hold the word-lock
// (i.e. call it after Atomically returns).
func (v *Var) Wake(n int) int {
	return v.reg.kern.Wakeup(v.st.wq, n)
}

// Waiters reports how many LWPs are blocked on the variable.
func (v *Var) Waiters() int { return v.st.wq.Len(v.reg.kern) }

// SleepWhileTimeout is SleepWhile with a bound.
func (v *Var) SleepWhileTimeout(l *sim.LWP, cond func(Words) bool, d time.Duration) (sim.WakeResult, bool) {
	return v.SleepWhile(l, cond, SleepOpts{Interruptible: true, Timeout: d})
}
