package liblwp

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sunosmt/internal/sim"
	"sunosmt/internal/vfs"
)

type env struct {
	k   *sim.Kernel
	fs  *vfs.FS
	p   *sim.Process
	pf  *vfs.ProcFiles
	pkg *Pkg
}

func newEnv(t *testing.T, ncpu int) *env {
	t.Helper()
	k := sim.NewKernel(sim.Config{NCPU: ncpu})
	fs := vfs.NewFS(k)
	p := k.NewProcess("liblwp", nil)
	pf := vfs.NewProcFiles(fs, p)
	pkg, err := New(k, p, pf)
	if err != nil {
		t.Fatal(err)
	}
	return &env{k: k, fs: fs, p: p, pf: pf, pkg: pkg}
}

func run(t *testing.T, e *env, main func(*GThread)) error {
	t.Helper()
	errc := make(chan error, 1)
	go func() { errc <- e.pkg.Run(main) }()
	select {
	case err := <-errc:
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("liblwp run timed out")
		return nil
	}
}

func TestGreenThreadsInterleaveOnOneLWP(t *testing.T) {
	e := newEnv(t, 1)
	var order []int
	err := run(t, e, func(g *GThread) {
		for i := 1; i <= 2; i++ {
			i := i
			g.pkg.Create(func(w *GThread) {
				for j := 0; j < 3; j++ {
					order = append(order, i)
					w.Yield()
				}
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 6 {
		t.Fatalf("order = %v", order)
	}
	if order[0] == order[1] && order[1] == order[2] {
		t.Fatalf("no interleaving: %v", order)
	}
}

func TestMonitorMutualExclusion(t *testing.T) {
	e := newEnv(t, 1)
	var m Mon
	counter := 0
	err := run(t, e, func(g *GThread) {
		for i := 0; i < 3; i++ {
			g.pkg.Create(func(w *GThread) {
				for j := 0; j < 100; j++ {
					m.Enter(w)
					counter++
					if j%10 == 0 {
						w.Yield() // yields inside the critical section are safe
					}
					m.Exit(w)
				}
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if counter != 300 {
		t.Fatalf("counter = %d, want 300", counter)
	}
}

func TestSemaphoreProducerConsumer(t *testing.T) {
	e := newEnv(t, 1)
	var items Sema
	consumed := 0
	err := run(t, e, func(g *GThread) {
		g.pkg.Create(func(c *GThread) {
			for i := 0; i < 20; i++ {
				items.P(c)
				consumed++
			}
		})
		g.pkg.Create(func(p *GThread) {
			for i := 0; i < 20; i++ {
				items.V(p)
				p.Yield()
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if consumed != 20 {
		t.Fatalf("consumed = %d, want 20", consumed)
	}
}

func TestDeadlockDetectedWhenAllBlocked(t *testing.T) {
	e := newEnv(t, 1)
	var s Sema // never V'd
	err := run(t, e, func(g *GThread) {
		g.pkg.Create(func(w *GThread) { s.P(w) })
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

// TestBlockingReadStallsWholeApplication demonstrates the library's
// fundamental limitation the paper describes: one green thread's
// blocking system call blocks every green thread, because there is
// only one kernel-supported LWP.
func TestBlockingReadStallsWholeApplication(t *testing.T) {
	e := newEnv(t, 2)
	var rfd, wfd int
	var otherProgress atomic.Int64

	// A second kernel-level process writes into the pipe after a
	// delay, releasing the stalled library.
	setup := make(chan struct{})
	go func() {
		l, _ := e.k.NewLWP(e.p, sim.ClassTS, 30)
		defer func() { recover(); e.k.ExitLWP(l) }()
		e.k.Start(l)
		var err error
		rfd, wfd, err = e.pf.Pipe(l)
		if err != nil {
			t.Error(err)
		}
		close(setup)
		e.k.SleepFor(l, 20*time.Millisecond)
		e.pf.Write(l, wfd, []byte("late data"))
	}()
	<-setup

	err := run(t, e, func(g *GThread) {
		g.pkg.Create(func(w *GThread) {
			// This green thread would make progress if it could.
			for i := 0; i < 1000; i++ {
				otherProgress.Add(1)
				w.Yield()
			}
		})
		b := make([]byte, 16)
		if _, err := g.Read(rfd, b); err != nil {
			t.Error(err)
		}
		// While we were blocked, the other green thread must have
		// been starved: it runs before (a few yields) and after,
		// but cannot have finished its 1000 rounds during a read
		// that completed only when data arrived.
		if otherProgress.Load() >= 1000 {
			t.Error("other green thread finished during blocking read; whole-process stall not reproduced")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNBReadLetsOthersRun shows the non-blocking I/O shim mitigation.
func TestNBReadLetsOthersRun(t *testing.T) {
	e := newEnv(t, 2)
	var rfd, wfd int
	var otherProgress atomic.Int64
	setup := make(chan struct{})
	go func() {
		l, _ := e.k.NewLWP(e.p, sim.ClassTS, 30)
		defer func() { recover(); e.k.ExitLWP(l) }()
		e.k.Start(l)
		rfd, wfd, _ = e.pf.Pipe(l)
		close(setup)
		e.k.SleepFor(l, 20*time.Millisecond)
		e.pf.Write(l, wfd, []byte("late data"))
	}()
	<-setup

	err := run(t, e, func(g *GThread) {
		g.pkg.Create(func(w *GThread) {
			for i := 0; i < 200; i++ {
				otherProgress.Add(1)
				w.Yield()
			}
		})
		b := make([]byte, 16)
		if _, err := g.NBRead(rfd, b); err != nil {
			t.Error(err)
		}
		if otherProgress.Load() == 0 {
			t.Error("other green thread made no progress during NBRead")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
