// Package liblwp reproduces the SunOS 4.0 LWP library the paper
// compares against [Kepecs 1985]: a classic user-level-only threads
// package with no kernel support. Its "LWPs" (green threads — the
// name collision the paper's footnote apologizes for) are multiplexed
// on a single kernel-supported LWP; they synchronize without kernel
// involvement, but if any of them makes a blocking system call or
// takes a page fault, the entire application blocks.
//
// A non-blocking I/O shim (NBRead/NBWrite) mimics the standard I/O
// interfaces using readiness polling so the package can switch green
// threads while one waits for an indefinite I/O — exactly the
// mitigation the paper describes, and exactly as partial: page faults
// and any un-shimmed call still stall everything.
//
// This package exists as the measured baseline (process 2 of the
// paper's Figure 3) and to demonstrate why the two-level
// architecture supersedes it.
package liblwp

import (
	"errors"
	"fmt"
	"time"

	"sunosmt/internal/sim"
	"sunosmt/internal/vfs"
)

// GThread is a green thread of the 4.0 library.
type GThread struct {
	pkg  *Pkg
	id   int
	gate chan struct{}
	done bool
	fn   func(*GThread)
	// blocked marks a green thread parked on a package-level
	// synchronization object.
	blocked bool
}

// ID returns the green thread's id.
func (g *GThread) ID() int { return g.id }

// Pkg returns the owning library instance.
func (g *GThread) Pkg() *Pkg { return g.pkg }

// Pkg is one instance of the library: a single kernel LWP multiplexing
// all green threads of the application.
type Pkg struct {
	kern *sim.Kernel
	proc *sim.Process
	lwp  *sim.LWP
	pf   *vfs.ProcFiles

	sched  chan struct{} // scheduler gate
	runq   []*GThread
	nextID int
	nlive  int
	cur    *GThread
}

// New creates the package for a process. pf may be nil if no file I/O
// is used.
func New(kern *sim.Kernel, proc *sim.Process, pf *vfs.ProcFiles) (*Pkg, error) {
	l, err := kern.NewLWP(proc, sim.ClassTS, 30)
	if err != nil {
		return nil, err
	}
	return &Pkg{kern: kern, proc: proc, lwp: l, pf: pf, sched: make(chan struct{}, 1)}, nil
}

// Create adds a green thread. Creation is pure user-level work.
func (p *Pkg) Create(fn func(*GThread)) *GThread {
	p.nextID++
	g := &GThread{pkg: p, id: p.nextID, gate: make(chan struct{}, 1), fn: fn}
	p.nlive++
	p.runq = append(p.runq, g)
	return g
}

// Run animates the single kernel LWP, scheduling green threads until
// none remain. main is created as the first green thread.
func (p *Pkg) Run(main func(*GThread)) error {
	if main == nil {
		return errors.New("liblwp: nil main")
	}
	p.Create(main)
	defer func() {
		r := recover()
		p.kern.ExitLWP(p.lwp)
		if r != nil && !sim.IsUnwind(r) {
			panic(r)
		}
	}()
	p.kern.Start(p.lwp)
	for p.nlive > 0 {
		g := p.pick()
		if g == nil {
			// Everything blocked on package-level sync with no
			// runnable green thread: classic liblwp deadlock.
			return errors.New("liblwp: all green threads blocked (deadlock)")
		}
		p.cur = g
		if g.fn != nil {
			fn := g.fn
			g.fn = nil
			go func() {
				defer func() {
					r := recover()
					if r != nil && !sim.IsUnwind(r) {
						panic(r)
					}
					g.done = true
					p.sched <- struct{}{}
				}()
				<-g.gate
				fn(g)
			}()
		}
		g.gate <- struct{}{}
		<-p.sched
		p.cur = nil
		if g.done {
			p.nlive--
		}
		p.kern.Checkpoint(p.lwp)
	}
	return nil
}

func (p *Pkg) pick() *GThread {
	for i, g := range p.runq {
		if !g.blocked {
			p.runq = append(p.runq[:i], p.runq[i+1:]...)
			return g
		}
	}
	return nil
}

// yieldToScheduler hands the kernel LWP back to the scheduler loop
// and waits to be re-dispatched.
func (g *GThread) yieldToScheduler(requeue bool) {
	if requeue {
		g.pkg.runq = append(g.pkg.runq, g)
	}
	g.pkg.sched <- struct{}{}
	<-g.gate
}

// Yield lets another green thread run.
func (g *GThread) Yield() { g.yieldToScheduler(true) }

// block parks the green thread until Unblock.
func (g *GThread) block() {
	g.blocked = true
	g.pkg.runq = append(g.pkg.runq, g)
	g.pkg.sched <- struct{}{}
	<-g.gate
}

// unblock marks a parked green thread runnable.
func (g *GThread) unblock() { g.blocked = false }

// Read performs a standard blocking read on the single kernel LWP: if
// it blocks, the ENTIRE application blocks — no other green thread
// runs, the library's fundamental limitation.
func (g *GThread) Read(fd int, b []byte) (int, error) {
	return g.pkg.pf.Read(g.pkg.lwp, fd, b)
}

// Write is the blocking write counterpart of Read.
func (g *GThread) Write(fd int, b []byte) (int, error) {
	return g.pkg.pf.Write(g.pkg.lwp, fd, b)
}

// NBRead is the non-blocking I/O library shim: it polls for readiness
// with a bounded wait and switches green threads between probes, so
// an indefinite I/O by one green thread does not stall the others.
func (g *GThread) NBRead(fd int, b []byte) (int, error) {
	for {
		fds := []vfs.PollFD{{FD: fd, Events: vfs.PollIn}}
		n, err := g.pkg.pf.Poll(g.pkg.lwp, fds, time.Millisecond)
		if err != nil {
			return 0, err
		}
		if n > 0 {
			return g.pkg.pf.Read(g.pkg.lwp, fd, b)
		}
		g.Yield()
	}
}

// --- package-level synchronization (no kernel involvement) ---------------

// Mon is a simple monitor lock of the 4.0 library. Because all green
// threads share one kernel LWP, mutual exclusion needs no atomics at
// all — only yield discipline.
type Mon struct {
	held    bool
	waiters []*GThread
}

// Enter acquires the monitor.
func (m *Mon) Enter(g *GThread) {
	for m.held {
		m.waiters = append(m.waiters, g)
		g.block()
	}
	m.held = true
}

// Exit releases the monitor.
func (m *Mon) Exit(g *GThread) {
	if !m.held {
		panic("liblwp: Exit of unheld monitor")
	}
	m.held = false
	for _, w := range m.waiters {
		w.unblock()
	}
	m.waiters = nil
}

// CV is a condition variable paired with a Mon.
type CV struct {
	waiters []*GThread
}

// Wait releases the monitor and blocks until Notify.
func (cv *CV) Wait(g *GThread, m *Mon) {
	cv.waiters = append(cv.waiters, g)
	m.Exit(g)
	g.block()
	m.Enter(g)
}

// Notify wakes all waiters (the 4.0 library broadcast).
func (cv *CV) Notify(g *GThread) {
	for _, w := range cv.waiters {
		w.unblock()
	}
	cv.waiters = nil
}

// Sema is the 4.0 library counting semaphore.
type Sema struct {
	count   int
	waiters []*GThread
}

// Init sets the count.
func (s *Sema) Init(n int) { s.count = n }

// P decrements, blocking at zero.
func (s *Sema) P(g *GThread) {
	for s.count == 0 {
		s.waiters = append(s.waiters, g)
		g.block()
	}
	s.count--
}

// V increments, waking waiters.
func (s *Sema) V(g *GThread) {
	s.count++
	for _, w := range s.waiters {
		w.unblock()
	}
	s.waiters = nil
}

// String identifies the package in traces.
func (p *Pkg) String() string { return fmt.Sprintf("liblwp(pid %d)", p.proc.PID()) }
