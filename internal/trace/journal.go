package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// A schedule journal is the serialized form of one run's complete
// scheduling history: every chaos decision (the inputs that steered
// the schedule) and every ring event (the schedule that resulted).
// Recording the decisions makes a run replayable — a fresh run driven
// by the same decision stream takes the same schedule — and recording
// the events makes replay *checkable*: the replayed event sequence
// must match the journal event for event, and the first mismatch
// pinpoints where determinism was lost.
//
// The format is a line-oriented text file:
//
//	sunosmt-journal v1
//	m <key> <value ...>          # metadata (config, workload, seed)
//	d <site> <n> <value>         # one chaos decision, in global order
//	e <kind> <cpu> <pid> <lwp> <tid> <arg>   # one ring event, in Seq order
//
// Timestamps and global sequence numbers are deliberately not
// serialized: they differ between a recording and a faithful replay
// (wall time always moves), so the determinism contract covers the
// ordered (kind, cpu, pid, lwp, tid, arg) tuples only.

// Decision is one recorded chaos decision: the n-th consultation of a
// site answered Value. N is the site-specific input (candidate count
// for index sites, 1 for boolean sites, the requested duration for
// timer jitter) and is checked on replay — a mismatch means the
// replayed run reached the site in a different state, i.e. the
// schedule diverged before the decision was even applied.
type Decision struct {
	Site  string
	N     int64
	Value int64
}

// Journal is an in-memory schedule journal.
type Journal struct {
	Meta      map[string]string
	Decisions []Decision
	Events    []Record
}

// NewJournal returns an empty journal.
func NewJournal() *Journal {
	return &Journal{Meta: make(map[string]string)}
}

const journalHeader = "sunosmt-journal v1"

// Write serializes the journal. Metadata is written in sorted key
// order so identical journals serialize identically.
func (j *Journal) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, journalHeader)
	keys := make([]string, 0, len(j.Meta))
	for k := range j.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(bw, "m %s %s\n", k, j.Meta[k])
	}
	for _, d := range j.Decisions {
		fmt.Fprintf(bw, "d %s %d %d\n", d.Site, d.N, d.Value)
	}
	for _, e := range j.Events {
		fmt.Fprintf(bw, "e %d %d %d %d %d %d\n",
			int(e.Kind), e.CPU, e.PID, e.LWP, e.TID, e.Arg)
	}
	return bw.Flush()
}

// WriteFile serializes the journal to a file.
func (j *Journal) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := j.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadJournal parses a serialized journal.
func ReadJournal(r io.Reader) (*Journal, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty journal")
	}
	if sc.Text() != journalHeader {
		return nil, fmt.Errorf("trace: bad journal header %q", sc.Text())
	}
	j := NewJournal()
	lineno := 1
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "m "):
			rest := line[2:]
			k, v, _ := strings.Cut(rest, " ")
			j.Meta[k] = v
		case strings.HasPrefix(line, "d "):
			f := strings.Fields(line[2:])
			if len(f) != 3 {
				return nil, fmt.Errorf("trace: journal line %d: bad decision %q", lineno, line)
			}
			n, err1 := strconv.ParseInt(f[1], 10, 64)
			v, err2 := strconv.ParseInt(f[2], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("trace: journal line %d: bad decision %q", lineno, line)
			}
			j.Decisions = append(j.Decisions, Decision{Site: f[0], N: n, Value: v})
		case strings.HasPrefix(line, "e "):
			f := strings.Fields(line[2:])
			if len(f) != 6 {
				return nil, fmt.Errorf("trace: journal line %d: bad event %q", lineno, line)
			}
			var iv [5]int64
			for i := 0; i < 5; i++ {
				v, err := strconv.ParseInt(f[i], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("trace: journal line %d: bad event %q", lineno, line)
				}
				iv[i] = v
			}
			arg, err := strconv.ParseUint(f[5], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: journal line %d: bad event %q", lineno, line)
			}
			j.Events = append(j.Events, Record{
				Kind: EventKind(iv[0]),
				CPU:  int32(iv[1]),
				PID:  int32(iv[2]),
				LWP:  int32(iv[3]),
				TID:  int32(iv[4]),
				Arg:  arg,
			})
		default:
			return nil, fmt.Errorf("trace: journal line %d: unknown record %q", lineno, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return j, nil
}

// ReadJournalFile parses a journal file.
func ReadJournalFile(path string) (*Journal, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJournal(f)
}

// SchedKey renders the replay-comparable part of a record: everything
// except Seq and When, which legitimately differ between a recording
// and its replay.
func SchedKey(r Record) string {
	return fmt.Sprintf("%s cpu=%d pid=%d lwp=%d tid=%d arg=%d",
		r.Kind, r.CPU, r.PID, r.LWP, r.TID, r.Arg)
}

// FirstEventDivergence compares two event sequences on their SchedKey
// tuples and returns the index of the first mismatch (an index equal
// to the shorter length when one is a strict prefix of the other), or
// -1 when the schedules are identical.
func FirstEventDivergence(a, b []Record) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Kind != b[i].Kind || a[i].CPU != b[i].CPU ||
			a[i].PID != b[i].PID || a[i].LWP != b[i].LWP ||
			a[i].TID != b[i].TID || a[i].Arg != b[i].Arg {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}
