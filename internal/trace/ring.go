package trace

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// This file is the hot-path tracer: fixed-size per-CPU binary event
// rings with seqlock-style slots. The printf Buffer in trace.go stays
// for cold-path events (process/LWP lifecycle, pool growth); the
// scheduler transition points record here instead, so tracing costs a
// timestamp, an atomic claim and a struct store — never a lock or an
// allocation.

// EventKind identifies one class of scheduler event.
type EventKind uint8

// Event kinds recorded by the kernel and the threads library.
const (
	EvNone EventKind = iota
	// EvDispatch: the kernel dispatched an LWP onto a CPU. Arg is the
	// LWP's global priority.
	EvDispatch
	// EvPreempt: an on-CPU LWP was preempted (priority preemption,
	// time-slice expiry, or chaos-forced).
	EvPreempt
	// EvWakeup: a sleeping or parked LWP was woken. Arg is the
	// WakeResult.
	EvWakeup
	// EvMigrate: the LWP was dispatched on a different CPU than its
	// previous one. Arg is the previous CPU id.
	EvMigrate
	// EvSigwaiting: SIGWAITING was posted to the process. Arg is the
	// number of LWPs found blocked.
	EvSigwaiting
	// EvLockBlock: a thread published a wait-for edge on a contended
	// synchronization object and is about to park.
	EvLockBlock
	// EvThreadRun: the library dispatched a thread onto a pool LWP.
	EvThreadRun
	// EvThreadPark: a thread parked, handing its LWP back to the
	// dispatcher. Arg is the library thread state it parked in.
	EvThreadPark
	// EvSteal: an idle (or lower-priority) CPU pulled the LWP off
	// another CPU's run queue. CPU is the thief; Arg is the victim
	// CPU id. A matching EvDispatch on the thief follows.
	EvSteal
	// EvBalance: the periodic balancer moved a queued LWP to a
	// shallower queue. CPU is the destination; Arg is the source CPU
	// id.
	EvBalance
	// EvFastForward: the fast-forward clock leapt over idle virtual
	// time to the next timer deadline. Arg is the nanoseconds
	// skipped; recorded on the unattributed ring.
	EvFastForward
	numEventKinds
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvDispatch:
		return "dispatch"
	case EvPreempt:
		return "preempt"
	case EvWakeup:
		return "wakeup"
	case EvMigrate:
		return "migrate"
	case EvSigwaiting:
		return "sigwaiting"
	case EvLockBlock:
		return "lockblock"
	case EvThreadRun:
		return "threadrun"
	case EvThreadPark:
		return "threadpark"
	case EvSteal:
		return "steal"
	case EvBalance:
		return "balance"
	case EvFastForward:
		return "fastforward"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Record is one binary trace event. CPU is the processor the event
// was attributed to (-1 when the recording site has no CPU in hand —
// wakeups and lock blocks). TID is zero for kernel-level events.
type Record struct {
	Seq  uint64        // global order across all rings
	When time.Duration // virtual-clock time
	Kind EventKind
	CPU  int32
	PID  int32
	LWP  int32
	TID  int32
	Arg  uint64 // kind-specific payload
}

// String renders the record as a single line.
func (r Record) String() string {
	return fmt.Sprintf("%8d %12v cpu%-3d %-10s pid %-3d lwp %-3d tid %-3d arg %d",
		r.Seq, r.When, r.CPU, r.Kind, r.PID, r.LWP, r.TID, r.Arg)
}

// slot is one seqlock-protected ring entry: ver is odd while a writer
// is mid-store, and bumps by two per overwrite, so a reader that sees
// the same even value before and after copying the record has a
// consistent snapshot.
type slot struct {
	ver atomic.Uint64
	rec Record
}

// ring is one per-CPU buffer. pos is the claim cursor: writers
// fetch-add it and overwrite slot pos&mask, so the ring keeps the most
// recent len(slots) events and pos-len(slots) counts the overwritten
// ones. The trailing pad keeps neighbouring rings' cursors off one
// cache line.
type ring struct {
	pos   atomic.Uint64
	_     [7]uint64
	slots []slot
	mask  uint64
}

func (rb *ring) record(seq uint64, rec Record) {
	i := rb.pos.Add(1) - 1
	s := &rb.slots[i&rb.mask]
	rec.Seq = seq
	s.ver.Add(1) // odd: write in progress
	s.rec = rec
	s.ver.Add(1) // even: complete
}

// Rings is a set of per-CPU event rings plus one extra ring for
// events recorded with no CPU attribution. A nil *Rings discards all
// events, so call sites need no enabled checks. Writers never block
// and never allocate; readers use the per-slot versions to skip torn
// entries, so a snapshot can be taken while the system runs.
type Rings struct {
	seq   atomic.Uint64
	torn  atomic.Uint64
	now   func() time.Duration
	rings []ring // index cpu id; last entry is the unattributed ring
	ncpu  int
}

// NewRings returns rings for ncpu CPUs, each keeping the most recent
// perCPU events (rounded up to a power of two, minimum 64). now
// supplies timestamps; nil records zero times.
func NewRings(ncpu, perCPU int, now func() time.Duration) *Rings {
	if ncpu <= 0 {
		ncpu = 1
	}
	size := uint64(64)
	for size < uint64(perCPU) {
		size <<= 1
	}
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	r := &Rings{now: now, ncpu: ncpu, rings: make([]ring, ncpu+1)}
	for i := range r.rings {
		r.rings[i].slots = make([]slot, size)
		r.rings[i].mask = size - 1
	}
	return r
}

func (r *Rings) ring(cpu int) *ring {
	if cpu >= 0 && cpu < r.ncpu {
		return &r.rings[cpu]
	}
	return &r.rings[r.ncpu]
}

// Record appends an event to the ring of the given CPU (cpu < 0: the
// unattributed ring). Record on a nil *Rings is a no-op.
func (r *Rings) Record(cpu int, kind EventKind, pid, lwp, tid int, arg uint64) {
	if r == nil {
		return
	}
	r.ring(cpu).record(r.seq.Add(1), Record{
		When: r.now(),
		Kind: kind,
		CPU:  int32(cpu),
		PID:  int32(pid),
		LWP:  int32(lwp),
		TID:  int32(tid),
		Arg:  arg,
	})
}

// NCPU returns the number of per-CPU rings (excluding the
// unattributed ring).
func (r *Rings) NCPU() int {
	if r == nil {
		return 0
	}
	return r.ncpu
}

// Dropped reports how many recorded events have been overwritten
// before being read (ring wrap), summed over all rings.
func (r *Rings) Dropped() uint64 {
	if r == nil {
		return 0
	}
	var dropped uint64
	for i := range r.rings {
		rb := &r.rings[i]
		if pos, size := rb.pos.Load(), uint64(len(rb.slots)); pos > size {
			dropped += pos - size
		}
	}
	return dropped
}

// Torn reports how many slots snapshots have skipped because a writer
// was overwriting them mid-read.
func (r *Rings) Torn() uint64 {
	if r == nil {
		return 0
	}
	return r.torn.Load()
}

// Snapshot copies the retained events out of every ring, merged into
// one slice ordered by Seq, and reports the overwrite drop count.
// Slots being overwritten during the copy are skipped (counted by
// Torn); the system may keep running while a snapshot is taken.
func (r *Rings) Snapshot() ([]Record, uint64) {
	if r == nil {
		return nil, 0
	}
	var out []Record
	for i := range r.rings {
		rb := &r.rings[i]
		n := rb.pos.Load()
		if size := uint64(len(rb.slots)); n > size {
			n = size
		}
		for j := uint64(0); j < n; j++ {
			s := &rb.slots[j]
			v1 := s.ver.Load()
			if v1&1 != 0 {
				r.torn.Add(1)
				continue
			}
			rec := s.rec
			if s.ver.Load() != v1 {
				r.torn.Add(1)
				continue
			}
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, r.Dropped()
}

// Kinds returns the snapshot filtered to the given kinds, in Seq
// order.
func (r *Rings) Kinds(kinds ...EventKind) []Record {
	recs, _ := r.Snapshot()
	var want [numEventKinds]bool
	for _, k := range kinds {
		want[k] = true
	}
	out := recs[:0]
	for _, rec := range recs {
		if want[rec.Kind] {
			out = append(out, rec)
		}
	}
	return out
}
