package trace

import (
	"bytes"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	j := NewJournal()
	j.Meta["chaos-config"] = `{"Seed":42,"Preempt":100}`
	j.Meta["workload"] = "broken mutex 2x150"
	j.Decisions = []Decision{
		{Site: "sim.preempt", N: 1, Value: 1},
		{Site: "sim.pick", N: 4, Value: -1},
		{Site: "ktime.jitter", N: 1000000, Value: 999000},
	}
	j.Events = []Record{
		{Seq: 1, When: 5, Kind: EvDispatch, CPU: 0, PID: 1, LWP: 2, TID: 0, Arg: 30},
		{Seq: 2, When: 9, Kind: EvWakeup, CPU: -1, PID: 1, LWP: 3, TID: 0, Arg: 0},
	}
	var buf bytes.Buffer
	if err := j.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Meta) != 2 || got.Meta["chaos-config"] != j.Meta["chaos-config"] ||
		got.Meta["workload"] != j.Meta["workload"] {
		t.Fatalf("meta round trip: %+v", got.Meta)
	}
	if len(got.Decisions) != 3 {
		t.Fatalf("decisions round trip: %+v", got.Decisions)
	}
	for i, d := range j.Decisions {
		if got.Decisions[i] != d {
			t.Fatalf("decision %d: %+v != %+v", i, got.Decisions[i], d)
		}
	}
	if len(got.Events) != 2 {
		t.Fatalf("events round trip: %+v", got.Events)
	}
	// Seq and When are deliberately not serialized.
	if div := FirstEventDivergence(got.Events, j.Events); div != -1 {
		t.Fatalf("round-tripped events diverge at %d", div)
	}
	// Serialization is deterministic.
	var buf2 bytes.Buffer
	if err := got.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialized journal differs byte for byte")
	}
}

func TestFirstEventDivergence(t *testing.T) {
	a := []Record{
		{Kind: EvDispatch, CPU: 0, PID: 1, LWP: 1},
		{Kind: EvPreempt, CPU: 0, PID: 1, LWP: 1},
	}
	same := []Record{
		{Seq: 99, When: 123, Kind: EvDispatch, CPU: 0, PID: 1, LWP: 1},
		{Seq: 100, When: 456, Kind: EvPreempt, CPU: 0, PID: 1, LWP: 1},
	}
	if d := FirstEventDivergence(a, same); d != -1 {
		t.Fatalf("identical schedules diverge at %d", d)
	}
	diff := []Record{
		{Kind: EvDispatch, CPU: 0, PID: 1, LWP: 1},
		{Kind: EvPreempt, CPU: 1, PID: 1, LWP: 1},
	}
	if d := FirstEventDivergence(a, diff); d != 1 {
		t.Fatalf("divergence at %d, want 1", d)
	}
	if d := FirstEventDivergence(a, a[:1]); d != 1 {
		t.Fatalf("prefix divergence at %d, want 1", d)
	}
}

func TestReadJournalRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"not a journal\n",
		"sunosmt-journal v1\nx what\n",
		"sunosmt-journal v1\nd site 1\n",
		"sunosmt-journal v1\ne 1 2 3\n",
	} {
		if _, err := ReadJournal(bytes.NewReader([]byte(in))); err == nil {
			t.Fatalf("ReadJournal accepted %q", in)
		}
	}
}
