package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// pfDecode parses the export back and returns the traceEvents array.
func pfDecode(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var top struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &top); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	return top.TraceEvents
}

func pfFilter(evs []map[string]any, ph, name string) []map[string]any {
	var out []map[string]any
	for _, e := range evs {
		if e["ph"] == ph && (name == "" || e["name"] == name) {
			out = append(out, e)
		}
	}
	return out
}

func TestWritePerfetto(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	recs := []Record{
		{Seq: 1, When: ms(1), Kind: EvWakeup, CPU: -1, PID: 1, LWP: 2},
		{Seq: 2, When: ms(2), Kind: EvDispatch, CPU: 0, PID: 1, LWP: 2, Arg: 30},
		{Seq: 3, When: ms(3), Kind: EvThreadRun, CPU: 0, PID: 1, LWP: 2, TID: 7, Arg: 1},
		{Seq: 4, When: ms(5), Kind: EvThreadPark, CPU: 0, PID: 1, LWP: 2, TID: 7, Arg: 2},
		{Seq: 5, When: ms(6), Kind: EvPreempt, CPU: 0, PID: 1, LWP: 2},
		{Seq: 6, When: ms(7), Kind: EvSteal, CPU: 1, PID: 1, LWP: 3, Arg: 0},
		{Seq: 7, When: ms(7), Kind: EvDispatch, CPU: 1, PID: 1, LWP: 3, Arg: 30},
		{Seq: 8, When: ms(9), Kind: EvFastForward, CPU: -1, Arg: uint64(time.Hour)},
		{Seq: 9, When: ms(10), Kind: EvThreadRun, CPU: 1, PID: 1, LWP: 3, TID: 7},
	}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, recs); err != nil {
		t.Fatal(err)
	}
	evs := pfDecode(t, buf.Bytes())

	// Track metadata: a CPUs process with cpu 0 and cpu 1 rows, a
	// wakeups row, and proc/thread names for (1, 7).
	names := map[string]bool{}
	for _, e := range pfFilter(evs, "M", "") {
		if args, ok := e["args"].(map[string]any); ok {
			if n, ok := args["name"].(string); ok {
				names[n] = true
			}
		}
	}
	for _, want := range []string{"CPUs", "cpu 0", "cpu 1", "wakeups", "proc 1", "thread 7"} {
		if !names[want] {
			t.Errorf("missing track name %q (have %v)", want, names)
		}
	}

	// The cpu 0 on-CPU slice runs from the dispatch at 2ms to the
	// preempt at 6ms.
	cpu0 := pfFilter(evs, "X", "pid 1 lwp 2")
	if len(cpu0) != 1 {
		t.Fatalf("on-CPU slices for lwp 2: %v", cpu0)
	}
	if cpu0[0]["ts"].(float64) != 2000 || cpu0[0]["dur"].(float64) != 4000 {
		t.Fatalf("on-CPU slice ts/dur = %v/%v, want 2000/4000", cpu0[0]["ts"], cpu0[0]["dur"])
	}

	// Thread 7 has a run slice (3ms..5ms) carrying the pop choice,
	// then a sleeping park slice (5ms..10ms) cut by its next run.
	run := pfFilter(evs, "X", "run")
	if len(run) != 2 {
		t.Fatalf("run slices: %v", run)
	}
	if run[0]["ts"].(float64) != 3000 || run[0]["dur"].(float64) != 2000 {
		t.Fatalf("first run slice ts/dur = %v/%v, want 3000/2000", run[0]["ts"], run[0]["dur"])
	}
	if args := run[0]["args"].(map[string]any); args["popped_from_shard"].(float64) != 0 {
		t.Fatalf("run slice args = %v, want popped_from_shard 0", args)
	}
	if _, ok := run[1]["args"].(map[string]any)["popped_from_shard"]; ok {
		t.Fatal("Arg 0 (no pop info) still produced popped_from_shard")
	}
	park := pfFilter(evs, "X", "sleeping")
	if len(park) != 1 || park[0]["ts"].(float64) != 5000 || park[0]["dur"].(float64) != 5000 {
		t.Fatalf("park slices: %v", park)
	}
	if park[0]["cname"] != "thread_state_sleeping" {
		t.Fatalf("park cname = %v", park[0]["cname"])
	}

	// The wakeup opens a flow that terminates at lwp 2's dispatch on
	// cpu 0, with matching ids.
	starts := pfFilter(evs, "s", "wakeup")
	ends := pfFilter(evs, "f", "wakeup")
	if len(starts) != 1 || len(ends) != 1 {
		t.Fatalf("flow events: %d starts, %d ends", len(starts), len(ends))
	}
	if starts[0]["id"] != ends[0]["id"] {
		t.Fatalf("flow ids differ: %v vs %v", starts[0]["id"], ends[0]["id"])
	}
	if ends[0]["tid"].(float64) != 0 || ends[0]["ts"].(float64) != 2000 {
		t.Fatalf("flow end = %v, want tid 0 at ts 2000", ends[0])
	}

	// Instants: preempt and steal on their CPU rows, the fast-forward
	// jump as a global instant.
	if p := pfFilter(evs, "i", "preempt"); len(p) != 1 || p[0]["tid"].(float64) != 0 {
		t.Fatalf("preempt instants: %v", p)
	}
	if s := pfFilter(evs, "i", "steal"); len(s) != 1 || s[0]["tid"].(float64) != 1 {
		t.Fatalf("steal instants: %v", s)
	}
	ffi := pfFilter(evs, "i", "fast-forward +1h0m0s")
	if len(ffi) != 1 || ffi[0]["s"] != "g" {
		t.Fatalf("fast-forward instants: %v", ffi)
	}
}

func TestWritePerfettoEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if evs := pfDecode(t, buf.Bytes()); len(pfFilter(evs, "X", "")) != 0 {
		t.Fatalf("slices from an empty snapshot: %v", evs)
	}
}
