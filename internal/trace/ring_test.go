package trace

import (
	"sync"
	"testing"
	"time"
)

func TestRingsRecordAndSnapshot(t *testing.T) {
	var tick time.Duration
	r := NewRings(2, 64, func() time.Duration { tick += time.Microsecond; return tick })
	r.Record(0, EvDispatch, 1, 2, 0, 42)
	r.Record(1, EvDispatch, 1, 3, 0, 7)
	r.Record(-1, EvWakeup, 1, 2, 0, 0)
	r.Record(0, EvThreadRun, 1, 2, 9, 0)

	recs, dropped := r.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(recs) != 4 {
		t.Fatalf("snapshot has %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has Seq %d; merge not ordered: %v", i, rec.Seq, recs)
		}
	}
	if recs[0].Kind != EvDispatch || recs[0].CPU != 0 || recs[0].LWP != 2 || recs[0].Arg != 42 {
		t.Fatalf("first record = %+v", recs[0])
	}
	if recs[2].CPU != -1 {
		t.Fatalf("unattributed record has CPU %d, want -1", recs[2].CPU)
	}
	if recs[3].TID != 9 {
		t.Fatalf("thread record TID = %d, want 9", recs[3].TID)
	}
	if got := r.Kinds(EvDispatch); len(got) != 2 {
		t.Fatalf("Kinds(EvDispatch) returned %d records, want 2", len(got))
	}
}

func TestRingsDropCounting(t *testing.T) {
	r := NewRings(1, 64, nil)
	const writes = 200
	for i := 0; i < writes; i++ {
		r.Record(0, EvDispatch, 1, 1, 0, uint64(i))
	}
	recs, dropped := r.Snapshot()
	if len(recs) != 64 {
		t.Fatalf("retained %d records, want capacity 64", len(recs))
	}
	if dropped != writes-64 {
		t.Fatalf("dropped = %d, want %d", dropped, writes-64)
	}
	// The retained set is the most recent writes: the smallest Arg
	// present must be writes-64.
	min := uint64(writes)
	for _, rec := range recs {
		if rec.Arg < min {
			min = rec.Arg
		}
	}
	if min != writes-64 {
		t.Fatalf("oldest retained Arg = %d, want %d", min, writes-64)
	}
}

func TestRingsNilSafe(t *testing.T) {
	var r *Rings
	r.Record(0, EvDispatch, 1, 1, 0, 0)
	if recs, dropped := r.Snapshot(); recs != nil || dropped != 0 {
		t.Fatalf("nil rings snapshot = %v, %d", recs, dropped)
	}
	if r.Dropped() != 0 || r.Torn() != 0 || r.NCPU() != 0 {
		t.Fatal("nil rings accessors not zero")
	}
}

// TestRingsConcurrent hammers the rings from several writers while a
// reader snapshots continuously; under -race this checks the seqlock
// discipline, and the assertions check no record is ever invented.
func TestRingsConcurrent(t *testing.T) {
	r := NewRings(4, 256, nil)
	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(w, EvDispatch, w+1, i, 0, uint64(i))
			}
		}(w)
	}
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			recs, _ := r.Snapshot()
			for _, rec := range recs {
				if rec.Kind != EvDispatch || rec.PID < 1 || rec.PID > writers {
					t.Errorf("corrupt record observed: %+v", rec)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()

	recs, dropped := r.Snapshot()
	if got := uint64(len(recs)) + dropped + r.Torn(); got < writers*perWriter {
		t.Fatalf("retained+dropped+torn = %d, want >= %d", got, writers*perWriter)
	}
}
