package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Perfetto export: renders a merged ring snapshot as Chrome trace
// JSON (the catapult "traceEvents" array format), which the Perfetto
// UI (ui.perfetto.dev) and chrome://tracing both load directly.
//
// The export builds three groups of tracks:
//
//   - one track per simulated CPU (process 0, "CPUs"), with an on-CPU
//     slice per dispatched LWP, cut at the next dispatch or preempt
//     on that CPU, plus instants for steals, migrations and balancer
//     moves;
//   - one track per (process, thread), with a running slice from
//     EvThreadRun to EvThreadPark and a colored park-state slice
//     (runnable / sleeping / stopped / waiting, per the library
//     ThreadState the thread parked in) until its next run;
//   - a "wakeups" track carrying one small slice per kernel wakeup,
//     connected by a flow arrow to the dispatch that the wakeup led
//     to, and global instants for fast-forward jumps.
//
// Timestamps come from Record.When (the virtual clock), so an export
// of a fast-forwarded run shows the jumped-over idle time to scale.
// Records read back from a schedule journal have no timestamps and
// render degenerately; export from a live ring snapshot.

// pfEvent is one Chrome trace event. ts/dur are microseconds.
type pfEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	ID    int            `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	S     string         `json:"s,omitempty"`
	Cname string         `json:"cname,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// The CPU tracks live in a synthetic "process 0"; simulated PIDs
// start at 1 so there is no collision. The wakeup track is one tid
// past the last CPU.
const pfCPUPid = 0

func pfTS(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func pfDur(from, to time.Duration) *float64 {
	if to < from {
		to = from
	}
	v := pfTS(to - from)
	return &v
}

// parkStyle maps a park-state Arg (the library ThreadState ordinal
// recorded by EvThreadPark) to a slice name and a catapult reserved
// color.
func parkStyle(arg uint64) (string, string) {
	switch arg {
	case 0:
		return "runnable", "thread_state_runnable"
	case 1:
		return "running", "thread_state_running"
	case 2:
		return "sleeping", "thread_state_sleeping"
	case 3:
		return "stopped", "thread_state_uninterruptible"
	case 4:
		return "waiting", "thread_state_iowait"
	case 5:
		return "zombie", "black"
	}
	return fmt.Sprintf("state %d", arg), "grey"
}

type pfThreadKey struct{ pid, tid int32 }

// WritePerfetto renders recs (a Seq-ordered ring snapshot, as
// returned by Rings.Snapshot) as Chrome trace JSON.
func WritePerfetto(w io.Writer, recs []Record) error {
	var evs []pfEvent
	var end time.Duration
	ncpu := 0
	for _, r := range recs {
		if r.When > end {
			end = r.When
		}
		if int(r.CPU)+1 > ncpu {
			ncpu = int(r.CPU) + 1
		}
	}
	wakeTid := ncpu // "wakeups" row under the CPU rows

	// Track-name metadata.
	evs = append(evs,
		pfEvent{Name: "process_name", Ph: "M", Pid: pfCPUPid,
			Args: map[string]any{"name": "CPUs"}},
		pfEvent{Name: "process_sort_index", Ph: "M", Pid: pfCPUPid,
			Args: map[string]any{"sort_index": -1}},
		pfEvent{Name: "thread_name", Ph: "M", Pid: pfCPUPid, Tid: wakeTid,
			Args: map[string]any{"name": "wakeups"}},
		pfEvent{Name: "thread_sort_index", Ph: "M", Pid: pfCPUPid, Tid: wakeTid,
			Args: map[string]any{"sort_index": ncpu}},
	)
	for c := 0; c < ncpu; c++ {
		evs = append(evs, pfEvent{Name: "thread_name", Ph: "M", Pid: pfCPUPid, Tid: c,
			Args: map[string]any{"name": fmt.Sprintf("cpu %d", c)}})
	}

	// One linear pass builds every track; the per-track open-slice
	// state is keyed by CPU or by (pid, tid).
	type openSlice struct {
		at   time.Duration
		name string
		args map[string]any
	}
	cpuOpen := make(map[int32]*openSlice)
	thrOpen := make(map[pfThreadKey]*openSlice) // running slice
	thrPark := make(map[pfThreadKey]*openSlice) // park-state slice
	thrStyle := make(map[pfThreadKey]string)    // cname of open park slice
	namedProc := make(map[int32]bool)
	namedThr := make(map[pfThreadKey]bool)
	// pendingWake maps a woken (pid, lwp) to the flow id opened at
	// its wakeup; the next dispatch of that LWP closes the arrow.
	pendingWake := make(map[[2]int32]int)
	flowID := 0

	closeCPU := func(cpu int32, at time.Duration) {
		if o := cpuOpen[cpu]; o != nil {
			evs = append(evs, pfEvent{Name: o.name, Ph: "X", Ts: pfTS(o.at),
				Dur: pfDur(o.at, at), Pid: pfCPUPid, Tid: int(cpu),
				Cname: "thread_state_running", Args: o.args})
			delete(cpuOpen, cpu)
		}
	}
	nameThread := func(k pfThreadKey) {
		if !namedProc[k.pid] {
			namedProc[k.pid] = true
			evs = append(evs, pfEvent{Name: "process_name", Ph: "M", Pid: int(k.pid),
				Args: map[string]any{"name": fmt.Sprintf("proc %d", k.pid)}})
		}
		if !namedThr[k] {
			namedThr[k] = true
			evs = append(evs, pfEvent{Name: "thread_name", Ph: "M", Pid: int(k.pid),
				Tid: int(k.tid), Args: map[string]any{"name": fmt.Sprintf("thread %d", k.tid)}})
		}
	}
	closeThr := func(k pfThreadKey, at time.Duration) {
		if o := thrOpen[k]; o != nil {
			evs = append(evs, pfEvent{Name: o.name, Ph: "X", Ts: pfTS(o.at),
				Dur: pfDur(o.at, at), Pid: int(k.pid), Tid: int(k.tid),
				Cname: "thread_state_running", Args: o.args})
			delete(thrOpen, k)
		}
		if o := thrPark[k]; o != nil {
			evs = append(evs, pfEvent{Name: o.name, Ph: "X", Ts: pfTS(o.at),
				Dur: pfDur(o.at, at), Pid: int(k.pid), Tid: int(k.tid),
				Cname: thrStyle[k], Args: o.args})
			delete(thrPark, k)
		}
	}

	for _, r := range recs {
		switch r.Kind {
		case EvDispatch:
			closeCPU(r.CPU, r.When)
			cpuOpen[r.CPU] = &openSlice{at: r.When,
				name: fmt.Sprintf("pid %d lwp %d", r.PID, r.LWP),
				args: map[string]any{"prio": r.Arg}}
			if id, ok := pendingWake[[2]int32{r.PID, r.LWP}]; ok {
				delete(pendingWake, [2]int32{r.PID, r.LWP})
				evs = append(evs, pfEvent{Name: "wakeup", Ph: "f", Cat: "wakeup",
					ID: id, BP: "e", Ts: pfTS(r.When), Pid: pfCPUPid, Tid: int(r.CPU)})
			}
		case EvPreempt:
			closeCPU(r.CPU, r.When)
			evs = append(evs, pfEvent{Name: "preempt", Ph: "i", S: "t",
				Ts: pfTS(r.When), Pid: pfCPUPid, Tid: int(r.CPU)})
		case EvSteal:
			evs = append(evs, pfEvent{Name: "steal", Ph: "i", S: "t",
				Ts: pfTS(r.When), Pid: pfCPUPid, Tid: int(r.CPU),
				Args: map[string]any{"victim_cpu": r.Arg, "pid": r.PID, "lwp": r.LWP}})
		case EvBalance:
			evs = append(evs, pfEvent{Name: "balance", Ph: "i", S: "t",
				Ts: pfTS(r.When), Pid: pfCPUPid, Tid: int(r.CPU),
				Args: map[string]any{"from_cpu": r.Arg, "pid": r.PID, "lwp": r.LWP}})
		case EvMigrate:
			evs = append(evs, pfEvent{Name: "migrate", Ph: "i", S: "t",
				Ts: pfTS(r.When), Pid: pfCPUPid, Tid: int(r.CPU),
				Args: map[string]any{"prev_cpu": r.Arg, "pid": r.PID, "lwp": r.LWP}})
		case EvWakeup:
			flowID++
			dur := 1.0
			evs = append(evs,
				pfEvent{Name: fmt.Sprintf("wake pid %d lwp %d", r.PID, r.LWP),
					Ph: "X", Ts: pfTS(r.When), Dur: &dur, Pid: pfCPUPid, Tid: wakeTid,
					Cname: "thread_state_runnable"},
				pfEvent{Name: "wakeup", Ph: "s", Cat: "wakeup", ID: flowID,
					Ts: pfTS(r.When), Pid: pfCPUPid, Tid: wakeTid})
			pendingWake[[2]int32{r.PID, r.LWP}] = flowID
		case EvFastForward:
			evs = append(evs, pfEvent{
				Name: fmt.Sprintf("fast-forward +%v", time.Duration(r.Arg)),
				Ph:   "i", S: "g", Ts: pfTS(r.When), Pid: pfCPUPid, Tid: wakeTid})
		case EvThreadRun:
			k := pfThreadKey{r.PID, r.TID}
			nameThread(k)
			closeThr(k, r.When)
			args := map[string]any{"lwp": r.LWP}
			if r.Arg > 0 {
				args["popped_from_shard"] = r.Arg - 1
			}
			thrOpen[k] = &openSlice{at: r.When, name: "run", args: args}
		case EvThreadPark:
			k := pfThreadKey{r.PID, r.TID}
			nameThread(k)
			closeThr(k, r.When)
			name, cname := parkStyle(r.Arg)
			thrPark[k] = &openSlice{at: r.When, name: name}
			thrStyle[k] = cname
		}
	}
	for cpu := range cpuOpen {
		closeCPU(cpu, end)
	}
	for k := range thrOpen {
		closeThr(k, end)
	}
	for k := range thrPark {
		closeThr(k, end)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     evs,
		"displayTimeUnit": "ms",
	})
}
