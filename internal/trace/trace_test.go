package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilBufferIsSafe(t *testing.T) {
	var b *Buffer
	b.Add("x", "ignored")
	if b.Events() != nil {
		t.Fatal("nil buffer returned events")
	}
	if b.Len() != 0 {
		t.Fatal("nil buffer Len != 0")
	}
}

func TestAddAndEvents(t *testing.T) {
	b := New(8, nil)
	b.Add("disp", "lwp %d runs thread %d", 1, 42)
	b.Add("sync", "mutex acquired")
	evs := b.Events()
	if len(evs) != 2 {
		t.Fatalf("len(Events) = %d, want 2", len(evs))
	}
	if evs[0].Kind != "disp" || !strings.Contains(evs[0].Msg, "thread 42") {
		t.Fatalf("bad first event: %+v", evs[0])
	}
	if evs[0].Seq >= evs[1].Seq {
		t.Fatal("sequence numbers not increasing")
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	b := New(4, nil)
	for i := 0; i < 10; i++ {
		b.Add("k", "event %d", i)
	}
	evs := b.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	if !strings.Contains(evs[0].Msg, "event 6") || !strings.Contains(evs[3].Msg, "event 9") {
		t.Fatalf("ring kept wrong window: %v", evs)
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
}

func TestKindsFilter(t *testing.T) {
	b := New(16, nil)
	b.Add("a", "1")
	b.Add("b", "2")
	b.Add("a", "3")
	got := b.Kinds("a")
	if len(got) != 2 || got[0].Msg != "1" || got[1].Msg != "3" {
		t.Fatalf("Kinds(a) = %v", got)
	}
}

func TestTimestampsUseNowFunc(t *testing.T) {
	var now time.Duration
	b := New(4, func() time.Duration { return now })
	b.Add("k", "first")
	now = 5 * time.Second
	b.Add("k", "second")
	evs := b.Events()
	if evs[0].When != 0 || evs[1].When != 5*time.Second {
		t.Fatalf("timestamps = %v, %v", evs[0].When, evs[1].When)
	}
}

func TestDumpContainsAllLines(t *testing.T) {
	b := New(8, nil)
	b.Add("k", "alpha")
	b.Add("k", "beta")
	d := b.Dump()
	if !strings.Contains(d, "alpha") || !strings.Contains(d, "beta") {
		t.Fatalf("Dump missing lines:\n%s", d)
	}
	if strings.Count(d, "\n") != 2 {
		t.Fatalf("Dump line count wrong:\n%s", d)
	}
}

func TestConcurrentAdd(t *testing.T) {
	b := New(1024, nil)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				b.Add("k", "msg")
			}
		}()
	}
	wg.Wait()
	if b.Len() != 1024 {
		t.Fatalf("Len = %d, want 1024", b.Len())
	}
	// All sequence numbers distinct.
	seen := map[uint64]bool{}
	for _, e := range b.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestDefaultCapacity(t *testing.T) {
	b := New(0, nil)
	for i := 0; i < 2000; i++ {
		b.Add("k", "x")
	}
	if b.Len() != 1024 {
		t.Fatalf("default capacity Len = %d, want 1024", b.Len())
	}
}
