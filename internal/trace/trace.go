// Package trace is a bounded, concurrency-safe event recorder used by
// the simulated kernel, the threads library, tests, and the demo
// binaries (cmd/mtdemo reproduces the paper's Figure 2 dispatch cycle
// by printing a trace captured with this package).
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Event is one recorded occurrence.
type Event struct {
	Seq  uint64
	When time.Duration
	Kind string
	Msg  string
}

// String renders the event as a single line.
func (e Event) String() string {
	return fmt.Sprintf("%8d %12s %-14s %s", e.Seq, e.When, e.Kind, e.Msg)
}

// Buffer is a fixed-capacity ring of events. The zero value is not
// usable; call New. A nil *Buffer is valid and discards all events, so
// components can take an optional tracer without nil checks at every
// call site.
type Buffer struct {
	mu   sync.Mutex
	seq  uint64
	evs  []Event
	next int
	full bool
	now  func() time.Duration
}

// New returns a Buffer that keeps the most recent capacity events.
// now supplies timestamps; pass nil to record zero times.
func New(capacity int, now func() time.Duration) *Buffer {
	if capacity <= 0 {
		capacity = 1024
	}
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Buffer{evs: make([]Event, capacity), now: now}
}

// Add records an event. It is safe for concurrent use and never
// blocks. Add on a nil buffer is a no-op.
func (b *Buffer) Add(kind, format string, args ...any) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.seq++
	b.evs[b.next] = Event{Seq: b.seq, When: b.now(), Kind: kind, Msg: fmt.Sprintf(format, args...)}
	b.next++
	if b.next == len(b.evs) {
		b.next = 0
		b.full = true
	}
	b.mu.Unlock()
}

// Events returns the recorded events, oldest first.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	if b.full {
		out = append(out, b.evs[b.next:]...)
	}
	out = append(out, b.evs[:b.next]...)
	return out
}

// Kinds returns the events whose Kind is in kinds, oldest first.
func (b *Buffer) Kinds(kinds ...string) []Event {
	want := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, e := range b.Events() {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders all events, one per line.
func (b *Buffer) Dump() string {
	var sb strings.Builder
	for _, e := range b.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Len reports how many events are currently retained.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.full {
		return len(b.evs)
	}
	return b.next
}
