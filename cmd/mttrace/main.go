// Command mttrace exercises the per-CPU binary event rings: it boots
// a machine with event tracing on, runs a contended multi-thread
// workload, then merges the rings and reports the event mix, the ring
// drop/torn counters, and two latency histograms computed from the
// merged stream — kernel wakeup-to-dispatch latency and on-CPU run
// lengths. With -dump it also prints every retained record in global
// order.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/bits"
	"sort"
	"time"

	"sunosmt/mt"
)

func main() {
	ncpu := flag.Int("ncpu", 2, "number of simulated CPUs")
	ring := flag.Int("ring", 4096, "per-CPU event ring capacity")
	dump := flag.Bool("dump", false, "print every retained record in merge order")
	threads := flag.Int("threads", 6, "worker threads in the demo workload")
	iters := flag.Int("iters", 200, "iterations per worker")
	flag.Parse()

	sys := mt.NewSystem(mt.Options{
		NCPU:      *ncpu,
		EventRing: *ring,
		TimeSlice: 200 * time.Microsecond,
	})
	runWorkload(sys, *threads, *iters)

	ev := sys.Events()
	recs, dropped := ev.Snapshot()
	if *dump {
		for _, r := range recs {
			fmt.Println(r)
		}
	}

	counts := map[mt.EventKind]int{}
	for _, r := range recs {
		counts[r.Kind]++
	}
	kinds := make([]mt.EventKind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	fmt.Printf("retained %d events across %d rings (dropped %d, torn %d)\n",
		len(recs), ev.NCPU()+1, dropped, ev.Torn())
	for _, k := range kinds {
		fmt.Printf("  %-10v %d\n", k, counts[k])
	}

	fmt.Println("\nwakeup-to-dispatch latency (kernel run-queue wait after a wakeup):")
	printHist(wakeupLatencies(recs))
	fmt.Println("\non-CPU run length (dispatch to the CPU's next dispatch):")
	printHist(onCPURuns(recs))
}

// runWorkload spawns a process mixing lock contention (wakeups),
// yielders (dispatches and preemptions), and sleepers, so every event
// kind shows up in the rings.
func runWorkload(sys *mt.System, nthreads, iters int) {
	ch := make(chan *mt.Proc, 1)
	p, err := sys.Spawn("mttrace", func(t *mt.Thread, _ any) {
		p := <-ch
		r := t.Runtime()
		r.SetConcurrency(2)
		var mu mt.Mutex
		shared := 0
		var ids []mt.ThreadID
		for i := 0; i < nthreads; i++ {
			c, err := r.Create(func(c *mt.Thread, _ any) {
				for j := 0; j < iters; j++ {
					mu.Enter(c)
					shared++
					mu.Exit(c)
					c.Yield()
				}
			}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
			if err != nil {
				log.Fatal(err)
			}
			ids = append(ids, c.ID())
		}
		s, err := r.Create(func(c *mt.Thread, _ any) {
			for j := 0; j < 10; j++ {
				p.Sleep(c, 100*time.Microsecond)
			}
		}, nil, mt.CreateOpts{Flags: mt.ThreadWait | mt.ThreadBindLWP})
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, s.ID())
		for _, id := range ids {
			t.Wait(id)
		}
	}, nil, mt.ProcConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ch <- p
	p.WaitExit()
}

// wakeupLatencies pairs each EvWakeup with the next EvDispatch of the
// same (pid, lwp) in the merged stream: the time the woken LWP then
// spent on the kernel run queue.
func wakeupLatencies(recs []mt.EventRecord) []time.Duration {
	type key struct{ pid, lwp int32 }
	pending := map[key]time.Duration{}
	var out []time.Duration
	for _, r := range recs {
		k := key{r.PID, r.LWP}
		switch r.Kind {
		case mt.EvWakeup:
			pending[k] = r.When
		case mt.EvDispatch:
			if w, ok := pending[k]; ok {
				out = append(out, r.When-w)
				delete(pending, k)
			}
		}
	}
	return out
}

// onCPURuns measures, per CPU, the spacing between consecutive
// dispatches — how long each occupant held the processor.
func onCPURuns(recs []mt.EventRecord) []time.Duration {
	last := map[int32]time.Duration{}
	var out []time.Duration
	for _, r := range recs {
		if r.Kind != mt.EvDispatch {
			continue
		}
		if prev, ok := last[r.CPU]; ok {
			out = append(out, r.When-prev)
		}
		last[r.CPU] = r.When
	}
	return out
}

// printHist renders a power-of-two-bucketed latency histogram.
func printHist(ds []time.Duration) {
	if len(ds) == 0 {
		fmt.Println("  (no samples)")
		return
	}
	buckets := map[int]int{}
	var sum time.Duration
	for _, d := range ds {
		if d < 0 {
			d = 0
		}
		buckets[bits.Len64(uint64(d))]++
		sum += d
	}
	keys := make([]int, 0, len(buckets))
	for b := range buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	max := 0
	for _, b := range keys {
		if buckets[b] > max {
			max = buckets[b]
		}
	}
	for _, b := range keys {
		lo := time.Duration(0)
		if b > 0 {
			lo = time.Duration(1) << (b - 1)
		}
		n := buckets[b]
		bar := ""
		for i := 0; i < 40*n/max; i++ {
			bar += "#"
		}
		fmt.Printf("  < %-10v %6d %s\n", 2*lo, n, bar)
	}
	fmt.Printf("  samples %d, mean %v\n", len(ds), sum/time.Duration(len(ds)))
}
