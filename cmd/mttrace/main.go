// Command mttrace exercises the per-CPU binary event rings: it boots
// a machine with event tracing on, runs a contended multi-thread
// workload, then merges the rings and reports the event mix, the ring
// drop/torn counters, and two latency histograms computed from the
// merged stream — kernel wakeup-to-dispatch latency and on-CPU run
// lengths. With -dump it also prints every retained record in global
// order.
//
// -perfetto writes the merged stream as Chrome trace JSON (open it at
// ui.perfetto.dev): a track per CPU showing which LWP held it, a
// track per thread with microstate-colored slices, wakeup flow
// arrows, and instants for preemptions, steals, balances, and
// fast-forward jumps.
//
// -record and -replay are schedule time travel. -record <file> runs a
// deterministic workload variant — one CPU, a frozen manual clock,
// SIGWAITING growth off, chaos from -seed — recording every chaos
// decision, and writes the schedule journal (decisions plus the full
// event stream) to the file. -replay <file> reads a journal, re-runs
// the workload it describes with the dispatcher's decision points
// driven from the journal, and verifies the replayed event stream
// matches the recorded one; on divergence it prints the first
// mismatching event and exits non-zero. The determinism contract is
// the recording configuration: on the real clock, or with more CPUs,
// timeshare priorities drift with measured time and runs legitimately
// diverge.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/bits"
	"os"
	"sort"
	"strconv"
	"time"

	"sunosmt/internal/ktime"
	"sunosmt/mt"
)

func main() {
	ncpu := flag.Int("ncpu", 2, "number of simulated CPUs")
	ring := flag.Int("ring", 4096, "per-CPU event ring capacity")
	dump := flag.Bool("dump", false, "print every retained record in merge order")
	threads := flag.Int("threads", 6, "worker threads in the demo workload")
	iters := flag.Int("iters", 200, "iterations per worker")
	seed := flag.Uint64("seed", 1, "chaos seed for -record")
	record := flag.String("record", "", "record a deterministic run's schedule journal to this file")
	replay := flag.String("replay", "", "replay a schedule journal and verify the event stream matches")
	perfetto := flag.String("perfetto", "", "write the run's merged event stream as Chrome trace JSON to this file")
	flag.Parse()

	var sys *mt.System
	switch {
	case *record != "" && *replay != "":
		log.Fatal("mttrace: -record and -replay are mutually exclusive")
	case *record != "":
		sys = recordRun(*record, *seed, *threads, *iters, *ring)
	case *replay != "":
		sys = replayRun(*replay)
	default:
		sys = mt.NewSystem(mt.Options{
			NCPU:      *ncpu,
			EventRing: *ring,
			TimeSlice: 200 * time.Microsecond,
		})
		runWorkload(sys, *threads, *iters)
	}

	ev := sys.Events()
	recs, dropped := ev.Snapshot()
	if *dump {
		for _, r := range recs {
			fmt.Println(r)
		}
	}
	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			log.Fatal(err)
		}
		if err := mt.WritePerfetto(f, recs); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("perfetto trace: %s (%d events; open at ui.perfetto.dev)\n", *perfetto, len(recs))
	}

	counts := map[mt.EventKind]int{}
	for _, r := range recs {
		counts[r.Kind]++
	}
	kinds := make([]mt.EventKind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	fmt.Printf("retained %d events across %d rings (dropped %d, torn %d)\n",
		len(recs), ev.NCPU()+1, dropped, ev.Torn())
	for _, k := range kinds {
		fmt.Printf("  %-10v %d\n", k, counts[k])
	}

	fmt.Println("\nwakeup-to-dispatch latency (kernel run-queue wait after a wakeup):")
	printHist(wakeupLatencies(recs))
	fmt.Println("\non-CPU run length (dispatch to the CPU's next dispatch):")
	printHist(onCPURuns(recs))
}

// runDeterministic runs the record/replay workload: `threads` unbound
// threads contending one mutex on one CPU. The configuration is the
// replay determinism contract — one CPU, simulated path costs off,
// SIGWAITING pool growth off, and a frozen manual clock (timeshare
// priorities decay with *measured* CPU time, so on the real clock a
// slow run charges more usage than a fast one and dispatch priorities
// drift). Under it the event stream is a pure function of the chaos
// decision stream, which src records or replays.
func runDeterministic(src *mt.ChaosSource, threads, iters, ring int) *mt.System {
	sys := mt.NewSystem(mt.Options{
		NCPU:             1,
		Clock:            ktime.NewManual(),
		Chaos:            src,
		LWPCreateCost:    -1,
		KernelSwitchCost: -1,
		EventRing:        ring,
	})
	p, err := sys.Spawn("mttrace-det", func(t *mt.Thread, _ any) {
		r := t.Runtime()
		var mu mt.Mutex
		shared := 0
		body := func(c *mt.Thread, _ any) {
			for j := 0; j < iters; j++ {
				mu.Enter(c)
				shared++
				c.Checkpoint()
				mu.Exit(c)
			}
		}
		ids := make([]mt.ThreadID, 0, threads)
		for i := 1; i < threads; i++ {
			c, err := r.Create(body, nil, mt.CreateOpts{Flags: mt.ThreadWait})
			if err != nil {
				log.Fatal(err)
			}
			ids = append(ids, c.ID())
		}
		body(t, nil)
		for _, id := range ids {
			t.Wait(id)
		}
	}, nil, mt.ProcConfig{DisableSigwaiting: true})
	if err != nil {
		log.Fatal(err)
	}
	p.WaitExit()
	return sys
}

// recordRun executes the deterministic workload with a recording
// chaos source and writes the schedule journal, stamping the workload
// parameters into the journal metadata so replayRun can rebuild the
// identical run.
func recordRun(path string, seed uint64, threads, iters, ring int) *mt.System {
	src := mt.NewChaos(seed)
	src.StartRecording()
	sys := runDeterministic(src, threads, iters, ring)
	if d, tn := sys.Events().Dropped(), sys.Events().Torn(); d != 0 || tn != 0 {
		log.Fatalf("mttrace: event ring overflowed (dropped %d, torn %d); raise -ring", d, tn)
	}
	j := sys.Schedule()
	j.Meta["workload"] = "mttrace contended-mutex"
	j.Meta["threads"] = strconv.Itoa(threads)
	j.Meta["iters"] = strconv.Itoa(iters)
	j.Meta["ring"] = strconv.Itoa(ring)
	if err := j.WriteFile(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded schedule: %s (%d decisions, %d events, seed %d)\n",
		path, len(j.Decisions), len(j.Events), seed)
	return sys
}

// replayRun reads a journal, re-runs the workload its metadata
// describes with chaos decisions served from the journal, and
// verifies the replayed event stream matches the recorded one.
func replayRun(path string) *mt.System {
	j, err := mt.ReadJournalFile(path)
	if err != nil {
		log.Fatal(err)
	}
	if w := j.Meta["workload"]; w != "mttrace contended-mutex" {
		log.Fatalf("mttrace: journal %s records workload %q, not one mttrace can replay", path, w)
	}
	metaInt := func(key string) int {
		n, err := strconv.Atoi(j.Meta[key])
		if err != nil {
			log.Fatalf("mttrace: journal %s: bad %s metadata: %v", path, key, err)
		}
		return n
	}
	threads, iters, ring := metaInt("threads"), metaInt("iters"), metaInt("ring")
	src, err := mt.NewReplayChaos(j)
	if err != nil {
		log.Fatal(err)
	}
	sys := runDeterministic(src, threads, iters, ring)
	recs, _ := sys.Events().Snapshot()
	if d := mt.FirstEventDivergence(j.Events, recs); d != -1 {
		want, got := "(stream ended)", "(stream ended)"
		if d < len(j.Events) {
			want = j.Events[d].String()
		}
		if d < len(recs) {
			got = recs[d].String()
		}
		fmt.Fprintf(os.Stderr, "mttrace: replay diverged at event %d:\n  recorded: %s\n  replayed: %s\n",
			d, want, got)
		os.Exit(1)
	}
	if dv := src.Divergence(); dv != nil {
		fmt.Fprintf(os.Stderr, "mttrace: replay divergence: %v\n", dv)
		os.Exit(1)
	}
	fmt.Printf("replay ok: %s (%d events match, divergence detector silent)\n", path, len(recs))
	return sys
}

// runWorkload spawns a process mixing lock contention (wakeups),
// yielders (dispatches and preemptions), and sleepers, so every event
// kind shows up in the rings.
func runWorkload(sys *mt.System, nthreads, iters int) {
	ch := make(chan *mt.Proc, 1)
	p, err := sys.Spawn("mttrace", func(t *mt.Thread, _ any) {
		p := <-ch
		r := t.Runtime()
		r.SetConcurrency(2)
		var mu mt.Mutex
		shared := 0
		var ids []mt.ThreadID
		for i := 0; i < nthreads; i++ {
			c, err := r.Create(func(c *mt.Thread, _ any) {
				for j := 0; j < iters; j++ {
					mu.Enter(c)
					shared++
					mu.Exit(c)
					c.Yield()
				}
			}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
			if err != nil {
				log.Fatal(err)
			}
			ids = append(ids, c.ID())
		}
		s, err := r.Create(func(c *mt.Thread, _ any) {
			for j := 0; j < 10; j++ {
				p.Sleep(c, 100*time.Microsecond)
			}
		}, nil, mt.CreateOpts{Flags: mt.ThreadWait | mt.ThreadBindLWP})
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, s.ID())
		for _, id := range ids {
			t.Wait(id)
		}
	}, nil, mt.ProcConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ch <- p
	p.WaitExit()
}

// wakeupLatencies pairs each EvWakeup with the next EvDispatch of the
// same (pid, lwp) in the merged stream: the time the woken LWP then
// spent on the kernel run queue.
func wakeupLatencies(recs []mt.EventRecord) []time.Duration {
	type key struct{ pid, lwp int32 }
	pending := map[key]time.Duration{}
	var out []time.Duration
	for _, r := range recs {
		k := key{r.PID, r.LWP}
		switch r.Kind {
		case mt.EvWakeup:
			pending[k] = r.When
		case mt.EvDispatch:
			if w, ok := pending[k]; ok {
				out = append(out, r.When-w)
				delete(pending, k)
			}
		}
	}
	return out
}

// onCPURuns measures, per CPU, the spacing between consecutive
// dispatches — how long each occupant held the processor.
func onCPURuns(recs []mt.EventRecord) []time.Duration {
	last := map[int32]time.Duration{}
	var out []time.Duration
	for _, r := range recs {
		if r.Kind != mt.EvDispatch {
			continue
		}
		if prev, ok := last[r.CPU]; ok {
			out = append(out, r.When-prev)
		}
		last[r.CPU] = r.When
	}
	return out
}

// printHist renders a power-of-two-bucketed latency histogram.
func printHist(ds []time.Duration) {
	if len(ds) == 0 {
		fmt.Println("  (no samples)")
		return
	}
	buckets := map[int]int{}
	var sum time.Duration
	for _, d := range ds {
		if d < 0 {
			d = 0
		}
		buckets[bits.Len64(uint64(d))]++
		sum += d
	}
	keys := make([]int, 0, len(buckets))
	for b := range buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	max := 0
	for _, b := range keys {
		if buckets[b] > max {
			max = buckets[b]
		}
	}
	for _, b := range keys {
		lo := time.Duration(0)
		if b > 0 {
			lo = time.Duration(1) << (b - 1)
		}
		n := buckets[b]
		bar := ""
		for i := 0; i < 40*n/max; i++ {
			bar += "#"
		}
		fmt.Printf("  < %-10v %6d %s\n", 2*lo, n, bar)
	}
	fmt.Printf("  samples %d, mean %v\n", len(ds), sum/time.Duration(len(ds)))
}
