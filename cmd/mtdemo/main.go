// Command mtdemo exercises the paper's architecture figures as
// running code:
//
//	mtdemo -fig 1   synchronization variables in shared memory
//	                between two processes (Figure 1)
//	mtdemo -fig 2   an LWP's dispatch cycle — choose thread, run,
//	                save state, choose another — shown via the
//	                library trace (Figure 2)
//	mtdemo -fig 3   the five process configurations: 1:1
//	                traditional, many:1 coroutine (liblwp), M:N,
//	                all-bound, and the mixed configuration with a
//	                CPU-bound LWP (Figure 3)
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sunosmt/internal/liblwp"
	"sunosmt/internal/sim"
	"sunosmt/internal/vfs"
	"sunosmt/mt"
)

func main() {
	fig := flag.Int("fig", 3, "which figure to demonstrate (1, 2 or 3)")
	flag.Parse()
	switch *fig {
	case 1:
		figure1()
	case 2:
		figure2()
	case 3:
		figure3()
	default:
		log.Fatalf("mtdemo: unknown figure %d", *fig)
	}
}

// figure1: two processes, a mutex in a shared mapping, interleaved
// critical sections.
func figure1() {
	fmt.Println("Figure 1: synchronization variables in memory shared between processes")
	sys := mt.NewSystem(mt.Options{NCPU: 2})
	run := func(name string) *mt.Proc {
		ch := make(chan *mt.Proc, 1)
		p, err := sys.Spawn(name, func(t *mt.Thread, _ any) {
			p := <-ch
			fd, _ := p.Open(t, "/tmp/shared.dat", mt.OCreate|mt.ORdWr)
			va, _ := p.Mmap(t, 0, mt.PageSize, mt.ProtRead|mt.ProtWrite, mt.MapShared, fd, 0)
			mu, err := p.SharedMutexAt(t, va)
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				mu.Enter(t)
				fmt.Printf("  %s holds the shared lock (iteration %d)\n", name, i)
				p.Sleep(t, time.Millisecond)
				mu.Exit(t)
				t.Yield()
			}
		}, nil, mt.ProcConfig{})
		if err != nil {
			log.Fatal(err)
		}
		ch <- p
		return p
	}
	a, b := run("process-1"), run("process-2")
	a.WaitExit()
	b.WaitExit()
	fmt.Println("  both processes synchronized through the mapped file")
}

// figure2: trace the dispatch cycle of an LWP multiplexing threads.
func figure2() {
	fmt.Println("Figure 2: LWPs running threads (event rings over the dispatch cycle)")
	sys := mt.NewSystem(mt.Options{NCPU: 1, EventRing: 256})
	p, err := sys.Spawn("fig2", func(t *mt.Thread, _ any) {
		r := t.Runtime()
		var ids []mt.ThreadID
		for i := 0; i < 3; i++ {
			c, _ := r.Create(func(c *mt.Thread, _ any) {
				c.Yield() // (c) save state; (d) LWP chooses another
				c.Yield()
			}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
			ids = append(ids, c.ID())
		}
		for _, id := range ids {
			t.Wait(id)
		}
	}, nil, mt.ProcConfig{})
	if err != nil {
		log.Fatal(err)
	}
	p.WaitExit()
	for _, e := range sys.Events().Kinds(mt.EvThreadRun, mt.EvThreadPark) {
		switch e.Kind {
		case mt.EvThreadRun:
			fmt.Printf("  lwp %d runs thread %d\n", e.LWP, e.TID)
		case mt.EvThreadPark:
			fmt.Printf("  lwp %d parks thread %d; dispatcher chooses another\n", e.LWP, e.TID)
		}
	}
}

// figure3: all five process configurations.
func figure3() {
	fmt.Println("Figure 3: multi-thread architecture examples")
	sys := mt.NewSystem(mt.Options{NCPU: 2})

	// proc 1: traditional single-threaded process (1 thread : 1 LWP).
	p1, _ := sys.Spawn("proc1", func(t *mt.Thread, _ any) {}, nil, mt.ProcConfig{})
	p1.WaitExit()
	fmt.Println("  proc 1: one thread on one LWP (traditional UNIX process) - done")

	// proc 2: threads multiplexed on a single LWP by the 4.0
	// coroutine package.
	kern := sys.Kern
	kp := kern.NewProcess("proc2", nil)
	pf := vfs.NewProcFiles(sys.FS, kp)
	pkg, err := liblwp.New(kern, kp, pf)
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	if err := pkg.Run(func(g *liblwp.GThread) {
		for i := 0; i < 3; i++ {
			g.Pkg().Create(func(w *liblwp.GThread) {
				count++
				w.Yield()
			})
		}
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  proc 2: %d coroutine threads on one LWP (SunOS 4.0 liblwp) - done\n", count)

	// proc 3: M:N — several threads multiplexed on fewer LWPs.
	p3, _ := sys.Spawn("proc3", func(t *mt.Thread, _ any) {
		r := t.Runtime()
		r.SetConcurrency(2)
		var ids []mt.ThreadID
		for i := 0; i < 6; i++ {
			c, _ := r.Create(func(c *mt.Thread, _ any) { c.Yield() }, nil,
				mt.CreateOpts{Flags: mt.ThreadWait})
			ids = append(ids, c.ID())
		}
		for _, id := range ids {
			t.Wait(id)
		}
		fmt.Printf("  proc 3: 6 threads multiplexed on %d LWPs - done\n", r.PoolSize())
	}, nil, mt.ProcConfig{})
	p3.WaitExit()

	// proc 4: threads permanently bound to LWPs.
	p4, _ := sys.Spawn("proc4", func(t *mt.Thread, _ any) {
		r := t.Runtime()
		var ids []mt.ThreadID
		for i := 0; i < 2; i++ {
			c, _ := r.Create(func(c *mt.Thread, _ any) {}, nil,
				mt.CreateOpts{Flags: mt.ThreadWait | mt.ThreadBindLWP})
			ids = append(ids, c.ID())
		}
		for _, id := range ids {
			t.Wait(id)
		}
		fmt.Println("  proc 4: every thread bound to its own LWP - done")
	}, nil, mt.ProcConfig{})
	p4.WaitExit()

	// proc 5: the mixed configuration, including an LWP bound to a
	// CPU.
	ch := make(chan *mt.Proc, 1)
	p5, _ := sys.Spawn("proc5", func(t *mt.Thread, _ any) {
		p := <-ch
		r := t.Runtime()
		r.SetConcurrency(2)
		var ids []mt.ThreadID
		for i := 0; i < 4; i++ {
			c, _ := r.Create(func(c *mt.Thread, _ any) { c.Yield() }, nil,
				mt.CreateOpts{Flags: mt.ThreadWait})
			ids = append(ids, c.ID())
		}
		b, _ := r.Create(func(c *mt.Thread, _ any) {
			// Bound thread whose LWP is bound to CPU 1 and runs
			// real-time.
			if err := p.BindCPU(c, 1); err != nil {
				log.Fatal(err)
			}
			if err := p.Priocntl(c, sim.ClassRT, 10); err != nil {
				log.Fatal(err)
			}
		}, nil, mt.CreateOpts{Flags: mt.ThreadWait | mt.ThreadBindLWP})
		ids = append(ids, b.ID())
		for _, id := range ids {
			t.Wait(id)
		}
		fmt.Println("  proc 5: unbound group + bound thread with CPU-bound RT LWP - done")
	}, nil, mt.ProcConfig{})
	ch <- p5
	p5.WaitExit()
}
