// Command mtstat is a prstat-like viewer over the simulated /proc
// file system: it boots a machine, runs a demonstration workload, and
// periodically prints every process's status, LWPs, and — through the
// debugger/library cooperation interface — its user-level threads.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"time"

	"sunosmt/internal/procfs"
	"sunosmt/internal/vfs"
	"sunosmt/mt"
)

func main() {
	ticks := flag.Int("ticks", 3, "number of /proc snapshots to print")
	interval := flag.Duration("interval", 20*time.Millisecond, "snapshot interval")
	locks := flag.Bool("locks", false, "also print /proc/<pid>/lstatus (lock wait-for edges and deadlocks)")
	micro := flag.Bool("m", false, "also print /proc/<pid>/usage (microstate accounting columns)")
	health := flag.Bool("health", false, "also print /proc/<pid>/health (deadman-watchdog report)")
	flag.Parse()

	sys := mt.NewSystem(mt.Options{NCPU: 2})
	pfs, err := procfs.Mount(sys.Kern, sys.FS)
	if err != nil {
		log.Fatal(err)
	}

	// Workload: a process with a mix of bound, unbound and blocked
	// threads.
	stopCh := make(chan struct{})
	ch := make(chan *mt.Proc, 1)
	work, err := sys.Spawn("workload", func(t *mt.Thread, _ any) {
		p := <-ch
		r := t.Runtime()
		r.SetConcurrency(2)
		var ids []mt.ThreadID
		// A held mutex with a waiter, so -locks has an edge to show;
		// ticket policy so the lstatus POLICY column shows a
		// non-default entry.
		var mu mt.Mutex
		mu.InitPolicy(mt.PolicyTicket)
		mu.Enter(t)
		w, _ := r.Create(func(c *mt.Thread, _ any) {
			mu.Enter(c)
			mu.Exit(c)
		}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
		ids = append(ids, w.ID())
		for i := 0; i < 4; i++ {
			c, _ := r.Create(func(c *mt.Thread, _ any) {
				for {
					select {
					case <-stopCh:
						return
					default:
					}
					c.Yield()
				}
			}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
			ids = append(ids, c.ID())
		}
		b, _ := r.Create(func(c *mt.Thread, _ any) {
			for {
				select {
				case <-stopCh:
					return
				default:
				}
				p.Sleep(c, time.Millisecond)
			}
		}, nil, mt.CreateOpts{Flags: mt.ThreadWait | mt.ThreadBindLWP})
		ids = append(ids, b.ID())
		// Confine the bound thread to a processor set so the pset and
		// binding columns of /proc/sched and psinfo have rows to show.
		ps := sys.PsetCreate()
		if err := sys.PsetAssign(ps, 1); err != nil {
			log.Fatal(err)
		}
		if err := sys.PsetBind(b, ps); err != nil {
			log.Fatal(err)
		}
		for {
			select {
			case <-stopCh:
			default:
				t.Yield()
				continue
			}
			break
		}
		mu.Exit(t)
		for _, id := range ids {
			t.Wait(id)
		}
	}, nil, mt.ProcConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ch <- work
	pfs.RegisterRuntime(work.RT)

	// The observer process reads /proc like a debugger would.
	obsDone := make(chan struct{})
	obsCh := make(chan *mt.Proc, 1)
	obs, err := sys.Spawn("mtstat", func(t *mt.Thread, _ any) {
		defer close(obsDone)
		p := <-obsCh
		for tick := 0; tick < *ticks; tick++ {
			if err := pfs.Refresh(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("=== snapshot %d ===\n", tick+1)
			if data, err := readFile(p, t, "/proc/sched"); err == nil {
				fmt.Printf("--- /proc/sched ---\n%s", data)
			}
			pids, err := sys.FS.ReadDir("/", "/proc")
			if err != nil {
				log.Fatal(err)
			}
			files := []string{"status", "lwps", "threads", "psinfo"}
			if *micro {
				files = append(files, "usage")
			}
			if *locks {
				files = append(files, "lstatus")
			}
			if *health {
				files = append(files, "health")
			}
			for _, pid := range pids {
				for _, f := range files {
					path := "/proc/" + pid + "/" + f
					data, err := readFile(p, t, path)
					if err != nil {
						continue
					}
					fmt.Printf("--- %s ---\n%s", path, data)
				}
			}
			p.Sleep(t, *interval)
		}
	}, nil, mt.ProcConfig{})
	if err != nil {
		log.Fatal(err)
	}
	obsCh <- obs
	<-obsDone
	close(stopCh)
	work.WaitExit()
	obs.WaitExit()
}

func readFile(p *mt.Proc, t *mt.Thread, path string) (string, error) {
	fd, err := p.Open(t, path, vfs.ORdOnly)
	if err != nil {
		return "", err
	}
	defer p.Close(t, fd)
	var out []byte
	buf := make([]byte, 512)
	for {
		n, err := p.Read(t, fd, buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return string(out), nil
		}
		if err != nil {
			return "", err
		}
	}
}
