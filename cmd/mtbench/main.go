// Command mtbench regenerates the evaluation tables of "SunOS
// Multi-thread Architecture" (USENIX Winter '91): Figure 5 (thread
// creation time) and Figure 6 (thread synchronization time), printing
// measured numbers next to the paper's, with the paper's ratio
// columns.
//
// Usage:
//
//	mtbench [-n iterations] [-fig 5|6|0]
//
// The absolute numbers measure the simulation substrate on the host;
// the reproduced result is the shape — which rows involve the kernel
// and by roughly what factor they are slower. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"sunosmt/internal/benchkit"
)

func main() {
	n := flag.Int("n", 20000, "iterations per measurement")
	fig := flag.Int("fig", 0, "which figure to run (5 or 6; 0 = both)")
	flag.Parse()

	switch *fig {
	case 0, 5, 6:
	default:
		fmt.Fprintln(os.Stderr, "mtbench: -fig must be 5, 6 or 0")
		os.Exit(2)
	}
	if *fig == 0 || *fig == 5 {
		rows := benchkit.Figure5(*n)
		fmt.Print(benchkit.FormatTable("Figure 5: Thread creation time", rows))
		fmt.Println()
	}
	if *fig == 0 || *fig == 6 {
		rows := benchkit.Figure6(*n)
		fmt.Print(benchkit.FormatTable("Figure 6: Thread synchronization time", rows))
	}
}
