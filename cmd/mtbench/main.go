// Command mtbench regenerates the evaluation tables of "SunOS
// Multi-thread Architecture" (USENIX Winter '91): Figure 5 (thread
// creation time) and Figure 6 (thread synchronization time), printing
// measured numbers next to the paper's, with the paper's ratio
// columns.
//
// Usage:
//
//	mtbench [-n iterations] [-fig 5,..,12|0|-1] [-json file] [-baseline file] [-threshold x] [-traceoverhead x] [-allocs] [-memceiling bytes] [-seeds n] [-fastforward x] [-lockfull]
//
// -fig 7 is the priority-inversion table (not in the paper): the
// contended-acquisition triangle with turnstile priority inheritance
// on and off. The "off" row reproduces the inversion; the gate keeps
// the "on" row's bounded latency from regressing.
//
// -fig 8 is the dispatch-scaling table (not in the paper): per-op
// ready-queue cost at NCPU in {1,4,16,64} with the pre-sharding shared
// queue vs the per-CPU shards. -fig 9 reports the best-of-five-trials
// median cross-CPU wakeup latency, computed from the per-CPU event
// rings, plus the kernel dispatcher's pooled dispatch/steal counters.
// The run fails outright when no steal happened — the deterministic
// structural property — while the latency row holds a baseline
// threshold half the old steal-rate backstop, because best-of-N
// discards the trials the host degraded.
// -fig accepts a comma list ("5,6,7,8") so CI can gate figures in
// separate invocations.
//
// -fig 12 is the lock-policy shootout (not in the paper): every lock
// policy (adaptive, ticket, queue, parkinglot) crossed with LWP widths
// and critical-section hold times, reporting p50/p99/p999 lock-wait
// latency per cell from the runtime's MSLock microstate sampling.
// Only the default (adaptive) policy's contended cell feeds the JSON
// rows and the baseline gate; -lockfull widens the matrix for the
// nightly run.
//
// -fig 10 is the scale tier (not in the paper): mass-create of n
// stopped threads reporting reserved/committed bytes per thread, a
// thread ring driving n full lifecycles through the shell freelist
// and stack cache, a pairwise create/sync/exit chain, and a mass
// broadcast. Memory metrics ride in the per-op encoding (KB as
// microseconds, like fig 9's steal rate) so the baseline gates them.
// CI runs the tier at -n 100000 per PR; the nightly job runs the
// full million with -memceiling gating the ring's peak committed
// bytes.
//
// -fig 11 is the virtual-time tier (not in the paper): a seeded
// sleep-heavy sweep — the shape of a chaos timeout sweep, wall time
// dominated by timed kernel sleeps — run once on the real clock and
// once on the fast-forward clock, which jumps over all-idle sleep
// time. -seeds sets the sweep width (default 100; -n is not used, a
// seed's cost is its virtual sleep schedule). -fastforward x exits
// non-zero unless the real/fast-forward speedup is at least x; CI
// gates it at 10x. The real-clock row is sleep-bound and so stable
// under -baseline; the fast-forward row measures the substrate and
// swings with host load, which the speedup gate absorbs.
//
// -allocs appends a host-allocations-per-op column for the rows that
// collect it (figs 5 and 10) — a coarse whole-scenario count; the
// precise steady-state zero-alloc claims are pinned by
// testing.AllocsPerRun tests in internal/core.
//
// -memceiling N exits non-zero if the fig-10 thread ring's peak
// committed bytes exceed N (requires -fig to include 10).
//
// -json additionally writes the measured rows as a JSON document (see
// BENCH_baseline.json for the committed reference run), so successive
// runs can be diffed mechanically.
//
// -baseline compares the run against a previously written JSON
// document row by row (matched on figure and name) and exits non-zero
// if any row's per-op time regressed by more than -threshold (default
// 1.5x). CI runs this against the committed baseline as a regression
// gate.
//
// -traceoverhead measures the cost of the per-CPU event rings on the
// dispatch hot path: it interleaves DispatchLatency runs with tracing
// off and on (best of three each) and exits non-zero if the traced
// per-op time exceeds the untraced one by more than the given ratio.
// CI runs `-fig -1 -traceoverhead 1.10` as the ≤10% overhead gate.
//
// The absolute numbers measure the simulation substrate on the host;
// the reproduced result is the shape — which rows involve the kernel
// and by roughly what factor they are slower. See EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sunosmt/internal/benchkit"
)

// jsonRow is one benchmark row in the -json output.
type jsonRow struct {
	Figure  int     `json:"figure"`
	Name    string  `json:"name"`
	PaperUS float64 `json:"paper_us"`
	PerOpUS float64 `json:"per_op_us"`
	TotalNS int64   `json:"total_ns"`
	Ops     int     `json:"ops"`
	// AllocsPerOp is the host heap allocations per operation for rows
	// that collect it; -1 (and omitted) when not measured.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

type jsonDoc struct {
	Iterations int       `json:"iterations"`
	Rows       []jsonRow `json:"rows"`
}

func toJSONRows(fig int, rows []benchkit.Row) []jsonRow {
	out := make([]jsonRow, 0, len(rows))
	for _, r := range rows {
		jr := jsonRow{
			Figure:  fig,
			Name:    r.Name,
			PaperUS: r.PaperUS,
			PerOpUS: float64(r.PerOp().Nanoseconds()) / 1e3,
			TotalNS: r.Measured.Nanoseconds(),
			Ops:     r.Ops,
		}
		if r.Allocs >= 0 && r.Ops > 0 {
			jr.AllocsPerOp = float64(r.Allocs) / float64(r.Ops)
		}
		out = append(out, jr)
	}
	return out
}

// formatAllocs renders the -allocs column for the rows that collected
// a count.
func formatAllocs(rows []benchkit.Row) string {
	var out string
	for _, r := range rows {
		if r.Allocs < 0 || r.Ops == 0 {
			continue
		}
		out += fmt.Sprintf("  %-28s %10.2f allocs/op (%d total)\n",
			r.Name, float64(r.Allocs)/float64(r.Ops), r.Allocs)
	}
	if out == "" {
		return ""
	}
	return "Host allocations (whole scenario, incl. harness):\n" + out
}

// compareBaseline checks doc against the baseline JSON at path,
// matching rows on (figure, name) and comparing per-op times. It
// prints one line per row and returns the rows that regressed by more
// than threshold. Rows present on only one side are reported but
// never fail the gate (the benchmark set may grow).
func compareBaseline(doc jsonDoc, path string, threshold float64) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base jsonDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	type key struct {
		fig  int
		name string
	}
	baseBy := make(map[key]jsonRow, len(base.Rows))
	for _, r := range base.Rows {
		baseBy[key{r.Figure, r.Name}] = r
	}
	fmt.Printf("Baseline comparison vs %s (threshold %.2fx):\n", path, threshold)
	fmt.Printf("  %-28s %12s %12s %8s\n", "row", "base us/op", "now us/op", "ratio")
	var regressed []string
	for _, r := range doc.Rows {
		b, ok := baseBy[key{r.Figure, r.Name}]
		if !ok {
			fmt.Printf("  %-28s %12s %12.3f %8s (new row, not gated)\n", r.Name, "-", r.PerOpUS, "-")
			continue
		}
		delete(baseBy, key{r.Figure, r.Name})
		ratio := 0.0
		if b.PerOpUS > 0 {
			ratio = r.PerOpUS / b.PerOpUS
		}
		verdict := "ok"
		if ratio > threshold {
			verdict = "REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s (%.3f -> %.3f us/op, %.2fx)", r.Name, b.PerOpUS, r.PerOpUS, ratio))
		}
		fmt.Printf("  %-28s %12.3f %12.3f %7.2fx %s\n", r.Name, b.PerOpUS, r.PerOpUS, ratio, verdict)
	}
	for k := range baseBy {
		fmt.Printf("  %-28s missing from this run (fig %d)\n", k.name, k.fig)
	}
	return regressed, nil
}

// parseFigs turns the -fig value into the set of figures to run:
// "0" means all, "-1" means none, otherwise a comma-separated list
// drawn from 5-12 (e.g. "5,6,7,8").
func parseFigs(s string) (map[int]bool, error) {
	want := make(map[int]bool)
	switch s {
	case "0":
		for f := 5; f <= 12; f++ {
			want[f] = true
		}
		return want, nil
	case "-1":
		return want, nil
	}
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || f < 5 || f > 12 {
			return nil, fmt.Errorf("-fig must be a comma list from 5-12, 0 (all) or -1 (none); got %q", s)
		}
		want[f] = true
	}
	return want, nil
}

func main() {
	n := flag.Int("n", 20000, "iterations per measurement")
	fig := flag.String("fig", "0", "figures to run: comma list from 5-10, 0 (all) or -1 (none)")
	jsonPath := flag.String("json", "", "also write rows as JSON to this file (- for stdout)")
	basePath := flag.String("baseline", "", "compare against this baseline JSON; exit 1 on regression")
	threshold := flag.Float64("threshold", 1.5, "per-op regression ratio tolerated by -baseline")
	traceOverhead := flag.Float64("traceoverhead", 0, "if > 0, gate traced-vs-untraced dispatch latency at this ratio")
	allocs := flag.Bool("allocs", false, "print host allocations per op for rows that collect them")
	memCeiling := flag.Int64("memceiling", 0, "if > 0, fail when the fig-10 ring's peak committed bytes exceed this")
	seeds := flag.Int("seeds", 100, "seed count for the fig-11 sleep sweep")
	ffGate := flag.Float64("fastforward", 0, "if > 0, fail unless the fig-11 real/fast-forward speedup is at least this")
	lockFull := flag.Bool("lockfull", false, "run the full fig-12 lock-policy matrix (nightly width)")
	flag.Parse()

	want, err := parseFigs(*fig)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtbench:", err)
		os.Exit(2)
	}
	printAllocs := func(rows []benchkit.Row) {
		if *allocs {
			if s := formatAllocs(rows); s != "" {
				fmt.Print(s)
				fmt.Println()
			}
		}
	}
	doc := jsonDoc{Iterations: *n}
	if want[5] {
		rows := benchkit.Figure5(*n)
		fmt.Print(benchkit.FormatTable("Figure 5: Thread creation time", rows))
		fmt.Println()
		printAllocs(rows)
		doc.Rows = append(doc.Rows, toJSONRows(5, rows)...)
	}
	if want[6] {
		rows := benchkit.Figure6(*n)
		fmt.Print(benchkit.FormatTable("Figure 6: Thread synchronization time", rows))
		fmt.Println()
		doc.Rows = append(doc.Rows, toJSONRows(6, rows)...)
	}
	if want[7] {
		rows := benchkit.Figure7(*n)
		fmt.Print(benchkit.FormatTable("Priority inversion (turnstile inheritance on/off; not in paper)", rows))
		fmt.Println()
		doc.Rows = append(doc.Rows, toJSONRows(7, rows)...)
	}
	if want[8] {
		rows := benchkit.Figure8(*n)
		fmt.Print(benchkit.FormatTable("Dispatch scaling (shared queue vs per-CPU shards; not in paper)", rows))
		fmt.Println()
		doc.Rows = append(doc.Rows, toJSONRows(8, rows)...)
	}
	var fig9 *benchkit.Fig9Stats
	if want[9] {
		rows, stats := benchkit.Figure9(*n)
		fig9 = &stats
		fmt.Print(benchkit.FormatTable("Cross-CPU wakeup latency, best-of-5 medians (not in paper)", rows))
		fmt.Printf("  dispatches %d, steals %d (%.2f per 100 dispatches; informational)\n\n",
			stats.Dispatches, stats.Steals,
			float64(stats.Steals*100)/float64(max(stats.Dispatches, 1)))
		doc.Rows = append(doc.Rows, toJSONRows(9, rows)...)
	}
	var scale *benchkit.ScaleStats
	if want[10] {
		rows, stats := benchkit.Figure10(*n)
		scale = &stats
		fmt.Print(benchkit.FormatTable(
			fmt.Sprintf("Thread scale tier, n=%d (not in paper)", stats.Threads), rows))
		fmt.Printf("  reserved/thread %d B, committed/thread %d B, ring peak committed %d B\n\n",
			stats.ReservedPerThread, stats.CommittedPerThread, stats.RingPeakCommitted)
		printAllocs(rows)
		doc.Rows = append(doc.Rows, toJSONRows(10, rows)...)
	}
	var fig11 []benchkit.Row
	if want[11] {
		fig11 = benchkit.Figure11(*seeds)
		fmt.Print(benchkit.FormatTable(
			fmt.Sprintf("Sleep-heavy sweep, %d seeds: real clock vs fast-forward (not in paper)", *seeds), fig11))
		fmt.Println()
		doc.Rows = append(doc.Rows, toJSONRows(11, fig11)...)
	}
	if want[12] {
		width := "default"
		if *lockFull {
			width = "full"
		}
		cells, rows := benchkit.Figure12(*n, *lockFull)
		fmt.Print(benchkit.FormatLockMatrix(
			fmt.Sprintf("Lock-policy shootout, %s matrix: lock-wait latency percentiles (not in paper)", width), cells))
		fmt.Println()
		doc.Rows = append(doc.Rows, toJSONRows(12, rows)...)
	}
	if *jsonPath != "" {
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtbench:", err)
			os.Exit(1)
		}
		b = append(b, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*jsonPath, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mtbench:", err)
			os.Exit(1)
		}
	}
	if *basePath != "" {
		fmt.Println()
		regressed, err := compareBaseline(doc, *basePath, *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtbench:", err)
			os.Exit(1)
		}
		if len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "mtbench: %d row(s) regressed beyond %.2fx:\n", len(regressed), *threshold)
			for _, r := range regressed {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
	}
	if fig9 != nil && fig9.Steals == 0 {
		fmt.Fprintln(os.Stderr, "mtbench: fig 9 recorded zero steals across all trials: spinner occupancy no longer forces queued wakeups")
		os.Exit(1)
	}
	if *memCeiling > 0 {
		if scale == nil {
			fmt.Fprintln(os.Stderr, "mtbench: -memceiling requires -fig to include 10")
			os.Exit(2)
		}
		fmt.Printf("Memory ceiling gate: ring peak committed %d B, ceiling %d B\n",
			scale.RingPeakCommitted, *memCeiling)
		if scale.RingPeakCommitted > *memCeiling {
			fmt.Fprintf(os.Stderr, "mtbench: peak committed %d B exceeds ceiling %d B\n",
				scale.RingPeakCommitted, *memCeiling)
			os.Exit(1)
		}
	}
	if *ffGate > 0 {
		if fig11 == nil {
			fmt.Fprintln(os.Stderr, "mtbench: -fastforward requires -fig to include 11")
			os.Exit(2)
		}
		wall, ff := fig11[0].PerOp(), fig11[1].PerOp()
		speedup := 0.0
		if ff > 0 {
			speedup = float64(wall) / float64(ff)
		}
		fmt.Printf("Fast-forward speedup gate: real %v/seed, fast-forward %v/seed, %.1fx (min %.1fx)\n",
			wall, ff, speedup, *ffGate)
		if speedup < *ffGate {
			fmt.Fprintf(os.Stderr, "mtbench: fast-forward speedup %.1fx is below the %.1fx gate\n",
				speedup, *ffGate)
			os.Exit(1)
		}
	}
	if *traceOverhead > 0 {
		if !gateTraceOverhead(*n, *traceOverhead) {
			os.Exit(1)
		}
	}
}

// gateTraceOverhead compares the dispatch hot path with the event
// rings off and on. Runs are interleaved (off, on, off, on, ...) so
// host noise hits both sides alike, and each side keeps its best of
// three — the run least disturbed by the host. Returns false if the
// traced best exceeds the untraced best by more than maxRatio.
func gateTraceOverhead(n int, maxRatio float64) bool {
	const queued, rounds = 64, 3
	best := func(cur, d time.Duration) time.Duration {
		if cur == 0 || d < cur {
			return d
		}
		return cur
	}
	// Warm up both paths once so first-run effects (allocator, code
	// paths) don't land on one side only.
	benchkit.DispatchLatency(queued, n/4+1)
	benchkit.DispatchLatencyTraced(queued, n/4+1)
	var off, on time.Duration
	for i := 0; i < rounds; i++ {
		off = best(off, benchkit.DispatchLatency(queued, n))
		on = best(on, benchkit.DispatchLatencyTraced(queued, n))
	}
	ratio := float64(on) / float64(off)
	perOp := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / float64(n) / 1e3 }
	fmt.Printf("\nTrace overhead gate (DispatchLatency, %d queued, n=%d, best of %d):\n", queued, n, rounds)
	fmt.Printf("  trace off %10.3f us/op\n", perOp(off))
	fmt.Printf("  trace on  %10.3f us/op\n", perOp(on))
	fmt.Printf("  ratio     %10.3fx (max %.2fx)\n", ratio, maxRatio)
	if ratio > maxRatio {
		fmt.Fprintf(os.Stderr, "mtbench: tracing overhead %.3fx exceeds %.2fx\n", ratio, maxRatio)
		return false
	}
	return true
}
