// Command mtbench regenerates the evaluation tables of "SunOS
// Multi-thread Architecture" (USENIX Winter '91): Figure 5 (thread
// creation time) and Figure 6 (thread synchronization time), printing
// measured numbers next to the paper's, with the paper's ratio
// columns.
//
// Usage:
//
//	mtbench [-n iterations] [-fig 5|6|0] [-json file]
//
// -json additionally writes the measured rows as a JSON document (see
// BENCH_baseline.json for the committed reference run), so successive
// runs can be diffed mechanically.
//
// The absolute numbers measure the simulation substrate on the host;
// the reproduced result is the shape — which rows involve the kernel
// and by roughly what factor they are slower. See EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sunosmt/internal/benchkit"
)

// jsonRow is one benchmark row in the -json output.
type jsonRow struct {
	Figure  int     `json:"figure"`
	Name    string  `json:"name"`
	PaperUS float64 `json:"paper_us"`
	PerOpUS float64 `json:"per_op_us"`
	TotalNS int64   `json:"total_ns"`
	Ops     int     `json:"ops"`
}

type jsonDoc struct {
	Iterations int       `json:"iterations"`
	Rows       []jsonRow `json:"rows"`
}

func toJSONRows(fig int, rows []benchkit.Row) []jsonRow {
	out := make([]jsonRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, jsonRow{
			Figure:  fig,
			Name:    r.Name,
			PaperUS: r.PaperUS,
			PerOpUS: float64(r.PerOp().Nanoseconds()) / 1e3,
			TotalNS: r.Measured.Nanoseconds(),
			Ops:     r.Ops,
		})
	}
	return out
}

func main() {
	n := flag.Int("n", 20000, "iterations per measurement")
	fig := flag.Int("fig", 0, "which figure to run (5 or 6; 0 = both)")
	jsonPath := flag.String("json", "", "also write rows as JSON to this file (- for stdout)")
	flag.Parse()

	switch *fig {
	case 0, 5, 6:
	default:
		fmt.Fprintln(os.Stderr, "mtbench: -fig must be 5, 6 or 0")
		os.Exit(2)
	}
	doc := jsonDoc{Iterations: *n}
	if *fig == 0 || *fig == 5 {
		rows := benchkit.Figure5(*n)
		fmt.Print(benchkit.FormatTable("Figure 5: Thread creation time", rows))
		fmt.Println()
		doc.Rows = append(doc.Rows, toJSONRows(5, rows)...)
	}
	if *fig == 0 || *fig == 6 {
		rows := benchkit.Figure6(*n)
		fmt.Print(benchkit.FormatTable("Figure 6: Thread synchronization time", rows))
		doc.Rows = append(doc.Rows, toJSONRows(6, rows)...)
	}
	if *jsonPath != "" {
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtbench:", err)
			os.Exit(1)
		}
		b = append(b, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*jsonPath, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mtbench:", err)
			os.Exit(1)
		}
	}
}
