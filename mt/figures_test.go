package mt

// Integration tests that pin the paper's architecture figures as
// executable facts (see DESIGN.md's per-experiment index).

import (
	"sync/atomic"
	"testing"
	"time"

	"sunosmt/internal/sim"
)

// TestFigure2DispatchCycle checks the trace of an LWP multiplexing
// several threads: the same LWP runs thread after thread, with parks
// in between — choose (a), execute (b), save state (c), choose
// another (d).
func TestFigure2DispatchCycle(t *testing.T) {
	sys := NewSystem(Options{NCPU: 1, EventRing: 512})
	p := spawn(t, sys, "fig2", ProcConfig{}, func(p *Proc, tt *Thread) {
		r := tt.Runtime()
		var ids []ThreadID
		for i := 0; i < 3; i++ {
			c, _ := r.Create(func(c *Thread, _ any) {
				c.Yield()
			}, nil, CreateOpts{Flags: ThreadWait})
			ids = append(ids, c.ID())
		}
		for _, id := range ids {
			tt.Wait(id)
		}
	})
	waitProc(t, p)
	evs := sys.Events().Kinds(EvThreadRun)
	// The library dispatch events must show one LWP running at least
	// three distinct threads.
	perLWP := map[int32]map[int32]bool{}
	for _, e := range evs {
		if perLWP[e.LWP] == nil {
			perLWP[e.LWP] = map[int32]bool{}
		}
		perLWP[e.LWP][e.TID] = true
	}
	max := 0
	for _, tids := range perLWP {
		if len(tids) > max {
			max = len(tids)
		}
	}
	if max < 3 {
		t.Fatalf("dispatch trace shows %d distinct threads on one LWP, want >= 3:\n%v", max, evs)
	}
}

// TestFigure3Configurations builds the paper's five process
// configurations and verifies each one's structural invariant.
func TestFigure3Configurations(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})

	// proc 1: one thread, one LWP.
	p1 := spawn(t, sys, "proc1", ProcConfig{}, func(p *Proc, tt *Thread) {
		if n := p.Process().NumLWPs(); n != 1 {
			t.Errorf("proc1 has %d LWPs, want 1", n)
		}
		if n := tt.Runtime().NumThreads(); n != 1 {
			t.Errorf("proc1 has %d threads, want 1", n)
		}
	})
	waitProc(t, p1)

	// proc 3: M threads multiplexed on N < M LWPs.
	p3 := spawn(t, sys, "proc3", ProcConfig{}, func(p *Proc, tt *Thread) {
		r := tt.Runtime()
		r.SetConcurrency(2)
		var done atomic.Int64
		var ids []ThreadID
		for i := 0; i < 6; i++ {
			c, _ := r.Create(func(c *Thread, _ any) {
				done.Add(1)
				c.Yield()
			}, nil, CreateOpts{Flags: ThreadWait})
			ids = append(ids, c.ID())
		}
		for _, id := range ids {
			tt.Wait(id)
		}
		if done.Load() != 6 {
			t.Errorf("proc3 ran %d threads", done.Load())
		}
		if lw := p.Process().NumLWPs(); lw > 3 {
			t.Errorf("proc3 used %d LWPs for 6 threads, want <= 3 (M:N)", lw)
		}
	})
	waitProc(t, p3)

	// proc 4: threads permanently bound to LWPs — LWP count grows
	// with each bound thread.
	p4 := spawn(t, sys, "proc4", ProcConfig{}, func(p *Proc, tt *Thread) {
		before := p.Process().NumLWPs()
		hold := make(chan struct{})
		var ids []ThreadID
		for i := 0; i < 2; i++ {
			c, _ := tt.Runtime().Create(func(c *Thread, _ any) {
				<-hold
			}, nil, CreateOpts{Flags: ThreadWait | ThreadBindLWP})
			ids = append(ids, c.ID())
		}
		// Each bound thread brought its own LWP.
		deadline := time.Now().Add(5 * time.Second)
		for p.Process().NumLWPs() < before+2 {
			if time.Now().After(deadline) {
				t.Errorf("LWPs = %d, want %d", p.Process().NumLWPs(), before+2)
				break
			}
			tt.Yield()
		}
		close(hold)
		for _, id := range ids {
			tt.Wait(id)
		}
	})
	waitProc(t, p4)

	// proc 5: mixed — unbound group plus a bound thread whose LWP
	// is CPU-bound and real-time; bound and unbound threads still
	// synchronize with each other.
	p5 := spawn(t, sys, "proc5", ProcConfig{}, func(p *Proc, tt *Thread) {
		var mu Mutex
		var cv Cond
		ready := false
		b, _ := tt.Runtime().Create(func(c *Thread, _ any) {
			if err := p.BindCPU(c, 1); err != nil {
				t.Error(err)
			}
			if err := p.Priocntl(c, sim.ClassRT, 10); err != nil {
				t.Error(err)
			}
			mu.Enter(c)
			ready = true
			mu.Exit(c)
			cv.Broadcast(c)
		}, nil, CreateOpts{Flags: ThreadWait | ThreadBindLWP})
		u, _ := tt.Runtime().Create(func(c *Thread, _ any) {
			mu.Enter(c)
			for !ready {
				cv.Wait(c, &mu)
			}
			mu.Exit(c)
		}, nil, CreateOpts{Flags: ThreadWait})
		tt.Wait(b.ID())
		tt.Wait(u.ID())
	})
	waitProc(t, p5)
}

// TestFigure1LockLifetimeBeyondProcess pins the paper's claim that a
// synchronization variable in a file has a lifetime beyond that of
// the creating process: the creator dies holding the lock, and a
// later process mapping the same file observes the death recorded in
// the lock's state words (the robust EOWNERDEAD protocol).
func TestFigure1LockLifetimeBeyondProcess(t *testing.T) {
	sys := NewSystem(Options{NCPU: 1})
	// First process creates the file, maps it, takes the lock, and
	// exits without releasing (simulating a crash mid-update).
	p1 := spawn(t, sys, "creator", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/tmp/rec.db", OCreate|ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		mu, err := p.SharedMutexAt(tt, va)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Enter(tt)
	})
	waitProc(t, p1)

	// A later process sees the recorded owner death.
	p2 := spawn(t, sys, "later", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/tmp/rec.db", ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		mu, err := p.SharedMutexAt(tt, va)
		if err != nil {
			t.Error(err)
			return
		}
		if err := mu.EnterErr(tt); err != ErrOwnerDead {
			t.Errorf("EnterErr = %v, want ErrOwnerDead: lock state did not persist in the file", err)
			return
		}
		mu.MakeConsistent(tt)
		mu.Exit(tt)
	})
	waitProc(t, p2)
}

// TestGetrusageAggregatesLWPs pins the resource-usage rule: the sum
// of the usage of all LWPs is available via getrusage().
func TestGetrusageAggregatesLWPs(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	p := spawn(t, sys, "usage", ProcConfig{}, func(p *Proc, tt *Thread) {
		deadline := time.Now().Add(5 * time.Millisecond)
		for time.Now().Before(deadline) {
			tt.Checkpoint()
		}
		r := p.Getrusage(tt)
		if r.UserTime <= 0 {
			t.Errorf("user time = %v, want > 0", r.UserTime)
		}
		if r.LiveLWPs < 1 {
			t.Errorf("live LWPs = %d", r.LiveLWPs)
		}
	})
	waitProc(t, p)
}
