// Package mt is the public API of the SunOS multi-thread architecture
// reproduction: a simulated multiprocessor machine running a SunOS
// 5-style kernel, UNIX processes whose threads are multiplexed on
// LWPs by the threads library, the synchronization facilities of the
// paper (mutexes, condition variables, semaphores, readers/writer
// locks — including process-shared variants placed in mapped files),
// per-thread signal masks, and the reinterpreted UNIX services
// (fork/fork1/exec/exit/wait, shared descriptor tables, /proc).
//
// # Quick start
//
//	sys := mt.NewSystem(mt.Options{NCPU: 2})
//	p, _ := sys.Spawn("hello", func(t *mt.Thread, _ any) {
//		child, _ := t.Runtime().Create(func(c *mt.Thread, _ any) {
//			// ... concurrent work ...
//		}, nil, mt.CreateOpts{Flags: mt.ThreadWait})
//		t.Wait(child.ID())
//	}, nil, mt.ProcConfig{})
//	p.WaitExit()
//
// Thread bodies receive their *mt.Thread handle explicitly (Go has no
// hidden "current thread" register); every potentially blocking call
// takes the calling thread. Everything else follows the paper's
// Figure 4 interface.
package mt

import (
	"io"
	"time"

	"sunosmt/internal/chaos"
	"sunosmt/internal/core"
	"sunosmt/internal/ktime"
	"sunosmt/internal/sim"
	"sunosmt/internal/trace"
	"sunosmt/internal/tsync"
	"sunosmt/internal/usync"
	"sunosmt/internal/vfs"
	"sunosmt/internal/vm"
)

// Re-exported thread types: the threads interface of the paper's
// Figure 4.
type (
	// Thread is a user-level thread.
	Thread = core.Thread
	// ThreadID identifies a thread within its process.
	ThreadID = core.ThreadID
	// Func is a thread body.
	Func = core.Func
	// CreateOpts carries thread_create's optional arguments.
	CreateOpts = core.CreateOpts
	// Runtime is the per-process threads library instance.
	Runtime = core.Runtime
	// TLSVar names a registered unshared (thread-local) variable.
	TLSVar = core.TLSVar
	// Jmpbuf is a setjmp/longjmp target.
	Jmpbuf = core.Jmpbuf
	// ThreadState is a thread's library-level state.
	ThreadState = core.ThreadState
	// TSDKey names an item of POSIX-style thread-specific data,
	// the dynamic mechanism the paper says can be built on
	// thread-local storage.
	TSDKey = core.TSDKey
)

// Thread states.
const (
	ThreadRunnable = core.ThreadRunnable
	ThreadRunning  = core.ThreadRunning
	ThreadSleeping = core.ThreadSleeping
	ThreadStopped  = core.ThreadStopped
	ThreadWaiting  = core.ThreadWaiting
	ThreadZombie   = core.ThreadZombie
)

// thread_create flags.
const (
	ThreadStop    = core.ThreadStop
	ThreadNewLWP  = core.ThreadNewLWP
	ThreadBindLWP = core.ThreadBindLWP
	ThreadWait    = core.ThreadWait
	ThreadDaemon  = core.ThreadDaemon
)

// Synchronization types (paper, "Thread synchronization").
type (
	// Mutex is a mutual exclusion lock.
	Mutex = tsync.Mutex
	// Cond is a condition variable.
	Cond = tsync.Cond
	// Sema is a counting semaphore.
	Sema = tsync.Sema
	// RWLock is a multiple-readers, single-writer lock.
	RWLock = tsync.RWLock
	// Variant selects a mutex implementation variant.
	Variant = tsync.Variant
	// LockPolicy selects a mutex lock/wake policy (adaptive, ticket,
	// MCS/CLH queue, parking-lot), per-lock via Mutex.InitPolicy or
	// per-process via ProcConfig.LockPolicy / Options.LockPolicy.
	LockPolicy = tsync.Policy
	// RWType selects reader or writer acquisition.
	RWType = tsync.RWType
)

// Synchronization constants.
const (
	VariantDefault    = tsync.VariantDefault
	VariantSpin       = tsync.VariantSpin
	VariantAdaptive   = tsync.VariantAdaptive
	VariantErrorCheck = tsync.VariantErrorCheck
	RWReader          = tsync.RWReader
	RWWriter          = tsync.RWWriter
)

// Mutex lock policies (see tsync.Policy).
const (
	PolicyDefault    = tsync.PolicyDefault
	PolicyAdaptive   = tsync.PolicyAdaptive
	PolicyTicket     = tsync.PolicyTicket
	PolicyQueue      = tsync.PolicyQueue
	PolicyParkingLot = tsync.PolicyParkingLot
)

// LockPolicies lists the concrete lock policies, for sweeps and the
// mtbench fig-12 shootout matrix.
func LockPolicies() []LockPolicy { return tsync.Policies() }

// Errors surfaced by the fallible acquisition entry points (EnterErr,
// TimedEnter, PErr, TimedP, ...): the robust-lock and timed-lock
// protocol of pthread_mutexattr_setrobust and friends.
var (
	// ErrTimedOut: a timed acquisition's deadline expired (ETIMEDOUT).
	ErrTimedOut = tsync.ErrTimedOut
	// ErrOwnerDead: the previous owner died holding the lock; the
	// caller holds it now and must repair the protected state, then
	// call MakeConsistent before releasing (EOWNERDEAD).
	ErrOwnerDead = tsync.ErrOwnerDead
	// ErrNotRecoverable: an owner-dead holder released without
	// MakeConsistent; the lock is permanently dead (ENOTRECOVERABLE).
	ErrNotRecoverable = tsync.ErrNotRecoverable
	// ErrDeadlock: the acquisition would close a wait-for cycle
	// (EDEADLK); returned by error-check mutexes at lock time.
	ErrDeadlock = tsync.ErrDeadlock
)

// Resource-exhaustion errors. Every layer that can run out — the
// kernel's LWP rlimit, the library's thread cap, transient spawn
// faults — wraps the one ErrAgain sentinel, so callers write a single
// errors.Is(err, mt.ErrAgain) regardless of which resource was
// exhausted, exactly as EAGAIN from thr_create covers both thread and
// LWP exhaustion in SunOS.
var (
	// ErrAgain: a thread or LWP limit was reached, or a transient
	// allocation failure occurred; retry later (EAGAIN).
	ErrAgain = core.ErrAgain
	// ErrNoMem: the address-space byte limit would be exceeded
	// (ENOMEM) — from Mmap, Sbrk, or stack carving.
	ErrNoMem = vm.ErrNoMem
	// ErrRedZone: a load or store touched a stack's red zone (the
	// guard page below the stack); MemRead/MemWrite also raise
	// SIGSEGV on the faulting thread.
	ErrRedZone = vm.ErrRedZone
)

// Deadlock detection re-exports.
type (
	// Deadlock is one detected wait-for cycle.
	Deadlock = core.Deadlock
	// DeadlockNode is one thread in a cycle.
	DeadlockNode = core.DeadlockNode
	// LockWaiter is one resolved wait-for edge.
	LockWaiter = core.LockWaiter
)

// DetectDeadlocks walks the wait-for graph of the given processes —
// thread → sync object → owning thread, following cross-process
// ownership recorded in shared variables — in one pass and returns
// every cycle. The same information is readable at /proc/<pid>/lstatus
// and via mtstat -locks.
func DetectDeadlocks(procs ...*Proc) []Deadlock {
	rts := make([]*core.Runtime, 0, len(procs))
	for _, p := range procs {
		rts = append(rts, p.RT)
	}
	return core.DetectDeadlocks(rts)
}

// PID identifies a simulated process.
type PID = sim.PID

// Signal machinery re-exports.
type (
	// Signal is a SVR4-style signal number.
	Signal = sim.Signal
	// Sigset is a set of signals.
	Sigset = sim.Sigset
	// SigHow selects mask combination for SigSetMask.
	SigHow = sim.SigHow
	// Disposition is a process-wide handler setting.
	Disposition = sim.Disposition
)

// Signal constants (subset; see internal/sim for all).
const (
	SIGHUP     = sim.SIGHUP
	SIGINT     = sim.SIGINT
	SIGILL     = sim.SIGILL
	SIGABRT    = sim.SIGABRT
	SIGFPE     = sim.SIGFPE
	SIGKILL    = sim.SIGKILL
	SIGBUS     = sim.SIGBUS
	SIGSEGV    = sim.SIGSEGV
	SIGPIPE    = sim.SIGPIPE
	SIGALRM    = sim.SIGALRM
	SIGTERM    = sim.SIGTERM
	SIGUSR1    = sim.SIGUSR1
	SIGUSR2    = sim.SIGUSR2
	SIGCHLD    = sim.SIGCHLD
	SIGIO      = sim.SIGIO
	SIGSTOP    = sim.SIGSTOP
	SIGCONT    = sim.SIGCONT
	SIGVTALRM  = sim.SIGVTALRM
	SIGPROF    = sim.SIGPROF
	SIGXCPU    = sim.SIGXCPU
	SIGWAITING = sim.SIGWAITING
	SigBlock   = sim.SigBlock
	SigUnblock = sim.SigUnblock
	SigSetMask = sim.SigSetMask
	SigDfl     = sim.SigDfl
	SigIgn     = sim.SigIgn
	SigCatch   = sim.SigCatch
)

// Options configures a System.
type Options struct {
	// NCPU is the number of simulated processors (default 1).
	NCPU int
	// Clock drives time; nil selects the real clock.
	Clock ktime.Clock
	// TimeSlice enables kernel time slicing at preemption points.
	TimeSlice time.Duration
	// TraceCapacity enables a system-wide trace ring of the given
	// size.
	TraceCapacity int
	// EventRing enables the per-CPU binary event rings with the
	// given per-CPU capacity (rounded up to a power of two, minimum
	// 64). Zero disables event tracing; the recording sites then
	// cost nothing.
	EventRing int
	// SignalOnAnyBlock turns on the paper's proposed "signals on
	// faster events" variant of SIGWAITING (see internal/sim).
	SignalOnAnyBlock bool
	// BalancePeriod sets how often the kernel dispatcher re-levels
	// and evens out the per-CPU run queues (default 10ms, negative
	// disables the balancer).
	BalancePeriod time.Duration
	// LWPCreateCost and KernelSwitchCost override the simulated
	// kernel path lengths (see internal/sim.Config). Zero selects
	// the calibrated defaults; negative disables the simulated
	// cost, which test sweeps use for speed.
	LWPCreateCost    time.Duration
	KernelSwitchCost time.Duration
	// Chaos, if non-nil, deterministically perturbs the system from
	// its seed: forced preemptions at preemption points, dispatch
	// and run-queue pick reordering, kernel wakeup reordering,
	// spurious wakeups at library park sites, injected EINTR on
	// interruptible kernel sleeps, early SIGWAITING, and timer
	// jitter. Same seed, same machine, same workload structure —
	// same decision sequence; Chaos.Journal() records every
	// perturbation for replay. Build one with NewChaos or
	// chaos.New.
	Chaos *ChaosSource
	// FastForward selects the virtual fast-forward clock (ignored
	// when Clock is set): time tracks the wall clock while any LWP
	// can run, but the moment every LWP is blocked with a timer
	// pending, the clock jumps straight to the next deadline and
	// fires it. Sleep-heavy workloads finish in the time their
	// computation takes rather than the time they sleep. Chaos timer
	// jitter composes: jitter perturbs deadlines as they are armed,
	// and the jump honors the jittered order.
	FastForward bool
	// LockPolicy is the machine-wide default mutex lock/wake policy:
	// processes whose ProcConfig leaves LockPolicy at PolicyDefault
	// inherit it. PolicyDefault here selects adaptive, the paper's
	// discipline. Ablatable per-lock with Mutex.InitPolicy.
	LockPolicy LockPolicy
}

// Chaos re-exports: seeded schedule exploration and fault injection.
type (
	// ChaosSource is a seeded deterministic perturbation source.
	ChaosSource = chaos.Source
	// ChaosConfig tunes per-site injection rates (per mille).
	ChaosConfig = chaos.Config
)

// NewChaos returns a chaos source with the default injection rates
// for the given seed.
func NewChaos(seed uint64) *ChaosSource {
	return chaos.New(chaos.DefaultConfig(seed))
}

// NewFaultChaos returns a chaos source that also injects resource
// exhaustion: transient LWP-spawn failures, allocation failures in the
// address space, and stack carve failures. Only safe for workloads
// that handle ErrAgain/ErrNoMem from Create and the memory calls; the
// exhaustion sweep uses it to prove failed creates unwind completely.
func NewFaultChaos(seed uint64) *ChaosSource {
	return chaos.New(chaos.FaultConfig(seed))
}

// System is one simulated machine: CPUs, kernel, file system, and the
// registry for process-shared synchronization variables.
type System struct {
	Kern  *sim.Kernel
	FS    *vfs.FS
	Reg   *usync.Registry
	tr    *trace.Buffer
	rings *trace.Rings

	lockPolicy LockPolicy // machine default; see Options.LockPolicy
}

// NewSystem boots a machine.
func NewSystem(o Options) *System {
	var tr *trace.Buffer
	clk := o.Clock
	if clk == nil {
		if o.FastForward {
			clk = ktime.NewFastForward()
		} else {
			clk = ktime.NewReal()
		}
	}
	if o.Chaos != nil && o.Chaos.Enabled() {
		clk = ktime.NewJittered(clk, o.Chaos.Jitter)
	}
	cfg := sim.Config{
		NCPU:             o.NCPU,
		Clock:            clk,
		TimeSlice:        o.TimeSlice,
		SignalOnAnyBlock: o.SignalOnAnyBlock,
		LWPCreateCost:    o.LWPCreateCost,
		KernelSwitchCost: o.KernelSwitchCost,
		BalancePeriod:    o.BalancePeriod,
		Chaos:            o.Chaos,
	}
	if o.TraceCapacity > 0 {
		tr = trace.New(o.TraceCapacity, clk.Now)
		cfg.Trace = tr
	}
	var rings *trace.Rings
	if o.EventRing > 0 {
		ncpu := o.NCPU
		if ncpu <= 0 {
			ncpu = 1
		}
		rings = trace.NewRings(ncpu, o.EventRing, clk.Now)
		cfg.Rings = rings
	}
	k := sim.NewKernel(cfg)
	if ff := k.FastForward(); ff != nil && rings != nil {
		// Stamp every jump into the rings so a trace of a
		// fast-forwarded run shows where virtual time leapt.
		ff.SetOnJump(func(from, to time.Duration) {
			rings.Record(-1, trace.EvFastForward, 0, 0, 0, uint64(to-from))
		})
	}
	s := &System{
		Kern:       k,
		FS:         vfs.NewFS(k),
		Reg:        usync.NewRegistry(k),
		tr:         tr,
		rings:      rings,
		lockPolicy: o.LockPolicy,
	}
	return s
}

// Trace returns the system trace buffer (nil unless TraceCapacity was
// set).
func (s *System) Trace() *trace.Buffer { return s.tr }

// Events returns the per-CPU binary event rings (nil unless EventRing
// was set).
func (s *System) Events() *trace.Rings { return s.rings }

// Observability re-exports: the microstate accounting and binary
// event tracing layer.
type (
	// EventRings is the set of per-CPU binary event rings.
	EventRings = trace.Rings
	// EventRecord is one binary trace event.
	EventRecord = trace.Record
	// EventKind identifies one class of scheduler event.
	EventKind = trace.EventKind
	// Microstates is a per-thread microstate accounting snapshot.
	Microstates = core.MicrostateTimes
	// Microstate is one per-thread accounting state.
	Microstate = core.Microstate
	// LWPMicrostates is a per-LWP microstate accounting snapshot.
	LWPMicrostates = sim.LWPMicrostates
)

// Event kinds recorded in the rings.
const (
	EvDispatch    = trace.EvDispatch
	EvPreempt     = trace.EvPreempt
	EvWakeup      = trace.EvWakeup
	EvMigrate     = trace.EvMigrate
	EvSigwaiting  = trace.EvSigwaiting
	EvLockBlock   = trace.EvLockBlock
	EvThreadRun   = trace.EvThreadRun
	EvThreadPark  = trace.EvThreadPark
	EvSteal       = trace.EvSteal
	EvBalance     = trace.EvBalance
	EvFastForward = trace.EvFastForward
)

// Time-travel re-exports: schedule journals, replay, and trace export.
type (
	// ScheduleJournal is one run's serialized scheduling history:
	// every chaos decision plus the resulting ring events.
	ScheduleJournal = trace.Journal
	// ScheduleDecision is one recorded chaos decision.
	ScheduleDecision = trace.Decision
	// ReplayDivergence pinpoints where a replayed run left the
	// recorded schedule.
	ReplayDivergence = chaos.Divergence
	// FastForwardClock is the virtual fast-forward clock (see
	// Options.FastForward).
	FastForwardClock = ktime.FastForward
)

// ReadJournal parses a serialized schedule journal.
func ReadJournal(r io.Reader) (*ScheduleJournal, error) { return trace.ReadJournal(r) }

// ReadJournalFile parses a schedule journal file.
func ReadJournalFile(path string) (*ScheduleJournal, error) { return trace.ReadJournalFile(path) }

// NewReplayChaos returns a chaos source that re-issues the journal's
// recorded decision stream; pass it as Options.Chaos to drive a fresh
// run back down the recorded schedule. Source.Divergence reports the
// first point where the live run stopped matching the recording.
func NewReplayChaos(j *ScheduleJournal) (*ChaosSource, error) { return chaos.NewReplay(j) }

// WritePerfetto renders a ring snapshot as Chrome trace JSON for
// ui.perfetto.dev or chrome://tracing.
func WritePerfetto(w io.Writer, recs []EventRecord) error { return trace.WritePerfetto(w, recs) }

// FirstEventDivergence compares two event sequences (ignoring
// timestamps and sequence numbers) and returns the index of the first
// mismatch, or -1 when the schedules are identical.
func FirstEventDivergence(a, b []EventRecord) int { return trace.FirstEventDivergence(a, b) }

// Schedule snapshots the system's schedule journal: the chaos
// decision stream recorded so far (enable with
// Options.Chaos.StartRecording before running the workload) plus the
// retained ring events. Write it out with ScheduleJournal.WriteFile
// and replay it with NewReplayChaos.
func (s *System) Schedule() *ScheduleJournal {
	j := s.Kern.Chaos().Schedule()
	if s.rings != nil {
		recs, _ := s.rings.Snapshot()
		j.Events = recs
	}
	return j
}

// FastForward returns the system's fast-forward clock, or nil when
// Options.FastForward was not set.
func (s *System) FastForward() *ktime.FastForward { return s.Kern.FastForward() }

// Dispatcher re-exports: scheduling classes, processor sets, and the
// per-CPU dispatch-queue statistics.
type (
	// Class is a kernel scheduling class (priocntl).
	Class = sim.Class
	// PsetID names a processor set (psrset).
	PsetID = sim.PsetID
	// PsetInfo is a snapshot of one processor set.
	PsetInfo = sim.PsetInfo
	// CPUStat is one CPU's dispatch-queue snapshot and counters.
	CPUStat = sim.CPUStat
	// ShardStat is one library ready-queue shard's snapshot.
	ShardStat = core.ShardStat
)

// Scheduling classes and the default processor set.
const (
	ClassTS     = sim.ClassTS
	ClassSYS    = sim.ClassSYS
	ClassRT     = sim.ClassRT
	ClassGang   = sim.ClassGang
	PsetDefault = sim.PsetDefault
)

// PsetCreate creates an empty processor set (pset_create).
func (s *System) PsetCreate() PsetID { return s.Kern.PsetCreate() }

// PsetDestroy destroys a user set; its CPUs return to the default set
// and its bound LWPs are unbound (pset_destroy).
func (s *System) PsetDestroy(id PsetID) error { return s.Kern.PsetDestroy(id) }

// PsetAssign moves a CPU into the set; PsetDefault moves it back
// (pset_assign).
func (s *System) PsetAssign(id PsetID, cpu int) error { return s.Kern.PsetAssign(id, cpu) }

// Psets snapshots all processor sets.
func (s *System) Psets() []PsetInfo { return s.Kern.Psets() }

// PsetBind confines a bound thread's LWP to the processor set;
// PsetDefault removes the binding (pset_bind). The thread must be
// bound to an LWP (ThreadBindLWP or ThreadNewLWP): an unbound thread
// migrates across the whole pool, so the binding would not follow it.
func (s *System) PsetBind(t *Thread, id PsetID) error {
	l := t.BoundLWP()
	if l == nil {
		return core.ErrNotBound
	}
	return s.Kern.PsetBind(l, id)
}

// BindCPU hard-binds a bound thread's LWP to one CPU (processor_bind).
func (s *System) BindCPU(t *Thread, cpu int) error {
	l := t.BoundLWP()
	if l == nil {
		return core.ErrNotBound
	}
	return s.Kern.BindCPU(l, cpu)
}

// Priocntl moves a bound thread's LWP to a scheduling class at a
// user priority (priocntl): ClassTS ages with CPU usage, ClassRT and
// ClassSYS are fixed. Like PsetBind and BindCPU it requires a thread
// bound to an LWP; unbound threads take their priority from the
// library scheduler (SetPriority).
func (s *System) Priocntl(t *Thread, class Class, prio int) error {
	l := t.BoundLWP()
	if l == nil {
		return core.ErrNotBound
	}
	return s.Kern.Priocntl(l, class, prio)
}

// SchedStats snapshots the kernel dispatcher: one row per CPU with its
// processor set, queue depth, and dispatch/steal/migration counters.
func (s *System) SchedStats() []CPUStat { return s.Kern.SchedStats() }

// DispatchBench measures the library ready-queue layer in isolation:
// workers goroutines pass tokens through a dispatcher with nshards
// shards, iters pop+push pairs per worker. nshards == 1 is the
// pre-sharding shared-queue configuration; the nshards == NCPU vs 1
// ratio is the dispatch throughput gain of sharding (mtbench -fig 8).
func DispatchBench(nshards, workers, iters int) time.Duration {
	return core.DispatchBench(nshards, workers, iters)
}

// Thread microstates.
const (
	MSUser    = core.MSUser
	MSRunq    = core.MSRunq
	MSSleep   = core.MSSleep
	MSLock    = core.MSLock
	MSStopped = core.MSStopped
)

// Clock returns the system clock.
func (s *System) Clock() ktime.Clock { return s.Kern.Clock() }

// ProcConfig configures a spawned process.
type ProcConfig struct {
	// MaxAutoLWPs caps SIGWAITING-driven LWP pool growth.
	MaxAutoLWPs int
	// DisableSigwaiting disables automatic pool growth (ablation).
	DisableSigwaiting bool
	// DefaultStackSize overrides the default thread stack size.
	DefaultStackSize int
	// LWPAgeTime, when positive, ages idle pool LWPs out of the
	// unbound pool after that much idle time — the paper's answer to
	// pools sized for a burst that has passed. Zero disables aging.
	LWPAgeTime time.Duration
	// NoPriorityInheritance disables turnstile priority inheritance
	// (ablation: demonstrates unbounded priority inversion).
	NoPriorityInheritance bool
	// MaxThreads caps live threads in the process; Create fails with
	// ErrAgain at the cap, the admission-control watermark of a
	// server that would rather shed a request than thrash. Zero is
	// unlimited.
	MaxThreads int
	// LWPLimit is the process's LWP rlimit: kernel LWP creation
	// (bound threads, pool growth, SIGWAITING) fails with ErrAgain
	// once this many LWPs are live. Zero is unlimited.
	LWPLimit int
	// ASLimitBytes caps the mapped (reserved) bytes of the address
	// space; Mmap, Sbrk and stack carving fail with ErrNoMem past it.
	// Zero is unlimited.
	ASLimitBytes int64
	// CommitLimitBytes caps the committed bytes of the address space:
	// first-touch page commits (including lazily-committed thread
	// stacks) fail with ErrNoMem past it. The RSS-style rlimit, as
	// opposed to ASLimitBytes's reservation rlimit. Zero is unlimited.
	CommitLimitBytes int64
	// ThreadCacheSize caps the Thread-struct freelist (zero: library
	// default; negative: recycling disabled).
	ThreadCacheSize int
	// WatchdogDeadline sets the deadman watchdog's deadline for
	// flagging LWPs stuck on-CPU and threads blocked too long
	// (/proc/<pid>/health, mtstat -health). Zero selects 1s.
	WatchdogDeadline time.Duration
	// LockPolicy is the process-default mutex lock/wake policy
	// (adaptive, ticket, queue, parkinglot); PolicyDefault inherits
	// the system's Options.LockPolicy, which itself defaults to
	// adaptive. Individual locks override with Mutex.InitPolicy. The
	// per-process ablation knob of the lock-policy shootout, beside
	// NoPriorityInheritance.
	LockPolicy LockPolicy
	// LockWaitSampleCap, when positive, retains that many most-recent
	// per-episode lock-wait intervals (microstate MSLock) for
	// percentile extraction via Runtime.LockWaitSamples — the fig-12
	// p50/p99/p999 source. Zero disables sampling.
	LockWaitSampleCap int
}

// Proc is a running UNIX process: kernel process + address space +
// descriptor table + threads runtime.
type Proc struct {
	Sys *System
	RT  *core.Runtime
	PF  *vfs.ProcFiles
	AS  *vm.AddressSpace

	proc *sim.Process
}

// Spawn creates a process whose main thread runs main(arg).
func (s *System) Spawn(name string, main Func, arg any, cfg ProcConfig) (*Proc, error) {
	kp := s.Kern.NewProcess(name, nil)
	return s.buildProc(kp, main, arg, cfg, nil)
}

func (s *System) buildProc(kp *sim.Process, main Func, arg any, cfg ProcConfig, initial *sim.LWP) (*Proc, error) {
	p := &Proc{Sys: s, proc: kp}
	if kp.Files == nil {
		p.PF = vfs.NewProcFiles(s.FS, kp)
	} else {
		p.PF = vfs.Files(kp)
	}
	if kp.Mem == nil {
		p.AS = vm.New(kp.AddFault)
		kp.Mem = p.AS
	} else {
		p.AS = kp.Mem.(*vm.AddressSpace)
		p.AS.SetFaultFn(kp.AddFault)
	}
	if cfg.LWPLimit > 0 {
		kp.SetLWPLimit(cfg.LWPLimit)
	}
	if cfg.ASLimitBytes > 0 {
		p.AS.SetLimit(cfg.ASLimitBytes)
	}
	if cfg.CommitLimitBytes > 0 {
		p.AS.SetCommitLimit(cfg.CommitLimitBytes)
	}
	p.AS.SetChaos(s.Kern.Chaos())
	pol := cfg.LockPolicy
	if pol == PolicyDefault {
		pol = s.lockPolicy
	}
	p.RT = core.NewRuntime(s.Kern, kp, core.Config{
		Trace:                 s.tr,
		MaxAutoLWPs:           cfg.MaxAutoLWPs,
		DisableSigwaiting:     cfg.DisableSigwaiting,
		DefaultStackSize:      cfg.DefaultStackSize,
		LWPAgeTime:            cfg.LWPAgeTime,
		NoPriorityInheritance: cfg.NoPriorityInheritance,
		MaxThreads:            cfg.MaxThreads,
		ThreadCacheSize:       cfg.ThreadCacheSize,
		WatchdogDeadline:      cfg.WatchdogDeadline,
		LockPolicy:            int(pol),
		LockWaitSampleCap:     cfg.LockWaitSampleCap,
		InitialLWP:            initial,
		StackMem:              p.AS,
	})
	// errno is the canonical unshared variable: register it before
	// the first thread starts, as the run-time linker would.
	if _, err := p.RT.RegisterUnshared(8); err == nil {
		// reserved; Thread.Errno uses a dedicated slot, this
		// models the TLS the C library would claim.
		_ = err
	}
	if _, err := p.RT.Start(main, arg); err != nil {
		return nil, err
	}
	return p, nil
}

// Deadman-watchdog re-exports (see internal/core/health.go).
type (
	// HealthReport is one watchdog pass over a process.
	HealthReport = core.HealthReport
	// LWPHealth is one LWP flagged stuck on-CPU.
	LWPHealth = core.LWPHealth
	// ThreadHealth is one thread flagged blocked past the deadline.
	ThreadHealth = core.ThreadHealth
)

// Health runs one deadman-watchdog pass over the process: LWPs that
// have held a CPU continuously past the deadline and threads blocked
// or sleeping past it. deadline <= 0 selects ProcConfig's
// WatchdogDeadline (default 1s). The same report is readable at
// /proc/<pid>/health and printed by mtstat -health.
func (p *Proc) Health(deadline time.Duration) HealthReport {
	return p.RT.Health(deadline)
}

// Process exposes the kernel process.
func (p *Proc) Process() *sim.Process { return p.proc }

// PID returns the process id.
func (p *Proc) PID() sim.PID { return p.proc.PID() }

// WaitExit blocks until the process has fully exited and returns its
// status and killing signal (if any). This is the host-side Wait; for
// a parent process waiting for a child from within the simulation use
// Proc.WaitChild.
func (p *Proc) WaitExit() (int, Signal) {
	<-p.RT.Exited()
	return p.proc.ExitStatus()
}

// Kill posts a signal to the process, like kill(2) from outside.
func (p *Proc) Kill(sig Signal) error {
	return p.Sys.Kern.PostSignal(p.proc, sig)
}

// SharedVar returns the process-shared synchronization variable
// handle for the mapped object identity at the given virtual address
// in this process's address space. Use it with the InitShared
// initializers:
//
//	var mu mt.Mutex
//	mu.InitShared(p.SharedVar(t, va))
func (p *Proc) SharedVar(t *Thread, va int64) (*usync.Var, error) {
	obj, off, err := p.AS.Resolve(va)
	if err != nil {
		return nil, err
	}
	return p.Sys.Reg.Var(obj, off), nil
}
