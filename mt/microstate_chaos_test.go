package mt

// Chaos sweep for the microstate accounting invariant: every
// transition charges the elapsed interval to exactly one state, so a
// thread's per-state times must sum to its lifetime *exactly* — no
// sampling error, no lost or double-charged intervals — no matter how
// the schedule is perturbed.

import (
	"sync"
	"sync/atomic"
	"testing"

	"sunosmt/internal/sim"
)

// TestChaosMicrostateTotals runs a mixed workload (lock contenders,
// yielders, a stop/continue victim, a bound thread) under the chaos
// sweep and checks, both on live snapshots and after death, that each
// thread's and each LWP's microstate times telescope: Sum() == Total.
func TestChaosMicrostateTotals(t *testing.T) {
	sweep(t, func(t *testing.T, seed uint64) {
		sys := chaosSystem(t, chaosOpts(2, seed))

		var reg sync.Mutex
		var threads []*Thread
		var lwps []*sim.LWP
		track := func(c *Thread) {
			reg.Lock()
			threads = append(threads, c)
			reg.Unlock()
		}

		p := spawn(t, sys, "microstate", ProcConfig{}, func(p *Proc, tt *Thread) {
			track(tt)
			r := tt.Runtime()
			var lk Mutex
			shared := 0
			var ids []ThreadID

			// Lock contenders: sleep on a contended mutex (MSLock).
			for i := 0; i < 3; i++ {
				c, err := r.Create(func(c *Thread, _ any) {
					for j := 0; j < 10; j++ {
						lk.Enter(c)
						shared++
						c.Yield()
						lk.Exit(c)
					}
				}, nil, CreateOpts{Flags: ThreadWait})
				if err != nil {
					t.Error(err)
					return
				}
				track(c)
				ids = append(ids, c.ID())
			}

			// Yielders: bounce between MSUser and MSRunq.
			for i := 0; i < 2; i++ {
				c, err := r.Create(func(c *Thread, _ any) {
					for j := 0; j < 20; j++ {
						c.Yield()
					}
				}, nil, CreateOpts{Flags: ThreadWait})
				if err != nil {
					t.Error(err)
					return
				}
				track(c)
				ids = append(ids, c.ID())
			}

			// Bound thread: kernel-scheduled, accrues MSUser across
			// its kernel blocks while its LWP shows the breakdown.
			b, err := r.Create(func(c *Thread, _ any) {
				for j := 0; j < 5; j++ {
					c.Yield()
				}
			}, nil, CreateOpts{Flags: ThreadWait | ThreadBindLWP})
			if err != nil {
				t.Error(err)
				return
			}
			track(b)
			ids = append(ids, b.ID())
			if l := b.LWP(); l != nil {
				reg.Lock()
				lwps = append(lwps, l)
				reg.Unlock()
			}

			// Stop/continue victim: accrues MSStopped.
			var release atomic.Bool
			v, err := r.Create(func(c *Thread, _ any) {
				for !release.Load() {
					c.Yield()
				}
			}, nil, CreateOpts{Flags: ThreadWait})
			if err != nil {
				t.Error(err)
				return
			}
			track(v)
			if err := tt.Stop(v); err != nil {
				t.Error(err)
			}
			// Live snapshot while stopped: the invariant must hold on
			// the open interval too.
			if ms := v.Microstates(); ms.Sum() != ms.Total {
				t.Errorf("live stopped thread: sum %v != total %v (%+v)", ms.Sum(), ms.Total, ms)
			}
			if err := r.Continue(v); err != nil {
				t.Error(err)
			}
			release.Store(true)
			ids = append(ids, v.ID())

			for _, id := range ids {
				if _, err := tt.Wait(id); err != nil {
					t.Errorf("wait %d: %v", id, err)
				}
			}
			if shared != 30 {
				t.Errorf("shared = %d, want 30", shared)
			}
		})
		waitProc(t, p)

		reg.Lock()
		defer reg.Unlock()
		for _, th := range threads {
			ms := th.Microstates()
			if !ms.Dead {
				t.Errorf("thread %d: not marked dead after process exit (%+v)", th.ID(), ms)
			}
			if ms.Sum() != ms.Total {
				t.Errorf("thread %d: microstates sum %v != lifetime %v (%+v)",
					th.ID(), ms.Sum(), ms.Total, ms)
			}
		}
		for _, l := range lwps {
			u := l.Microstates()
			if !u.Dead {
				t.Errorf("lwp %d: not marked dead after process exit (%+v)", l.ID(), u)
			}
			if u.Sum() != u.Total {
				t.Errorf("lwp %d: microstates sum %v != lifetime %v (%+v)",
					l.ID(), u.Sum(), u.Total, u)
			}
		}
	})
}
