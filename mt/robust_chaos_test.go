package mt

// Chaos sweeps over the fault-containment machinery: a process is
// SIGKILLed mid-critical-section under many seeded perturbation
// schedules (which also rotate the death sweep's visit order and the
// deadlock detector's start node). Invariants per seed:
//
//   - no survivor hangs (waitProc enforces a deadline);
//   - across all survivors, ErrOwnerDead is observed exactly once per
//     death (the robust mark is one-shot), and after MakeConsistent
//     the primitive serves normally;
//   - mutual exclusion holds throughout, including across recovery;
//   - a constructed cross-process ABBA deadlock is flagged by a
//     single detector pass, and the lock-ordered negative control is
//     never flagged.

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosRobustMutexKill: one victim dies holding a shared mutex
// while survivors contend for it.
func TestChaosRobustMutexKill(t *testing.T) {
	sweep(t, func(t *testing.T, seed uint64) {
		const survivors, iters = 3, 8
		sys := chaosSystem(t, chaosOpts(2, seed))
		var holding atomic.Bool
		var ownerDead, holders, violations atomic.Int32
		victim := spawn(t, sys, "victim", ProcConfig{}, func(p *Proc, tt *Thread) {
			fd, _ := p.Open(tt, "/shm", OCreate|ORdWr)
			va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
			mu, err := p.SharedMutexAt(tt, va)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Enter(tt)
			holding.Store(true)
			for {
				tt.Checkpoint() // killed inside the critical section
			}
		})
		if !pollUntil(20*time.Second, holding.Load) {
			t.Fatal("victim never entered the critical section")
		}
		procs := make([]*Proc, survivors)
		for i := range procs {
			procs[i] = spawn(t, sys, "survivor", ProcConfig{}, func(p *Proc, tt *Thread) {
				fd, _ := p.Open(tt, "/shm", ORdWr)
				va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
				mu, err := p.SharedMutexAt(tt, va)
				if err != nil {
					t.Error(err)
					return
				}
				for j := 0; j < iters; j++ {
					switch err := mu.EnterErr(tt); err {
					case nil:
					case ErrOwnerDead:
						ownerDead.Add(1)
						if !mu.MakeConsistent(tt) {
							t.Error("MakeConsistent refused")
						}
					default:
						t.Errorf("EnterErr = %v", err)
						return
					}
					if holders.Add(1) != 1 {
						violations.Add(1)
					}
					tt.Checkpoint()
					holders.Add(-1)
					mu.Exit(tt)
				}
			})
		}
		if err := victim.Kill(SIGKILL); err != nil {
			t.Fatal(err)
		}
		if _, sig := waitProc(t, victim); sig != SIGKILL {
			t.Fatalf("victim exit signal = %v, want SIGKILL", sig)
		}
		for _, p := range procs {
			waitProc(t, p) // deadline inside: no survivor may hang
		}
		if n := ownerDead.Load(); n != 1 {
			t.Fatalf("ErrOwnerDead observed %d times, want exactly 1", n)
		}
		if v := violations.Load(); v != 0 {
			t.Fatalf("mutual exclusion violated %d times across recovery", v)
		}
	})
}

// TestChaosRobustSemaKill: one victim dies between P and V on a
// shared binary semaphore; the sweep's compensating V keeps the
// survivors live and the mark is consumed exactly once.
func TestChaosRobustSemaKill(t *testing.T) {
	sweep(t, func(t *testing.T, seed uint64) {
		const survivors, iters = 3, 8
		sys := chaosSystem(t, chaosOpts(2, seed))
		var holding atomic.Bool
		var ownerDead, holders, violations atomic.Int32
		victim := spawn(t, sys, "victim", ProcConfig{}, func(p *Proc, tt *Thread) {
			fd, _ := p.Open(tt, "/shm", OCreate|ORdWr)
			va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
			s, err := p.SharedSemaAt(tt, va, 1)
			if err != nil {
				t.Error(err)
				return
			}
			s.P(tt)
			holding.Store(true)
			for {
				tt.Checkpoint() // killed holding the unit
			}
		})
		if !pollUntil(20*time.Second, holding.Load) {
			t.Fatal("victim never took the unit")
		}
		procs := make([]*Proc, survivors)
		for i := range procs {
			procs[i] = spawn(t, sys, "survivor", ProcConfig{}, func(p *Proc, tt *Thread) {
				fd, _ := p.Open(tt, "/shm", ORdWr)
				va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
				s, err := p.SharedSemaAt(tt, va, 0)
				if err != nil {
					t.Error(err)
					return
				}
				for j := 0; j < iters; j++ {
					switch err := s.PErr(tt); err {
					case nil:
					case ErrOwnerDead:
						ownerDead.Add(1)
					default:
						t.Errorf("PErr = %v", err)
						return
					}
					if holders.Add(1) != 1 {
						violations.Add(1)
					}
					tt.Checkpoint()
					holders.Add(-1)
					s.V(tt)
				}
			})
		}
		if err := victim.Kill(SIGKILL); err != nil {
			t.Fatal(err)
		}
		if _, sig := waitProc(t, victim); sig != SIGKILL {
			t.Fatalf("victim exit signal = %v, want SIGKILL", sig)
		}
		for _, p := range procs {
			waitProc(t, p)
		}
		if n := ownerDead.Load(); n != 1 {
			t.Fatalf("ErrOwnerDead observed %d times, want exactly 1", n)
		}
		if v := violations.Load(); v != 0 {
			t.Fatalf("binary-semaphore exclusion violated %d times", v)
		}
	})
}

// abbaProc runs one side of the ABBA construction: lock first, admit
// being ready, wait for the peer, then lock second (closing the cycle
// when the orders oppose).
func abbaProc(t *testing.T, sys *System, name string, firstOff, secondOff int64, mine, peer *atomic.Bool) *Proc {
	return spawn(t, sys, name, ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/shm", OCreate|ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		first, err := p.SharedMutexAt(tt, va+firstOff)
		if err != nil {
			t.Error(err)
			return
		}
		second, err := p.SharedMutexAt(tt, va+secondOff)
		if err != nil {
			t.Error(err)
			return
		}
		first.Enter(tt)
		mine.Store(true)
		for !peer.Load() {
			tt.Yield()
		}
		second.Enter(tt) // ABBA: blocks forever; killed here
		second.Exit(tt)
		first.Exit(tt)
	})
}

// TestChaosCrossProcessABBADetection: two processes close a
// cross-process ABBA cycle through two shared mutexes; once both are
// blocked, a single DetectDeadlocks pass must flag exactly the
// 2-cycle, readable owners and all. The processes are then SIGKILLed
// (the sweep reclaims both locks).
func TestChaosCrossProcessABBADetection(t *testing.T) {
	sweep(t, func(t *testing.T, seed uint64) {
		sys := chaosSystem(t, chaosOpts(2, seed))
		var aReady, bReady atomic.Bool
		pa := abbaProc(t, sys, "pa", 0, 64, &aReady, &bReady)
		pb := abbaProc(t, sys, "pb", 64, 0, &bReady, &aReady)

		blocked := func(p *Proc) bool {
			for _, w := range p.RT.LockWaiters() {
				if w.Kind == "mutex" && w.HasOwner && w.Owner.PID != 0 {
					return true
				}
			}
			return false
		}
		var cycles []Deadlock
		found := pollUntil(20*time.Second, func() bool {
			if !blocked(pa) || !blocked(pb) {
				return false
			}
			cycles = DetectDeadlocks(pa, pb) // the single flagging pass
			return len(cycles) > 0
		})
		if !found {
			t.Fatal("constructed ABBA deadlock was never flagged")
		}
		if len(cycles) != 1 {
			t.Fatalf("detector reported %d cycles, want 1: %v", len(cycles), cycles)
		}
		if n := len(cycles[0].Nodes); n != 2 {
			t.Fatalf("cycle has %d nodes, want 2: %v", n, cycles[0])
		}
		pids := map[PID]bool{}
		for _, node := range cycles[0].Nodes {
			pids[node.PID] = true
		}
		if !pids[pa.PID()] || !pids[pb.PID()] {
			t.Fatalf("cycle %v does not span pids %d and %d", cycles[0], pa.PID(), pb.PID())
		}
		pa.Kill(SIGKILL)
		pb.Kill(SIGKILL)
		waitProc(t, pa)
		waitProc(t, pb)
	})
}

// TestChaosCrossProcessLockOrderNegativeControl: the same structure
// with a global lock order never deadlocks and is never flagged.
func TestChaosCrossProcessLockOrderNegativeControl(t *testing.T) {
	sweep(t, func(t *testing.T, seed uint64) {
		sys := chaosSystem(t, chaosOpts(2, seed))
		// Both take offset 0 then 64: ordered, no cycle possible. (No
		// ready-handshake here — holding the first lock while waiting
		// for the peer would itself deadlock under a global order.)
		ordered := func(name string) *Proc {
			return spawn(t, sys, name, ProcConfig{}, func(p *Proc, tt *Thread) {
				fd, _ := p.Open(tt, "/shm", OCreate|ORdWr)
				va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
				a, err := p.SharedMutexAt(tt, va)
				if err != nil {
					t.Error(err)
					return
				}
				b, err := p.SharedMutexAt(tt, va+64)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < 5; i++ {
					a.Enter(tt)
					b.Enter(tt)
					tt.Checkpoint()
					b.Exit(tt)
					a.Exit(tt)
				}
			})
		}
		pa := ordered("pa")
		pb := ordered("pb")
		done := make(chan struct{})
		go func() {
			waitProc(t, pa)
			waitProc(t, pb)
			close(done)
		}()
		for {
			select {
			case <-done:
				if cycles := DetectDeadlocks(pa, pb); len(cycles) != 0 {
					t.Fatalf("negative control flagged: %v", cycles)
				}
				return
			default:
				if cycles := DetectDeadlocks(pa, pb); len(cycles) != 0 {
					t.Fatalf("negative control flagged mid-run: %v", cycles)
				}
				time.Sleep(time.Millisecond)
			}
		}
	})
}
