package mt

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// Chaos sweeps for the pluggable lock policies: each seed runs every
// policy through a contended workload with mixed priorities, in-
// section deschedules, and timed acquisitions, under the full chaos
// menu (forced preemptions, spurious wakeups, injected EINTR). What
// the sweep pins down, per policy:
//
//   - Mutual exclusion and no lost updates (counter + holders gauge).
//   - Queue-node integrity for the MCS/CLH policy: the release path
//     panics if its node chain ever diverges from the waiter queue,
//     so a corrupted hand-off fails the seed loudly rather than
//     silently granting out of order.
//   - Priority inheritance across hand-off: a high-priority closer
//     thread acquires the same lock while low-priority holders
//     deschedule inside their critical sections; the run completing
//     under the proc watchdog (waitProc's deadline) means no
//     unboosted holder ever stalled the chain.
//   - Timed waiters dequeue cleanly: expired TimedEnter calls under
//     chaos must neither receive a stale grant nor strand the
//     hand-off chain (both would surface as a holders-gauge violation
//     or a hang).
//   - The robust owner-death protocol keeps working in processes that
//     default to each policy: a process dies holding a shared mutex
//     and an heir process observes ErrOwnerDead (shared mutexes use
//     the kernel word protocol regardless of policy, but they share
//     the Mutex type and must coexist with every process default).
func TestChaosLockPolicies(t *testing.T) {
	sweep(t, func(t *testing.T, seed uint64) {
		for _, pol := range LockPolicies() {
			runLockPolicyChaos(t, seed, pol)
			if t.Failed() {
				return
			}
		}
	})
}

func runLockPolicyChaos(t *testing.T, seed uint64, pol LockPolicy) {
	const nThreads, iters = 4, 25
	sys := chaosSystem(t, chaosOpts(2, seed))
	var mu Mutex
	mu.InitPolicy(pol)
	var holders, violations, timeouts atomic.Int32
	counter := 0
	p := spawn(t, sys, "chaos-lockpol", ProcConfig{LockPolicy: pol}, func(p *Proc, tt *Thread) {
		rt := tt.Runtime()
		ids := make([]ThreadID, 0, nThreads)
		for i := 0; i < nThreads; i++ {
			i := i
			c, err := rt.Create(func(ct *Thread, _ any) {
				for j := 0; j < iters; j++ {
					// Every fourth round contends through the timed
					// path; an expired waiter must vanish from the
					// queue without disturbing the grant chain.
					if j%4 == 3 {
						if err := mu.TimedEnter(ct, time.Millisecond); err != nil {
							if err != ErrTimedOut {
								t.Errorf("TimedEnter: %v", err)
							}
							timeouts.Add(1)
							continue
						}
					} else {
						mu.Enter(ct)
					}
					if holders.Add(1) != 1 {
						violations.Add(1)
					}
					counter++
					ct.Checkpoint()
					if j%5 == 0 {
						// Deschedule while holding: the hand-off and
						// inheritance paths must cope with an off-CPU
						// owner.
						ct.Yield()
					}
					holders.Add(-1)
					mu.Exit(ct)
				}
			}, nil, CreateOpts{Flags: ThreadWait, Priority: 1 + i%2})
			if err != nil {
				t.Error(err)
				return
			}
			ids = append(ids, c.ID())
		}
		// The closer outranks every worker: with inheritance working
		// across hand-offs it cannot be starved by the descheduled
		// low-priority holders, so the whole process finishes inside
		// waitProc's deadline.
		closer, err := rt.Create(func(ct *Thread, _ any) {
			for j := 0; j < iters; j++ {
				mu.Enter(ct)
				if holders.Add(1) != 1 {
					violations.Add(1)
				}
				counter++
				holders.Add(-1)
				mu.Exit(ct)
				ct.Yield()
			}
		}, nil, CreateOpts{Flags: ThreadWait, Priority: 8})
		if err != nil {
			t.Error(err)
			return
		}
		for _, id := range append(ids, closer.ID()) {
			tt.Wait(id)
		}
	})
	waitProc(t, p)
	if v := violations.Load(); v != 0 {
		t.Fatalf("policy %v: mutual exclusion violated %d times", pol, v)
	}
	want := nThreads*iters + iters - int(timeouts.Load())
	if counter != want {
		t.Fatalf("policy %v: counter = %d, want %d (%d timed out)", pol, counter, want, timeouts.Load())
	}

	// Robust owner death under this process-default policy: a process
	// dies holding a file-backed mutex; an heir sees ErrOwnerDead.
	path := fmt.Sprintf("/tmp/chaos-lockpol-%d-%v", seed, pol)
	p1 := spawn(t, sys, "dying", ProcConfig{LockPolicy: pol}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, path, OCreate|ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		mu, err := p.SharedMutexAt(tt, va)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Enter(tt) // die holding it
	})
	waitProc(t, p1)
	p2 := spawn(t, sys, "heir", ProcConfig{LockPolicy: pol}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, path, ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		mu, err := p.SharedMutexAt(tt, va)
		if err != nil {
			t.Error(err)
			return
		}
		if err := mu.EnterErr(tt); err != ErrOwnerDead {
			t.Errorf("policy %v: EnterErr = %v, want ErrOwnerDead", pol, err)
			return
		}
		mu.MakeConsistent(tt)
		mu.Exit(tt)
	})
	waitProc(t, p2)
}
