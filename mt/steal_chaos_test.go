package mt

// Steal/pset chaos sweeps: the per-CPU dispatcher's two load-bearing
// invariants under perturbed schedules — the kernel never idles a CPU
// while stealable work is queued in its processor set, and a
// pset-bound thread's LWP never runs on a CPU outside its set. Like
// the other sweeps, a failing seed replays exactly:
//
//	go test ./mt -run TestChaosSteal -chaos.seed=N

import (
	"sync/atomic"
	"testing"
)

// TestChaosStealWorkConservation: yielders plus park/unpark ping-pong
// pairs keep ready-queue traffic flowing across four CPUs split into
// two processor sets, while a monitor thread polls the kernel's
// work-conservation invariant the whole time. Every kernel mutation
// ends in scheduleLocked under the same lock hold, so the invariant
// must hold at every observation point, not just at quiescence.
func TestChaosStealWorkConservation(t *testing.T) {
	sweep(t, func(t *testing.T, seed uint64) {
		const nYield, nPairs, iters = 4, 2, 30
		sys := chaosSystem(t, chaosOpts(4, seed))
		// A second pset splits the machine so the invariant is
		// checked per set, with a bound thread keeping it non-empty.
		ps := sys.PsetCreate()
		if err := sys.PsetAssign(ps, 3); err != nil {
			t.Fatal(err)
		}
		var violations atomic.Int32
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !sys.Kern.WorkConserving() {
					violations.Add(1)
				}
			}
		}()
		p := spawn(t, sys, "chaos-conserve", ProcConfig{}, func(p *Proc, tt *Thread) {
			rt := tt.Runtime()
			ids := make([]ThreadID, 0, nYield+2*nPairs+1)
			// Yielders: plain ready-queue churn across the shards.
			for i := 0; i < nYield; i++ {
				c, err := rt.Create(func(ct *Thread, _ any) {
					for j := 0; j < iters; j++ {
						ct.Checkpoint()
						ct.Yield()
					}
				}, nil, CreateOpts{Flags: ThreadWait})
				if err != nil {
					t.Error(err)
					return
				}
				ids = append(ids, c.ID())
			}
			// Park/unpark pairs: sleeper parks, pinger unparks it,
			// generating wakeups that land on whatever CPU is idle.
			for i := 0; i < nPairs; i++ {
				var parked atomic.Int32
				sleeper, err := rt.Create(func(ct *Thread, _ any) {
					for j := 0; j < iters; j++ {
						parked.Add(1)
						ct.Park()
					}
				}, nil, CreateOpts{Flags: ThreadWait})
				if err != nil {
					t.Error(err)
					return
				}
				pinger, err := rt.Create(func(ct *Thread, _ any) {
					woken := 0
					for woken < iters {
						if parked.Load() > int32(woken) && sleeper.State() == ThreadSleeping {
							sleeper.Unpark()
							woken++
						}
						ct.Yield()
					}
				}, nil, CreateOpts{Flags: ThreadWait})
				if err != nil {
					t.Error(err)
					return
				}
				ids = append(ids, sleeper.ID(), pinger.ID())
			}
			// A bound thread confined to the one-CPU set keeps the
			// second pset's invariant from being vacuously true.
			bound, err := rt.Create(func(ct *Thread, _ any) {
				for j := 0; j < iters; j++ {
					ct.Checkpoint()
					ct.Yield()
				}
			}, nil, CreateOpts{Flags: ThreadWait | ThreadBindLWP})
			if err != nil {
				t.Error(err)
				return
			}
			if err := sys.PsetBind(bound, ps); err != nil {
				t.Error(err)
				return
			}
			ids = append(ids, bound.ID())
			for _, id := range ids {
				tt.Wait(id)
			}
		})
		waitProc(t, p)
		close(stop)
		<-done
		if v := violations.Load(); v != 0 {
			t.Fatalf("work-conservation invariant violated %d times", v)
		}
		if !sys.Kern.WorkConserving() {
			t.Fatal("kernel not work-conserving at quiescence")
		}
	})
}

// TestChaosStealPsetConfinement: bound threads confined to a two-CPU
// processor set check, on every iteration, that their LWP is running
// inside the set — no perturbed placement, steal, or balance decision
// may ever move them out — while unbound yielders flood the default
// set with stealable work to tempt it.
func TestChaosStealPsetConfinement(t *testing.T) {
	sweep(t, func(t *testing.T, seed uint64) {
		const nBound, nFree, iters = 2, 4, 30
		sys := chaosSystem(t, chaosOpts(4, seed))
		ps := sys.PsetCreate()
		for _, cpu := range []int{2, 3} {
			if err := sys.PsetAssign(ps, cpu); err != nil {
				t.Fatal(err)
			}
		}
		inSet := func(cpu int) bool { return cpu == 2 || cpu == 3 }
		var escapes atomic.Int32
		p := spawn(t, sys, "chaos-pset", ProcConfig{}, func(p *Proc, tt *Thread) {
			rt := tt.Runtime()
			ids := make([]ThreadID, 0, nBound+nFree)
			for i := 0; i < nBound; i++ {
				var bound atomic.Bool
				c, err := rt.Create(func(ct *Thread, _ any) {
					// The creator binds us after Create returns; until
					// then we may legitimately run anywhere.
					for !bound.Load() {
						ct.Yield()
					}
					for j := 0; j < iters; j++ {
						// Between checkpoints this goroutine is the
						// LWP's dispatched body, so CurCPU is our CPU.
						if cpu := ct.BoundLWP().CurCPU(); cpu >= 0 && !inSet(cpu) {
							escapes.Add(1)
						}
						ct.Checkpoint()
						ct.Yield()
					}
				}, nil, CreateOpts{Flags: ThreadWait | ThreadBindLWP})
				if err != nil {
					t.Error(err)
					return
				}
				if err := sys.PsetBind(c, ps); err != nil {
					t.Error(err)
					return
				}
				bound.Store(true)
				ids = append(ids, c.ID())
			}
			// Unbound load in the default set: stealable work the
			// pset CPUs must never pull, and vice versa.
			for i := 0; i < nFree; i++ {
				c, err := rt.Create(func(ct *Thread, _ any) {
					for j := 0; j < iters; j++ {
						ct.Checkpoint()
						ct.Yield()
					}
				}, nil, CreateOpts{Flags: ThreadWait})
				if err != nil {
					t.Error(err)
					return
				}
				ids = append(ids, c.ID())
			}
			for _, id := range ids {
				tt.Wait(id)
			}
		})
		waitProc(t, p)
		if e := escapes.Load(); e != 0 {
			t.Fatalf("bound threads ran outside their pset %d times", e)
		}
	})
}
