package mt

// Schedule record/replay at the system level: a chaos run recorded
// into a schedule journal replays to the identical event sequence —
// including the failure it found. These are the acceptance gates for
// the time-travel PR; CI runs TestScheduleReplayReproducesFailure as
// its replay smoke step.

import (
	"bytes"
	"sync/atomic"
	"testing"

	"sunosmt/internal/ktime"
)

// runBrokenMutex runs the deterministic replay workload — the broken
// test-and-set lock from TestChaosCatchesBrokenMutex on one CPU with
// SIGWAITING growth off, so every decision point is reached in a
// reproducible order — and returns the violation count and the booted
// system (for its ring snapshot). The clock is a Manual at time zero:
// timeshare priorities decay with *measured* CPU time, so on the real
// clock a slow run (-race, a loaded CI box) charges more usage than a
// fast one and dispatch priorities drift; a frozen virtual clock
// removes the last wall-time input and makes the event stream a pure
// function of the decision stream.
func runBrokenMutex(t *testing.T, src *ChaosSource, iters int) (int32, *System) {
	t.Helper()
	sys := NewSystem(Options{
		NCPU:             1,
		Clock:            ktime.NewManual(),
		Chaos:            src,
		LWPCreateCost:    -1,
		KernelSwitchCost: -1,
		EventRing:        1 << 16,
	})
	var bm brokenMutex
	var holders, violations atomic.Int32
	p := spawn(t, sys, "replay-broken", ProcConfig{DisableSigwaiting: true}, func(p *Proc, tt *Thread) {
		rt := tt.Runtime()
		body := func(ct *Thread, _ any) {
			for j := 0; j < iters; j++ {
				bm.enter(ct)
				if holders.Add(1) != 1 {
					violations.Add(1)
				}
				ct.Checkpoint()
				if holders.Load() != 1 {
					violations.Add(1)
				}
				holders.Add(-1)
				bm.exit()
			}
		}
		c, err := rt.Create(body, nil, CreateOpts{Flags: ThreadWait})
		if err != nil {
			t.Error(err)
			return
		}
		body(tt, nil)
		tt.Wait(c.ID())
	})
	waitProc(t, p)
	return violations.Load(), sys
}

// TestScheduleReplayReproducesFailure: find a seed whose perturbed
// schedule breaks the broken mutex, record that run's full schedule
// journal, round-trip it through the serialized format, and replay
// it. The replay must reproduce the same invariant violations, the
// replayed event sequence must match the journal exactly, and the
// divergence detector must stay silent.
func TestScheduleReplayReproducesFailure(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		src := NewChaos(seed)
		src.StartRecording()
		v, sys := runBrokenMutex(t, src, 150)
		if v == 0 {
			continue
		}
		t.Logf("broken mutex caught at seed %d (%d violations); recording schedule", seed, v)
		j := sys.Schedule()
		j.Meta["workload"] = "broken-mutex 2x150"
		if len(j.Decisions) == 0 || len(j.Events) == 0 {
			t.Fatalf("schedule journal is empty: %d decisions, %d events",
				len(j.Decisions), len(j.Events))
		}
		if d, tn := sys.Events().Dropped(), sys.Events().Torn(); d != 0 || tn != 0 {
			t.Fatalf("ring overflowed (dropped %d, torn %d); enlarge EventRing", d, tn)
		}

		var buf bytes.Buffer
		if err := j.Write(&buf); err != nil {
			t.Fatal(err)
		}
		j2, err := ReadJournal(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}

		rsrc, err := NewReplayChaos(j2)
		if err != nil {
			t.Fatal(err)
		}
		v2, sys2 := runBrokenMutex(t, rsrc, 150)
		if v2 != v {
			t.Fatalf("replay saw %d violations, recording saw %d", v2, v)
		}
		recs, _ := sys2.Events().Snapshot()
		if d := FirstEventDivergence(j2.Events, recs); d != -1 {
			var want, got string
			if d < len(j2.Events) {
				want = j2.Events[d].String()
			}
			if d < len(recs) {
				got = recs[d].String()
			}
			t.Fatalf("replayed schedule diverges at event %d:\n  recorded: %s\n  replayed: %s",
				d, want, got)
		}
		if dv := rsrc.Divergence(); dv != nil {
			t.Fatalf("divergence detector fired on a faithful replay: %v", dv)
		}
		return
	}
	t.Fatal("no seed in 1..20 broke the broken mutex; the recording gate never ran")
}

// TestScheduleReplayDetectsWorkloadDrift: replaying a journal against
// a workload that runs longer than the recording must trip the
// divergence detector (site exhaustion), not silently free-run.
func TestScheduleReplayDetectsWorkloadDrift(t *testing.T) {
	src := NewChaos(3)
	src.StartRecording()
	if v, _ := runBrokenMutex(t, src, 40); v > 0 {
		t.Logf("recording run saw %d violations (fine for this test)", v)
	}
	rsrc, err := NewReplayChaos(src.Schedule())
	if err != nil {
		t.Fatal(err)
	}
	runBrokenMutex(t, rsrc, 200)
	d := rsrc.Divergence()
	if d == nil {
		t.Fatal("a 5x-longer workload replayed without tripping the divergence detector")
	}
	if !d.Exhausted {
		t.Logf("divergence (input mismatch before exhaustion): %v", d)
	}
}
