package mt

import (
	"sunosmt/internal/core"
	"sunosmt/internal/sim"
	"sunosmt/internal/vfs"
	"sunosmt/internal/vm"
)

// This file implements process creation and destruction for threads:
// fork (duplicate the whole process), fork1 (duplicate only the
// calling thread), exec, exit, and waiting for children.
//
// Go cannot clone goroutine stacks, so a duplicated thread resumes in
// the child from an explicit continuation: childMain for the calling
// thread, and each other thread's SetForkContinuation (threads
// without one do not reappear). The kernel-side semantics — address
// space copied (MAP_SHARED mappings still shared), descriptor table
// shared entry-by-entry, EINTR delivered to other LWPs' interruptible
// calls, locks in shared memory held across the fork — all follow the
// paper. See DESIGN.md's substitution table.

// Fork1 implements fork1(2): only the calling thread is duplicated
// into the child, which starts by running childMain(childArg). It
// returns the child Proc handle (nil inside the child's world — the
// child is a separate Proc whose main thread is the continuation).
func (p *Proc) Fork1(t *Thread, childMain Func, childArg any) (*Proc, error) {
	return p.forkCommon(t, childMain, childArg, false)
}

// Fork implements fork(2): it duplicates the address space and
// re-creates the same threads in the child. The calling thread
// continues as childMain; every other thread that registered a
// continuation with SetForkContinuation is re-created running it.
func (p *Proc) Fork(t *Thread, childMain Func, childArg any) (*Proc, error) {
	return p.forkCommon(t, childMain, childArg, true)
}

func (p *Proc) forkCommon(t *Thread, childMain Func, childArg any, all bool) (*Proc, error) {
	s := p.Sys
	k := s.Kern

	// Gather continuations before the kernel fork so the set of
	// duplicated threads matches the kernel's LWP duplication.
	type contRec struct {
		fn  Func
		arg any
	}
	var conts []contRec
	if all {
		for _, th := range p.RT.Threads() {
			if th == t {
				continue
			}
			if fn, arg := th.ForkContinuation(); fn != nil {
				conts = append(conts, contRec{fn, arg})
			}
		}
	}

	child, cl, others, err := k.Fork(t.LWP(), all)
	if err != nil {
		return nil, err
	}
	// Duplicate the descriptor table (open-file entries shared) and
	// the address space (private copied, shared still shared).
	p.PF.ForkInto(child)
	cas, err := p.AS.Fork()
	if err != nil {
		return nil, err
	}
	cas.SetFaultFn(child.AddFault)
	child.Mem = cas

	cp, err := s.buildProc(child, func(main *Thread, _ any) {
		for _, c := range conts {
			main.Runtime().Create(c.fn, c.arg, CreateOpts{})
		}
		childMain(main, childArg)
	}, nil, ProcConfig{}, nil)
	if err != nil {
		return nil, err
	}

	// The kernel-side LWP records duplicated by Fork cannot be
	// animated by cloned goroutines; the child's runtime just built
	// its own pool LWP, so retire the placeholders now (after the
	// pool LWP exists, or the child would be finalized as LWP-less).
	k.ExitLWP(cl)
	for _, o := range others {
		k.ExitLWP(o.LWP)
	}
	return cp, nil
}

// Exec replaces the process image: all LWPs (and so all threads) are
// destroyed, the address space is reset, close-on-exec descriptors
// are closed, and the new image's main thread runs newMain on the
// single fresh LWP. The calling thread never returns.
func (p *Proc) Exec(t *Thread, name string, newMain Func, arg any) error {
	nl, err := t.Exec(name)
	if err != nil {
		return err
	}
	p.AS.Reset()
	p.PF.CloseOnExec()
	newRT := core.NewRuntime(p.Sys.Kern, p.proc, core.Config{
		Trace:      p.Sys.tr,
		InitialLWP: nl,
	})
	p.RT = newRT
	if _, err := newRT.Start(newMain, arg); err != nil {
		return err
	}
	// The old image's calling thread ends here.
	t.Exit()
	return nil // unreached
}

// WaitChild waits for a child process to exit, like waitpid(2). The
// calling thread's LWP blocks in the kernel; other threads keep
// running. pid < 0 waits for any child.
func (p *Proc) WaitChild(t *Thread, pid sim.PID) (sim.WaitResult, error) {
	return p.Sys.Kern.WaitChild(t.LWP(), pid)
}

// Exit terminates the whole process with the given status, like
// exit(2): all threads are destroyed.
func (p *Proc) Exit(t *Thread, status int) {
	t.ExitProcess(status)
}

// interface checks
var (
	_ vm.Object     = (*vfs.File)(nil)
	_ core.ThreadID = 0
)
