package mt

// Tests for the paper's optional/extension behaviours: the
// scheduler-activations-flavoured SignalOnAnyBlock variant the paper
// proposes as future work ("we plan to experiment with sending
// signals on 'faster' events"), alternate signal stacks as a
// bound-thread-only capability, and per-LWP interval timers.

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"sunosmt/internal/core"
	"sunosmt/internal/sim"
)

// TestSignalOnAnyBlockGrowsPoolOnShortWaits: with the "faster events"
// variant enabled, even a short pipe read (not an indefinite wait like
// poll) triggers pool growth, so a runnable thread never waits for the
// blocked LWP. This is the paper's comparison point with scheduler
// activations, which upcall on every kernel block.
func TestSignalOnAnyBlockGrowsPoolOnShortWaits(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2, SignalOnAnyBlock: true})
	var helperRan atomic.Bool
	p := spawn(t, sys, "anyblock", ProcConfig{}, func(p *Proc, tt *Thread) {
		rfd, wfd, _ := p.Pipe(tt)
		tt.Runtime().Create(func(c *Thread, _ any) {
			helperRan.Store(true)
			p.Write(c, wfd, []byte("x"))
		}, nil, CreateOpts{})
		// A pipe read: with plain SIGWAITING this is also an
		// indefinite wait, but the distinguishing case is a
		// *bounded* kernel sleep, which only the any-block
		// variant reports.
		b := make([]byte, 1)
		if _, err := p.Read(tt, rfd, b); err != nil {
			t.Error(err)
		}
	})
	waitProc(t, p)
	if !helperRan.Load() {
		t.Fatal("helper starved under SignalOnAnyBlock")
	}
}

// TestBoundedSleepGrowsPoolOnlyWithAnyBlock pins the difference
// between the two policies using a bounded nanosleep, which is NOT an
// indefinite wait: the default SIGWAITING policy must not grow the
// pool for it; the any-block policy must.
func TestBoundedSleepGrowsPoolOnlyWithAnyBlock(t *testing.T) {
	run := func(anyBlock bool) (helperRanDuringSleep bool) {
		sys := NewSystem(Options{NCPU: 2, SignalOnAnyBlock: anyBlock})
		var ran atomic.Bool
		var sawDuringSleep atomic.Bool
		p := spawn(t, sys, "sleep", ProcConfig{}, func(p *Proc, tt *Thread) {
			tt.Runtime().Create(func(c *Thread, _ any) {
				ran.Store(true)
			}, nil, CreateOpts{})
			p.Sleep(tt, 20*time.Millisecond)
			sawDuringSleep.Store(ran.Load())
		})
		waitProc(t, p)
		return sawDuringSleep.Load()
	}
	if !run(true) {
		t.Fatal("any-block policy did not rescue the runnable thread during a bounded sleep")
	}
	if run(false) {
		t.Fatal("default policy grew the pool for a bounded (non-indefinite) sleep")
	}
}

func TestAltStackOnlyForBoundThreads(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	p := spawn(t, sys, "altstack", ProcConfig{}, func(p *Proc, tt *Thread) {
		// Unbound: rejected, per the paper.
		if err := tt.SigAltStack(0x1000, 4096, true); !errors.Is(err, core.ErrUnboundAltStack) {
			t.Errorf("unbound SigAltStack err = %v", err)
		}
		handledOnAlt := make(chan bool, 1)
		tt.Runtime().Signal(sim.SIGUSR1, sim.SigCatch, func(ht *Thread, _ sim.Signal) {
			st := ht.Runtime().Kernel().AltStackState(ht.LWP())
			handledOnAlt <- st.OnStack
		})
		b, _ := tt.Runtime().Create(func(c *Thread, _ any) {
			if err := c.SigAltStack(0x1000, 4096, true); err != nil {
				t.Error(err)
				return
			}
			c.Kill(c, sim.SIGUSR1) // handled at the next checkpoint
			c.Checkpoint()
			st := c.Runtime().Kernel().AltStackState(c.LWP())
			if st.OnStack {
				t.Error("alt-stack flag not cleared after handler")
			}
		}, nil, CreateOpts{Flags: ThreadWait | ThreadBindLWP})
		tt.Wait(b.ID())
		select {
		case on := <-handledOnAlt:
			if !on {
				t.Error("handler did not run on the alternate stack")
			}
		default:
			t.Error("handler never ran")
		}
	})
	waitProc(t, p)
}

// TestPerLWPTimersRequireBoundThreads pins the paper's rule that
// virtual-time state belongs to LWPs: a bound thread's SIGVTALRM
// arrives at that thread.
func TestPerLWPTimersRequireBoundThreads(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var gotVT atomic.Bool
	p := spawn(t, sys, "timers", ProcConfig{}, func(p *Proc, tt *Thread) {
		tt.Runtime().Signal(sim.SIGVTALRM, sim.SigCatch, func(ht *Thread, _ sim.Signal) {
			gotVT.Store(true)
		})
		b, _ := tt.Runtime().Create(func(c *Thread, _ any) {
			if err := p.Setitimer(c, sim.ITimerVirtual, time.Millisecond, 0); err != nil {
				t.Error(err)
				return
			}
			deadline := time.Now().Add(200 * time.Millisecond)
			for !gotVT.Load() && time.Now().Before(deadline) {
				// burn virtual (user) time; checkpoints charge it
				for i := 0; i < 1000; i++ {
					_ = i * i
				}
				c.Checkpoint()
			}
		}, nil, CreateOpts{Flags: ThreadWait | ThreadBindLWP})
		tt.Wait(b.ID())
	})
	waitProc(t, p)
	if !gotVT.Load() {
		t.Fatal("SIGVTALRM never delivered to the bound thread")
	}
}

// TestCredentialsAreProcessWide pins "There is only one set of user
// and group IDs for each process".
func TestCredentialsAreProcessWide(t *testing.T) {
	sys := NewSystem(Options{NCPU: 1})
	p := spawn(t, sys, "creds", ProcConfig{}, func(p *Proc, tt *Thread) {
		p.Process().SetCredentials(sim.Credentials{UID: 100, GID: 10})
		c, _ := tt.Runtime().Create(func(c *Thread, _ any) {
			// The other thread sees the change immediately.
			if got := c.Runtime().Process().Credentials(); got.UID != 100 {
				t.Errorf("child thread saw UID %d", got.UID)
			}
			c.Runtime().Process().SetCredentials(sim.Credentials{UID: 200, GID: 20})
		}, nil, CreateOpts{Flags: ThreadWait})
		tt.Wait(c.ID())
		if got := p.Process().Credentials(); got.UID != 200 {
			t.Errorf("main thread saw UID %d after child's change", got.UID)
		}
	})
	waitProc(t, p)
}
