package mt

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"sunosmt/internal/sim"
)

// Fork/exec edge cases: interactions between process duplication and
// threads that are mid-flight in the kernel or have signals pending.

// yieldUntil spins the calling thread until cond holds, failing the
// test (and returning false) if it never does.
func yieldUntil(t *testing.T, tt *Thread, what string, cond func() bool) bool {
	t.Helper()
	for i := 0; i < 200000; i++ {
		if cond() {
			return true
		}
		tt.Yield()
	}
	t.Errorf("never observed: %s", what)
	return false
}

// sleepingLWPs counts the process's LWPs blocked in the kernel on a
// wait queue (not library-parked dispatchers).
func sleepingLWPs(p *Proc) int {
	n := 0
	for _, l := range p.Process().LWPs() {
		if l.State() == sim.LWPSleeping {
			n++
		}
	}
	return n
}

// TestForkPendingSignalNotInherited: a signal pending on the parent
// at fork time must not be delivered in the child (POSIX/SVR4).
func TestForkPendingSignalNotInherited(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var parentCaught, childCaught atomic.Bool
	p := spawn(t, sys, "parent", ProcConfig{}, func(p *Proc, tt *Thread) {
		rt := tt.Runtime()
		rt.Signal(SIGUSR1, SigCatch, func(*Thread, Signal) { parentCaught.Store(true) })
		// Mask the signal on the only thread, then post it: it pends
		// at the process.
		tt.SigSetMask(SigBlock, sim.MakeSigset(SIGUSR1))
		p.Kill(SIGUSR1)
		childDone := make(chan struct{})
		_, err := p.Fork1(tt, func(ct *Thread, _ any) {
			crt := ct.Runtime()
			crt.Signal(SIGUSR1, SigCatch, func(*Thread, Signal) { childCaught.Store(true) })
			// The child's thread has nothing masked: if the pending
			// SIGUSR1 had been inherited it would deliver here.
			for i := 0; i < 200; i++ {
				ct.Yield()
			}
			close(childDone)
		}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		<-childDone
		for {
			if _, werr := p.WaitChild(tt, -1); !errors.Is(werr, sim.ErrIntr) {
				break
			}
		}
		// Back in the parent the signal is still pending; unmasking
		// releases it.
		tt.SigSetMask(SigUnblock, sim.MakeSigset(SIGUSR1))
		yieldUntil(t, tt, "pending signal delivered to parent", parentCaught.Load)
	})
	waitProc(t, p)
	if childCaught.Load() {
		t.Fatal("pending SIGUSR1 was inherited by the fork1 child")
	}
	if !parentCaught.Load() {
		t.Fatal("pending SIGUSR1 lost in the parent")
	}
}

// TestFork1LeavesSleepingSiblingIntact: fork1 duplicates only the
// caller. A sibling thread blocked in an interruptible pipe read must
// keep sleeping (no EINTR — that is full fork's behaviour), and the
// child must come up with a single LWP, not copies of the parent's.
func TestFork1LeavesSleepingSiblingIntact(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var got atomic.Value
	var readErr atomic.Value
	var childLWPs atomic.Int64
	p := spawn(t, sys, "parent", ProcConfig{}, func(p *Proc, tt *Thread) {
		rt := tt.Runtime()
		rt.SetConcurrency(2)
		rfd, wfd, _ := p.Pipe(tt)
		crfd, cwfd, _ := p.Pipe(tt) // child release gate (fd table is shared)
		sib, _ := rt.Create(func(c *Thread, _ any) {
			b := make([]byte, 8)
			n, err := p.Read(c, rfd, b)
			if err != nil {
				readErr.Store(err)
				return
			}
			got.Store(string(b[:n]))
		}, nil, CreateOpts{Flags: ThreadWait})
		if !yieldUntil(t, tt, "sibling blocked in pipe read", func() bool { return sleepingLWPs(p) == 1 }) {
			return
		}
		childCh := make(chan *Proc, 1)
		child, err := p.Fork1(tt, func(ct *Thread, _ any) {
			// Hold the child alive (blocked in the kernel on the
			// inherited descriptor) while the parent inspects its
			// LWP count.
			b := make([]byte, 1)
			(<-childCh).Read(ct, crfd, b)
		}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		childCh <- child
		childLWPs.Store(int64(child.Process().NumLWPs()))
		// The sibling must still be asleep in the read — fork1 does
		// not interrupt other LWPs' system calls.
		if sleepingLWPs(p) != 1 {
			t.Error("sibling's pipe read was disturbed by fork1")
		}
		p.Write(tt, wfd, []byte("later"))
		tt.Wait(sib.ID())
		p.Write(tt, cwfd, []byte("g")) // release the child
		for {
			if _, werr := p.WaitChild(tt, -1); !errors.Is(werr, sim.ErrIntr) {
				break
			}
		}
	})
	waitProc(t, p)
	if err, ok := readErr.Load().(error); ok {
		t.Fatalf("sibling read failed: %v", err)
	}
	if got.Load() != "later" {
		t.Fatalf("sibling read %v, want \"later\"", got.Load())
	}
	if n := childLWPs.Load(); n != 1 {
		t.Fatalf("fork1 child has %d LWPs, want 1", n)
	}
}

// TestForkInterruptsSiblingSyscall: full fork makes interruptible
// system calls in progress on other LWPs return EINTR (paper §4).
func TestForkInterruptsSiblingSyscall(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var readErr atomic.Value
	p := spawn(t, sys, "parent", ProcConfig{}, func(p *Proc, tt *Thread) {
		rt := tt.Runtime()
		rt.SetConcurrency(2)
		rfd, _, _ := p.Pipe(tt)
		sib, _ := rt.Create(func(c *Thread, _ any) {
			b := make([]byte, 8)
			_, err := p.Read(c, rfd, b)
			readErr.Store(err)
		}, nil, CreateOpts{Flags: ThreadWait})
		if !yieldUntil(t, tt, "sibling blocked in pipe read", func() bool { return sleepingLWPs(p) == 1 }) {
			return
		}
		if _, err := p.Fork(tt, func(ct *Thread, _ any) {}, nil); err != nil {
			t.Error(err)
			return
		}
		tt.Wait(sib.ID())
		for {
			if _, werr := p.WaitChild(tt, -1); !errors.Is(werr, sim.ErrIntr) {
				break
			}
		}
	})
	waitProc(t, p)
	err, _ := readErr.Load().(error)
	if !errors.Is(err, sim.ErrIntr) {
		t.Fatalf("sibling read returned %v, want EINTR", err)
	}
}

// TestExecDestroysSleepingSibling: exec must tear down an LWP blocked
// in an interruptible kernel sleep, not wait for it to wake on its
// own; the new image starts with exactly one thread.
func TestExecDestroysSleepingSibling(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var newImageRan atomic.Bool
	var siblingFinished atomic.Bool
	var threadsInNewImage atomic.Int64
	p := spawn(t, sys, "parent", ProcConfig{}, func(p *Proc, tt *Thread) {
		rt := tt.Runtime()
		rt.SetConcurrency(2)
		rfd, _, _ := p.Pipe(tt)
		rt.Create(func(c *Thread, _ any) {
			b := make([]byte, 8)
			p.Read(c, rfd, b) // sleeps forever; exec must unwind it
			siblingFinished.Store(true)
		}, nil, CreateOpts{})
		if !yieldUntil(t, tt, "sibling blocked in pipe read", func() bool { return sleepingLWPs(p) == 1 }) {
			return
		}
		err := p.Exec(tt, "newimage", func(nt *Thread, _ any) {
			newImageRan.Store(true)
			threadsInNewImage.Store(int64(nt.Runtime().NumThreads()))
		}, nil)
		t.Errorf("Exec returned: %v", err)
	})
	select {
	case <-p.Process().Exited():
	case <-time.After(60 * time.Second):
		t.Fatal("timeout waiting for exec'd process")
	}
	if !newImageRan.Load() {
		t.Fatal("new image never ran")
	}
	if siblingFinished.Load() {
		t.Fatal("sibling survived exec and finished its read")
	}
	if n := threadsInNewImage.Load(); n != 1 {
		t.Fatalf("new image sees %d threads, want 1", n)
	}
}
