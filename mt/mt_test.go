package mt

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"sunosmt/internal/sim"
	"sunosmt/internal/vfs"
)

// spawn starts a process whose main thread receives its own Proc
// handle race-free (the body blocks until the handle is delivered).
func spawn(t *testing.T, sys *System, name string, cfg ProcConfig, body func(p *Proc, tt *Thread)) *Proc {
	t.Helper()
	ch := make(chan *Proc, 1)
	p, err := sys.Spawn(name, func(tt *Thread, _ any) {
		body(<-ch, tt)
	}, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch <- p
	return p
}

func waitProc(t *testing.T, p *Proc) (int, Signal) {
	t.Helper()
	done := make(chan struct{})
	var status int
	var sig Signal
	go func() {
		status, sig = p.WaitExit()
		close(done)
	}()
	select {
	case <-done:
		return status, sig
	case <-time.After(60 * time.Second):
		t.Fatal("timeout waiting for process")
		return 0, 0
	}
}

func TestQuickstartShape(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var ran atomic.Bool
	p := spawn(t, sys, "hello", ProcConfig{}, func(p *Proc, tt *Thread) {
		c, err := tt.Runtime().Create(func(*Thread, any) { ran.Store(true) }, nil,
			CreateOpts{Flags: ThreadWait})
		if err != nil {
			t.Error(err)
			return
		}
		tt.Wait(c.ID())
	})
	waitProc(t, p)
	if !ran.Load() {
		t.Fatal("child thread did not run")
	}
}

func TestFileIOBetweenThreads(t *testing.T) {
	sys := NewSystem(Options{NCPU: 1})
	p := spawn(t, sys, "io", ProcConfig{}, func(p *Proc, tt *Thread) {
		rt := tt.Runtime()
		fd, err := p.Open(tt, "/tmp/shared", OCreate|ORdWr)
		if err != nil {
			t.Error(err)
			return
		}
		p.Write(tt, fd, []byte("thread1"))
		// Another thread sees the same descriptor and the same
		// offset (the paper's shared fd-table semantics).
		c, _ := rt.Create(func(c *Thread, _ any) {
			p.Write(c, fd, []byte("+thread2"))
		}, nil, CreateOpts{Flags: ThreadWait})
		tt.Wait(c.ID())
		p.Lseek(tt, fd, 0, SeekSet)
		b := make([]byte, 64)
		n, _ := p.Read(tt, fd, b)
		if string(b[:n]) != "thread1+thread2" {
			t.Errorf("file content %q", b[:n])
		}
	})
	waitProc(t, p)
}

func TestPipeBetweenThreadsBlocksOnlyOneLWP(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var got atomic.Value
	p := spawn(t, sys, "pipe", ProcConfig{}, func(p *Proc, tt *Thread) {
		rt := tt.Runtime()
		rt.SetConcurrency(2)
		rfd, wfd, err := p.Pipe(tt)
		if err != nil {
			t.Error(err)
			return
		}
		reader, _ := rt.Create(func(c *Thread, _ any) {
			b := make([]byte, 32)
			n, err := p.Read(c, rfd, b)
			if err != nil {
				t.Error(err)
				return
			}
			got.Store(string(b[:n]))
		}, nil, CreateOpts{Flags: ThreadWait})
		// While the reader blocks in the kernel, this thread (on
		// another LWP) keeps running and eventually writes.
		for i := 0; i < 10; i++ {
			tt.Yield()
		}
		if _, err := p.Write(tt, wfd, []byte("data")); err != nil {
			t.Error(err)
		}
		tt.Wait(reader.ID())
	})
	waitProc(t, p)
	if got.Load() != "data" {
		t.Fatalf("reader got %v", got.Load())
	}
}

func TestFork1ChildIsSeparateProcess(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var childRan atomic.Bool
	var parentStatus atomic.Int64
	p := spawn(t, sys, "parent", ProcConfig{}, func(p *Proc, tt *Thread) {
		child, err := p.Fork1(tt, func(ct *Thread, _ any) {
			childRan.Store(true)
			ct.ExitProcess(42)
		}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if child.PID() == p.PID() {
			t.Error("child has parent's pid")
		}
		res, err := p.WaitChild(tt, -1)
		if err != nil {
			t.Error(err)
			return
		}
		parentStatus.Store(int64(res.Status))
	})
	waitProc(t, p)
	if !childRan.Load() {
		t.Fatal("forked child never ran")
	}
	if parentStatus.Load() != 42 {
		t.Fatalf("waited status = %d, want 42", parentStatus.Load())
	}
}

func TestForkSharesFileOffsets(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	content := atomic.Value{}
	p := spawn(t, sys, "parent", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/tmp/f", OCreate|ORdWr)
		p.Write(tt, fd, []byte("abcdef"))
		p.Lseek(tt, fd, 0, SeekSet)
		childCh := make(chan *Proc, 1)
		child, err := p.Fork1(tt, func(ct *Thread, _ any) {
			b := make([]byte, 3)
			// The child reads through the shared open-file
			// entry, advancing the parent's offset too.
			(<-childCh).Read(ct, fd, b)
		}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		childCh <- child
		p.WaitChild(tt, -1)
		b := make([]byte, 3)
		n, _ := p.Read(tt, fd, b)
		content.Store(string(b[:n]))
	})
	waitProc(t, p)
	if content.Load() != "def" {
		t.Fatalf("parent read %q after child read, want def", content.Load())
	}
}

func TestForkCopiesPrivateMemory(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var childSaw atomic.Value
	p := spawn(t, sys, "parent", ProcConfig{}, func(p *Proc, tt *Thread) {
		va, err := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapPrivate, -1, 0)
		if err != nil {
			t.Error(err)
			return
		}
		p.MemWrite(tt, va, []byte("before"))
		childCh := make(chan *Proc, 1)
		child, err := p.Fork1(tt, func(ct *Thread, _ any) {
			// Parent's post-fork write must be invisible.
			b := make([]byte, 6)
			(<-childCh).MemRead(ct, va, b)
			childSaw.Store(string(b))
		}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		childCh <- child
		p.MemWrite(tt, va, []byte("after!"))
		p.WaitChild(tt, -1)
	})
	waitProc(t, p)
	if childSaw.Load() != "before" {
		t.Fatalf("child saw %q, want before", childSaw.Load())
	}
}

func TestFullForkRecreatesThreadsFromContinuations(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var workerInChild atomic.Bool
	p := spawn(t, sys, "parent", ProcConfig{}, func(p *Proc, tt *Thread) {
		rt := tt.Runtime()
		w, _ := rt.Create(func(c *Thread, _ any) {
			c.SetForkContinuation(func(*Thread, any) {
				workerInChild.Store(true)
			}, nil)
			for i := 0; i < 1000; i++ {
				c.Yield()
			}
		}, nil, CreateOpts{Flags: ThreadWait})
		tt.Yield() // let the worker register its continuation
		if _, err := p.Fork(tt, func(ct *Thread, _ any) {}, nil); err != nil {
			t.Error(err)
			return
		}
		p.WaitChild(tt, -1)
		tt.Wait(w.ID())
	})
	waitProc(t, p)
	if !workerInChild.Load() {
		t.Fatal("worker thread not re-created in forked child")
	}
}

func TestExecReplacesImage(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var newImageRan atomic.Bool
	var oldThreadSurvived atomic.Bool
	p := spawn(t, sys, "orig", ProcConfig{}, func(p *Proc, tt *Thread) {
		rt := tt.Runtime()
		// A background thread that must be destroyed by exec.
		rt.Create(func(c *Thread, _ any) {
			for {
				c.Yield()
				c.Park()
			}
		}, nil, CreateOpts{})
		tt.Yield()
		err := p.Exec(tt, "newimage", func(nt *Thread, _ any) {
			newImageRan.Store(true)
			if nt.Runtime().NumThreads() > 1 {
				oldThreadSurvived.Store(true)
			}
		}, nil)
		t.Errorf("Exec returned: %v", err)
	})
	// The original runtime is replaced; wait on the process itself.
	select {
	case <-p.Process().Exited():
	case <-time.After(60 * time.Second):
		t.Fatal("timeout")
	}
	if !newImageRan.Load() {
		t.Fatal("new image never ran")
	}
	if oldThreadSurvived.Load() {
		t.Fatal("old threads survived exec")
	}
	if p.Process().Name() != "newimage" {
		t.Fatalf("process name %q", p.Process().Name())
	}
}

func TestSharedMappingAndLockBetweenProcesses(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	// Both processes open the same file, map it MAP_SHARED, and
	// use a mutex at offset 0 plus a counter at offset 128 — the
	// paper's Figure 1 database-record scenario end to end.
	body := func(p *Proc, tt *Thread) {
		fd, err := p.Open(tt, "/tmp/dbfile", OCreate|ORdWr)
		if err != nil {
			t.Error(err)
			return
		}
		va, err := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		if err != nil {
			t.Error(err)
			return
		}
		mu, err := p.SharedMutexAt(tt, va)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 150; i++ {
			mu.Enter(tt)
			var b [2]byte
			p.MemRead(tt, va+128, b[:])
			v := int(b[0]) | int(b[1])<<8
			v++
			b[0], b[1] = byte(v), byte(v>>8)
			p.MemWrite(tt, va+128, b[:])
			mu.Exit(tt)
		}
	}
	p1 := spawn(t, sys, "db1", ProcConfig{}, body)
	p2 := spawn(t, sys, "db2", ProcConfig{}, body)
	waitProc(t, p1)
	waitProc(t, p2)
	// Verify through a third process.
	var got atomic.Int64
	p3 := spawn(t, sys, "check", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/tmp/dbfile", ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		var b [2]byte
		p.MemRead(tt, va+128, b[:])
		got.Store(int64(int(b[0]) | int(b[1])<<8))
	})
	waitProc(t, p3)
	if got.Load() != 300 {
		t.Fatalf("counter = %d, want 300", got.Load())
	}
}

func TestPollDrivesSIGWAITINGGrowth(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var helperRan atomic.Bool
	p := spawn(t, sys, "poller", ProcConfig{}, func(p *Proc, tt *Thread) {
		rfd, wfd, _ := p.Pipe(tt)
		// Runnable thread that can only run if the pool grows
		// while we are stuck in poll.
		tt.Runtime().Create(func(c *Thread, _ any) {
			helperRan.Store(true)
			p.Write(c, wfd, []byte("x")) // releases the poll below
		}, nil, CreateOpts{})
		fds := []PollFD{{FD: rfd, Events: PollIn}}
		if _, err := p.Poll(tt, fds, 0); err != nil && !errors.Is(err, sim.ErrIntr) {
			t.Error(err)
		}
	})
	waitProc(t, p)
	if !helperRan.Load() {
		t.Fatal("helper starved: SIGWAITING growth did not happen")
	}
}

func TestKillFromOutside(t *testing.T) {
	sys := NewSystem(Options{NCPU: 1})
	p := spawn(t, sys, "victim", ProcConfig{}, func(p *Proc, tt *Thread) {
		for {
			tt.Yield()
			time.Sleep(100 * time.Microsecond)
		}
	})
	time.Sleep(2 * time.Millisecond)
	if err := p.Kill(SIGTERM); err != nil {
		t.Fatal(err)
	}
	_, sig := waitProc(t, p)
	if sig != SIGTERM {
		t.Fatalf("killed by %v, want SIGTERM", sig)
	}
}

func TestSyscallErrorsSurface(t *testing.T) {
	sys := NewSystem(Options{NCPU: 1})
	p := spawn(t, sys, "errs", ProcConfig{}, func(p *Proc, tt *Thread) {
		if _, err := p.Open(tt, "/no/such/dir/file", ORdOnly); !errors.Is(err, vfs.ErrNoEnt) {
			t.Errorf("open err = %v", err)
		}
		if _, err := p.Read(tt, 55, make([]byte, 1)); !errors.Is(err, vfs.ErrBadF) {
			t.Errorf("read err = %v", err)
		}
		if err := p.Chdir(tt, "/nowhere"); err == nil {
			t.Error("chdir to missing dir succeeded")
		}
	})
	waitProc(t, p)
}
