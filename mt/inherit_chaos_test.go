package mt

// Priority-inheritance chaos sweeps. The invariant under every
// perturbed schedule: while any thread is blocked on an owned local
// mutex, the owner's effective priority is at least the highest
// effective priority in the chain blocked behind it, and once the
// turnstiles drain every thread's effective priority returns to its
// base.

import (
	"sync/atomic"
	"testing"

	"sunosmt/internal/core"
)

// blockedOnMutex reports whether th is parked on a local mutex. A
// thread observed in this state has published its blocking edge and
// completed its priority-willing walk (both happen before it parks),
// so inheritance assertions made afterwards are race-free: the boost
// cannot shed until the owner releases.
func blockedOnMutex(th *Thread) bool {
	if th.State() != core.ThreadSleeping {
		return false
	}
	bi := th.BlockedOn()
	return bi != nil && bi.Kind == "mutex"
}

// TestChaosPriorityInheritance drives a three-deep blocking chain —
// high blocks on mu2 held by mid, mid blocks on mu1 held by low —
// under 100 perturbed schedules and asserts the willed priorities at
// the moment the chain is fully formed, then the drain back to base.
func TestChaosPriorityInheritance(t *testing.T) {
	sweep(t, func(t *testing.T, seed uint64) {
		sys := chaosSystem(t, chaosOpts(2, seed))
		var mu1, mu2 Mutex
		var gate1, sig1, sig2 Sema
		var afterLow, afterMid, afterHigh atomic.Int32
		var effLow, effMid atomic.Int32
		p := spawn(t, sys, "chaos-pi", ProcConfig{}, func(p *Proc, tt *Thread) {
			rt := tt.Runtime()
			low, err := rt.Create(func(ct *Thread, _ any) {
				mu1.Enter(ct)
				sig1.V(ct)
				gate1.P(ct) // hold mu1 while parked elsewhere
				mu1.Exit(ct)
				afterLow.Store(int32(ct.EffPriority()))
			}, nil, CreateOpts{Flags: ThreadWait, Priority: 1})
			if err != nil {
				t.Error(err)
				return
			}
			mid, err := rt.Create(func(ct *Thread, _ any) {
				sig1.P(ct) // mu1 is held before we try it
				mu2.Enter(ct)
				sig2.V(ct)
				mu1.Enter(ct) // blocks behind low
				mu1.Exit(ct)
				mu2.Exit(ct)
				afterMid.Store(int32(ct.EffPriority()))
			}, nil, CreateOpts{Flags: ThreadWait, Priority: 2})
			if err != nil {
				t.Error(err)
				return
			}
			high, err := rt.Create(func(ct *Thread, _ any) {
				sig2.P(ct)    // mu2 is held before we try it
				mu2.Enter(ct) // blocks behind mid
				mu2.Exit(ct)
				afterHigh.Store(int32(ct.EffPriority()))
			}, nil, CreateOpts{Flags: ThreadWait, Priority: 8})
			if err != nil {
				t.Error(err)
				return
			}
			// Wait for the full chain: high asleep on mu2 AND mid
			// asleep on mu1 (spurious wakeups re-park and re-will, so
			// a single observation of both suffices).
			for i := 0; !(blockedOnMutex(high) && blockedOnMutex(mid)); i++ {
				if i > 10_000_000 {
					t.Error("blocking chain never formed")
					return
				}
				tt.Yield()
			}
			effMid.Store(int32(mid.EffPriority()))
			effLow.Store(int32(low.EffPriority()))
			gate1.V(tt)
			tt.Wait(low.ID())
			tt.Wait(mid.ID())
			tt.Wait(high.ID())
		})
		waitProc(t, p)
		// While high (eff 8) was blocked behind mid, and mid behind
		// low, both owners must have been boosted to at least 8.
		if got := effMid.Load(); got < 8 {
			t.Errorf("eff(mid) with high blocked on its mutex = %d, want >= 8", got)
		}
		if got := effLow.Load(); got < 8 {
			t.Errorf("eff(low) at the end of the chain = %d, want >= 8 (transitive will)", got)
		}
		// Once each thread released its locks, the boost must drain.
		if got := afterLow.Load(); got != 1 {
			t.Errorf("eff(low) after release = %d, want base 1", got)
		}
		if got := afterMid.Load(); got != 2 {
			t.Errorf("eff(mid) after release = %d, want base 2", got)
		}
		if got := afterHigh.Load(); got != 8 {
			t.Errorf("eff(high) after release = %d, want base 8", got)
		}
	})
}

// TestChaosInheritanceDrains: a melee over two mutexes with mixed
// priorities and nesting; every thread asserts its effective priority
// is back at its base after it has released everything — no schedule
// may leak a boost past the turnstile drain.
func TestChaosInheritanceDrains(t *testing.T) {
	sweep(t, func(t *testing.T, seed uint64) {
		const iters = 20
		sys := chaosSystem(t, chaosOpts(2, seed))
		var mu1, mu2 Mutex
		var leaks atomic.Int32
		p := spawn(t, sys, "chaos-pi-drain", ProcConfig{}, func(p *Proc, tt *Thread) {
			rt := tt.Runtime()
			prios := []int{1, 2, 5, 8}
			ids := make([]ThreadID, 0, len(prios))
			for i, prio := range prios {
				prio, nest := prio, i%2 == 0
				c, err := rt.Create(func(ct *Thread, _ any) {
					for j := 0; j < iters; j++ {
						mu1.Enter(ct)
						if nest {
							mu2.Enter(ct)
							ct.Checkpoint()
							mu2.Exit(ct)
						}
						ct.Checkpoint()
						mu1.Exit(ct)
					}
					if ct.EffPriority() != prio {
						leaks.Add(1)
					}
				}, nil, CreateOpts{Flags: ThreadWait, Priority: prio})
				if err != nil {
					t.Error(err)
					return
				}
				ids = append(ids, c.ID())
			}
			for _, id := range ids {
				tt.Wait(id)
			}
		})
		waitProc(t, p)
		if n := leaks.Load(); n != 0 {
			t.Fatalf("%d threads finished with a leaked priority boost", n)
		}
	})
}
