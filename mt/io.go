package mt

import (
	"time"

	"sunosmt/internal/sim"
	"sunosmt/internal/vfs"
	"sunosmt/internal/vm"
)

// This file wraps the UNIX system-call surface for threads. Each call
// runs on the calling thread's current LWP; if the call blocks, that
// thread and its LWP remain blocked while other LWPs run other
// threads — the paper's central system-call rule.

// File-open flags and seek origins, re-exported from the vfs layer.
const (
	ORdOnly  = vfs.ORdOnly
	OWrOnly  = vfs.OWrOnly
	ORdWr    = vfs.ORdWr
	OCreate  = vfs.OCreate
	OTrunc   = vfs.OTrunc
	OAppend  = vfs.OAppend
	OExcl    = vfs.OExcl
	OCloExec = vfs.OCloExec

	SeekSet = vfs.SeekSet
	SeekCur = vfs.SeekCur
	SeekEnd = vfs.SeekEnd

	PollIn  = vfs.PollIn
	PollOut = vfs.PollOut
)

// PollFD is one descriptor in a Poll request.
type PollFD = vfs.PollFD

// Mapping constants re-exported from the vm layer.
const (
	ProtRead   = vm.ProtRead
	ProtWrite  = vm.ProtWrite
	MapShared  = vm.MapShared
	MapPrivate = vm.MapPrivate
	MapFixed   = vm.MapFixed
	PageSize   = vm.PageSize
)

// Open opens a file, like open(2).
func (p *Proc) Open(t *Thread, name string, flags vfs.OpenFlags) (int, error) {
	return p.PF.Open(t.LWP(), name, flags)
}

// Read reads from a descriptor at its (process-shared) offset.
func (p *Proc) Read(t *Thread, fd int, b []byte) (int, error) {
	return p.PF.Read(t.LWP(), fd, b)
}

// Write writes to a descriptor.
func (p *Proc) Write(t *Thread, fd int, b []byte) (int, error) {
	return p.PF.Write(t.LWP(), fd, b)
}

// Lseek repositions the shared file offset.
func (p *Proc) Lseek(t *Thread, fd int, off int64, whence vfs.Whence) (int64, error) {
	return p.PF.Lseek(fd, off, whence)
}

// Close closes a descriptor for every thread in the process.
func (p *Proc) Close(t *Thread, fd int) error { return p.PF.Close(fd) }

// Dup duplicates a descriptor sharing one open-file entry.
func (p *Proc) Dup(t *Thread, fd int) (int, error) { return p.PF.Dup(fd) }

// Pipe creates a pipe, returning (read fd, write fd).
func (p *Proc) Pipe(t *Thread) (int, int, error) { return p.PF.Pipe(t.LWP()) }

// Poll waits for descriptor readiness; an indefinite wait here is
// exactly what can trigger SIGWAITING when every LWP blocks.
func (p *Proc) Poll(t *Thread, fds []PollFD, timeout time.Duration) (int, error) {
	return p.PF.Poll(t.LWP(), fds, timeout)
}

// Mmap maps the file behind fd (or anonymous memory for fd < 0) into
// the address space, returning the chosen virtual address.
func (p *Proc) Mmap(t *Thread, va, length int64, prot vm.Prot, flags vm.MapFlags, fd int, off int64) (int64, error) {
	k := p.Sys.Kern
	l := t.LWP()
	k.SyscallEnter(l)
	defer k.SyscallExit(l)
	var obj vm.Object
	if fd >= 0 {
		f, err := p.PF.File(fd)
		if err != nil {
			return 0, err
		}
		obj = f
	}
	return p.AS.Mmap(va, length, prot, flags, obj, off)
}

// Munmap removes mappings, like munmap(2).
func (p *Proc) Munmap(t *Thread, va, length int64) error {
	return p.AS.Munmap(va, length)
}

// Sbrk grows or shrinks the heap, returning the old break. Multiple
// threads may manipulate the shared address space concurrently.
func (p *Proc) Sbrk(t *Thread, delta int64) (int64, error) { return p.AS.Sbrk(delta) }

// MapStack carves a thread stack with a red-zone guard page below it,
// returning the usable base. A store into the guard page faults with
// ErrRedZone (and MemWrite raises SIGSEGV) instead of silently
// corrupting the neighbouring mapping — the paper's "red zone" at the
// bottom of every stack. Fails with ErrNoMem past ASLimitBytes.
func (p *Proc) MapStack(t *Thread, size int64) (int64, error) {
	return p.AS.MapStack(size)
}

// UnmapStack releases a stack carved by MapStack, guard page included.
func (p *Proc) UnmapStack(t *Thread, base, size int64) error {
	return p.AS.UnmapStack(base, size)
}

// MemWrite stores bytes at a virtual address in the process image; a
// fault raises the SIGSEGV trap on the calling thread.
func (p *Proc) MemWrite(t *Thread, va int64, b []byte) error {
	err := p.AS.Write(va, b)
	if err != nil {
		t.RaiseTrap(sim.SIGSEGV)
	}
	return err
}

// MemRead loads bytes from a virtual address in the process image.
func (p *Proc) MemRead(t *Thread, va int64, b []byte) error {
	err := p.AS.Read(va, b)
	if err != nil {
		t.RaiseTrap(sim.SIGSEGV)
	}
	return err
}

// Chdir changes the working directory — for all threads, as the paper
// warns.
func (p *Proc) Chdir(t *Thread, dir string) error {
	if _, err := p.Sys.FS.Lookup(p.proc.Cwd(), dir); err != nil {
		return err
	}
	p.proc.Chdir(dir)
	return nil
}

// Mkdir creates a directory.
func (p *Proc) Mkdir(t *Thread, dir string) error {
	return p.Sys.FS.Mkdir(p.proc.Cwd(), dir)
}

// Unlink removes a file.
func (p *Proc) Unlink(t *Thread, name string) error {
	return p.Sys.FS.Unlink(p.proc.Cwd(), name)
}

// Sleep blocks the calling thread (and its LWP) for d, like
// nanosleep(2).
func (p *Proc) Sleep(t *Thread, d time.Duration) error {
	return p.Sys.Kern.SleepFor(t.LWP(), d)
}

// Priocntl changes the scheduling class/priority of the calling
// thread's LWP. Meaningful for bound threads, whose LWP is theirs
// permanently — the paper's route to real-time scheduling.
func (p *Proc) Priocntl(t *Thread, class sim.Class, prio int) error {
	return p.Sys.Kern.Priocntl(t.LWP(), class, prio)
}

// BindCPU binds the calling thread's LWP to a CPU.
func (p *Proc) BindCPU(t *Thread, cpu int) error {
	return p.Sys.Kern.BindCPU(t.LWP(), cpu)
}

// JoinGang puts the calling thread's LWP in the gang scheduling
// class, co-scheduled with other members of gang g.
func (p *Proc) JoinGang(t *Thread, g, prio int) error {
	return p.Sys.Kern.JoinGang(t.LWP(), g, prio)
}

// Setitimer arms an interval timer: ITimerReal is per-process,
// ITimerVirtual/ITimerProf belong to the calling thread's LWP (so
// they are only stable for bound threads, as the paper notes —
// "Threads that require this state must be bound to an LWP").
func (p *Proc) Setitimer(t *Thread, which sim.Which, value, interval time.Duration) error {
	return p.Sys.Kern.Setitimer(t.LWP(), which, value, interval)
}

// Getrusage returns the process's aggregated resource usage.
func (p *Proc) Getrusage(t *Thread) sim.Rusage { return p.proc.Getrusage() }

// SharedMutexAt places (or binds) a process-shared mutex at va, which
// must fall in a MAP_SHARED mapping. Convenience over SharedVar.
func (p *Proc) SharedMutexAt(t *Thread, va int64) (*Mutex, error) {
	sv, err := p.SharedVar(t, va)
	if err != nil {
		return nil, err
	}
	mu := &Mutex{}
	mu.InitShared(sv)
	return mu, nil
}

// SharedSemaAt places (or binds) a process-shared semaphore at va.
func (p *Proc) SharedSemaAt(t *Thread, va int64, count uint) (*Sema, error) {
	sv, err := p.SharedVar(t, va)
	if err != nil {
		return nil, err
	}
	s := &Sema{}
	s.InitShared(sv, count)
	return s, nil
}

// SharedCondAt places (or binds) a process-shared condition variable
// at va.
func (p *Proc) SharedCondAt(t *Thread, va int64) (*Cond, error) {
	sv, err := p.SharedVar(t, va)
	if err != nil {
		return nil, err
	}
	cv := &Cond{}
	cv.InitShared(sv)
	return cv, nil
}

// SharedRWLockAt places (or binds) a process-shared readers/writer
// lock at va.
func (p *Proc) SharedRWLockAt(t *Thread, va int64) (*RWLock, error) {
	sv, err := p.SharedVar(t, va)
	if err != nil {
		return nil, err
	}
	rw := &RWLock{}
	rw.InitShared(sv)
	return rw, nil
}
