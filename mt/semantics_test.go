package mt

// Tests pinning the trickier UNIX reinterpretations the paper's
// "Multi-threaded Operations" section specifies.

import (
	"errors"
	"sync/atomic"
	"testing"

	"sunosmt/internal/vfs"
)

// TestCloseOnExecDescriptors: exec closes OCloExec descriptors and
// keeps the rest, in the fresh image.
func TestCloseOnExecDescriptors(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var keptOK, cloGone atomic.Bool
	p := spawn(t, sys, "orig", ProcConfig{}, func(p *Proc, tt *Thread) {
		kept, err := p.Open(tt, "/tmp/kept", OCreate|ORdWr)
		if err != nil {
			t.Error(err)
			return
		}
		p.Write(tt, kept, []byte("payload"))
		clo, err := p.Open(tt, "/tmp/clo", OCreate|ORdWr|OCloExec)
		if err != nil {
			t.Error(err)
			return
		}
		p.Exec(tt, "fresh", func(nt *Thread, _ any) {
			// The plain descriptor survived with its offset.
			b := make([]byte, 7)
			if _, err := p.Lseek(nt, kept, 0, SeekSet); err != nil {
				t.Error(err)
				return
			}
			if n, err := p.Read(nt, kept, b); err == nil && string(b[:n]) == "payload" {
				keptOK.Store(true)
			}
			// The close-on-exec one is gone.
			if _, err := p.Read(nt, clo, b); errors.Is(err, vfs.ErrBadF) {
				cloGone.Store(true)
			}
		}, nil)
	})
	<-p.Process().Exited()
	if !keptOK.Load() {
		t.Fatal("plain descriptor did not survive exec")
	}
	if !cloGone.Load() {
		t.Fatal("close-on-exec descriptor survived exec")
	}
}

// TestSharedLockHeldAcrossFork pins the paper's fork pitfall: "locks
// that are allocated in memory that is sharable can be held by a
// thread in both processes". The child of a fork sees the parent's
// shared lock as held and must wait for the parent's release.
func TestSharedLockHeldAcrossFork(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	var childBlocked, childGot atomic.Bool
	p := spawn(t, sys, "parent", ProcConfig{}, func(p *Proc, tt *Thread) {
		fd, _ := p.Open(tt, "/tmp/locked", OCreate|ORdWr)
		va, _ := p.Mmap(tt, 0, PageSize, ProtRead|ProtWrite, MapShared, fd, 0)
		mu, err := p.SharedMutexAt(tt, va)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Enter(tt)
		childCh := make(chan *Proc, 1)
		child, err := p.Fork1(tt, func(ct *Thread, _ any) {
			cp := <-childCh
			// The child maps the same file (same VA here, since
			// the address space was copied).
			cmu, err := cp.SharedMutexAt(ct, va)
			if err != nil {
				t.Error(err)
				return
			}
			if cmu.TryEnter(ct) {
				t.Error("child acquired a lock the parent holds across fork")
				return
			}
			childBlocked.Store(true)
			cmu.Enter(ct) // blocks until the parent releases
			childGot.Store(true)
			cmu.Exit(ct)
		}, nil)
		if err != nil {
			t.Error(err)
			return
		}
		childCh <- child
		for !childBlocked.Load() {
			tt.Yield()
		}
		mu.Exit(tt)
		p.WaitChild(tt, -1)
	})
	waitProc(t, p)
	if !childGot.Load() {
		t.Fatal("child never acquired the lock after parent's release")
	}
}

// TestWaitChildSpecificPID waits for one particular child among two.
func TestWaitChildSpecificPID(t *testing.T) {
	sys := NewSystem(Options{NCPU: 2})
	p := spawn(t, sys, "parent", ProcConfig{}, func(p *Proc, tt *Thread) {
		c1, err := p.Fork1(tt, func(ct *Thread, _ any) { ct.ExitProcess(11) }, nil)
		if err != nil {
			t.Error(err)
			return
		}
		c2, err := p.Fork1(tt, func(ct *Thread, _ any) { ct.ExitProcess(22) }, nil)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := p.WaitChild(tt, c2.PID())
		if err != nil || res.PID != c2.PID() || res.Status != 22 {
			t.Errorf("WaitChild(c2) = %+v, %v", res, err)
		}
		res, err = p.WaitChild(tt, c1.PID())
		if err != nil || res.Status != 11 {
			t.Errorf("WaitChild(c1) = %+v, %v", res, err)
		}
	})
	waitProc(t, p)
}

// TestChdirAffectsAllThreads pins "There is only one working
// directory for each process."
func TestChdirAffectsAllThreads(t *testing.T) {
	sys := NewSystem(Options{NCPU: 1})
	p := spawn(t, sys, "cwd", ProcConfig{}, func(p *Proc, tt *Thread) {
		if err := p.Mkdir(tt, "/work"); err != nil {
			t.Error(err)
			return
		}
		c, _ := tt.Runtime().Create(func(c *Thread, _ any) {
			if err := p.Chdir(c, "/work"); err != nil {
				t.Error(err)
			}
		}, nil, CreateOpts{Flags: ThreadWait})
		tt.Wait(c.ID())
		// This thread now creates files under /work via a relative
		// path: the child's chdir changed *our* directory too.
		fd, err := p.Open(tt, "data.txt", OCreate|OWrOnly)
		if err != nil {
			t.Error(err)
			return
		}
		p.Close(tt, fd)
		if _, err := sys.FS.Lookup("/", "/work/data.txt"); err != nil {
			t.Errorf("file not created in /work: %v", err)
		}
	})
	waitProc(t, p)
}

// TestMemFaultRaisesSIGSEGVTrap pins the trap path: an access to an
// unmapped address raises SIGSEGV on the faulting thread; caught, it
// runs that thread's handler; uncaught, it kills the process with a
// core dump.
func TestMemFaultRaisesSIGSEGVTrap(t *testing.T) {
	sys := NewSystem(Options{NCPU: 1})
	var caughtBy atomic.Int64
	p := spawn(t, sys, "segv", ProcConfig{}, func(p *Proc, tt *Thread) {
		tt.Runtime().Signal(SIGSEGV, SigCatch, func(ht *Thread, _ Signal) {
			caughtBy.Store(int64(ht.ID()))
		})
		c, _ := tt.Runtime().Create(func(c *Thread, _ any) {
			p.MemWrite(c, 0xdead0000, []byte{1}) // unmapped
		}, nil, CreateOpts{Flags: ThreadWait})
		tt.Wait(c.ID())
		if ThreadID(caughtBy.Load()) != c.ID() {
			t.Errorf("SIGSEGV handled by thread %d, want %d (the faulter)", caughtBy.Load(), c.ID())
		}
	})
	waitProc(t, p)

	// Uncaught: the process dies with SIGSEGV.
	p2 := spawn(t, sys, "segv2", ProcConfig{}, func(p *Proc, tt *Thread) {
		p.MemWrite(tt, 0xdead0000, []byte{1})
		t.Error("survived uncaught SIGSEGV")
	})
	_, sig := waitProc(t, p2)
	if sig != SIGSEGV {
		t.Fatalf("killed by %v, want SIGSEGV", sig)
	}
}
